# Quality gates for the reproduction.  `make check` is the full suite the
# CI (and every PR) must keep green.

GO ?= go

# Packages whose exported identifiers must all carry doc comments: the
# telemetry layer and the instrumented entry points it is wired through.
DOCLINT_DIRS = internal/telemetry internal/pipeline internal/hybrid \
               internal/fpga internal/xd1

.PHONY: check fmt vet build test docslint bench

check: fmt vet build test docslint

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

docslint:
	$(GO) run ./scripts/docslint $(DOCLINT_DIRS)

# The nil-registry overhead contract (<5 ns/op, 0 allocs/op on the nil path).
bench:
	$(GO) test ./internal/telemetry -run XXX -bench TelemetryOverhead -benchmem
