# Quality gates for the reproduction.  `make check` is the full suite the
# CI (and every PR) must keep green.

GO ?= go

# Packages whose exported identifiers must all carry doc comments: the
# telemetry layer, the instrumented entry points it is wired through, and
# the serving stack.
DOCLINT_DIRS = internal/telemetry internal/telemetry/trace \
               internal/telemetry/health internal/telemetry/runtimemetrics \
               internal/pipeline internal/hybrid \
               internal/fpga internal/xd1 internal/acqserver \
               internal/frameio

.PHONY: check fmt vet build test docslint fuzz-short serve-smoke trace-smoke bench bench-json allocgate

check: fmt vet build test docslint allocgate fuzz-short serve-smoke trace-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

docslint:
	$(GO) run ./scripts/docslint $(DOCLINT_DIRS)

# A short coverage-guided pass over the frame decoder; regressions in the
# header guards surface here before they reach the wire.
fuzz-short:
	$(GO) test ./internal/frameio -run '^$$' -fuzz FuzzRead -fuzztime 5s

# End-to-end serving smoke: start imsd, hammer it with imsload for 2s,
# assert zero protocol errors and a clean SIGTERM drain.
serve-smoke:
	./scripts/serve-smoke.sh

# End-to-end tracing smoke: imsd -trace + a traced imsload burst, then
# assert the Perfetto JSON parses with a span for every pipeline stage.
trace-smoke:
	./scripts/trace-smoke.sh

# The nil-registry overhead contract (<5 ns/op, 0 allocs/op on the nil
# path) and the disabled-tracer contract (<10 ns/op, 0 allocs/op across
# six span sites).
bench:
	$(GO) test ./internal/telemetry -run XXX -bench TelemetryOverhead -benchmem
	$(GO) test ./internal/telemetry/trace -run XXX -bench TraceOverhead -benchmem

# The zero-steady-state-allocation contract of the batched decode path
# (docs/PERFORMANCE.md): the testing.AllocsPerRun gates across the
# hadamard kernels, the pipeline block decoder, the fixed-point core, and
# the telemetry hot path (Observe stays 0-alloc with rolling windows on).
allocgate:
	$(GO) test ./internal/hadamard ./internal/pipeline ./internal/fpga \
		./internal/telemetry \
		-run 'Allocs|DeconvolveToMatchesDeconvolve' -count=1

# Refresh the decode-path benchmark ledger: the Micro* data-path
# benchmarks plus the E3/E4 experiment benchmarks, parsed into
# BENCH_PR4.json under the "after" label (see scripts/benchjson).
bench-json:
	$(GO) test -run XXX -bench 'Micro|E3FPGAvsCPU|E4CPUScaling' -benchmem . | \
		$(GO) run ./scripts/benchjson -label after -out BENCH_PR4.json
	$(GO) test -run XXX -bench . -benchmem ./internal/hadamard | \
		$(GO) run ./scripts/benchjson -label after -out BENCH_PR4.json
