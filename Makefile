# Quality gates for the reproduction.  `make check` is the full suite the
# CI (and every PR) must keep green.

GO ?= go

# Build stamping: the buildinfo package's Version/Commit are injected via
# ldflags so every binary's build_info metric names the build it came
# from (scripts/obs-smoke.sh asserts the round trip).
VERSION ?= dev
COMMIT ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
LDFLAGS = -X repro/internal/buildinfo.Version=$(VERSION) -X repro/internal/buildinfo.Commit=$(COMMIT)

# Packages whose exported identifiers must all carry doc comments: the
# telemetry layer, the instrumented entry points it is wired through, and
# the serving stack.
DOCLINT_DIRS = internal/telemetry internal/telemetry/trace \
               internal/telemetry/health internal/telemetry/runtimemetrics \
               internal/telemetry/flightrec internal/telemetry/profiler \
               internal/telemetry/tsdb \
               internal/buildinfo internal/pprofile \
               internal/pipeline internal/hybrid \
               internal/fpga internal/xd1 internal/acqserver \
               internal/gateway internal/frameio internal/framelog

# Markdown files whose relative links `make docs-verify` must keep alive.
DOCS_MD = README.md docs/ARCHITECTURE.md docs/CLUSTER.md \
          docs/DURABILITY.md docs/OBSERVABILITY.md docs/PERFORMANCE.md \
          docs/SERVING.md

.PHONY: check fmt vet build test test-purego docslint docs-verify fuzz-short serve-smoke cluster-smoke trace-smoke wal-smoke obs-smoke bench bench-json bench-diff allocgate

check: fmt vet build test test-purego docslint docs-verify allocgate fuzz-short bench-diff serve-smoke cluster-smoke trace-smoke wal-smoke obs-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build -ldflags "$(LDFLAGS)" ./...

test:
	$(GO) test -race ./...

# The kernel dispatch seam's fallback path: under the purego tag the
# tuned FWHT variant table is empty and SelectKernel must still resolve
# every registered pure-Go kernel, so the hadamard suite runs again with
# the tag on (see internal/hadamard/kernel_select_purego.go).
test-purego:
	$(GO) test -tags purego ./internal/hadamard

# Doc-comment hygiene on the listed packages, plus the metric-catalogue
# gate: every telemetry family registered in code must be documented in
# docs/OBSERVABILITY.md.
docslint:
	$(GO) run ./scripts/docslint -metrics-doc docs/OBSERVABILITY.md $(DOCLINT_DIRS)

# Docs consistency: docslint plus the relative-link checker over the
# operator docs — a renamed file or typo'd cross-reference fails here.
docs-verify: docslint
	$(GO) run ./scripts/linkcheck $(DOCS_MD)

# Short coverage-guided passes over the two binary-format readers: the
# frame decoder and the frame-log segment scanner.  Regressions in the
# header and CRC guards surface here before they reach the wire or a
# recovery pass.
fuzz-short:
	$(GO) test ./internal/frameio -run '^$$' -fuzz FuzzRead -fuzztime 5s
	$(GO) test ./internal/framelog -run '^$$' -fuzz FuzzSegmentRead -fuzztime 5s
	$(GO) test ./internal/hadamard -run '^$$' -fuzz FuzzFWHTKernelEquivalence -fuzztime 5s

# End-to-end serving smoke: start imsd, hammer it with imsload for 2s,
# assert zero protocol errors and a clean SIGTERM drain.
serve-smoke:
	./scripts/serve-smoke.sh

# End-to-end cluster smoke: imsgw over three imsd backends, a 6s burst
# with one backend SIGTERMed mid-burst, asserting the loss bound and
# multi-backend fan-out (see docs/CLUSTER.md).
cluster-smoke:
	./scripts/serve-cluster-smoke.sh

# End-to-end tracing smoke: imsd -trace + a traced imsload burst, then
# assert the Perfetto JSON parses with a span for every pipeline stage.
trace-smoke:
	./scripts/trace-smoke.sh

# End-to-end durability smoke: capture a burst into the frame log, prove
# the replay digest is bit-identical, then SIGKILL a daemon mid-burst and
# prove recovery re-processes every acknowledged frame (docs/DURABILITY.md).
wal-smoke:
	./scripts/wal-smoke.sh

# End-to-end observability smoke: an imsd+imsgw pair with the full
# observability plane on, asserting the exemplar -> wide-event join, the
# forced-degradation black-box dump, the build_info stamp, the fleet
# rollup and the profile-ring summary (docs/OBSERVABILITY.md).
obs-smoke:
	./scripts/obs-smoke.sh

# The nil-registry overhead contract (<5 ns/op, 0 allocs/op on the nil
# path) and the disabled-tracer contract (<10 ns/op, 0 allocs/op across
# six span sites).
bench:
	$(GO) test ./internal/telemetry -run XXX -bench TelemetryOverhead -benchmem
	$(GO) test ./internal/telemetry/trace -run XXX -bench TraceOverhead -benchmem

# The zero-steady-state-allocation contract of the batched decode path
# (docs/PERFORMANCE.md): the testing.AllocsPerRun gates across the
# hadamard kernels, the pipeline block decoder, the fixed-point core, the
# telemetry hot path (Observe stays 0-alloc with rolling windows on), and
# the frame-log append submission path.
allocgate:
	$(GO) test ./internal/hadamard ./internal/pipeline ./internal/fpga \
		./internal/telemetry ./internal/framelog \
		-run 'Allocs|DeconvolveToMatchesDeconvolve' -count=1

# Refresh the decode-path benchmark ledger: the Micro* data-path
# benchmarks plus the E3/E4 experiment benchmarks, parsed into
# $(BENCH_OUT) under the "after" label (see scripts/benchjson).
# Override BENCH_OUT to ledger a new PR (e.g. BENCH_OUT=BENCH_PR8.json).
BENCH_OUT ?= BENCH_PR4.json
bench-json:
	$(GO) test -run XXX -bench 'Micro|E3FPGAvsCPU|E4CPUScaling' -benchmem . | \
		$(GO) run ./scripts/benchjson -label after -out $(BENCH_OUT)
	$(GO) test -run XXX -bench . -benchmem ./internal/hadamard | \
		$(GO) run ./scripts/benchjson -label after -out $(BENCH_OUT)

# Decode-path regression gate: rerun the two benchmark families the PR 4
# ledger pinned (frame deconvolution end-to-end and the blocked FWHT
# batch kernel) and fail if either slipped more than 5% in ns/op against
# the $(BENCH_BASELINE) "after" label (see scripts/benchjson -diff).
BENCH_BASELINE ?= BENCH_PR4.json
bench-diff:
	{ $(GO) test -run XXX -bench 'MicroFrameDeconvolve$$' -benchmem . ; \
	  $(GO) test -run XXX -bench 'FHTDecodeBatch$$' -benchmem ./internal/hadamard ; } | \
		$(GO) run ./scripts/benchjson -diff $(BENCH_BASELINE) \
			-match 'MicroFrameDeconvolve$$|FHTDecodeBatch$$' -max-regress 5
