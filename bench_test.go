// bench_test.go: one testing.B benchmark per reproduced table/figure
// (E1–E12 and the ablations), plus microbenchmarks of the core data path.
// Each experiment benchmark runs the experiment in quick mode and reports
// its headline number as a custom metric, so `go test -bench=. -benchmem`
// regenerates the whole evaluation alongside the timing profile.
// cmd/benchreport prints the full tables.
package repro

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/experiments"
	"repro/internal/hadamard"
	"repro/internal/instrument"
	"repro/internal/pipeline"
	"repro/internal/prs"
)

// runExperiment executes an experiment once per benchmark iteration and
// returns the last table for metric extraction.
func runExperiment(b *testing.B, run experiments.Runner) *experiments.Table {
	b.Helper()
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = run(2007, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

// metric parses a numeric cell from a table, failing the benchmark on
// malformed output.
func metric(b *testing.B, tab *experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func BenchmarkE1MultiplexingGain(b *testing.B) {
	tab := runExperiment(b, experiments.E1MultiplexingGain)
	last := len(tab.Rows) - 1
	b.ReportMetric(metric(b, tab, last, 6), "trap-gain")
	b.ReportMetric(metric(b, tab, last, 7), "theory-gain")
}

func BenchmarkE2DeconvolutionFidelity(b *testing.B) {
	tab := runExperiment(b, experiments.E2DeconvolutionFidelity)
	b.ReportMetric(metric(b, tab, 0, 3), "enhancement")
}

func BenchmarkE3FPGAvsCPU(b *testing.B) {
	tab := runExperiment(b, experiments.E3FPGAvsCPU)
	b.ReportMetric(metric(b, tab, 0, 8), "realtime-margin")
}

func BenchmarkE4CPUScaling(b *testing.B) {
	tab := runExperiment(b, experiments.E4CPUScaling)
	last := len(tab.Rows) - 1
	b.ReportMetric(metric(b, tab, last, 2), "max-speedup")
}

func BenchmarkE5DataPath(b *testing.B) {
	tab := runExperiment(b, experiments.E5DataPath)
	last := len(tab.Rows) - 1
	b.ReportMetric(metric(b, tab, last, 3), "reduction")
}

func BenchmarkE6IonUtilization(b *testing.B) {
	tab := runExperiment(b, experiments.E6IonUtilization)
	last := len(tab.Rows) - 1
	b.ReportMetric(metric(b, tab, last, 4), "trap-utilization")
}

func BenchmarkE7DynamicRange(b *testing.B) {
	tab := runExperiment(b, experiments.E7DynamicRange)
	var sa, tr float64
	for r := range tab.Rows {
		if tab.Rows[r][4] == "true" {
			sa++
		}
		if tab.Rows[r][5] == "true" {
			tr++
		}
	}
	b.ReportMetric(sa, "sa-detected")
	b.ReportMetric(tr, "trap-detected")
}

func BenchmarkE8ModifiedPRS(b *testing.B) {
	tab := runExperiment(b, experiments.E8ModifiedPRS)
	naive := metric(b, tab, 0, 2)
	modified := metric(b, tab, 2, 2)
	b.ReportMetric(naive/modified, "error-improvement")
}

func BenchmarkE9PeptideIDs(b *testing.B) {
	tab := runExperiment(b, experiments.E9PeptideIDs)
	for _, row := range tab.Rows {
		if row[0] == "unique peptides identified" {
			v, err := strconv.ParseFloat(row[1], 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(v, "unique-peptides")
		}
	}
}

func BenchmarkE10FixedPoint(b *testing.B) {
	tab := runExperiment(b, experiments.E10FixedPoint)
	last := len(tab.Rows) - 1
	b.ReportMetric(metric(b, tab, last, 2), "widest-format-err")
}

func BenchmarkE11SpaceCharge(b *testing.B) {
	tab := runExperiment(b, experiments.E11SpaceCharge)
	last := len(tab.Rows) - 1
	b.ReportMetric(metric(b, tab, last, 4), "resolution-fraction")
}

func BenchmarkE12AGC(b *testing.B) {
	tab := runExperiment(b, experiments.E12AGC)
	// Packet/target at the apex row (highest current).
	best, bestRate := 0.0, 0.0
	for r := range tab.Rows {
		rate := metric(b, tab, r, 1)
		if rate > bestRate {
			bestRate = rate
			best = metric(b, tab, r, 3)
		}
	}
	b.ReportMetric(best, "agc-packet/target")
}

func BenchmarkAblationDirectVsFHT(b *testing.B) {
	tab := runExperiment(b, experiments.AblationDirectVsFHT)
	last := len(tab.Rows) - 1
	b.ReportMetric(metric(b, tab, last, 4), "fht-speedup")
}

func BenchmarkAblationAccumulatePlacement(b *testing.B) {
	tab := runExperiment(b, experiments.AblationAccumulatePlacement)
	b.ReportMetric(float64(len(tab.Rows)), "rows")
}

// --- Microbenchmarks of the hot data path ---

func BenchmarkMicroFHTDecodeOrder9(b *testing.B) {
	dec, err := hadamard.NewFHTDecoder(9)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	y := make([]float64, dec.Len())
	for i := range y {
		y[i] = rng.Float64() * 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroFrameDeconvolve(b *testing.B) {
	order := 9
	seq := prs.MustMSequence(order)
	cols := 256
	rng := rand.New(rand.NewSource(2))
	frame := instrument.NewFrame(len(seq), cols)
	for c := 0; c < cols; c++ {
		x := make([]float64, len(seq))
		x[rng.Intn(len(x))] = 500
		y, err := hadamard.Encode(seq, x)
		if err != nil {
			b.Fatal(err)
		}
		frame.SetDriftVector(c, y)
	}
	factory := func() (hadamard.Decoder, error) { return hadamard.NewFHTDecoder(order) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.DeconvolveFrame(frame, factory, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroInstrumentAcquire(b *testing.B) {
	var mix instrument.Mixture
	if err := mix.AddAnalyte(instrument.Analyte{
		Name: "probe", MassDa: 1000, Z: 2, MZ: 501, CCSM2: 2.8e-18, Abundance: 1,
	}); err != nil {
		b.Fatal(err)
	}
	src, err := instrument.NewESISource(mix, 1e6)
	if err != nil {
		b.Fatal(err)
	}
	cfg := instrument.DefaultConfig()
	cfg.SequenceOrder = 8
	cfg.TOF.Bins = 256
	cfg.Frames = 1
	inst, err := instrument.New(cfg, src)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := inst.Acquire(rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13DetectionDynamicRange(b *testing.B) {
	tab := runExperiment(b, experiments.E13DetectionDynamicRange)
	b.ReportMetric(metric(b, tab, 0, 1), "adc-ratio")
	b.ReportMetric(metric(b, tab, 0, 2), "tdc-ratio")
}

func BenchmarkE14LCGradient(b *testing.B) {
	tab := runExperiment(b, experiments.E14LCGradient)
	last := len(tab.Rows) - 1
	b.ReportMetric(metric(b, tab, last, 5), "cumulative-peptides")
}

func BenchmarkE15StreamingDynamics(b *testing.B) {
	tab := runExperiment(b, experiments.E15StreamingDynamics)
	b.ReportMetric(metric(b, tab, 0, 1), "saturated-cycles/col")
}

func BenchmarkE16MultiplexedCID(b *testing.B) {
	tab := runExperiment(b, experiments.E16MultiplexedCID)
	var identified float64
	for r := range tab.Rows {
		if tab.Rows[r][6] == "true" {
			identified++
		}
	}
	b.ReportMetric(identified, "peptides-with-fragments")
}

func BenchmarkE17FrameFormat(b *testing.B) {
	tab := runExperiment(b, experiments.E17FrameFormat)
	raw := metric(b, tab, 1, 1)
	delta := metric(b, tab, 2, 1)
	b.ReportMetric(raw/delta, "delta-compression")
}

func BenchmarkE18ClusterScaling(b *testing.B) {
	tab := runExperiment(b, experiments.E18ClusterScaling)
	last := len(tab.Rows) - 1
	b.ReportMetric(metric(b, tab, last, 2), "aggregate-fps")
}

func BenchmarkE19CCSCalibration(b *testing.B) {
	tab := runExperiment(b, experiments.E19CCSCalibration)
	worst := 0.0
	for r := range tab.Rows {
		if e := metric(b, tab, r, 5); e > worst {
			worst = e
		}
	}
	b.ReportMetric(worst, "worst-ccs-err-%")
}

func BenchmarkE20IsotopeFidelity(b *testing.B) {
	tab := runExperiment(b, experiments.E20IsotopeFidelity)
	worst := 0.0
	for r := range tab.Rows {
		if d := metric(b, tab, r, 4); d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst, "worst-ratio-dev-%")
}

// BenchmarkMicroFrameDeconvolveScalar preserves the pre-batching shape —
// per-column Decode with a fresh result slice each call — as the in-tree
// baseline for the blocked path above it.
func BenchmarkMicroFrameDeconvolveScalar(b *testing.B) {
	order := 9
	seq := prs.MustMSequence(order)
	cols := 256
	rng := rand.New(rand.NewSource(2))
	frame := instrument.NewFrame(len(seq), cols)
	for c := 0; c < cols; c++ {
		x := make([]float64, len(seq))
		x[rng.Intn(len(x))] = 500
		y, err := hadamard.Encode(seq, x)
		if err != nil {
			b.Fatal(err)
		}
		frame.SetDriftVector(c, y)
	}
	dec, err := hadamard.NewFHTDecoder(order)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := instrument.NewFrame(frame.DriftBins, frame.TOFBins)
		for t := 0; t < frame.TOFBins; t++ {
			x, err := dec.Decode(frame.DriftVector(t))
			if err != nil {
				b.Fatal(err)
			}
			out.SetDriftVector(t, x)
		}
	}
}

// BenchmarkMicroFrameDeconvolveInto is the steady-state serving shape: a
// pooled output frame and the blocked batch path, zero per-column
// allocation.
func BenchmarkMicroFrameDeconvolveInto(b *testing.B) {
	order := 9
	seq := prs.MustMSequence(order)
	cols := 256
	rng := rand.New(rand.NewSource(2))
	frame := instrument.NewFrame(len(seq), cols)
	for c := 0; c < cols; c++ {
		x := make([]float64, len(seq))
		x[rng.Intn(len(x))] = 500
		y, err := hadamard.Encode(seq, x)
		if err != nil {
			b.Fatal(err)
		}
		frame.SetDriftVector(c, y)
	}
	factory := func() (hadamard.Decoder, error) { return hadamard.NewFHTDecoder(order) }
	var pool instrument.FramePool
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := pool.Get(frame.DriftBins, frame.TOFBins)
		if err := pipeline.DeconvolveFrameIntoContext(ctx, out, frame, factory, 0, nil); err != nil {
			b.Fatal(err)
		}
		pool.Put(out)
	}
}
