// Command benchreport regenerates every table and figure of the
// reproduction's evaluation (E1–E12 plus the design ablations) and prints
// them as aligned text, optionally writing CSV files per experiment.
//
// Usage:
//
//	benchreport [-quick] [-seed N] [-only E1,E7] [-csv DIR]
//	            [-metrics FILE] [-pprof ADDR]
//
// With -metrics, the instrumented experiments (E3, E4, E15 and everything
// running the software decode) share one telemetry registry whose snapshot
// is written as JSON at exit — the whole evaluation's stage-level activity
// in one file (see docs/OBSERVABILITY.md).  With -pprof, a net/http/pprof
// server listens on ADDR while the report runs.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweep sizes (seconds instead of minutes)")
	seed := flag.Int64("seed", 2007, "base random seed (experiments are deterministic per seed)")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	csvDir := flag.String("csv", "", "also write one CSV per experiment into this directory")
	metricsPath := flag.String("metrics", "", "aggregate experiment telemetry and write the snapshot to this JSON file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *metricsPath != "" {
		experiments.Metrics = telemetry.NewRegistry()
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: pprof server: %v\n", err)
			}
		}()
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
	}

	failures := 0
	for _, e := range experiments.All() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		tab, err := e.Run(*seed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %s failed: %v\n", e.ID, err)
			failures++
			continue
		}
		if err := tab.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: print %s: %v\n", e.ID, err)
			failures++
			continue
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(tab.ID)+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
				failures++
				continue
			}
			if err := tab.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: csv %s: %v\n", tab.ID, err)
				failures++
			}
			f.Close()
		}
	}
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.Metrics.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry snapshot written to %s\n", *metricsPath)
	}
	if failures > 0 {
		os.Exit(1)
	}
}
