// Command framedump inspects the two binary formats the pipeline writes:
// frame files from the frameio container, and frame-log captures from
// imsd -framelog (see docs/DURABILITY.md).
//
// Usage:
//
//	framedump [-column N] [-profile] frame.htims
//	framedump -log DIR|SEGMENT [-record SEQ] [-column N] [-profile]
//
// In file mode it prints a frame's metadata, geometry, intensity
// statistics, the drift profile, and optionally one m/z column as CSV.
//
// In -log mode it verifies every record CRC of a frame-log directory (or a
// single .seg file) and prints per-segment summaries — record count, seq
// and time ranges, size, sealed state, sparse-index points, torn trailing
// bytes — plus totals.  With -record SEQ it instead decodes that one
// captured record (frame options prefix + frameio frame) and prints it
// exactly like file mode, so any logged frame can be pulled out of a
// capture for inspection.  Exit status is non-zero on any CRC or footer
// mismatch, which is how the wal-smoke asserts a capture is intact.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/acqserver"
	"repro/internal/frameio"
	"repro/internal/framelog"
	"repro/internal/instrument"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "framedump: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	column := flag.Int("column", -1, "print this m/z column as CSV")
	profile := flag.Bool("profile", false, "print the summed drift profile as CSV")
	logPath := flag.String("log", "", "inspect a frame-log directory or single segment file instead of a frame file")
	record := flag.Uint64("record", 0, "with -log: decode and print the record with this seq")
	flag.Parse()

	if *logPath != "" {
		if flag.NArg() != 0 {
			fail("-log takes no positional argument")
		}
		if *record != 0 {
			dumpLogRecord(*logPath, *record, *column, *profile)
		} else {
			dumpLogSummary(*logPath)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: framedump [flags] frame.htims")
		fmt.Fprintln(os.Stderr, "       framedump -log DIR|SEGMENT [-record SEQ] [flags]")
		os.Exit(1)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	frame, meta, err := frameio.Read(f)
	if err != nil {
		fail("%v", err)
	}
	printFrame(frame, meta, *column, *profile)
}

// printFrame reports one frame's geometry, metadata and intensity
// statistics, plus the optional CSV views.
func printFrame(frame *instrument.Frame, meta map[string]string, column int, profile bool) {
	fmt.Printf("geometry: %d drift bins x %d m/z bins (%d cells)\n",
		frame.DriftBins, frame.TOFBins, len(frame.Data))
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("meta %s = %s\n", k, meta[k])
	}
	var total, max float64
	nonzero := 0
	for _, v := range frame.Data {
		total += v
		if v > max {
			max = v
		}
		if v != 0 {
			nonzero++
		}
	}
	fmt.Printf("total counts %.4g, max cell %.4g, occupancy %.1f%%\n",
		total, max, 100*float64(nonzero)/float64(len(frame.Data)))

	if profile {
		for _, v := range frame.DriftProfile() {
			fmt.Printf("%g\n", v)
		}
	}
	if column >= 0 {
		if column >= frame.TOFBins {
			fail("column %d out of range [0,%d)", column, frame.TOFBins)
		}
		for _, v := range frame.DriftVector(column) {
			fmt.Printf("%g\n", v)
		}
	}
}

// logSegments resolves -log's argument — a log directory or one segment
// file — into the segment set to walk, seq-ascending.
func logSegments(path string) []framelog.SegmentInfo {
	st, err := os.Stat(path)
	if err != nil {
		fail("%v", err)
	}
	if st.IsDir() {
		infos, err := framelog.ListSegments(path)
		if err != nil {
			fail("%v", err)
		}
		return infos
	}
	info, err := framelog.ScanSegment(path, nil)
	if err != nil {
		fail("%v", err)
	}
	return []framelog.SegmentInfo{info}
}

// dumpLogSummary verifies and summarizes every segment under path.
func dumpLogSummary(path string) {
	infos := logSegments(path)
	if len(infos) == 0 {
		fail("%s: no segments", path)
	}
	var records uint64
	var bytes, torn int64
	firstSeq, lastSeq := uint64(0), uint64(0)
	for _, si := range infos {
		state := "open"
		if si.Sealed {
			state = "sealed"
		}
		fmt.Printf("segment %s: %d records, seq [%d..%d], %s .. %s, %d bytes, %s, %d index points",
			filepath.Base(si.Path), si.Records, si.FirstSeq, si.LastSeq,
			logTime(si.FirstTime), logTime(si.LastTime), si.Bytes, state, si.IndexEntries)
		if si.TornBytes > 0 {
			fmt.Printf(", %d torn trailing bytes", si.TornBytes)
		}
		fmt.Println()
		if si.Records > 0 {
			if records == 0 {
				firstSeq = si.FirstSeq
			}
			lastSeq = si.LastSeq
		}
		records += si.Records
		bytes += si.Bytes
		torn += si.TornBytes
	}
	fmt.Printf("total: %d segments, %d records, seq [%d..%d], %d bytes, all record CRCs verified\n",
		len(infos), records, firstSeq, lastSeq, bytes)
	if torn > 0 {
		fmt.Printf("note: %d torn trailing bytes will be truncated on the next recovery\n", torn)
	}
}

// errFound ends the record search once the target seq has been decoded.
var errFound = errors.New("framedump: record found")

// dumpLogRecord locates one record by seq across the capture's segments,
// decodes its captured FRAME payload (options prefix + frameio frame), and
// prints it like file mode.
func dumpLogRecord(path string, seq uint64, column int, profile bool) {
	var rec framelog.Record
	found := false
	for _, si := range logSegments(path) {
		if si.Records == 0 || seq < si.FirstSeq || seq > si.LastSeq {
			continue
		}
		_, err := framelog.ScanSegment(si.Path, func(r framelog.Record) error {
			if r.Seq == seq {
				// The scan buffer is reused; keep our own copy.
				rec = framelog.Record{Seq: r.Seq, Time: r.Time, SID: r.SID,
					Payload: append([]byte(nil), r.Payload...)}
				found = true
				return errFound
			}
			return nil
		})
		if err != nil && !errors.Is(err, errFound) {
			fail("%v", err)
		}
		if found {
			break
		}
	}
	if !found {
		fail("record seq %d not found in %s", seq, path)
	}
	opts, frameBytes, err := acqserver.SplitFramePayload(rec.Payload)
	if err != nil {
		fail("record %d: %v", seq, err)
	}
	fmt.Printf("record seq %d: appended %s, trace id %#016x, %d payload bytes\n",
		rec.Seq, logTime(rec.Time), rec.SID, len(rec.Payload))
	fmt.Printf("options: path %s, deadline %v\n", opts.Path, opts.Deadline)
	frame, meta, err := frameio.Read(newByteReader(frameBytes))
	if err != nil {
		fail("record %d frame: %v", seq, err)
	}
	printFrame(frame, meta, column, profile)
}

// logTime renders an append timestamp for summaries.
func logTime(ns int64) string {
	if ns == 0 {
		return "-"
	}
	return time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
}

// newByteReader adapts a slice for frameio's streaming decoder.
func newByteReader(b []byte) io.Reader { return &byteReader{b: b} }

// byteReader is a minimal forward-only reader over a slice.
type byteReader struct{ b []byte }

// Read copies out of the remaining slice.
func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
