// Command framedump inspects a binary frame file written by the frameio
// container: metadata, geometry, intensity statistics, the drift profile,
// and optionally one m/z column as CSV.
//
// Usage:
//
//	framedump [-column N] [-profile] frame.htims
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/frameio"
)

func main() {
	column := flag.Int("column", -1, "print this m/z column as CSV")
	profile := flag.Bool("profile", false, "print the summed drift profile as CSV")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: framedump [flags] frame.htims")
		os.Exit(1)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "framedump: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	frame, meta, err := frameio.Read(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "framedump: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("geometry: %d drift bins x %d m/z bins (%d cells)\n",
		frame.DriftBins, frame.TOFBins, len(frame.Data))
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("meta %s = %s\n", k, meta[k])
	}
	var total, max float64
	nonzero := 0
	for _, v := range frame.Data {
		total += v
		if v > max {
			max = v
		}
		if v != 0 {
			nonzero++
		}
	}
	fmt.Printf("total counts %.4g, max cell %.4g, occupancy %.1f%%\n",
		total, max, 100*float64(nonzero)/float64(len(frame.Data)))

	if *profile {
		for _, v := range frame.DriftProfile() {
			fmt.Printf("%g\n", v)
		}
	}
	if *column >= 0 {
		if *column >= frame.TOFBins {
			fmt.Fprintf(os.Stderr, "framedump: column %d out of range [0,%d)\n", *column, frame.TOFBins)
			os.Exit(1)
		}
		for _, v := range frame.DriftVector(*column) {
			fmt.Printf("%g\n", v)
		}
	}
}
