// Command htdeconv deconvolves a multiplexed drift waveform read from a CSV
// file (one value per line, or comma-separated) and writes the recovered
// arrival-time distribution to stdout as CSV.  The waveform length must be
// k·(2^n − 1) for the configured order and oversampling.
//
// Usage:
//
//	htdeconv -order N [-oversample K] [-defect D] [-decoder fht|standard|wiener]
//	         [-lambda L] input.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/hadamard"
	"repro/internal/prs"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "htdeconv: "+format+"\n", args...)
	os.Exit(1)
}

func readWaveform(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		for _, field := range strings.Split(text, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			out = append(out, v)
		}
	}
	return out, sc.Err()
}

func main() {
	order := flag.Int("order", 9, "m-sequence order")
	oversample := flag.Int("oversample", 1, "bins per sequence element")
	defect := flag.Int("defect", 0, "defect bins per open run")
	decoder := flag.String("decoder", "fht", "decoder: fht, standard or wiener")
	lambda := flag.Float64("lambda", 0, "Wiener regularization")
	flag.Parse()
	if flag.NArg() != 1 {
		fail("usage: htdeconv [flags] input.csv")
	}
	y, err := readWaveform(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}

	seq, err := prs.MSequence(*order)
	if err != nil {
		fail("%v", err)
	}
	if *oversample > 1 {
		seq = seq.Oversample(*oversample)
	}
	if *defect > 0 {
		seq = seq.Modify(*defect)
	}
	if len(y) != len(seq) {
		fail("waveform length %d does not match sequence length %d", len(y), len(seq))
	}

	var dec hadamard.Decoder
	switch *decoder {
	case "fht":
		if *oversample > 1 || *defect > 0 {
			fail("fht decoder requires a plain m-sequence; use -decoder wiener")
		}
		dec, err = hadamard.NewFHTDecoder(*order)
	case "standard":
		dec, err = hadamard.NewStandardDecoder(seq)
	case "wiener":
		dec, err = hadamard.NewWienerDecoder(seq, *lambda)
	default:
		fail("unknown decoder %q", *decoder)
	}
	if err != nil {
		fail("%v", err)
	}
	x, err := dec.Decode(y)
	if err != nil {
		fail("%v", err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, v := range x {
		fmt.Fprintf(w, "%g\n", v)
	}
}
