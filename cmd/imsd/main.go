// Command imsd is the frame-acquisition daemon: it serves the IMSP/1
// protocol over TCP, feeding frames from many concurrent clients through
// sharded worker pools running the modeled hybrid FPGA offload or the CPU
// software pipeline (see docs/SERVING.md for the protocol and backpressure
// semantics).
//
// Usage:
//
//	imsd [-addr HOST:PORT] [-shards N] [-depth N] [-workers N]
//	     [-order N] [-max-tof N] [-read-timeout D] [-write-timeout D]
//	     [-drain-timeout D] [-metrics ADDR]
//
// With -metrics, an HTTP endpoint serves the acq_* telemetry families in
// Prometheus text format at /metrics (JSON at /metrics.json) plus
// net/http/pprof under /debug/pprof/.  On SIGINT or SIGTERM the daemon
// drains gracefully: it stops accepting, completes every queued frame,
// flushes responses, and exits 0; -drain-timeout bounds the wait.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/acqserver"
	"repro/internal/telemetry"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "imsd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	cfg := acqserver.DefaultConfig()
	addr := flag.String("addr", "127.0.0.1:7071", "listen address")
	flag.IntVar(&cfg.Shards, "shards", cfg.Shards, "independent bounded work queues")
	flag.IntVar(&cfg.QueueDepth, "depth", cfg.QueueDepth, "frames queued per shard before shedding")
	flag.IntVar(&cfg.WorkersPerShard, "workers", cfg.WorkersPerShard, "worker goroutines per shard")
	flag.IntVar(&cfg.Order, "order", cfg.Order, "m-sequence order served (frames need 2^order-1 drift bins)")
	flag.IntVar(&cfg.MaxTOFBins, "max-tof", cfg.MaxTOFBins, "largest accepted m/z axis")
	flag.DurationVar(&cfg.ReadIdleTimeout, "read-timeout", cfg.ReadIdleTimeout, "per-message read deadline")
	flag.DurationVar(&cfg.WriteTimeout, "write-timeout", cfg.WriteTimeout, "per-response write deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM")
	metricsAddr := flag.String("metrics", "", "serve telemetry and pprof on this HTTP address (e.g. localhost:9090)")
	flag.Parse()

	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	if *metricsAddr != "" {
		http.Handle("/metrics", reg.Handler())
		http.Handle("/metrics.json", reg.Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "imsd: metrics server: %v\n", err)
			}
		}()
		fmt.Printf("imsd metrics on http://%s/metrics\n", *metricsAddr)
	}

	srv, err := acqserver.NewServer(cfg)
	if err != nil {
		fail("%v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("imsd listening on %s (order %d, %d shards x depth %d, %d workers each)\n",
		ln.Addr(), cfg.Order, cfg.Shards, cfg.QueueDepth, cfg.WorkersPerShard)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fail("serve: %v", err)
	case sig := <-sigc:
		fmt.Printf("imsd received %v, draining (bound %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fail("drain: %v", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, net.ErrClosed) {
			fail("serve: %v", err)
		}
		fmt.Println("imsd drained cleanly")
	}
}
