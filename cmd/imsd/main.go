// Command imsd is the frame-acquisition daemon: it serves the IMSP
// protocol over TCP, feeding frames from many concurrent clients through
// sharded worker pools running the modeled hybrid FPGA offload or the CPU
// software pipeline (see docs/SERVING.md for the protocol and backpressure
// semantics).
//
// Usage:
//
//	imsd [-addr HOST:PORT] [-shards N] [-depth N] [-workers N]
//	     [-order N] [-max-tof N] [-read-timeout D] [-write-timeout D]
//	     [-drain-timeout D] [-drain-grace D] [-metrics ADDR]
//	     [-health-interval D] [-slo-latency D] [-slo-latency-target F]
//	     [-slo-shed-budget F] [-slo-error-budget F]
//	     [-trace FILE] [-trace-slow D] [-trace-sample N] [-trace-ring N]
//	     [-framelog DIR] [-framelog-fsync always|interval|none]
//	     [-framelog-fsync-interval D] [-framelog-segment-bytes N]
//	     [-framelog-segment-age D] [-framelog-retain K]
//	     [-events N] [-events-dump DIR] [-pprof ADDR]
//	     [-profile-dir DIR] [-profile-cpu D] [-profile-interval D]
//	     [-profile-retain K] [-coalesce-window D] [-coalesce-fill N]
//	     [-fwht-kernel NAME] [-history DIR] [-history-interval D]
//	     [-history-retain-raw D] [-anomaly-threshold F]
//	     [-anomaly-warmup N] [-anomaly-hold N]
//
// With -framelog, every accepted frame is appended to a durable,
// segmented, CRC-verified write-ahead log before it is enqueued, and on
// startup any records past the last-completed watermark are re-enqueued
// through the same worker pools (crash recovery).  Under -framelog-fsync
// always an acknowledged frame survives power loss; under interval or
// none, results carry a not-durable flag instead.  See docs/DURABILITY.md
// for the format, the fsync trade-offs, and the replay runbook.
//
// With -metrics, an HTTP endpoint serves the acq_* telemetry families in
// Prometheus text format at /metrics (JSON at /metrics.json, with rolling
// 60-second window quantiles alongside the cumulative ones), the Go
// runtime and build-info gauges, the span-tree ring buffer at
// /debug/traces, the wide-event flight recorder at /debug/events (one
// structured event per answered frame; -events sizes the ring and
// -events-dump enables black-box dumps on SLO degradation and recovered
// panics), plus net/http/pprof under /debug/pprof/ (also on a dedicated
// -pprof address).  With -profile-dir, a sampler continuously captures
// rotating CPU and heap profiles (-profile-cpu long, every
// -profile-interval, keeping -profile-retain per kind) that
// cmd/profiledump summarizes by pprof label.  The same
// server answers /healthz (liveness: 200 while the process runs) and
// /readyz (readiness: 503 while draining or while an SLO error budget
// burns UNHEALTHY — see docs/OBSERVABILITY.md).  Three SLOs are
// evaluated every -health-interval: frame latency (-slo-latency at
// -slo-latency-target), shed rate (-slo-shed-budget of frames may be
// shed), and error rate (-slo-error-budget of responses may be
// INTERNAL).  While health is DEGRADED or worse the daemon sheds
// earlier, at half queue depth, to stop the burn from compounding.
// With -trace, every frame is traced (socket read, queue wait, worker,
// modeled FPGA/DMA stages, response write) under the tail-sampling policy
// set by -trace-slow and -trace-sample, and the retained trees are written
// as Chrome/Perfetto trace-event JSON on exit.  Logs are structured
// (log/slog text) with trace and request ids attached.  On SIGINT or
// SIGTERM the daemon drains gracefully: it flips /readyz to 503, waits
// -drain-grace for load balancers to notice, stops accepting, completes
// every queued frame, flushes responses, and exits 0; -drain-timeout
// bounds the wait.
//
// With -history, a sampler goroutine diffs registry snapshots every
// -history-interval into an embedded on-disk time-series store (raw, 1m
// and 10m resolutions with per-resolution retention), served back at
// /metrics/history with family/label/range/quantile parameters — so
// "what did p99 look like an hour ago, across the last restart" is
// answerable without external infrastructure.  An EWMA+MAD anomaly
// detector watches frame-latency p99 and shed spikes over the sampled
// stream (tune with -anomaly-threshold/-warmup/-hold); an active episode
// turns the matching anomaly_* SLO DEGRADED, which sheds earlier and
// trips the flight-recorder black-box dump.  See docs/OBSERVABILITY.md.
//
// With -coalesce-window, CPU-path frames from different sessions that
// land on the same shard are micro-batched: a worker waits up to the
// window (or until -coalesce-fill frames arrive) and decodes the batch
// as one concatenated column space, trading bounded per-frame latency
// for blocked-kernel throughput (see docs/PERFORMANCE.md).  -fwht-kernel
// pins the FWHT block kernel (radix2, radix4, radix8) instead of the
// build-time default.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/acqserver"
	"repro/internal/framelog"
	"repro/internal/hadamard"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/health"
	"repro/internal/telemetry/profiler"
	"repro/internal/telemetry/runtimemetrics"
	"repro/internal/telemetry/trace"
	"repro/internal/telemetry/tsdb"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "imsd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	cfg := acqserver.DefaultConfig()
	addr := flag.String("addr", "127.0.0.1:7071", "listen address")
	flag.IntVar(&cfg.Shards, "shards", cfg.Shards, "independent bounded work queues")
	flag.IntVar(&cfg.QueueDepth, "depth", cfg.QueueDepth, "frames queued per shard before shedding")
	flag.IntVar(&cfg.WorkersPerShard, "workers", cfg.WorkersPerShard, "worker goroutines per shard")
	flag.IntVar(&cfg.Order, "order", cfg.Order, "m-sequence order served (frames need 2^order-1 drift bins)")
	flag.IntVar(&cfg.MaxTOFBins, "max-tof", cfg.MaxTOFBins, "largest accepted m/z axis")
	flag.DurationVar(&cfg.ReadIdleTimeout, "read-timeout", cfg.ReadIdleTimeout, "per-message read deadline")
	flag.DurationVar(&cfg.WriteTimeout, "write-timeout", cfg.WriteTimeout, "per-response write deadline")
	flag.DurationVar(&cfg.CoalesceWindow, "coalesce-window", cfg.CoalesceWindow, "coalesce CPU-path frames across sessions for up to this long per batch (0 disables)")
	flag.IntVar(&cfg.CoalesceFillTarget, "coalesce-fill", cfg.CoalesceFillTarget, "dispatch a coalescing batch early at this many frames (needs -coalesce-window)")
	fwhtKernel := flag.String("fwht-kernel", "", "override the FWHT block kernel (see internal/hadamard: radix2, radix4, radix8)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM")
	drainGrace := flag.Duration("drain-grace", 0, "after SIGTERM, hold /readyz at 503 this long before draining so load balancers stop routing first")
	metricsAddr := flag.String("metrics", "", "serve telemetry, health and pprof on this HTTP address (e.g. localhost:9090)")
	healthInterval := flag.Duration("health-interval", 5*time.Second, "SLO evaluation period")
	sloLatency := flag.Duration("slo-latency", 250*time.Millisecond, "frame-latency SLO threshold (rounds up to the enclosing power-of-two bucket)")
	sloLatencyTarget := flag.Float64("slo-latency-target", 0.99, "fraction of frames that must process under -slo-latency")
	sloShedBudget := flag.Float64("slo-shed-budget", 0.05, "fraction of offered frames that may be shed before the budget burns")
	sloErrorBudget := flag.Float64("slo-error-budget", 0.01, "fraction of responses that may be INTERNAL before the budget burns")
	tracePath := flag.String("trace", "", "trace every frame and write retained span trees as Perfetto JSON to this file on exit")
	traceSlow := flag.Duration("trace-slow", 0, "keep every trace at least this slow (0 keeps all)")
	traceSample := flag.Int("trace-sample", trace.DefaultSampleEvery, "uniformly keep 1 in N traces under the slow threshold")
	traceRing := flag.Int("trace-ring", trace.DefaultRingSize, "retained traces per ring (slow and sampled)")
	walDir := flag.String("framelog", "", "append every accepted frame to a durable frame log in this directory (see docs/DURABILITY.md)")
	walFsync := flag.String("framelog-fsync", "interval", "frame-log fsync policy: always, interval, or none")
	walFsyncInterval := flag.Duration("framelog-fsync-interval", 50*time.Millisecond, "sync period under -framelog-fsync interval")
	walSegBytes := flag.Int64("framelog-segment-bytes", 64<<20, "rotate frame-log segments at this size")
	walSegAge := flag.Duration("framelog-segment-age", 0, "also rotate non-empty segments older than this (0 = never)")
	walRetain := flag.Int("framelog-retain", 16, "sealed segments kept before the janitor deletes the oldest (0 = keep all)")
	eventsRing := flag.Int("events", 4096, "wide events retained in the flight-recorder ring (0 disables)")
	eventsDump := flag.String("events-dump", "", "write flight-recorder black-box dumps to this directory on SLO degradation and recovered panics")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this dedicated HTTP address (pprof is also on -metrics)")
	historyDir := flag.String("history", "", "persist sampled metric history into this directory and serve /metrics/history (see docs/OBSERVABILITY.md)")
	historyInterval := flag.Duration("history-interval", 5*time.Second, "metric history sampling period")
	historyRetainRaw := flag.Duration("history-retain-raw", 2*time.Hour, "raw-resolution history retention")
	anomalyThreshold := flag.Float64("anomaly-threshold", 4, "robust-sigma score at which a watched series is anomalous (0 disables the detector; needs -history)")
	anomalyWarmup := flag.Int("anomaly-warmup", 12, "history samples a target needs before anomaly scoring starts")
	anomalyHold := flag.Int("anomaly-hold", 2, "consecutive anomalous samples before the anomaly SLO flips")
	profileDir := flag.String("profile-dir", "", "continuously capture rotating CPU+heap profiles into this directory")
	profileCPU := flag.Duration("profile-cpu", 10*time.Second, "length of each continuous CPU profile capture")
	profileInterval := flag.Duration("profile-interval", 60*time.Second, "period between continuous profile captures")
	profileRetain := flag.Int("profile-retain", 16, "profiles kept per kind before the janitor deletes the oldest")
	flag.Parse()

	if *fwhtKernel != "" {
		if err := hadamard.SelectKernel(*fwhtKernel); err != nil {
			fail("%v", err)
		}
	}

	log := slog.New(slog.NewTextHandler(os.Stdout, nil))
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	cfg.Logger = log
	runtimemetrics.Register(reg)

	var flight *flightrec.Recorder
	if *eventsRing > 0 {
		flight = flightrec.New(flightrec.Config{
			Size:    *eventsRing,
			Metrics: reg,
			DumpDir: *eventsDump,
			Logger:  log,
		})
		cfg.FlightRecorder = flight
	}

	eval := buildEvaluator(reg, *sloLatency, *sloLatencyTarget, *sloShedBudget, *sloErrorBudget, flight, log)
	cfg.DegradedMode = func() bool { return eval.Status() >= health.Degraded }

	// Metric history: an embedded tsdb fed by a snapshot-diff sampler,
	// with an EWMA+MAD anomaly detector over the stored series wired in
	// as anomaly SLOs (active episode => DEGRADED => flight-recorder
	// dump via OnTransition, earlier shedding via DegradedMode).
	var hist *tsdb.Store
	var sampler *tsdb.Sampler
	if *historyDir != "" {
		hcfg := tsdb.DefaultConfig(*historyDir)
		hcfg.RetainRaw = *historyRetainRaw
		hcfg.Metrics = reg
		hcfg.Logf = func(format string, args ...any) { log.Info(fmt.Sprintf(format, args...)) }
		var err error
		hist, err = tsdb.Open(hcfg)
		if err != nil {
			fail("history: %v", err)
		}
		sampler = tsdb.NewSampler(reg, hist, *historyInterval)
		if *anomalyThreshold > 0 {
			detector := tsdb.NewDetector(tsdb.DetectorConfig{
				Targets: []tsdb.Target{
					{Name: "frame_latency_p99", Family: "acq_process_ns", Quantile: 0.99},
					{Name: "shed_spike", Family: "acq_shed_total"},
				},
				Threshold: *anomalyThreshold,
				Warmup:    *anomalyWarmup,
				Hold:      *anomalyHold,
				Metrics:   reg,
			}, hist)
			detector.WarmupFromStore(30 * time.Minute)
			sampler.OnSample(detector.Observe)
			for _, name := range detector.TargetNames() {
				target := name
				eval.AddAnomaly(health.AnomalySLO{
					Name: "anomaly_" + target,
					Source: func() (float64, bool, string) {
						score, active, reason := detector.Status(target)
						return score / detector.Threshold(), active, reason
					},
				})
			}
		}
		go sampler.Run()
		log.Info("metric history on", "dir", *historyDir,
			"interval", historyInterval.String(), "anomaly_threshold", *anomalyThreshold)
	}

	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New(trace.Config{
			SlowThreshold: *traceSlow,
			SampleEvery:   *traceSample,
			RingSize:      *traceRing,
		})
		cfg.Trace = tracer
	}

	var wal *framelog.Log
	if *walDir != "" {
		policy, err := framelog.ParseFsyncPolicy(*walFsync)
		if err != nil {
			fail("%v", err)
		}
		wcfg := framelog.DefaultConfig(*walDir)
		wcfg.Fsync = policy
		wcfg.FsyncInterval = *walFsyncInterval
		wcfg.SegmentBytes = *walSegBytes
		wcfg.SegmentMaxAge = *walSegAge
		wcfg.RetainSegments = *walRetain
		wcfg.Metrics = reg
		wcfg.Trace = tracer
		wcfg.Logger = log
		wal, err = framelog.Open(wcfg)
		if err != nil {
			fail("framelog: %v", err)
		}
		info := wal.RecoveryInfo()
		log.Info("framelog recovered",
			"dir", *walDir, "fsync", policy.String(),
			"records", info.Records, "segments", info.Segments,
			"first_seq", info.FirstSeq, "last_seq", info.LastSeq,
			"watermark", info.Watermark, "pending", info.Pending,
			"truncated_bytes", info.TruncatedBytes)
		cfg.FrameLog = wal
	}

	srv, err := acqserver.NewServer(cfg)
	if err != nil {
		fail("%v", err)
	}
	if wal != nil {
		go func() {
			n, err := srv.RecoverFrames(context.Background())
			if err != nil {
				log.Error("framelog replay stopped", "enqueued", n, "err", err)
				return
			}
			if n > 0 {
				log.Info("framelog replay enqueued", "frames", n)
			}
		}()
	}

	healthCtx, stopHealth := context.WithCancel(context.Background())
	defer stopHealth()
	go eval.Run(healthCtx, *healthInterval)

	if *profileDir != "" {
		sampler, err := profiler.New(profiler.Config{
			Dir:         *profileDir,
			CPUDuration: *profileCPU,
			Interval:    *profileInterval,
			Retain:      *profileRetain,
			Metrics:     reg,
			Logger:      log,
		})
		if err != nil {
			fail("%v", err)
		}
		go sampler.Run(healthCtx)
		log.Info("continuous profiling on", "dir", *profileDir, "cpu", profileCPU.String(), "interval", profileInterval.String())
	}
	if *pprofAddr != "" {
		// net/http/pprof registers on the default mux; serving the default
		// mux on a second address gives pprof its own port (some deploys
		// firewall /metrics but want profiling reachable, or vice versa).
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Error("pprof server failed", "err", err)
			}
		}()
		log.Info("imsd pprof server up", "url", fmt.Sprintf("http://%s/debug/pprof/", *pprofAddr))
	}

	// drainStarted flips /readyz before Shutdown begins, so with a
	// -drain-grace load balancers can stop routing while the daemon still
	// answers — the standard preStop pattern.
	var drainStarted atomic.Bool
	if *metricsAddr != "" {
		http.Handle("/metrics", reg.Handler())
		http.Handle("/metrics.json", reg.Handler())
		http.Handle("/metrics/history", hist.Handler())
		http.Handle("/debug/traces", tracer.Handler())
		http.Handle("/debug/events", flight.Handler())
		http.Handle("/healthz", health.LivenessHandler())
		http.Handle("/readyz", eval.ReadinessHandler(func() (bool, string) {
			if drainStarted.Load() || srv.Draining() {
				return true, "draining"
			}
			return false, ""
		}))
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				log.Error("metrics server failed", "err", err)
			}
		}()
		log.Info("imsd metrics server up", "url", fmt.Sprintf("http://%s/metrics", *metricsAddr))
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	log.Info("imsd listening on "+ln.Addr().String(),
		"order", cfg.Order, "shards", cfg.Shards, "depth", cfg.QueueDepth,
		"workers_per_shard", cfg.WorkersPerShard, "tracing", tracer != nil)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fail("serve: %v", err)
	case sig := <-sigc:
		drainStarted.Store(true)
		if *drainGrace > 0 {
			log.Info("imsd not ready, holding for drain grace", "grace", drainGrace.String())
			time.Sleep(*drainGrace)
		}
		log.Info("imsd draining", "signal", sig.String(), "bound", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fail("drain: %v", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, net.ErrClosed) {
			fail("serve: %v", err)
		}
		if err := writeTrace(tracer, *tracePath); err != nil {
			fail("trace: %v", err)
		}
		if sampler != nil {
			sampler.Stop()
			sampler.SampleOnce(time.Now()) // capture the drain's final deltas
		}
		if err := hist.Close(); err != nil {
			fail("history close: %v", err)
		}
		log.Info("imsd drained cleanly")
	}
}

// buildEvaluator declares the daemon's three SLOs over the same telemetry
// instances the acquisition server updates — the registry hands back the
// identical handle for a given family name and label set, so nothing
// internal to acqserver needs exporting.  Every slide into DEGRADED or
// worse trips a flight-recorder black-box dump: the ring's last N wide
// events are exactly the requests that burned the budget.
func buildEvaluator(reg *telemetry.Registry, latency time.Duration, latencyTarget, shedBudget, errorBudget float64, flight *flightrec.Recorder, log *slog.Logger) *health.Evaluator {
	e := health.New(health.Config{
		Metrics: reg,
		OnTransition: func(from, to health.Status, rep health.Report) {
			log.Warn("health status changed", "from", from.String(), "to", to.String())
			if to >= health.Degraded {
				if path, err := flight.Dump(to.String()); err != nil {
					log.Error("flight recorder dump failed", "err", err)
				} else if path != "" {
					log.Info("flight recorder dumped", "reason", to.String(), "path", path)
				}
			}
		},
	})

	e.AddLatency(health.LatencySLO{
		Name: "frame_latency",
		Hists: []*telemetry.Histogram{
			reg.Histogram("acq_process_ns", "deconvolution wall time per compute path, nanoseconds", telemetry.L("path", "hybrid")),
			reg.Histogram("acq_process_ns", "deconvolution wall time per compute path, nanoseconds", telemetry.L("path", "cpu")),
		},
		ThresholdNs: float64(latency.Nanoseconds()),
		Target:      latencyTarget,
	})

	var sheds, frames []*telemetry.Counter
	for _, r := range []string{"queue_full", "draining", "degraded"} {
		sheds = append(sheds, reg.Counter("acq_shed_total", "frames rejected by load shedding, per reason", telemetry.L("reason", r)))
	}
	for _, p := range []string{"hybrid", "cpu"} {
		frames = append(frames, reg.Counter("acq_frames_total", "frames accepted for processing per compute path", telemetry.L("path", p)))
	}
	sumShed := func() int64 {
		var n int64
		for _, c := range sheds {
			n += c.Value()
		}
		return n
	}
	e.AddRatio(health.RatioSLO{
		Name: "shed_rate",
		Bad:  sumShed,
		Total: func() int64 { // offered load = accepted + shed
			n := sumShed()
			for _, c := range frames {
				n += c.Value()
			}
			return n
		},
		Budget: shedBudget,
	})

	internal := reg.Counter("acq_responses_total", "responses sent per status code", telemetry.L("code", "INTERNAL"))
	var responses []*telemetry.Counter
	for _, code := range []string{"OK", "INVALID_ARGUMENT", "RESOURCE_EXHAUSTED", "DEADLINE_EXCEEDED", "UNAVAILABLE", "INTERNAL", "TOO_LARGE"} {
		responses = append(responses, reg.Counter("acq_responses_total", "responses sent per status code", telemetry.L("code", code)))
	}
	e.AddRatio(health.RatioSLO{
		Name: "error_rate",
		Bad:  internal.Value,
		Total: func() int64 {
			var n int64
			for _, c := range responses {
				n += c.Value()
			}
			return n
		},
		Budget: errorBudget,
	})
	return e
}

// writeTrace dumps the tracer's retained span trees as Perfetto JSON.
func writeTrace(tracer *trace.Tracer, path string) error {
	if tracer == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WritePerfetto(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
