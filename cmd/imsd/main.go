// Command imsd is the frame-acquisition daemon: it serves the IMSP
// protocol over TCP, feeding frames from many concurrent clients through
// sharded worker pools running the modeled hybrid FPGA offload or the CPU
// software pipeline (see docs/SERVING.md for the protocol and backpressure
// semantics).
//
// Usage:
//
//	imsd [-addr HOST:PORT] [-shards N] [-depth N] [-workers N]
//	     [-order N] [-max-tof N] [-read-timeout D] [-write-timeout D]
//	     [-drain-timeout D] [-metrics ADDR]
//	     [-trace FILE] [-trace-slow D] [-trace-sample N] [-trace-ring N]
//
// With -metrics, an HTTP endpoint serves the acq_* telemetry families in
// Prometheus text format at /metrics (JSON at /metrics.json), the span-tree
// ring buffer at /debug/traces, plus net/http/pprof under /debug/pprof/.
// With -trace, every frame is traced (socket read, queue wait, worker,
// modeled FPGA/DMA stages, response write) under the tail-sampling policy
// set by -trace-slow and -trace-sample, and the retained trees are written
// as Chrome/Perfetto trace-event JSON on exit.  Logs are structured
// (log/slog text) with trace and request ids attached.  On SIGINT or
// SIGTERM the daemon drains gracefully: it stops accepting, completes every
// queued frame, flushes responses, and exits 0; -drain-timeout bounds the
// wait.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/acqserver"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "imsd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	cfg := acqserver.DefaultConfig()
	addr := flag.String("addr", "127.0.0.1:7071", "listen address")
	flag.IntVar(&cfg.Shards, "shards", cfg.Shards, "independent bounded work queues")
	flag.IntVar(&cfg.QueueDepth, "depth", cfg.QueueDepth, "frames queued per shard before shedding")
	flag.IntVar(&cfg.WorkersPerShard, "workers", cfg.WorkersPerShard, "worker goroutines per shard")
	flag.IntVar(&cfg.Order, "order", cfg.Order, "m-sequence order served (frames need 2^order-1 drift bins)")
	flag.IntVar(&cfg.MaxTOFBins, "max-tof", cfg.MaxTOFBins, "largest accepted m/z axis")
	flag.DurationVar(&cfg.ReadIdleTimeout, "read-timeout", cfg.ReadIdleTimeout, "per-message read deadline")
	flag.DurationVar(&cfg.WriteTimeout, "write-timeout", cfg.WriteTimeout, "per-response write deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM")
	metricsAddr := flag.String("metrics", "", "serve telemetry and pprof on this HTTP address (e.g. localhost:9090)")
	tracePath := flag.String("trace", "", "trace every frame and write retained span trees as Perfetto JSON to this file on exit")
	traceSlow := flag.Duration("trace-slow", 0, "keep every trace at least this slow (0 keeps all)")
	traceSample := flag.Int("trace-sample", trace.DefaultSampleEvery, "uniformly keep 1 in N traces under the slow threshold")
	traceRing := flag.Int("trace-ring", trace.DefaultRingSize, "retained traces per ring (slow and sampled)")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stdout, nil))
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	cfg.Logger = log

	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New(trace.Config{
			SlowThreshold: *traceSlow,
			SampleEvery:   *traceSample,
			RingSize:      *traceRing,
		})
		cfg.Trace = tracer
	}

	if *metricsAddr != "" {
		http.Handle("/metrics", reg.Handler())
		http.Handle("/metrics.json", reg.Handler())
		http.Handle("/debug/traces", tracer.Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				log.Error("metrics server failed", "err", err)
			}
		}()
		log.Info("imsd metrics server up", "url", fmt.Sprintf("http://%s/metrics", *metricsAddr))
	}

	srv, err := acqserver.NewServer(cfg)
	if err != nil {
		fail("%v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	log.Info("imsd listening on "+ln.Addr().String(),
		"order", cfg.Order, "shards", cfg.Shards, "depth", cfg.QueueDepth,
		"workers_per_shard", cfg.WorkersPerShard, "tracing", tracer != nil)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fail("serve: %v", err)
	case sig := <-sigc:
		log.Info("imsd draining", "signal", sig.String(), "bound", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fail("drain: %v", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, net.ErrClosed) {
			fail("serve: %v", err)
		}
		if err := writeTrace(tracer, *tracePath); err != nil {
			fail("trace: %v", err)
		}
		log.Info("imsd drained cleanly")
	}
}

// writeTrace dumps the tracer's retained span trees as Perfetto JSON.
func writeTrace(tracer *trace.Tracer, path string) error {
	if tracer == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WritePerfetto(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
