// Command imsgw is the cluster gateway: an IMSP/2-speaking front tier
// that consistent-hashes client sessions over a fleet of imsd backends,
// proxies frames over pooled multiplexed upstream connections, retries
// shed or failed requests once on a sibling backend under a per-session
// budget, and drains backends out of its routing ring the moment their
// /readyz flips — so a rolling restart of one backend loses nothing
// beyond the declared shed budget (see docs/CLUSTER.md).
//
// Usage:
//
//	imsgw -backends ADDR[@READYZ_URL],ADDR[@READYZ_URL],...
//	      [-addr HOST:PORT] [-replicas N] [-pool N]
//	      [-probe-interval D] [-dial-timeout D] [-upstream-timeout D]
//	      [-retry-budget N] [-max-inflight N]
//	      [-read-timeout D] [-write-timeout D]
//	      [-drain-timeout D] [-drain-grace D] [-metrics ADDR]
//	      [-trace FILE] [-trace-slow D] [-trace-sample N] [-trace-ring N]
//	      [-events N] [-events-dump DIR] [-pprof ADDR]
//	      [-profile-dir DIR] [-profile-cpu D] [-profile-interval D]
//	      [-profile-retain K] [-history DIR] [-history-interval D]
//	      [-fleet-record-interval D]
//
// Each backend is named by its IMSP address, optionally followed by
// @URL pointing at its /readyz endpoint; without a URL the gateway
// probes by TCP dial.  With -metrics, an HTTP endpoint serves the gw_*
// telemetry families at /metrics (JSON at /metrics.json), the fleet
// rollup at /metrics/fleet (the gateway scrapes every backend's metrics
// and re-exposes the triage families as gw_fleet_* gauges labeled by
// backend — cmd/imstop -fleet renders it as a one-screen cluster view;
// it needs @READYZ_URL entries, since the metrics URL is derived from
// them), the gateway's span rings at /debug/traces, the wide-event
// flight recorder at /debug/events, /healthz liveness, and /readyz
// readiness — 503 while draining or while zero backends are on the
// routing ring, so a load balancer in front of several gateways can
// route around one that has lost its whole fleet.  -events, -events-dump,
// -pprof and the -profile-* flags behave exactly as on imsd.
//
// With -history, the gateway persists sampled metric history exactly as
// imsd does (embedded tsdb, /metrics/history endpoint) — and, because a
// fleet recorder re-scrapes every backend each -fleet-record-interval
// and publishes the gw_fleet_* gauges into the gateway's own registry,
// the stored history includes per-backend fleet series: one gateway
// history directory answers "how was backend X doing an hour ago" for
// the whole cluster (see docs/OBSERVABILITY.md).
//
// On SIGINT/SIGTERM the gateway flips
// /readyz, holds -drain-grace, stops accepting, lets in-flight proxied
// frames finish on their backends, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/health"
	"repro/internal/telemetry/profiler"
	"repro/internal/telemetry/runtimemetrics"
	"repro/internal/telemetry/trace"
	"repro/internal/telemetry/tsdb"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "imsgw: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	cfg := gateway.DefaultConfig()
	addr := flag.String("addr", "127.0.0.1:7070", "listen address for client sessions")
	backends := flag.String("backends", "", "comma-separated imsd fleet: ADDR or ADDR@READYZ_URL per backend")
	flag.IntVar(&cfg.Replicas, "replicas", cfg.Replicas, "virtual nodes per backend on the hash ring")
	flag.IntVar(&cfg.PoolSize, "pool", cfg.PoolSize, "multiplexed upstream connections per backend")
	flag.DurationVar(&cfg.ProbeInterval, "probe-interval", cfg.ProbeInterval, "backend readiness poll period")
	flag.DurationVar(&cfg.DialTimeout, "dial-timeout", cfg.DialTimeout, "upstream dial bound")
	flag.DurationVar(&cfg.UpstreamTimeout, "upstream-timeout", cfg.UpstreamTimeout, "one proxied request bound (a retried request may take twice this)")
	flag.IntVar(&cfg.RetryBudget, "retry-budget", cfg.RetryBudget, "sibling retries one client session may consume (0 disables retries)")
	flag.IntVar(&cfg.MaxInflight, "max-inflight", cfg.MaxInflight, "concurrently proxied frames per session before the read loop applies backpressure")
	flag.DurationVar(&cfg.ReadIdleTimeout, "read-timeout", cfg.ReadIdleTimeout, "per-message client read deadline")
	flag.DurationVar(&cfg.WriteTimeout, "write-timeout", cfg.WriteTimeout, "per-response client write deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM")
	drainGrace := flag.Duration("drain-grace", 0, "after SIGTERM, hold /readyz at 503 this long before draining so load balancers stop routing first")
	metricsAddr := flag.String("metrics", "", "serve telemetry, health and pprof on this HTTP address (e.g. localhost:9090)")
	tracePath := flag.String("trace", "", "trace every proxied frame and write retained span trees as Perfetto JSON to this file on exit")
	traceSlow := flag.Duration("trace-slow", 0, "keep every trace at least this slow (0 keeps all)")
	traceSample := flag.Int("trace-sample", trace.DefaultSampleEvery, "uniformly keep 1 in N traces under the slow threshold")
	traceRing := flag.Int("trace-ring", trace.DefaultRingSize, "retained traces per ring (slow and sampled)")
	eventsRing := flag.Int("events", 4096, "wide events retained in the flight-recorder ring (0 disables)")
	eventsDump := flag.String("events-dump", "", "write flight-recorder black-box dumps to this directory on recovered panics")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this dedicated HTTP address (pprof is also on -metrics)")
	profileDir := flag.String("profile-dir", "", "continuously capture rotating CPU+heap profiles into this directory")
	profileCPU := flag.Duration("profile-cpu", 10*time.Second, "length of each continuous CPU profile capture")
	profileInterval := flag.Duration("profile-interval", 60*time.Second, "period between continuous profile captures")
	profileRetain := flag.Int("profile-retain", 16, "profiles kept per kind before the janitor deletes the oldest")
	historyDir := flag.String("history", "", "persist sampled metric history (including per-backend gw_fleet_* series) into this directory and serve /metrics/history")
	historyInterval := flag.Duration("history-interval", 5*time.Second, "metric history sampling period")
	fleetRecordInterval := flag.Duration("fleet-record-interval", 10*time.Second, "how often the fleet recorder scrapes backends into the gateway registry (needs -history to persist)")
	flag.Parse()

	fleet, err := parseBackends(*backends)
	if err != nil {
		fail("%v", err)
	}
	cfg.Backends = fleet

	log := slog.New(slog.NewTextHandler(os.Stdout, nil))
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	cfg.Logger = log
	runtimemetrics.Register(reg)

	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New(trace.Config{
			SlowThreshold: *traceSlow,
			SampleEvery:   *traceSample,
			RingSize:      *traceRing,
		})
		cfg.Trace = tracer
	}

	var flight *flightrec.Recorder
	if *eventsRing > 0 {
		flight = flightrec.New(flightrec.Config{
			Size:    *eventsRing,
			Metrics: reg,
			DumpDir: *eventsDump,
			Logger:  log,
		})
		cfg.FlightRecorder = flight
	}

	gw, err := gateway.New(cfg)
	if err != nil {
		fail("%v", err)
	}

	// Metric history plus the fleet recorder: scrape the backends into
	// the gateway's own registry so the sampler persists per-backend
	// gw_fleet_* series alongside the gateway's gw_* families.
	var hist *tsdb.Store
	var sampler *tsdb.Sampler
	if *historyDir != "" {
		hcfg := tsdb.DefaultConfig(*historyDir)
		hcfg.Metrics = reg
		hcfg.Logf = func(format string, args ...any) { log.Info(fmt.Sprintf(format, args...)) }
		hist, err = tsdb.Open(hcfg)
		if err != nil {
			fail("history: %v", err)
		}
		sampler = tsdb.NewSampler(reg, hist, *historyInterval)
		go sampler.Run()
		recCtx, stopRec := context.WithCancel(context.Background())
		defer stopRec()
		go gw.RunFleetRecorder(recCtx, *fleetRecordInterval)
		log.Info("metric history on", "dir", *historyDir,
			"interval", historyInterval.String(), "fleet_record_interval", fleetRecordInterval.String())
	}

	if *profileDir != "" {
		sampler, err := profiler.New(profiler.Config{
			Dir:         *profileDir,
			CPUDuration: *profileCPU,
			Interval:    *profileInterval,
			Retain:      *profileRetain,
			Metrics:     reg,
			Logger:      log,
		})
		if err != nil {
			fail("%v", err)
		}
		profCtx, stopProf := context.WithCancel(context.Background())
		defer stopProf()
		go sampler.Run(profCtx)
		log.Info("continuous profiling on", "dir", *profileDir, "cpu", profileCPU.String(), "interval", profileInterval.String())
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Error("pprof server failed", "err", err)
			}
		}()
		log.Info("imsgw pprof server up", "url", fmt.Sprintf("http://%s/debug/pprof/", *pprofAddr))
	}

	var drainStarted atomic.Bool
	if *metricsAddr != "" {
		http.Handle("/metrics", reg.Handler())
		http.Handle("/metrics.json", reg.Handler())
		http.Handle("/metrics/fleet", gw.FleetHandler())
		http.Handle("/metrics/history", hist.Handler())
		http.Handle("/debug/traces", tracer.Handler())
		http.Handle("/debug/events", flight.Handler())
		http.Handle("/healthz", health.LivenessHandler())
		var noEval *health.Evaluator
		http.Handle("/readyz", noEval.ReadinessHandler(func() (bool, string) {
			if drainStarted.Load() || gw.Draining() {
				return true, "draining"
			}
			if gw.ReadyBackends() == 0 {
				return true, "no ready backends"
			}
			return false, ""
		}))
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				log.Error("metrics server failed", "err", err)
			}
		}()
		log.Info("imsgw metrics server up", "url", fmt.Sprintf("http://%s/metrics", *metricsAddr))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	log.Info("imsgw listening on "+ln.Addr().String(),
		"backends", len(fleet), "replicas", cfg.Replicas, "pool", cfg.PoolSize,
		"retry_budget", cfg.RetryBudget, "tracing", tracer != nil)

	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fail("serve: %v", err)
	case sig := <-sigc:
		drainStarted.Store(true)
		if *drainGrace > 0 {
			log.Info("imsgw not ready, holding for drain grace", "grace", drainGrace.String())
			time.Sleep(*drainGrace)
		}
		log.Info("imsgw draining", "signal", sig.String(), "bound", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := gw.Shutdown(ctx); err != nil {
			fail("drain: %v", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, net.ErrClosed) {
			fail("serve: %v", err)
		}
		if err := writeTrace(tracer, *tracePath); err != nil {
			fail("trace: %v", err)
		}
		if sampler != nil {
			sampler.Stop()
			sampler.SampleOnce(time.Now())
		}
		if err := hist.Close(); err != nil {
			fail("history close: %v", err)
		}
		log.Info("imsgw drained cleanly")
	}
}

// parseBackends splits the -backends flag: comma-separated entries, each
// ADDR or ADDR@READYZ_URL.
func parseBackends(s string) ([]gateway.BackendConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("no -backends given (want ADDR[@READYZ_URL],...)")
	}
	var out []gateway.BackendConfig
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		addr, healthURL, _ := strings.Cut(entry, "@")
		if addr == "" {
			return nil, fmt.Errorf("backend entry %q has no address", entry)
		}
		out = append(out, gateway.BackendConfig{Addr: addr, HealthURL: healthURL})
	}
	if len(out) == 0 {
		return nil, errors.New("no backends parsed from -backends")
	}
	return out, nil
}

// writeTrace dumps the tracer's retained span trees as Perfetto JSON.
func writeTrace(tracer *trace.Tracer, path string) error {
	if tracer == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WritePerfetto(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
