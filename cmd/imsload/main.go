// Command imsload is the load generator for the imsd acquisition daemon:
// it drives M concurrent clients at a target per-client rate, submits
// synthetic multiplexed frames over IMSP, and reports the latency
// distribution (p50/p95/p99), throughput, and shed rate.
//
// Usage:
//
//	imsload [-addr HOST:PORT] [-topology single|cluster]
//	        [-clients N] [-rate R] [-duration D]
//	        [-tof N] [-path hybrid|cpu] [-deadline D] [-enc raw|delta]
//	        [-seed N] [-json FILE] [-trace FILE]
//	        [-wait-ready URL] [-wait-ready-timeout D] [-metrics URL]
//	        [-history URL] [-replay DIR] [-replay-rate F]
//
// With -replay, instead of generating synthetic frames imsload streams a
// captured frame log (written by imsd -framelog, see docs/DURABILITY.md)
// back through IMSP: every record's payload is submitted verbatim over a
// single connection, paced by the recorded inter-frame gaps divided by
// -replay-rate (1 = recorded rate, 2 = twice as fast, 0 = as fast as
// possible).  The -json report gains a "replay" block (source directory,
// segment count, seq range, records, rate multiplier) so replay runs are
// machine-comparable with live ones.
//
// Every run — live or replay — reports a response_digest: an
// order-insensitive combination of per-result FNV-1a hashes over the
// returned peak lists (timing, shard and routing fields excluded).  Two
// runs that deconvolved the same frames to the same peaks carry the same
// digest, which is how the wal-smoke proves a replayed capture is
// bit-identical to the original responses.
//
// With -topology cluster, -addr names an imsgw gateway rather than a
// single daemon.  Gateway results carry a routing trailer (which fleet
// backend served each frame and in how many delivery attempts), so the
// run report gains a per-backend breakdown — frames served and sibling
// retries per backend id — printed on the "fleet:" line and carried into
// -json under "backends".  The flag is declarative, not behavioural: the
// wire protocol is identical either way, and trailers that arrive in
// single mode are still tallied (with a note), so pointing single mode at
// a gateway degrades gracefully.
//
// With -wait-ready, imsload blocks until the daemon's /readyz endpoint
// answers 200 (retrying with backoff up to -wait-ready-timeout) before
// opening any client connection, so a just-started or still-draining
// daemon is never mistaken for a broken one.  The readiness report it
// fetches is carried into the -json output under "server_health".
//
// With -metrics, imsload scrapes the daemon's /metrics.json endpoint
// once after the run and summarizes the acq_coalesce_* families — batches
// per dispatch trigger (fill target reached vs window timeout vs queue
// drain), batch-fill and gather-wait quantiles — on a "coalesce:" line
// and, with -json, under "coalesce", so the -coalesce-window/-coalesce-fill
// trade-off is measurable from the client side.
//
// With -json and a history URL (given via -history, or derived from
// -metrics when the daemon runs with -history), the report also gains a
// "server_history" block: the daemon's acq_process_ns p99 and
// acq_shed_total increase series over the run window, fetched from
// /metrics/history (docs/OBSERVABILITY.md).  The run report alone is then
// enough to plot how the server's tail latency and shedding evolved while
// the load was applied.
//
// With -json, the run's full report — throughput, shed rate, latency
// quantiles and the server-side span-stage breakdown (queue wait, process,
// modeled XD1 time, from RESULT payloads) — is written as machine-readable
// JSON so perf trajectories can be recorded across runs.  With -trace,
// every request is traced client-side under a trace ID that also rides the
// IMSP/2 header, so the client span trees correlate with the server's
// /debug/traces output; the trees are written as Perfetto JSON at exit.
//
// Shed responses (RESOURCE_EXHAUSTED, UNAVAILABLE) are the daemon's
// explicit backpressure and are reported separately; they are not errors.
// imsload exits non-zero only on transport or protocol failures, so smoke
// tests can assert a clean run.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"net/http"
	neturl "net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/acqserver"
	"repro/internal/frameio"
	"repro/internal/framelog"
	"repro/internal/instrument"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/trace"
	"repro/internal/telemetry/tsdb"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "imsload: "+format+"\n", args...)
	os.Exit(1)
}

// clientStats is one worker's tally, merged after the run.
type clientStats struct {
	latencies []time.Duration
	ok        int
	shed      int
	rejected  map[acqserver.Code]int
	errs      []error
	server    serverBreakdown
	backends  map[uint16]*backendTally
	// digest is the wrapping sum of per-OK-result FNV-1a hashes over peak
	// lists (order-insensitive, so concurrent clients combine cleanly).
	digest uint64
	// notDurable counts OK responses flagged ResultFlagNotDurable (the
	// daemon's frame log is not fsyncing before the ACK).
	notDurable int
	// slowest holds the client's slowest requests, latency-descending,
	// capped at slowestKeep — each with the trace id the server echoed, so
	// a bad tail quantile resolves straight to /debug/traces and
	// /debug/events queries.
	slowest []slowRequest
}

// slowRequest names one completed request for the slowest-requests report.
type slowRequest struct {
	// LatencyNs is the client-observed round-trip time.
	LatencyNs int64 `json:"latency_ns"`
	// TraceID is the trace identity echoed on the IMSP/2 response header,
	// 16 lowercase hex digits; empty when tracing was off server-side.
	TraceID string `json:"trace_id,omitempty"`
	// Code is the response status.
	Code string `json:"code"`
}

// slowestKeep bounds the slowest-request lists (per client and merged).
const slowestKeep = 5

// tallySlow folds one completed request into the client's slowest list.
func (st *clientStats) tallySlow(lat time.Duration, traceID uint64, code acqserver.Code) {
	st.slowest = trimSlowest(append(st.slowest, slowRequest{
		LatencyNs: lat.Nanoseconds(),
		TraceID:   flightrec.TraceIDHex(traceID),
		Code:      code.String(),
	}))
}

// trimSlowest sorts latency-descending and keeps the top slowestKeep.
func trimSlowest(s []slowRequest) []slowRequest {
	sort.Slice(s, func(i, j int) bool { return s[i].LatencyNs > s[j].LatencyNs })
	if len(s) > slowestKeep {
		s = s[:slowestKeep]
	}
	return s
}

// tallyResult folds one OK result into the digest and durability tallies.
func (st *clientStats) tallyResult(resp *acqserver.Response) {
	st.digest += resultDigest(resp.Result)
	if resp.DurabilityError() != nil {
		st.notDurable++
	}
}

// resultDigest hashes the payload-determined part of one result — the
// peak list — excluding timing, shard and routing fields, so live and
// replayed responses to the same frame hash identically.
func resultDigest(r *acqserver.Result) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(r.Peaks)))
	_, _ = h.Write(b[:])
	for _, p := range r.Peaks {
		for _, v := range [4]float64{p.Centroid, p.Height, p.Area, p.SNR} {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			_, _ = h.Write(b[:])
		}
	}
	return h.Sum64()
}

// backendTally attributes accepted frames to one gateway fleet member,
// keyed by the 1-based backend id echoed in the RESULT routing trailer.
type backendTally struct {
	// Frames is how many OK results this backend served.
	Frames int64 `json:"frames"`
	// Retried counts the frames among them that took a sibling retry
	// (routing trailer attempts >= 2) to land here.
	Retried int64 `json:"retried"`
}

// tallyBackend records one routed result (trailer backend id nonzero).
func (st *clientStats) tallyBackend(r *acqserver.Result) {
	if r.Backend == 0 {
		return
	}
	if st.backends == nil {
		st.backends = map[uint16]*backendTally{}
	}
	bt := st.backends[r.Backend]
	if bt == nil {
		bt = &backendTally{}
		st.backends[r.Backend] = bt
	}
	bt.Frames++
	if r.Attempts >= 2 {
		bt.Retried++
	}
}

// serverBreakdown aggregates the server-side span-stage times carried in
// RESULT payloads: where accepted frames spent their time on the daemon.
type serverBreakdown struct {
	// Frames is how many RESULTs contributed.
	Frames int64 `json:"frames"`
	// QueueWaitNs, ProcessNs and SimulatedNs are summed over those frames.
	QueueWaitNs int64 `json:"queue_wait_ns_total"`
	ProcessNs   int64 `json:"process_ns_total"`
	SimulatedNs int64 `json:"simulated_ns_total"`
}

func (b *serverBreakdown) add(r *acqserver.Result) {
	b.Frames++
	b.QueueWaitNs += int64(r.QueueWaitNs)
	b.ProcessNs += int64(r.ProcessNs)
	b.SimulatedNs += int64(r.SimulatedNs)
}

// report is the -json machine-readable run summary.
type report struct {
	Clients       int              `json:"clients"`
	DurationS     float64          `json:"duration_s"`
	Path          string           `json:"path"`
	TOFBins       int              `json:"tof_bins"`
	Requests      int              `json:"requests"`
	OK            int              `json:"ok"`
	Shed          int              `json:"shed"`
	ShedRate      float64          `json:"shed_rate"`
	Rejected      map[string]int   `json:"rejected,omitempty"`
	ThroughputRPS float64          `json:"throughput_rps"`
	SubmittedMiBS float64          `json:"submitted_mib_per_s"`
	LatencyNs     map[string]int64 `json:"latency_ns"`
	Server        serverBreakdown  `json:"server"`
	// Topology echoes the -topology flag.
	Topology string `json:"topology"`
	// Backends is the per-fleet-member attribution from RESULT routing
	// trailers, keyed by the gateway's 1-based backend id; absent when no
	// routed results were seen (single-daemon runs).
	Backends     map[string]*backendTally `json:"backends,omitempty"`
	ProtoVersion uint8                    `json:"protocol_version"`
	// ServerHealth is the daemon's /readyz report fetched by -wait-ready,
	// verbatim; absent when -wait-ready was not used.
	ServerHealth json.RawMessage `json:"server_health,omitempty"`
	// ResponseDigest is the order-insensitive hash over all OK results'
	// peak lists (hex); equal digests mean two runs deconvolved the same
	// frames to bit-identical peaks.
	ResponseDigest string `json:"response_digest"`
	// OKNotDurable counts OK responses flagged as acknowledged before the
	// daemon's frame log reached stable storage.
	OKNotDurable int `json:"ok_not_durable"`
	// Replay describes the capture a -replay run streamed; absent on live
	// runs.
	Replay *replayBlock `json:"replay,omitempty"`
	// Slowest lists the run's slowest requests (latency-descending, at most
	// slowestKeep) with the trace ids the server echoed — paste one into
	// /debug/traces?trace_id= or grep /debug/events to see where the time
	// went.
	Slowest []slowRequest `json:"slowest_requests,omitempty"`
	// Coalesce summarizes the daemon's cross-session micro-batching
	// counters scraped from -metrics after the run; absent when -metrics
	// was not given or the daemon exports no acq_coalesce_* families.
	Coalesce *coalesceBlock `json:"coalesce,omitempty"`
	// ServerHistory carries the daemon's own view of the run — the
	// acq_process_ns p99 and acq_shed_total increase series over the run
	// window, fetched from /metrics/history after the run; absent when the
	// daemon runs without -history or no history URL could be derived.
	ServerHistory *serverHistoryBlock `json:"server_history,omitempty"`
}

// serverHistoryBlock is the -json view of the daemon's /metrics/history
// answer over the run window.  The two embedded results are the endpoint's
// wire shape verbatim (per-series step points), so a run report alone is
// enough to plot how the server's tail latency and shedding evolved while
// the load was applied — no live daemon needed afterwards.
type serverHistoryBlock struct {
	// SinceUnix and UntilUnix bound the queried window (the run, widened by
	// one sampler tick on each side so edge samples land inside it).
	SinceUnix int64 `json:"since_unix"`
	UntilUnix int64 `json:"until_unix"`
	// ProcessP99Ns is the acq_process_ns p99 per step, nanoseconds.
	ProcessP99Ns *tsdb.QueryResult `json:"process_p99_ns,omitempty"`
	// Shed is the acq_shed_total increase per step.
	Shed *tsdb.QueryResult `json:"shed,omitempty"`
}

// fetchServerHistory queries base (a /metrics/history URL) for the run
// window.  Best-effort: a daemon running without -history answers 404 and
// the block is simply omitted from the report.
func fetchServerHistory(base string, since, until time.Time) *serverHistoryBlock {
	query := func(family string, quantile float64) (*tsdb.QueryResult, error) {
		v := neturl.Values{}
		v.Set("family", family)
		v.Set("since", fmt.Sprintf("%d", since.Unix()))
		v.Set("until", fmt.Sprintf("%d", until.Unix()))
		if quantile > 0 {
			v.Set("quantile", fmt.Sprintf("%g", quantile))
		}
		body, err := fetchOnce(base + "?" + v.Encode())
		if err != nil {
			return nil, err
		}
		var qr tsdb.QueryResult
		if err := json.Unmarshal(body, &qr); err != nil {
			return nil, err
		}
		if len(qr.Series) == 0 {
			return nil, nil
		}
		return &qr, nil
	}
	sh := &serverHistoryBlock{SinceUnix: since.Unix(), UntilUnix: until.Unix()}
	p99, err := query("acq_process_ns", 0.99)
	if err != nil {
		// One note covers both queries: if the endpoint is down or history
		// is disabled, the shed query would fail identically.
		fmt.Fprintf(os.Stderr, "imsload: history scrape: %v\n", err)
		return nil
	}
	sh.ProcessP99Ns = p99
	if shed, err := query("acq_shed_total", 0); err != nil {
		fmt.Fprintf(os.Stderr, "imsload: history scrape: %v\n", err)
	} else {
		sh.Shed = shed
	}
	if sh.ProcessP99Ns == nil && sh.Shed == nil {
		return nil
	}
	return sh
}

// coalesceBlock is the -json view of the daemon's acq_coalesce_* metric
// families (see docs/OBSERVABILITY.md): how many batches dispatched per
// trigger, how full they were, and how long they waited gathering.
type coalesceBlock struct {
	// Batches is the total coalesced batches dispatched.
	Batches int64 `json:"batches"`
	// Triggers breaks Batches down by dispatch reason: "fill" (the batch
	// hit -coalesce-fill), "window" (the -coalesce-window timer fired) or
	// "drain" (the shard queue closed mid-gather).
	Triggers map[string]int64 `json:"triggers,omitempty"`
	// FramesCoalesced counts frames that went through a shared multi-frame
	// decode (solo dispatches are excluded).
	FramesCoalesced int64 `json:"frames_coalesced"`
	// BatchFillP50/P95 are quantiles of frames-per-batch at dispatch.
	BatchFillP50 float64 `json:"batch_fill_p50,omitempty"`
	BatchFillP95 float64 `json:"batch_fill_p95,omitempty"`
	// WaitNsP50/P95 are quantiles of the gather time per batch.
	WaitNsP50 float64 `json:"wait_ns_p50,omitempty"`
	WaitNsP95 float64 `json:"wait_ns_p95,omitempty"`
}

// coalesceFromSnapshot extracts the coalesce block from a decoded
// /metrics.json snapshot; nil when the daemon predates the coalescer.
func coalesceFromSnapshot(snap telemetry.Snapshot) *coalesceBlock {
	cb := &coalesceBlock{Triggers: map[string]int64{}}
	seen := false
	for _, m := range snap.Metrics {
		switch m.Name {
		case "acq_coalesce_batches_total":
			seen = true
			if m.Value != nil && *m.Value > 0 {
				cb.Batches += int64(*m.Value)
				cb.Triggers[m.Labels["trigger"]] += int64(*m.Value)
			}
		case "acq_coalesce_frames_total":
			seen = true
			if m.Value != nil {
				cb.FramesCoalesced = int64(*m.Value)
			}
		case "acq_coalesce_batch_fill":
			seen = true
			cb.BatchFillP50, cb.BatchFillP95 = m.P50, m.P95
		case "acq_coalesce_wait_ns":
			seen = true
			cb.WaitNsP50, cb.WaitNsP95 = m.P50, m.P95
		}
	}
	if !seen {
		return nil
	}
	if len(cb.Triggers) == 0 {
		cb.Triggers = nil
	}
	return cb
}

// replayBlock is the -json summary of the capture a replay run streamed.
type replayBlock struct {
	// Dir is the frame log directory that was replayed.
	Dir string `json:"dir"`
	// Segments is how many segment files the capture spans.
	Segments int `json:"segments"`
	// FirstSeq and LastSeq bound the replayed records.
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	// Records is the total record count streamed.
	Records int64 `json:"records"`
	// RateMultiplier echoes -replay-rate.
	RateMultiplier float64 `json:"rate_multiplier"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7071", "daemon address")
	clients := flag.Int("clients", 16, "concurrent client connections")
	rate := flag.Float64("rate", 0, "target frames/s per client (0 = closed loop, as fast as possible)")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	tofBins := flag.Int("tof", 256, "m/z bins per synthetic frame")
	pathName := flag.String("path", "hybrid", "compute path: hybrid or cpu")
	deadline := flag.Duration("deadline", 0, "per-request server-side deadline (0 = none)")
	encName := flag.String("enc", "delta", "frame encoding: raw or delta")
	seed := flag.Int64("seed", 1, "random seed for synthetic frames")
	jsonPath := flag.String("json", "", "write the machine-readable run report to this JSON file")
	tracePath := flag.String("trace", "", "trace every request client-side and write span trees as Perfetto JSON to this file")
	waitReady := flag.String("wait-ready", "", "block until this /readyz URL answers 200 before generating load")
	metricsURL := flag.String("metrics", "", "scrape this /metrics.json URL after the run for the coalesce block in -json output")
	historyURL := flag.String("history", "", "scrape this /metrics/history URL after the run for the server_history block in -json output (default: derived from -metrics)")
	waitReadyTimeout := flag.Duration("wait-ready-timeout", 30*time.Second, "give up on -wait-ready after this long")
	topology := flag.String("topology", "single", "target topology: single (one imsd) or cluster (an imsgw gateway, per-backend attribution reported)")
	replayDir := flag.String("replay", "", "replay a captured frame log directory (written by imsd -framelog) instead of generating synthetic load")
	replayRate := flag.Float64("replay-rate", 1, "replay pacing: recorded inter-frame gaps are divided by this multiplier (0 = as fast as possible)")
	flag.Parse()

	if *topology != "single" && *topology != "cluster" {
		fail("unknown topology %q (want single or cluster)", *topology)
	}

	var path acqserver.Path
	switch *pathName {
	case "hybrid":
		path = acqserver.PathHybrid
	case "cpu":
		path = acqserver.PathCPU
	default:
		fail("unknown path %q (want hybrid or cpu)", *pathName)
	}
	var enc frameio.Encoding
	switch *encName {
	case "raw":
		enc = frameio.Raw
	case "delta":
		enc = frameio.Delta
	default:
		fail("unknown encoding %q (want raw or delta)", *encName)
	}
	if *clients < 1 {
		fail("need at least one client")
	}

	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New(trace.Config{})
	}

	var serverHealth json.RawMessage
	if *waitReady != "" {
		body, err := awaitReady(*waitReady, *waitReadyTimeout)
		if err != nil {
			fail("wait-ready: %v", err)
		}
		serverHealth = body
		fmt.Printf("imsload: %s is ready\n", *waitReady)
	}

	// One handshake up front to learn the served order and sanity-check the
	// target before unleashing the fleet.
	probe, err := acqserver.Dial(*addr, 5*time.Second)
	if err != nil {
		fail("dial %s: %v", *addr, err)
	}
	info := probe.Info()
	protoVer := probe.ProtocolVersion()
	_ = probe.Close()
	driftBins := 1<<info.Order - 1
	fmt.Printf("imsload: %d clients -> %s (order %d, %d shards, IMSP/%d), path %s, %v\n",
		*clients, *addr, info.Order, info.Shards, protoVer, path, *duration)

	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}

	stats := make([]clientStats, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	var replay *replayBlock
	var replayBytes int64
	if *replayDir != "" {
		stats[0].rejected = map[acqserver.Code]int{}
		replay, replayBytes = runReplay(*addr, *replayDir, *replayRate, &stats[0], tracer)
	} else {
		runLive(*addr, stats, liveOptions{
			stop: start.Add(*duration), interval: interval, driftBins: driftBins,
			tofBins: *tofBins, seed: *seed, path: path, enc: enc,
			deadline: *deadline, tracer: tracer,
		}, &wg)
	}
	elapsed := time.Since(start)

	// Merge and report.
	var all []time.Duration
	var ok, shed, notDurable int
	var digest uint64
	rejected := map[acqserver.Code]int{}
	var errs []error
	var slowest []slowRequest
	var server serverBreakdown
	for i := range stats {
		all = append(all, stats[i].latencies...)
		ok += stats[i].ok
		shed += stats[i].shed
		digest += stats[i].digest
		notDurable += stats[i].notDurable
		for c, n := range stats[i].rejected {
			rejected[c] += n
		}
		errs = append(errs, stats[i].errs...)
		slowest = trimSlowest(append(slowest, stats[i].slowest...))
		server.Frames += stats[i].server.Frames
		server.QueueWaitNs += stats[i].server.QueueWaitNs
		server.ProcessNs += stats[i].server.ProcessNs
		server.SimulatedNs += stats[i].server.SimulatedNs
	}
	fleet := map[uint16]*backendTally{}
	for i := range stats {
		for id, bt := range stats[i].backends {
			ft := fleet[id]
			if ft == nil {
				ft = &backendTally{}
				fleet[id] = ft
			}
			ft.Frames += bt.Frames
			ft.Retried += bt.Retried
		}
	}
	total := len(all)
	if total == 0 {
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "imsload: %v\n", err)
		}
		fail("no requests completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration { return all[int(q*float64(total-1))] }

	var submittedBytes float64
	if replay != nil {
		submittedBytes = float64(replayBytes)
	} else {
		encSize, err := frameio.EncodedSize(syntheticFrame(driftBins, *tofBins, *seed), enc)
		if err != nil {
			encSize = 0
		}
		submittedBytes = float64(total) * float64(encSize)
	}
	fmt.Printf("requests:   %d total, %d ok, %d shed (%.2f%% shed rate)\n",
		total, ok, shed, 100*float64(shed)/float64(total))
	fmt.Printf("latency:    p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), all[total-1].Round(time.Microsecond))
	fmt.Printf("throughput: %.1f req/s, %.2f MiB/s submitted\n",
		float64(total)/elapsed.Seconds(),
		submittedBytes/elapsed.Seconds()/(1<<20))
	fmt.Printf("digest:     response_digest %016x over %d ok results\n", digest, ok)
	if len(slowest) > 0 {
		fmt.Printf("slowest:   ")
		for _, sr := range slowest {
			id := sr.TraceID
			if id == "" {
				id = "-"
			}
			fmt.Printf(" %v/%s(%s)", time.Duration(sr.LatencyNs).Round(time.Microsecond), id, sr.Code)
		}
		fmt.Println()
	}
	if notDurable > 0 {
		fmt.Printf("imsload: note: %d of %d acks were not durable (daemon frame log is not fsyncing before the ACK)\n",
			notDurable, ok)
	}
	if server.Frames > 0 {
		fmt.Printf("server:     mean queue wait %v, process %v, modeled XD1 %v (over %d frames)\n",
			time.Duration(server.QueueWaitNs/server.Frames).Round(time.Microsecond),
			time.Duration(server.ProcessNs/server.Frames).Round(time.Microsecond),
			time.Duration(server.SimulatedNs/server.Frames).Round(time.Microsecond),
			server.Frames)
	}
	if len(fleet) > 0 {
		var ids []int
		for id := range fleet {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		fmt.Printf("fleet:     ")
		for _, id := range ids {
			ft := fleet[uint16(id)]
			fmt.Printf(" backend %d: %d frames (%d retried)", id, ft.Frames, ft.Retried)
		}
		fmt.Println()
		if *topology == "single" {
			fmt.Println("imsload: note: routed results carry gateway trailers; target looks like a cluster (use -topology cluster)")
		}
	} else if *topology == "cluster" {
		fmt.Println("imsload: note: -topology cluster but no result carried a routing trailer; target looks like a bare daemon")
	}
	var coalesce *coalesceBlock
	if *metricsURL != "" {
		if body, err := fetchOnce(*metricsURL); err != nil {
			fmt.Fprintf(os.Stderr, "imsload: metrics scrape: %v\n", err)
		} else {
			var snap telemetry.Snapshot
			if err := json.Unmarshal(body, &snap); err != nil {
				fmt.Fprintf(os.Stderr, "imsload: metrics decode: %v\n", err)
			} else if coalesce = coalesceFromSnapshot(snap); coalesce != nil && coalesce.Batches > 0 {
				fmt.Printf("coalesce:   %d batches (fill %d / window %d / drain %d), %d frames coalesced, fill p50 %.1f p95 %.1f, wait p50 %v p95 %v\n",
					coalesce.Batches, coalesce.Triggers["fill"], coalesce.Triggers["window"], coalesce.Triggers["drain"],
					coalesce.FramesCoalesced, coalesce.BatchFillP50, coalesce.BatchFillP95,
					time.Duration(coalesce.WaitNsP50).Round(time.Microsecond),
					time.Duration(coalesce.WaitNsP95).Round(time.Microsecond))
			}
		}
	}
	var serverHistory *serverHistoryBlock
	if *jsonPath != "" {
		hu := *historyURL
		if hu == "" && strings.HasSuffix(*metricsURL, "/metrics.json") {
			hu = strings.TrimSuffix(*metricsURL, "/metrics.json") + "/metrics/history"
		}
		if hu != "" {
			// Widen the window by one 5s sampler tick on each side so the
			// samples bracketing the run land inside it.
			serverHistory = fetchServerHistory(hu, start.Add(-5*time.Second), time.Now().Add(5*time.Second))
		}
	}
	for code, n := range rejected {
		fmt.Printf("rejected:   %d x %v\n", n, code)
	}
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "imsload: client error: %v\n", err)
	}

	if *jsonPath != "" {
		rep := report{
			Clients:       *clients,
			DurationS:     elapsed.Seconds(),
			Path:          path.String(),
			TOFBins:       *tofBins,
			Requests:      total,
			OK:            ok,
			Shed:          shed,
			ShedRate:      float64(shed) / float64(total),
			ThroughputRPS: float64(total) / elapsed.Seconds(),
			SubmittedMiBS: submittedBytes / elapsed.Seconds() / (1 << 20),
			LatencyNs: map[string]int64{
				"p50": pct(0.50).Nanoseconds(),
				"p95": pct(0.95).Nanoseconds(),
				"p99": pct(0.99).Nanoseconds(),
				"max": all[total-1].Nanoseconds(),
			},
			Server:         server,
			Topology:       *topology,
			ProtoVersion:   protoVer,
			ServerHealth:   serverHealth,
			ResponseDigest: fmt.Sprintf("%016x", digest),
			OKNotDurable:   notDurable,
			Replay:         replay,
			Slowest:        slowest,
			Coalesce:       coalesce,
			ServerHistory:  serverHistory,
		}
		if replay != nil {
			rep.Clients = 1 // replay streams over a single connection
		}
		if len(fleet) > 0 {
			rep.Backends = map[string]*backendTally{}
			for id, ft := range fleet {
				rep.Backends[fmt.Sprintf("%d", id)] = ft
			}
		}
		if len(rejected) > 0 {
			rep.Rejected = map[string]int{}
			for c, n := range rejected {
				rep.Rejected[c.String()] = n
			}
		}
		if err := writeJSONReport(*jsonPath, &rep); err != nil {
			fail("json report: %v", err)
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail("trace: %v", err)
		}
		if err := tracer.WritePerfetto(f); err != nil {
			f.Close()
			fail("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("trace: %v", err)
		}
		fmt.Printf("trace written to %s\n", *tracePath)
	}
	if len(errs) > 0 || len(rejected) > 0 {
		os.Exit(1)
	}
}

// liveOptions carries the synthetic-load parameters into runLive.
type liveOptions struct {
	stop      time.Time
	interval  time.Duration
	driftBins int
	tofBins   int
	seed      int64
	path      acqserver.Path
	enc       frameio.Encoding
	deadline  time.Duration
	tracer    *trace.Tracer
}

// runLive fans out one goroutine per clientStats entry, each driving its
// own connection with synthetic frames until opts.stop, and waits for all
// of them.
func runLive(addr string, stats []clientStats, opts liveOptions, wg *sync.WaitGroup) {
	for i := range stats {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := &stats[i]
			st.rejected = map[acqserver.Code]int{}
			c, err := acqserver.Dial(addr, 5*time.Second)
			if err != nil {
				st.errs = append(st.errs, err)
				return
			}
			defer c.Close()
			frame := syntheticFrame(opts.driftBins, opts.tofBins, opts.seed+int64(i))
			next := time.Now()
			for time.Now().Before(opts.stop) {
				if opts.interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(opts.interval)
				}
				root := opts.tracer.StartTrace("client_request", 0)
				root.SetInt("client", int64(i))
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				reqStart := time.Now()
				resp, err := c.Do(ctx, frame, opts.enc, acqserver.FrameOptions{
					Path: opts.path, Deadline: opts.deadline, TraceID: root.TraceID(),
				})
				cancel()
				if err != nil {
					root.SetStr("error", err.Error())
					root.End()
					st.errs = append(st.errs, err)
					return
				}
				root.SetStr("code", resp.Code.String())
				if resp.Result != nil {
					root.SetInt("server_queue_wait_ns", int64(resp.Result.QueueWaitNs))
					root.SetInt("server_process_ns", int64(resp.Result.ProcessNs))
					st.server.add(resp.Result)
					st.tallyBackend(resp.Result)
					st.tallyResult(resp)
				}
				root.End()
				lat := time.Since(reqStart)
				st.latencies = append(st.latencies, lat)
				st.tallySlow(lat, resp.TraceID, resp.Code)
				switch resp.Code {
				case acqserver.CodeOK:
					st.ok++
				case acqserver.CodeResourceExhausted, acqserver.CodeUnavailable:
					st.shed++
				default:
					st.rejected[resp.Code]++
				}
			}
		}(i)
	}
	wg.Wait()
}

// runReplay streams every record of a captured frame log through one IMSP
// connection, pacing by the recorded inter-frame gaps divided by rate, and
// tallies responses into st exactly like a live client.  It returns the
// replay summary for the report and the total payload bytes submitted.
// The payloads go out verbatim (DoPayload), so the daemon re-decodes the
// exact bytes it accepted during the capture — which is what makes the
// response digest comparable across the two runs.
func runReplay(addr, dir string, rate float64, st *clientStats, tracer *trace.Tracer) (*replayBlock, int64) {
	infos, err := framelog.ListSegments(dir)
	if err != nil {
		fail("replay %s: %v", dir, err)
	}
	blk := &replayBlock{Dir: filepath.Clean(dir), Segments: len(infos), RateMultiplier: rate}
	for _, si := range infos {
		if si.Records == 0 {
			continue
		}
		if blk.Records == 0 {
			blk.FirstSeq = si.FirstSeq
		}
		blk.LastSeq = si.LastSeq
		blk.Records += int64(si.Records)
	}
	if blk.Records == 0 {
		fail("replay %s: no records in %d segment(s)", dir, len(infos))
	}
	fmt.Printf("imsload: replaying %d records (seq %d..%d, %d segments) from %s at %gx recorded rate\n",
		blk.Records, blk.FirstSeq, blk.LastSeq, blk.Segments, blk.Dir, rate)

	c, err := acqserver.Dial(addr, 5*time.Second)
	if err != nil {
		fail("replay dial %s: %v", addr, err)
	}
	defer c.Close()

	var bytes int64
	var prevTs int64
	sent, stopped := false, false
	for _, si := range infos {
		if _, err := framelog.ScanSegment(si.Path, func(rec framelog.Record) error {
			if sent && rate > 0 {
				if gap := rec.Time - prevTs; gap > 0 {
					// Reproduce the recorded gap, scaled; cap any single
					// sleep so an idle stretch in the capture cannot stall
					// the replay for minutes.
					d := time.Duration(float64(gap) / rate)
					if d > time.Second {
						d = time.Second
					}
					time.Sleep(d)
				}
			}
			prevTs, sent = rec.Time, true

			root := tracer.StartTrace("replay_request", rec.SID)
			root.SetInt("wal_seq", int64(rec.Seq))
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			reqStart := time.Now()
			resp, err := c.DoPayload(ctx, rec.Payload, rec.SID)
			cancel()
			if err != nil {
				root.SetStr("error", err.Error())
				root.End()
				st.errs = append(st.errs, fmt.Errorf("replay seq %d: %w", rec.Seq, err))
				stopped = true
				return err
			}
			root.SetStr("code", resp.Code.String())
			if resp.Result != nil {
				st.server.add(resp.Result)
				st.tallyBackend(resp.Result)
				st.tallyResult(resp)
			}
			root.End()
			lat := time.Since(reqStart)
			st.latencies = append(st.latencies, lat)
			st.tallySlow(lat, resp.TraceID, resp.Code)
			bytes += int64(len(rec.Payload))
			switch resp.Code {
			case acqserver.CodeOK:
				st.ok++
			case acqserver.CodeResourceExhausted, acqserver.CodeUnavailable:
				st.shed++
			default:
				st.rejected[resp.Code]++
			}
			return nil
		}); err != nil {
			if !stopped {
				st.errs = append(st.errs, fmt.Errorf("replay scan %s: %w", si.Path, err))
			}
			break
		}
	}
	return blk, bytes
}

// awaitReady polls url until it answers 200, backing off from 100 ms to
// 2 s between attempts, and returns the final response body (the daemon's
// ReadyReport JSON).  It fails once timeout elapses, reporting the last
// status or transport error so the operator knows what it was stuck on.
func awaitReady(url string, timeout time.Duration) (json.RawMessage, error) {
	deadline := time.Now().Add(timeout)
	backoff := 100 * time.Millisecond
	var lastErr error
	for {
		body, err := fetchOnce(url)
		if err == nil {
			return body, nil
		}
		lastErr = err
		if !time.Now().Add(backoff).Before(deadline) {
			return nil, fmt.Errorf("%s not ready after %v: %v", url, timeout, lastErr)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// fetchOnce performs one bounded GET, demanding a 200.
func fetchOnce(url string) (json.RawMessage, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s: %s", resp.Status, firstLine(body))
	}
	return json.RawMessage(body), nil
}

// firstLine trims a response body to its first line for error messages.
func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}

// writeJSONReport writes the run report, indented, to path.
func writeJSONReport(path string, rep *report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// syntheticFrame builds a multiplexed-looking frame: pseudorandom counts
// with a few hot drift rows so the deconvolved profile has real peaks.
func syntheticFrame(driftBins, tofBins int, seed int64) *instrument.Frame {
	rng := rand.New(rand.NewSource(seed))
	f := instrument.NewFrame(driftBins, tofBins)
	for i := range f.Data {
		f.Data[i] = float64(rng.Intn(8))
	}
	for h := 0; h < 3; h++ {
		row := rng.Intn(driftBins)
		for t := 0; t < tofBins; t++ {
			f.Set(row, t, float64(200+rng.Intn(100)))
		}
	}
	return f
}
