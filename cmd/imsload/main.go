// Command imsload is the load generator for the imsd acquisition daemon:
// it drives M concurrent clients at a target per-client rate, submits
// synthetic multiplexed frames over IMSP/1, and reports the latency
// distribution (p50/p95/p99), throughput, and shed rate.
//
// Usage:
//
//	imsload [-addr HOST:PORT] [-clients N] [-rate R] [-duration D]
//	        [-tof N] [-path hybrid|cpu] [-deadline D] [-enc raw|delta]
//	        [-seed N]
//
// Shed responses (RESOURCE_EXHAUSTED, UNAVAILABLE) are the daemon's
// explicit backpressure and are reported separately; they are not errors.
// imsload exits non-zero only on transport or protocol failures, so smoke
// tests can assert a clean run.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/acqserver"
	"repro/internal/frameio"
	"repro/internal/instrument"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "imsload: "+format+"\n", args...)
	os.Exit(1)
}

// clientStats is one worker's tally, merged after the run.
type clientStats struct {
	latencies []time.Duration
	ok        int
	shed      int
	rejected  map[acqserver.Code]int
	errs      []error
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7071", "daemon address")
	clients := flag.Int("clients", 16, "concurrent client connections")
	rate := flag.Float64("rate", 0, "target frames/s per client (0 = closed loop, as fast as possible)")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	tofBins := flag.Int("tof", 256, "m/z bins per synthetic frame")
	pathName := flag.String("path", "hybrid", "compute path: hybrid or cpu")
	deadline := flag.Duration("deadline", 0, "per-request server-side deadline (0 = none)")
	encName := flag.String("enc", "delta", "frame encoding: raw or delta")
	seed := flag.Int64("seed", 1, "random seed for synthetic frames")
	flag.Parse()

	var path acqserver.Path
	switch *pathName {
	case "hybrid":
		path = acqserver.PathHybrid
	case "cpu":
		path = acqserver.PathCPU
	default:
		fail("unknown path %q (want hybrid or cpu)", *pathName)
	}
	var enc frameio.Encoding
	switch *encName {
	case "raw":
		enc = frameio.Raw
	case "delta":
		enc = frameio.Delta
	default:
		fail("unknown encoding %q (want raw or delta)", *encName)
	}
	if *clients < 1 {
		fail("need at least one client")
	}

	// One handshake up front to learn the served order and sanity-check the
	// target before unleashing the fleet.
	probe, err := acqserver.Dial(*addr, 5*time.Second)
	if err != nil {
		fail("dial %s: %v", *addr, err)
	}
	info := probe.Info()
	_ = probe.Close()
	driftBins := 1<<info.Order - 1
	fmt.Printf("imsload: %d clients -> %s (order %d, %d shards), path %s, %v\n",
		*clients, *addr, info.Order, info.Shards, path, *duration)

	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}

	stats := make([]clientStats, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	stop := start.Add(*duration)
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := &stats[i]
			st.rejected = map[acqserver.Code]int{}
			c, err := acqserver.Dial(*addr, 5*time.Second)
			if err != nil {
				st.errs = append(st.errs, err)
				return
			}
			defer c.Close()
			frame := syntheticFrame(driftBins, *tofBins, *seed+int64(i))
			next := time.Now()
			for time.Now().Before(stop) {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				reqStart := time.Now()
				resp, err := c.Do(ctx, frame, enc, acqserver.FrameOptions{Path: path, Deadline: *deadline})
				cancel()
				if err != nil {
					st.errs = append(st.errs, err)
					return
				}
				st.latencies = append(st.latencies, time.Since(reqStart))
				switch resp.Code {
				case acqserver.CodeOK:
					st.ok++
				case acqserver.CodeResourceExhausted, acqserver.CodeUnavailable:
					st.shed++
				default:
					st.rejected[resp.Code]++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge and report.
	var all []time.Duration
	var ok, shed int
	rejected := map[acqserver.Code]int{}
	var errs []error
	for i := range stats {
		all = append(all, stats[i].latencies...)
		ok += stats[i].ok
		shed += stats[i].shed
		for c, n := range stats[i].rejected {
			rejected[c] += n
		}
		errs = append(errs, stats[i].errs...)
	}
	total := len(all)
	if total == 0 {
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "imsload: %v\n", err)
		}
		fail("no requests completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration { return all[int(q*float64(total-1))] }

	encSize, err := frameio.EncodedSize(syntheticFrame(driftBins, *tofBins, *seed), enc)
	if err != nil {
		encSize = 0
	}
	fmt.Printf("requests:   %d total, %d ok, %d shed (%.2f%% shed rate)\n",
		total, ok, shed, 100*float64(shed)/float64(total))
	fmt.Printf("latency:    p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), all[total-1].Round(time.Microsecond))
	fmt.Printf("throughput: %.1f req/s, %.2f MiB/s submitted\n",
		float64(total)/elapsed.Seconds(),
		float64(total)*float64(encSize)/elapsed.Seconds()/(1<<20))
	for code, n := range rejected {
		fmt.Printf("rejected:   %d x %v\n", n, code)
	}
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "imsload: client error: %v\n", err)
	}
	if len(errs) > 0 || len(rejected) > 0 {
		os.Exit(1)
	}
}

// syntheticFrame builds a multiplexed-looking frame: pseudorandom counts
// with a few hot drift rows so the deconvolved profile has real peaks.
func syntheticFrame(driftBins, tofBins int, seed int64) *instrument.Frame {
	rng := rand.New(rand.NewSource(seed))
	f := instrument.NewFrame(driftBins, tofBins)
	for i := range f.Data {
		f.Data[i] = float64(rng.Intn(8))
	}
	for h := 0; h < 3; h++ {
		row := rng.Intn(driftBins)
		for t := 0; t < tofBins; t++ {
			f.Set(row, t, float64(200+rng.Intn(100)))
		}
	}
	return f
}
