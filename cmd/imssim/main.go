// Command imssim runs one end-to-end simulated acquisition of the
// multiplexed ion mobility mass spectrometer and reports what it saw:
// acquisition statistics, the most intense recovered features, and (for a
// built-in sample) identifications.
//
// Usage:
//
//	imssim [-mode sa|mp|trap] [-order N] [-frames F] [-rate R]
//	       [-sample standards|bsa] [-seed N] [-oversample K] [-defect D]
//	       [-metrics FILE] [-trace FILE] [-pprof ADDR]
//
// With -metrics, the run is instrumented end to end (acquisition, software
// decode, and — for unmodified sequences — the modeled FPGA offload and
// streaming data path) and the telemetry snapshot is written as JSON at
// exit; see docs/OBSERVABILITY.md for the metric catalogue.  With -trace,
// the modeled offload and streaming pipeline are traced as span trees and
// written as Chrome/Perfetto trace-event JSON at exit.  With -pprof, a
// net/http/pprof server listens on ADDR for CPU and heap profiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/frameio"
	"repro/internal/hybrid"
	"repro/internal/instrument"
	"repro/internal/peaks"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "imssim: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	mode := flag.String("mode", "trap", "acquisition mode: sa, mp or trap")
	order := flag.Int("order", 8, "pseudorandom sequence order (2-20)")
	frames := flag.Int("frames", 4, "IMS cycles accumulated")
	rate := flag.Float64("rate", 5e6, "total source ion current, charges/s")
	sample := flag.String("sample", "standards", "built-in sample: standards or bsa")
	seed := flag.Int64("seed", 1, "random seed")
	oversample := flag.Int("oversample", 1, "bins per sequence element")
	defect := flag.Int("defect", 0, "defect bins per open run (modified PRS)")
	outPath := flag.String("out", "", "write the raw accumulated frame to this frameio file")
	metricsPath := flag.String("metrics", "", "instrument the run and write the telemetry snapshot to this JSON file")
	tracePath := flag.String("trace", "", "trace the modeled offload and write span trees as Perfetto JSON to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	var reg *telemetry.Registry
	if *metricsPath != "" || *pprofAddr != "" {
		reg = telemetry.NewRegistry()
	}
	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New(trace.Config{})
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "imssim: pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof listening on %s\n", *pprofAddr)
	}

	var m instrument.Mode
	switch *mode {
	case "sa":
		m = instrument.ModeSignalAveraging
	case "mp":
		m = instrument.ModeMultiplexed
	case "trap":
		m = instrument.ModeMultiplexedTrap
	default:
		fail("unknown mode %q (want sa, mp or trap)", *mode)
	}

	var mix instrument.Mixture
	named := map[string]chem.Peptide{}
	switch *sample {
	case "standards":
		for _, s := range chem.StandardPeptides() {
			named[s.Name] = s.Peptide
			if err := mix.AddPeptide(s.Name, s.Peptide, 1); err != nil {
				fail("%v", err)
			}
		}
	case "bsa":
		digest, err := chem.BSA().Digest(chem.Trypsin{}, 0, 6, 30)
		if err != nil {
			fail("%v", err)
		}
		for _, p := range digest {
			named[p.Sequence] = p
			if err := mix.AddPeptide(p.Sequence, p, 1); err != nil {
				fail("%v", err)
			}
		}
	default:
		fail("unknown sample %q (want standards or bsa)", *sample)
	}

	cfg := instrument.DefaultConfig()
	cfg.Mode = m
	cfg.SequenceOrder = *order
	cfg.Frames = *frames
	cfg.Oversample = *oversample
	cfg.Defect = *defect
	cfg.TOF.Bins = 2048

	exp := &core.Experiment{Mixture: mix, SourceRate: *rate, Config: cfg, Metrics: reg}
	res, err := exp.Run(rand.New(rand.NewSource(*seed)))
	if err != nil {
		fail("%v", err)
	}
	if (reg != nil || tracer != nil) && *oversample == 1 && *defect == 0 {
		simulateOffload(reg, tracer, res.Raw, *order)
	}

	st := res.Stats
	fmt.Printf("mode %v, order %d (N=%d, %d bins), %d cycles, %.1f ms/cycle\n",
		st.Mode, *order, 1<<*order-1, cfg.DriftBins(), st.Cycles, cfg.CycleDuration()*1e3)
	fmt.Printf("ions: generated %.3g, injected %.3g (utilization %.1f%%), detected %.3g\n",
		st.IonsGenerated, st.IonsInjected, 100*st.Utilization, st.IonsDetected)
	fmt.Printf("mean packet %.3g charges, trap losses %.3g\n", st.MeanPacketSize, st.TrapLosses)

	feats, err := peaks.FindFeatures(res.Decoded, cfg.TOF, 5, 2)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("\n%d features (SNR >= 5); top 15:\n", len(feats))
	fmt.Printf("%10s %10s %12s %8s\n", "m/z", "drift bin", "intensity", "SNR")
	for i, f := range feats {
		if i >= 15 {
			break
		}
		fmt.Printf("%10.2f %10d %12.1f %8.1f\n", f.MZ, f.DriftBin, f.Intensity, f.SNR)
	}

	cands, err := peaks.CandidatesFromPeptides(named, true)
	if err != nil {
		fail("%v", err)
	}
	id, err := core.Identify(res.Decoded, cfg.TOF, cands, 5, 600, 2)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("\nidentified %d unique peptides (%d matches, FDR %.3f)\n",
		id.UniqueTargets, len(id.Matches), id.FDR)

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail("%v", err)
		}
		meta := frameio.Metadata{
			"mode":   res.Stats.Mode.String(),
			"order":  fmt.Sprintf("%d", *order),
			"frames": fmt.Sprintf("%d", *frames),
			"sample": *sample,
			"seed":   fmt.Sprintf("%d", *seed),
		}
		if err := frameio.Write(f, res.Raw, meta, frameio.Delta); err != nil {
			f.Close()
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("raw frame written to %s\n", *outPath)
	}

	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fail("%v", err)
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("telemetry snapshot written to %s\n", *metricsPath)
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail("%v", err)
		}
		if err := tracer.WritePerfetto(f); err != nil {
			f.Close()
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("trace written to %s\n", *tracePath)
	}
}

// simulateOffload pushes the acquired raw frame through the modeled hybrid
// data path — the fixed-point FPGA offload, the clocked streaming pipeline,
// and the capture/accumulate front end — so an instrumented run reports the
// full hybrid_*, fpga_* and xd1_* telemetry families alongside the software
// decode, and a traced run records the frame's span tree (modeled FPGA
// stages and XD1 DMA under the offload root).  Only valid for unmodified
// sequences (oversample 1, no defect bins), where the frame's drift length
// matches the FHT core.
func simulateOffload(reg *telemetry.Registry, tracer *trace.Tracer, raw *instrument.Frame, order int) {
	off := hybrid.DefaultOffloadConfig()
	off.Order = order
	off.Metrics = reg
	root := tracer.StartTrace("frame", 0)
	root.SetInt("prs_order", int64(order))
	ctx := trace.ContextWithSpan(context.Background(), root)
	_, err := hybrid.HybridDeconvolveFrameContext(ctx, raw, off)
	root.End()
	if err != nil {
		fail("modeled offload: %v", err)
	}

	sc := hybrid.DefaultStreamConfig()
	sc.Offload.Order = order
	sc.Columns = 256
	sc.Metrics = reg
	sc.Tracer = tracer
	if _, err := hybrid.SimulateStream(sc); err != nil {
		fail("streaming model: %v", err)
	}
	if reg == nil {
		return
	}

	// Capture/accumulate front end over the raw frame, for the BRAM
	// occupancy and capture-core families.
	capCore, err := fpga.NewCaptureCore(4, 1)
	if err != nil {
		fail("capture core: %v", err)
	}
	capCore.Instrument(reg)
	acc, err := fpga.NewAccumulatorCore(4, 32, raw.DriftBins)
	if err != nil {
		fail("accumulator core: %v", err)
	}
	acc.Instrument(reg)
	block := make([]int64, raw.DriftBins)
	for t := 0; t < raw.TOFBins; t++ {
		vec := raw.DriftVector(t)
		for i, v := range vec {
			block[i] = int64(v)
		}
		capCore.Capture(block)
		if _, err := acc.Accumulate(block); err != nil {
			fail("accumulate: %v", err)
		}
	}
	acc.PublishOccupancy()
}
