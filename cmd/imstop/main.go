// Command imstop is a live terminal ops console for the imsd daemon: it
// polls /metrics.json and /readyz on the daemon's metrics address and
// renders queue occupancy per shard, stage latency quantiles (cumulative
// and rolling 60 s window), traffic and shed rates, Go runtime state, and
// the SLO health verdict — a top(1) for the acquisition pipeline, stdlib
// only.
//
// Usage:
//
//	imstop [-url http://HOST:PORT] [-interval D] [-once] [-fleet]
//	       [-history FAMILY] [-quantile F] [-since T] [-until T]
//	       [-step D] [-match k=v,...] [-res raw|1m|10m]
//
// In live mode the screen redraws every -interval using ANSI clear; rates
// (req/s, shed/s, MiB/s) are deltas between consecutive polls.  With
// -once a single snapshot is printed without clearing the screen — usable
// from scripts and smoke tests — and rate columns show totals instead.
//
// With -fleet the URL must point at an imsgw metrics address: imstop
// polls the gateway's /metrics/fleet rollup (the gw_fleet_* gauges, one
// set per backend) and renders the whole cluster as one line per backend
// — up/down, health verdict, sessions, frame and shed rates, queue depth
// and worst p99 — a one-screen answer to "how is the fleet doing".
//
// With -history FAMILY the daemon must run with -history: imstop queries
// /metrics/history for the family over the -since..-until range (server
// resolution picked by -res or retention) and renders one unicode
// sparkline per matched series, with min/avg/max/last beside it —
// "what did p99 do over the last hour" in one command.  For histogram
// families -quantile picks the evaluated quantile (0 renders the mean);
// -match restricts by labels (comma-separated k=v pairs); -step sets the
// bucket width.  History mode prints once and exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/health"
	"repro/internal/telemetry/tsdb"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "imstop: "+format+"\n", args...)
	os.Exit(1)
}

// poll is one scrape of the daemon: the decoded metrics snapshot, the
// readiness report (nil when /readyz was unreachable), and when it was
// taken.
type poll struct {
	when  time.Time
	snap  telemetry.Snapshot
	ready *health.ReadyReport
}

// byKey indexes a snapshot by family name and one distinguishing label
// value, so lookups read like metric("acq_queue_depth", "shard", "3").
type byKey map[string]telemetry.Metric

func index(s telemetry.Snapshot) byKey {
	m := byKey{}
	for _, met := range s.Metrics {
		key := met.Name
		labels := make([]string, 0, len(met.Labels))
		for k, v := range met.Labels {
			labels = append(labels, k+"="+v)
		}
		sort.Strings(labels)
		if len(labels) > 0 {
			key += "{" + strings.Join(labels, ",") + "}"
		}
		m[key] = met
	}
	return m
}

// value reads a counter/gauge by composed key, 0 when absent.
func (m byKey) value(key string) float64 {
	met, ok := m[key]
	if !ok || met.Value == nil {
		return 0
	}
	return *met.Value
}

func main() {
	url := flag.String("url", "http://127.0.0.1:9090", "imsd (or, with -fleet, imsgw) metrics server base URL")
	interval := flag.Duration("interval", 2*time.Second, "refresh period in live mode")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	fleet := flag.Bool("fleet", false, "render the gateway's /metrics/fleet rollup: one line per backend")
	historyFam := flag.String("history", "", "render sparklines for this family from /metrics/history and exit")
	histQuantile := flag.Float64("quantile", 0.99, "quantile evaluated for histogram families in -history mode (0 = mean)")
	histSince := flag.String("since", "-30m", "-history range start (RFC3339, unix seconds, or -duration)")
	histUntil := flag.String("until", "", "-history range end (default now)")
	histStep := flag.Duration("step", 0, "-history bucket width (0 = auto)")
	histMatch := flag.String("match", "", "-history label filter: comma-separated k=v pairs")
	histRes := flag.String("res", "", "-history resolution: raw, 1m or 10m (default auto by range)")
	flag.Parse()
	base := strings.TrimRight(*url, "/")

	if *historyFam != "" {
		if err := renderHistory(os.Stdout, base, historyParams{
			family:   *historyFam,
			quantile: *histQuantile,
			since:    *histSince,
			until:    *histUntil,
			step:     *histStep,
			match:    *histMatch,
			res:      *histRes,
		}); err != nil {
			fail("%v", err)
		}
		return
	}

	scrapeFn, renderFn := scrape, render
	if *fleet {
		scrapeFn, renderFn = scrapeFleet, renderFleet
	}

	cur, err := scrapeFn(base)
	if err != nil {
		fail("%v", err)
	}
	if *once {
		renderFn(os.Stdout, base, nil, cur)
		return
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	var prev *poll
	for {
		var sb strings.Builder
		sb.WriteString("\x1b[2J\x1b[H") // clear screen, home cursor
		renderFn(&sb, base, prev, cur)
		fmt.Print(sb.String())
		select {
		case <-sigc:
			fmt.Println()
			return
		case <-tick.C:
		}
		prev = cur
		next, err := scrapeFn(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "\nimstop: %v (retrying)\n", err)
			prev = nil
			continue
		}
		cur = next
	}
}

// historyParams carries the -history mode query knobs.
type historyParams struct {
	family   string
	quantile float64
	since    string
	until    string
	step     time.Duration
	match    string
	res      string
}

// sparkRunes are the eight block-height glyphs a sparkline is built from.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as one rune per point, scaled to the series'
// own min..max (a flat series renders mid-height).
func sparkline(values []float64) string {
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// renderHistory queries /metrics/history and prints one sparkline per
// matched series.
func renderHistory(w io.Writer, base string, p historyParams) error {
	q := neturl.Values{}
	q.Set("family", p.family)
	q.Set("since", p.since)
	if p.until != "" {
		q.Set("until", p.until)
	}
	if p.step > 0 {
		q.Set("step", p.step.String())
	}
	if p.quantile > 0 {
		q.Set("quantile", fmt.Sprintf("%g", p.quantile))
	}
	if p.res != "" {
		q.Set("res", p.res)
	}
	for _, m := range strings.Split(p.match, ",") {
		if m = strings.TrimSpace(m); m != "" {
			q.Add("match", m)
		}
	}
	body, _, err := get(base + "/metrics/history?" + q.Encode())
	if err != nil {
		return err
	}
	var res tsdb.QueryResult
	if err := json.Unmarshal(body, &res); err != nil {
		return fmt.Errorf("decode %s/metrics/history: %w", base, err)
	}
	eval := "value"
	if res.Kind == "histogram" {
		eval = "mean"
		if res.Quantile > 0 {
			eval = fmt.Sprintf("p%g", res.Quantile*100)
		}
	} else if res.Kind == "counter" {
		eval = "increase/step"
	}
	fmt.Fprintf(w, "history — %s — %s (%s, step %gs, %s)\n",
		base, res.Family, res.Resolution, res.StepS, eval)
	if len(res.Series) == 0 {
		fmt.Fprintln(w, "  (no stored points in range — is the daemon running with -history?)")
		return nil
	}
	isNs := strings.HasSuffix(res.Family, "_ns")
	fv := func(v float64) string {
		if isNs {
			return fmtNs(v)
		}
		return fmt.Sprintf("%.4g", v)
	}
	for _, sr := range res.Series {
		labels := make([]string, 0, len(sr.Labels))
		for k, v := range sr.Labels {
			labels = append(labels, k+"="+v)
		}
		sort.Strings(labels)
		name := "{" + strings.Join(labels, ",") + "}"
		if len(labels) == 0 {
			name = "(no labels)"
		}
		if len(sr.Points) == 0 {
			fmt.Fprintf(w, "  %-32s (no points)\n", name)
			continue
		}
		values := make([]float64, len(sr.Points))
		lo, hi, sum := sr.Points[0].Value, sr.Points[0].Value, 0.0
		for i, pt := range sr.Points {
			values[i] = pt.Value
			if pt.Value < lo {
				lo = pt.Value
			}
			if pt.Value > hi {
				hi = pt.Value
			}
			sum += pt.Value
		}
		first := time.Unix(sr.Points[0].T, 0).Format("15:04:05")
		last := time.Unix(sr.Points[len(sr.Points)-1].T, 0).Format("15:04:05")
		fmt.Fprintf(w, "  %-32s %s\n", name, sparkline(values))
		fmt.Fprintf(w, "  %-32s min %s  avg %s  max %s  last %s  (%d pts, %s–%s)\n",
			"", fv(lo), fv(sum/float64(len(values))), fv(hi),
			fv(values[len(values)-1]), len(values), first, last)
	}
	return nil
}

// scrapeFleet fetches and decodes one poll of the gateway's fleet rollup.
func scrapeFleet(base string) (*poll, error) {
	p := &poll{when: time.Now()}
	body, _, err := get(base + "/metrics/fleet?format=json")
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(body, &p.snap); err != nil {
		return nil, fmt.Errorf("decode %s/metrics/fleet: %w", base, err)
	}
	return p, nil
}

// fleetRow is one backend's distilled gw_fleet_* gauges.
type fleetRow struct {
	backend  string
	up       bool
	health   float64
	sessions float64
	frames   float64
	shed     float64
	depth    float64
	p99Ns    float64
}

// fleetRows groups a fleet snapshot by backend label, sorted by address.
func fleetRows(snap telemetry.Snapshot) []fleetRow {
	byBackend := map[string]*fleetRow{}
	for _, met := range snap.Metrics {
		b := met.Labels["backend"]
		if b == "" || met.Value == nil {
			continue
		}
		row := byBackend[b]
		if row == nil {
			row = &fleetRow{backend: b}
			byBackend[b] = row
		}
		v := *met.Value
		switch met.Name {
		case "gw_fleet_up":
			row.up = v > 0
		case "gw_fleet_health_status":
			row.health = v
		case "gw_fleet_sessions":
			row.sessions = v
		case "gw_fleet_frames_total":
			row.frames = v
		case "gw_fleet_shed_total":
			row.shed = v
		case "gw_fleet_queue_depth":
			row.depth = v
		case "gw_fleet_process_p99_ns":
			row.p99Ns = v
		}
	}
	rows := make([]fleetRow, 0, len(byBackend))
	for _, row := range byBackend {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].backend < rows[j].backend })
	return rows
}

// renderFleet writes the cluster view: one line per backend from the
// gateway's rollup, with frame/shed rates when prev is available.
func renderFleet(w io.Writer, base string, prev, cur *poll) {
	rows := fleetRows(cur.snap)
	fmt.Fprintf(w, "imstop fleet — %s — %s\n", base, cur.when.Format("15:04:05"))
	if len(rows) == 0 {
		fmt.Fprintln(w, "  (no backends in rollup — is -url an imsgw metrics address with @READYZ_URL backends?)")
		return
	}
	var prevRows map[string]fleetRow
	var dt float64
	if prev != nil {
		prevRows = map[string]fleetRow{}
		for _, row := range fleetRows(prev.snap) {
			prevRows[row.backend] = row
		}
		dt = cur.when.Sub(prev.when).Seconds()
	}
	fmt.Fprintf(w, "  %-22s %-10s %8s %12s %12s %6s %9s\n",
		"backend", "health", "sessions", "frames", "shed", "queue", "p99")
	var up int
	var sessions, frames, shed float64
	for _, row := range rows {
		if !row.up {
			fmt.Fprintf(w, "  %-22s %-10s\n", row.backend, "DOWN")
			continue
		}
		up++
		sessions += row.sessions
		frames += row.frames
		shed += row.shed
		framesCol := fmt.Sprintf("%.0f", row.frames)
		shedCol := fmt.Sprintf("%.0f", row.shed)
		if p, ok := prevRows[row.backend]; ok && p.up && dt > 0 {
			framesCol = fmt.Sprintf("%.1f/s", (row.frames-p.frames)/dt)
			shedCol = fmt.Sprintf("%.1f/s", (row.shed-p.shed)/dt)
		}
		fmt.Fprintf(w, "  %-22s %-10s %8.0f %12s %12s %6.0f %9s\n",
			row.backend, statusName(row.health), row.sessions,
			framesCol, shedCol, row.depth, fmtNs(row.p99Ns))
	}
	fmt.Fprintf(w, "fleet:      %d/%d backends up, %.0f sessions, %.0f frames, %.0f shed\n",
		up, len(rows), sessions, frames, shed)
}

// scrape fetches and decodes one poll from the daemon.
func scrape(base string) (*poll, error) {
	p := &poll{when: time.Now()}
	body, _, err := get(base + "/metrics.json")
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(body, &p.snap); err != nil {
		return nil, fmt.Errorf("decode %s/metrics.json: %w", base, err)
	}
	// Readiness is optional decoration: a daemon without the endpoint (or
	// one answering 503 while draining) still renders.
	if body, _, err := get(base + "/readyz"); err == nil {
		var rep health.ReadyReport
		if json.Unmarshal(body, &rep) == nil {
			p.ready = &rep
		}
	}
	return p, nil
}

// get performs one bounded GET, returning the body for 200 and 503 alike
// (/readyz carries its report on both).
func get(url string) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, resp.StatusCode, fmt.Errorf("%s: status %s", url, resp.Status)
	}
	return body, resp.StatusCode, nil
}

// render writes the full console frame.  prev enables rate columns; nil
// (first frame, -once, or after a failed poll) falls back to totals.
func render(w io.Writer, base string, prev, cur *poll) {
	m := index(cur.snap)
	fmt.Fprintf(w, "imstop — %s — %s\n", base, cur.when.Format("15:04:05"))
	renderHealth(w, cur, m)
	renderRuntime(w, m)
	renderShards(w, cur.snap)
	renderTraffic(w, prev, cur, m)
	renderLatency(w, cur.snap)
}

// renderHealth prints the readiness verdict and per-SLO burn rates.
func renderHealth(w io.Writer, cur *poll, m byKey) {
	if cur.ready == nil {
		fmt.Fprintf(w, "health:     (no /readyz — overall %s)\n", statusName(m.value("health_status")))
		return
	}
	rep := cur.ready
	verdict := "READY"
	if !rep.Ready {
		verdict = "NOT READY (" + rep.Reason + ")"
	}
	fmt.Fprintf(w, "health:     %s — overall %s\n", verdict, strings.ToUpper(rep.Health.Status.String()))
	for _, s := range rep.Health.SLOs {
		fmt.Fprintf(w, "  slo %-14s %-9s burn fast %6.2f  slow %6.2f  %s\n",
			s.Name, strings.ToUpper(s.Status.String()), s.BurnFast, s.BurnSlow, s.Reason)
	}
}

// statusName maps a health_status gauge value to its name.
func statusName(v float64) string {
	return strings.ToUpper(health.Status(int(v)).String())
}

// renderRuntime prints the process/runtime line from the go_* gauges.
func renderRuntime(w io.Writer, m byKey) {
	fmt.Fprintf(w, "runtime:    up %s  goroutines %.0f  heap %s  gc %.0f cycles (%.2f%% cpu)\n",
		fmtDuration(m.value("process_uptime_seconds")),
		m.value("go_goroutines"),
		fmtBytes(m.value("go_heap_alloc_bytes")),
		m.value("go_gc_cycles_total"),
		100*m.value("go_gc_cpu_fraction"))
}

// renderShards draws one occupancy bar per acq_queue_depth instance.
func renderShards(w io.Writer, snap telemetry.Snapshot) {
	type sh struct {
		id    string
		depth float64
	}
	var shards []sh
	for _, met := range snap.Metrics {
		if met.Name == "acq_queue_depth" && met.Value != nil {
			shards = append(shards, sh{met.Labels["shard"], *met.Value})
		}
	}
	if len(shards) == 0 {
		return
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].id < shards[j].id })
	max := 1.0
	for _, s := range shards {
		if s.depth > max {
			max = s.depth
		}
	}
	fmt.Fprintf(w, "queues:\n")
	for _, s := range shards {
		width := int(s.depth / max * 24)
		fmt.Fprintf(w, "  shard %-3s %3.0f %s\n", s.id, s.depth, strings.Repeat("█", width))
	}
}

// trafficRow is one rate line: a label and the summed counter keys behind it.
type trafficRow struct {
	label string
	keys  []string
}

// renderTraffic prints request/shed/byte rates (deltas against prev, or
// totals when prev is nil).
func renderTraffic(w io.Writer, prev, cur *poll, m byKey) {
	rows := []trafficRow{
		{"frames ok", []string{`acq_responses_total{code=OK}`}},
		{"shed", []string{
			`acq_shed_total{reason=queue_full}`,
			`acq_shed_total{reason=draining}`,
			`acq_shed_total{reason=degraded}`,
		}},
		{"errors", []string{`acq_responses_total{code=INTERNAL}`}},
		{"bytes in", []string{`acq_bytes_in_total`}},
		{"bytes out", []string{`acq_bytes_out_total`}},
	}
	var pm byKey
	var dt float64
	if prev != nil {
		pm = index(prev.snap)
		dt = cur.when.Sub(prev.when).Seconds()
	}
	fmt.Fprintf(w, "traffic:    sessions %0.f active / %.0f total\n",
		m.value("acq_sessions_active"), m.value(`acq_sessions_total`))
	for _, row := range rows {
		var total, prevTotal float64
		for _, k := range row.keys {
			total += m.value(k)
			if pm != nil {
				prevTotal += pm.value(k)
			}
		}
		isBytes := strings.HasPrefix(row.label, "bytes")
		if pm != nil && dt > 0 {
			rate := (total - prevTotal) / dt
			if isBytes {
				fmt.Fprintf(w, "  %-10s %10s/s  (%s total)\n", row.label, fmtBytes(rate), fmtBytes(total))
			} else {
				fmt.Fprintf(w, "  %-10s %10.1f/s  (%.0f total)\n", row.label, rate, total)
			}
		} else if isBytes {
			fmt.Fprintf(w, "  %-10s %10s total\n", row.label, fmtBytes(total))
		} else {
			fmt.Fprintf(w, "  %-10s %10.0f total\n", row.label, total)
		}
	}
}

// latencyFamilies are the stage histograms worth a console line each.
var latencyFamilies = []string{"acq_read_frame_ns", "acq_queue_wait_ns", "acq_process_ns", "acq_write_ns"}

// renderLatency prints cumulative and rolling-window quantiles per stage
// histogram instance.
func renderLatency(w io.Writer, snap telemetry.Snapshot) {
	var printed bool
	for _, fam := range latencyFamilies {
		for _, met := range snap.Metrics {
			if met.Name != fam || met.Kind != "histogram" || met.Count == 0 {
				continue
			}
			if !printed {
				fmt.Fprintf(w, "latency:    %-22s %27s %31s\n", "", "cumulative p50/p95/p99", "last 60s p50/p95/p99 (n)")
				printed = true
			}
			name := strings.TrimSuffix(strings.TrimPrefix(fam, "acq_"), "_ns")
			if p := met.Labels["path"]; p != "" {
				name += "/" + p
			}
			cum := fmt.Sprintf("%s %s %s", fmtNs(met.P50), fmtNs(met.P95), fmtNs(met.P99))
			win := "—"
			if met.WCount > 0 {
				win = fmt.Sprintf("%s %s %s (%d)", fmtNs(met.WP50), fmtNs(met.WP95), fmtNs(met.WP99), met.WCount)
			}
			fmt.Fprintf(w, "  %-22s %29s %31s\n", name, cum, win)
		}
	}
}

// fmtNs renders a nanosecond quantity with an adaptive unit.
func fmtNs(ns float64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// fmtBytes renders a byte quantity with an adaptive binary unit.
func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// fmtDuration renders whole seconds as h/m/s.
func fmtDuration(s float64) string {
	return (time.Duration(s) * time.Second).String()
}
