// Command profiledump summarizes the rotating profile ring that imsd/imsgw
// -profile-dir writes: it parses every retained capture of one kind with
// the stdlib-only profile.proto reader (internal/pprofile), attributes each
// sample's value to its leaf function, and prints the top functions —
// optionally sliced by a pprof label (stage, shard, backend), which is what
// turns "the daemon is burning CPU" into "shard 3's workers are burning it
// in Deconvolve" without leaving the terminal (docs/OBSERVABILITY.md).
//
// Usage:
//
//	profiledump -dir DIR [-kind cpu|heap] [-label KEY]
//	            [-sample-type NAME] [-top N]
//
// -kind selects which captures to read (cpu-*.pprof or heap-*.pprof).
// -sample-type picks the value column (e.g. inuse_space, alloc_space for
// heap; default is the profile's last column — cpu nanoseconds, heap
// inuse_space).  With -label, output is grouped by that label's values;
// samples without the label land in the "(unlabeled)" group.  Heap
// profiles carry no goroutine labels, so -label is a CPU-profile tool.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/pprofile"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "profiledump: "+format+"\n", args...)
	os.Exit(1)
}

// group accumulates flat (leaf-attributed) values for one label slice.
type group struct {
	label string
	total int64
	flat  map[string]int64
}

func main() {
	dir := flag.String("dir", "", "profile ring directory (the daemon's -profile-dir)")
	kind := flag.String("kind", "cpu", "capture kind to summarize: cpu or heap")
	labelKey := flag.String("label", "", "slice by this pprof label key (e.g. stage, shard, backend)")
	sampleType := flag.String("sample-type", "", "value column to rank by (default: the profile's last column)")
	top := flag.Int("top", 10, "functions shown per slice")
	flag.Parse()

	if *dir == "" {
		fail("no -dir given (point it at the daemon's -profile-dir)")
	}
	if *kind != "cpu" && *kind != "heap" {
		fail("unknown -kind %q (want cpu or heap)", *kind)
	}
	files, err := filepath.Glob(filepath.Join(*dir, *kind+"-*.pprof"))
	if err != nil {
		fail("%v", err)
	}
	sort.Strings(files) // unixnano-stamped names: lexical == chronological
	if len(files) == 0 {
		fail("no %s-*.pprof captures in %s", *kind, *dir)
	}

	groups := map[string]*group{}
	var unit string
	var parsed int
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiledump: skipping %s: %v\n", path, err)
			continue
		}
		prof, err := pprofile.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiledump: skipping %s: %v\n", path, err)
			continue
		}
		col := prof.ValueIndex(*sampleType)
		if col < 0 {
			var have []string
			for _, st := range prof.SampleTypes {
				have = append(have, st.Type)
			}
			fail("%s has no sample type %q (have %v)", path, *sampleType, have)
		}
		unit = prof.SampleTypes[col].Unit
		parsed++
		for _, s := range prof.Samples {
			if col >= len(s.Values) || len(s.Funcs) == 0 {
				continue
			}
			v := s.Values[col]
			name := "(unlabeled)"
			if *labelKey != "" {
				if lv, ok := s.Labels[*labelKey]; ok {
					name = *labelKey + "=" + lv
				}
			} else {
				name = "(all)"
			}
			g := groups[name]
			if g == nil {
				g = &group{label: name, flat: map[string]int64{}}
				groups[name] = g
			}
			g.total += v
			g.flat[s.Funcs[0]] += v
		}
	}
	if parsed == 0 {
		fail("no captures parsed")
	}

	ordered := make([]*group, 0, len(groups))
	var grand int64
	for _, g := range groups {
		ordered = append(ordered, g)
		grand += g.total
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].total > ordered[j].total })

	typeName := *sampleType
	if typeName == "" {
		typeName = "default"
	}
	fmt.Printf("profiledump: %d %s captures from %s, ranking %s (%s)\n",
		parsed, *kind, *dir, typeName, unit)
	for _, g := range ordered {
		share := 0.0
		if grand > 0 {
			share = 100 * float64(g.total) / float64(grand)
		}
		fmt.Printf("\n[%s]  %s total (%.1f%% of all samples)\n", g.label, fmtValue(g.total, unit), share)
		type entry struct {
			fn string
			v  int64
		}
		entries := make([]entry, 0, len(g.flat))
		for fn, v := range g.flat {
			entries = append(entries, entry{fn, v})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].v > entries[j].v })
		if len(entries) > *top {
			entries = entries[:*top]
		}
		for _, e := range entries {
			pct := 0.0
			if g.total > 0 {
				pct = 100 * float64(e.v) / float64(g.total)
			}
			fmt.Printf("  %6.1f%% %12s  %s\n", pct, fmtValue(e.v, unit), e.fn)
		}
	}
}

// fmtValue renders one sample value in its profile unit.
func fmtValue(v int64, unit string) string {
	switch unit {
	case "nanoseconds":
		return time.Duration(v).Round(time.Microsecond).String()
	case "bytes":
		switch {
		case v >= 1<<30:
			return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
		case v >= 1<<20:
			return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
		default:
			return fmt.Sprintf("%dB", v)
		}
	default:
		return fmt.Sprintf("%d", v)
	}
}
