// Command profiledump summarizes the rotating profile ring that imsd/imsgw
// -profile-dir writes: it parses every retained capture of one kind with
// the stdlib-only profile.proto reader (internal/pprofile), attributes each
// sample's value to its leaf function, and prints the top functions —
// optionally sliced by a pprof label (stage, shard, backend), which is what
// turns "the daemon is burning CPU" into "shard 3's workers are burning it
// in Deconvolve" without leaving the terminal (docs/OBSERVABILITY.md).
//
// Usage:
//
//	profiledump -dir DIR [-kind cpu|heap] [-label KEY]
//	            [-sample-type NAME] [-top N]
//	profiledump -diff A B [-kind cpu|heap] [-sample-type NAME] [-top N]
//
// -kind selects which captures to read (cpu-*.pprof or heap-*.pprof).
// -sample-type picks the value column (e.g. inuse_space, alloc_space for
// heap; default is the profile's last column — cpu nanoseconds, heap
// inuse_space).  With -label, output is grouped by that label's values;
// samples without the label land in the "(unlabeled)" group.  Heap
// profiles carry no goroutine labels, so -label is a CPU-profile tool.
//
// With -diff, profiledump compares two captures instead of summarizing a
// ring: A and B are each a .pprof file or a profile ring directory (the
// newest -kind capture in it is used), and the output is the per-function
// leaf-flat delta B−A sorted by regression — the functions that got most
// expensive between the two captures first, the biggest improvements
// last.  Point A at a baseline ring and B at a ring captured after a
// change to see exactly where the time (or memory) moved.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/pprofile"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "profiledump: "+format+"\n", args...)
	os.Exit(1)
}

// group accumulates flat (leaf-attributed) values for one label slice.
type group struct {
	label string
	total int64
	flat  map[string]int64
}

func main() {
	dir := flag.String("dir", "", "profile ring directory (the daemon's -profile-dir)")
	kind := flag.String("kind", "cpu", "capture kind to summarize: cpu or heap")
	labelKey := flag.String("label", "", "slice by this pprof label key (e.g. stage, shard, backend)")
	sampleType := flag.String("sample-type", "", "value column to rank by (default: the profile's last column)")
	top := flag.Int("top", 10, "functions shown per slice")
	diff := flag.Bool("diff", false, "compare two captures: profiledump -diff A B, each a .pprof file or a ring dir (newest -kind capture used); prints the leaf-flat delta B-A sorted by regression")
	flag.Parse()

	if *kind != "cpu" && *kind != "heap" {
		fail("unknown -kind %q (want cpu or heap)", *kind)
	}
	if *diff {
		if flag.NArg() != 2 {
			fail("-diff wants exactly two arguments, A and B (got %d)", flag.NArg())
		}
		runDiff(flag.Arg(0), flag.Arg(1), *kind, *sampleType, *top)
		return
	}
	if *dir == "" {
		fail("no -dir given (point it at the daemon's -profile-dir)")
	}
	files, err := filepath.Glob(filepath.Join(*dir, *kind+"-*.pprof"))
	if err != nil {
		fail("%v", err)
	}
	sort.Strings(files) // unixnano-stamped names: lexical == chronological
	if len(files) == 0 {
		fail("no %s-*.pprof captures in %s", *kind, *dir)
	}

	groups := map[string]*group{}
	var unit string
	var parsed int
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiledump: skipping %s: %v\n", path, err)
			continue
		}
		prof, err := pprofile.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiledump: skipping %s: %v\n", path, err)
			continue
		}
		col := prof.ValueIndex(*sampleType)
		if col < 0 {
			var have []string
			for _, st := range prof.SampleTypes {
				have = append(have, st.Type)
			}
			fail("%s has no sample type %q (have %v)", path, *sampleType, have)
		}
		unit = prof.SampleTypes[col].Unit
		parsed++
		for _, s := range prof.Samples {
			if col >= len(s.Values) || len(s.Funcs) == 0 {
				continue
			}
			v := s.Values[col]
			name := "(unlabeled)"
			if *labelKey != "" {
				if lv, ok := s.Labels[*labelKey]; ok {
					name = *labelKey + "=" + lv
				}
			} else {
				name = "(all)"
			}
			g := groups[name]
			if g == nil {
				g = &group{label: name, flat: map[string]int64{}}
				groups[name] = g
			}
			g.total += v
			g.flat[s.Funcs[0]] += v
		}
	}
	if parsed == 0 {
		fail("no captures parsed")
	}

	ordered := make([]*group, 0, len(groups))
	var grand int64
	for _, g := range groups {
		ordered = append(ordered, g)
		grand += g.total
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].total > ordered[j].total })

	typeName := *sampleType
	if typeName == "" {
		typeName = "default"
	}
	fmt.Printf("profiledump: %d %s captures from %s, ranking %s (%s)\n",
		parsed, *kind, *dir, typeName, unit)
	for _, g := range ordered {
		share := 0.0
		if grand > 0 {
			share = 100 * float64(g.total) / float64(grand)
		}
		fmt.Printf("\n[%s]  %s total (%.1f%% of all samples)\n", g.label, fmtValue(g.total, unit), share)
		type entry struct {
			fn string
			v  int64
		}
		entries := make([]entry, 0, len(g.flat))
		for fn, v := range g.flat {
			entries = append(entries, entry{fn, v})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].v > entries[j].v })
		if len(entries) > *top {
			entries = entries[:*top]
		}
		for _, e := range entries {
			pct := 0.0
			if g.total > 0 {
				pct = 100 * float64(e.v) / float64(g.total)
			}
			fmt.Printf("  %6.1f%% %12s  %s\n", pct, fmtValue(e.v, unit), e.fn)
		}
	}
}

// resolveCapture maps one -diff argument to a concrete capture file: a
// .pprof path is used as-is; a ring directory yields its newest -kind
// capture (unixnano-stamped names, so lexically last == newest).
func resolveCapture(arg, kind string) string {
	st, err := os.Stat(arg)
	if err != nil {
		fail("%v", err)
	}
	if !st.IsDir() {
		return arg
	}
	files, err := filepath.Glob(filepath.Join(arg, kind+"-*.pprof"))
	if err != nil {
		fail("%v", err)
	}
	if len(files) == 0 {
		fail("no %s-*.pprof captures in %s", kind, arg)
	}
	sort.Strings(files)
	return files[len(files)-1]
}

// loadFlat parses one capture into leaf-attributed flat values per
// function, plus the total and the value column's unit.
func loadFlat(path, sampleType string) (flat map[string]int64, total int64, unit string) {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	prof, err := pprofile.Parse(f)
	f.Close()
	if err != nil {
		fail("%s: %v", path, err)
	}
	col := prof.ValueIndex(sampleType)
	if col < 0 {
		var have []string
		for _, st := range prof.SampleTypes {
			have = append(have, st.Type)
		}
		fail("%s has no sample type %q (have %v)", path, sampleType, have)
	}
	flat = map[string]int64{}
	for _, s := range prof.Samples {
		if col >= len(s.Values) || len(s.Funcs) == 0 {
			continue
		}
		flat[s.Funcs[0]] += s.Values[col]
		total += s.Values[col]
	}
	return flat, total, prof.SampleTypes[col].Unit
}

// runDiff prints the per-function leaf-flat delta B−A, regressions
// (positive deltas) first, capped at top rows on each side.
func runDiff(a, b, kind, sampleType string, top int) {
	pathA := resolveCapture(a, kind)
	pathB := resolveCapture(b, kind)
	flatA, totalA, unitA := loadFlat(pathA, sampleType)
	flatB, totalB, unitB := loadFlat(pathB, sampleType)
	if unitA != unitB {
		fail("incomparable captures: %s ranks %s, %s ranks %s", pathA, unitA, pathB, unitB)
	}
	type row struct {
		fn    string
		a, b  int64
		delta int64
	}
	seen := map[string]bool{}
	var rows []row
	for fn, v := range flatA {
		seen[fn] = true
		rows = append(rows, row{fn: fn, a: v, b: flatB[fn], delta: flatB[fn] - v})
	}
	for fn, v := range flatB {
		if !seen[fn] {
			rows = append(rows, row{fn: fn, b: v, delta: v})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].delta != rows[j].delta {
			return rows[i].delta > rows[j].delta
		}
		return rows[i].fn < rows[j].fn
	})

	fmt.Printf("profiledump: diff %s (%s)\n  A: %s  total %s\n  B: %s  total %s\n  net %s\n",
		kind, unitA, pathA, fmtValue(totalA, unitA), pathB, fmtValue(totalB, unitA),
		fmtDelta(totalB-totalA, unitA))
	printed := 0
	fmt.Printf("\nregressions (B slower/bigger):\n")
	for _, r := range rows {
		if r.delta <= 0 || printed >= top {
			break
		}
		fmt.Printf("  %12s  %12s -> %-12s %s\n", fmtDelta(r.delta, unitA), fmtValue(r.a, unitA), fmtValue(r.b, unitA), r.fn)
		printed++
	}
	if printed == 0 {
		fmt.Println("  (none)")
	}
	printed = 0
	fmt.Printf("\nimprovements (B faster/smaller):\n")
	for i := len(rows) - 1; i >= 0; i-- {
		r := rows[i]
		if r.delta >= 0 || printed >= top {
			break
		}
		fmt.Printf("  %12s  %12s -> %-12s %s\n", fmtDelta(r.delta, unitA), fmtValue(r.a, unitA), fmtValue(r.b, unitA), r.fn)
		printed++
	}
	if printed == 0 {
		fmt.Println("  (none)")
	}
}

// fmtDelta renders a signed delta in the profile unit.
func fmtDelta(v int64, unit string) string {
	if v < 0 {
		return "-" + fmtValue(-v, unit)
	}
	return "+" + fmtValue(v, unit)
}

// fmtValue renders one sample value in its profile unit.
func fmtValue(v int64, unit string) string {
	switch unit {
	case "nanoseconds":
		return time.Duration(v).Round(time.Microsecond).String()
	case "bytes":
		switch {
		case v >= 1<<30:
			return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
		case v >= 1<<20:
			return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
		default:
			return fmt.Sprintf("%dB", v)
		}
	default:
		return fmt.Sprintf("%d", v)
	}
}
