// Command prsgen generates pseudorandom gating sequences and reports their
// properties: length, balance, duty cycle, autocorrelation flatness, and —
// for oversampled/modified variants — the spectral conditioning that
// determines deconvolution noise amplification.
//
// Usage:
//
//	prsgen [-order N] [-oversample K] [-defect D] [-print]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hadamard"
	"repro/internal/prs"
)

func main() {
	order := flag.Int("order", 9, "m-sequence order (2-20)")
	oversample := flag.Int("oversample", 1, "bins per sequence element")
	defect := flag.Int("defect", 0, "defect bins per open run")
	print := flag.Bool("print", false, "print the full 0/1 sequence")
	flag.Parse()

	base, err := prs.MSequence(*order)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prsgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("m-sequence order %d: length %d, ones %d, duty cycle %.4f\n",
		*order, len(base), base.Ones(), base.DutyCycle())
	fmt.Printf("maximal-length properties: %v\n", base.IsMaximalLength())
	fmt.Printf("autocorrelation: lag0 %d, off-peak %d\n", base.Autocorrelation(0), base.Autocorrelation(1))

	seq := base
	if *oversample > 1 {
		seq = seq.Oversample(*oversample)
	}
	if *defect > 0 {
		if *oversample < 2 {
			fmt.Fprintln(os.Stderr, "prsgen: defect requires oversample >= 2")
			os.Exit(1)
		}
		seq = seq.Modify(*defect)
	}
	if *oversample > 1 || *defect > 0 {
		fmt.Printf("\nmodified sequence: length %d, ones %d, duty cycle %.4f\n",
			len(seq), seq.Ones(), seq.DutyCycle())
	}
	dec, err := hadamard.NewWienerDecoder(seq, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prsgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("spectral conditioning: min modulation %.4f, condition number %.2f\n",
		dec.MinModulation(), dec.ConditionNumber())
	if *print {
		fmt.Println(seq)
	}
}
