// FPGA pipeline: the hybrid data-processing story of the paper in one
// program.  It sizes the FPGA capture/accumulation front end against the
// digitizer, analyzes the deconvolution offload over the RapidArray fabric,
// pushes a real multiplexed frame through the fixed-point FHT core, and
// compares against the measured pure-software path.  The whole run is
// instrumented through an internal/telemetry registry, and the closing
// section reads the telemetry back to locate the bottleneck — the
// walkthrough in docs/OBSERVABILITY.md follows this program.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/hadamard"
	"repro/internal/hybrid"
	"repro/internal/instrument"
	"repro/internal/pipeline"
	"repro/internal/prs"
	"repro/internal/telemetry"
)

func main() {
	reg := telemetry.NewRegistry()
	// 1. Capture front end: does the FPGA keep up with the digitizer, and
	// how much does on-chip accumulation shrink the stream?
	dp, err := hybrid.AnalyzeDataPath(hybrid.DefaultDataPathConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("capture front end (2 GS/s digitizer, order-9 sequence):")
	fmt.Printf("  raw stream           %8.1f MB/s (%.0f%% of RapidArray)\n",
		dp.RawByteRate/1e6, 100*dp.RawFabricUtilization)
	fmt.Printf("  accumulated stream   %8.1f MB/s (%.2f%% of RapidArray), reduction %.0fx\n",
		dp.AccumulatedByteRate/1e6, 100*dp.AccumulatedFabricUtilization, dp.ReductionFactor)
	fmt.Printf("  FPGA utilization     %8.1f%%, BRAM needed %.1f Mbit (fits: %v), real-time: %v\n",
		100*dp.FPGAUtilization, float64(dp.BRAMBitsNeeded)/1e6, dp.BRAMOK, dp.RealTime)

	// 2. Deconvolution offload budget.
	off := hybrid.DefaultOffloadConfig()
	rep, err := hybrid.AnalyzeOffload(off)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeconvolution offload (order %d, %s, %d butterflies):\n",
		off.Order, off.Format, off.ButterflyUnits)
	fmt.Printf("  %d cycles/column, %.2f ms compute + %.2f ms DMA per frame\n",
		rep.ColumnCycles, rep.ComputeTimeS*1e3, (rep.TransferInS+rep.TransferOutS)*1e3)
	fmt.Printf("  %.1f frames/s sustained, bottleneck: %s\n", rep.FramesPerSec, rep.Bottleneck)

	// 3. Push a real frame through the modeled FPGA core and check the
	// fixed-point arithmetic held up.
	order := off.Order
	seq := prs.MustMSequence(order)
	cols := 512
	rng := rand.New(rand.NewSource(3))
	frame := instrument.NewFrame(len(seq), cols)
	for c := 0; c < cols; c++ {
		x := make([]float64, len(seq))
		x[rng.Intn(len(x))] = 100 + rng.Float64()*900
		y, err := hadamard.Encode(seq, x)
		if err != nil {
			log.Fatal(err)
		}
		frame.SetDriftVector(c, y)
	}
	off.Metrics = reg
	res, err := hybrid.HybridDeconvolveFrame(frame, off)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhybrid frame: %d columns deconvolved in %.2f ms simulated XD1 time, %d saturations\n",
		cols, res.SimulatedTimeS*1e3, res.Saturations)

	// 4. Software baseline measured on this host.
	factory := func() (hadamard.Decoder, error) { return hadamard.NewFHTDecoder(order) }
	start := time.Now()
	if _, err := pipeline.DeconvolveFrameWithMetrics(frame, factory, 1, reg); err != nil {
		log.Fatal(err)
	}
	single := time.Since(start)
	start = time.Now()
	if _, err := pipeline.DeconvolveFrameWithMetrics(frame, factory, 0, reg); err != nil {
		log.Fatal(err)
	}
	parallel := time.Since(start)
	fmt.Printf("software on this host: %.2f ms single-thread, %.2f ms on %d cores\n",
		single.Seconds()*1e3, parallel.Seconds()*1e3, runtime.GOMAXPROCS(0))
	fmt.Printf("modeled FPGA vs measured single-thread: %.1fx\n",
		single.Seconds()/res.SimulatedTimeS)

	// 5. Stream the frame's columns through the clocked pipeline, then read
	// the telemetry back: the deepest queue and the stage that stalled the
	// most point at the bottleneck without re-deriving anything by hand.
	sc := hybrid.DefaultStreamConfig()
	sc.Offload = off
	sc.Columns = cols
	sc.Metrics = reg
	srep, err := hybrid.SimulateStream(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclocked stream: %.0f cycles/col sustained, bottleneck stage: %s\n",
		srep.CyclesPerCol, srep.Bottleneck)

	fmt.Println("\ntelemetry highlights:")
	colLat := reg.Histogram("hybrid_column_latency_cycles",
		"cycles from capture feed to dma-out acceptance, per column")
	fmt.Printf("  column latency          p50 %.0f  p99 %.0f cycles (%d observed)\n",
		colLat.Quantile(0.5), colLat.Quantile(0.99), colLat.Count())
	for _, fifo := range []string{"capture→accum", "accum→fht", "fht→dma"} {
		depth := reg.Gauge("hybrid_queue_depth_peak",
			"high-water occupancy of each inter-stage queue, tokens", telemetry.L("fifo", fifo))
		stalls := reg.Counter("hybrid_queue_full_stalls_total",
			"pushes rejected by a full inter-stage queue", telemetry.L("fifo", fifo))
		fmt.Printf("  queue %-14s     peak depth %.0f, full-stalls %d\n", fifo, depth.Value(), stalls.Value())
	}
	decodeNs := reg.Histogram("pipeline_column_decode_ns", "per-column software decode latency, nanoseconds")
	fmt.Printf("  software decode/column  p50 %.1f us over %d columns\n",
		decodeNs.Quantile(0.5)/1e3, decodeNs.Count())
	fmt.Printf("  host-FPGA transfers     %d bytes each way\n",
		reg.Counter("hybrid_transfer_bytes_total", "bytes moved between host and FPGA per direction",
			telemetry.L("dir", "in")).Value())
}
