// Multiplexed CID: the most advanced acquisition the library models.
// Peptide precursors traverse the drift tube, dissociate post-mobility, and
// their b/y fragments — acquired in the same multiplexed frame — are
// assigned back to precursors purely by drift-profile correlation, giving
// sequence-level identification without an isolation quadrupole.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/peaks"
	"repro/internal/physics"
)

func main() {
	peptides := []string{"LVNELTEFAK", "HLVDEPQNLIK", "YLYEIAR"}
	cfg := core.ReferenceConfig(instrument.ModeMultiplexedTrap)
	cfg.TOF.Bins = 4096
	cfg.TOF.MinMZ = 150
	cfg.TOF.MaxMZ = 2500
	cfg.Detector.GainCounts = 2
	cond := cfg.Tube.Conditions

	var mix instrument.Mixture
	type target struct {
		seq     string
		precMZ  float64
		queries []peaks.FragmentQuery
	}
	var targets []target
	for _, seq := range peptides {
		p, err := chem.NewPeptide(seq)
		if err != nil {
			log.Fatal(err)
		}
		const z = 2
		precMZ, _ := p.MZ(z)
		precCCS, _ := p.CCS(z)
		// Surviving precursor.
		if err := mix.AddAnalyte(instrument.Analyte{
			Name: seq, MassDa: p.MonoisotopicMass(), Z: z,
			MZ: precMZ, CCSM2: precCCS, Abundance: 0.4,
		}); err != nil {
			log.Fatal(err)
		}
		// Post-drift fragments: same mobility as the precursor.
		kPrec, err := physics.Mobility(p.MonoisotopicMass(), z, precCCS, cond)
		if err != nil {
			log.Fatal(err)
		}
		frags, err := chem.DominantFragments(p)
		if err != nil {
			log.Fatal(err)
		}
		tg := target{seq: seq, precMZ: precMZ}
		for _, fr := range frags {
			mz, _ := fr.MZ(1)
			if cfg.TOF.BinOf(mz) < 0 {
				continue
			}
			ccs, err := physics.CCSFromMobility(fr.NeutralMassDa, 1, kPrec, cond)
			if err != nil {
				log.Fatal(err)
			}
			if err := mix.AddAnalyte(instrument.Analyte{
				Name: seq + "/" + fr.Name(), MassDa: fr.NeutralMassDa, Z: 1,
				MZ: mz, CCSM2: ccs, Abundance: 0.6 / float64(len(frags)),
			}); err != nil {
				log.Fatal(err)
			}
			tg.queries = append(tg.queries, peaks.FragmentQuery{Name: fr.Name(), MZ: mz})
		}
		targets = append(targets, tg)
	}

	exp := &core.Experiment{Mixture: mix, SourceRate: 4e7, Config: cfg}
	res, err := exp.Run(rand.New(rand.NewSource(9)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one multiplexed acquisition: %d analytes (precursors + fragments), utilization %.0f%%\n\n",
		len(mix.Analytes), 100*res.Stats.Utilization)

	for _, tg := range targets {
		matches, err := peaks.AssignFragments(res.Decoded, cfg.TOF, tg.precMZ, tg.queries, 0.5, 3.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s precursor m/z %8.2f: %d/%d fragments correlated\n",
			tg.seq, tg.precMZ, len(matches), len(tg.queries))
		for i, m := range matches {
			if i >= 4 {
				fmt.Printf("    ... and %d more\n", len(matches)-4)
				break
			}
			fmt.Printf("    %-4s m/z %8.2f  corr %.3f  SNR %6.1f\n", m.Name, m.MZ, m.Correlation, m.SNR)
		}
	}
}
