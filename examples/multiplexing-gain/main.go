// Multiplexing gain: sweep the pseudorandom sequence order and measure the
// SNR advantage of multiplexed acquisition over conventional signal
// averaging at equal analysis time — the headline trade of Hadamard
// transform ion mobility spectrometry, alongside the theoretical
// detector-noise-limited gain (N+1)/(2√N).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/instrument"
)

func main() {
	pep, err := chem.NewPeptide("RPPGFSPFR") // bradykinin
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%5s %5s %10s %10s %10s %8s %8s\n",
		"order", "N", "SA SNR", "MP SNR", "trap SNR", "gain", "theory")
	for _, order := range []int{6, 7, 8, 9} {
		n := 1<<order - 1
		var snr [3]float64
		for mi, mode := range []instrument.Mode{
			instrument.ModeSignalAveraging,
			instrument.ModeMultiplexed,
			instrument.ModeMultiplexedTrap,
		} {
			var mix instrument.Mixture
			if err := mix.AddPeptide("bradykinin", pep, 1); err != nil {
				log.Fatal(err)
			}
			cfg := instrument.DefaultConfig()
			cfg.Mode = mode
			cfg.SequenceOrder = order
			cfg.TOF.Bins = 256
			cfg.TOF.MaxMZ = 1700
			cfg.Frames = 4
			// Detector-noise-limited regime: single-ion response at the
			// ADC noise level (the regime where multiplexing shines).
			cfg.Detector.GainCounts = 1

			exp := &core.Experiment{Mixture: mix, SourceRate: 3e5, Config: cfg}
			a := mix.Analytes[1] // 2+ charge state
			const trials = 5
			var sum float64
			for t := int64(0); t < trials; t++ {
				res, err := exp.Run(rand.New(rand.NewSource(100 + t)))
				if err != nil {
					log.Fatal(err)
				}
				rep, err := core.AnalyteSNR(res.Decoded, cfg.TOF, cfg.Tube, cfg.BinWidthS, a)
				if err != nil {
					log.Fatal(err)
				}
				sum += rep.SNR
			}
			snr[mi] = sum / trials
		}
		theory := float64(n+1) / (2 * math.Sqrt(float64(n)))
		fmt.Printf("%5d %5d %10.2f %10.2f %10.2f %8.2f %8.2f\n",
			order, n, snr[0], snr[1], snr[2], snr[2]/snr[0], theory)
	}
}
