// Proteome screen: digest bovine serum albumin in silico, infuse the digest
// into the simulated instrument in both conventional (signal-averaging) and
// trapped multiplexed modes at equal acquisition time, and compare how many
// peptides each mode identifies — the workload of the companion
// direct-infusion identification papers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/peaks"
)

func main() {
	// In-silico tryptic digest of BSA (detectable peptide range).
	digest, err := chem.BSA().Digest(chem.Trypsin{}, 0, 6, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BSA digest: %d detectable tryptic peptides\n", len(digest))

	var mix instrument.Mixture
	named := map[string]chem.Peptide{}
	abundRng := rand.New(rand.NewSource(7))
	for _, p := range digest {
		named[p.Sequence] = p
		if err := mix.AddPeptide(p.Sequence, p, 0.3+abundRng.Float64()); err != nil {
			log.Fatal(err)
		}
	}
	cands, err := peaks.CandidatesFromPeptides(named, true)
	if err != nil {
		log.Fatal(err)
	}

	run := func(mode instrument.Mode) {
		cfg := core.ReferenceConfig(mode)
		cfg.TOF.Bins = 4096
		cfg.TOF.MaxMZ = 2500
		cfg.BinWidthS = 1e-4
		cfg.Frames = 8
		cfg.Detector.GainCounts = 2
		exp := &core.Experiment{Mixture: mix, SourceRate: 5e6, Config: cfg}
		res, err := exp.Run(rand.New(rand.NewSource(11)))
		if err != nil {
			log.Fatal(err)
		}
		id, err := core.Identify(res.Decoded, cfg.TOF, cands, 5, 600, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-18s: utilization %5.1f%%, features %4d, unique peptides %3d, FDR %.3f\n",
			res.Stats.Mode, 100*res.Stats.Utilization, len(id.Features), id.UniqueTargets, id.FDR)
		// Show a few identified sequences.
		shown := 0
		for _, m := range id.Matches {
			if m.Candidate.IsDecoy {
				continue
			}
			if shown >= 5 {
				break
			}
			fmt.Printf("    %-25s %d+  m/z %8.3f  (%.0f ppm)\n",
				m.Candidate.Peptide.Sequence, m.Candidate.Z, m.Candidate.MZ, m.PPMError)
			shown++
		}
	}

	run(instrument.ModeSignalAveraging)
	run(instrument.ModeMultiplexedTrap)
}
