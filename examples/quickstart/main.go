// Quickstart: simulate a three-peptide infusion on the multiplexed
// IMS-TOF, deconvolve the frame, and print the recovered drift-time peaks —
// the smallest complete tour of the library.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/peaks"
)

func main() {
	// 1. Describe the sample: three classic calibrant peptides.
	var mix instrument.Mixture
	for _, def := range []struct {
		name, seq string
		abundance float64
	}{
		{"bradykinin", "RPPGFSPFR", 1.0},
		{"angiotensin I", "DRVYIHPFHL", 0.6},
		{"fibrinopeptide A", "ADSGEGDFLAEGGGVR", 0.3},
	} {
		p, err := chem.NewPeptide(def.seq)
		if err != nil {
			log.Fatal(err)
		}
		if err := mix.AddPeptide(def.name, p, def.abundance); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Configure the instrument: order-8 multiplexing with the ion
	// funnel trap, four accumulated IMS cycles.
	cfg := core.ReferenceConfig(instrument.ModeMultiplexedTrap)
	exp := &core.Experiment{
		Mixture:    mix,
		SourceRate: 5e6, // charges/s from the ESI source
		Config:     cfg,
	}

	// 3. Acquire and deconvolve (deterministic in the seed).
	res, err := exp.Run(rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acquired %d cycles, utilization %.0f%%, %d gate pulses/cycle\n",
		res.Stats.Cycles, 100*res.Stats.Utilization, res.Sequence.Ones())

	// 4. Inspect each analyte: where did it land, and how cleanly?
	fmt.Printf("\n%-22s %8s %10s %8s\n", "analyte", "m/z", "drift bin", "SNR")
	for _, a := range mix.Analytes {
		rep, err := core.AnalyteSNR(res.Decoded, cfg.TOF, cfg.Tube, cfg.BinWidthS, a)
		if err != nil {
			continue // charge state outside the recorded m/z range
		}
		fmt.Printf("%-22s %8.2f %10d %8.1f\n", a.Name, a.MZ, rep.DriftBin, rep.SNR)
	}

	// 5. Feature finding over the whole (drift × m/z) frame.
	feats, err := peaks.FindFeatures(res.Decoded, cfg.TOF, 5, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d features above SNR 5 in the deconvolved frame\n", len(feats))
}
