// client.go: the IMSP/1 client — the library side of the protocol used by
// cmd/imsload, tests, and any host program that wants to feed the daemon.
// A Client multiplexes concurrent requests over one TCP connection: Do is
// safe from many goroutines, responses are matched to callers by request
// id, and a connection failure fails every in-flight call with the same
// error.
package acqserver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frameio"
	"repro/internal/instrument"
)

// Response is the outcome of one request: either a Result (Code OK) or a
// typed error from the server.
type Response struct {
	// Code is the server's status for this request.
	Code Code
	// Message is the server's error text (empty on OK).
	Message string
	// Result is the deconvolution summary (nil unless Code is OK).
	Result *Result
	// TraceID is the trace id the server echoed on this response (version-2
	// sessions; 0 otherwise).  It is echoed on errors too, so a caller can
	// log exactly which frame was shed.
	TraceID uint64
}

// ErrNotDurable reports a successful response whose frame was
// acknowledged before its frame-log record reached stable storage (the
// daemon runs its log with fsync policy "interval" or "none").  The frame
// WAS processed — this is not a failure — but a caller that needs the
// ACK-implies-durable guarantee can distinguish this mode from a true
// durable acknowledgement.
var ErrNotDurable = errors.New("acqserver: frame acknowledged without durability (frame log not fsynced)")

// DurabilityError returns ErrNotDurable when the response carries
// ResultFlagNotDurable, nil otherwise (including on error responses,
// which acknowledge nothing).
func (r *Response) DurabilityError() error {
	if r.Result != nil && r.Result.Flags&ResultFlagNotDurable != 0 {
		return ErrNotDurable
	}
	return nil
}

// Client is one IMSP connection.  Safe for concurrent use.
type Client struct {
	conn net.Conn
	info ServerInfo
	ver  uint8 // negotiated protocol version

	wmu sync.Mutex // serializes message writes

	pmu     sync.Mutex
	pending map[uint64]chan Response
	nextID  atomic.Uint64

	closed  chan struct{}
	closeFn func()
	readErr error // valid after closed
}

// Dial connects, performs the HELLO handshake within timeout, and starts
// the response dispatcher.  The HELLO itself is always framed in version 1
// (so any server can parse it); its payload advertises the highest version
// this client speaks, and the server's HELLO_OK names the agreed one.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	_ = conn.SetDeadline(deadline)
	if err := WriteMessage(conn, MsgHello, 0, []byte{ProtocolVersion}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("acqserver: hello: %w", err)
	}
	h, err := ReadHeader(conn)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("acqserver: hello response: %w", err)
	}
	if h.Type != MsgHelloOK || h.PayloadLen > 64 {
		_ = conn.Close()
		return nil, fmt.Errorf("acqserver: unexpected hello response %v (%d bytes)", h.Type, h.PayloadLen)
	}
	buf := make([]byte, h.PayloadLen)
	if _, err := io.ReadFull(conn, buf); err != nil {
		_ = conn.Close()
		return nil, err
	}
	info, err := DecodeServerInfo(buf)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	ver := info.Version
	if ver < ProtocolV1 || ver > ProtocolVersion {
		ver = ProtocolV1
	}
	c := &Client{
		conn:    conn,
		info:    info,
		ver:     ver,
		pending: map[uint64]chan Response{},
		closed:  make(chan struct{}),
	}
	c.closeFn = sync.OnceFunc(func() { close(c.closed); _ = conn.Close() })
	go c.readLoop()
	return c, nil
}

// Info returns the server's HELLO_OK handshake summary.
func (c *Client) Info() ServerInfo { return c.info }

// ProtocolVersion returns the session's negotiated IMSP version.
func (c *Client) ProtocolVersion() uint8 { return c.ver }

// Done returns a channel that is closed once the connection has failed or
// been closed; connection pools use it to discard dead clients before
// routing a request onto them.
func (c *Client) Done() <-chan struct{} { return c.closed }

// Close sends a best-effort GOODBYE and closes the connection; in-flight
// calls fail.
func (c *Client) Close() error {
	c.wmu.Lock()
	_ = c.conn.SetWriteDeadline(time.Now().Add(time.Second))
	_ = WriteMessage(c.conn, MsgGoodbye, 0, nil)
	c.wmu.Unlock()
	c.fail(fmt.Errorf("acqserver: client closed"))
	return nil
}

// Do submits one frame and waits for its response or ctx.  opts.Deadline
// is also sent to the server so it can cut off queued or in-flight work.
func (c *Client) Do(ctx context.Context, f *instrument.Frame, enc frameio.Encoding, opts FrameOptions) (*Response, error) {
	var payload bytes.Buffer
	payload.Write(encodeFrameOpts(nil, opts))
	if err := frameio.Write(&payload, f, nil, enc); err != nil {
		return nil, err
	}
	return c.DoPayload(ctx, payload.Bytes(), opts.TraceID)
}

// DoPayload submits one pre-encoded FRAME payload (the 5-byte options
// prefix followed by a frameio-encoded frame) verbatim and waits for its
// response or ctx.  It is the raw proxy hook: a gateway that already
// holds the client's encoded bytes forwards them upstream without ever
// decoding the frame.  traceID rides the version-2 header, exactly as
// FrameOptions.TraceID does for Do.
func (c *Client) DoPayload(ctx context.Context, payload []byte, traceID uint64) (*Response, error) {
	id := c.nextID.Add(1)
	ch := make(chan Response, 1)
	c.pmu.Lock()
	c.pending[id] = ch
	c.pmu.Unlock()
	defer func() {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
	}()

	c.wmu.Lock()
	if d, ok := ctx.Deadline(); ok {
		_ = c.conn.SetWriteDeadline(d)
	} else {
		_ = c.conn.SetWriteDeadline(time.Time{})
	}
	err := WriteMessageV(c.conn, c.ver, MsgFrame, id, traceID, payload)
	c.wmu.Unlock()
	if err != nil {
		return nil, err
	}

	select {
	case r := <-ch:
		return &r, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.closed:
		return nil, c.readErr
	}
}

// readLoop dispatches responses to waiting calls until the connection
// fails or closes.
func (c *Client) readLoop() {
	for {
		h, err := ReadHeader(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("acqserver: connection lost: %w", err))
			return
		}
		if h.PayloadLen > c.info.MaxPayloadBytes {
			c.fail(fmt.Errorf("acqserver: server sent %d-byte payload beyond bound", h.PayloadLen))
			return
		}
		buf := make([]byte, h.PayloadLen)
		if _, err := io.ReadFull(c.conn, buf); err != nil {
			c.fail(fmt.Errorf("acqserver: connection lost: %w", err))
			return
		}
		var resp Response
		switch h.Type {
		case MsgResult:
			res, err := DecodeResult(buf)
			if err != nil {
				c.fail(err)
				return
			}
			resp = Response{Code: CodeOK, Result: res, TraceID: h.TraceID}
		case MsgError:
			code, msg, err := DecodeError(buf)
			if err != nil {
				c.fail(err)
				return
			}
			resp = Response{Code: code, Message: msg, TraceID: h.TraceID}
		default:
			continue // ignorable (future server pushes)
		}
		c.pmu.Lock()
		ch := c.pending[h.ReqID]
		c.pmu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// fail closes the client and records the terminal error for in-flight Do
// calls.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.pmu.Unlock()
	c.closeFn()
}
