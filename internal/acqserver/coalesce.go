// coalesce.go: server-side micro-batching across sessions.  Every frame a
// shard serves carries the same m-sequence order (enforced at accept), so
// CPU-path frames from different clients can share one decode: a worker
// that picks up a frame waits up to Config.CoalesceWindow for batch-mates
// (or until Config.CoalesceFillTarget frames are gathered), then decodes
// the whole batch as one concatenated column space through
// pipeline.DeconvolveFramesIntoContext — tiles span frame boundaries, so a
// burst of narrow frames fills full-width tiles and pays one blocked
// kernel call per tile instead of one short call per frame.
//
// Per-frame semantics survive batching: every member keeps its own trace
// tree (queue_wait ends at pickup, a coalesce_wait span covers the gather,
// the first member's tree carries the shared decode span), its own WAL
// completion, deadline handling (expired members are answered
// DEADLINE_EXCEEDED at dispatch; if the batch is cancelled by its earliest
// deadline mid-decode, unexpired members are re-served individually), its
// own RESULT with the batch's decode time apportioned by column share, and
// its own wide event annotated with the batch size.  Hybrid-path frames
// pass through the coalescer un-batched — the modeled FPGA offload already
// amortizes per-frame costs in its own tile path.
package acqserver

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/pipeline"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/trace"
)

// gatherBatch collects a batch seeded with first: more tasks are drained
// from the shard queue until the fill target is reached, the coalesce
// window expires, or the queue closes (drain).  Every gathered task is
// picked up (queue_wait ended) and gets an open coalesce_wait span.  It
// returns the batch, the dispatch trigger, and how long the gather took.
func (s *Server) gatherBatch(sh *shard, first *task) ([]*task, string, time.Duration) {
	start := time.Now()
	join := func(t *task) {
		s.pickup(t)
		t.picked = time.Now()
		t.cspan = t.root.Child("coalesce_wait")
	}
	join(first)
	batch := []*task{first}
	trigger := "fill"
	timer := time.NewTimer(s.cfg.CoalesceWindow)
	defer timer.Stop()
gather:
	for len(batch) < s.cfg.CoalesceFillTarget {
		select {
		case t, ok := <-sh.ch:
			if !ok {
				trigger = "drain"
				break gather
			}
			sh.depth.Set(float64(len(sh.ch)))
			join(t)
			batch = append(batch, t)
		case <-timer.C:
			trigger = "window"
			break gather
		}
	}
	return batch, trigger, time.Since(start)
}

// serveBatch dispatches one gathered batch: coalesce telemetry first, then
// CPU-path members (two or more) through the shared multi-frame decode and
// everything else through the frame-at-a-time path.
func (s *Server) serveBatch(sh *shard, ws *workerState, batch []*task, trigger string, waited time.Duration) {
	s.m.coalesceBatches[trigger].Inc()
	s.m.coalesceFill.Observe(float64(len(batch)))
	s.m.coalesceWait.Observe(float64(waited.Nanoseconds()))
	now := time.Now()
	for _, t := range batch {
		t.cspan.SetInt("batch", int64(len(batch)))
		t.cspan.SetStr("trigger", trigger)
		t.cspan.End()
	}
	var cpu []*task
	for _, t := range batch {
		if t.path == PathCPU && s.processHook == nil {
			cpu = append(cpu, t)
		} else {
			s.serveTask(sh, ws, t)
		}
	}
	if len(cpu) == 1 {
		s.serveTask(sh, ws, cpu[0])
		return
	}
	if len(cpu) == 0 {
		return
	}
	// Deadline triage at dispatch, exactly as the solo path would on
	// pickup: members whose deadline already passed are answered now and
	// never enter the shared decode.
	live := cpu[:0]
	for _, t := range cpu {
		if !t.deadline.IsZero() && !now.Before(t.deadline) {
			s.finishBatchMember(t)
			msg := fmt.Sprintf("deadline expired after %v in queue", t.qwait)
			s.respondError(t.sess, t.reqID, t.traceID, CodeDeadlineExceeded, msg, t.root,
				s.coalesceEvent(t, sh.id, CodeDeadlineExceeded, msg, len(cpu), now, 0))
			continue
		}
		live = append(live, t)
	}
	if len(live) == 1 {
		s.serveTask(sh, ws, live[0])
		return
	}
	if len(live) == 0 {
		return
	}
	s.decodeCoalesced(sh, ws, live, now)
}

// finishBatchMember marks a batch member's WAL completion — the member is
// about to be answered, so a later recovery must not replay it.
func (s *Server) finishBatchMember(t *task) {
	if t.walSeq != 0 && s.wal != nil {
		s.wal.MarkCompleted(t.walSeq)
	}
}

// coalesceEvent is eventFor plus the coalescer's wide-event fields.
func (s *Server) coalesceEvent(t *task, shardID int, code Code, detail string, batchSize int, dispatched time.Time, processNs int64) *flightrec.Event {
	ev := s.eventFor(t, shardID, code, "", detail, t.qwait.Nanoseconds(), processNs)
	if ev != nil {
		ev.CoalesceBatch = batchSize
		ev.CoalesceWaitNs = dispatched.Sub(t.picked).Nanoseconds()
	}
	return ev
}

// decodeCoalesced runs two or more live CPU-path members through one
// shared multi-frame decode under panic isolation and the earliest member
// deadline.  A cancellation mid-decode falls back to serving unexpired
// members individually; any other error answers every member INTERNAL.
func (s *Server) decodeCoalesced(sh *shard, ws *workerState, live []*task, dispatched time.Time) {
	size := len(live)
	defer func() {
		if r := recover(); r != nil {
			s.m.panics["worker"].Inc()
			s.log.Error("worker panic recovered", "shard", sh.id, "batch", size, "panic", fmt.Sprint(r))
			for _, t := range live {
				if ev := s.coalesceEvent(t, sh.id, CodeInternal, fmt.Sprintf("worker panic: %v", r), size, dispatched, 0); ev != nil {
					s.flight.Record(*ev)
				}
			}
			if _, err := s.flight.Dump("panic"); err != nil {
				s.log.Error("flight recorder dump failed", "err", err)
			}
			for _, t := range live {
				s.finishBatchMember(t)
				s.respondError(t.sess, t.reqID, t.traceID, CodeInternal, fmt.Sprintf("worker panic: %v", r), t.root, nil)
			}
		}
	}()

	// Every member gets its own worker span; the shared decode's
	// cpu_decode_batch span hangs off the first member's tree (one trace
	// carries the batch anatomy, the others carry the batch size).
	wspans := make([]trace.Span, size)
	totalCols := 0
	for i, t := range live {
		wspans[i] = t.root.Child("worker")
		wspans[i].SetInt("shard", int64(sh.id))
		wspans[i].SetInt("coalesce_batch", int64(size))
		totalCols += t.frame.TOFBins
	}
	ctx := trace.ContextWithSpan(context.Background(), wspans[0])
	earliest := time.Time{}
	for _, t := range live {
		if !t.deadline.IsZero() && (earliest.IsZero() || t.deadline.Before(earliest)) {
			earliest = t.deadline
		}
	}
	if !earliest.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, earliest)
		defer cancel()
	}

	pairs := make([]pipeline.FramePair, size)
	for i, t := range live {
		pairs[i] = pipeline.FramePair{
			Dst: s.framePool.Get(t.frame.DriftBins, t.frame.TOFBins),
			Src: t.frame,
		}
	}
	putAll := func() {
		for _, p := range pairs {
			s.framePool.Put(p.Dst)
		}
	}
	start := time.Now()
	err := pipeline.DeconvolveFramesIntoContext(ctx, pairs, s.decoder, s.cfg.CPUWorkersPerFrame, s.cfg.Metrics)
	elapsed := time.Since(start)
	for _, w := range wspans {
		w.End()
	}
	if err != nil {
		putAll()
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// The earliest member's deadline cut the batch off.  Expired
			// members are answered; the rest retry alone so one short
			// deadline cannot fail its batch-mates.
			now := time.Now()
			for _, t := range live {
				if !t.deadline.IsZero() && !now.Before(t.deadline) {
					s.finishBatchMember(t)
					msg := fmt.Sprintf("deadline expired after %v in coalesced batch", now.Sub(t.enqueued))
					s.respondError(t.sess, t.reqID, t.traceID, CodeDeadlineExceeded, msg, t.root,
						s.coalesceEvent(t, sh.id, CodeDeadlineExceeded, msg, size, dispatched, elapsed.Nanoseconds()))
					continue
				}
				s.serveTask(sh, ws, t)
			}
			return
		}
		s.log.Error("coalesced batch failed", "shard", sh.id, "batch", size, "err", err)
		for _, t := range live {
			s.finishBatchMember(t)
			s.respondError(t.sess, t.reqID, t.traceID, CodeInternal, err.Error(), t.root,
				s.coalesceEvent(t, sh.id, CodeInternal, err.Error(), size, dispatched, elapsed.Nanoseconds()))
		}
		return
	}

	s.m.coalesceFrames.Add(int64(size))
	for i, t := range live {
		// Apportion the batch's decode time by column share so per-frame
		// ProcessNs stays comparable with the solo path.
		share := elapsed.Nanoseconds() * int64(t.frame.TOFBins) / int64(totalCols)
		s.m.processByPath[t.path].ObserveExemplar(float64(share), t.traceID)
		s.finishBatchMember(t)
		res := &Result{
			Shard:       uint16(sh.id),
			QueueWaitNs: uint64(t.qwait.Nanoseconds()),
			ProcessNs:   uint64(share),
			Peaks:       s.summarize(pairs[i].Dst),
		}
		if t.walNotDurable {
			res.Flags |= ResultFlagNotDurable
		}
		payload, encErr := EncodeResult(res)
		if encErr != nil {
			s.respondError(t.sess, t.reqID, t.traceID, CodeInternal, encErr.Error(), t.root,
				s.coalesceEvent(t, sh.id, CodeInternal, encErr.Error(), size, dispatched, share))
			continue
		}
		s.framePool.Put(t.frame)
		t.frame = nil
		s.respond(t.sess, outMsg{typ: MsgResult, reqID: t.reqID, traceID: t.traceID, payload: payload, root: t.root,
			ev: s.coalesceEvent(t, sh.id, CodeOK, "", size, dispatched, share)}, CodeOK)
	}
	putAll()
}
