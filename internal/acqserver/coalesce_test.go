// coalesce_test.go: the cross-session micro-batching path — batches must
// form across sessions, answer every member correctly, fall back to solo
// serving for lone frames, keep hybrid frames out of shared decodes, and
// honor per-member deadlines at dispatch.
package acqserver

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/frameio"
)

// coalesceConfig funnels everything into one shard with one worker so
// batch formation is deterministic.
func coalesceConfig(window time.Duration, fill int) Config {
	cfg := testConfig()
	cfg.Shards, cfg.WorkersPerShard = 1, 1
	cfg.QueueDepth = 32
	cfg.CoalesceWindow = window
	cfg.CoalesceFillTarget = fill
	return cfg
}

// TestCoalesceBatchesAcrossSessions sends CPU frames from several
// concurrent sessions into one shard and expects at least one multi-frame
// batch, every request answered OK, and the coalesce metric families
// populated.
func TestCoalesceBatchesAcrossSessions(t *testing.T) {
	cfg := coalesceConfig(300*time.Millisecond, 4)
	s, addr := startServer(t, cfg)

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			resp, err := c.Do(context.Background(), testFrame(4+i), frameio.Raw, FrameOptions{Path: PathCPU})
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			if resp.Code != CodeOK || resp.Result == nil {
				errs <- fmt.Errorf("client %d: %v %q", i, resp.Code, resp.Message)
				return
			}
			if resp.Result.ProcessNs == 0 {
				errs <- fmt.Errorf("client %d: zero apportioned process time", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.m.coalesceFrames.Value(); got < 2 {
		t.Errorf("coalesced frames = %d, want >= 2", got)
	}
	var batches int64
	for _, c := range s.m.coalesceBatches {
		batches += c.Value()
	}
	if batches == 0 {
		t.Error("no coalesced batches dispatched")
	}
	if s.m.coalesceFill.Count() != batches {
		t.Errorf("batch-fill observations = %d, batches = %d", s.m.coalesceFill.Count(), batches)
	}
	if s.m.coalesceWait.Count() == 0 {
		t.Error("no coalesce wait observations")
	}
}

// TestCoalesceMatchesSoloResults serves identical frames through a
// coalescing server and a plain one; the RESULT summaries must agree.
func TestCoalesceMatchesSoloResults(t *testing.T) {
	solo, soloAddr := startServer(t, testConfig())
	_ = solo
	co, coAddr := startServer(t, coalesceConfig(200*time.Millisecond, 3))
	_ = co

	f := testFrame(8)
	want, err := dialClient(t, soloAddr).Do(context.Background(), f, frameio.Raw, FrameOptions{Path: PathCPU})
	if err != nil || want.Code != CodeOK {
		t.Fatalf("solo serve: %v / %+v", err, want)
	}

	const clients = 3
	var wg sync.WaitGroup
	results := make([]*Response, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(coAddr, 2*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			resp, err := c.Do(context.Background(), f, frameio.Raw, FrameOptions{Path: PathCPU})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = resp
		}(i)
	}
	wg.Wait()
	for i, resp := range results {
		if resp == nil || resp.Code != CodeOK || resp.Result == nil {
			t.Fatalf("client %d: %+v", i, resp)
		}
		if len(resp.Result.Peaks) != len(want.Result.Peaks) {
			t.Fatalf("client %d: %d peaks, solo found %d", i, len(resp.Result.Peaks), len(want.Result.Peaks))
		}
		for j, p := range resp.Result.Peaks {
			w := want.Result.Peaks[j]
			if p.Centroid != w.Centroid || p.Height != w.Height || p.Area != w.Area {
				t.Fatalf("client %d peak %d: coalesced %+v != solo %+v", i, j, p, w)
			}
		}
	}
}

// TestCoalesceWindowSoloFallback: one lone CPU frame must dispatch on the
// window trigger and be served alone — no multi-frame accounting.
func TestCoalesceWindowSoloFallback(t *testing.T) {
	cfg := coalesceConfig(20*time.Millisecond, 8)
	s, addr := startServer(t, cfg)
	c := dialClient(t, addr)
	resp, err := c.Do(context.Background(), testFrame(6), frameio.Raw, FrameOptions{Path: PathCPU})
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("lone frame: %v / %+v", err, resp)
	}
	if got := s.m.coalesceBatches["window"].Value(); got != 1 {
		t.Errorf("window-triggered batches = %d, want 1", got)
	}
	if got := s.m.coalesceFrames.Value(); got != 0 {
		t.Errorf("coalesced frames = %d, want 0 for a solo dispatch", got)
	}
}

// TestCoalesceHybridUnbatched: hybrid-path frames flow through a
// coalescing server exactly as before — answered OK, never counted as
// coalesced decodes.
func TestCoalesceHybridUnbatched(t *testing.T) {
	cfg := coalesceConfig(20*time.Millisecond, 4)
	s, addr := startServer(t, cfg)
	c := dialClient(t, addr)
	for i := 0; i < 2; i++ {
		resp, err := c.Do(context.Background(), testFrame(5), frameio.Raw, FrameOptions{Path: PathHybrid})
		if err != nil || resp.Code != CodeOK {
			t.Fatalf("hybrid frame %d: %v / %+v", i, err, resp)
		}
	}
	if got := s.m.coalesceFrames.Value(); got != 0 {
		t.Errorf("coalesced frames = %d, want 0 for hybrid traffic", got)
	}
}

// TestCoalesceDeadlineTriage: a member whose deadline lapses during the
// gather window is answered DEADLINE_EXCEEDED at dispatch while its
// batch-mate still completes.
func TestCoalesceDeadlineTriage(t *testing.T) {
	cfg := coalesceConfig(150*time.Millisecond, 3)
	s, addr := startServer(t, cfg)
	_ = s
	c1 := dialClient(t, addr)
	c2 := dialClient(t, addr)

	responses := make(chan *Response, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		resp, err := c1.Do(context.Background(), testFrame(4), frameio.Raw, FrameOptions{Path: PathCPU})
		if err != nil {
			t.Error(err)
			resp = &Response{Code: CodeInternal}
		}
		responses <- resp
	}()
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond) // join the first frame's window
		resp, err := c2.Do(context.Background(), testFrame(4), frameio.Raw,
			FrameOptions{Path: PathCPU, Deadline: 30 * time.Millisecond})
		if err != nil {
			t.Error(err)
			resp = &Response{Code: CodeInternal}
		}
		responses <- resp
	}()
	wg.Wait()
	close(responses)
	counts := map[Code]int{}
	for resp := range responses {
		counts[resp.Code]++
	}
	if counts[CodeOK] != 1 || counts[CodeDeadlineExceeded] != 1 {
		t.Fatalf("response codes %v, want 1 OK + 1 DEADLINE_EXCEEDED", counts)
	}
}

// TestCoalesceConfigValidation pins the new Config guards.
func TestCoalesceConfigValidation(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.CoalesceWindow = -time.Second },
		func(c *Config) { c.CoalesceWindow = time.Millisecond; c.CoalesceFillTarget = 0 },
		func(c *Config) { c.CoalesceWindow = time.Millisecond; c.CoalesceFillTarget = 1 },
		func(c *Config) { c.CoalesceWindow = time.Millisecond; c.CoalesceFillTarget = 257 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	cfg := DefaultConfig()
	cfg.CoalesceWindow = 500 * time.Microsecond
	cfg.CoalesceFillTarget = 8
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid coalesce config rejected: %v", err)
	}
}
