package acqserver

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/frameio"
	"repro/internal/telemetry/flightrec"
)

// TestWideEventsRecorded proves the tentpole join: every completed request
// leaves one wide event carrying the request's trace id, shard, stage
// durations and outcome, and the process histogram's exemplar carries a
// trace id that appears among the recorded events.
func TestWideEventsRecorded(t *testing.T) {
	flight := flightrec.New(flightrec.Config{Size: 64})
	cfg := testConfig()
	cfg.FlightRecorder = flight
	_, addr := startServer(t, cfg)
	c := dialClient(t, addr)

	const n = 8
	for i := 1; i <= n; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		resp, err := c.Do(ctx, testFrame(16), frameio.Raw, FrameOptions{Path: PathCPU, TraceID: uint64(0xA0 + i)})
		cancel()
		if err != nil || resp.Code != CodeOK {
			t.Fatalf("request %d: %v / %+v", i, err, resp)
		}
	}

	waitFor(t, "all events recorded", func() bool { return flight.LastSeq() >= n })
	evs := flight.Snapshot(flightrec.Filter{Outcome: "OK"})
	if len(evs) != n {
		t.Fatalf("%d OK events, want %d", len(evs), n)
	}
	seen := map[string]bool{}
	for _, e := range evs {
		if e.Source != "acqserver" || e.Path != "cpu" {
			t.Fatalf("event %+v: want source acqserver path cpu", e)
		}
		if e.TraceID == "" || len(e.TraceID) != 16 {
			t.Fatalf("event %+v: want a 16-hex trace id", e)
		}
		if e.ProcessNs <= 0 || e.WriteNs <= 0 || e.TotalNs <= 0 {
			t.Fatalf("event %+v: want positive stage durations", e)
		}
		if e.ReqID == 0 || e.Session == 0 || e.Order != 5 {
			t.Fatalf("event %+v: want req/session ids and PRS order 5", e)
		}
		seen[e.TraceID] = true
	}
	if want := flightrec.TraceIDHex(0xA1); !seen[want] {
		t.Fatalf("trace id %s missing from events: %v", want, seen)
	}

	// Exemplar join: the acq_process_ns histogram must retain a trace id
	// that is also present as a wide event — the metrics→events pivot the
	// observability runbook leans on.
	snap := cfg.Metrics.Snapshot()
	var exemplar string
	for _, m := range snap.Metrics {
		if m.Name != "acq_process_ns" {
			continue
		}
		for _, b := range m.Buckets {
			if b.ExemplarTraceID != "" {
				exemplar = b.ExemplarTraceID
			}
		}
	}
	if exemplar == "" {
		t.Fatal("acq_process_ns retained no exemplar")
	}
	if !seen[exemplar] {
		t.Fatalf("exemplar trace id %s not among recorded events %v", exemplar, seen)
	}
}

// TestShedEventsCarryReason pins the single worker on a blocked compute
// hook, fills the depth-1 queue, and asserts the shed requests are
// recorded as wide events with the shed reason attached.
func TestShedEventsCarryReason(t *testing.T) {
	flight := flightrec.New(flightrec.Config{Size: 256})
	cfg := testConfig()
	cfg.FlightRecorder = flight
	cfg.Shards, cfg.QueueDepth, cfg.WorkersPerShard = 1, 1, 1
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	cfg.processHook = func(*task) (*Result, error) {
		started <- struct{}{}
		<-release
		return &Result{}, nil
	}
	s, addr := startServer(t, cfg)
	c := dialClient(t, addr)
	f := testFrame(4)

	responses := make(chan *Response, 4)
	do := func(id uint64) {
		resp, err := c.Do(context.Background(), f, frameio.Raw, FrameOptions{Path: PathHybrid, TraceID: id})
		if err != nil {
			t.Error(err)
			resp = &Response{Code: CodeInternal}
		}
		responses <- resp
	}
	go do(1) // occupies the worker
	<-started
	go do(2) // sits in the queue
	waitFor(t, "second frame to be queued", func() bool {
		return s.m.framesByPath[PathHybrid].Value() == 2
	})
	go do(3) // shed
	go do(4) // shed
	waitFor(t, "two frames to be shed", func() bool {
		return s.m.shedByReason["queue_full"].Value() == 2
	})
	close(release)
	for i := 0; i < 4; i++ {
		<-responses
	}

	shed := flight.Snapshot(flightrec.Filter{Outcome: "RESOURCE_EXHAUSTED"})
	if len(shed) != 2 {
		t.Fatalf("%d shed events, want 2: %+v", len(shed), shed)
	}
	for _, e := range shed {
		if e.ShedReason != "queue_full" || e.TraceID == "" {
			t.Fatalf("shed event %+v: want shed_reason queue_full with a trace id", e)
		}
	}
}

// TestDebugEndpointsDuringDrain hammers /debug/events and /debug/traces
// while traffic is flowing and the server is shutting down — the race
// detector guards the lock-free ring and span rings against torn reads.
func TestDebugEndpointsDuringDrain(t *testing.T) {
	flight := flightrec.New(flightrec.Config{Size: 128})
	cfg := testConfig()
	cfg.FlightRecorder = flight
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()

	stop := make(chan struct{})
	var traffic sync.WaitGroup
	for i := 0; i < 4; i++ {
		traffic.Add(1)
		go func(id int) {
			defer traffic.Done()
			c, err := Dial(ln.Addr().String(), 2*time.Second)
			if err != nil {
				return
			}
			defer c.Close()
			for j := 1; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, err := c.Do(ctx, testFrame(16), frameio.Raw, FrameOptions{Path: PathCPU, TraceID: uint64(id*1000 + j)})
				cancel()
				if err != nil {
					return // drain closed the session; expected
				}
			}
		}(i)
	}

	var scrapers sync.WaitGroup
	eventsHandler := flight.Handler()
	for i := 0; i < 3; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for j := 0; j < 200; j++ {
				rec := httptest.NewRecorder()
				eventsHandler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?outcome=OK&min_ms=0", nil))
				if rec.Code != 200 {
					panic("events scrape failed mid-drain")
				}
				var resp struct {
					Events []flightrec.Event `json:"events"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					panic(err)
				}
				for _, e := range resp.Events {
					if e.Seq == 0 || e.Source == "" {
						panic("torn event observed over /debug/events")
					}
				}
			}
		}()
	}

	waitFor(t, "some traffic recorded", func() bool { return flight.LastSeq() > 8 })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	traffic.Wait()
	scrapers.Wait()

	if flight.LastSeq() == 0 {
		t.Fatal("no events recorded")
	}
}
