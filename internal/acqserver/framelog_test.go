// framelog_test.go: the WAL integration contract — every accepted frame
// is captured byte-for-byte before it is enqueued, acknowledgements carry
// the not-durable flag exactly when the log is not fsyncing, a drain
// closes the log with every frame completion-marked, and crash recovery
// re-enqueues pending records through the same worker pools while
// rejecting records that no longer decode.
package acqserver

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/frameio"
	"repro/internal/framelog"
)

// openWAL opens a frame log for tests in dir with the given policy.
func openWAL(t *testing.T, dir string, policy framelog.FsyncPolicy) *framelog.Log {
	t.Helper()
	cfg := framelog.DefaultConfig(dir)
	cfg.Fsync = policy
	wal, err := framelog.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return wal
}

func TestFrameLogCapturesAcceptedFrames(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.FrameLog = openWAL(t, dir, framelog.FsyncNone)
	s, addr := startServer(t, cfg)
	c := dialClient(t, addr)

	frame := testFrame(48)
	const n = 5
	for i := 0; i < n; i++ {
		resp, err := c.Do(context.Background(), frame, frameio.Raw, FrameOptions{Path: PathCPU})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Code != CodeOK {
			t.Fatalf("frame %d: %v %s", i, resp.Code, resp.Message)
		}
		// FsyncNone acknowledgements must say so.
		if resp.DurabilityError() == nil {
			t.Fatal("un-fsynced ack did not carry the not-durable flag")
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The drained log holds one record per accepted frame, every one
	// completion-marked, and the captured payloads decode back to the
	// submitted frame bytes.
	wal := openWAL(t, dir, framelog.FsyncNone)
	defer wal.Close()
	info := wal.RecoveryInfo()
	if info.Records != n || info.Pending != 0 || info.Watermark != n {
		t.Fatalf("after drain: %+v, want %d records, watermark %d, pending 0", info, n, n)
	}
	r := wal.NewReader(framelog.Start{From: framelog.FromBeginning})
	defer r.Close()
	var rec framelog.Record
	for i := 0; i < n; i++ {
		if err := r.Next(&rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		opts, frameBytes, err := SplitFramePayload(rec.Payload)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if opts.Path != PathCPU {
			t.Fatalf("record %d captured path %v", i, opts.Path)
		}
		got, _, err := frameio.Read(bytes.NewReader(frameBytes))
		if err != nil {
			t.Fatalf("record %d frame: %v", i, err)
		}
		if got.DriftBins != frame.DriftBins || got.TOFBins != frame.TOFBins {
			t.Fatalf("record %d geometry %dx%d", i, got.DriftBins, got.TOFBins)
		}
		for j := range got.Data {
			if got.Data[j] != frame.Data[j] {
				t.Fatalf("record %d cell %d: %g != %g", i, j, got.Data[j], frame.Data[j])
			}
		}
	}
}

func TestFrameLogDurableAckHasNoFlag(t *testing.T) {
	cfg := testConfig()
	cfg.FrameLog = openWAL(t, t.TempDir(), framelog.FsyncAlways)
	_, addr := startServer(t, cfg)
	c := dialClient(t, addr)
	resp, err := c.Do(context.Background(), testFrame(32), frameio.Raw, FrameOptions{Path: PathCPU})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeOK {
		t.Fatalf("%v %s", resp.Code, resp.Message)
	}
	if err := resp.DurabilityError(); err != nil {
		t.Fatalf("fsync-always ack flagged not-durable: %v", err)
	}
}

func TestFrameLogRecoveryReplaysPending(t *testing.T) {
	dir := t.TempDir()

	// Simulate a crashed daemon: a log full of accepted frames, none
	// completion-marked, one of which no longer decodes.
	wal := openWAL(t, dir, framelog.FsyncNone)
	good := framePayload(t, testFrame(40), FrameOptions{Path: PathCPU})
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := wal.Append(uint64(0xabc0+i), good); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wal.Append(0xdead, []byte("too short")); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig()
	wal = openWAL(t, dir, framelog.FsyncNone)
	if got := wal.RecoveryInfo().Pending; got != n+1 {
		t.Fatalf("pending = %d, want %d", got, n+1)
	}
	cfg.FrameLog = wal
	s, _ := startServer(t, cfg)

	enqueued, err := s.RecoverFrames(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if enqueued != n {
		t.Fatalf("re-enqueued %d frames, want %d", enqueued, n)
	}
	waitFor(t, "recovered frames to process", func() bool {
		return s.m.recovered["ok"].Value() == n
	})
	if got := s.m.recovered["error"].Value(); got != 1 {
		t.Fatalf("recovered error count = %d, want 1 (the undecodable record)", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Nothing left to replay after the recovered run drains.
	wal = openWAL(t, dir, framelog.FsyncNone)
	defer wal.Close()
	if info := wal.RecoveryInfo(); info.Pending != 0 {
		t.Fatalf("second recovery still pending %d: %+v", info.Pending, info)
	}
}

func TestFrameLogShedFramesAreCompleted(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.FrameLog = openWAL(t, dir, framelog.FsyncNone)
	s, addr := startServer(t, cfg)
	c := dialClient(t, addr)

	// Drain the server, then submit: the frame is logged (append precedes
	// admission) but shed, so its completion mark must land — a shed frame
	// was answered and must never replay.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	waitFor(t, "server to start draining", func() bool { return s.draining.Load() })
	resp, err := c.Do(context.Background(), testFrame(32), frameio.Raw, FrameOptions{Path: PathCPU})
	if err == nil && resp.Code == CodeOK {
		t.Fatalf("draining server accepted a frame")
	}

	waitFor(t, "shutdown to finish", func() bool {
		select {
		case <-s.shutdownc:
			return true
		default:
			return false
		}
	})
	wal := openWAL(t, dir, framelog.FsyncNone)
	defer wal.Close()
	if info := wal.RecoveryInfo(); info.Pending != 0 {
		t.Fatalf("shed frame left pending replay: %+v", info)
	}
}
