// recover.go: crash-recovery backfill from the frame log.  After a
// restart, every record past the last-completed watermark that carries no
// completion mark is decoded and re-enqueued exactly like a live frame —
// same shard queues, same workers, same compute paths — except the task
// has no session: nothing is written to the wire, the outcome is counted
// under acq_recovered_frames_total, and the record's completion is marked
// so the next restart does not replay it again.  Replay is at-least-once
// by design: completion marks are buffered, so a crash can re-process a
// handful of frames whose marks were lost, never the other way around.
package acqserver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/frameio"
	"repro/internal/framelog"
)

// completeWAL marks a logged frame completed (no-op without a frame log
// or for unlogged frames).  Shed paths call it so a rejected frame is not
// replayed after a restart — the client was answered.
func (s *Server) completeWAL(seq uint64) {
	if seq != 0 && s.wal != nil {
		s.wal.MarkCompleted(seq)
	}
}

// RecoverFrames re-enqueues every uncompleted frame-log record found by
// the log's crash recovery, blocking until all of them are queued (or ctx
// expires / the daemon starts draining).  It returns the number of frames
// re-enqueued.  Call it after the server is built, concurrently with
// Serve — recovered frames share the worker pools with live traffic.
func (s *Server) RecoverFrames(ctx context.Context) (int, error) {
	if s.wal == nil {
		return 0, nil
	}
	info := s.wal.RecoveryInfo()
	if info.Pending == 0 {
		return 0, nil
	}
	r := s.wal.NewReader(framelog.Start{From: framelog.FromSeq, Seq: info.Watermark + 1})
	defer r.Close()
	enqueued := 0
	var rec framelog.Record
	for {
		err := r.Next(&rec)
		if errors.Is(err, io.EOF) || (err == nil && rec.Seq > info.LastSeq) {
			// Past the recovery horizon: everything newer is live traffic.
			return enqueued, nil
		}
		if err != nil {
			return enqueued, err
		}
		if s.wal.Completed(rec.Seq) {
			continue
		}
		ok, err := s.enqueueRecovered(ctx, rec.Seq, rec.SID, rec.Payload)
		if err != nil {
			return enqueued, err
		}
		if ok {
			enqueued++
		}
	}
}

// enqueueRecovered turns one frame-log record back into a task and feeds
// it to its shard, retrying while queues are full.  A record that no
// longer decodes (e.g. the server was restarted with a different order)
// is counted as a recovered error and marked completed so it never
// replays again.  Returns whether the record was enqueued.
func (s *Server) enqueueRecovered(ctx context.Context, seq, sid uint64, payload []byte) (bool, error) {
	fail := func(msg string) {
		s.m.recovered["error"].Inc()
		s.completeWAL(seq)
		s.log.Warn("recovered frame rejected", "wal_seq", seq, "reason", msg)
	}
	if len(payload) < frameOptsSize {
		fail("payload shorter than frame options")
		return false, nil
	}
	opts, err := decodeFrameOpts(payload[:frameOptsSize])
	if err != nil {
		fail(err.Error())
		return false, nil
	}
	if opts.Path != PathHybrid && opts.Path != PathCPU {
		fail(fmt.Sprintf("unknown path %v", opts.Path))
		return false, nil
	}
	frame, _, err := frameio.ReadLimited(newBytesReader(payload[frameOptsSize:]), s.limits)
	if err != nil {
		fail(err.Error())
		return false, nil
	}
	if frame.DriftBins != s.seqLen {
		fail(fmt.Sprintf("frame has %d drift bins, server order %d needs %d",
			frame.DriftBins, s.cfg.Order, s.seqLen))
		return false, nil
	}
	t := &task{
		reqID:    seq,
		traceID:  sid,
		frame:    frame,
		path:     opts.Path,
		enqueued: time.Now(),
		walSeq:   seq,
		// Recovered frames never carry a deadline: the original one (if
		// any) predates the crash and would only spuriously expire work
		// the log promised to finish.
	}
	sh := s.shards[int(seq)%len(s.shards)]
	for {
		switch err := sh.enqueue(t, s.cfg.QueueDepth); err {
		case nil:
			s.m.framesByPath[opts.Path].Inc()
			return true, nil
		case errQueueFull:
			select {
			case <-ctx.Done():
				return false, ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
		case errDraining:
			return false, errDraining
		default:
			return false, err
		}
	}
}

// newBytesReader adapts a byte slice for streaming decode without pulling
// in bytes.Reader's Seeker surface.
func newBytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

// sliceReader is a minimal forward-only reader over a slice.
type sliceReader struct{ b []byte }

// Read copies out of the remaining slice.
func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
