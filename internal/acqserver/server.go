// Package acqserver is the frame-acquisition service: the network layer
// that turns the repository's in-process hybrid pipeline into a daemon
// serving many concurrent clients.  It speaks the IMSP/1 length-prefixed
// protocol over TCP (wire.go); per-client sessions decode frameio-encoded
// frames straight off the socket and enqueue them into N sharded, bounded
// work queues feeding worker pools that run the modeled FPGA offload (a
// per-worker hybrid.Offloader) or the CPU software pipeline
// (pipeline.DeconvolveFrameIntoContext), selectable per request.  Decoded
// output frames come from a sync.Pool-backed instrument.FramePool and are
// recycled once the result summary is encoded, so the steady-state compute
// path allocates no per-column and no per-frame output buffers (see
// docs/PERFORMANCE.md).
//
// The serving stack is explicit about its unhappy paths: full shard queues
// shed load with RESOURCE_EXHAUSTED instead of blocking, per-request
// deadlines cancel in-flight work through context propagation, slow
// readers are cut off by write timeouts, idle or half-dead connections by
// read timeouts, a recovered panic answers INTERNAL and never takes the
// daemon down, and SIGTERM triggers a graceful drain that completes queued
// frames before closing sessions.  Every stage is wired into
// internal/telemetry under the acq_* metric families (docs/OBSERVABILITY.md).
package acqserver

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frameio"
	"repro/internal/framelog"
	"repro/internal/hadamard"
	"repro/internal/hybrid"
	"repro/internal/instrument"
	"repro/internal/peaks"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/trace"
)

// Config tunes the daemon.  The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Shards is the number of independent bounded work queues.  A session
	// is pinned to shard (session id mod Shards), so one hot client
	// cannot starve every queue.
	Shards int
	// QueueDepth bounds each shard's queue; an enqueue against a full
	// queue is shed with RESOURCE_EXHAUSTED.  Queued frames are already
	// decoded, so worst-case queue memory is
	// Shards × QueueDepth × (8 × drift bins × TOF bins) bytes.
	QueueDepth int
	// WorkersPerShard is each shard's worker-pool size.
	WorkersPerShard int
	// Order is the m-sequence order served; frames must arrive with
	// drift bins = 2^Order − 1 or are rejected with INVALID_ARGUMENT.
	Order int
	// MaxTOFBins caps the m/z axis of accepted frames.
	MaxTOFBins int
	// MaxPayloadBytes caps one message payload on the wire.
	MaxPayloadBytes uint32
	// ReadIdleTimeout bounds the wait for the next message header and the
	// read of one message body; an idle or half-dead connection is closed
	// when it expires.
	ReadIdleTimeout time.Duration
	// WriteTimeout bounds one response write; a slow reader whose socket
	// stays full past it has its session torn down.
	WriteTimeout time.Duration
	// SessionBuffer bounds each session's pending-response queue.
	SessionBuffer int
	// CPUWorkersPerFrame is the column parallelism of the CPU path; keep
	// it small — shard workers already run concurrently.
	CPUWorkersPerFrame int
	// CoalesceWindow enables server-side micro-batching when positive: a
	// worker that picks up a CPU-path frame waits up to this long for
	// same-shard frames from other sessions, then decodes the whole batch
	// as one concatenated column space (tiles spanning frame boundaries,
	// one blocked-kernel call per tile).  Zero disables coalescing and
	// preserves the frame-at-a-time worker loop.
	CoalesceWindow time.Duration
	// CoalesceFillTarget dispatches a gathering batch early once it holds
	// this many frames (the window is the latency bound, the fill target
	// the throughput bound).  Must be >= 2 when CoalesceWindow is set.
	CoalesceFillTarget int
	// MinSNR is the peak-detection threshold for result summaries.
	MinSNR float64
	// MaxPeaks caps the peak list carried in one RESULT (≤ 64).
	MaxPeaks int
	// Metrics, when non-nil, receives the acq_* families.
	Metrics *telemetry.Registry
	// DegradedMode, when non-nil, is polled on every enqueue; while it
	// reports true the server tightens load shedding by halving each
	// shard's effective queue depth, trading throughput for latency so an
	// already-burning error budget recovers instead of compounding.  The
	// health evaluator's Status is the intended source (see
	// internal/telemetry/health).  Frames shed this way are counted under
	// acq_shed_total{reason="degraded"}.
	DegradedMode func() bool
	// Trace, when non-nil, records a span tree per frame (socket read,
	// queue wait, worker, modeled FPGA stages, response write).  Nil
	// disables tracing at nil-check cost per span site.
	Trace *trace.Tracer
	// Logger, when non-nil, receives structured session/frame events with
	// trace and request ids attached.  Nil discards them.
	Logger *slog.Logger
	// Offload configures the modeled FPGA backend.  Its Order and Metrics
	// are overridden by the fields above.
	Offload hybrid.OffloadConfig
	// FrameLog, when non-nil, is the durable write-ahead log: every
	// accepted frame's verbatim payload is appended before the frame is
	// enqueued, completions are marked as workers finish, and Shutdown
	// seals the log after the drain.  When the log's fsync policy is not
	// "always", results carry ResultFlagNotDurable.  The server does not
	// own the log's lifecycle beyond Shutdown's close.
	FrameLog *framelog.Log
	// FlightRecorder, when non-nil, receives one wide event per answered
	// frame — recorded at response-write time with the full request
	// anatomy (shard, queue wait, decode time, write time, WAL sequence,
	// outcome, shed reason) — and a black-box dump request on every
	// recovered panic.  Nil disables recording at nil-check cost.
	FlightRecorder *flightrec.Recorder

	// processHook, when non-nil, replaces the compute step — a test seam
	// for deterministic shedding, drain and panic-isolation tests.  It must
	// be set before NewServer so the worker pools observe it.
	processHook func(*task) (*Result, error)
}

// DefaultConfig returns production-shaped defaults: 4 shards × depth 16,
// 2 workers each, the paper's order-9 sequence, 16 MiB payload bound and
// second-scale timeouts.
func DefaultConfig() Config {
	return Config{
		Shards:             4,
		QueueDepth:         16,
		WorkersPerShard:    2,
		Order:              9,
		MaxTOFBins:         4096,
		MaxPayloadBytes:    16 << 20,
		ReadIdleTimeout:    30 * time.Second,
		WriteTimeout:       10 * time.Second,
		SessionBuffer:      32,
		CPUWorkersPerFrame: 2,
		MinSNR:             5,
		MaxPeaks:           16,
		CoalesceFillTarget: 8,
		Offload:            hybrid.DefaultOffloadConfig(),
	}
}

// Validate reports the first unusable setting.
func (c Config) Validate() error {
	if c.Shards < 1 || c.QueueDepth < 1 || c.WorkersPerShard < 1 {
		return fmt.Errorf("acqserver: shards/depth/workers must be positive (%d/%d/%d)",
			c.Shards, c.QueueDepth, c.WorkersPerShard)
	}
	if c.Order < 2 || c.Order > 20 {
		return fmt.Errorf("acqserver: order %d out of [2,20]", c.Order)
	}
	if c.MaxTOFBins < 1 {
		return fmt.Errorf("acqserver: max TOF bins %d must be positive", c.MaxTOFBins)
	}
	if c.MaxPayloadBytes < 64 {
		return fmt.Errorf("acqserver: max payload %d bytes is too small to carry a frame", c.MaxPayloadBytes)
	}
	if c.ReadIdleTimeout <= 0 || c.WriteTimeout <= 0 {
		return fmt.Errorf("acqserver: timeouts must be positive")
	}
	if c.SessionBuffer < 1 {
		return fmt.Errorf("acqserver: session buffer %d must be positive", c.SessionBuffer)
	}
	if c.CoalesceWindow < 0 {
		return fmt.Errorf("acqserver: coalesce window %v must not be negative", c.CoalesceWindow)
	}
	if c.CoalesceWindow > 0 && (c.CoalesceFillTarget < 2 || c.CoalesceFillTarget > 256) {
		return fmt.Errorf("acqserver: coalesce fill target %d out of [2,256]", c.CoalesceFillTarget)
	}
	if c.MinSNR <= 0 {
		return fmt.Errorf("acqserver: min SNR %g must be positive", c.MinSNR)
	}
	if c.MaxPeaks < 0 || c.MaxPeaks > maxResultPeaks {
		return fmt.Errorf("acqserver: max peaks %d out of [0,%d]", c.MaxPeaks, maxResultPeaks)
	}
	return nil
}

// task is one accepted frame waiting for (or undergoing) deconvolution.
// A nil sess marks a frame re-enqueued from the frame log by crash
// recovery: it has no client to answer, only a completion to mark.
type task struct {
	sess     *session
	reqID    uint64
	traceID  uint64
	frame    *instrument.Frame
	path     Path
	deadline time.Time // zero = none
	enqueued time.Time
	root     trace.Span // frame root; ended by the write loop
	qspan    trace.Span // queue_wait; ended when a worker picks the task up

	// walSeq is the frame's frame-log sequence number (0 = not logged);
	// walNotDurable records that the append was acknowledged before fsync.
	walSeq        uint64
	walNotDurable bool

	// qwait is the measured queue wait, set when a worker picks the task
	// up (pickup); cspan and picked are the coalescer's per-member
	// bookkeeping — the coalesce_wait span and when the member joined its
	// gathering batch.  All three are zero outside the coalesced path
	// except qwait, which every picked task carries.
	qwait  time.Duration
	cspan  trace.Span
	picked time.Time
}

// discardHandler is a no-op slog.Handler for a nil Config.Logger (the
// stdlib gained slog.DiscardHandler after this module's language level).
type discardHandler struct{}

// Enabled reports false for every level.
func (discardHandler) Enabled(context.Context, slog.Level) bool { return false }

// Handle drops the record.
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }

// WithAttrs returns the handler unchanged.
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler { return d }

// WithGroup returns the handler unchanged.
func (d discardHandler) WithGroup(string) slog.Handler { return d }

// errQueueFull, errDraining and errDegraded discriminate enqueue
// rejections.
var (
	errQueueFull = errors.New("acqserver: shard queue full")
	errDraining  = errors.New("acqserver: draining")
	errDegraded  = errors.New("acqserver: degraded, shedding early")
)

// shard is one bounded work queue plus its depth gauge.
type shard struct {
	id     int
	mu     sync.RWMutex
	closed bool
	ch     chan *task
	depth  *telemetry.Gauge
}

// enqueue hands a task to the shard without blocking: a full queue is an
// explicit rejection, never a stalled reader.  maxDepth is the effective
// occupancy bound for this enqueue — when health degrades it is lowered
// below the channel's capacity, and an enqueue that would exceed it is
// rejected with errDegraded even though buffer space remains.  The
// occupancy check is advisory (len on a channel races with concurrent
// enqueues), which is fine: shedding is approximate by design.
func (sh *shard) enqueue(t *task, maxDepth int) error {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.closed {
		return errDraining
	}
	if maxDepth < cap(sh.ch) && len(sh.ch) >= maxDepth {
		return errDegraded
	}
	select {
	case sh.ch <- t:
		sh.depth.Set(float64(len(sh.ch)))
		return nil
	default:
		return errQueueFull
	}
}

// close marks the shard drained-and-closed; subsequent enqueues fail with
// errDraining while workers finish whatever is already queued.
func (sh *shard) close() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.closed {
		sh.closed = true
		close(sh.ch)
	}
}

// serverMetrics bundles the acq_* telemetry handles, resolved once at
// construction (all nil on a nil registry — free to update).
type serverMetrics struct {
	sessionsTotal  *telemetry.Counter
	sessionsActive *telemetry.Gauge
	framesByPath   map[Path]*telemetry.Counter
	responses      map[Code]*telemetry.Counter
	shedByReason   map[string]*telemetry.Counter
	queueWait      *telemetry.Histogram
	processByPath  map[Path]*telemetry.Histogram
	readFrame      *telemetry.Histogram
	write          *telemetry.Histogram
	bytesIn        *telemetry.Counter
	bytesOut       *telemetry.Counter
	panics         map[string]*telemetry.Counter
	protocolErrs   *telemetry.Counter
	recovered      map[string]*telemetry.Counter

	coalesceBatches map[string]*telemetry.Counter
	coalesceFrames  *telemetry.Counter
	coalesceFill    *telemetry.Histogram
	coalesceWait    *telemetry.Histogram
}

func newServerMetrics(reg *telemetry.Registry) serverMetrics {
	m := serverMetrics{
		sessionsTotal:  reg.Counter("acq_sessions_total", "client sessions accepted by the daemon"),
		sessionsActive: reg.Gauge("acq_sessions_active", "currently open client sessions"),
		queueWait:      reg.Histogram("acq_queue_wait_ns", "time a frame sat in its shard queue, nanoseconds").EnableExemplars(),
		readFrame:      reg.Histogram("acq_read_frame_ns", "time to stream-decode one frame off the socket, nanoseconds").EnableExemplars(),
		write:          reg.Histogram("acq_write_ns", "time to write one response message, nanoseconds").EnableExemplars(),
		bytesIn:        reg.Counter("acq_bytes_in_total", "wire bytes received (headers + payloads)"),
		bytesOut:       reg.Counter("acq_bytes_out_total", "wire bytes sent (headers + payloads)"),
		protocolErrs:   reg.Counter("acq_protocol_errors_total", "malformed messages and framing violations"),
		framesByPath:   map[Path]*telemetry.Counter{},
		responses:      map[Code]*telemetry.Counter{},
		shedByReason:   map[string]*telemetry.Counter{},
		processByPath:  map[Path]*telemetry.Histogram{},
		panics:         map[string]*telemetry.Counter{},
	}
	for _, p := range []Path{PathHybrid, PathCPU} {
		l := telemetry.L("path", p.String())
		m.framesByPath[p] = reg.Counter("acq_frames_total", "frames accepted for processing per compute path", l)
		m.processByPath[p] = reg.Histogram("acq_process_ns", "deconvolution wall time per compute path, nanoseconds", l).EnableExemplars()
	}
	for _, c := range []Code{CodeOK, CodeInvalidArgument, CodeResourceExhausted,
		CodeDeadlineExceeded, CodeUnavailable, CodeInternal, CodeTooLarge} {
		m.responses[c] = reg.Counter("acq_responses_total", "responses sent per status code",
			telemetry.L("code", c.String()))
	}
	for _, r := range []string{"queue_full", "draining", "degraded"} {
		m.shedByReason[r] = reg.Counter("acq_shed_total", "frames rejected by load shedding, per reason",
			telemetry.L("reason", r))
	}
	for _, w := range []string{"session", "worker"} {
		m.panics[w] = reg.Counter("acq_panics_total", "panics recovered without killing the daemon, per site",
			telemetry.L("where", w))
	}
	m.recovered = map[string]*telemetry.Counter{}
	for _, o := range []string{"ok", "error"} {
		m.recovered[o] = reg.Counter("acq_recovered_frames_total",
			"frames replayed from the frame log after a restart, per outcome",
			telemetry.L("outcome", o))
	}
	m.coalesceBatches = map[string]*telemetry.Counter{}
	for _, tr := range []string{"fill", "window", "drain"} {
		m.coalesceBatches[tr] = reg.Counter("acq_coalesce_batches_total",
			"coalesced batches dispatched, per dispatch trigger",
			telemetry.L("trigger", tr))
	}
	m.coalesceFrames = reg.Counter("acq_coalesce_frames_total",
		"frames decoded through a multi-frame coalesced batch")
	m.coalesceFill = reg.Histogram("acq_coalesce_batch_fill",
		"frames in one coalesced batch at dispatch")
	m.coalesceWait = reg.Histogram("acq_coalesce_wait_ns",
		"time a dispatched batch spent gathering batch-mates, nanoseconds")
	return m
}

// Server is the acquisition daemon: an accept loop, per-session read and
// write goroutines, and sharded worker pools.
type Server struct {
	cfg     Config
	offload hybrid.OffloadConfig
	seqLen  int
	limits  frameio.Limits
	decoder pipeline.DecoderFactory
	m       serverMetrics
	tracer  *trace.Tracer
	log     *slog.Logger

	shards    []*shard
	workerWG  sync.WaitGroup
	framePool instrument.FramePool

	ln       net.Listener
	lnMu     sync.Mutex
	draining atomic.Bool
	degraded func() bool
	wal      *framelog.Log
	flight   *flightrec.Recorder

	sessMu    sync.Mutex
	sessions  map[*session]struct{}
	sessWG    sync.WaitGroup
	nextSess  atomic.Uint64
	shutdownc chan struct{}

	// processHook mirrors Config.processHook (test seam).
	processHook func(*task) (*Result, error)
}

// NewServer validates the config and builds the daemon (shards, workers
// and telemetry handles); call Serve or ListenAndServe to start it.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CPUWorkersPerFrame < 1 {
		cfg.CPUWorkersPerFrame = 1
	}
	seqLen := 1<<cfg.Order - 1
	offload := cfg.Offload
	offload.Order = cfg.Order
	offload.Metrics = cfg.Metrics
	if err := offload.Validate(); err != nil {
		return nil, err
	}
	order := cfg.Order
	s := &Server{
		cfg:     cfg,
		offload: offload,
		seqLen:  seqLen,
		limits: frameio.Limits{
			MaxHeaderBytes: 4096,
			MaxDriftBins:   uint32(seqLen),
			MaxTOFBins:     uint32(cfg.MaxTOFBins),
			MaxCells:       uint64(seqLen) * uint64(cfg.MaxTOFBins),
		},
		decoder: func() (hadamard.Decoder, error) {
			d, err := hadamard.NewFHTDecoder(order)
			if err != nil {
				return nil, err
			}
			return d, nil
		},
		m:           newServerMetrics(cfg.Metrics),
		tracer:      cfg.Trace,
		log:         cfg.Logger,
		sessions:    map[*session]struct{}{},
		shutdownc:   make(chan struct{}),
		degraded:    cfg.DegradedMode,
		wal:         cfg.FrameLog,
		flight:      cfg.FlightRecorder,
		processHook: cfg.processHook,
	}
	if s.log == nil {
		s.log = slog.New(discardHandler{})
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			id: i,
			ch: make(chan *task, cfg.QueueDepth),
			depth: cfg.Metrics.Gauge("acq_queue_depth", "instantaneous shard queue occupancy, frames",
				telemetry.L("shard", fmt.Sprintf("%d", i))),
		}
		s.shards = append(s.shards, sh)
		for w := 0; w < cfg.WorkersPerShard; w++ {
			s.workerWG.Add(1)
			go s.workerLoop(sh)
		}
	}
	return s, nil
}

// effectiveDepth is the shard-queue occupancy bound for the next enqueue:
// the configured depth normally, half of it (rounded up) while
// Config.DegradedMode reports true.
func (s *Server) effectiveDepth() int {
	if s.degraded != nil && s.degraded() {
		return (s.cfg.QueueDepth + 1) / 2
	}
	return s.cfg.QueueDepth
}

// Draining reports whether Shutdown has begun.  The daemon's readiness
// endpoint consults it so load balancers stop routing as soon as the
// drain starts, before in-flight work finishes.
func (s *Server) Draining() bool { return s.draining.Load() }

// Addr returns the bound listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe binds addr and runs Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it.  It always
// returns a non-nil error; after a Shutdown-initiated close the error is
// net.ErrClosed (wrapped), which callers should treat as clean exit.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if s.draining.Load() {
			_ = conn.Close()
			continue
		}
		s.startSession(conn)
	}
}

// startSession registers conn and starts its read and write loops.
func (s *Server) startSession(conn net.Conn) *session {
	sess := s.newSession(conn)
	s.sessWG.Add(2)
	go sess.readLoop()
	go sess.writeLoop()
	return sess
}

// Shutdown drains the daemon: stop accepting, reject new frames with
// UNAVAILABLE, let workers complete every queued frame, flush each
// session's pending responses, then close the connections.  It returns nil
// on a complete drain, or ctx.Err() after force-closing everything when
// the context expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		<-s.shutdownc // concurrent call: wait for the first to finish
		return nil
	}
	s.lnMu.Lock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	s.lnMu.Unlock()
	defer close(s.shutdownc)

	for _, sh := range s.shards {
		sh.close()
	}
	workersDone := make(chan struct{})
	go func() { s.workerWG.Wait(); close(workersDone) }()
	select {
	case <-workersDone:
	case <-ctx.Done():
		s.forceCloseSessions()
		_ = s.closeWAL()
		return ctx.Err()
	}

	s.sessMu.Lock()
	for sess := range s.sessions {
		sess.startDrain()
	}
	s.sessMu.Unlock()

	sessDone := make(chan struct{})
	go func() { s.sessWG.Wait(); close(sessDone) }()
	select {
	case <-sessDone:
		return s.closeWAL()
	case <-ctx.Done():
		s.forceCloseSessions()
		_ = s.closeWAL()
		return ctx.Err()
	}
}

// closeWAL flushes completion marks and seals the frame log; the drain is
// not reported clean until the log is safely on disk.
func (s *Server) closeWAL() error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Close(); err != nil {
		s.log.Error("framelog close failed", "err", err)
		return err
	}
	return nil
}

func (s *Server) forceCloseSessions() {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for sess := range s.sessions {
		sess.teardown()
	}
}

// workerState is the per-worker compute machinery that survives across
// tasks: the lazily-built hybrid offloader (persistent FHT core plus
// column scratch).  Workers never share it, so no locking is needed.
type workerState struct {
	off *hybrid.Offloader
}

// offloader returns the worker's hybrid engine, building it on first use.
func (ws *workerState) offloader(c hybrid.OffloadConfig) (*hybrid.Offloader, error) {
	if ws.off == nil {
		o, err := hybrid.NewOffloader(c)
		if err != nil {
			return nil, err
		}
		ws.off = o
	}
	return ws.off, nil
}

// workerLoop drains one shard until its queue is closed, answering each
// task with a RESULT or a typed ERROR.  The whole loop runs under pprof
// labels (stage=worker, shard=N), so every sample a continuous CPU
// profile catches in the compute path is attributable to its shard —
// cmd/profiledump slices on exactly these labels.
func (s *Server) workerLoop(sh *shard) {
	defer s.workerWG.Done()
	ws := &workerState{}
	coalesce := s.cfg.CoalesceWindow > 0
	pprof.Do(context.Background(), pprof.Labels("stage", "worker", "shard", strconv.Itoa(sh.id)), func(context.Context) {
		for t := range sh.ch {
			sh.depth.Set(float64(len(sh.ch)))
			if coalesce {
				batch, trigger, waited := s.gatherBatch(sh, t)
				s.serveBatch(sh, ws, batch, trigger, waited)
			} else {
				s.pickup(t)
				s.serveTask(sh, ws, t)
			}
		}
	})
}

// pickup marks a task as claimed by a worker: the queue_wait span ends and
// the measured wait is recorded on the task for every later consumer (the
// RESULT's QueueWaitNs, the wide event, the queue-wait histogram).
func (s *Server) pickup(t *task) {
	t.qspan.End()
	t.qwait = time.Since(t.enqueued)
	s.m.queueWait.ObserveExemplar(float64(t.qwait.Nanoseconds()), t.traceID)
}

// eventFor seeds the wide event for one answered frame: everything known
// before the response write (the write loop fills WriteNs and the recorder
// derives TotalNs from Start).  Nil when no recorder is wired — callers
// pass it through unconditionally.
func (s *Server) eventFor(t *task, shardID int, code Code, shedReason, detail string, queueWaitNs, processNs int64) *flightrec.Event {
	if s.flight == nil {
		return nil
	}
	ev := &flightrec.Event{
		Source:      "acqserver",
		TraceID:     flightrec.TraceIDHex(t.traceID),
		ReqID:       t.reqID,
		Order:       s.cfg.Order,
		Shard:       shardID,
		Path:        t.path.String(),
		QueueWaitNs: queueWaitNs,
		ProcessNs:   processNs,
		WALSeq:      t.walSeq,
		Outcome:     code.String(),
		ShedReason:  shedReason,
		Detail:      detail,
		Start:       t.enqueued,
	}
	if t.sess != nil {
		ev.Session = t.sess.id
	}
	return ev
}

// serveTask runs one picked-up task (see pickup) with panic isolation: a
// panicking compute path answers INTERNAL, the flight recorder keeps the
// event and dumps a black box, and the worker lives on.
func (s *Server) serveTask(sh *shard, ws *workerState, t *task) {
	defer func() {
		if r := recover(); r != nil {
			s.m.panics["worker"].Inc()
			s.log.Error("worker panic recovered", "shard", sh.id, "req_id", t.reqID, "trace_id", t.traceID, "panic", fmt.Sprint(r))
			// Record the panicking frame's event directly (not at write
			// time) so the black box written next includes it.
			if ev := s.eventFor(t, sh.id, CodeInternal, "", fmt.Sprintf("worker panic: %v", r), 0, 0); ev != nil {
				s.flight.Record(*ev)
			}
			if _, err := s.flight.Dump("panic"); err != nil {
				s.log.Error("flight recorder dump failed", "err", err)
			}
			s.respondError(t.sess, t.reqID, t.traceID, CodeInternal, fmt.Sprintf("worker panic: %v", r), t.root, nil)
		}
	}()
	if t.walSeq != 0 && s.wal != nil {
		// The frame counts as processed once a response (success or typed
		// error) is owed to the client; a later recovery must not replay it.
		defer s.wal.MarkCompleted(t.walSeq)
	}
	wait := t.qwait
	wspan := t.root.Child("worker")
	wspan.SetInt("shard", int64(sh.id))

	ctx := trace.ContextWithSpan(context.Background(), wspan)
	if !t.deadline.IsZero() {
		if !time.Now().Before(t.deadline) {
			wspan.End()
			msg := fmt.Sprintf("deadline expired after %v in queue", wait)
			s.respondError(t.sess, t.reqID, t.traceID, CodeDeadlineExceeded, msg, t.root,
				s.eventFor(t, sh.id, CodeDeadlineExceeded, "", msg, wait.Nanoseconds(), 0))
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, t.deadline)
		defer cancel()
	}

	start := time.Now()
	res, err := s.compute(ctx, ws, t)
	elapsed := time.Since(start)
	s.m.processByPath[t.path].ObserveExemplar(float64(elapsed.Nanoseconds()), t.traceID)
	wspan.End()
	if err != nil {
		code := CodeInternal
		if errors.Is(err, context.DeadlineExceeded) {
			code = CodeDeadlineExceeded
		} else if errors.Is(err, context.Canceled) {
			code = CodeUnavailable
		}
		if code == CodeInternal {
			s.log.Error("frame failed", "shard", sh.id, "req_id", t.reqID, "trace_id", t.traceID, "err", err)
		}
		s.respondError(t.sess, t.reqID, t.traceID, code, err.Error(), t.root,
			s.eventFor(t, sh.id, code, "", err.Error(), wait.Nanoseconds(), elapsed.Nanoseconds()))
		return
	}
	res.Shard = uint16(sh.id)
	res.QueueWaitNs = uint64(wait.Nanoseconds())
	res.ProcessNs = uint64(elapsed.Nanoseconds())
	if t.walNotDurable {
		res.Flags |= ResultFlagNotDurable
	}
	payload, err := EncodeResult(res)
	if err != nil {
		s.respondError(t.sess, t.reqID, t.traceID, CodeInternal, err.Error(), t.root,
			s.eventFor(t, sh.id, CodeInternal, "", err.Error(), wait.Nanoseconds(), elapsed.Nanoseconds()))
		return
	}
	s.respond(t.sess, outMsg{typ: MsgResult, reqID: t.reqID, traceID: t.traceID, payload: payload, root: t.root,
		ev: s.eventFor(t, sh.id, CodeOK, "", "", wait.Nanoseconds(), elapsed.Nanoseconds())}, CodeOK)
}

// compute runs the selected backend and summarizes the deconvolved frame.
// Output frames come from the server's frame pool and go back to it once
// the summary (which copies everything it keeps) is built; the input frame
// is recycled into the same pool, since frames are interchangeable by
// backing capacity.
func (s *Server) compute(ctx context.Context, ws *workerState, t *task) (*Result, error) {
	if s.processHook != nil {
		return s.processHook(t)
	}
	decoded := s.framePool.Get(t.frame.DriftBins, t.frame.TOFBins)
	defer s.framePool.Put(decoded)
	res := &Result{}
	switch t.path {
	case PathHybrid:
		off, err := ws.offloader(s.offload)
		if err != nil {
			return nil, err
		}
		hr, err := off.DeconvolveFrameInto(ctx, decoded, t.frame)
		if err != nil {
			return nil, err
		}
		res.SimulatedNs = uint64(hr.SimulatedTimeS * 1e9)
		res.Saturations = uint64(hr.Saturations)
	case PathCPU:
		if err := pipeline.DeconvolveFrameIntoContext(ctx, decoded, t.frame, s.decoder, s.cfg.CPUWorkersPerFrame, s.cfg.Metrics); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("acqserver: unknown path %v", t.path)
	}
	res.Peaks = s.summarize(decoded)
	s.framePool.Put(t.frame)
	t.frame = nil
	return res, nil
}

// summarize detects the strongest drift-profile peaks of a deconvolved
// frame, height-descending, capped at MaxPeaks.
func (s *Server) summarize(f *instrument.Frame) []PeakSummary {
	if s.cfg.MaxPeaks == 0 {
		return nil
	}
	found, err := peaks.Detect(f.DriftProfile(), s.cfg.MinSNR)
	if err != nil || len(found) == 0 {
		return nil
	}
	sort.Slice(found, func(i, j int) bool { return found[i].Height > found[j].Height })
	if len(found) > s.cfg.MaxPeaks {
		found = found[:s.cfg.MaxPeaks]
	}
	out := make([]PeakSummary, len(found))
	for i, p := range found {
		out[i] = PeakSummary{Centroid: p.Centroid, Height: p.Height, Area: p.Area, SNR: p.SNR}
	}
	return out
}

// respond queues a message on the session's write loop and counts it.  A
// nil session is a recovered frame replayed from the frame log: there is
// no client to answer, so the outcome is counted, the trace closed, and
// the wide event (which the write loop would otherwise record) recorded
// here without a write duration.
func (s *Server) respond(sess *session, m outMsg, code Code) {
	if sess == nil {
		outcome := "ok"
		if code != CodeOK {
			outcome = "error"
		}
		s.m.recovered[outcome].Inc()
		m.root.End()
		if m.ev != nil {
			s.flight.Record(*m.ev)
		}
		return
	}
	s.m.responses[code].Inc()
	sess.send(m)
}

// respondError queues a typed ERROR.  The trace id is echoed on the wire
// (version-2 sessions) so the client can tell exactly which frame failed;
// root, when active, is closed by the write loop after the error goes out.
// ev, when non-nil, is the frame's wide event, recorded once the write
// completes; protocol-level errors with no accepted frame pass nil.
func (s *Server) respondError(sess *session, reqID, traceID uint64, code Code, msg string, root trace.Span, ev *flightrec.Event) {
	root.SetStr("error", code.String())
	s.respond(sess, outMsg{
		typ: MsgError, reqID: reqID, traceID: traceID,
		payload: EncodeError(code, msg), root: root, ev: ev,
	}, code)
}
