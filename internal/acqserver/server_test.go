package acqserver

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/frameio"
	"repro/internal/instrument"
	"repro/internal/telemetry"
)

// testConfig returns a small, fast configuration: order 5 (31 drift bins),
// short timeouts, and a live registry so tests can assert on counters.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Order = 5
	cfg.MaxTOFBins = 64
	cfg.ReadIdleTimeout = 2 * time.Second
	cfg.WriteTimeout = 2 * time.Second
	cfg.CPUWorkersPerFrame = 1
	cfg.Metrics = telemetry.NewRegistry()
	return cfg
}

// startServer builds the daemon, serves it on a loopback listener, and
// registers a drain-on-cleanup.  It returns the server and its address.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
	})
	return s, ln.Addr().String()
}

func dialClient(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// testFrame builds a deterministic order-5 frame.
func testFrame(tofBins int) *instrument.Frame {
	f := instrument.NewFrame(31, tofBins)
	for i := range f.Data {
		f.Data[i] = float64(i%17) + 1
	}
	return f
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// rawDial opens a bare TCP connection for protocol-level tests.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	return conn
}

// rawHello performs the handshake by hand.
func rawHello(t *testing.T, conn net.Conn) ServerInfo {
	t.Helper()
	if err := WriteMessage(conn, MsgHello, 0, []byte{ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	h, payload := rawRead(t, conn)
	if h.Type != MsgHelloOK {
		t.Fatalf("handshake answered %v, want HELLO_OK", h.Type)
	}
	info, err := DecodeServerInfo(payload)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// rawRead reads one message off the connection.
func rawRead(t *testing.T, conn net.Conn) (Header, []byte) {
	t.Helper()
	h, err := ReadHeader(conn)
	if err != nil {
		t.Fatalf("read header: %v", err)
	}
	payload := make([]byte, h.PayloadLen)
	if _, err := io.ReadFull(conn, payload); err != nil {
		t.Fatalf("read payload: %v", err)
	}
	return h, payload
}

// framePayload encodes the FRAME message payload (options + frame bytes).
func framePayload(t *testing.T, f *instrument.Frame, opts FrameOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(encodeFrameOpts(nil, opts))
	if err := frameio.Write(&buf, f, nil, frameio.Raw); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestServeBothPaths(t *testing.T) {
	s, addr := startServer(t, testConfig())
	c := dialClient(t, addr)
	if c.Info().Order != 5 || c.Info().Shards != 4 {
		t.Fatalf("handshake info %+v", c.Info())
	}
	f := testFrame(8)
	for _, path := range []Path{PathHybrid, PathCPU} {
		resp, err := c.Do(context.Background(), f, frameio.Delta, FrameOptions{Path: path})
		if err != nil {
			t.Fatalf("%v: %v", path, err)
		}
		if resp.Code != CodeOK || resp.Result == nil {
			t.Fatalf("%v: got %v %q", path, resp.Code, resp.Message)
		}
		if int(resp.Result.Shard) >= len(s.shards) {
			t.Errorf("%v: shard %d out of range", path, resp.Result.Shard)
		}
		if resp.Result.ProcessNs == 0 {
			t.Errorf("%v: zero process time", path)
		}
	}
	if got := s.m.framesByPath[PathHybrid].Value() + s.m.framesByPath[PathCPU].Value(); got != 2 {
		t.Errorf("frames accepted = %d, want 2", got)
	}
	if got := s.m.protocolErrs.Value(); got != 0 {
		t.Errorf("protocol errors = %d, want 0", got)
	}
}

// TestManyConcurrentClients is the acceptance shape of the load generator:
// at least 16 concurrent clients, every request answered, zero protocol
// errors and zero sheds at this depth.
func TestManyConcurrentClients(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 32
	s, addr := startServer(t, cfg)

	const clients, perClient = 16, 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			f := testFrame(4 + i%4)
			for j := 0; j < perClient; j++ {
				path := PathHybrid
				if (i+j)%2 == 1 {
					path = PathCPU
				}
				resp, err := c.Do(context.Background(), f, frameio.Raw, FrameOptions{Path: path})
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %w", i, j, err)
					return
				}
				if resp.Code != CodeOK {
					errs <- fmt.Errorf("client %d req %d: %v %q", i, j, resp.Code, resp.Message)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.m.responses[CodeOK].Value(); got != clients*(perClient+1) { // +1 HELLO_OK each
		t.Errorf("OK responses = %d, want %d", got, clients*(perClient+1))
	}
	if s.m.protocolErrs.Value() != 0 ||
		s.m.shedByReason["queue_full"].Value() != 0 ||
		s.m.shedByReason["draining"].Value() != 0 {
		t.Error("expected a clean run with no protocol errors or sheds")
	}
	waitFor(t, "sessions to close", func() bool { return s.m.sessionsActive.Value() == 0 })
	if got := s.m.sessionsTotal.Value(); got != clients {
		t.Errorf("sessions total = %d, want %d", got, clients)
	}
}

// TestQueueFullSheds pins one worker on a blocked compute hook, fills the
// depth-1 queue, and expects further frames to be shed with
// RESOURCE_EXHAUSTED — not to hang.
func TestQueueFullSheds(t *testing.T) {
	cfg := testConfig()
	cfg.Shards, cfg.QueueDepth, cfg.WorkersPerShard = 1, 1, 1
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	cfg.processHook = func(*task) (*Result, error) {
		started <- struct{}{}
		<-release
		return &Result{}, nil
	}
	s, addr := startServer(t, cfg)
	c := dialClient(t, addr)
	f := testFrame(4)

	responses := make(chan *Response, 4)
	do := func() {
		resp, err := c.Do(context.Background(), f, frameio.Raw, FrameOptions{Path: PathHybrid})
		if err != nil {
			t.Error(err)
			resp = &Response{Code: CodeInternal}
		}
		responses <- resp
	}

	go do() // occupies the worker
	<-started
	go do() // sits in the queue
	waitFor(t, "second frame to be queued", func() bool {
		return s.m.framesByPath[PathHybrid].Value() == 2
	})
	go do() // shed
	go do() // shed
	waitFor(t, "two frames to be shed", func() bool {
		return s.m.shedByReason["queue_full"].Value() == 2
	})
	close(release)

	counts := map[Code]int{}
	for i := 0; i < 4; i++ {
		counts[(<-responses).Code]++
	}
	if counts[CodeOK] != 2 || counts[CodeResourceExhausted] != 2 {
		t.Fatalf("response codes %v, want 2 OK + 2 RESOURCE_EXHAUSTED", counts)
	}
}

// TestGracefulDrainCompletesInFlight starts a drain while frames are
// queued behind a blocked worker: every accepted frame must still be
// answered, new frames are rejected UNAVAILABLE, and Shutdown returns nil.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	cfg := testConfig()
	cfg.Shards, cfg.QueueDepth, cfg.WorkersPerShard = 1, 8, 1
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	cfg.processHook = func(*task) (*Result, error) {
		started <- struct{}{}
		<-release
		return &Result{Saturations: 7}, nil
	}
	s, addr := startServer(t, cfg)
	c := dialClient(t, addr)
	f := testFrame(4)

	responses := make(chan *Response, 4)
	do := func() {
		resp, err := c.Do(context.Background(), f, frameio.Raw, FrameOptions{Path: PathCPU})
		if err != nil {
			t.Error(err)
			resp = &Response{Code: CodeInternal}
		}
		responses <- resp
	}
	for i := 0; i < 3; i++ {
		go do()
	}
	<-started
	waitFor(t, "three frames accepted", func() bool {
		return s.m.framesByPath[PathCPU].Value() == 3
	})

	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { shutdownErr <- s.Shutdown(ctx) }()
	waitFor(t, "drain to begin", func() bool { return s.draining.Load() })

	go do() // arrives mid-drain: must be rejected, not accepted
	waitFor(t, "late frame to be shed", func() bool {
		return s.m.shedByReason["draining"].Value() == 1
	})
	close(release)

	counts := map[Code]int{}
	for i := 0; i < 4; i++ {
		counts[(<-responses).Code]++
	}
	if counts[CodeOK] != 3 || counts[CodeUnavailable] != 1 {
		t.Fatalf("response codes %v, want 3 OK + 1 UNAVAILABLE", counts)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful drain returned %v", err)
	}
	// The daemon is gone: new connections must fail.
	if _, err := Dial(addr, 500*time.Millisecond); err == nil {
		t.Error("dial succeeded after shutdown")
	}
}

// TestClientDisconnectMidFrame drops the connection halfway through a
// FRAME payload; the daemon must shrug it off and keep serving others.
func TestClientDisconnectMidFrame(t *testing.T) {
	s, addr := startServer(t, testConfig())

	full := framePayload(t, testFrame(8), FrameOptions{Path: PathHybrid})

	// Variant 1: header declares a full frame, connection dies before any
	// payload arrives.
	conn := rawDial(t, addr)
	rawHello(t, conn)
	hdr := AppendHeader(nil, Header{Type: MsgFrame, ReqID: 1, PayloadLen: uint32(len(full))})
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()

	// Variant 2: connection dies halfway through the frame payload.
	conn2 := rawDial(t, addr)
	rawHello(t, conn2)
	hdr = AppendHeader(nil, Header{Type: MsgFrame, ReqID: 2, PayloadLen: uint32(len(full))})
	if _, err := conn2.Write(append(hdr, full[:len(full)/2]...)); err != nil {
		t.Fatal(err)
	}
	_ = conn2.Close()

	waitFor(t, "broken sessions to be torn down", func() bool {
		return s.m.sessionsActive.Value() == 0
	})
	// The daemon still serves a healthy client.
	c := dialClient(t, addr)
	resp, err := c.Do(context.Background(), testFrame(8), frameio.Raw, FrameOptions{Path: PathHybrid})
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("healthy client after disconnects: %v / %+v", err, resp)
	}
	if got := s.m.panics["session"].Value() + s.m.panics["worker"].Value(); got != 0 {
		t.Errorf("recovered %d panics, want 0", got)
	}
}

// TestSlowReaderWriteTimeout runs a session over net.Pipe (zero buffering)
// and never reads the response: the write timeout must tear the session
// down rather than wedge a worker forever.
func TestSlowReaderWriteTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.WriteTimeout = 150 * time.Millisecond
	cfg.SessionBuffer = 1
	cfg.processHook = func(*task) (*Result, error) { return &Result{}, nil }
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	local, remote := net.Pipe()
	t.Cleanup(func() { _ = local.Close() })
	s.startSession(remote)
	_ = local.SetDeadline(time.Now().Add(5 * time.Second))
	rawHello(t, local)
	payload := framePayload(t, testFrame(4), FrameOptions{Path: PathHybrid})
	if err := WriteMessage(local, MsgFrame, 1, payload); err != nil {
		t.Fatal(err)
	}
	// Never read the RESULT.  The server's write blocks on the pipe, hits
	// the 150ms deadline, and tears the session down.
	waitFor(t, "slow session to be torn down", func() bool {
		return s.m.sessionsActive.Value() == 0
	})
	if _, err := local.Read(make([]byte, 1)); err == nil {
		t.Error("connection still alive after write timeout")
	}
}

// TestWorkerPanicIsolation: a panicking compute path answers INTERNAL and
// the daemon keeps serving on the same connection.
func TestWorkerPanicIsolation(t *testing.T) {
	cfg := testConfig()
	var first atomic.Bool
	first.Store(true)
	cfg.processHook = func(*task) (*Result, error) {
		if first.CompareAndSwap(true, false) {
			panic("synthetic compute failure")
		}
		return &Result{}, nil
	}
	s, addr := startServer(t, cfg)
	c := dialClient(t, addr)
	f := testFrame(4)

	resp, err := c.Do(context.Background(), f, frameio.Raw, FrameOptions{Path: PathHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeInternal {
		t.Fatalf("panicking request answered %v %q, want INTERNAL", resp.Code, resp.Message)
	}
	resp, err = c.Do(context.Background(), f, frameio.Raw, FrameOptions{Path: PathHybrid})
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("request after panic: %v / %+v", err, resp)
	}
	if got := s.m.panics["worker"].Value(); got != 1 {
		t.Errorf("worker panics = %d, want 1", got)
	}
}

// TestDeadlineExpiresInQueue: a frame whose deadline lapses while queued
// behind a blocked worker is answered DEADLINE_EXCEEDED without compute.
func TestDeadlineExpiresInQueue(t *testing.T) {
	cfg := testConfig()
	cfg.Shards, cfg.QueueDepth, cfg.WorkersPerShard = 1, 4, 1
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	cfg.processHook = func(*task) (*Result, error) {
		started <- struct{}{}
		<-release
		return &Result{}, nil
	}
	s, addr := startServer(t, cfg)
	c := dialClient(t, addr)
	f := testFrame(4)

	responses := make(chan *Response, 2)
	do := func(opts FrameOptions) {
		resp, err := c.Do(context.Background(), f, frameio.Raw, opts)
		if err != nil {
			t.Error(err)
			resp = &Response{Code: CodeInternal}
		}
		responses <- resp
	}
	go do(FrameOptions{Path: PathHybrid})
	<-started
	go do(FrameOptions{Path: PathHybrid, Deadline: 30 * time.Millisecond})
	waitFor(t, "deadlined frame to be queued", func() bool {
		return s.m.framesByPath[PathHybrid].Value() == 2
	})
	time.Sleep(80 * time.Millisecond) // let the queued deadline lapse
	close(release)

	counts := map[Code]int{}
	for i := 0; i < 2; i++ {
		counts[(<-responses).Code]++
	}
	if counts[CodeOK] != 1 || counts[CodeDeadlineExceeded] != 1 {
		t.Fatalf("response codes %v, want 1 OK + 1 DEADLINE_EXCEEDED", counts)
	}
	if got := s.m.responses[CodeDeadlineExceeded].Value(); got != 1 {
		t.Errorf("deadline responses = %d, want 1", got)
	}
}

// TestProtocolViolations exercises the session's fatal protocol paths: a
// FRAME before HELLO and an oversized payload both earn a final typed
// error before the connection closes.
func TestProtocolViolations(t *testing.T) {
	cfg := testConfig()
	s, addr := startServer(t, cfg)

	t.Run("frame before hello", func(t *testing.T) {
		conn := rawDial(t, addr)
		if err := WriteMessage(conn, MsgFrame, 7, make([]byte, frameOptsSize)); err != nil {
			t.Fatal(err)
		}
		h, payload := rawRead(t, conn)
		code, _, err := DecodeError(payload)
		if h.Type != MsgError || err != nil || code != CodeInvalidArgument {
			t.Fatalf("got %v %v (decode err %v), want INVALID_ARGUMENT", h.Type, code, err)
		}
		// The unread payload bytes make the close an RST on some stacks, so
		// accept any terminal error.
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Error("connection still alive after protocol violation")
		}
	})

	t.Run("oversized payload", func(t *testing.T) {
		conn := rawDial(t, addr)
		rawHello(t, conn)
		hdr := AppendHeader(nil, Header{Type: MsgFrame, ReqID: 9, PayloadLen: cfg.MaxPayloadBytes + 1})
		if _, err := conn.Write(hdr); err != nil {
			t.Fatal(err)
		}
		h, payload := rawRead(t, conn)
		code, _, err := DecodeError(payload)
		if h.Type != MsgError || err != nil || code != CodeTooLarge {
			t.Fatalf("got %v %v (decode err %v), want TOO_LARGE", h.Type, code, err)
		}
	})

	t.Run("wrong geometry keeps session alive", func(t *testing.T) {
		c := dialClient(t, addr)
		bad := instrument.NewFrame(7, 4) // order-3 frame against an order-5 server
		resp, err := c.Do(context.Background(), bad, frameio.Raw, FrameOptions{Path: PathHybrid})
		if err != nil || resp.Code != CodeInvalidArgument {
			t.Fatalf("bad geometry: %v / %+v", err, resp)
		}
		resp, err = c.Do(context.Background(), testFrame(4), frameio.Raw, FrameOptions{Path: PathHybrid})
		if err != nil || resp.Code != CodeOK {
			t.Fatalf("good frame after bad geometry: %v / %+v", err, resp)
		}
	})

	t.Run("unknown path", func(t *testing.T) {
		c := dialClient(t, addr)
		resp, err := c.Do(context.Background(), testFrame(4), frameio.Raw, FrameOptions{Path: Path(9)})
		if err != nil || resp.Code != CodeInvalidArgument {
			t.Fatalf("unknown path: %v / %+v", err, resp)
		}
	})

	if s.m.protocolErrs.Value() == 0 {
		t.Error("protocol violations were not counted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Shards = 0 },
		func(c *Config) { c.QueueDepth = 0 },
		func(c *Config) { c.WorkersPerShard = 0 },
		func(c *Config) { c.Order = 1 },
		func(c *Config) { c.Order = 21 },
		func(c *Config) { c.MaxTOFBins = 0 },
		func(c *Config) { c.MaxPayloadBytes = 1 },
		func(c *Config) { c.WriteTimeout = 0 },
		func(c *Config) { c.ReadIdleTimeout = 0 },
		func(c *Config) { c.SessionBuffer = 0 },
		func(c *Config) { c.MinSNR = 0 },
		func(c *Config) { c.MaxPeaks = maxResultPeaks + 1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestDegradedModeShedsEarly pins one worker, toggles DegradedMode on, and
// expects the shard to shed at half its configured depth — then accept
// again at full depth once the degraded signal clears.
func TestDegradedModeShedsEarly(t *testing.T) {
	cfg := testConfig()
	cfg.Shards, cfg.QueueDepth, cfg.WorkersPerShard = 1, 4, 1
	var degraded atomic.Bool
	cfg.DegradedMode = degraded.Load
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	cfg.processHook = func(*task) (*Result, error) {
		started <- struct{}{}
		<-release
		return &Result{}, nil
	}
	s, addr := startServer(t, cfg)
	c := dialClient(t, addr)
	f := testFrame(4)

	responses := make(chan *Response, 8)
	do := func() {
		resp, err := c.Do(context.Background(), f, frameio.Raw, FrameOptions{Path: PathHybrid})
		if err != nil {
			t.Error(err)
			resp = &Response{Code: CodeInternal}
		}
		responses <- resp
	}

	go do() // occupies the worker
	<-started
	go do()
	go do() // fill the queue to the degraded bound: (4+1)/2 = 2
	waitFor(t, "three frames accepted", func() bool {
		return s.m.framesByPath[PathHybrid].Value() == 3
	})

	degraded.Store(true)
	go do() // occupancy 2 >= degraded bound 2: shed early
	waitFor(t, "a frame shed as degraded", func() bool {
		return s.m.shedByReason["degraded"].Value() == 1
	})

	degraded.Store(false)
	go do() // occupancy 2 < full depth 4: accepted again
	waitFor(t, "recovery frame accepted", func() bool {
		return s.m.framesByPath[PathHybrid].Value() == 4
	})
	close(release)

	counts := map[Code]int{}
	for i := 0; i < 5; i++ {
		counts[(<-responses).Code]++
	}
	if counts[CodeOK] != 4 || counts[CodeResourceExhausted] != 1 {
		t.Fatalf("response codes %v, want 4 OK + 1 RESOURCE_EXHAUSTED", counts)
	}
	if s.m.shedByReason["queue_full"].Value() != 0 {
		t.Fatalf("queue_full sheds = %d, want 0 (degraded must shed first)",
			s.m.shedByReason["queue_full"].Value())
	}
}
