// session.go: one connected client — a read loop that speaks IMSP/1 and
// streams frames straight off the socket into a shard queue, and a write
// loop that owns the connection's outbound half behind a bounded response
// queue.  The loops communicate only through channels; teardown is
// idempotent and either side's failure (read timeout, write timeout,
// malformed framing, panic) closes both.
package acqserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/frameio"
)

// outMsg is one queued response.
type outMsg struct {
	typ     MsgType
	reqID   uint64
	payload []byte
}

// session is the per-connection state.
type session struct {
	id    uint64
	srv   *Server
	conn  net.Conn
	shard *shard

	out    chan outMsg
	done   chan struct{} // closed by teardown
	drainc chan struct{} // closed by Shutdown: flush out, then close

	teardownOnce func()
	drainOnce    func()
}

// newSession registers a session and pins it to its shard.
func (s *Server) newSession(conn net.Conn) *session {
	id := s.nextSess.Add(1)
	sess := &session{
		id:     id,
		srv:    s,
		conn:   conn,
		shard:  s.shards[int(id)%len(s.shards)],
		out:    make(chan outMsg, s.cfg.SessionBuffer),
		done:   make(chan struct{}),
		drainc: make(chan struct{}),
	}
	sess.teardownOnce = sync.OnceFunc(func() {
		close(sess.done)
		_ = conn.Close()
		s.m.sessionsActive.Add(-1)
		s.sessMu.Lock()
		delete(s.sessions, sess)
		s.sessMu.Unlock()
	})
	sess.drainOnce = sync.OnceFunc(func() { close(sess.drainc) })
	s.sessMu.Lock()
	s.sessions[sess] = struct{}{}
	s.sessMu.Unlock()
	s.m.sessionsTotal.Inc()
	s.m.sessionsActive.Add(1)
	return sess
}

// teardown closes the connection and both loops; safe to call repeatedly
// from any goroutine.
func (sess *session) teardown() { sess.teardownOnce() }

// startDrain asks the write loop to flush pending responses and close.
func (sess *session) startDrain() { sess.drainOnce() }

// send queues a response for the write loop.  It blocks while the buffer
// is full (the write timeout bounds how long: a session that cannot absorb
// responses is torn down, which closes done) and reports whether the
// message was queued.
func (sess *session) send(typ MsgType, reqID uint64, payload []byte) bool {
	select {
	case sess.out <- outMsg{typ, reqID, payload}:
		return true
	case <-sess.done:
		return false
	}
}

// writeLoop owns the outbound half: one response per iteration under a
// write deadline.  On drain it flushes whatever is queued and closes.
func (sess *session) writeLoop() {
	defer sess.srv.sessWG.Done()
	defer sess.teardown()
	for {
		select {
		case m := <-sess.out:
			if !sess.writeOne(m) {
				return
			}
		case <-sess.done:
			return
		case <-sess.drainc:
			for {
				select {
				case m := <-sess.out:
					if !sess.writeOne(m) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// writeOne writes a single message under the write deadline.
func (sess *session) writeOne(m outMsg) bool {
	s := sess.srv
	_ = sess.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	start := time.Now()
	err := WriteMessage(sess.conn, m.typ, m.reqID, m.payload)
	s.m.write.Observe(float64(time.Since(start).Nanoseconds()))
	if err != nil {
		return false
	}
	s.m.bytesOut.Add(int64(headerSize + len(m.payload)))
	return true
}

// readLoop owns the inbound half: HELLO first, then FRAME/GOODBYE
// messages under the idle read deadline.  A panic while handling this
// connection is recovered here — it kills the session, never the daemon.
// On exit it starts a drain rather than tearing the connection down
// directly, so a final queued error (bad first message, oversized payload)
// reaches the client before the write loop closes the socket.
func (sess *session) readLoop() {
	s := sess.srv
	defer s.sessWG.Done()
	defer sess.startDrain()
	defer func() {
		if r := recover(); r != nil {
			s.m.panics["session"].Inc()
		}
	}()

	sawHello := false
	for {
		_ = sess.conn.SetReadDeadline(time.Now().Add(s.cfg.ReadIdleTimeout))
		h, err := ReadHeader(sess.conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.m.protocolErrs.Inc()
			}
			return
		}
		if h.PayloadLen > s.cfg.MaxPayloadBytes {
			s.m.protocolErrs.Inc()
			s.respondError(sess, h.ReqID, CodeTooLarge,
				fmt.Sprintf("payload %d bytes exceeds bound %d", h.PayloadLen, s.cfg.MaxPayloadBytes))
			return // cannot resync across an unbounded payload
		}
		s.m.bytesIn.Add(int64(headerSize) + int64(h.PayloadLen))

		if !sawHello && h.Type != MsgHello {
			s.m.protocolErrs.Inc()
			s.respondError(sess, h.ReqID, CodeInvalidArgument, "first message must be HELLO")
			return
		}
		switch h.Type {
		case MsgHello:
			if !sess.discardPayload(h.PayloadLen) {
				return
			}
			sawHello = true
			info := EncodeServerInfo(ServerInfo{
				Version:         ProtocolVersion,
				Shards:          uint16(len(s.shards)),
				Order:           uint8(s.cfg.Order),
				MaxPayloadBytes: s.cfg.MaxPayloadBytes,
			})
			s.respond(sess, MsgHelloOK, h.ReqID, info, CodeOK)
		case MsgGoodbye:
			return
		case MsgFrame:
			if !sess.handleFrame(h) {
				return
			}
		default:
			s.m.protocolErrs.Inc()
			if !sess.discardPayload(h.PayloadLen) {
				return
			}
			s.respondError(sess, h.ReqID, CodeInvalidArgument,
				fmt.Sprintf("unexpected message type %v", h.Type))
		}
	}
}

// handleFrame streams one FRAME payload off the socket, validates it, and
// enqueues it (or sheds).  It reports whether the connection is still in a
// consistent state to keep reading.
func (sess *session) handleFrame(h Header) bool {
	s := sess.srv
	if h.PayloadLen < frameOptsSize {
		s.m.protocolErrs.Inc()
		s.respondError(sess, h.ReqID, CodeInvalidArgument, "FRAME payload too short for options")
		return false
	}
	var optsBuf [frameOptsSize]byte
	if _, err := io.ReadFull(sess.conn, optsBuf[:]); err != nil {
		return false
	}
	opts, err := decodeFrameOpts(optsBuf[:])
	if err != nil {
		s.m.protocolErrs.Inc()
		return false
	}

	// Stream the frame straight off the socket: the encoded payload is
	// never buffered whole, and frameio's limits reject absurd headers
	// before any payload-sized allocation.
	lr := &io.LimitedReader{R: sess.conn, N: int64(h.PayloadLen) - frameOptsSize}
	start := time.Now()
	frame, _, decErr := frameio.ReadLimited(lr, s.limits)
	s.m.readFrame.Observe(float64(time.Since(start).Nanoseconds()))
	// Resync to the message boundary regardless of decode success; a
	// failure here is a connection-level error (timeout, disconnect).
	if _, err := io.Copy(io.Discard, lr); err != nil {
		return false
	}
	if decErr != nil {
		s.respondError(sess, h.ReqID, CodeInvalidArgument, decErr.Error())
		return true
	}
	if opts.Path != PathHybrid && opts.Path != PathCPU {
		s.respondError(sess, h.ReqID, CodeInvalidArgument, fmt.Sprintf("unknown path %v", opts.Path))
		return true
	}
	if frame.DriftBins != s.seqLen {
		s.respondError(sess, h.ReqID, CodeInvalidArgument,
			fmt.Sprintf("frame has %d drift bins, server order %d needs %d",
				frame.DriftBins, s.cfg.Order, s.seqLen))
		return true
	}

	t := &task{
		sess:     sess,
		reqID:    h.ReqID,
		frame:    frame,
		path:     opts.Path,
		enqueued: time.Now(),
	}
	if opts.Deadline > 0 {
		t.deadline = t.enqueued.Add(opts.Deadline)
	}
	if s.draining.Load() {
		s.m.shedByReason["draining"].Inc()
		s.respondError(sess, h.ReqID, CodeUnavailable, "daemon is draining")
		return true
	}
	switch err := sess.shard.enqueue(t); err {
	case nil:
		s.m.framesByPath[opts.Path].Inc()
	case errQueueFull:
		s.m.shedByReason["queue_full"].Inc()
		s.respondError(sess, h.ReqID, CodeResourceExhausted,
			fmt.Sprintf("shard %d queue full (depth %d)", sess.shard.id, s.cfg.QueueDepth))
	case errDraining:
		s.m.shedByReason["draining"].Inc()
		s.respondError(sess, h.ReqID, CodeUnavailable, "daemon is draining")
	}
	return true
}

// discardPayload consumes and drops n payload bytes to stay on a message
// boundary, reporting success.
func (sess *session) discardPayload(n uint32) bool {
	if n == 0 {
		return true
	}
	_, err := io.CopyN(io.Discard, sess.conn, int64(n))
	return err == nil
}
