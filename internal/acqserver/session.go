// session.go: one connected client — a read loop that speaks IMSP/1 and
// streams frames straight off the socket into a shard queue, and a write
// loop that owns the connection's outbound half behind a bounded response
// queue.  The loops communicate only through channels; teardown is
// idempotent and either side's failure (read timeout, write timeout,
// malformed framing, panic) closes both.
package acqserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frameio"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/trace"
)

// outMsg is one queued response.  root, when active, is the frame's trace
// root: the write loop records the response write as its final child and
// ends it, so the span tree covers first socket byte to last.  ev, when
// non-nil, is the frame's wide event; the write loop fills its write
// duration and records it, so the flight recorder sees the request's full
// anatomy including the response write.
type outMsg struct {
	typ     MsgType
	reqID   uint64
	traceID uint64
	payload []byte
	root    trace.Span
	ev      *flightrec.Event
}

// captureReader tees everything read through it into a reusable buffer,
// so the exact FRAME payload bytes that were streamed off the socket can
// be appended to the frame log verbatim (replay is then bit-identical to
// what the client sent).
type captureReader struct {
	r   io.Reader
	buf []byte
}

// Read forwards to the wrapped reader, appending what it saw.
func (c *captureReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.buf = append(c.buf, p[:n]...)
	return n, err
}

// session is the per-connection state.
type session struct {
	id    uint64
	srv   *Server
	conn  net.Conn
	shard *shard

	// capR captures FRAME payload bytes for the frame log; its buffer is
	// reused across the session's frames (the read loop is sequential).
	capR captureReader

	// ver is the negotiated protocol version (ProtocolV1 until the HELLO
	// payload proves the client speaks something newer); atomic because
	// the read loop negotiates it while the write loop frames responses.
	ver atomic.Uint32

	out    chan outMsg
	done   chan struct{} // closed by teardown
	drainc chan struct{} // closed by Shutdown: flush out, then close

	teardownOnce func()
	drainOnce    func()
}

// newSession registers a session and pins it to its shard.
func (s *Server) newSession(conn net.Conn) *session {
	id := s.nextSess.Add(1)
	sess := &session{
		id:     id,
		srv:    s,
		conn:   conn,
		shard:  s.shards[int(id)%len(s.shards)],
		out:    make(chan outMsg, s.cfg.SessionBuffer),
		done:   make(chan struct{}),
		drainc: make(chan struct{}),
	}
	sess.ver.Store(ProtocolV1)
	sess.teardownOnce = sync.OnceFunc(func() {
		close(sess.done)
		_ = conn.Close()
		s.m.sessionsActive.Add(-1)
		s.sessMu.Lock()
		delete(s.sessions, sess)
		s.sessMu.Unlock()
		s.log.Info("session closed", "session", id, "remote", conn.RemoteAddr().String())
	})
	sess.drainOnce = sync.OnceFunc(func() { close(sess.drainc) })
	s.sessMu.Lock()
	s.sessions[sess] = struct{}{}
	s.sessMu.Unlock()
	s.m.sessionsTotal.Inc()
	s.m.sessionsActive.Add(1)
	s.log.Info("session opened", "session", id, "remote", conn.RemoteAddr().String(), "shard", sess.shard.id)
	return sess
}

// teardown closes the connection and both loops; safe to call repeatedly
// from any goroutine.
func (sess *session) teardown() { sess.teardownOnce() }

// startDrain asks the write loop to flush pending responses and close.
func (sess *session) startDrain() { sess.drainOnce() }

// send queues a response for the write loop.  It blocks while the buffer
// is full (the write timeout bounds how long: a session that cannot absorb
// responses is torn down, which closes done) and reports whether the
// message was queued.  An unqueued message still ends the trace root and
// records the wide event, so both are retained even when the client is
// gone.
func (sess *session) send(m outMsg) bool {
	select {
	case sess.out <- m:
		return true
	case <-sess.done:
		m.root.End()
		if m.ev != nil {
			sess.srv.flight.Record(*m.ev)
		}
		return false
	}
}

// writeLoop owns the outbound half: one response per iteration under a
// write deadline.  On drain it flushes whatever is queued and closes.
func (sess *session) writeLoop() {
	defer sess.srv.sessWG.Done()
	defer sess.teardown()
	for {
		select {
		case m := <-sess.out:
			if !sess.writeOne(m) {
				return
			}
		case <-sess.done:
			return
		case <-sess.drainc:
			for {
				select {
				case m := <-sess.out:
					if !sess.writeOne(m) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// writeOne writes a single message under the write deadline, framed in
// the session's negotiated protocol version, closes the frame's span tree
// with a write_response child, and records the frame's wide event — this
// is "response-write time", the moment the request's full anatomy is
// known.
func (sess *session) writeOne(m outMsg) bool {
	s := sess.srv
	ver := uint8(sess.ver.Load())
	_ = sess.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	wspan := m.root.Child("write_response")
	start := time.Now()
	err := WriteMessageV(sess.conn, ver, m.typ, m.reqID, m.traceID, m.payload)
	writeNs := time.Since(start).Nanoseconds()
	s.m.write.ObserveExemplar(float64(writeNs), m.traceID)
	wspan.SetInt("bytes", int64(headerLen(ver)+len(m.payload)))
	wspan.End()
	m.root.End()
	if m.ev != nil {
		m.ev.WriteNs = writeNs
		s.flight.Record(*m.ev)
	}
	if err != nil {
		return false
	}
	s.m.bytesOut.Add(int64(headerLen(ver) + len(m.payload)))
	return true
}

// readLoop owns the inbound half: HELLO first, then FRAME/GOODBYE
// messages under the idle read deadline.  A panic while handling this
// connection is recovered here — it kills the session, never the daemon.
// On exit it starts a drain rather than tearing the connection down
// directly, so a final queued error (bad first message, oversized payload)
// reaches the client before the write loop closes the socket.
func (sess *session) readLoop() {
	s := sess.srv
	defer s.sessWG.Done()
	defer sess.startDrain()
	defer func() {
		if r := recover(); r != nil {
			s.m.panics["session"].Inc()
			s.log.Error("session panic recovered", "session", sess.id, "panic", fmt.Sprint(r))
			if _, err := s.flight.Dump("panic"); err != nil {
				s.log.Error("flight recorder dump failed", "err", err)
			}
		}
	}()

	sawHello := false
	for {
		_ = sess.conn.SetReadDeadline(time.Now().Add(s.cfg.ReadIdleTimeout))
		h, err := ReadHeader(sess.conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.m.protocolErrs.Inc()
			}
			return
		}
		if h.PayloadLen > s.cfg.MaxPayloadBytes {
			s.m.protocolErrs.Inc()
			s.respondError(sess, h.ReqID, h.TraceID, CodeTooLarge,
				fmt.Sprintf("payload %d bytes exceeds bound %d", h.PayloadLen, s.cfg.MaxPayloadBytes),
				trace.Span{}, nil)
			return // cannot resync across an unbounded payload
		}
		s.m.bytesIn.Add(int64(headerLen(h.Version)) + int64(h.PayloadLen))

		if !sawHello && h.Type != MsgHello {
			s.m.protocolErrs.Inc()
			s.respondError(sess, h.ReqID, h.TraceID, CodeInvalidArgument,
				"first message must be HELLO", trace.Span{}, nil)
			return
		}
		switch h.Type {
		case MsgHello:
			if !sess.handleHello(h) {
				return
			}
			sawHello = true
		case MsgGoodbye:
			return
		case MsgFrame:
			if !sess.handleFrame(h) {
				return
			}
		default:
			s.m.protocolErrs.Inc()
			if !sess.discardPayload(h.PayloadLen) {
				return
			}
			s.respondError(sess, h.ReqID, h.TraceID, CodeInvalidArgument,
				fmt.Sprintf("unexpected message type %v", h.Type), trace.Span{}, nil)
		}
	}
}

// handleHello negotiates the session's protocol version — the payload's
// first byte is the client's highest supported version (an empty payload
// means a version-1-era client) — and answers HELLO_OK carrying the
// agreed version.  It reports whether the connection is still readable.
func (sess *session) handleHello(h Header) bool {
	s := sess.srv
	clientVer := uint8(ProtocolV1)
	if h.PayloadLen > 0 {
		first := make([]byte, 1)
		if _, err := io.ReadFull(sess.conn, first); err != nil {
			return false
		}
		if !sess.discardPayload(h.PayloadLen - 1) {
			return false
		}
		if first[0] >= ProtocolV1 {
			clientVer = first[0]
		}
	}
	ver := clientVer
	if ver > ProtocolVersion {
		ver = ProtocolVersion
	}
	sess.ver.Store(uint32(ver))
	s.log.Debug("session negotiated", "session", sess.id, "proto", ver)
	info := EncodeServerInfo(ServerInfo{
		Version:         ver,
		Shards:          uint16(len(s.shards)),
		Order:           uint8(s.cfg.Order),
		MaxPayloadBytes: s.cfg.MaxPayloadBytes,
	})
	s.respond(sess, outMsg{typ: MsgHelloOK, reqID: h.ReqID, payload: info}, CodeOK)
	return true
}

// handleFrame streams one FRAME payload off the socket, validates it, and
// enqueues it (or sheds).  It reports whether the connection is still in a
// consistent state to keep reading.  The frame's trace root starts here:
// a nonzero version-2 trace id is adopted (so client and server spans
// share an identity), otherwise the tracer mints one.
func (sess *session) handleFrame(h Header) bool {
	s := sess.srv
	root := s.tracer.StartTrace("frame", h.TraceID)
	traceID := h.TraceID
	if root.Active() {
		traceID = root.TraceID()
		root.SetInt("session", int64(sess.id))
		root.SetInt("req_id", int64(h.ReqID))
		root.SetInt("frame_bytes", int64(h.PayloadLen))
		root.SetInt("prs_order", int64(s.cfg.Order))
	}
	if h.PayloadLen < frameOptsSize {
		s.m.protocolErrs.Inc()
		s.respondError(sess, h.ReqID, traceID, CodeInvalidArgument,
			"FRAME payload too short for options", root, nil)
		return false
	}
	rspan := root.Child("socket_read")
	var optsBuf [frameOptsSize]byte
	if _, err := io.ReadFull(sess.conn, optsBuf[:]); err != nil {
		root.End()
		return false
	}
	opts, err := decodeFrameOpts(optsBuf[:])
	if err != nil {
		s.m.protocolErrs.Inc()
		root.End()
		return false
	}

	// Stream the frame straight off the socket: the encoded payload is
	// never buffered whole, and frameio's limits reject absurd headers
	// before any payload-sized allocation.  With a frame log attached the
	// stream is teed into the session's capture buffer so the log records
	// the wire payload byte for byte.
	lr := &io.LimitedReader{R: sess.conn, N: int64(h.PayloadLen) - frameOptsSize}
	var src io.Reader = lr
	if s.wal != nil {
		sess.capR.buf = append(sess.capR.buf[:0], optsBuf[:]...)
		sess.capR.r = lr
		src = &sess.capR
	}
	start := time.Now()
	frame, _, decErr := frameio.ReadLimited(src, s.limits)
	s.m.readFrame.ObserveExemplar(float64(time.Since(start).Nanoseconds()), traceID)
	// Resync to the message boundary regardless of decode success; a
	// failure here is a connection-level error (timeout, disconnect).
	if _, err := io.Copy(io.Discard, src); err != nil {
		root.End()
		return false
	}
	rspan.End()
	if decErr != nil {
		s.respondError(sess, h.ReqID, traceID, CodeInvalidArgument, decErr.Error(), root, nil)
		return true
	}
	if opts.Path != PathHybrid && opts.Path != PathCPU {
		s.respondError(sess, h.ReqID, traceID, CodeInvalidArgument,
			fmt.Sprintf("unknown path %v", opts.Path), root, nil)
		return true
	}
	if frame.DriftBins != s.seqLen {
		s.respondError(sess, h.ReqID, traceID, CodeInvalidArgument,
			fmt.Sprintf("frame has %d drift bins, server order %d needs %d",
				frame.DriftBins, s.cfg.Order, s.seqLen), root, nil)
		return true
	}
	root.SetStr("path", opts.Path.String())

	// Append to the frame log before enqueue: once the append is
	// acknowledged the frame survives a crash (per the fsync policy) even
	// if it is still queued when the daemon dies.
	var walSeq uint64
	var walNotDurable bool
	if s.wal != nil {
		aspan := root.Child("framelog_append")
		seq, err := s.wal.Append(traceID, sess.capR.buf)
		aspan.SetInt("wal_seq", int64(seq))
		aspan.End()
		if err != nil {
			if s.wal.Durable() {
				// Durability was promised; failing open would lie to the
				// client.
				s.respondError(sess, h.ReqID, traceID, CodeInternal,
					fmt.Sprintf("frame log append failed: %v", err), root, nil)
				return true
			}
			s.log.Warn("framelog append failed; serving without durability",
				"session", sess.id, "req_id", h.ReqID, "trace_id", traceID, "err", err)
			walNotDurable = true
		} else {
			walSeq = seq
			walNotDurable = !s.wal.Durable()
		}
	}

	t := &task{
		sess:          sess,
		reqID:         h.ReqID,
		traceID:       traceID,
		frame:         frame,
		path:          opts.Path,
		enqueued:      time.Now(),
		root:          root,
		walSeq:        walSeq,
		walNotDurable: walNotDurable,
	}
	if opts.Deadline > 0 {
		t.deadline = t.enqueued.Add(opts.Deadline)
	}
	if s.draining.Load() {
		s.m.shedByReason["draining"].Inc()
		s.completeWAL(walSeq)
		s.log.Debug("frame shed", "reason", "draining", "session", sess.id, "req_id", h.ReqID, "trace_id", traceID)
		s.respondError(sess, h.ReqID, traceID, CodeUnavailable, "daemon is draining", root,
			s.eventFor(t, sess.shard.id, CodeUnavailable, "draining", "daemon is draining", 0, 0))
		return true
	}
	t.qspan = root.Child("queue_wait")
	t.qspan.SetInt("shard", int64(sess.shard.id))
	switch err := sess.shard.enqueue(t, s.effectiveDepth()); err {
	case nil:
		s.m.framesByPath[opts.Path].Inc()
	case errDegraded:
		s.m.shedByReason["degraded"].Inc()
		s.completeWAL(walSeq)
		s.log.Debug("frame shed", "reason", "degraded", "session", sess.id, "req_id", h.ReqID, "trace_id", traceID, "shard", sess.shard.id)
		t.qspan.End()
		msg := fmt.Sprintf("shard %d shedding early: server is degraded", sess.shard.id)
		s.respondError(sess, h.ReqID, traceID, CodeResourceExhausted, msg, root,
			s.eventFor(t, sess.shard.id, CodeResourceExhausted, "degraded", msg, 0, 0))
	case errQueueFull:
		s.m.shedByReason["queue_full"].Inc()
		s.completeWAL(walSeq)
		s.log.Debug("frame shed", "reason", "queue_full", "session", sess.id, "req_id", h.ReqID, "trace_id", traceID, "shard", sess.shard.id)
		t.qspan.End()
		msg := fmt.Sprintf("shard %d queue full (depth %d)", sess.shard.id, s.cfg.QueueDepth)
		s.respondError(sess, h.ReqID, traceID, CodeResourceExhausted, msg, root,
			s.eventFor(t, sess.shard.id, CodeResourceExhausted, "queue_full", msg, 0, 0))
	case errDraining:
		s.m.shedByReason["draining"].Inc()
		s.completeWAL(walSeq)
		s.log.Debug("frame shed", "reason", "draining", "session", sess.id, "req_id", h.ReqID, "trace_id", traceID)
		t.qspan.End()
		s.respondError(sess, h.ReqID, traceID, CodeUnavailable, "daemon is draining", root,
			s.eventFor(t, sess.shard.id, CodeUnavailable, "draining", "daemon is draining", 0, 0))
	}
	return true
}

// discardPayload consumes and drops n payload bytes to stay on a message
// boundary, reporting success.
func (sess *session) discardPayload(n uint32) bool {
	if n == 0 {
		return true
	}
	_, err := io.CopyN(io.Discard, sess.conn, int64(n))
	return err == nil
}
