package acqserver

// trace_test.go: protocol-version negotiation against version-1-era
// clients, trace-id echo on error responses, the end-to-end span tree for
// served frames, and concurrent observability scrapes while frames are in
// flight.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/frameio"
	"repro/internal/instrument"
	"repro/internal/telemetry/trace"
)

// TestV1ClientCompatibility drives the handshake the way a version-1-era
// client does — HELLO with an empty payload or an explicit version byte of
// 1 — and asserts every subsequent response is framed at version 1: no
// trace-id field on the wire, nothing the old client cannot parse.
func TestV1ClientCompatibility(t *testing.T) {
	for _, tc := range []struct {
		name    string
		payload []byte
	}{
		{"empty_hello_payload", nil},
		{"explicit_v1", []byte{ProtocolV1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, addr := startServer(t, testConfig())
			conn := rawDial(t, addr)
			if err := WriteMessage(conn, MsgHello, 0, tc.payload); err != nil {
				t.Fatal(err)
			}
			h, payload := rawRead(t, conn)
			if h.Type != MsgHelloOK {
				t.Fatalf("handshake answered %v, want HELLO_OK", h.Type)
			}
			if h.Version != ProtocolV1 {
				t.Errorf("HELLO_OK framed at version %d, want %d", h.Version, ProtocolV1)
			}
			info, err := DecodeServerInfo(payload)
			if err != nil {
				t.Fatal(err)
			}
			if info.Version != ProtocolV1 {
				t.Errorf("negotiated version %d, want %d", info.Version, ProtocolV1)
			}

			// A frame submitted over the v1 framing must come back v1-framed
			// with no trace id.
			if err := WriteMessage(conn, MsgFrame, 1, framePayload(t, testFrame(16), FrameOptions{Path: PathCPU})); err != nil {
				t.Fatal(err)
			}
			rh, rp := rawRead(t, conn)
			if rh.Type != MsgResult {
				t.Fatalf("frame answered %v, want RESULT", rh.Type)
			}
			if rh.Version != ProtocolV1 || rh.TraceID != 0 {
				t.Errorf("RESULT framed at version %d with trace id %#x, want version %d and no trace id",
					rh.Version, rh.TraceID, ProtocolV1)
			}
			if _, err := DecodeResult(rp); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestClientNegotiatesV2 asserts the shipped Client lands on version 2
// against the current server and that responses ride the 26-byte header.
func TestClientNegotiatesV2(t *testing.T) {
	_, addr := startServer(t, testConfig())
	c := dialClient(t, addr)
	if got := c.ProtocolVersion(); got != ProtocolV2 {
		t.Fatalf("client negotiated version %d, want %d", got, ProtocolV2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := c.Do(ctx, testFrame(16), frameio.Raw, FrameOptions{Path: PathCPU, TraceID: 0x1234})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeOK {
		t.Fatalf("frame rejected: %v %s", resp.Code, resp.Message)
	}
	if resp.TraceID != 0x1234 {
		t.Errorf("response trace id %#x, want the submitted %#x", resp.TraceID, 0x1234)
	}
}

// TestTraceIDEchoedOnError submits invalid frames carrying a trace id and
// asserts the id comes back on the ERROR response — with and without a
// tracer installed on the server — so a client can always correlate a
// rejection with its own telemetry.
func TestTraceIDEchoedOnError(t *testing.T) {
	for _, tc := range []struct {
		name   string
		tracer *trace.Tracer
	}{
		{"untraced_server", nil},
		{"traced_server", trace.New(trace.Config{})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Trace = tc.tracer
			_, addr := startServer(t, cfg)
			c := dialClient(t, addr)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			// 15 drift bins is order 4; the server serves order 5.
			bad := instrument.NewFrame(15, 16)
			resp, err := c.Do(ctx, bad, frameio.Raw, FrameOptions{Path: PathCPU, TraceID: 0xDEADBEEF})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Code == CodeOK {
				t.Fatal("mismatched frame accepted, want an error response")
			}
			if resp.TraceID != 0xDEADBEEF {
				t.Errorf("error response trace id %#x, want the submitted %#x", resp.TraceID, 0xDEADBEEF)
			}
		})
	}
}

// spanNames flattens a trace snapshot into a name-presence set.
func spanNames(tr trace.TraceSnapshot) map[string]bool {
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestEndToEndSpanTree serves one hybrid and one CPU frame with tracing on
// and asserts the retained trees carry the full stage taxonomy from socket
// read to response write, under the trace ids the client chose.
func TestEndToEndSpanTree(t *testing.T) {
	tracer := trace.New(trace.Config{SlowThreshold: 0}) // retain everything
	cfg := testConfig()
	cfg.Trace = tracer
	_, addr := startServer(t, cfg)
	c := dialClient(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, req := range []struct {
		path Path
		id   uint64
	}{
		{PathHybrid, 0xB0B1},
		{PathCPU, 0xB0B2},
	} {
		resp, err := c.Do(ctx, testFrame(16), frameio.Raw, FrameOptions{Path: req.path, TraceID: req.id})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Code != CodeOK {
			t.Fatalf("path %v rejected: %v %s", req.path, resp.Code, resp.Message)
		}
	}

	// The root span ends after the response is written, so the retained
	// tree can land in the ring just after the client sees the RESULT.
	byID := map[uint64]trace.TraceSnapshot{}
	waitFor(t, "both traces retained", func() bool {
		slow, _ := tracer.Snapshot()
		for _, tr := range slow {
			byID[tr.ID] = tr
		}
		_, ok1 := byID[0xB0B1]
		_, ok2 := byID[0xB0B2]
		return ok1 && ok2
	})

	hybridTree := spanNames(byID[0xB0B1])
	for _, want := range []string{
		"frame", "socket_read", "queue_wait", "worker", "write_response",
		"hybrid_offload", "fpga_capture", "fpga_accumulate", "xd1_dma_in",
		"fpga_fht", "xd1_dma_out",
	} {
		if !hybridTree[want] {
			t.Errorf("hybrid trace missing span %q (got %v)", want, hybridTree)
		}
	}
	cpuTree := spanNames(byID[0xB0B2])
	for _, want := range []string{
		"frame", "socket_read", "queue_wait", "worker", "cpu_decode", "write_response",
	} {
		if !cpuTree[want] {
			t.Errorf("cpu trace missing span %q (got %v)", want, cpuTree)
		}
	}
}

// TestConcurrentScrapes hammers /metrics and /debug/traces while frames
// are in flight; run under -race this proves the snapshot paths never data
// race with live updates.
func TestConcurrentScrapes(t *testing.T) {
	tracer := trace.New(trace.Config{})
	cfg := testConfig()
	cfg.Trace = tracer
	_, addr := startServer(t, cfg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			f := testFrame(16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_, err := c.Do(ctx, f, frameio.Raw, FrameOptions{Path: PathCPU})
				cancel()
				if err != nil {
					return // server draining at test end
				}
			}
		}()
	}

	scrape := func(h http.Handler, path string) {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			req := httptest.NewRequest(http.MethodGet, path, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("GET %s = %d, want 200", path, rec.Code)
				return
			}
		}
	}
	wg.Add(2)
	go scrape(cfg.Metrics.Handler(), "/metrics")
	go scrape(tracer.Handler(), "/debug/traces")

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}
