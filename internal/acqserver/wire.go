// wire.go: the IMSP wire protocol — the length-prefixed binary framing
// the acquisition daemon speaks on TCP.  Every message is a little-endian
// header followed by a bounded payload.  Version 1 is an 18-byte header:
//
//	magic "IMSP" | version u8 | type u8 | request id u64 | payload len u32
//
// Version 2 appends a trace id u64 (26 bytes total), carrying the frame's
// trace identity end to end so a client can correlate its observed latency
// with the server-side span tree (internal/telemetry/trace).  The version
// is negotiated per session: the HELLO payload's first byte is the
// client's highest supported version, the server answers with
// min(client, server) in HELLO_OK, and both sides frame every subsequent
// message in the negotiated version — a PR 2-era client that sends 1 (or
// nothing) gets pure IMSP/1 back.
//
// FRAME payloads carry a 5-byte option prefix (path u8, deadline ms u32)
// followed by a frameio-encoded frame, so the daemon streams the frame
// straight off the socket through frameio.ReadLimited without ever holding
// the encoded payload in memory.  RESULT and ERROR payloads are small,
// fixed-layout summaries.  The explicit payload length makes resync after
// a decode error trivial: discard the remainder of the declared payload
// and the stream is back on a message boundary.
package acqserver

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// ProtocolV1 is the original IMSP revision: 18-byte header, no trace id.
const ProtocolV1 = 1

// ProtocolV2 extends the header with a trace id u64 (26 bytes).
const ProtocolV2 = 2

// ProtocolVersion is the highest IMSP revision this package speaks.
const ProtocolVersion = ProtocolV2

// headerSize is the version-1 wire header length in bytes; version 2
// appends traceIDSize more.
const headerSize = 18

// traceIDSize is the trace-id extension a version-2 header appends.
const traceIDSize = 8

// headerLen returns the wire header length for a protocol version.
func headerLen(version uint8) int {
	if version >= ProtocolV2 {
		return headerSize + traceIDSize
	}
	return headerSize
}

// frameOptsSize is the option prefix of a FRAME payload: path u8 +
// deadline-milliseconds u32.
const frameOptsSize = 5

var wireMagic = [4]byte{'I', 'M', 'S', 'P'}

// MsgType discriminates wire messages.
type MsgType uint8

// The IMSP/1 message types.
const (
	// MsgHello opens a session (client→server); payload: client version u8.
	MsgHello MsgType = 1
	// MsgHelloOK acknowledges a session (server→client); payload:
	// server version u8, shards u16, sequence order u8, max payload u32.
	MsgHelloOK MsgType = 2
	// MsgFrame submits one frame for deconvolution (client→server).
	MsgFrame MsgType = 3
	// MsgResult returns a deconvolution summary (server→client).
	MsgResult MsgType = 4
	// MsgError returns a typed failure for one request (server→client);
	// payload: code u8, message length u16, message bytes.
	MsgError MsgType = 5
	// MsgGoodbye announces a clean client departure (client→server).
	MsgGoodbye MsgType = 6
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "HELLO"
	case MsgHelloOK:
		return "HELLO_OK"
	case MsgFrame:
		return "FRAME"
	case MsgResult:
		return "RESULT"
	case MsgError:
		return "ERROR"
	case MsgGoodbye:
		return "GOODBYE"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Code is the typed status of a request, modeled on gRPC status codes.
type Code uint8

// The IMSP/1 status codes.
const (
	// CodeOK is success (implied by a RESULT message).
	CodeOK Code = 0
	// CodeInvalidArgument rejects a malformed or mis-shaped frame.
	CodeInvalidArgument Code = 1
	// CodeResourceExhausted is explicit load shedding: the target shard's
	// queue was full.  The request was not processed; retry with backoff.
	CodeResourceExhausted Code = 2
	// CodeDeadlineExceeded reports the request's deadline expired before
	// or during processing.
	CodeDeadlineExceeded Code = 3
	// CodeUnavailable reports the daemon is draining for shutdown.
	CodeUnavailable Code = 4
	// CodeInternal reports a server-side failure (including a recovered
	// worker panic).
	CodeInternal Code = 5
	// CodeTooLarge rejects a payload exceeding the negotiated bound.
	CodeTooLarge Code = 6
)

// String implements fmt.Stringer.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "OK"
	case CodeInvalidArgument:
		return "INVALID_ARGUMENT"
	case CodeResourceExhausted:
		return "RESOURCE_EXHAUSTED"
	case CodeDeadlineExceeded:
		return "DEADLINE_EXCEEDED"
	case CodeUnavailable:
		return "UNAVAILABLE"
	case CodeInternal:
		return "INTERNAL"
	case CodeTooLarge:
		return "TOO_LARGE"
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// Path selects the compute backend for one frame.
type Path uint8

// The selectable compute paths.
const (
	// PathHybrid runs the modeled FPGA offload (hybrid.HybridDeconvolveFrame).
	PathHybrid Path = 0
	// PathCPU runs the software pipeline (pipeline.DeconvolveFrame).
	PathCPU Path = 1
)

// String implements fmt.Stringer.
func (p Path) String() string {
	switch p {
	case PathHybrid:
		return "hybrid"
	case PathCPU:
		return "cpu"
	}
	return fmt.Sprintf("path(%d)", uint8(p))
}

// Header is one decoded wire header.
type Header struct {
	// Version is the protocol revision the header was framed in.
	Version uint8
	// Type is the message type.
	Type MsgType
	// ReqID correlates a response with its request; the client picks it.
	ReqID uint64
	// PayloadLen is the byte length of the payload that follows.
	PayloadLen uint32
	// TraceID carries the frame's trace identity (version ≥ 2; 0 = none).
	TraceID uint64
}

// ReadHeader reads and validates one wire header, accepting any supported
// protocol version; the version-2 trace-id extension is consumed when
// present.
func ReadHeader(r io.Reader) (Header, error) {
	var buf [headerSize + traceIDSize]byte
	if _, err := io.ReadFull(r, buf[:headerSize]); err != nil {
		return Header{}, err
	}
	if [4]byte(buf[0:4]) != wireMagic {
		return Header{}, fmt.Errorf("acqserver: bad magic %q", buf[0:4])
	}
	if buf[4] < ProtocolV1 || buf[4] > ProtocolVersion {
		return Header{}, fmt.Errorf("acqserver: unsupported protocol version %d", buf[4])
	}
	h := Header{
		Version:    buf[4],
		Type:       MsgType(buf[5]),
		ReqID:      binary.LittleEndian.Uint64(buf[6:14]),
		PayloadLen: binary.LittleEndian.Uint32(buf[14:18]),
	}
	if h.Version >= ProtocolV2 {
		if _, err := io.ReadFull(r, buf[headerSize:]); err != nil {
			return Header{}, err
		}
		h.TraceID = binary.LittleEndian.Uint64(buf[headerSize:])
	}
	return h, nil
}

// AppendHeader appends the wire encoding of h to dst, framed in h.Version
// (0 is treated as version 1 for compatibility with existing callers).
func AppendHeader(dst []byte, h Header) []byte {
	v := h.Version
	if v == 0 {
		v = ProtocolV1
	}
	dst = append(dst, wireMagic[:]...)
	dst = append(dst, v, byte(h.Type))
	dst = binary.LittleEndian.AppendUint64(dst, h.ReqID)
	dst = binary.LittleEndian.AppendUint32(dst, h.PayloadLen)
	if v >= ProtocolV2 {
		dst = binary.LittleEndian.AppendUint64(dst, h.TraceID)
	}
	return dst
}

// WriteMessage writes one complete version-1 message (header + payload)
// to w.
func WriteMessage(w io.Writer, typ MsgType, reqID uint64, payload []byte) error {
	return WriteMessageV(w, ProtocolV1, typ, reqID, 0, payload)
}

// WriteMessageV writes one complete message framed in the given protocol
// version; traceID only reaches the wire under version 2.
func WriteMessageV(w io.Writer, version uint8, typ MsgType, reqID, traceID uint64, payload []byte) error {
	buf := make([]byte, 0, headerLen(version)+len(payload))
	buf = AppendHeader(buf, Header{
		Version: version, Type: typ, ReqID: reqID,
		PayloadLen: uint32(len(payload)), TraceID: traceID,
	})
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// PeakSummary is one detected peak of a deconvolved frame's drift profile,
// as carried in a RESULT payload.
type PeakSummary struct {
	// Centroid is the sub-bin apex position along the drift axis.
	Centroid float64
	// Height is the apex height above baseline.
	Height float64
	// Area is the integrated intensity between the flanking minima.
	Area float64
	// SNR is the height over the MAD noise estimate.
	SNR float64
}

// Result is the deconvolution summary of one frame.
type Result struct {
	// Shard is the queue shard that served the request.
	Shard uint16
	// QueueWaitNs is the time the frame sat in the shard queue.
	QueueWaitNs uint64
	// ProcessNs is the wall time of the deconvolution itself.
	ProcessNs uint64
	// SimulatedNs is the modeled XD1 wall time (hybrid path; 0 on CPU).
	SimulatedNs uint64
	// Saturations counts fixed-point overflow events (hybrid path).
	Saturations uint64
	// Backend identifies the serving backend when the response crossed an
	// imsgw gateway: the 1-based index of the backend in the gateway's
	// configured fleet.  0 means the response came straight from a daemon
	// (no gateway, or a pre-cluster peer that sent no trailer).
	Backend uint16
	// Attempts counts the gateway delivery attempts this result took
	// (1 = first try, 2 = one sibling retry).  0 on a direct response.
	Attempts uint8
	// Flags carries per-result condition bits (ResultFlag*); it rides the
	// routing trailer's formerly-reserved byte, so pre-durability peers
	// that never set it decode unchanged.
	Flags uint8
	// Peaks are the strongest drift-profile peaks, height-descending.
	Peaks []PeakSummary
}

// ResultFlagNotDurable marks a result whose frame was acknowledged before
// its frame-log record reached stable storage (fsync policy interval or
// none): the work succeeded, but a host crash at the wrong moment could
// have lost the record.  Client.Do surfaces it as ErrNotDurable via
// Response.DurabilityError.
const ResultFlagNotDurable uint8 = 1 << 0

// maxResultPeaks bounds the peak list a RESULT may carry.
const maxResultPeaks = 64

// resultTrailerSize is the optional routing trailer a RESULT may end with:
// backend id u16, attempts u8, flags u8.  The gateway appends it when
// re-encoding an upstream result so clients can attribute responses to
// fleet members, and a daemon running a frame log uses the flags byte to
// mark durability; decoders accept payloads with or without it, keeping
// pre-cluster peers compatible.
const resultTrailerSize = 4

// EncodeResult serializes a RESULT payload.  The routing trailer is
// appended only when Backend, Attempts or Flags is set, so direct daemon
// responses are byte-identical to the pre-cluster encoding.
func EncodeResult(r *Result) ([]byte, error) {
	if len(r.Peaks) > maxResultPeaks {
		return nil, fmt.Errorf("acqserver: %d peaks exceed wire bound %d", len(r.Peaks), maxResultPeaks)
	}
	buf := make([]byte, 0, 2+8*4+2+32*len(r.Peaks)+resultTrailerSize)
	buf = binary.LittleEndian.AppendUint16(buf, r.Shard)
	buf = binary.LittleEndian.AppendUint64(buf, r.QueueWaitNs)
	buf = binary.LittleEndian.AppendUint64(buf, r.ProcessNs)
	buf = binary.LittleEndian.AppendUint64(buf, r.SimulatedNs)
	buf = binary.LittleEndian.AppendUint64(buf, r.Saturations)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Peaks)))
	for _, p := range r.Peaks {
		for _, v := range [4]float64{p.Centroid, p.Height, p.Area, p.SNR} {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	if r.Backend != 0 || r.Attempts != 0 || r.Flags != 0 {
		buf = binary.LittleEndian.AppendUint16(buf, r.Backend)
		buf = append(buf, r.Attempts, r.Flags)
	}
	return buf, nil
}

// DecodeResult parses a RESULT payload, with or without the routing
// trailer.
func DecodeResult(b []byte) (*Result, error) {
	const fixed = 2 + 8*4 + 2
	if len(b) < fixed {
		return nil, fmt.Errorf("acqserver: RESULT payload %d bytes, want >= %d", len(b), fixed)
	}
	r := &Result{
		Shard:       binary.LittleEndian.Uint16(b[0:2]),
		QueueWaitNs: binary.LittleEndian.Uint64(b[2:10]),
		ProcessNs:   binary.LittleEndian.Uint64(b[10:18]),
		SimulatedNs: binary.LittleEndian.Uint64(b[18:26]),
		Saturations: binary.LittleEndian.Uint64(b[26:34]),
	}
	n := int(binary.LittleEndian.Uint16(b[34:36]))
	if n > maxResultPeaks {
		return nil, fmt.Errorf("acqserver: RESULT declares %d peaks, bound is %d", n, maxResultPeaks)
	}
	switch len(b) {
	case fixed + 32*n:
	case fixed + 32*n + resultTrailerSize:
		pos := fixed + 32*n
		r.Backend = binary.LittleEndian.Uint16(b[pos : pos+2])
		r.Attempts = b[pos+2]
		r.Flags = b[pos+3]
	default:
		return nil, fmt.Errorf("acqserver: RESULT payload %d bytes, want %d or %d for %d peaks",
			len(b), fixed+32*n, fixed+32*n+resultTrailerSize, n)
	}
	r.Peaks = make([]PeakSummary, n)
	pos := fixed
	for i := range r.Peaks {
		r.Peaks[i] = PeakSummary{
			Centroid: math.Float64frombits(binary.LittleEndian.Uint64(b[pos : pos+8])),
			Height:   math.Float64frombits(binary.LittleEndian.Uint64(b[pos+8 : pos+16])),
			Area:     math.Float64frombits(binary.LittleEndian.Uint64(b[pos+16 : pos+24])),
			SNR:      math.Float64frombits(binary.LittleEndian.Uint64(b[pos+24 : pos+32])),
		}
		pos += 32
	}
	return r, nil
}

// maxErrorMessage bounds the message string an ERROR may carry.
const maxErrorMessage = 1024

// EncodeError serializes an ERROR payload.
func EncodeError(code Code, msg string) []byte {
	if len(msg) > maxErrorMessage {
		msg = msg[:maxErrorMessage]
	}
	buf := make([]byte, 0, 3+len(msg))
	buf = append(buf, byte(code))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg)))
	return append(buf, msg...)
}

// DecodeError parses an ERROR payload.
func DecodeError(b []byte) (Code, string, error) {
	if len(b) < 3 {
		return 0, "", fmt.Errorf("acqserver: ERROR payload %d bytes, want >= 3", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b[1:3]))
	if len(b) != 3+n {
		return 0, "", fmt.Errorf("acqserver: ERROR payload %d bytes, want %d", len(b), 3+n)
	}
	return Code(b[0]), string(b[3:]), nil
}

// ServerInfo is the HELLO_OK handshake summary.
type ServerInfo struct {
	// Version is the server's protocol version.
	Version uint8
	// Shards is the daemon's work-queue shard count.
	Shards uint16
	// Order is the m-sequence order frames must match (drift bins =
	// 2^Order − 1).
	Order uint8
	// MaxPayloadBytes is the largest payload the daemon accepts.
	MaxPayloadBytes uint32
}

// EncodeServerInfo serializes a HELLO_OK payload.
func EncodeServerInfo(si ServerInfo) []byte {
	buf := make([]byte, 0, 8)
	buf = append(buf, si.Version)
	buf = binary.LittleEndian.AppendUint16(buf, si.Shards)
	buf = append(buf, si.Order)
	return binary.LittleEndian.AppendUint32(buf, si.MaxPayloadBytes)
}

// DecodeServerInfo parses a HELLO_OK payload.
func DecodeServerInfo(b []byte) (ServerInfo, error) {
	if len(b) != 8 {
		return ServerInfo{}, fmt.Errorf("acqserver: HELLO_OK payload %d bytes, want 8", len(b))
	}
	return ServerInfo{
		Version:         b[0],
		Shards:          binary.LittleEndian.Uint16(b[1:3]),
		Order:           b[3],
		MaxPayloadBytes: binary.LittleEndian.Uint32(b[4:8]),
	}, nil
}

// FrameOptions are the per-request knobs carried in a FRAME payload's
// option prefix.
type FrameOptions struct {
	// Path selects the compute backend.
	Path Path
	// Deadline bounds queue wait + processing; zero means none.  On the
	// wire it is milliseconds (u32), so the ceiling is ~49.7 days.
	Deadline time.Duration
	// TraceID, when nonzero, names the frame's trace.  It rides the
	// version-2 header (not the options prefix) and is echoed on the
	// response — including error responses, so a client can log exactly
	// which frame was shed.  Ignored on a version-1 session.
	TraceID uint64
}

// encodeFrameOpts appends the 5-byte option prefix.
func encodeFrameOpts(dst []byte, o FrameOptions) []byte {
	ms := o.Deadline.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > int64(^uint32(0)) {
		ms = int64(^uint32(0))
	}
	dst = append(dst, byte(o.Path))
	return binary.LittleEndian.AppendUint32(dst, uint32(ms))
}

// SplitFramePayload splits an encoded FRAME payload — the bytes a client
// submits and a frame log captures — into its decoded FrameOptions prefix
// and the frameio-encoded frame bytes that follow.  Offline tools
// (framedump -log) use it to decode captured records without re-implementing
// the prefix layout.
func SplitFramePayload(payload []byte) (FrameOptions, []byte, error) {
	if len(payload) < frameOptsSize {
		return FrameOptions{}, nil, fmt.Errorf("acqserver: frame payload %d bytes, shorter than its %d-byte options prefix", len(payload), frameOptsSize)
	}
	opts, err := decodeFrameOpts(payload[:frameOptsSize])
	if err != nil {
		return FrameOptions{}, nil, err
	}
	return opts, payload[frameOptsSize:], nil
}

// decodeFrameOpts parses the option prefix.
func decodeFrameOpts(b []byte) (FrameOptions, error) {
	if len(b) != frameOptsSize {
		return FrameOptions{}, fmt.Errorf("acqserver: frame options %d bytes, want %d", len(b), frameOptsSize)
	}
	return FrameOptions{
		Path:     Path(b[0]),
		Deadline: time.Duration(binary.LittleEndian.Uint32(b[1:5])) * time.Millisecond,
	}, nil
}
