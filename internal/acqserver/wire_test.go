package acqserver

import (
	"bytes"
	"testing"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	// Version 0 encodes as version 1 for compatibility with old callers.
	h := Header{Type: MsgFrame, ReqID: 0xDEADBEEFCAFE, PayloadLen: 12345}
	buf := AppendHeader(nil, h)
	if len(buf) != headerSize {
		t.Fatalf("v1 header is %d bytes, want %d", len(buf), headerSize)
	}
	got, err := ReadHeader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	h.Version = ProtocolV1
	if got != h {
		t.Fatalf("round trip %+v != %+v", got, h)
	}

	h2 := Header{Version: ProtocolV2, Type: MsgResult, ReqID: 7, PayloadLen: 99, TraceID: 0xFEEDFACE}
	buf = AppendHeader(nil, h2)
	if len(buf) != headerSize+traceIDSize {
		t.Fatalf("v2 header is %d bytes, want %d", len(buf), headerSize+traceIDSize)
	}
	got, err = ReadHeader(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got != h2 {
		t.Fatalf("v2 round trip %+v != %+v", got, h2)
	}
	// A v1 reader never sees the trace id; a v1 header never carries one.
	if AppendHeader(nil, Header{Version: ProtocolV1, TraceID: 5})[4] != ProtocolV1 {
		t.Error("v1 header mis-versioned")
	}
	if len(AppendHeader(nil, Header{Version: ProtocolV1, TraceID: 5})) != headerSize {
		t.Error("v1 header grew a trace id")
	}
}

func TestHeaderRejectsBadMagicAndVersion(t *testing.T) {
	h := AppendHeader(nil, Header{Type: MsgHello})
	bad := append([]byte(nil), h...)
	bad[0] = 'X'
	if _, err := ReadHeader(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), h...)
	bad[4] = 99
	if _, err := ReadHeader(bytes.NewReader(bad)); err == nil {
		t.Error("future version accepted")
	}
}

func TestResultRoundTrip(t *testing.T) {
	r := &Result{
		Shard:       3,
		QueueWaitNs: 123456,
		ProcessNs:   789012,
		SimulatedNs: 42,
		Saturations: 7,
		Peaks: []PeakSummary{
			{Centroid: 12.5, Height: 1000, Area: 4800, SNR: 55.5},
			{Centroid: 200.25, Height: 10, Area: 31, SNR: 5.1},
		},
	}
	buf, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != r.Shard || got.QueueWaitNs != r.QueueWaitNs || got.SimulatedNs != r.SimulatedNs ||
		got.Saturations != r.Saturations || len(got.Peaks) != 2 || got.Peaks[1] != r.Peaks[1] {
		t.Fatalf("round trip %+v != %+v", got, r)
	}

	r.Peaks = make([]PeakSummary, maxResultPeaks+1)
	if _, err := EncodeResult(r); err == nil {
		t.Error("oversized peak list accepted")
	}
	if _, err := DecodeResult(buf[:10]); err == nil {
		t.Error("truncated RESULT accepted")
	}
}

func TestResultRoutingTrailer(t *testing.T) {
	// A direct result stays byte-identical to the pre-cluster encoding...
	direct := &Result{Shard: 1, ProcessNs: 5}
	plain, err := EncodeResult(direct)
	if err != nil {
		t.Fatal(err)
	}
	const fixed = 2 + 8*4 + 2
	if len(plain) != fixed {
		t.Fatalf("direct RESULT is %d bytes, want %d (no trailer)", len(plain), fixed)
	}
	got, err := DecodeResult(plain)
	if err != nil {
		t.Fatal(err)
	}
	if got.Backend != 0 || got.Attempts != 0 {
		t.Fatalf("direct RESULT decoded with routing fields %d/%d", got.Backend, got.Attempts)
	}

	// ...while a gateway-routed one round-trips the trailer, peaks intact.
	routed := &Result{
		Shard: 2, ProcessNs: 9, Backend: 3, Attempts: 2,
		Peaks: []PeakSummary{{Centroid: 1.5, Height: 10, Area: 20, SNR: 6}},
	}
	buf, err := EncodeResult(routed)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != fixed+32+resultTrailerSize {
		t.Fatalf("routed RESULT is %d bytes, want %d", len(buf), fixed+32+resultTrailerSize)
	}
	got, err = DecodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Backend != 3 || got.Attempts != 2 || len(got.Peaks) != 1 || got.Peaks[0] != routed.Peaks[0] {
		t.Fatalf("routed round trip %+v != %+v", got, routed)
	}

	// A mangled length that is neither with- nor without-trailer fails.
	if _, err := DecodeResult(buf[:len(buf)-1]); err == nil {
		t.Error("RESULT with partial trailer accepted")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	buf := EncodeError(CodeResourceExhausted, "shard 2 queue full")
	code, msg, err := DecodeError(buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != CodeResourceExhausted || msg != "shard 2 queue full" {
		t.Fatalf("got %v %q", code, msg)
	}
	long := EncodeError(CodeInternal, string(make([]byte, 5000)))
	if _, m, err := DecodeError(long); err != nil || len(m) != maxErrorMessage {
		t.Fatalf("long message not truncated: %d bytes, err %v", len(m), err)
	}
	if _, _, err := DecodeError([]byte{1}); err == nil {
		t.Error("truncated ERROR accepted")
	}
}

func TestServerInfoAndOptsRoundTrip(t *testing.T) {
	si := ServerInfo{Version: 1, Shards: 8, Order: 9, MaxPayloadBytes: 16 << 20}
	got, err := DecodeServerInfo(EncodeServerInfo(si))
	if err != nil {
		t.Fatal(err)
	}
	if got != si {
		t.Fatalf("round trip %+v != %+v", got, si)
	}

	o := FrameOptions{Path: PathCPU, Deadline: 1500 * time.Millisecond}
	gotO, err := decodeFrameOpts(encodeFrameOpts(nil, o))
	if err != nil {
		t.Fatal(err)
	}
	if gotO != o {
		t.Fatalf("round trip %+v != %+v", gotO, o)
	}
}

func TestStringers(t *testing.T) {
	if MsgFrame.String() != "FRAME" || Code(99).String() != "code(99)" ||
		CodeResourceExhausted.String() != "RESOURCE_EXHAUSTED" ||
		PathHybrid.String() != "hybrid" || Path(9).String() != "path(9)" {
		t.Error("stringer mismatch")
	}
}
