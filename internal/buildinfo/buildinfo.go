// Package buildinfo carries the link-time build identity.  The Makefile
// (and the smoke scripts) stamp these via
//
//	go build -ldflags "-X repro/internal/buildinfo.Version=v1.2.3 \
//	                   -X repro/internal/buildinfo.Commit=abc1234"
//
// and internal/telemetry/runtimemetrics exposes them as the build_info
// metric family, so every binary's /metrics answers "exactly which build
// is this" — the first question of any incident.  Unstamped builds
// (go test, go run) report the defaults below; the VCS metadata the Go
// toolchain embeds on its own still appears under go_build_info.
package buildinfo

// Version is the human-readable release identity (git describe), "dev"
// when the binary was built without stamping.
var Version = "dev"

// Commit is the VCS commit the binary was built from, "unknown" when the
// binary was built without stamping.
var Commit = "unknown"
