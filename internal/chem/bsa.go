// bsa.go embeds reference sequences and model peptides used by the
// reproduction workloads: the mature bovine serum albumin chain (the digest
// standard used in the PNNL multiplexed-IMS papers) and a panel of standard
// ESI calibrant peptides.
package chem

import "strings"

// bsaMature is the mature bovine serum albumin chain (UniProt P02769,
// residues 25–607 of the precursor; 583 residues, average mass ≈ 66.4 kDa).
const bsaMature = `
DTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPFDEHVKLVNELTEFAKTCVADESHA
GCEKSLHTLFGDELCKVASLRETYGDMADCCEKQEPERNECFLSHKDDSPDLPKLKPDPN
TLCDEFKADEKKFWGKYLYEIARRHPYFYAPELLYYANKYNGVFQECCQAEDKGACLLPK
IETMREKVLTSSARQRLRCASIQKFGERALKAWSVARLSQKFPKAEFVEVTKLVTDLTKV
HKECCHGDLLECADDRADLAKYICDNQDTISSKLKECCDKPLLEKSHCIAEVEKDAIPEN
LPPLTADFAEDKDVCKNYQEAKDAFLGSFLYEYSRRHPEYAVSVLLRLAKEYEATLEECC
AKDDPHACYSTVFDKLKHLVDEPQNLIKQNCDQFEKLGEYGFQNALIVRYTRKVPQVSTP
TLVEVSRSLGKVGTRCCTKPESERMPCTEDYLSLILNRLCVLHEKTPVSEKVTKCCTESL
VNRRPCFSALTPDETYVPKAFDEKLFTFHADICTLPDTEKQIKKQTALVELLKHKPKATE
EQLKTVMENFVAFVDKCCAADDKEACFAVEGPKLVVSTQTALA`

// BSA returns the mature bovine serum albumin protein.
func BSA() Protein {
	pr, err := NewProtein("BSA", strings.Join(strings.Fields(bsaMature), ""))
	if err != nil {
		panic("chem: embedded BSA sequence invalid: " + err.Error())
	}
	return pr
}

// StandardPeptide is a named model peptide with a literature identity.
type StandardPeptide struct {
	Name    string
	Peptide Peptide
}

// StandardPeptides returns the panel of well-characterized calibrant
// peptides used in the reproduction's spiking experiments (sequences as
// commonly used in ESI/IMS work; pyroglutamate and amidation are modeled as
// the unmodified chains).
func StandardPeptides() []StandardPeptide {
	defs := []struct{ name, seq string }{
		{"bradykinin", "RPPGFSPFR"},
		{"angiotensin I", "DRVYIHPFHL"},
		{"angiotensin II", "DRVYIHPF"},
		{"substance P", "RPKPQQFFGLM"},
		{"fibrinopeptide A", "ADSGEGDFLAEGGGVR"},
		{"neurotensin", "QLYENKPRRPYIL"},
		{"leucine enkephalin", "YGGFL"},
		{"methionine enkephalin", "YGGFM"},
		{"kemptide", "LRRASLG"},
		{"renin substrate", "DRVYIHPFHLLVYS"},
		{"bombesin", "QRLGNQWAVGHLM"},
		{"melittin", "GIGAVLKVLTTGLPALISWIKRKRQQ"},
	}
	out := make([]StandardPeptide, len(defs))
	for i, d := range defs {
		p, err := NewPeptide(d.seq)
		if err != nil {
			panic("chem: embedded standard peptide invalid: " + err.Error())
		}
		out[i] = StandardPeptide{Name: d.name, Peptide: p}
	}
	return out
}
