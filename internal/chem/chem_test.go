package chem

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestElementMasses(t *testing.T) {
	// Carbon-12 defines the scale.
	if Carbon.MonoisotopicMass() != 12.0 {
		t.Error("12C must be exactly 12")
	}
	// Average masses match standard atomic weights within 1e-3.
	cases := []struct {
		el   Element
		want float64
	}{
		{Hydrogen, 1.008}, {Carbon, 12.011}, {NitrogenE, 14.007}, {Oxygen, 15.999}, {Sulfur, 32.066},
	}
	for _, c := range cases {
		if got := c.el.AverageMass(); math.Abs(got-c.want) > 5e-3 {
			t.Errorf("%s average mass = %g, want ~%g", c.el.Symbol, got, c.want)
		}
	}
	// Abundances sum to ~1.
	for _, el := range []Element{Hydrogen, Carbon, NitrogenE, Oxygen, Sulfur} {
		var sum float64
		for _, iso := range el.Isotopes {
			sum += iso.Abundance
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Errorf("%s isotope abundances sum to %g", el.Symbol, sum)
		}
	}
}

func TestFormulaArithmetic(t *testing.T) {
	f := Formula{C: 2, H: 4, O: 1}
	g := Formula{C: 1, H: 2, N: 3, S: 1}
	sum := f.Add(g)
	if sum != (Formula{C: 3, H: 6, N: 3, O: 1, S: 1}) {
		t.Errorf("Add = %+v", sum)
	}
	if f.Scale(3) != (Formula{C: 6, H: 12, O: 3}) {
		t.Errorf("Scale = %+v", f.Scale(3))
	}
	if !f.Valid() {
		t.Error("positive formula should be valid")
	}
	if (Formula{C: -1}).Valid() {
		t.Error("negative formula should be invalid")
	}
}

func TestFormulaString(t *testing.T) {
	cases := []struct {
		f    Formula
		want string
	}{
		{Formula{C: 6, H: 12, O: 6}, "C6H12O6"},
		{Formula{H: 2, O: 1}, "H2O"},
		{Formula{C: 1, H: 1, N: 1, O: 1, S: 1}, "CHNOS"},
		{Formula{}, "∅"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String(%+v) = %s, want %s", c.f, got, c.want)
		}
	}
}

// TestWaterMass: H2O monoisotopic = 18.0105646.
func TestWaterMass(t *testing.T) {
	if got := WaterFormula.MonoisotopicMass(); math.Abs(got-18.0105646) > 1e-5 {
		t.Errorf("water mono mass = %g", got)
	}
}

// TestGlycineMass: glycine free amino acid = residue + water = 75.03203 Da.
func TestGlycineMass(t *testing.T) {
	p, err := NewPeptide("G")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MonoisotopicMass(); math.Abs(got-75.03203) > 1e-4 {
		t.Errorf("glycine mass = %g, want 75.03203", got)
	}
}

// TestBradykininMass: the classic reference — bradykinin (RPPGFSPFR)
// monoisotopic [M+H]+ = 1060.5692.
func TestBradykininMass(t *testing.T) {
	p, err := NewPeptide("RPPGFSPFR")
	if err != nil {
		t.Fatal(err)
	}
	mh, err := p.MZ(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mh-1060.5692) > 2e-3 {
		t.Errorf("bradykinin [M+H]+ = %g, want 1060.5692", mh)
	}
	mh2, _ := p.MZ(2)
	want2 := (p.MonoisotopicMass() + 2*ProtonMassDa) / 2
	if math.Abs(mh2-want2) > 1e-9 {
		t.Errorf("bradykinin 2+ mz = %g, want %g", mh2, want2)
	}
}

// TestAngiotensinIIMass: angiotensin II (DRVYIHPF) mono [M+H]+ = 1046.5418.
func TestAngiotensinIIMass(t *testing.T) {
	p, _ := NewPeptide("DRVYIHPF")
	mh, _ := p.MZ(1)
	if math.Abs(mh-1046.5418) > 2e-3 {
		t.Errorf("angiotensin II [M+H]+ = %g, want 1046.5418", mh)
	}
}

func TestPeptideValidation(t *testing.T) {
	if _, err := NewPeptide(""); err == nil {
		t.Error("empty peptide should fail")
	}
	if _, err := NewPeptide("AXZ"); err == nil {
		t.Error("invalid residues should fail")
	}
	p, err := NewPeptide(" acdefg ")
	if err != nil {
		t.Fatalf("lower case with spaces should normalize: %v", err)
	}
	if p.Sequence != "ACDEFG" {
		t.Errorf("normalized sequence = %s", p.Sequence)
	}
	if _, err := p.MZ(0); err == nil {
		t.Error("zero charge should fail")
	}
}

// TestMassAdditivity: mass of concatenated chain = sum of residue chains
// minus the extra water.  Property-based over random sequences.
func TestMassAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	letters := "ACDEFGHIKLMNPQRSTVWY"
	randSeq := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	f := func(la, lb uint8) bool {
		a := randSeq(int(la%20) + 1)
		b := randSeq(int(lb%20) + 1)
		pa, _ := NewPeptide(a)
		pb, _ := NewPeptide(b)
		pab, _ := NewPeptide(a + b)
		lhs := pab.MonoisotopicMass()
		rhs := pa.MonoisotopicMass() + pb.MonoisotopicMass() - WaterFormula.MonoisotopicMass()
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBasicSites(t *testing.T) {
	p, _ := NewPeptide("GAGA")
	if p.BasicSites() != 1 {
		t.Errorf("no basic residues: %d sites, want 1 (N-terminus)", p.BasicSites())
	}
	p2, _ := NewPeptide("RKHGA")
	if p2.BasicSites() != 4 {
		t.Errorf("RKH: %d sites, want 4", p2.BasicSites())
	}
}

func TestChargeStates(t *testing.T) {
	p, _ := NewPeptide("LVNELTEFAK") // tryptic BSA peptide
	states := p.ChargeStates()
	if len(states) == 0 {
		t.Fatal("no charge states")
	}
	var sum float64
	maxZ := 0
	for _, cs := range states {
		if cs.Z <= 0 {
			t.Errorf("non-positive charge %d", cs.Z)
		}
		if cs.Fraction < 0 || cs.Fraction > 1 {
			t.Errorf("fraction %g out of range", cs.Fraction)
		}
		sum += cs.Fraction
		if cs.Z > maxZ {
			maxZ = cs.Z
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %g", sum)
	}
	if maxZ > p.BasicSites() {
		t.Errorf("max charge %d exceeds basic sites %d", maxZ, p.BasicSites())
	}
	// A typical 10-residue tryptic peptide is predominantly 2+.
	best := states[0]
	for _, cs := range states {
		if cs.Fraction > best.Fraction {
			best = cs
		}
	}
	if best.Z != 2 {
		t.Errorf("dominant charge = %d, want 2 for a 10-mer tryptic peptide", best.Z)
	}
}

func TestCCS(t *testing.T) {
	p, _ := NewPeptide("DRVYIHPFHL") // angiotensin I
	ccs2, err := p.CCS(2)
	if err != nil {
		t.Fatal(err)
	}
	// Literature: angiotensin I 2+ CCS in N2 is ~330 Å².
	ccsA2 := ccs2 * 1e20
	if ccsA2 < 250 || ccsA2 > 420 {
		t.Errorf("angiotensin I 2+ CCS = %g Å², want 250-420", ccsA2)
	}
	// CCS grows with charge and mass.
	ccs3, _ := p.CCS(3)
	if ccs3 <= ccs2 {
		t.Error("CCS should grow with charge")
	}
	bigger, _ := NewPeptide("DRVYIHPFHLDRVYIHPFHL")
	ccsBig, _ := bigger.CCS(2)
	if ccsBig <= ccs2 {
		t.Error("CCS should grow with mass")
	}
	if _, err := p.CCS(0); err == nil {
		t.Error("zero charge should fail")
	}
	// High charge states use the extrapolated prefactor.
	ccs5, _ := p.CCS(5)
	if ccs5 <= ccs3 {
		t.Error("CCS should keep growing at high charge")
	}
}

func TestTrypticDigestOfKnownSequence(t *testing.T) {
	pr, err := NewProtein("toy", "AAAKBBBRCCCKPDDDR") // B invalid!
	if err == nil {
		t.Fatal("B should be rejected")
	}
	pr, err = NewProtein("toy", "AAAKGGGRCCCKPDDDR")
	if err != nil {
		t.Fatal(err)
	}
	peps, err := pr.Digest(Trypsin{}, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cleavage after K (pos 3), after R (pos 7); K at pos 11 is followed by
	// P — no cleavage; final R is the C-terminus.
	want := []string{"AAAK", "GGGR", "CCCKPDDDR"}
	if len(peps) != len(want) {
		t.Fatalf("got %d peptides %v, want %v", len(peps), peps, want)
	}
	for i, w := range want {
		if peps[i].Sequence != w {
			t.Errorf("peptide %d = %s, want %s", i, peps[i].Sequence, w)
		}
		if peps[i].MissedCleavages != 0 {
			t.Errorf("peptide %d has %d missed cleavages", i, peps[i].MissedCleavages)
		}
	}
}

// TestDigestReassembly: with no missed cleavages and no length filters, the
// concatenation of tryptic peptides reproduces the protein.
func TestDigestReassembly(t *testing.T) {
	pr := BSA()
	peps, err := pr.Digest(Trypsin{}, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, p := range peps {
		sb.WriteString(p.Sequence)
	}
	if sb.String() != pr.Sequence {
		t.Error("tryptic peptides do not reassemble the protein")
	}
	// Start offsets must be consistent.
	for _, p := range peps {
		if pr.Sequence[p.Start:p.Start+p.Len()] != p.Sequence {
			t.Fatalf("peptide start offset wrong for %s", p.Sequence)
		}
	}
}

func TestDigestMissedCleavages(t *testing.T) {
	pr, _ := NewProtein("toy", "AAAKGGGRCCCC")
	peps, _ := pr.Digest(Trypsin{}, 1, 1, 0)
	seqs := map[string]int{}
	for _, p := range peps {
		seqs[p.Sequence] = p.MissedCleavages
	}
	for _, want := range []string{"AAAK", "GGGR", "CCCC", "AAAKGGGR", "GGGRCCCC"} {
		if _, ok := seqs[want]; !ok {
			t.Errorf("missing peptide %s in %v", want, seqs)
		}
	}
	if seqs["AAAKGGGR"] != 1 {
		t.Error("AAAKGGGR should record one missed cleavage")
	}
	if _, err := pr.Digest(Trypsin{}, -1, 0, 0); err == nil {
		t.Error("negative missed cleavages should fail")
	}
}

func TestDigestLengthFilters(t *testing.T) {
	pr, _ := NewProtein("toy", "AAAKGGGGGGGGGGRCK")
	peps, _ := pr.Digest(Trypsin{}, 0, 5, 0)
	for _, p := range peps {
		if p.Len() < 5 {
			t.Errorf("peptide %s below min length", p.Sequence)
		}
	}
	peps, _ = pr.Digest(Trypsin{}, 0, 1, 5)
	for _, p := range peps {
		if p.Len() > 5 {
			t.Errorf("peptide %s above max length", p.Sequence)
		}
	}
}

func TestPepsinDigest(t *testing.T) {
	pr, _ := NewProtein("toy", "AAFAALAAWAAYAA")
	peps, _ := pr.Digest(Pepsin{}, 0, 1, 0)
	want := []string{"AAF", "AAL", "AAW", "AAY", "AA"}
	if len(peps) != len(want) {
		t.Fatalf("pepsin: got %v", peps)
	}
	for i, w := range want {
		if peps[i].Sequence != w {
			t.Errorf("pepsin peptide %d = %s, want %s", i, peps[i].Sequence, w)
		}
	}
	if (Pepsin{}).Name() != "pepsin" || (Trypsin{}).Name() != "trypsin" {
		t.Error("enzyme names wrong")
	}
}

// TestBSAProperties: the embedded BSA chain must have the canonical length
// and mass, and digest into the tens of detectable tryptic peptides used in
// the proteome-screen experiments.
func TestBSAProperties(t *testing.T) {
	pr := BSA()
	if got := len(pr.Sequence); got != 583 {
		t.Errorf("BSA length = %d, want 583", got)
	}
	if avg := pr.AverageMass(); avg < 66000 || avg > 67000 {
		t.Errorf("BSA average mass = %g, want ~66.4 kDa", avg)
	}
	peps, err := pr.Digest(Trypsin{}, 0, 6, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(peps) < 30 || len(peps) > 70 {
		t.Errorf("BSA detectable tryptic peptides = %d, want 30-70", len(peps))
	}
	// The classic BSA marker peptides must be present.
	seqs := map[string]bool{}
	for _, p := range peps {
		seqs[p.Sequence] = true
	}
	for _, marker := range []string{"LVNELTEFAK", "HLVDEPQNLIK", "YLYEIAR"} {
		if !seqs[marker] {
			t.Errorf("marker peptide %s missing from BSA digest", marker)
		}
	}
}

func TestIsotopicEnvelopeWater(t *testing.T) {
	env := WaterFormula.IsotopicEnvelope(1e-9)
	if len(env) < 2 {
		t.Fatalf("water envelope has %d peaks", len(env))
	}
	// Monoisotopic peak dominates at ~99.7%.
	if env[0].Abundance < 0.99 {
		t.Errorf("water monoisotopic abundance = %g", env[0].Abundance)
	}
	if math.Abs(env[0].MassDa-18.0105646) > 1e-4 {
		t.Errorf("water monoisotopic mass = %g", env[0].MassDa)
	}
	var sum float64
	for _, p := range env {
		sum += p.Abundance
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("envelope abundances sum to %g", sum)
	}
}

// TestIsotopicEnvelopePeptide: for a ~1 kDa peptide the M+1 peak is roughly
// half the monoisotopic peak (about 50 carbons × 1.07%).
func TestIsotopicEnvelopePeptide(t *testing.T) {
	p, _ := NewPeptide("RPPGFSPFR")
	f := p.Formula()
	env := f.IsotopicEnvelope(1e-8)
	if len(env) < 3 {
		t.Fatalf("envelope has %d peaks", len(env))
	}
	if env[0].Abundance < env[1].Abundance {
		t.Error("monoisotopic should dominate M+1 at 1 kDa")
	}
	ratio := env[1].Abundance / env[0].Abundance
	if ratio < 0.4 || ratio > 0.75 {
		t.Errorf("M+1/M ratio = %g, want 0.4-0.75 for ~1 kDa", ratio)
	}
	// Peaks spaced ~1.003 Da apart.
	spacing := env[1].MassDa - env[0].MassDa
	if math.Abs(spacing-1.003) > 0.01 {
		t.Errorf("isotope spacing = %g, want ~1.003", spacing)
	}
	// Envelope is sorted by mass.
	for i := 1; i < len(env); i++ {
		if env[i].MassDa <= env[i-1].MassDa {
			t.Fatal("envelope not sorted")
		}
	}
}

// TestIsotopicEnvelopeLargeProtein: for intact BSA the monoisotopic peak is
// negligible and the envelope is centred near the average mass.
func TestIsotopicEnvelopeLargeProtein(t *testing.T) {
	if testing.Short() {
		t.Skip("large convolution")
	}
	f := Peptide{Sequence: BSA().Sequence}.Formula()
	env := f.IsotopicEnvelope(1e-6)
	if len(env) < 10 {
		t.Fatalf("BSA envelope has %d peaks", len(env))
	}
	best := env[0]
	for _, p := range env {
		if p.Abundance > best.Abundance {
			best = p
		}
	}
	avg := f.AverageMass()
	if math.Abs(best.MassDa-avg) > 3 {
		t.Errorf("envelope apex %g differs from average mass %g by more than 3 Da", best.MassDa, avg)
	}
}

func TestInvalidFormulaEnvelope(t *testing.T) {
	if env := (Formula{C: -1}).IsotopicEnvelope(1e-6); env != nil {
		t.Error("invalid formula should yield nil envelope")
	}
}

func TestDecoy(t *testing.T) {
	p, _ := NewPeptide("LVNELTEFAK")
	d := p.Decoy()
	if d.Sequence != "AFETLENVLK" {
		t.Errorf("decoy = %s, want AFETLENVLK", d.Sequence)
	}
	// Same composition, same mass.
	if math.Abs(d.MonoisotopicMass()-p.MonoisotopicMass()) > 1e-9 {
		t.Error("decoy mass differs from target")
	}
	// C-terminal residue preserved (tryptic terminus).
	if d.Sequence[len(d.Sequence)-1] != 'K' {
		t.Error("decoy must preserve C-terminal residue")
	}
	short, _ := NewPeptide("AK")
	if short.Decoy().Sequence != "AK" {
		t.Error("2-mers are their own decoys")
	}
}

func TestSyntheticProtein(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pr, err := SyntheticProtein(rng, "syn", 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Sequence) != 500 {
		t.Errorf("length = %d", len(pr.Sequence))
	}
	if err := ValidateSequence(pr.Sequence); err != nil {
		t.Errorf("synthetic sequence invalid: %v", err)
	}
	// Determinism.
	rng2 := rand.New(rand.NewSource(32))
	pr2, _ := SyntheticProtein(rng2, "syn", 500)
	if pr.Sequence != pr2.Sequence {
		t.Error("synthetic protein not deterministic in seed")
	}
	// Leucine should be the most common residue over a long sequence.
	rngL := rand.New(rand.NewSource(33))
	long, _ := SyntheticProtein(rngL, "long", 100000)
	counts := map[byte]int{}
	for i := 0; i < len(long.Sequence); i++ {
		counts[long.Sequence[i]]++
	}
	for aa, c := range counts {
		if aa != 'L' && c > counts['L'] {
			t.Errorf("residue %c (%d) more common than L (%d)", aa, c, counts['L'])
		}
	}
	if _, err := SyntheticProtein(rng, "bad", 0); err == nil {
		t.Error("zero length should fail")
	}
}

func TestComplexMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	m, err := ComplexMatrix(rng, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) < 100 {
		t.Errorf("matrix has only %d peptides", len(m))
	}
	for _, ap := range m {
		if ap.Abundance <= 0 {
			t.Fatal("non-positive abundance")
		}
		if ap.Peptide.Len() < 6 || ap.Peptide.Len() > 30 {
			t.Fatalf("peptide length %d outside filter", ap.Peptide.Len())
		}
	}
	if _, err := ComplexMatrix(rng, 0, 1); err == nil {
		t.Error("zero proteins should fail")
	}
	if _, err := ComplexMatrix(rng, 1, -1); err == nil {
		t.Error("negative spread should fail")
	}
}

func TestSpikeLevels(t *testing.T) {
	levels := SpikeLevels(4, 1000, 0.1)
	want := []float64{1000, 100, 10, 1}
	for i := range want {
		if math.Abs(levels[i]-want[i]) > 1e-9 {
			t.Errorf("level %d = %g, want %g", i, levels[i], want[i])
		}
	}
}

func TestStandardPeptides(t *testing.T) {
	sp := StandardPeptides()
	if len(sp) < 10 {
		t.Fatalf("only %d standard peptides", len(sp))
	}
	names := map[string]bool{}
	for _, s := range sp {
		if names[s.Name] {
			t.Errorf("duplicate standard peptide %s", s.Name)
		}
		names[s.Name] = true
		if s.Peptide.Len() == 0 {
			t.Errorf("%s has empty sequence", s.Name)
		}
	}
	if !names["bradykinin"] || !names["angiotensin I"] {
		t.Error("canonical calibrants missing")
	}
}

func TestResidueFormulaErrors(t *testing.T) {
	if _, err := ResidueFormula('Z'); err == nil {
		t.Error("Z should be unknown")
	}
	f, err := ResidueFormula('W')
	if err != nil {
		t.Fatal(err)
	}
	// Tryptophan residue C11H10N2O = 186.079 Da.
	if math.Abs(f.MonoisotopicMass()-186.07931) > 1e-4 {
		t.Errorf("W residue mass = %g", f.MonoisotopicMass())
	}
}

func BenchmarkBSADigest(b *testing.B) {
	pr := BSA()
	for i := 0; i < b.N; i++ {
		if _, err := pr.Digest(Trypsin{}, 2, 6, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIsotopicEnvelope(b *testing.B) {
	p, _ := NewPeptide("LVNELTEFAKTCVADESHAGCEK")
	f := p.Formula()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.IsotopicEnvelope(1e-6)
	}
}
