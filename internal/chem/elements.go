// Package chem provides the biochemistry substrate for realistic workloads:
// elemental isotope distributions, amino-acid residue formulas, peptide and
// protein mass calculation, tryptic digestion, electrospray charge-state
// assignment, isotopic envelope computation, and collision-cross-section
// estimation for peptide ions.  The embedded bovine serum albumin sequence
// reproduces the digest workloads used throughout the PNNL IMS-TOF papers.
package chem

import (
	"fmt"
	"sort"
)

// Isotope is a single isotopic species of an element.
type Isotope struct {
	MassDa    float64 // exact mass in Da
	Abundance float64 // natural fractional abundance (0..1)
}

// Element is a chemical element with its natural isotope distribution,
// ordered by increasing mass.  The first entry is the monoisotopic species
// for all elements used here.
type Element struct {
	Symbol   string
	Isotopes []Isotope
}

// The elements occurring in unmodified peptides.
var (
	Hydrogen  = Element{"H", []Isotope{{1.0078250319, 0.999885}, {2.0141017780, 0.000115}}}
	Carbon    = Element{"C", []Isotope{{12.0, 0.9893}, {13.0033548378, 0.0107}}}
	NitrogenE = Element{"N", []Isotope{{14.0030740052, 0.99632}, {15.0001088984, 0.00368}}}
	Oxygen    = Element{"O", []Isotope{{15.9949146221, 0.99757}, {16.9991315, 0.00038}, {17.9991604, 0.00205}}}
	Sulfur    = Element{"S", []Isotope{{31.97207069, 0.9493}, {32.97145850, 0.0076}, {33.96786683, 0.0429}, {35.96708088, 0.0002}}}
)

// MonoisotopicMass returns the mass of the lightest (first) isotope.
func (e Element) MonoisotopicMass() float64 { return e.Isotopes[0].MassDa }

// AverageMass returns the abundance-weighted mean isotopic mass.
func (e Element) AverageMass() float64 {
	var m, w float64
	for _, iso := range e.Isotopes {
		m += iso.MassDa * iso.Abundance
		w += iso.Abundance
	}
	return m / w
}

// Formula is an elemental composition: counts of C, H, N, O and S atoms.
type Formula struct {
	C, H, N, O, S int
}

// Add returns the element-wise sum of two formulas.
func (f Formula) Add(g Formula) Formula {
	return Formula{f.C + g.C, f.H + g.H, f.N + g.N, f.O + g.O, f.S + g.S}
}

// Scale returns the formula with every count multiplied by k.
func (f Formula) Scale(k int) Formula {
	return Formula{f.C * k, f.H * k, f.N * k, f.O * k, f.S * k}
}

// MonoisotopicMass returns the monoisotopic mass of the formula in Da.
func (f Formula) MonoisotopicMass() float64 {
	return float64(f.C)*Carbon.MonoisotopicMass() +
		float64(f.H)*Hydrogen.MonoisotopicMass() +
		float64(f.N)*NitrogenE.MonoisotopicMass() +
		float64(f.O)*Oxygen.MonoisotopicMass() +
		float64(f.S)*Sulfur.MonoisotopicMass()
}

// AverageMass returns the average (chemical) mass of the formula in Da.
func (f Formula) AverageMass() float64 {
	return float64(f.C)*Carbon.AverageMass() +
		float64(f.H)*Hydrogen.AverageMass() +
		float64(f.N)*NitrogenE.AverageMass() +
		float64(f.O)*Oxygen.AverageMass() +
		float64(f.S)*Sulfur.AverageMass()
}

// Valid reports whether all counts are non-negative.
func (f Formula) Valid() bool {
	return f.C >= 0 && f.H >= 0 && f.N >= 0 && f.O >= 0 && f.S >= 0
}

// String renders the formula in Hill notation (C, H, then alphabetical).
func (f Formula) String() string {
	out := ""
	app := func(sym string, n int) {
		switch {
		case n == 1:
			out += sym
		case n > 1:
			out += fmt.Sprintf("%s%d", sym, n)
		}
	}
	app("C", f.C)
	app("H", f.H)
	app("N", f.N)
	app("O", f.O)
	app("S", f.S)
	if out == "" {
		return "∅"
	}
	return out
}

// elementCounts lists the formula as (element, count) pairs for iteration,
// skipping zero counts.
func (f Formula) elementCounts() []struct {
	El    Element
	Count int
} {
	all := []struct {
		El    Element
		Count int
	}{
		{Carbon, f.C}, {Hydrogen, f.H}, {NitrogenE, f.N}, {Oxygen, f.O}, {Sulfur, f.S},
	}
	out := all[:0]
	for _, e := range all {
		if e.Count > 0 {
			out = append(out, e)
		}
	}
	return out
}

// IsotopePeak is one peak of an isotopic envelope.
type IsotopePeak struct {
	MassDa    float64 // exact mass of this isotopologue cluster
	Abundance float64 // relative abundance, envelope normalized to sum 1
}

// IsotopicEnvelope computes the isotopic distribution of the formula by
// iterated polynomial convolution of the elemental distributions, pruning
// species below pruneBelow relative abundance (e.g. 1e-6).  Peaks within
// half a unit mass are merged; the result is sorted by mass and normalized
// to unit total abundance.
func (f Formula) IsotopicEnvelope(pruneBelow float64) []IsotopePeak {
	if !f.Valid() {
		return nil
	}
	dist := []IsotopePeak{{0, 1}}
	for _, ec := range f.elementCounts() {
		single := make([]IsotopePeak, len(ec.El.Isotopes))
		for i, iso := range ec.El.Isotopes {
			single[i] = IsotopePeak{iso.MassDa, iso.Abundance}
		}
		// Convolve count times using binary exponentiation of distributions.
		powered := distPower(single, ec.Count, pruneBelow)
		dist = convolveDist(dist, powered, pruneBelow)
	}
	return normalizeDist(dist)
}

func distPower(d []IsotopePeak, k int, prune float64) []IsotopePeak {
	result := []IsotopePeak{{0, 1}}
	base := d
	for k > 0 {
		if k&1 == 1 {
			result = convolveDist(result, base, prune)
		}
		base = convolveDist(base, base, prune)
		k >>= 1
	}
	return result
}

func convolveDist(a, b []IsotopePeak, prune float64) []IsotopePeak {
	type bucket struct {
		mass, ab float64
	}
	buckets := map[int]bucket{}
	for _, pa := range a {
		for _, pb := range b {
			ab := pa.Abundance * pb.Abundance
			if ab < prune*1e-3 {
				continue
			}
			m := pa.MassDa + pb.MassDa
			key := int(m*2 + 0.5) // half-Dalton buckets
			bk := buckets[key]
			bk.mass += m * ab // abundance-weighted mass accumulation
			bk.ab += ab
			buckets[key] = bk
		}
	}
	out := make([]IsotopePeak, 0, len(buckets))
	for _, bk := range buckets {
		if bk.ab < prune {
			continue
		}
		out = append(out, IsotopePeak{bk.mass / bk.ab, bk.ab})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MassDa < out[j].MassDa })
	return out
}

func normalizeDist(d []IsotopePeak) []IsotopePeak {
	var total float64
	for _, p := range d {
		total += p.Abundance
	}
	if total == 0 {
		return d
	}
	out := make([]IsotopePeak, len(d))
	for i, p := range d {
		out[i] = IsotopePeak{p.MassDa, p.Abundance / total}
	}
	return out
}

// ProtonMassDa is the mass added per charge in positive-mode ESI.
const ProtonMassDa = 1.00727646688

// WaterFormula is H2O, the mass added when residues condense into a chain.
var WaterFormula = Formula{H: 2, O: 1}
