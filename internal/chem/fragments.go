// fragments.go: collision-induced dissociation chemistry.  CID of a
// protonated peptide cleaves the backbone amide bonds, producing the b ion
// series (N-terminal fragments) and the y ion series (C-terminal fragments
// retaining the new N-terminus' proton plus water) — the sequence ladder
// that tandem mass spectrometry reads.
package chem

import "fmt"

// FragmentKind distinguishes the ion series.
type FragmentKind byte

const (
	// BIon is an N-terminal fragment (residues 1..i, acylium form).
	BIon FragmentKind = 'b'
	// YIon is a C-terminal fragment (residues i+1..n plus water).
	YIon FragmentKind = 'y'
)

// Fragment is one backbone fragment ion of a peptide.
type Fragment struct {
	Kind FragmentKind
	// Index is the series index: b2 has Index 2 (first two residues),
	// y3 the last three.
	Index int
	// Sequence is the fragment's residue span.
	Sequence string
	// NeutralMassDa is the neutral fragment mass (for b ions, the acylium
	// neutral equivalent M such that the 1+ ion is M + proton).
	NeutralMassDa float64
}

// MZ returns the fragment's m/z at the given positive charge.
func (f Fragment) MZ(z int) (float64, error) {
	if z <= 0 {
		return 0, fmt.Errorf("chem: fragment charge %d must be positive", z)
	}
	return (f.NeutralMassDa + float64(z)*ProtonMassDa) / float64(z), nil
}

// Name renders "b4" / "y7".
func (f Fragment) Name() string { return fmt.Sprintf("%c%d", f.Kind, f.Index) }

// BYIons returns the full b and y series of the peptide: b1..b(n−1) and
// y1..y(n−1).  (b1 ions are rarely observed but included for completeness;
// callers may filter.)
func BYIons(p Peptide) ([]Fragment, error) {
	n := p.Len()
	if n < 2 {
		return nil, fmt.Errorf("chem: peptide %q too short to fragment", p.Sequence)
	}
	out := make([]Fragment, 0, 2*(n-1))
	// b series: cumulative residue masses.
	var acc float64
	for i := 1; i < n; i++ {
		f, err := ResidueFormula(p.Sequence[i-1])
		if err != nil {
			return nil, err
		}
		acc += f.MonoisotopicMass()
		out = append(out, Fragment{
			Kind:          BIon,
			Index:         i,
			Sequence:      p.Sequence[:i],
			NeutralMassDa: acc,
		})
	}
	// y series: cumulative from the C terminus plus water.
	acc = WaterFormula.MonoisotopicMass()
	for i := 1; i < n; i++ {
		f, err := ResidueFormula(p.Sequence[n-i])
		if err != nil {
			return nil, err
		}
		acc += f.MonoisotopicMass()
		out = append(out, Fragment{
			Kind:          YIon,
			Index:         i,
			Sequence:      p.Sequence[n-i:],
			NeutralMassDa: acc,
		})
	}
	return out, nil
}

// DominantFragments returns the subset of the b/y series most prominent in
// low-energy CID of tryptic peptides: y ions of length ≥ 2 and b ions of
// length ≥ 2, excluding the near-complete fragments (index > n−2) whose
// m/z crowds the precursor.
func DominantFragments(p Peptide) ([]Fragment, error) {
	all, err := BYIons(p)
	if err != nil {
		return nil, err
	}
	n := p.Len()
	var out []Fragment
	for _, f := range all {
		if f.Index >= 2 && f.Index <= n-2 {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chem: peptide %q yields no dominant fragments", p.Sequence)
	}
	return out, nil
}

// FragmentComplementarity checks the b/y mass relationship:
// b_i + y_(n−i) = M + water for every complementary pair — a structural
// invariant used by tests and by spectrum validation.
func FragmentComplementarity(p Peptide, frags []Fragment) error {
	n := p.Len()
	total := p.MonoisotopicMass()
	byIdx := map[string]Fragment{}
	for _, f := range frags {
		byIdx[f.Name()] = f
	}
	for i := 1; i < n; i++ {
		b, okB := byIdx[fmt.Sprintf("b%d", i)]
		y, okY := byIdx[fmt.Sprintf("y%d", n-i)]
		if !okB || !okY {
			continue
		}
		sum := b.NeutralMassDa + y.NeutralMassDa
		if diff := sum - total; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("chem: b%d + y%d = %.6f, want %.6f", i, n-i, sum, total)
		}
	}
	return nil
}
