package chem

import (
	"math"
	"testing"
)

func TestBYIonsCount(t *testing.T) {
	p, _ := NewPeptide("LVNELTEFAK")
	frags, err := BYIons(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 18 { // 9 b + 9 y for a 10-mer
		t.Fatalf("fragments %d, want 18", len(frags))
	}
	var bs, ys int
	for _, f := range frags {
		switch f.Kind {
		case BIon:
			bs++
		case YIon:
			ys++
		}
		if f.Index < 1 || f.Index > 9 {
			t.Errorf("fragment %s index out of range", f.Name())
		}
		if f.NeutralMassDa <= 0 {
			t.Errorf("fragment %s non-positive mass", f.Name())
		}
	}
	if bs != 9 || ys != 9 {
		t.Errorf("b %d y %d", bs, ys)
	}
}

// TestClassicYIons: the universal tryptic anchors — y1 of K = 147.1128,
// y1 of R = 175.1190 (singly protonated).
func TestClassicYIons(t *testing.T) {
	pk, _ := NewPeptide("AK")
	frags, _ := BYIons(pk)
	for _, f := range frags {
		if f.Kind == YIon && f.Index == 1 {
			mz, err := f.MZ(1)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(mz-147.11281) > 1e-3 {
				t.Errorf("y1(K) = %g, want 147.1128", mz)
			}
			if f.Sequence != "K" {
				t.Errorf("y1 sequence %q", f.Sequence)
			}
		}
	}
	pr, _ := NewPeptide("AR")
	frags, _ = BYIons(pr)
	for _, f := range frags {
		if f.Kind == YIon && f.Index == 1 {
			mz, _ := f.MZ(1)
			if math.Abs(mz-175.11895) > 1e-3 {
				t.Errorf("y1(R) = %g, want 175.1190", mz)
			}
		}
	}
}

// TestB2Ion: b2 of "AG..." = A + G residues + proton = 129.0659 at 1+.
func TestB2Ion(t *testing.T) {
	p, _ := NewPeptide("AGK")
	frags, _ := BYIons(p)
	for _, f := range frags {
		if f.Kind == BIon && f.Index == 2 {
			mz, _ := f.MZ(1)
			if math.Abs(mz-129.06585) > 1e-3 {
				t.Errorf("b2(AG) = %g, want 129.0659", mz)
			}
			if f.Sequence != "AG" {
				t.Errorf("b2 sequence %q", f.Sequence)
			}
		}
	}
}

// TestFragmentComplementarity: b_i + y_(n-i) = M for every pair, across a
// spread of peptides.
func TestFragmentComplementarity(t *testing.T) {
	for _, seq := range []string{"LVNELTEFAK", "RPPGFSPFR", "HLVDEPQNLIK", "ADSGEGDFLAEGGGVR"} {
		p, _ := NewPeptide(seq)
		frags, err := BYIons(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := FragmentComplementarity(p, frags); err != nil {
			t.Errorf("%s: %v", seq, err)
		}
	}
}

func TestDominantFragments(t *testing.T) {
	p, _ := NewPeptide("LVNELTEFAK")
	dom, err := DominantFragments(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range dom {
		if f.Index < 2 || f.Index > p.Len()-2 {
			t.Errorf("dominant fragment %s outside [2, n-2]", f.Name())
		}
	}
	all, _ := BYIons(p)
	if len(dom) >= len(all) {
		t.Error("dominant set should be a strict subset")
	}
	// Too-short peptides.
	tiny, _ := NewPeptide("AG")
	if _, err := BYIons(Peptide{Sequence: "A"}); err == nil {
		t.Error("1-mer should not fragment")
	}
	if _, err := DominantFragments(tiny); err == nil {
		t.Error("2-mer has no dominant fragments")
	}
}

func TestFragmentMZErrors(t *testing.T) {
	f := Fragment{Kind: BIon, Index: 2, NeutralMassDa: 200}
	if _, err := f.MZ(0); err == nil {
		t.Error("zero charge should fail")
	}
	mz2, _ := f.MZ(2)
	want := (200 + 2*ProtonMassDa) / 2
	if math.Abs(mz2-want) > 1e-9 {
		t.Errorf("2+ fragment m/z %g, want %g", mz2, want)
	}
	if f.Name() != "b2" {
		t.Errorf("name %q", f.Name())
	}
}
