// modifications.go: post-translational and chemical modifications.  A
// Modification changes a peptide's elemental composition; ModifiedPeptide
// couples a peptide with its applied modifications so masses, m/z and
// isotope envelopes reflect the modified form.
package chem

import (
	"fmt"
	"strings"
)

// Modification is a named elemental delta applied per modified residue.
type Modification struct {
	Name string
	// Target is the one-letter residue the modification attaches to, or 0
	// for termini/any.
	Target byte
	// Delta is the composition change (may include negative counts for
	// losses, e.g. water loss).
	Delta Formula
	// DeltaMassDa caches the monoisotopic shift.
	DeltaMassDa float64
}

// Common modifications in proteomics workflows.
var (
	// Carbamidomethyl is the iodoacetamide alkylation of cysteine
	// (+57.02146 Da), applied during standard digest preparation.
	Carbamidomethyl = mustMod("carbamidomethyl", 'C', Formula{C: 2, H: 3, N: 1, O: 1})
	// OxidationMet is methionine oxidation (+15.99491 Da).
	OxidationMet = mustMod("oxidation", 'M', Formula{O: 1})
	// PhosphoST is serine/threonine phosphorylation (+79.96633 Da = HPO3).
	// The Formula type tracks CHNOS only; the phosphorus atom enters
	// through an explicit monoisotopic mass correction in mustMod, keeping
	// the formula system closed over CHNOS.
	PhosphoST = mustMod("phospho", 'S', Formula{H: 1, O: 3})
)

// phosphorusMassDa is the monoisotopic mass of 31P.
const phosphorusMassDa = 30.97376151

func mustMod(name string, target byte, delta Formula) Modification {
	m := Modification{Name: name, Target: target, Delta: delta}
	m.DeltaMassDa = delta.MonoisotopicMass()
	if name == "phospho" {
		// HPO3: the P atom is outside the CHNOS formula system.
		m.DeltaMassDa += phosphorusMassDa
	}
	return m
}

// ModifiedPeptide is a peptide with modifications applied at specific
// zero-based residue positions.
type ModifiedPeptide struct {
	Peptide Peptide
	// Sites maps residue position to the applied modification.
	Sites map[int]Modification
}

// NewModifiedPeptide validates the sites against the sequence.
func NewModifiedPeptide(p Peptide, sites map[int]Modification) (ModifiedPeptide, error) {
	for pos, mod := range sites {
		if pos < 0 || pos >= p.Len() {
			return ModifiedPeptide{}, fmt.Errorf("chem: modification site %d outside peptide of %d residues", pos, p.Len())
		}
		if mod.Target != 0 && p.Sequence[pos] != mod.Target && !(mod.Name == "phospho" && p.Sequence[pos] == 'T') {
			return ModifiedPeptide{}, fmt.Errorf("chem: %s targets %c but residue %d is %c",
				mod.Name, mod.Target, pos, p.Sequence[pos])
		}
	}
	copied := make(map[int]Modification, len(sites))
	for k, v := range sites {
		copied[k] = v
	}
	return ModifiedPeptide{Peptide: p, Sites: copied}, nil
}

// MonoisotopicMass returns the modified monoisotopic mass.
func (mp ModifiedPeptide) MonoisotopicMass() float64 {
	m := mp.Peptide.MonoisotopicMass()
	for _, mod := range mp.Sites {
		m += mod.DeltaMassDa
	}
	return m
}

// MZ returns the modified [M + z·H]^z+ mass-to-charge ratio.
func (mp ModifiedPeptide) MZ(z int) (float64, error) {
	if z <= 0 {
		return 0, fmt.Errorf("chem: charge %d must be positive", z)
	}
	return (mp.MonoisotopicMass() + float64(z)*ProtonMassDa) / float64(z), nil
}

// String renders the modified peptide as SEQ with site annotations,
// e.g. "LVNELTEFAK [oxidation@5]".
func (mp ModifiedPeptide) String() string {
	if len(mp.Sites) == 0 {
		return mp.Peptide.Sequence
	}
	var anns []string
	for pos := 0; pos < mp.Peptide.Len(); pos++ {
		if mod, ok := mp.Sites[pos]; ok {
			anns = append(anns, fmt.Sprintf("%s@%d", mod.Name, pos))
		}
	}
	return mp.Peptide.Sequence + " [" + strings.Join(anns, ",") + "]"
}

// CarbamidomethylateAll returns the peptide with every cysteine alkylated —
// the standard preparation state of a tryptic digest.
func CarbamidomethylateAll(p Peptide) ModifiedPeptide {
	sites := map[int]Modification{}
	for i := 0; i < p.Len(); i++ {
		if p.Sequence[i] == 'C' {
			sites[i] = Carbamidomethyl
		}
	}
	return ModifiedPeptide{Peptide: p, Sites: sites}
}

// Variants enumerates modification states of a peptide: for each candidate
// site of the modification, present or absent, up to maxSites applied
// (combinatorially bounded for search-space control).
func Variants(p Peptide, mod Modification, maxSites int) []ModifiedPeptide {
	var candidates []int
	for i := 0; i < p.Len(); i++ {
		r := p.Sequence[i]
		if r == mod.Target || (mod.Name == "phospho" && (r == 'S' || r == 'T')) {
			candidates = append(candidates, i)
		}
	}
	out := []ModifiedPeptide{{Peptide: p, Sites: map[int]Modification{}}}
	if maxSites < 1 {
		return out
	}
	// Breadth-first subset enumeration bounded by maxSites.
	var rec func(start, used int, current map[int]Modification)
	rec = func(start, used int, current map[int]Modification) {
		if used == maxSites {
			return
		}
		for ci := start; ci < len(candidates); ci++ {
			next := make(map[int]Modification, len(current)+1)
			for k, v := range current {
				next[k] = v
			}
			next[candidates[ci]] = mod
			out = append(out, ModifiedPeptide{Peptide: p, Sites: next})
			rec(ci+1, used+1, next)
		}
	}
	rec(0, 0, map[int]Modification{})
	return out
}
