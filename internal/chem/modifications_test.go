package chem

import (
	"math"
	"strings"
	"testing"
)

func TestModificationMassDeltas(t *testing.T) {
	cases := []struct {
		mod  Modification
		want float64
	}{
		{Carbamidomethyl, 57.02146},
		{OxidationMet, 15.99491},
		{PhosphoST, 79.96633},
	}
	for _, c := range cases {
		if math.Abs(c.mod.DeltaMassDa-c.want) > 1e-4 {
			t.Errorf("%s delta = %g, want %g", c.mod.Name, c.mod.DeltaMassDa, c.want)
		}
	}
}

func TestModifiedPeptideMass(t *testing.T) {
	p, _ := NewPeptide("TCVADESHAGCEK") // two cysteines at 1 and 10
	mp := CarbamidomethylateAll(p)
	if len(mp.Sites) != 2 {
		t.Fatalf("alkylated %d sites, want 2", len(mp.Sites))
	}
	want := p.MonoisotopicMass() + 2*Carbamidomethyl.DeltaMassDa
	if math.Abs(mp.MonoisotopicMass()-want) > 1e-9 {
		t.Errorf("modified mass %g, want %g", mp.MonoisotopicMass(), want)
	}
	mz, err := mp.MZ(2)
	if err != nil {
		t.Fatal(err)
	}
	wantMZ := (want + 2*ProtonMassDa) / 2
	if math.Abs(mz-wantMZ) > 1e-9 {
		t.Errorf("modified m/z %g, want %g", mz, wantMZ)
	}
	if _, err := mp.MZ(0); err == nil {
		t.Error("zero charge should fail")
	}
}

func TestNewModifiedPeptideValidation(t *testing.T) {
	p, _ := NewPeptide("LVNELTEFAK")
	// M oxidation on a peptide without M.
	if _, err := NewModifiedPeptide(p, map[int]Modification{0: OxidationMet}); err == nil {
		t.Error("oxidation on L should fail")
	}
	// Out of range.
	if _, err := NewModifiedPeptide(p, map[int]Modification{99: OxidationMet}); err == nil {
		t.Error("site out of range should fail")
	}
	// Phospho accepts both S and T.
	pt, _ := NewPeptide("ASTK")
	if _, err := NewModifiedPeptide(pt, map[int]Modification{1: PhosphoST}); err != nil {
		t.Errorf("phospho on S: %v", err)
	}
	if _, err := NewModifiedPeptide(pt, map[int]Modification{2: PhosphoST}); err != nil {
		t.Errorf("phospho on T: %v", err)
	}
	// Sites map is copied.
	sites := map[int]Modification{1: PhosphoST}
	mp, _ := NewModifiedPeptide(pt, sites)
	delete(sites, 1)
	if len(mp.Sites) != 1 {
		t.Error("sites must be copied")
	}
}

func TestModifiedPeptideString(t *testing.T) {
	p, _ := NewPeptide("AMK")
	mp, _ := NewModifiedPeptide(p, map[int]Modification{1: OxidationMet})
	s := mp.String()
	if !strings.Contains(s, "AMK") || !strings.Contains(s, "oxidation@1") {
		t.Errorf("string = %q", s)
	}
	plain, _ := NewModifiedPeptide(p, nil)
	if plain.String() != "AMK" {
		t.Errorf("unmodified string = %q", plain.String())
	}
}

func TestVariants(t *testing.T) {
	p, _ := NewPeptide("ASTSK") // S at 1, 3; T at 2 → 3 phospho candidates
	vs := Variants(p, PhosphoST, 2)
	// Subsets of size 0,1,2 of 3 candidates: 1 + 3 + 3 = 7.
	if len(vs) != 7 {
		t.Fatalf("variants %d, want 7", len(vs))
	}
	// All variants are distinct site sets and valid.
	seen := map[string]bool{}
	for _, v := range vs {
		key := v.String()
		if seen[key] {
			t.Errorf("duplicate variant %s", key)
		}
		seen[key] = true
		if len(v.Sites) > 2 {
			t.Errorf("variant %s exceeds maxSites", key)
		}
	}
	// Mass ladder: each added phospho adds the delta.
	base := vs[0].MonoisotopicMass()
	for _, v := range vs {
		want := base + float64(len(v.Sites))*PhosphoST.DeltaMassDa
		if math.Abs(v.MonoisotopicMass()-want) > 1e-9 {
			t.Errorf("variant %s mass %g, want %g", v.String(), v.MonoisotopicMass(), want)
		}
	}
	// maxSites 0: only the unmodified form.
	if got := Variants(p, PhosphoST, 0); len(got) != 1 {
		t.Errorf("maxSites 0 variants %d", len(got))
	}
	// Peptide with no candidate sites.
	pn, _ := NewPeptide("GAVLK")
	if got := Variants(pn, PhosphoST, 3); len(got) != 1 {
		t.Errorf("no-site variants %d", len(got))
	}
}

func TestAdditionalEnzymes(t *testing.T) {
	pr, _ := NewProtein("toy", "AAKPGGKEEFWAYLPR")
	// LysC cleaves after every K, including K before P.
	lys, _ := pr.Digest(LysC{}, 0, 1, 0)
	var lysSeqs []string
	for _, p := range lys {
		lysSeqs = append(lysSeqs, p.Sequence)
	}
	if strings.Join(lysSeqs, "|") != "AAK|PGGK|EEFWAYLPR" {
		t.Errorf("lys-c: %v", lysSeqs)
	}
	// GluC cleaves after E.
	glu, _ := pr.Digest(GluC{}, 0, 1, 0)
	var gluSeqs []string
	for _, p := range glu {
		gluSeqs = append(gluSeqs, p.Sequence)
	}
	if strings.Join(gluSeqs, "|") != "AAKPGGKE|E|FWAYLPR" {
		t.Errorf("glu-c: %v", gluSeqs)
	}
	// Chymotrypsin: after F, W, Y unless before P (Y at 12 precedes L, F
	// at 9 precedes W...).
	chy, _ := pr.Digest(Chymotrypsin{}, 0, 1, 0)
	var chySeqs []string
	for _, p := range chy {
		chySeqs = append(chySeqs, p.Sequence)
	}
	if strings.Join(chySeqs, "|") != "AAKPGGKEEF|W|AY|LPR" {
		t.Errorf("chymotrypsin: %v", chySeqs)
	}
	if (LysC{}).Name() != "lys-c" || (GluC{}).Name() != "glu-c" || (Chymotrypsin{}).Name() != "chymotrypsin" {
		t.Error("enzyme names wrong")
	}
}

// TestChymotrypsinProlineRule: no cleavage when the aromatic precedes P.
func TestChymotrypsinProlineRule(t *testing.T) {
	pr, _ := NewProtein("toy", "AAFPGGK")
	peps, _ := pr.Digest(Chymotrypsin{}, 0, 1, 0)
	if len(peps) != 1 || peps[0].Sequence != "AAFPGGK" {
		t.Errorf("F before P should not cleave: %v", peps)
	}
}
