// peptide.go: amino-acid residue chemistry, peptides, proteins, and
// electrospray charge-state assignment.
package chem

import (
	"fmt"
	"math"
	"strings"
)

// residueFormulas maps the 20 standard amino-acid one-letter codes to their
// residue (dehydrated) elemental compositions.
var residueFormulas = map[byte]Formula{
	'G': {C: 2, H: 3, N: 1, O: 1},
	'A': {C: 3, H: 5, N: 1, O: 1},
	'S': {C: 3, H: 5, N: 1, O: 2},
	'P': {C: 5, H: 7, N: 1, O: 1},
	'V': {C: 5, H: 9, N: 1, O: 1},
	'T': {C: 4, H: 7, N: 1, O: 2},
	'C': {C: 3, H: 5, N: 1, O: 1, S: 1},
	'L': {C: 6, H: 11, N: 1, O: 1},
	'I': {C: 6, H: 11, N: 1, O: 1},
	'N': {C: 4, H: 6, N: 2, O: 2},
	'D': {C: 4, H: 5, N: 1, O: 3},
	'Q': {C: 5, H: 8, N: 2, O: 2},
	'K': {C: 6, H: 12, N: 2, O: 1},
	'E': {C: 5, H: 7, N: 1, O: 3},
	'M': {C: 5, H: 9, N: 1, O: 1, S: 1},
	'H': {C: 6, H: 7, N: 3, O: 1},
	'F': {C: 9, H: 9, N: 1, O: 1},
	'R': {C: 6, H: 12, N: 4, O: 1},
	'Y': {C: 9, H: 9, N: 1, O: 2},
	'W': {C: 11, H: 10, N: 2, O: 1},
}

// ResidueFormula returns the residue composition for a one-letter amino
// acid code.
func ResidueFormula(code byte) (Formula, error) {
	f, ok := residueFormulas[code]
	if !ok {
		return Formula{}, fmt.Errorf("chem: unknown amino acid %q", string(code))
	}
	return f, nil
}

// ValidateSequence reports the first invalid residue code in seq, if any.
func ValidateSequence(seq string) error {
	if len(seq) == 0 {
		return fmt.Errorf("chem: empty sequence")
	}
	for i := 0; i < len(seq); i++ {
		if _, ok := residueFormulas[seq[i]]; !ok {
			return fmt.Errorf("chem: invalid residue %q at position %d", string(seq[i]), i)
		}
	}
	return nil
}

// Peptide is a linear chain of amino-acid residues.
type Peptide struct {
	Sequence string
	// Start is the zero-based position of the peptide within its parent
	// protein, -1 if free-standing.
	Start int
	// MissedCleavages counts enzyme sites skipped inside the peptide.
	MissedCleavages int
}

// NewPeptide validates the sequence and returns the peptide.
func NewPeptide(seq string) (Peptide, error) {
	seq = strings.ToUpper(strings.TrimSpace(seq))
	if err := ValidateSequence(seq); err != nil {
		return Peptide{}, err
	}
	return Peptide{Sequence: seq, Start: -1}, nil
}

// Formula returns the elemental composition of the intact (hydrated)
// peptide: the sum of residue formulas plus one water.
func (p Peptide) Formula() Formula {
	f := WaterFormula
	for i := 0; i < len(p.Sequence); i++ {
		f = f.Add(residueFormulas[p.Sequence[i]])
	}
	return f
}

// MonoisotopicMass returns the neutral monoisotopic mass in Da.
func (p Peptide) MonoisotopicMass() float64 { return p.Formula().MonoisotopicMass() }

// AverageMass returns the neutral average mass in Da.
func (p Peptide) AverageMass() float64 { return p.Formula().AverageMass() }

// Len returns the number of residues.
func (p Peptide) Len() int { return len(p.Sequence) }

// MZ returns the mass-to-charge ratio of the [M + z·H]^z+ ion.
func (p Peptide) MZ(z int) (float64, error) {
	if z <= 0 {
		return 0, fmt.Errorf("chem: charge %d must be positive", z)
	}
	return (p.MonoisotopicMass() + float64(z)*ProtonMassDa) / float64(z), nil
}

// BasicSites returns the count of protonatable sites relevant for ESI
// charging: the N-terminus plus arginine, lysine and histidine side chains.
func (p Peptide) BasicSites() int {
	n := 1 // N-terminus
	for i := 0; i < len(p.Sequence); i++ {
		switch p.Sequence[i] {
		case 'R', 'K', 'H':
			n++
		}
	}
	return n
}

// ChargeStates returns the plausible positive ESI charge states of the
// peptide with relative intensities summing to 1.  The model follows the
// empirical behaviour of tryptic peptides: charges are capped by the number
// of basic sites, centred near one charge per ~8-12 residues plus termini,
// and at least 1.
func (p Peptide) ChargeStates() []ChargeState {
	maxZ := p.BasicSites()
	if maxZ > 6 {
		maxZ = 6
	}
	// Preferred charge grows with length.
	pref := 1 + float64(p.Len())/10.0
	if pref > float64(maxZ) {
		pref = float64(maxZ)
	}
	states := make([]ChargeState, 0, maxZ)
	var total float64
	for z := 1; z <= maxZ; z++ {
		d := float64(z) - pref
		w := math.Exp(-d * d / 0.8)
		states = append(states, ChargeState{Z: z, Fraction: w})
		total += w
	}
	for i := range states {
		states[i].Fraction /= total
	}
	return states
}

// ChargeState is one electrospray charge state and its relative population.
type ChargeState struct {
	Z        int
	Fraction float64
}

// CCS estimates the ion-neutral collision cross section (m²) of the peptide
// at charge state z in nitrogen using the empirical near-globular power law
// for tryptic peptides, Ω[Å²] ≈ A_z · m^(2/3) with a charge-dependent
// prefactor (higher charge states adopt more extended conformations); the
// prefactors are regressed from published peptide CCS compilations.
func (p Peptide) CCS(z int) (float64, error) {
	if z <= 0 {
		return 0, fmt.Errorf("chem: charge %d must be positive", z)
	}
	prefactor := map[int]float64{1: 2.3, 2: 2.8, 3: 3.3}[z]
	if prefactor == 0 {
		prefactor = 3.3 + 0.4*float64(z-3)
	}
	m := p.MonoisotopicMass()
	ccsA2 := prefactor * math.Pow(m, 2.0/3.0)
	return ccsA2 * 1e-20, nil // Å² → m²
}

// Protein is a named amino-acid sequence.
type Protein struct {
	Name     string
	Sequence string
}

// NewProtein validates and constructs a protein.
func NewProtein(name, seq string) (Protein, error) {
	seq = strings.ToUpper(strings.Join(strings.Fields(seq), ""))
	if err := ValidateSequence(seq); err != nil {
		return Protein{}, fmt.Errorf("chem: protein %s: %w", name, err)
	}
	return Protein{Name: name, Sequence: seq}, nil
}

// MonoisotopicMass returns the intact neutral monoisotopic mass.
func (pr Protein) MonoisotopicMass() float64 {
	p := Peptide{Sequence: pr.Sequence}
	return p.MonoisotopicMass()
}

// AverageMass returns the intact neutral average mass.
func (pr Protein) AverageMass() float64 {
	p := Peptide{Sequence: pr.Sequence}
	return p.AverageMass()
}

// Digest performs an in-silico enzymatic digestion of the protein.
// Trypsin cleaves C-terminal to K or R except when the next residue is P.
// Peptides with up to missedCleavages internal sites are emitted, and
// peptides shorter than minLen or longer than maxLen residues are dropped
// (pass 0 for maxLen to disable the upper bound).
func (pr Protein) Digest(enzyme Enzyme, missedCleavages, minLen, maxLen int) ([]Peptide, error) {
	if missedCleavages < 0 {
		return nil, fmt.Errorf("chem: negative missed cleavages")
	}
	seq := pr.Sequence
	if len(seq) == 0 {
		return nil, fmt.Errorf("chem: empty protein")
	}
	// Find cleavage boundaries: cut points after index i.
	cuts := []int{0}
	for i := 0; i < len(seq)-1; i++ {
		if enzyme.CleavesAfter(seq, i) {
			cuts = append(cuts, i+1)
		}
	}
	cuts = append(cuts, len(seq))
	var out []Peptide
	for ci := 0; ci+1 < len(cuts); ci++ {
		for mc := 0; mc <= missedCleavages && ci+1+mc < len(cuts); mc++ {
			start, end := cuts[ci], cuts[ci+1+mc]
			frag := seq[start:end]
			if len(frag) < minLen {
				continue
			}
			if maxLen > 0 && len(frag) > maxLen {
				continue
			}
			out = append(out, Peptide{Sequence: frag, Start: start, MissedCleavages: mc})
		}
	}
	return out, nil
}

// Enzyme defines a proteolytic cleavage rule.
type Enzyme interface {
	// CleavesAfter reports whether the enzyme cuts between seq[i] and
	// seq[i+1]; i is guaranteed to satisfy 0 <= i < len(seq)-1.
	CleavesAfter(seq string, i int) bool
	Name() string
}

// Trypsin cleaves after K or R unless followed by P.
type Trypsin struct{}

// CleavesAfter implements Enzyme.
func (Trypsin) CleavesAfter(seq string, i int) bool {
	c := seq[i]
	if c != 'K' && c != 'R' {
		return false
	}
	return seq[i+1] != 'P'
}

// Name implements Enzyme.
func (Trypsin) Name() string { return "trypsin" }

// Pepsin approximates pepsin (pH > 2) specificity: cleaves after F, L, W, Y.
type Pepsin struct{}

// CleavesAfter implements Enzyme.
func (Pepsin) CleavesAfter(seq string, i int) bool {
	switch seq[i] {
	case 'F', 'L', 'W', 'Y':
		return true
	}
	return false
}

// Name implements Enzyme.
func (Pepsin) Name() string { return "pepsin" }

// LysC cleaves after K (including before P).
type LysC struct{}

// CleavesAfter implements Enzyme.
func (LysC) CleavesAfter(seq string, i int) bool { return seq[i] == 'K' }

// Name implements Enzyme.
func (LysC) Name() string { return "lys-c" }

// GluC (V8, ammonium bicarbonate buffer) cleaves after E.
type GluC struct{}

// CleavesAfter implements Enzyme.
func (GluC) CleavesAfter(seq string, i int) bool { return seq[i] == 'E' }

// Name implements Enzyme.
func (GluC) Name() string { return "glu-c" }

// Chymotrypsin cleaves after the large hydrophobics F, W, Y (and L, low
// specificity) unless followed by P; this implementation uses the
// high-specificity FWY rule.
type Chymotrypsin struct{}

// CleavesAfter implements Enzyme.
func (Chymotrypsin) CleavesAfter(seq string, i int) bool {
	switch seq[i] {
	case 'F', 'W', 'Y':
		return seq[i+1] != 'P'
	}
	return false
}

// Name implements Enzyme.
func (Chymotrypsin) Name() string { return "chymotrypsin" }

// Decoy returns the peptide with its sequence reversed except the C-terminal
// residue (the standard decoy construction preserving tryptic termini), used
// for false-discovery-rate estimation in identification.
func (p Peptide) Decoy() Peptide {
	n := len(p.Sequence)
	if n <= 2 {
		return Peptide{Sequence: p.Sequence, Start: -1}
	}
	b := []byte(p.Sequence[:n-1])
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return Peptide{Sequence: string(b) + p.Sequence[n-1:], Start: -1}
}
