// workload.go generates synthetic proteome-scale workloads: random proteins
// with realistic amino-acid composition and log-normally distributed
// abundances.  These stand in for the blood-plasma and bacterial-lysate
// matrices of the original experiments (see DESIGN.md substitution table).
package chem

import (
	"fmt"
	"math"
	"math/rand"
)

// aaFrequency is the average amino-acid composition of vertebrate proteins
// (UniProt statistics, normalized); used to synthesize realistic sequences.
var aaFrequency = []struct {
	Code byte
	Freq float64
}{
	{'A', 0.0825}, {'R', 0.0553}, {'N', 0.0406}, {'D', 0.0545},
	{'C', 0.0137}, {'Q', 0.0393}, {'E', 0.0675}, {'G', 0.0707},
	{'H', 0.0227}, {'I', 0.0596}, {'L', 0.0966}, {'K', 0.0584},
	{'M', 0.0242}, {'F', 0.0386}, {'P', 0.0470}, {'S', 0.0656},
	{'T', 0.0534}, {'W', 0.0108}, {'Y', 0.0292}, {'V', 0.0687},
}

// SyntheticProtein generates a random protein of the given length with
// natural amino-acid frequencies, deterministically from rng.
func SyntheticProtein(rng *rand.Rand, name string, length int) (Protein, error) {
	if length <= 0 {
		return Protein{}, fmt.Errorf("chem: protein length %d must be positive", length)
	}
	var cum [20]float64
	total := 0.0
	for i, af := range aaFrequency {
		total += af.Freq
		cum[i] = total
	}
	b := make([]byte, length)
	for i := range b {
		r := rng.Float64() * total
		for j, c := range cum {
			if r <= c {
				b[i] = aaFrequency[j].Code
				break
			}
		}
		if b[i] == 0 {
			b[i] = 'L'
		}
	}
	return NewProtein(name, string(b))
}

// AbundantPeptide couples a peptide with a relative molar abundance.
type AbundantPeptide struct {
	Peptide   Peptide
	Abundance float64 // relative molar abundance, arbitrary units
}

// ComplexMatrix digests nProteins synthetic proteins (length drawn uniformly
// from [200, 800)) with trypsin and assigns each protein a log-normal
// abundance spanning roughly sigmaDecades orders of magnitude — a stand-in
// for blood plasma or a whole-cell lysate.  Peptides inherit their parent
// protein's abundance.  The output is deterministic in rng.
func ComplexMatrix(rng *rand.Rand, nProteins int, sigmaDecades float64) ([]AbundantPeptide, error) {
	if nProteins <= 0 {
		return nil, fmt.Errorf("chem: need at least one matrix protein")
	}
	if sigmaDecades < 0 {
		return nil, fmt.Errorf("chem: negative abundance spread")
	}
	var out []AbundantPeptide
	for i := 0; i < nProteins; i++ {
		length := 200 + rng.Intn(600)
		pr, err := SyntheticProtein(rng, fmt.Sprintf("matrix-%03d", i), length)
		if err != nil {
			return nil, err
		}
		abundance := math.Pow(10, rng.NormFloat64()*sigmaDecades/2)
		peps, err := pr.Digest(Trypsin{}, 0, 6, 30)
		if err != nil {
			return nil, err
		}
		for _, p := range peps {
			out = append(out, AbundantPeptide{Peptide: p, Abundance: abundance})
		}
	}
	return out, nil
}

// SpikeLevels returns the concentrations (in the caller's units) for an
// n-point serial dilution starting at top with the given fold step, e.g.
// SpikeLevels(20, 1e4, 0.5) for a 20-peptide two-fold dilution series.
func SpikeLevels(n int, top, fold float64) []float64 {
	out := make([]float64, n)
	v := top
	for i := range out {
		out[i] = v
		v *= fold
	}
	return out
}
