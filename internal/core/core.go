// Package core is the public face of the reproduction: it wires the
// simulated instrument, the deconvolution machinery and the peak/feature
// post-processing into runnable experiments, and provides the metrics
// (per-analyte SNR, reconstruction error, ion utilization) that the
// evaluation tables and figures are built from.
//
// A typical use:
//
//	var mix instrument.Mixture
//	mix.AddPeptide("bradykinin", pep, 1.0)
//	exp := core.Experiment{
//	    Mixture:    mix,
//	    SourceRate: 1e7,
//	    Config:     core.ReferenceConfig(instrument.ModeMultiplexedTrap),
//	}
//	res, err := exp.Run(rand.New(rand.NewSource(1)))
//	snr, err := core.AnalyteSNR(res.Decoded, exp.Config.TOF, exp.Config.Tube,
//	    exp.Config.BinWidthS, mix.Analytes[0])
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/hadamard"
	"repro/internal/instrument"
	"repro/internal/peaks"
	"repro/internal/pipeline"
	"repro/internal/prs"
	"repro/internal/telemetry"
)

// DecoderKind selects the deconvolution algorithm for multiplexed runs.
type DecoderKind int

const (
	// DecoderAuto uses the enhanced decoding: a Wiener circulant inverse
	// against the instrument's effective modulation waveform.
	DecoderAuto DecoderKind = iota
	// DecoderFHT is the fast-Walsh–Hadamard simplex inverse (the FPGA
	// algorithm); exact only for plain m-sequences.
	DecoderFHT
	// DecoderStandard is the FFT-correlation simplex inverse.
	DecoderStandard
	// DecoderWiener is the regularized circulant inverse for arbitrary
	// gating waveforms.
	DecoderWiener
)

// String implements fmt.Stringer.
func (d DecoderKind) String() string {
	switch d {
	case DecoderAuto:
		return "auto"
	case DecoderFHT:
		return "fht"
	case DecoderStandard:
		return "standard"
	case DecoderWiener:
		return "wiener"
	}
	return fmt.Sprintf("decoder(%d)", int(d))
}

// ReferenceConfig returns the reference instrument configuration scaled for
// tractable simulation (order-8 sequence, 512 m/z bins) in the given mode.
func ReferenceConfig(mode instrument.Mode) instrument.Config {
	cfg := instrument.DefaultConfig()
	cfg.SequenceOrder = 8
	cfg.Mode = mode
	cfg.TOF.Bins = 512
	cfg.BinWidthS = 2e-4
	cfg.Frames = 4
	return cfg
}

// Experiment is one configured acquisition plus processing chain.
type Experiment struct {
	Mixture    instrument.Mixture
	SourceRate float64 // total ion current, charges/s
	// Elution optionally assigns LC profiles per analyte index.
	Elution map[int]instrument.LCPeak
	Config  instrument.Config
	Decoder DecoderKind
	// WienerLambda is the regularization for DecoderWiener/Auto (0 = exact
	// inversion where possible).
	WienerLambda float64
	// Workers bounds deconvolution parallelism (<= 0 = GOMAXPROCS).
	Workers int
	// Metrics, when non-nil, receives the run's telemetry: per-stage wall
	// time (core_stage_ns{stage="acquire"|"decode"}), run/ion counters
	// (core_* families) and the software pipeline's pipeline_* families.
	// Nil disables instrumentation at ~zero cost.
	Metrics *telemetry.Registry
}

// Result is a completed experiment.
type Result struct {
	// Raw is the accumulated digitizer frame.
	Raw *instrument.Frame
	// Decoded is the recovered arrival-distribution frame.  For
	// signal-averaging runs it aliases Raw (no deconvolution needed).
	Decoded *instrument.Frame
	// Stats is the acquisition bookkeeping.
	Stats instrument.RunStats
	// Sequence is the gating sequence used.
	Sequence prs.Sequence
}

// decoderFactory resolves the decoder kind against the configuration and
// the built instrument.  DecoderAuto and DecoderWiener deconvolve against
// the instrument's effective modulation (gate imperfections and trap
// accumulation weights included) — the enhanced decoding; DecoderFHT and
// DecoderStandard use the ideal binary sequence and exist as the
// traditional baselines whose systematic artifacts the enhancement removes.
func (e *Experiment) decoderFactory(inst *instrument.Instrument) (pipeline.DecoderFactory, error) {
	seq, err := e.Config.Sequence()
	if err != nil {
		return nil, err
	}
	kind := e.Decoder
	if kind == DecoderAuto {
		kind = DecoderWiener
	}
	switch kind {
	case DecoderFHT:
		if e.Config.Oversample > 1 || e.Config.Defect > 0 {
			return nil, fmt.Errorf("core: FHT decoder requires a plain m-sequence")
		}
		order := e.Config.SequenceOrder
		return func() (hadamard.Decoder, error) { return hadamard.NewFHTDecoder(order) }, nil
	case DecoderStandard:
		return func() (hadamard.Decoder, error) { return hadamard.NewStandardDecoder(seq) }, nil
	case DecoderWiener:
		lambda := e.WienerLambda
		modulation := inst.Modulation()
		return func() (hadamard.Decoder, error) { return hadamard.NewWienerDecoderWaveform(modulation, lambda) }, nil
	default:
		return nil, fmt.Errorf("core: unknown decoder kind %v", kind)
	}
}

// Run acquires and processes one experiment, deterministically in rng.
// Stage timings and counters are recorded into e.Metrics when set.
func (e *Experiment) Run(rng *rand.Rand) (*Result, error) {
	reg := e.Metrics
	stageNs := func(stage string) *telemetry.Histogram {
		return reg.Histogram("core_stage_ns", "wall time per experiment stage, nanoseconds", telemetry.L("stage", stage))
	}
	src, err := instrument.NewESISource(e.Mixture, e.SourceRate)
	if err != nil {
		return nil, err
	}
	src.Elution = e.Elution
	inst, err := instrument.New(e.Config, src)
	if err != nil {
		return nil, err
	}
	sp := stageNs("acquire").Start()
	raw, stats, err := inst.Acquire(rng)
	sp.Stop()
	if err != nil {
		return nil, err
	}
	reg.Counter("core_experiments_total", "experiment acquisitions completed").Inc()
	reg.Counter("core_ions_detected_total", "ions detected across experiment runs").Add(int64(stats.IonsDetected))
	res := &Result{Raw: raw, Stats: stats, Sequence: inst.Sequence()}
	if e.Config.Mode == instrument.ModeSignalAveraging {
		res.Decoded = raw
		return res, nil
	}
	factory, err := e.decoderFactory(inst)
	if err != nil {
		return nil, err
	}
	sp = stageNs("decode").Start()
	decoded, err := pipeline.DeconvolveFrameWithMetrics(raw, factory, e.Workers, reg)
	sp.Stop()
	if err != nil {
		return nil, err
	}
	res.Decoded = decoded
	return res, nil
}

// Truth returns the noise-free expected single-pulse response of the
// configured instrument and mixture — the ground truth that a perfect
// deconvolution recovers (up to per-pulse amplitude).  Frame counts and
// noise are excluded; normalize before comparing shapes.
func (e *Experiment) Truth() (*instrument.Frame, error) {
	cfg := e.Config
	cfg.Mode = instrument.ModeSignalAveraging
	src, err := instrument.NewESISource(e.Mixture, e.SourceRate)
	if err != nil {
		return nil, err
	}
	src.Elution = e.Elution
	inst, err := instrument.New(cfg, src)
	if err != nil {
		return nil, err
	}
	truth, _, err := inst.ExpectedDetections(0)
	if err != nil {
		return nil, err
	}
	return truth, nil
}

// SNRReport is a per-analyte signal-to-noise measurement in a decoded
// frame.
type SNRReport struct {
	Analyte  string
	MZBin    int
	DriftBin int
	Signal   float64 // apex height above the column median
	Noise    float64 // MAD noise of the column away from the peak
	SNR      float64
}

// AnalyteSNR measures the SNR of one analyte in a decoded frame: it
// locates the analyte's m/z column and expected drift bin, takes the apex
// in a ±3-bin window as signal (above the column median), and the MAD of
// the column outside a guard band as noise.
func AnalyteSNR(f *instrument.Frame, tof instrument.TOF, tube instrument.DriftTube, binWidthS float64, a instrument.Analyte) (SNRReport, error) {
	if f == nil {
		return SNRReport{}, fmt.Errorf("core: nil frame")
	}
	if binWidthS <= 0 {
		return SNRReport{}, fmt.Errorf("core: bin width %g must be positive", binWidthS)
	}
	col := tof.BinOf(a.MZ)
	if col < 0 || col >= f.TOFBins {
		return SNRReport{}, fmt.Errorf("core: analyte %q m/z %g outside recorded range", a.Name, a.MZ)
	}
	arr, err := tube.Arrival(a, binWidthS, 0)
	if err != nil {
		return SNRReport{}, err
	}
	driftBin := int(math.Round(arr.MeanS/binWidthS)) % f.DriftBins
	vec := f.DriftVector(col)
	med := median(vec)

	const window = 3
	signal := math.Inf(-1)
	apex := driftBin
	for d := -window; d <= window; d++ {
		b := ((driftBin+d)%f.DriftBins + f.DriftBins) % f.DriftBins
		if vec[b] > signal {
			signal = vec[b]
			apex = b
		}
	}
	signal -= med

	// Noise: MAD over bins outside a guard band around the apex.
	guard := int(math.Ceil(4*arr.SigmaS/binWidthS)) + window
	var rest []float64
	for b := 0; b < f.DriftBins; b++ {
		dist := absInt(b - apex)
		if wrap := f.DriftBins - dist; wrap < dist {
			dist = wrap
		}
		if dist > guard {
			rest = append(rest, vec[b])
		}
	}
	noise := peaks.NoiseMAD(rest)
	if noise <= 0 {
		noise = 1e-12
	}
	return SNRReport{
		Analyte:  a.Name,
		MZBin:    col,
		DriftBin: apex,
		Signal:   signal,
		Noise:    noise,
		SNR:      signal / noise,
	}, nil
}

func median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	tmp := make([]float64, len(x))
	copy(tmp, x)
	sort.Float64s(tmp)
	return tmp[len(tmp)/2]
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// SNRGain returns the multiplexing gain: SNR of the numerator run over the
// denominator run.
func SNRGain(num, den SNRReport) float64 {
	if den.SNR <= 0 {
		return math.Inf(1)
	}
	return num.SNR / den.SNR
}

// NormalizedColumnError compares the shape of a decoded m/z column against
// the truth column: both are normalized to unit sum (negative values
// clipped) before the relative RMS error is computed.
func NormalizedColumnError(decoded, truth *instrument.Frame, col int) (float64, error) {
	if decoded == nil || truth == nil {
		return 0, fmt.Errorf("core: nil frame")
	}
	if decoded.DriftBins != truth.DriftBins || decoded.TOFBins != truth.TOFBins {
		return 0, fmt.Errorf("core: frame geometry mismatch")
	}
	if col < 0 || col >= decoded.TOFBins {
		return 0, fmt.Errorf("core: column %d out of range", col)
	}
	d := normalizeNonNeg(decoded.DriftVector(col))
	tr := normalizeNonNeg(truth.DriftVector(col))
	return hadamard.ReconstructionError(d, tr)
}

// DenoisedColumnError is NormalizedColumnError with the decoded column
// thresholded at 3× its MAD noise first, so the comparison reflects real
// structure (peaks and systematic ghosts) rather than the positive-clipped
// noise floor spread across every bin.
func DenoisedColumnError(decoded, truth *instrument.Frame, col int) (float64, error) {
	if decoded == nil || truth == nil {
		return 0, fmt.Errorf("core: nil frame")
	}
	if decoded.DriftBins != truth.DriftBins || decoded.TOFBins != truth.TOFBins {
		return 0, fmt.Errorf("core: frame geometry mismatch")
	}
	if col < 0 || col >= decoded.TOFBins {
		return 0, fmt.Errorf("core: column %d out of range", col)
	}
	vec := decoded.DriftVector(col)
	thresh := 3 * peaks.NoiseMAD(vec)
	den := make([]float64, len(vec))
	for i, v := range vec {
		if v > thresh {
			den[i] = v
		}
	}
	d := normalizeNonNeg(den)
	tr := normalizeNonNeg(truth.DriftVector(col))
	return hadamard.ReconstructionError(d, tr)
}

func normalizeNonNeg(x []float64) []float64 {
	out := make([]float64, len(x))
	var sum float64
	for i, v := range x {
		if v > 0 {
			out[i] = v
			sum += v
		}
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}

// Identification is the end-to-end identification outcome of an
// experiment: detected features matched against a candidate list.
type Identification struct {
	Features      []peaks.Feature
	Matches       []peaks.Match
	UniqueTargets int
	FDR           float64
}

// Identify runs feature finding on a decoded frame and matches features
// against candidates within tolPPM (decoys included for FDR).
func Identify(decoded *instrument.Frame, tof instrument.TOF, cands []peaks.Candidate, minSNR, tolPPM float64, driftTol int) (*Identification, error) {
	feats, err := peaks.FindFeatures(decoded, tof, minSNR, driftTol)
	if err != nil {
		return nil, err
	}
	matches, err := peaks.MatchFeatures(feats, cands, tolPPM)
	if err != nil {
		return nil, err
	}
	return &Identification{
		Features:      feats,
		Matches:       matches,
		UniqueTargets: peaks.UniqueTargets(matches),
		FDR:           peaks.FDR(matches),
	}, nil
}
