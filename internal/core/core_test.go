package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chem"
	"repro/internal/instrument"
	"repro/internal/peaks"
)

// fastConfig shrinks the reference configuration for unit tests.
func fastConfig(mode instrument.Mode) instrument.Config {
	cfg := ReferenceConfig(mode)
	cfg.SequenceOrder = 6
	cfg.TOF.Bins = 256
	cfg.TOF.MaxMZ = 1700
	cfg.BinWidthS = 4e-4
	cfg.Frames = 2
	return cfg
}

func testExperiment(t testing.TB, mode instrument.Mode) *Experiment {
	t.Helper()
	var mix instrument.Mixture
	for _, def := range []struct {
		name, seq string
		ab        float64
	}{
		{"bradykinin", "RPPGFSPFR", 1},
		{"angiotensin II", "DRVYIHPF", 0.5},
	} {
		p, err := chem.NewPeptide(def.seq)
		if err != nil {
			t.Fatal(err)
		}
		if err := mix.AddPeptide(def.name, p, def.ab); err != nil {
			t.Fatal(err)
		}
	}
	return &Experiment{
		Mixture:    mix,
		SourceRate: 2e7,
		Config:     fastConfig(mode),
	}
}

func TestDecoderKindString(t *testing.T) {
	for kind, want := range map[DecoderKind]string{
		DecoderAuto: "auto", DecoderFHT: "fht", DecoderStandard: "standard", DecoderWiener: "wiener",
	} {
		if kind.String() != want {
			t.Errorf("%v != %s", kind, want)
		}
	}
	if DecoderKind(42).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestRunSignalAveraging(t *testing.T) {
	exp := testExperiment(t, instrument.ModeSignalAveraging)
	res, err := exp.Run(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoded != res.Raw {
		t.Error("SA mode should alias the raw frame")
	}
	if res.Stats.Utilization > 0.05 {
		t.Errorf("SA utilization %g too high", res.Stats.Utilization)
	}
	if len(res.Sequence) != 63 {
		t.Errorf("sequence length %d", len(res.Sequence))
	}
}

func TestRunMultiplexedAllDecoders(t *testing.T) {
	for _, kind := range []DecoderKind{DecoderAuto, DecoderFHT, DecoderStandard, DecoderWiener} {
		exp := testExperiment(t, instrument.ModeMultiplexed)
		exp.Decoder = kind
		res, err := exp.Run(rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Decoded == res.Raw {
			t.Fatalf("%v: MP mode must deconvolve", kind)
		}
		// The decoded frame must localize bradykinin 2+ at its drift bin:
		// SNR well above 5.
		rep, err := AnalyteSNR(res.Decoded, exp.Config.TOF, exp.Config.Tube, exp.Config.BinWidthS, exp.Mixture.Analytes[0])
		if err != nil {
			t.Fatal(err)
		}
		if rep.SNR < 5 {
			t.Errorf("%v: decoded SNR %g too low", kind, rep.SNR)
		}
	}
}

func TestRunModifiedSequenceAutoPicksWiener(t *testing.T) {
	exp := testExperiment(t, instrument.ModeMultiplexedTrap)
	exp.Config.Oversample = 2
	exp.Config.Defect = 1
	exp.Config.BinWidthS = 2e-4 // keep cycle duration comparable
	res, err := exp.Run(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyteSNR(res.Decoded, exp.Config.TOF, exp.Config.Tube, exp.Config.BinWidthS, exp.Mixture.Analytes[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.SNR < 5 {
		t.Errorf("modified-sequence decode SNR %g too low", rep.SNR)
	}
	// Explicit FHT on a modified sequence must be rejected.
	exp.Decoder = DecoderFHT
	if _, err := exp.Run(rand.New(rand.NewSource(4))); err == nil {
		t.Error("FHT on modified sequence should fail")
	}
}

func TestMultiplexingGainOverSignalAveraging(t *testing.T) {
	// Equal acquisition time (same frame count), detector-noise-limited
	// beam (single-ion response at the ADC noise level): the trapped
	// multiplexed mode must clearly beat signal averaging in SNR — the
	// paper series' headline result.  Averaged over seeds for stability.
	gainConfig := func(mode instrument.Mode) instrument.Config {
		cfg := ReferenceConfig(mode)
		cfg.SequenceOrder = 8
		cfg.TOF.Bins = 256
		cfg.TOF.MaxMZ = 1700
		cfg.BinWidthS = 1e-4
		cfg.Frames = 4
		cfg.Detector.GainCounts = 1
		return cfg
	}
	var snrSA, snrMP float64
	const trials = 3
	for seed := int64(5); seed < 5+trials; seed++ {
		sa := testExperiment(t, instrument.ModeSignalAveraging)
		sa.Config = gainConfig(instrument.ModeSignalAveraging)
		sa.SourceRate = 3e5
		resSA, err := sa.Run(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		mp := testExperiment(t, instrument.ModeMultiplexedTrap)
		mp.Config = gainConfig(instrument.ModeMultiplexedTrap)
		mp.SourceRate = 3e5
		resMP, err := mp.Run(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		a := sa.Mixture.Analytes[1] // bradykinin 2+, the dominant state
		repSA, err := AnalyteSNR(resSA.Decoded, sa.Config.TOF, sa.Config.Tube, sa.Config.BinWidthS, a)
		if err != nil {
			t.Fatal(err)
		}
		repMP, err := AnalyteSNR(resMP.Decoded, mp.Config.TOF, mp.Config.Tube, mp.Config.BinWidthS, a)
		if err != nil {
			t.Fatal(err)
		}
		snrSA += repSA.SNR
		snrMP += repMP.SNR
	}
	gain := snrMP / snrSA
	if gain < 1.5 {
		t.Errorf("multiplexing gain %g, want > 1.5 (SA SNR %g, MP SNR %g)", gain, snrSA/trials, snrMP/trials)
	}
}

func TestTruthAndNormalizedError(t *testing.T) {
	exp := testExperiment(t, instrument.ModeMultiplexed)
	truth, err := exp.Truth()
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	a := exp.Mixture.Analytes[0]
	col := exp.Config.TOF.BinOf(a.MZ)
	e, err := NormalizedColumnError(res.Decoded, truth, col)
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.6 {
		t.Errorf("normalized column error %g too large", e)
	}
	// Error API guards.
	if _, err := NormalizedColumnError(nil, truth, 0); err == nil {
		t.Error("nil frame")
	}
	if _, err := NormalizedColumnError(res.Decoded, truth, -1); err == nil {
		t.Error("bad column")
	}
	small := instrument.NewFrame(4, 4)
	if _, err := NormalizedColumnError(small, truth, 0); err == nil {
		t.Error("geometry mismatch")
	}
}

func TestDenoisedColumnError(t *testing.T) {
	exp := testExperiment(t, instrument.ModeMultiplexed)
	truth, err := exp.Truth()
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(rand.New(rand.NewSource(16)))
	if err != nil {
		t.Fatal(err)
	}
	a := exp.Mixture.Analytes[0]
	col := exp.Config.TOF.BinOf(a.MZ)
	den, err := DenoisedColumnError(res.Decoded, truth, col)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := NormalizedColumnError(res.Decoded, truth, col)
	if err != nil {
		t.Fatal(err)
	}
	if den > raw {
		t.Errorf("denoised error %g should not exceed raw error %g", den, raw)
	}
	if _, err := DenoisedColumnError(nil, truth, 0); err == nil {
		t.Error("nil frame")
	}
	if _, err := DenoisedColumnError(res.Decoded, truth, -1); err == nil {
		t.Error("bad column")
	}
	small := instrument.NewFrame(4, 4)
	if _, err := DenoisedColumnError(small, truth, 0); err == nil {
		t.Error("geometry mismatch")
	}
}

func TestAnalyteSNRErrors(t *testing.T) {
	exp := testExperiment(t, instrument.ModeMultiplexed)
	res, _ := exp.Run(rand.New(rand.NewSource(7)))
	a := exp.Mixture.Analytes[0]
	if _, err := AnalyteSNR(nil, exp.Config.TOF, exp.Config.Tube, exp.Config.BinWidthS, a); err == nil {
		t.Error("nil frame")
	}
	if _, err := AnalyteSNR(res.Decoded, exp.Config.TOF, exp.Config.Tube, 0, a); err == nil {
		t.Error("zero bin width")
	}
	out := a
	out.MZ = 1e6
	if _, err := AnalyteSNR(res.Decoded, exp.Config.TOF, exp.Config.Tube, exp.Config.BinWidthS, out); err == nil {
		t.Error("out-of-range m/z")
	}
}

func TestSNRGainEdge(t *testing.T) {
	if !math.IsInf(SNRGain(SNRReport{SNR: 5}, SNRReport{SNR: 0}), 1) {
		t.Error("zero denominator should give +Inf")
	}
	if got := SNRGain(SNRReport{SNR: 10}, SNRReport{SNR: 2}); math.Abs(got-5) > 1e-12 {
		t.Errorf("gain %g", got)
	}
}

func TestIdentifyEndToEnd(t *testing.T) {
	exp := testExperiment(t, instrument.ModeMultiplexedTrap)
	res, err := exp.Run(rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	named := map[string]chem.Peptide{}
	for _, def := range []struct{ name, seq string }{
		{"bradykinin", "RPPGFSPFR"},
		{"angiotensin II", "DRVYIHPF"},
	} {
		p, _ := chem.NewPeptide(def.seq)
		named[def.name] = p
	}
	cands, err := peaks.CandidatesFromPeptides(named, true)
	if err != nil {
		t.Fatal(err)
	}
	id, err := Identify(res.Decoded, exp.Config.TOF, cands, 8, 1200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(id.Features) == 0 {
		t.Fatal("no features found")
	}
	if id.UniqueTargets < 1 {
		t.Errorf("identified %d targets, want >= 1", id.UniqueTargets)
	}
	if id.FDR > 0.5 {
		t.Errorf("FDR %g implausibly high", id.FDR)
	}
	// Bad inputs propagate.
	if _, err := Identify(nil, exp.Config.TOF, cands, 8, 100, 2); err == nil {
		t.Error("nil frame")
	}
	if _, err := Identify(res.Decoded, exp.Config.TOF, cands, 8, 0, 2); err == nil {
		t.Error("zero tolerance")
	}
}

func TestRunErrors(t *testing.T) {
	exp := testExperiment(t, instrument.ModeMultiplexed)
	exp.SourceRate = 0
	if _, err := exp.Run(rand.New(rand.NewSource(9))); err == nil {
		t.Error("zero source rate should fail")
	}
	exp = testExperiment(t, instrument.ModeMultiplexed)
	exp.Config.Frames = 0
	if _, err := exp.Run(rand.New(rand.NewSource(10))); err == nil {
		t.Error("invalid config should fail")
	}
	exp = testExperiment(t, instrument.ModeMultiplexed)
	exp.Decoder = DecoderKind(42)
	if _, err := exp.Run(rand.New(rand.NewSource(11))); err == nil {
		t.Error("unknown decoder should fail")
	}
}

func BenchmarkExperimentMultiplexed(b *testing.B) {
	exp := testExperiment(b, instrument.ModeMultiplexed)
	rng := rand.New(rand.NewSource(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(rng); err != nil {
			b.Fatal(err)
		}
	}
}
