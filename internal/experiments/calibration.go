// calibration.go: the end-to-end CCS calibration experiment (E19): calibrant
// peptides with known cross sections are acquired in one multiplexed run,
// their decoded arrival times fit the single-field calibration, and the
// cross sections of "unknown" peptides in the same frame are recovered from
// their measured drift times.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/physics"
)

// E19CCSCalibration measures how accurately the platform recovers collision
// cross sections through a calibrant fit — the structural-measurement use
// of IMS that motivates drift-time fidelity in the first place.
func E19CCSCalibration(seed int64, quick bool) (*Table, error) {
	frames := 8
	if quick {
		frames = 4
	}
	t := &Table{
		ID:      "E19",
		Title:   "CCS recovery through single-field calibration on one multiplexed acquisition",
		Columns: []string{"peptide", "role", "z", "true CCS (A^2)", "measured CCS (A^2)", "error %"},
		Notes: []string{
			"calibrants fit t_d = a*(CCS*sqrt(mu)/z) + t0; unknowns inverted through the fit",
			"drift-bin quantization bounds the achievable accuracy (~0.5 bin)",
		},
	}
	calibrants := []string{"RPPGFSPFR", "DRVYIHPFHL", "ADSGEGDFLAEGGGVR", "QLYENKPRRPYIL"}
	unknowns := []string{"DRVYIHPF", "LRRASLG", "RPKPQQFFGLM"}

	cfg := gainConfig(instrument.ModeMultiplexedTrap, 8)
	cfg.TOF.Bins = 2048
	cfg.TOF.MaxMZ = 2500
	cfg.Frames = frames
	cfg.Detector.GainCounts = 2

	var mix instrument.Mixture
	type ion struct {
		name string
		a    instrument.Analyte
		cal  bool
	}
	var ions []ion
	add := func(seq string, cal bool) error {
		p, err := chem.NewPeptide(seq)
		if err != nil {
			return err
		}
		// Use the dominant charge state only, so each ion has one drift
		// peak.
		states := p.ChargeStates()
		best := states[0]
		for _, cs := range states {
			if cs.Fraction > best.Fraction {
				best = cs
			}
		}
		mz, err := p.MZ(best.Z)
		if err != nil {
			return err
		}
		ccs, err := p.CCS(best.Z)
		if err != nil {
			return err
		}
		a := instrument.Analyte{
			Name: seq, MassDa: p.MonoisotopicMass(), Z: best.Z,
			MZ: mz, CCSM2: ccs, Abundance: 1,
		}
		if err := mix.AddAnalyte(a); err != nil {
			return err
		}
		ions = append(ions, ion{name: seq, a: a, cal: cal})
		return nil
	}
	for _, seq := range calibrants {
		if err := add(seq, true); err != nil {
			return nil, err
		}
	}
	for _, seq := range unknowns {
		if err := add(seq, false); err != nil {
			return nil, err
		}
	}

	exp := &core.Experiment{Mixture: mix, SourceRate: 1e7, Config: cfg}
	res, err := exp.Run(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}

	// Measured drift time: apex of the decoded column near the expected
	// bin, at sub-bin precision via the SNR report's apex.
	measure := func(a instrument.Analyte) (float64, error) {
		rep, err := core.AnalyteSNR(res.Decoded, cfg.TOF, cfg.Tube, cfg.BinWidthS, a)
		if err != nil {
			return 0, err
		}
		if rep.SNR < 3 {
			return 0, fmt.Errorf("experiments: calibrant %s below detection (SNR %.1f)", a.Name, rep.SNR)
		}
		return (float64(rep.DriftBin) + 0.5) * cfg.BinWidthS, nil
	}

	var pts []physics.CalPoint
	for _, io := range ions {
		if !io.cal {
			continue
		}
		td, err := measure(io.a)
		if err != nil {
			return nil, err
		}
		pts = append(pts, physics.CalPoint{
			DriftTimeS: td, CCSM2: io.a.CCSM2, MassDa: io.a.MassDa, Z: io.a.Z,
		})
	}
	calib, err := physics.FitCalibration(pts, cfg.Tube.Conditions.Gas)
	if err != nil {
		return nil, err
	}
	for _, io := range ions {
		td, err := measure(io.a)
		if err != nil {
			return nil, err
		}
		got, err := calib.CCS(td, io.a.MassDa, io.a.Z)
		if err != nil {
			return nil, err
		}
		role := "unknown"
		if io.cal {
			role = "calibrant"
		}
		errPct := 100 * math.Abs(got-io.a.CCSM2) / io.a.CCSM2
		t.AddRow(io.name, role, io.a.Z, io.a.CCSM2*1e20, got*1e20, errPct)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("calibration fit residual %.3f%%", 100*calib.RMSRel))
	return t, nil
}

// E20IsotopeFidelity checks spectral accuracy: the measured M+1/M isotope
// ratio of singly charged peptides across the mass range against the
// theoretical envelope — the standard spectral-accuracy validation of a TOF
// data path.
func E20IsotopeFidelity(seed int64, quick bool) (*Table, error) {
	peptides := []string{"YGGFL", "RPPGFSPFR", "DRVYIHPFHL", "ADSGEGDFLAEGGGVR"}
	if quick {
		peptides = []string{"YGGFL", "DRVYIHPFHL"}
	}
	t := &Table{
		ID:      "E20",
		Title:   "Isotope-envelope fidelity: measured vs theoretical M+1/M ratio (1+ ions)",
		Columns: []string{"peptide", "mass (Da)", "theory M+1/M", "measured M+1/M", "deviation %"},
		Notes:   []string{"measured from one multiplexed acquisition after deconvolution"},
	}
	cfg := gainConfig(instrument.ModeMultiplexedTrap, 8)
	cfg.TOF.Bins = 8192 // resolve 1+ isotopes
	cfg.TOF.MaxMZ = 2500
	cfg.Frames = 8
	cfg.Detector.GainCounts = 2

	var mix instrument.Mixture
	type entry struct {
		name   string
		mass   float64
		mz     float64
		theory float64
	}
	var entries []entry
	for _, seq := range peptides {
		p, err := chem.NewPeptide(seq)
		if err != nil {
			return nil, err
		}
		mz, err := p.MZ(1)
		if err != nil {
			return nil, err
		}
		ccs, err := p.CCS(1)
		if err != nil {
			return nil, err
		}
		base := instrument.Analyte{
			Name: seq, MassDa: p.MonoisotopicMass(), Z: 1,
			MZ: mz, CCSM2: ccs, Abundance: 1,
		}
		a, err := base.WithIsotopes(p.Formula(), 1e-5)
		if err != nil {
			return nil, err
		}
		if err := mix.AddAnalyte(a); err != nil {
			return nil, err
		}
		env := p.Formula().IsotopicEnvelope(1e-6)
		if len(env) < 2 {
			return nil, fmt.Errorf("experiments: envelope too small for %s", seq)
		}
		entries = append(entries, entry{
			name: seq, mass: p.MonoisotopicMass(), mz: mz,
			theory: env[1].Abundance / env[0].Abundance,
		})
	}

	exp := &core.Experiment{Mixture: mix, SourceRate: 2e7, Config: cfg}
	res, err := exp.Run(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	// Apex above the column median: robust against the positive-clipped
	// noise floor that would inflate weak-column sums.
	colSum := func(mzv float64) float64 {
		col := cfg.TOF.BinOf(mzv)
		if col < 0 {
			return 0
		}
		vec := res.Decoded.DriftVector(col)
		sorted := append([]float64(nil), vec...)
		sortFloats(sorted)
		med := sorted[len(sorted)/2]
		max := 0.0
		for _, v := range vec {
			if v-med > max {
				max = v - med
			}
		}
		return max
	}
	for _, e := range entries {
		mono := colSum(e.mz)
		mPlus1 := colSum(e.mz + 1.0033)
		if mono <= 0 {
			return nil, fmt.Errorf("experiments: no monoisotopic signal for %s", e.name)
		}
		ratio := mPlus1 / mono
		t.AddRow(e.name, e.mass, e.theory, ratio, 100*math.Abs(ratio-e.theory)/e.theory)
	}
	return t, nil
}
