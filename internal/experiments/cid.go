// cid.go: the ion-mobility-multiplexed CID experiment (E16), reproducing
// the companion IJMS 2010 study: precursors dissociate after the drift
// separation, fragments inherit precursor drift profiles, and
// profile correlation assigns fragments to precursors in a single
// multiplexed acquisition.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/peaks"
	"repro/internal/physics"
)

// E16MultiplexedCID reproduces the multiplexed CID identification table
// (Clowers et al., IJMS 2010: 20 unique BSA peptides from a single
// multiplexed IMS separation with post-drift CID, FDR < 1 %): precursors
// and their post-mobility fragments acquired together, fragments assigned
// by drift-profile correlation, identification requiring fragment evidence.
func E16MultiplexedCID(seed int64, quick bool) (*Table, error) {
	nPeptides := 10
	frames := 8
	tofBins := 4096
	if quick {
		nPeptides = 5
		frames = 4
		tofBins = 2048
	}
	t := &Table{
		ID:    "E16",
		Title: "Multiplexed CID: fragments assigned to precursors by drift-profile correlation",
		Columns: []string{"peptide", "precursor m/z", "z", "fragments queried", "matched", "decoys matched",
			"identified"},
		Notes: []string{
			"identified = precursor feature plus >= 3 correlated fragments",
			"companion paper: 20 unique BSA peptides identified this way at FDR < 1 %",
		},
	}
	digest, err := chem.BSA().Digest(chem.Trypsin{}, 0, 8, 20)
	if err != nil {
		return nil, err
	}
	if len(digest) > nPeptides {
		digest = digest[:nPeptides]
	}
	cfg := gainConfig(instrument.ModeMultiplexedTrap, 8)
	cfg.TOF.Bins = tofBins
	cfg.TOF.MinMZ = 150
	cfg.TOF.MaxMZ = 2500
	cfg.Frames = frames
	cfg.Detector.GainCounts = 2
	cond := cfg.Tube.Conditions

	// Build the post-CID mixture: each precursor survives at 40 %; the
	// other 60 % splits across its dominant fragments.  Fragments travel
	// the drift tube as the precursor, so their effective CCS is chosen to
	// reproduce the precursor's mobility at the fragment's mass and 1+.
	type pepInfo struct {
		peptide chem.Peptide
		precMZ  float64
		precZ   int
		queries []peaks.FragmentQuery
		decoys  []peaks.FragmentQuery
	}
	var infos []pepInfo
	var mix instrument.Mixture
	rng := rand.New(rand.NewSource(seed))
	for _, p := range digest {
		states := p.ChargeStates()
		best := states[0]
		for _, cs := range states {
			if cs.Fraction > best.Fraction {
				best = cs
			}
		}
		precMZ, err := p.MZ(best.Z)
		if err != nil {
			return nil, err
		}
		precCCS, err := p.CCS(best.Z)
		if err != nil {
			return nil, err
		}
		if cfg.TOF.BinOf(precMZ) < 0 {
			continue
		}
		abundance := 0.5 + rng.Float64()
		if err := mix.AddAnalyte(instrument.Analyte{
			Name: p.Sequence, MassDa: p.MonoisotopicMass(), Z: best.Z,
			MZ: precMZ, CCSM2: precCCS, Abundance: abundance * 0.4,
		}); err != nil {
			return nil, err
		}
		kPrec, err := physics.Mobility(p.MonoisotopicMass(), best.Z, precCCS, cond)
		if err != nil {
			return nil, err
		}
		frags, err := chem.DominantFragments(p)
		if err != nil {
			return nil, err
		}
		info := pepInfo{peptide: p, precMZ: precMZ, precZ: best.Z}
		fragShare := abundance * 0.6 / float64(len(frags))
		for fi, fr := range frags {
			mz, err := fr.MZ(1)
			if err != nil {
				return nil, err
			}
			if cfg.TOF.BinOf(mz) < 0 {
				continue
			}
			// Fragment drifts with the precursor's mobility.
			ccs, err := physics.CCSFromMobility(fr.NeutralMassDa, 1, kPrec, cond)
			if err != nil {
				return nil, err
			}
			// Intensity tapers along the series (larger fragments first).
			weight := 0.5 + 1.5*float64(fi%3)/2
			if err := mix.AddAnalyte(instrument.Analyte{
				Name: p.Sequence + "/" + fr.Name(), MassDa: fr.NeutralMassDa, Z: 1,
				MZ: mz, CCSM2: ccs, Abundance: fragShare * weight,
			}); err != nil {
				return nil, err
			}
			info.queries = append(info.queries, peaks.FragmentQuery{Name: fr.Name(), MZ: mz})
			// A mass-shifted decoy fragment per true fragment.
			info.decoys = append(info.decoys, peaks.FragmentQuery{
				Name: "decoy-" + fr.Name(),
				MZ:   mz + peaks.DecoyMassShiftDa,
			})
		}
		if len(info.queries) >= 3 {
			infos = append(infos, info)
		}
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("experiments: no CID-eligible peptides")
	}

	exp := &core.Experiment{Mixture: mix, SourceRate: 4e7, Config: cfg}
	res, err := exp.Run(rand.New(rand.NewSource(seed + 1)))
	if err != nil {
		return nil, err
	}

	identified := 0
	for _, info := range infos {
		matches, err := peaks.AssignFragments(res.Decoded, cfg.TOF, info.precMZ, info.queries, 0.5, 3.5)
		if err != nil {
			return nil, err
		}
		decoyMatches, err := peaks.AssignFragments(res.Decoded, cfg.TOF, info.precMZ, info.decoys, 0.5, 3.5)
		if err != nil {
			return nil, err
		}
		ok := len(matches) >= 3
		if ok {
			identified++
		}
		t.AddRow(info.peptide.Sequence, info.precMZ, info.precZ,
			len(info.queries), len(matches), len(decoyMatches), ok)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("identified with fragment evidence: %d of %d peptides", identified, len(infos)))
	return t, nil
}
