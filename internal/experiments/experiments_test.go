package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// runQuick executes an experiment in quick mode with a fixed seed.
func runQuick(t *testing.T, run Runner) *Table {
	t.Helper()
	tab, err := run(1234, true)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID == "" || tab.Title == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
		t.Fatalf("table %q incomplete: %+v", tab.ID, tab)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("table %s: row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
		}
	}
	return tab
}

// cell parses a numeric cell.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("table %s cell (%d,%d) = %q not numeric: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", 1e9)
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "2.500") {
		t.Errorf("formatted table missing content:\n%s", out)
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,b\n") {
		t.Errorf("CSV header wrong: %q", buf.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		2.5:     "2.500",
		123.456: "123.5",
		1e9:     "1e+09",
		1e-6:    "1e-06",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestAllRegistry(t *testing.T) {
	reg := All()
	if len(reg) < 14 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Errorf("%s has nil runner", e.ID)
		}
	}
}

// TestE1Shape: the trapped multiplexed mode must beat signal averaging at
// every order, and the gain must grow with sequence order.
func TestE1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tab := runQuick(t, E1MultiplexingGain)
	prevGain := 0.0
	for r := range tab.Rows {
		trapGain := cell(t, tab, r, 6)
		if trapGain <= 1 {
			t.Errorf("row %d: trap gain %g should exceed 1", r, trapGain)
		}
		if trapGain < prevGain*0.7 {
			t.Errorf("row %d: trap gain %g fell sharply from %g (should grow with order)", r, trapGain, prevGain)
		}
		prevGain = trapGain
		theory := cell(t, tab, r, 7)
		if theory <= 1 {
			t.Errorf("row %d: theory %g", r, theory)
		}
	}
}

// TestE2Shape: the enhanced decode must beat the naive decode.
func TestE2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tab := runQuick(t, E2DeconvolutionFidelity)
	for r := range tab.Rows {
		improvement := cell(t, tab, r, 3)
		if improvement <= 1 {
			t.Errorf("row %d: enhancement improvement %g should exceed 1", r, improvement)
		}
	}
}

// TestE3Shape: the FPGA offload must beat a single CPU thread and keep up
// with the instrument in real time.
func TestE3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab := runQuick(t, E3FPGAvsCPU)
	for r := range tab.Rows {
		if margin := cell(t, tab, r, 8); margin < 1 {
			t.Errorf("row %d: real-time margin %g below 1", r, margin)
		}
	}
}

// TestE4Shape: scaling must be monotone nondecreasing in rate up to
// measurement noise.
func TestE4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab := runQuick(t, E4CPUScaling)
	if cell(t, tab, 0, 2) != 1 {
		t.Error("speedup baseline should be 1")
	}
	last := len(tab.Rows) - 1
	if last > 0 && cell(t, tab, last, 2) < 1 {
		t.Errorf("max-worker speedup %g below 1", cell(t, tab, last, 2))
	}
}

// TestE5Shape: accumulation reduces the stream and the reduction grows
// with depth.
func TestE5Shape(t *testing.T) {
	tab := runQuick(t, E5DataPath)
	prev := 0.0
	for r := range tab.Rows {
		red := cell(t, tab, r, 3)
		if red < prev {
			t.Errorf("row %d: reduction %g decreased", r, red)
		}
		prev = red
	}
}

// TestE6Shape: SA << MP < trap utilization ordering at every order.
func TestE6Shape(t *testing.T) {
	tab := runQuick(t, E6IonUtilization)
	for r := range tab.Rows {
		sa, mp, tr := cell(t, tab, r, 2), cell(t, tab, r, 3), cell(t, tab, r, 4)
		if !(sa < mp && mp < tr && tr <= 1) {
			t.Errorf("row %d: utilization ordering broken: %g %g %g", r, sa, mp, tr)
		}
	}
}

// TestE7Shape: the trapped multiplexed platform must detect at least as
// many spiked peptides as signal averaging, and strictly more at the low
// end.
func TestE7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tab := runQuick(t, E7DynamicRange)
	if len(tab.Rows) != 20 {
		t.Fatalf("spike panel rows %d, want 20", len(tab.Rows))
	}
	var sa, tr int
	for r := range tab.Rows {
		if tab.Rows[r][4] == "true" {
			sa++
		}
		if tab.Rows[r][5] == "true" {
			tr++
		}
	}
	if tr <= sa {
		t.Errorf("trap detected %d, SA detected %d: expected trap to win", tr, sa)
	}
	if tr < 6 {
		t.Errorf("trap detected only %d/20", tr)
	}
}

// TestE9Shape: a sensible number of unique BSA peptides at low FDR.
func TestE9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tab := runQuick(t, E9PeptideIDs)
	vals := map[string]string{}
	for _, row := range tab.Rows {
		vals[row[0]] = row[1]
	}
	unique, err := strconv.Atoi(vals["unique peptides identified"])
	if err != nil {
		t.Fatal(err)
	}
	if unique < 10 {
		t.Errorf("unique peptides %d, want >= 10", unique)
	}
	fdr, err := strconv.ParseFloat(vals["FDR"], 64)
	if err != nil {
		t.Fatal(err)
	}
	if fdr > 0.1 {
		t.Errorf("FDR %g, want <= 0.1", fdr)
	}
}

// TestE10Shape: error shrinks monotonically with wider formats (among the
// saturate rows) and the widest format is near float precision.
func TestE10Shape(t *testing.T) {
	tab := runQuick(t, E10FixedPoint)
	var prev float64 = -1
	for r := range tab.Rows {
		if tab.Rows[r][1] != "saturate" {
			continue
		}
		e := cell(t, tab, r, 2)
		if prev >= 0 && e > prev*1.5 {
			t.Errorf("row %d: error %g grew vs %g with a wider format", r, e, prev)
		}
		prev = e
	}
	lastErr := cell(t, tab, len(tab.Rows)-1, 2)
	if lastErr > 1e-3 {
		t.Errorf("widest format error %g too large", lastErr)
	}
}

// TestE11Shape: resolving power decreases monotonically with packet charge
// and the degradation onset sits above 1e3 charges.
func TestE11Shape(t *testing.T) {
	tab := runQuick(t, E11SpaceCharge)
	prev := 1e18
	for r := range tab.Rows {
		rp := cell(t, tab, r, 3)
		if rp > prev {
			t.Errorf("row %d: resolving power %g increased with charge", r, rp)
		}
		prev = rp
	}
	first := cell(t, tab, 0, 4)
	last := cell(t, tab, len(tab.Rows)-1, 4)
	if first < 0.9 {
		t.Errorf("at 1e3 charges resolution fraction %g should be near 1", first)
	}
	if last > 0.8 {
		t.Errorf("at 1e7 charges resolution fraction %g should be degraded", last)
	}
}

// TestE12Shape: AGC keeps packets near target through the apex while the
// fixed fill saturates the trap.
func TestE12Shape(t *testing.T) {
	tab := runQuick(t, E12AGC)
	var apexRow int
	maxRate := 0.0
	for r := range tab.Rows {
		rate := cell(t, tab, r, 1)
		if rate > maxRate {
			maxRate = rate
			apexRow = r
		}
	}
	agcRatio := cell(t, tab, apexRow, 3)
	if agcRatio > 3 {
		t.Errorf("AGC packet/target %g at apex, want near 1", agcRatio)
	}
	fixedFill := cell(t, tab, apexRow, 4)
	if fixedFill < 0.9 {
		t.Errorf("fixed fill should saturate at apex, got %g of capacity", fixedFill)
	}
	if losses := cell(t, tab, apexRow, 5); losses <= 0 {
		t.Error("fixed fill should lose charge at apex")
	}
}

// TestE8Shape: the modified-PRS scheme must beat the naive decode in
// reconstruction error.
func TestE8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tab := runQuick(t, E8ModifiedPRS)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	naiveErr := cell(t, tab, 0, 2)
	modErr := cell(t, tab, 2, 2)
	if modErr >= naiveErr {
		t.Errorf("modified PRS error %g should beat naive %g", modErr, naiveErr)
	}
	// The modified sequence doubles the gating bin rate (oversample 2 at
	// half bin width): pulses per ms should be at least that of the plain
	// scheme.
	if cell(t, tab, 2, 1) < cell(t, tab, 0, 1) {
		t.Error("modified PRS should not reduce gate pulse rate")
	}
}

// TestAblations: both ablation tables must demonstrate their design choice.
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	a1 := runQuick(t, AblationDirectVsFHT)
	for r := range a1.Rows {
		if sp := cell(t, a1, r, 4); sp <= 1 {
			t.Errorf("A1 row %d: FHT speedup %g should exceed 1", r, sp)
		}
	}
	a2 := runQuick(t, AblationAccumulatePlacement)
	lastRow := a2.Rows[len(a2.Rows)-1]
	if lastRow[2] == "true" {
		t.Error("A2: raw streaming should become infeasible at the highest rate")
	}
	if lastRow[4] != "true" {
		t.Error("A2: accumulated streaming should remain feasible")
	}
}

func TestTheoreticalGain(t *testing.T) {
	// (N+1)/(2 sqrt N) for N=255 is ~8.
	g := theoreticalGain(255)
	if g < 7.9 || g > 8.1 {
		t.Errorf("theoretical gain %g, want ~8", g)
	}
}

func TestTopFeatures(t *testing.T) {
	rows := topFeatures(nil, 5)
	if len(rows) != 0 {
		t.Error("no features should give no rows")
	}
}

// TestE13Shape: ADC must preserve the 100x ratio far better than TDC in the
// regime between the two saturation points.
func TestE13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tab := runQuick(t, E13DetectionDynamicRange)
	// First quick row: 1e7 charges/s — ADC linear, TDC saturated.
	adc := cell(t, tab, 0, 1)
	tdc := cell(t, tab, 0, 2)
	if adc < 10*tdc {
		t.Errorf("ADC ratio %g should dwarf TDC ratio %g at moderate flux", adc, tdc)
	}
	if tdc > 10 {
		t.Errorf("TDC ratio %g should be heavily compressed", tdc)
	}
}

// TestE14Shape: identifications accumulate across the gradient.
func TestE14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tab := runQuick(t, E14LCGradient)
	prev := -1.0
	for r := range tab.Rows {
		cum := cell(t, tab, r, 5)
		if cum < prev {
			t.Errorf("cumulative identifications decreased at segment %d", r)
		}
		prev = cum
	}
	if prev < 3 {
		t.Errorf("cumulative unique peptides %g, want >= 3", prev)
	}
}

// TestE15Shape: the saturated pipeline is bounded by the deconvolve core
// and slower arrivals stretch cycles/col accordingly.
func TestE15Shape(t *testing.T) {
	tab := runQuick(t, E15StreamingDynamics)
	sat := cell(t, tab, 0, 1)
	slow := cell(t, tab, len(tab.Rows)-1, 1)
	if slow <= sat {
		t.Error("slower arrivals should increase cycles per column")
	}
	if tab.Rows[0][3] != "deconvolve" {
		t.Errorf("saturated bottleneck %q, want deconvolve", tab.Rows[0][3])
	}
}

// TestE16Shape: most peptides gain fragment evidence, decoy matches stay
// rare.
func TestE16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tab := runQuick(t, E16MultiplexedCID)
	var identified, decoys, queried int
	for r := range tab.Rows {
		if tab.Rows[r][6] == "true" {
			identified++
		}
		decoys += int(cell(t, tab, r, 5))
		queried += int(cell(t, tab, r, 3))
	}
	if identified < len(tab.Rows)/2 {
		t.Errorf("identified %d of %d peptides", identified, len(tab.Rows))
	}
	if decoys*10 > queried {
		t.Errorf("decoy matches %d of %d queried fragments — too many", decoys, queried)
	}
}

// TestE17Shape: delta < raw < csv.
func TestE17Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tab := runQuick(t, E17FrameFormat)
	sizes := map[string]float64{}
	for r := range tab.Rows {
		sizes[tab.Rows[r][0]] = cell(t, tab, r, 1)
	}
	// Delta must be the smallest encoding (raw-vs-CSV ordering depends on
	// frame sparsity and is not asserted).
	if !(sizes["delta varint"] < sizes["raw float64"] && sizes["delta varint"] < sizes["csv"]) {
		t.Errorf("delta not smallest: %v", sizes)
	}
	if sizes["delta varint"]*3 > sizes["raw float64"] {
		t.Errorf("delta compression too weak: %v", sizes)
	}
}

// TestE18Shape: aggregate rate is nondecreasing, efficiency 1 at one node,
// and the host link limits the largest configurations.
func TestE18Shape(t *testing.T) {
	tab := runQuick(t, E18ClusterScaling)
	if cell(t, tab, 0, 4) < 0.99 {
		t.Error("single-node efficiency should be 1")
	}
	prev := 0.0
	for r := range tab.Rows {
		agg := cell(t, tab, r, 2)
		if agg < prev {
			t.Errorf("aggregate decreased at row %d", r)
		}
		prev = agg
	}
	if tab.Rows[len(tab.Rows)-1][5] != "host-link" {
		t.Error("largest configuration should be host-link limited")
	}
}

// TestE19Shape: calibrants recover within the fit residual, unknowns within
// ~1 %.
func TestE19Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tab := runQuick(t, E19CCSCalibration)
	for r := range tab.Rows {
		errPct := cell(t, tab, r, 5)
		limit := 1.5
		if tab.Rows[r][1] == "calibrant" {
			limit = 0.5
		}
		if errPct > limit {
			t.Errorf("%s (%s): CCS error %g%% exceeds %g%%", tab.Rows[r][0], tab.Rows[r][1], errPct, limit)
		}
	}
}

// TestE20Shape: measured isotope ratios within 15 % of theory.
func TestE20Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tab := runQuick(t, E20IsotopeFidelity)
	for r := range tab.Rows {
		if dev := cell(t, tab, r, 4); dev > 15 {
			t.Errorf("%s: isotope ratio deviation %g%% exceeds 15%%", tab.Rows[r][0], dev)
		}
	}
	// Theory ratio grows with mass.
	if len(tab.Rows) >= 2 {
		if cell(t, tab, len(tab.Rows)-1, 2) <= cell(t, tab, 0, 2) {
			t.Error("theoretical M+1/M should grow with mass")
		}
	}
}
