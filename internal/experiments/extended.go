// extended.go: extension experiments beyond the core E1–E12 set — the
// ADC-vs-TDC detection contrast (E13), a time-resolved LC-gradient run
// (E14), and the clocked streaming dynamics of the FPGA pipeline (E15).
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/instrument"
	"repro/internal/peaks"
	"repro/internal/telemetry"
	"repro/internal/xd1"
)

// E13DetectionDynamicRange reproduces the ADC-vs-TDC contrast that
// motivated the multiplexed instrument's ADC digitizer (Belov et al. 2008):
// the apparent intensity ratio of a strong and a 100× weaker analyte as the
// source current grows.  The TDC's dead time saturates the strong peak and
// compresses the ratio; the ADC tracks it until its own full scale.
func E13DetectionDynamicRange(seed int64, quick bool) (*Table, error) {
	rates := []float64{1e6, 1e7, 1e8}
	if quick {
		rates = []float64{1e7, 1e8}
	}
	t := &Table{
		ID:      "E13",
		Title:   "Apparent strong/weak intensity ratio (true 100x) vs source current: ADC vs TDC detection",
		Columns: []string{"source (charges/s)", "ADC ratio", "TDC ratio", "ADC/true", "TDC/true"},
		Notes: []string{
			"true abundance ratio is 100; values near 100 mean faithful dynamic range",
			"single-stop TDC saturates at one event per extraction per bin",
		},
	}
	strong, err := chem.NewPeptide("RPPGFSPFR")
	if err != nil {
		return nil, err
	}
	weak, err := chem.NewPeptide("DRVYIHPF")
	if err != nil {
		return nil, err
	}
	for _, rate := range rates {
		ratioFor := func(kind instrument.DetectionKind) (float64, error) {
			var mix instrument.Mixture
			if err := mix.AddPeptide("strong", strong, 100); err != nil {
				return 0, err
			}
			if err := mix.AddPeptide("weak", weak, 1); err != nil {
				return 0, err
			}
			cfg := gainConfig(instrument.ModeSignalAveraging, 6)
			cfg.BinWidthS = 4e-4
			cfg.Detection = kind
			cfg.TDC = instrument.DefaultTDC()
			cfg.Detector.GainCounts = 2
			src, err := instrument.NewESISource(mix, rate)
			if err != nil {
				return 0, err
			}
			inst, err := instrument.New(cfg, src)
			if err != nil {
				return 0, err
			}
			frame, _, err := inst.Acquire(rand.New(rand.NewSource(seed)))
			if err != nil {
				return 0, err
			}
			// Apex above the column median (baseline-subtracted).
			apex := func(p chem.Peptide) float64 {
				mz, _ := p.MZ(2)
				col := cfg.TOF.BinOf(mz)
				vec := frame.DriftVector(col)
				sorted := append([]float64(nil), vec...)
				sortFloats(sorted)
				med := sorted[len(sorted)/2]
				max := 0.0
				for _, v := range vec {
					if v-med > max {
						max = v - med
					}
				}
				return max
			}
			s, w := apex(strong), apex(weak)
			if w <= 0 {
				w = 0.5 // below one count: report against half a count
			}
			return s / w, nil
		}
		adc, err := ratioFor(instrument.DetectionADC)
		if err != nil {
			return nil, err
		}
		tdc, err := ratioFor(instrument.DetectionTDC)
		if err != nil {
			return nil, err
		}
		t.AddRow(rate, adc, tdc, adc/100, tdc/100)
	}
	return t, nil
}

// sortFloats sorts in place (tiny wrapper keeping the call sites terse).
func sortFloats(x []float64) { sort.Float64s(x) }

// E14LCGradient reproduces the time-resolved LC-IMS-MS run of the
// high-throughput platform papers (15-minute analyses, Belov 2008): the BSA
// digest elutes as chromatographic peaks across a gradient while the
// multiplexed instrument acquires consecutive segments; each segment is
// deconvolved and identified independently.
func E14LCGradient(seed int64, quick bool) (*Table, error) {
	segments := 6
	peptidesPerRun := 24
	if quick {
		segments = 3
		peptidesPerRun = 12
	}
	t := &Table{
		ID:      "E14",
		Title:   "Time-resolved multiplexed LC-IMS-MS run: identifications per gradient segment",
		Columns: []string{"segment", "time (s)", "ion current (rel)", "features", "unique peptides", "cumulative unique"},
		Notes: []string{
			"peptides elute as EMG peaks spread across the gradient; identification is per segment",
		},
	}
	digest, err := chem.BSA().Digest(chem.Trypsin{}, 0, 6, 30)
	if err != nil {
		return nil, err
	}
	if len(digest) > peptidesPerRun {
		digest = digest[:peptidesPerRun]
	}
	rng := rand.New(rand.NewSource(seed))
	var mix instrument.Mixture
	named := map[string]chem.Peptide{}
	elution := map[int]instrument.LCPeak{}
	gradient := 120.0 // s
	for _, p := range digest {
		named[p.Sequence] = p
		before := len(mix.Analytes)
		if err := mix.AddPeptide(p.Sequence, p, 0.5+rng.Float64()); err != nil {
			return nil, err
		}
		pk := instrument.LCPeak{
			Retention: gradient * (0.05 + 0.9*rng.Float64()),
			Sigma:     6 + 4*rng.Float64(),
			Tau:       3,
		}
		for ai := before; ai < len(mix.Analytes); ai++ {
			elution[ai] = pk
		}
	}
	cands, err := peaks.CandidatesFromPeptides(named, true)
	if err != nil {
		return nil, err
	}

	cfg := gainConfig(instrument.ModeMultiplexedTrap, 8)
	cfg.TOF.Bins = 2048
	cfg.TOF.MaxMZ = 2500
	cfg.Frames = 4
	cfg.Detector.GainCounts = 2

	cumulative := map[string]bool{}
	segDur := gradient / float64(segments)
	for seg := 0; seg < segments; seg++ {
		// Acquire at the segment midpoint: shift each elution profile so
		// the acquisition window (instrument clock starts at 0) sees the
		// gradient state there.
		t0 := (float64(seg) + 0.5) * segDur
		segElution := map[int]instrument.LCPeak{}
		for ai, pk := range elution {
			shifted := pk
			shifted.Retention = pk.Retention - t0
			segElution[ai] = shifted
		}
		exp := &core.Experiment{
			Mixture:    mix,
			SourceRate: 5e6,
			Elution:    segElution,
			Config:     cfg,
		}
		res, err := exp.Run(rand.New(rand.NewSource(seed + int64(seg))))
		if err != nil {
			return nil, err
		}
		id, err := core.Identify(res.Decoded, cfg.TOF, cands, 5, 600, 2)
		if err != nil {
			return nil, err
		}
		for _, m := range id.Matches {
			if !m.Candidate.IsDecoy {
				cumulative[m.Candidate.Peptide.Sequence] = true
			}
		}
		rel := res.Stats.IonsGenerated / (5e6 * cfg.CycleDuration() * float64(cfg.Frames))
		t.AddRow(seg, t0, rel, len(id.Features), id.UniqueTargets, len(cumulative))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("total unique peptides across the gradient: %d of %d in the run",
		len(cumulative), len(digest)))
	return t, nil
}

// E15StreamingDynamics exercises the clocked FPGA pipeline model: sustained
// cycles per column, the bottleneck stage, and real-time verdicts across
// arrival rates — the dynamic counterpart of E3's steady-state budget.
func E15StreamingDynamics(seed int64, quick bool) (*Table, error) {
	intervals := []int64{0, 500, 1500, 5000}
	cols := 256
	if quick {
		intervals = []int64{0, 5000}
		cols = 64
	}
	t := &Table{
		ID:    "E15",
		Title: "Clocked FPGA pipeline dynamics vs column arrival interval",
		Columns: []string{"arrival (cycles)", "cycles/col", "throughput (cols/s)", "bottleneck", "real-time",
			"peak queue", "col latency p50", "col latency p99"},
		Notes: []string{
			"arrival 0 = saturation test; the deconvolve core's initiation interval bounds the sustained rate",
			"peak queue = deepest inter-stage FIFO high-water mark (tokens); latencies are capture-feed to dma-out, cycles",
		},
	}
	for _, iv := range intervals {
		cfg := hybrid.DefaultStreamConfig()
		cfg.Columns = cols
		cfg.ArrivalInterval = iv
		reg := registry()
		cfg.Metrics = reg
		latHist := reg.Histogram("hybrid_column_latency_cycles",
			"cycles from capture feed to dma-out acceptance, per column")
		latBefore := latHist.Counts()
		rep, err := hybrid.SimulateStream(cfg)
		if err != nil {
			return nil, err
		}
		lat := countsDelta(latHist.Counts(), latBefore)
		// The per-FIFO peak gauges are Set per run, so reading right after
		// the run is per-row even on the shared registry.
		peak := 0.0
		for _, fifo := range []string{"capture→accum", "accum→fht", "fht→dma"} {
			g := reg.Gauge("hybrid_queue_depth_peak",
				"high-water occupancy of each inter-stage queue, tokens", telemetry.L("fifo", fifo))
			if v := g.Value(); v > peak {
				peak = v
			}
		}
		t.AddRow(iv, rep.CyclesPerCol, rep.ThroughputCols, rep.Bottleneck, rep.RealTime,
			peak, telemetry.QuantileOfCounts(lat, 0.5), telemetry.QuantileOfCounts(lat, 0.99))
	}
	return t, nil
}

// E18ClusterScaling evaluates multi-node XD1 scaling of the deconvolution
// offload: frames distributed across nodes, decoded frames collected over a
// single host link that eventually caps the aggregate — the chassis-level
// projection of the hybrid design.
func E18ClusterScaling(seed int64, quick bool) (*Table, error) {
	nodesList := []int{1, 2, 4, 8, 16, 32}
	if quick {
		nodesList = []int{1, 4, 16}
	}
	t := &Table{
		ID:    "E18",
		Title: "Multi-node offload scaling with a single collection host",
		Columns: []string{"nodes", "per-node fps", "aggregate fps", "host limit fps", "efficiency", "limited by",
			"host util"},
		Notes: []string{
			"an XD1 chassis holds 6 nodes; collection saturates the host RapidArray link first",
			"host util = aggregate fps / host limit fps (collection-link utilization, 1.0 = saturated)",
		},
	}
	cfg := hybrid.DefaultOffloadConfig()
	host := xd1.RapidArray()
	for _, n := range nodesList {
		r, err := hybrid.AnalyzeCluster(cfg, n, host)
		if err != nil {
			return nil, err
		}
		util := r.AggregateFPS / r.HostLimitFPS
		if util > 1 {
			util = 1
		}
		t.AddRow(n, r.PerNodeFPS, r.AggregateFPS, r.HostLimitFPS, r.Efficiency, r.LimitedBy, util)
	}
	return t, nil
}
