// helpers.go: shared workload builders and measurement utilities for the
// experiment suite.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/telemetry"
)

// Metrics, when non-nil, aggregates telemetry across every instrumented
// experiment run — cmd/benchreport sets it when invoked with -metrics so
// the whole evaluation's stage-level activity lands in one exported
// snapshot.  When nil, instrumented experiments use private throwaway
// registries for their breakdown columns.
var Metrics *telemetry.Registry

// registry returns the shared Metrics registry when set, else a fresh
// private one scoped to a single experiment row.
func registry() *telemetry.Registry {
	if Metrics != nil {
		return Metrics
	}
	return telemetry.NewRegistry()
}

// countsDelta subtracts a before-snapshot of histogram bucket counts from an
// after-snapshot, so breakdown columns stay per-row even when the shared
// Metrics registry accumulates across the whole report.
func countsDelta(after, before [telemetry.NumBuckets]int64) [telemetry.NumBuckets]int64 {
	for i := range after {
		after[i] -= before[i]
	}
	return after
}

// standardMixture builds the nine-peptide calibrant mixture used by the
// signal-quality experiments (all standard peptides that fall inside the
// recorded m/z range).
func standardMixture(maxPeptides int) (instrument.Mixture, error) {
	var mix instrument.Mixture
	stds := chem.StandardPeptides()
	if maxPeptides > 0 && maxPeptides < len(stds) {
		stds = stds[:maxPeptides]
	}
	for _, s := range stds {
		if err := mix.AddPeptide(s.Name, s.Peptide, 1.0); err != nil {
			return instrument.Mixture{}, err
		}
	}
	return mix, nil
}

// gainConfig is the detector-noise-limited configuration used for SNR-gain
// measurements: single-ion response at the ADC noise level.
func gainConfig(mode instrument.Mode, order int) instrument.Config {
	cfg := instrument.DefaultConfig()
	cfg.Mode = mode
	cfg.SequenceOrder = order
	cfg.TOF.Bins = 256
	cfg.TOF.MaxMZ = 1700
	cfg.BinWidthS = 1e-4
	cfg.Frames = 4
	cfg.Detector.GainCounts = 1
	return cfg
}

// meanAnalyteSNR runs the experiment `trials` times with consecutive seeds
// and returns the mean SNR of the selected analyte.
func meanAnalyteSNR(exp *core.Experiment, analyte instrument.Analyte, seed int64, trials int) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("experiments: trials %d must be >= 1", trials)
	}
	var sum float64
	for t := int64(0); t < int64(trials); t++ {
		res, err := exp.Run(rand.New(rand.NewSource(seed + t)))
		if err != nil {
			return 0, err
		}
		rep, err := core.AnalyteSNR(res.Decoded, exp.Config.TOF, exp.Config.Tube, exp.Config.BinWidthS, analyte)
		if err != nil {
			return 0, err
		}
		sum += rep.SNR
	}
	return sum / float64(trials), nil
}

// dominantAnalyte returns the analyte with the largest abundance whose m/z
// is inside the recorded range.
func dominantAnalyte(mix instrument.Mixture, tof instrument.TOF) (instrument.Analyte, error) {
	best := -1
	for i, a := range mix.Analytes {
		if tof.BinOf(a.MZ) < 0 {
			continue
		}
		if best < 0 || a.Abundance > mix.Analytes[best].Abundance {
			best = i
		}
	}
	if best < 0 {
		return instrument.Analyte{}, fmt.Errorf("experiments: no analyte inside the recorded m/z range")
	}
	return mix.Analytes[best], nil
}
