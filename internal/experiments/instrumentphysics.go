// instrumentphysics.go: the instrument-physics experiments — Coulombic
// resolving-power degradation (E11) and automated gain control under a
// varying LC-like ion current (E12).
package experiments

import (
	"math"

	"repro/internal/chem"
	"repro/internal/instrument"
	"repro/internal/physics"
)

// E11SpaceCharge reproduces the Coulombic-effects figure (Tolmachev et al.
// 2009): effective resolving power of the drift tube versus charges per
// injected packet, with the onset of degradation near 10^4–10^5 charges.
func E11SpaceCharge(seed int64, quick bool) (*Table, error) {
	charges := []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7}
	if quick {
		charges = []float64{1e3, 1e5, 1e7}
	}
	t := &Table{
		ID:      "E11",
		Title:   "Effective IMS resolving power vs packet charge (Coulombic expansion)",
		Columns: []string{"charges/packet", "diffusion sigma (us)", "space-charge sigma (us)", "resolving power", "fraction of diffusion limit"},
		Notes: []string{
			"companion paper reports noticeable degradation above ~1e4 charges per packet",
		},
	}
	tube := instrument.DefaultDriftTube()
	p, err := chem.NewPeptide("DRVYIHPFHL")
	if err != nil {
		return nil, err
	}
	analytes, err := instrument.AnalytesFromPeptide("angiotensin I", p, 1, 0.2)
	if err != nil {
		return nil, err
	}
	a := analytes[0]
	// Diffusion-only reference.
	ref, err := tube.Arrival(a, 1e-4, 0)
	if err != nil {
		return nil, err
	}
	refR := physics.EffectiveResolvingPower(ref.MeanS, ref.SigmaS)
	for _, q := range charges {
		arr, err := tube.Arrival(a, 1e-4, q)
		if err != nil {
			return nil, err
		}
		r := physics.EffectiveResolvingPower(arr.MeanS, arr.SigmaS)
		scSigma := 0.0
		if arr.SigmaS > ref.SigmaS {
			scSigma = sqrtDiff(arr.SigmaS, ref.SigmaS)
		}
		t.AddRow(q, ref.SigmaS*1e6, scSigma*1e6, r, r/refR)
	}
	return t, nil
}

// sqrtDiff returns the quadrature complement sqrt(total² − other²).
func sqrtDiff(total, other float64) float64 {
	d := total*total - other*other
	if d <= 0 {
		return 0
	}
	return math.Sqrt(d)
}

// E12AGC reproduces the automated-gain-control table (Belov et al. 2008):
// trap fill-time adaptation across an LC-like elution transient, against a
// fixed-fill baseline that saturates the trap at the peak apex.
func E12AGC(seed int64, quick bool) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "AGC trap fill adaptation across an LC elution transient vs fixed fill time",
		Columns: []string{"time (s)", "ion current (charges/s)", "AGC fill (ms)", "AGC packet/target",
			"fixed packet/capacity", "fixed losses (charges)"},
		Notes: []string{
			"AGC target 1e6 charges; fixed fill time 60 ms (tuned for the baseline current)",
			"without AGC the packet saturates the 3e7-charge trap at the elution apex",
		},
	}
	peak := instrument.LCPeak{Retention: 30, Sigma: 4, Tau: 3}
	baseRate := 5e6 // between peaks
	apexRate := 5e8 // at the elution apex
	rate := func(tm float64) float64 {
		apex := peak.Amplitude(peak.Retention)
		return baseRate + (apexRate-baseRate)*peak.Amplitude(tm)/apex
	}
	agc, err := instrument.NewAGC(1e6, 1e-5, 0.5)
	if err != nil {
		return nil, err
	}
	agcTrap, err := instrument.NewFunnelTrap(3e7, 0.9, 1.0)
	if err != nil {
		return nil, err
	}
	fixedTrap, err := instrument.NewFunnelTrap(3e7, 0.9, 1.0)
	if err != nil {
		return nil, err
	}
	// Fixed fill tuned to hit the target at the baseline current.
	fixedFill := 1e6 / (baseRate * 0.9)
	report := []float64{5, 15, 25, 30, 35, 45, 60}
	if quick {
		report = []float64{5, 30, 60}
	}
	// Run the AGC loop continuously across the transient (as the real
	// controller does, one observation per trap cycle) and report the
	// state at the requested times.
	next := 0
	for now := 0.0; now <= 61 && next < len(report); {
		r := rate(now)
		ft := agc.NextFillTime()
		agcTrap.Accumulate(r, ft)
		agcPacket := agcTrap.Release()
		agc.Observe(agcPacket, ft)

		lost := fixedTrap.Accumulate(r, fixedFill)
		fixedPacket := fixedTrap.Release()

		if now >= report[next] {
			t.AddRow(report[next], r, ft*1e3, agcPacket/1e6, fixedPacket/3e7, lost)
			next++
		}
		step := ft
		if fixedFill > step {
			step = fixedFill
		}
		now += step
	}
	return t, nil
}
