// performance.go: the data-processing performance experiments — FPGA vs
// CPU deconvolution (E3), CPU strong scaling (E4), the capture data path
// (E5), fixed-point precision (E10), and the two design ablations.
package experiments

import (
	"math/rand"
	"runtime"
	"time"

	"repro/internal/fpga"
	"repro/internal/hadamard"
	"repro/internal/hybrid"
	"repro/internal/instrument"
	"repro/internal/pipeline"
	"repro/internal/prs"
	"repro/internal/telemetry"
	"repro/internal/xd1"
)

// encodedTestFrame builds a multiplexed frame with known content for
// throughput and fidelity measurements.
func encodedTestFrame(order, cols int, seed int64) (*instrument.Frame, *instrument.Frame, error) {
	s, err := prs.MSequence(order)
	if err != nil {
		return nil, nil, err
	}
	n := len(s)
	rng := rand.New(rand.NewSource(seed))
	truth := instrument.NewFrame(n, cols)
	enc := instrument.NewFrame(n, cols)
	for c := 0; c < cols; c++ {
		x := make([]float64, n)
		for k := 0; k < 4; k++ {
			x[rng.Intn(n)] = 50 + rng.Float64()*500
		}
		y, err := hadamard.Encode(s, x)
		if err != nil {
			return nil, nil, err
		}
		truth.SetDriftVector(c, x)
		enc.SetDriftVector(c, y)
	}
	return enc, truth, nil
}

// timeCPUFrame measures single-threaded software deconvolution of a frame,
// returning seconds per frame; per-column latencies land in reg (which may
// be nil).
func timeCPUFrame(f *instrument.Frame, order int, reps int, reg *telemetry.Registry) (float64, error) {
	factory := func() (hadamard.Decoder, error) { return hadamard.NewFHTDecoder(order) }
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := pipeline.DeconvolveFrameWithMetrics(f, factory, 1, reg); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(reps), nil
}

// E3FPGAvsCPU reproduces the hardware-vs-software deconvolution table:
// modeled FPGA frame rates against measured single-thread and all-core
// software rates, with the real-time margin over the instrument's frame
// production.
func E3FPGAvsCPU(seed int64, quick bool) (*Table, error) {
	orders := []int{9, 10, 11}
	cols := 256
	reps := 3
	if quick {
		orders = []int{9}
		cols = 64
		reps = 1
	}
	t := &Table{
		ID:    "E3",
		Title: "Deconvolution throughput: modeled FPGA offload vs measured software",
		Columns: []string{"order", "cols", "FPGA cycles/col", "FPGA frames/s", "CPU(1) frames/s",
			"CPU(all) frames/s", "FPGA/CPU(1)", "instr frames/s", "real-time margin",
			"col p50 us", "col p99 us"},
		Notes: []string{
			"FPGA rate from the cycle model at the Virtex-II Pro 150 MHz clock over the RapidArray fabric",
			"CPU rates measured on the simulation host (not Opteron-scaled); margin = FPGA rate / instrument rate",
		},
	}
	for _, order := range orders {
		enc, _, err := encodedTestFrame(order, cols, seed)
		if err != nil {
			return nil, err
		}
		off := hybrid.DefaultOffloadConfig()
		off.Order = order
		off.TOFColumns = cols
		rep, err := hybrid.AnalyzeOffload(off)
		if err != nil {
			return nil, err
		}
		// Per-column decode latency quantiles come from the telemetry
		// histogram wired through the decode; a before/after counts delta
		// keeps the row truthful under the shared benchreport registry.
		reg := registry()
		colHist := reg.Histogram("pipeline_column_decode_ns", "per-column software decode latency, nanoseconds")
		before := colHist.Counts()
		cpu1, err := timeCPUFrame(enc, order, reps, reg)
		if err != nil {
			return nil, err
		}
		rowCounts := countsDelta(colHist.Counts(), before)
		factory := func() (hadamard.Decoder, error) { return hadamard.NewFHTDecoder(order) }
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := pipeline.DeconvolveFrame(enc, factory, 0); err != nil {
				return nil, err
			}
		}
		cpuAll := time.Since(start).Seconds() / float64(reps)

		// Instrument frame production rate at 100 µs bins, 10 cycles
		// accumulated per frame.
		n := int(1)<<order - 1
		instrRate := 1.0 / (float64(n*10) * 1e-4)
		t.AddRow(order, cols, rep.ColumnCycles, rep.FramesPerSec, 1/cpu1, 1/cpuAll,
			(1/rep.FrameTimeS)/(1/cpu1), instrRate, rep.FramesPerSec/instrRate,
			telemetry.QuantileOfCounts(rowCounts, 0.5)/1e3,
			telemetry.QuantileOfCounts(rowCounts, 0.99)/1e3)
	}
	return t, nil
}

// E4CPUScaling reproduces the software strong-scaling figure: frames/s of
// the column-parallel deconvolution versus worker count.
func E4CPUScaling(seed int64, quick bool) (*Table, error) {
	order := 10
	cols := 512
	reps := 3
	if quick {
		order = 9
		cols = 128
		reps = 1
	}
	t := &Table{
		ID:      "E4",
		Title:   "CPU strong scaling of frame deconvolution",
		Columns: []string{"workers", "frames/s", "speedup", "efficiency", "busy frac"},
		Notes: []string{
			"column-parallel FHT decoding; ideal scaling is linear in workers",
			"busy frac = cumulative worker decode time / (wall time x workers), from pipeline_worker_busy_ns_total",
		},
	}
	enc, _, err := encodedTestFrame(order, cols, seed)
	if err != nil {
		return nil, err
	}
	factory := func() (hadamard.Decoder, error) { return hadamard.NewFHTDecoder(order) }
	maxW := runtime.GOMAXPROCS(0)
	reg := registry()
	busyC := reg.Counter("pipeline_worker_busy_ns_total", "cumulative wall time workers spent decoding, nanoseconds")
	var base float64
	for workers := 1; workers <= maxW; workers *= 2 {
		busyBefore := busyC.Value()
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := pipeline.DeconvolveFrameWithMetrics(enc, factory, workers, reg); err != nil {
				return nil, err
			}
		}
		wall := time.Since(start)
		perFrame := wall.Seconds() / float64(reps)
		rate := 1 / perFrame
		if workers == 1 {
			base = rate
		}
		busyFrac := float64(busyC.Value()-busyBefore) / (float64(wall.Nanoseconds()) * float64(workers))
		t.AddRow(workers, rate, rate/base, rate/base/float64(workers), busyFrac)
	}
	return t, nil
}

// E5DataPath reproduces the capture/accumulation budget table: the raw
// digitizer stream versus the post-accumulation stream across on-FPGA
// averaging depths, with fabric utilization and real-time verdicts.
func E5DataPath(seed int64, quick bool) (*Table, error) {
	depths := []int{1, 10, 50, 100}
	if quick {
		depths = []int{1, 10}
	}
	t := &Table{
		ID:    "E5",
		Title: "Capture data path: on-FPGA accumulation vs streaming raw samples",
		Columns: []string{"cycles accumulated", "raw MB/s", "accum MB/s", "reduction", "raw fabric util",
			"accum fabric util", "FPGA util", "BRAM Mbit", "fits BRAM", "real-time",
			"capture util", "accum util"},
		Notes: []string{
			"raw fabric utilization is what host-side processing would pay without the FPGA front end",
		},
	}
	for _, d := range depths {
		cfg := hybrid.DefaultDataPathConfig()
		cfg.CyclesAccumulated = d
		rep, err := hybrid.AnalyzeDataPath(cfg)
		if err != nil {
			return nil, err
		}
		clock := cfg.Node.FPGA.ClockHz
		t.AddRow(d, rep.RawByteRate/1e6, rep.AccumulatedByteRate/1e6, rep.ReductionFactor,
			rep.RawFabricUtilization, rep.AccumulatedFabricUtilization, rep.FPGAUtilization,
			float64(rep.BRAMBitsNeeded)/1e6, rep.BRAMOK, rep.RealTime,
			rep.CaptureCyclesPerSec/clock, rep.AccumCyclesPerSec/clock)
	}
	return t, nil
}

// E10FixedPoint reproduces the FPGA precision study: reconstruction error
// and saturation counts of the fixed-point FHT core across word widths and
// growth policies, against the float64 reference.
func E10FixedPoint(seed int64, quick bool) (*Table, error) {
	order := 9
	cols := 32
	if quick {
		order = 8
		cols = 8
	}
	t := &Table{
		ID:      "E10",
		Title:   "Fixed-point FHT deconvolution error vs word format (float64 reference)",
		Columns: []string{"format", "growth", "mean err", "saturations"},
		Notes:   []string{"errors are relative RMS against the float64 decode of the same data"},
	}
	enc, _, err := encodedTestFrame(order, cols, seed)
	if err != nil {
		return nil, err
	}
	type cfg struct {
		f      fpga.Format
		growth fpga.GrowthPolicy
		name   string
	}
	cfgs := []cfg{
		{fpga.MustQ(12, 0), fpga.GrowthSaturate, "saturate"},
		{fpga.MustQ(12, 0), fpga.GrowthScalePerStage, "scale/stage"},
		{fpga.MustQ(16, 4), fpga.GrowthSaturate, "saturate"},
		{fpga.MustQ(23, 8), fpga.GrowthSaturate, "saturate"},
		{fpga.MustQ(30, 12), fpga.GrowthSaturate, "saturate"},
	}
	for _, c := range cfgs {
		core, err := fpga.NewFHTCore(order, c.f, c.growth, 4, 2)
		if err != nil {
			return nil, err
		}
		var sumErr float64
		for col := 0; col < cols; col++ {
			y := enc.DriftVector(col)
			got, _, err := core.Deconvolve(y)
			if err != nil {
				return nil, err
			}
			want, err := core.ReferenceDeconvolve(y)
			if err != nil {
				return nil, err
			}
			e, err := hadamard.ReconstructionError(got, want)
			if err != nil {
				return nil, err
			}
			sumErr += e
		}
		t.AddRow(c.f.String(), c.name, sumErr/float64(cols), core.Saturations())
	}
	return t, nil
}

// AblationDirectVsFHT measures the O(N²) direct simplex inverse against the
// O(N log N) FHT decode — the algorithmic choice that makes the FPGA core
// viable.
func AblationDirectVsFHT(seed int64, quick bool) (*Table, error) {
	orders := []int{8, 9, 10, 11}
	reps := 20
	if quick {
		orders = []int{8, 9}
		reps = 5
	}
	t := &Table{
		ID:      "A1",
		Title:   "Ablation: direct O(N^2) simplex inverse vs fast Hadamard decode",
		Columns: []string{"order", "N", "direct us/col", "FHT us/col", "speedup"},
	}
	for _, order := range orders {
		s, err := prs.MSequence(order)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		y := make([]float64, len(s))
		for i := range y {
			y[i] = rng.Float64() * 100
		}
		std, err := hadamard.NewStandardDecoder(s)
		if err != nil {
			return nil, err
		}
		fht, err := hadamard.NewFHTDecoder(order)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := std.DecodeNaive(y); err != nil {
				return nil, err
			}
		}
		direct := time.Since(start).Seconds() / float64(reps) * 1e6
		start = time.Now()
		for i := 0; i < reps*10; i++ {
			if _, err := fht.Decode(y); err != nil {
				return nil, err
			}
		}
		fast := time.Since(start).Seconds() / float64(reps*10) * 1e6
		t.AddRow(order, len(s), direct, fast, direct/fast)
	}
	return t, nil
}

// AblationAccumulatePlacement contrasts the two data-path designs: stream
// every raw digitizer sample to the host versus accumulate on-FPGA first,
// as the digitizer's native conversion rate grows.
func AblationAccumulatePlacement(seed int64, quick bool) (*Table, error) {
	rates := []float64{5e8, 1e9, 2e9, 4e9}
	if quick {
		rates = []float64{1e9, 4e9}
	}
	t := &Table{
		ID:      "A2",
		Title:   "Ablation: raw streaming vs on-FPGA accumulation as the digitizer rate grows",
		Columns: []string{"native GS/s", "raw MB/s", "raw feasible", "accum MB/s", "accum feasible"},
		Notes:   []string{"feasible = stream fits the RapidArray link (1.6 GB/s)"},
	}
	fabric := xd1.RapidArray()
	for _, r := range rates {
		cfg := hybrid.DefaultDataPathConfig()
		cfg.NativeSampleRate = r
		rep, err := hybrid.AnalyzeDataPath(cfg)
		if err != nil {
			return nil, err
		}
		rawOK := fabric.Utilization(rep.RawByteRate) <= 1
		accOK := fabric.Utilization(rep.AccumulatedByteRate) <= 1
		t.AddRow(r/1e9, rep.RawByteRate/1e6, rawOK, rep.AccumulatedByteRate/1e6, accOK)
	}
	return t, nil
}
