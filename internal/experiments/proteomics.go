// proteomics.go: the application-level experiments — dynamic range with
// spiked peptides in a complex matrix (E7) and peptide identifications from
// a BSA digest in a single multiplexed separation (E9).
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/peaks"
)

// spikePanel returns the named peptides used as the spiking series: the
// standard calibrants plus BSA marker peptides, 20 in all.
func spikePanel() ([]string, map[string]chem.Peptide, error) {
	named := map[string]chem.Peptide{}
	var order []string
	for _, s := range chem.StandardPeptides() {
		named[s.Name] = s.Peptide
		order = append(order, s.Name)
	}
	markers := []string{"LVNELTEFAK", "HLVDEPQNLIK", "YLYEIAR", "LGEYGFQNALIVR",
		"DAFLGSFLYEYSR", "TCVADESHAGCEK", "AEFVEVTK", "QTALVELLK"}
	for _, seq := range markers {
		p, err := chem.NewPeptide(seq)
		if err != nil {
			return nil, nil, err
		}
		name := "bsa-" + seq
		named[name] = p
		order = append(order, name)
	}
	if len(order) < 20 {
		return nil, nil, fmt.Errorf("experiments: spike panel has only %d peptides", len(order))
	}
	order = order[:20]
	return order, named, nil
}

// E7DynamicRange reproduces the spiked-peptide dynamic-range figure
// (cf. Baker et al. 2010: 20 peptides spiked into plasma; the IMS-TOF
// platform detected 19/20 while the conventional platform found 13/20):
// a two-fold dilution series of 20 peptides in a synthetic plasma-like
// matrix, detected count per acquisition mode.
func E7DynamicRange(seed int64, quick bool) (*Table, error) {
	matrixProteins := 8
	tofBins := 2048
	frames := 8
	if quick {
		matrixProteins = 3
		tofBins = 1024
		frames = 4
	}
	// ~4 decades of spike levels (0.6-fold steps), as in the companion
	// platform paper's 1 ng/mL - 10 ug/mL series.
	const spikeTop, spikeFold = 2.0, 0.6
	t := &Table{
		ID:      "E7",
		Title:   "Spiked-peptide detection across a 2-fold dilution series in a plasma-like matrix",
		Columns: []string{"peptide", "relative level", "SA SNR", "trap SNR", "SA detected", "trap detected"},
		Notes: []string{
			"detection threshold SNR >= 3 at the expected (m/z, drift) location in both of two replicates; SNR columns report the worse replicate",
			"companion LC-IMS-MS platform paper: 19/20 detected vs 13/20 for the conventional platform",
		},
	}
	names, named, err := spikePanel()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	matrix, err := chem.ComplexMatrix(rng, matrixProteins, 3)
	if err != nil {
		return nil, err
	}

	build := func() (instrument.Mixture, map[string]instrument.Analyte, error) {
		var mix instrument.Mixture
		levels := chem.SpikeLevels(len(names), spikeTop, spikeFold)
		var spikeTotal float64
		for _, l := range levels {
			spikeTotal += l
		}
		// Matrix peptides: total abundance normalized to 10x the spikes
		// (the matrix dominates, but within the run's dynamic range).
		var matrixTotal float64
		for _, ap := range matrix {
			matrixTotal += ap.Abundance
		}
		matrixScale := 10 * spikeTotal / matrixTotal
		for i, ap := range matrix {
			if err := mix.AddPeptide(fmt.Sprintf("mx%d", i), ap.Peptide, ap.Abundance*matrixScale); err != nil {
				return instrument.Mixture{}, nil, err
			}
		}
		spikeAnalytes := map[string]instrument.Analyte{}
		for i, name := range names {
			before := len(mix.Analytes)
			if err := mix.AddPeptide(name, named[name], levels[i]); err != nil {
				return instrument.Mixture{}, nil, err
			}
			// Track the dominant charge state of each spike.
			best := before
			for j := before; j < len(mix.Analytes); j++ {
				if mix.Analytes[j].Abundance > mix.Analytes[best].Abundance {
					best = j
				}
			}
			spikeAnalytes[name] = mix.Analytes[best]
		}
		return mix, spikeAnalytes, nil
	}

	mix, spikes, err := build()
	if err != nil {
		return nil, err
	}
	cfgFor := func(mode instrument.Mode) instrument.Config {
		cfg := gainConfig(mode, 8)
		cfg.TOF.Bins = tofBins
		cfg.TOF.MaxMZ = 2500
		cfg.Frames = frames
		return cfg
	}
	// Two technical replicates per mode: a spike counts as detected only
	// when it clears the SNR threshold in both, suppressing noise-maximum
	// false positives (standard replicate-confirmation practice).
	run := func(mode instrument.Mode, replicate int64) (*core.Result, instrument.Config, error) {
		cfg := cfgFor(mode)
		exp := &core.Experiment{Mixture: mix, SourceRate: 1e7, Config: cfg}
		res, err := exp.Run(rand.New(rand.NewSource(seed + replicate)))
		return res, cfg, err
	}
	type modeRun struct {
		res [2]*core.Result
		cfg instrument.Config
	}
	runs := map[instrument.Mode]*modeRun{}
	for _, mode := range []instrument.Mode{instrument.ModeSignalAveraging, instrument.ModeMultiplexedTrap} {
		mr := &modeRun{}
		for rep := int64(0); rep < 2; rep++ {
			res, cfg, err := run(mode, 1+rep)
			if err != nil {
				return nil, err
			}
			mr.res[rep] = res
			mr.cfg = cfg
		}
		runs[mode] = mr
	}

	levels := chem.SpikeLevels(len(names), spikeTop, spikeFold)
	var saCount, trCount int
	const thresh = 3.0
	snrBoth := func(mr *modeRun, a instrument.Analyte) (float64, bool, error) {
		var worst float64 = -1
		det := true
		for _, res := range mr.res {
			rep, err := core.AnalyteSNR(res.Decoded, mr.cfg.TOF, mr.cfg.Tube, mr.cfg.BinWidthS, a)
			if err != nil {
				return 0, false, err
			}
			if worst < 0 || rep.SNR < worst {
				worst = rep.SNR
			}
			if rep.SNR < thresh {
				det = false
			}
		}
		return worst, det, nil
	}
	for i, name := range names {
		a := spikes[name]
		saSNR, saDet, err := snrBoth(runs[instrument.ModeSignalAveraging], a)
		if err != nil {
			return nil, err
		}
		trSNR, trDet, err := snrBoth(runs[instrument.ModeMultiplexedTrap], a)
		if err != nil {
			return nil, err
		}
		if saDet {
			saCount++
		}
		if trDet {
			trCount++
		}
		t.AddRow(name, levels[i], saSNR, trSNR, saDet, trDet)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("detected: signal averaging %d/%d, multiplexed+trap %d/%d",
		saCount, len(names), trCount, len(names)))
	return t, nil
}

// E9PeptideIDs reproduces the single-separation identification table
// (cf. Clowers et al. 2010: 20 unique BSA tryptic peptides identified from
// one multiplexed IMS separation at FDR < 1 %): a BSA digest acquired in
// one trapped multiplexed run, features matched against the theoretical
// digest with mass-shifted decoys.
func E9PeptideIDs(seed int64, quick bool) (*Table, error) {
	frames := 8
	if quick {
		frames = 4
	}
	t := &Table{
		ID:      "E9",
		Title:   "Unique BSA tryptic peptides identified from a single multiplexed IMS separation",
		Columns: []string{"metric", "value"},
		Notes: []string{
			"companion CID-TOF paper: 20 unique peptides at FDR < 1 % from direct infusion of a BSA digest",
		},
	}
	digest, err := chem.BSA().Digest(chem.Trypsin{}, 0, 6, 30)
	if err != nil {
		return nil, err
	}
	var mix instrument.Mixture
	named := map[string]chem.Peptide{}
	rng := rand.New(rand.NewSource(seed))
	for _, p := range digest {
		name := p.Sequence
		named[name] = p
		// Digest abundances vary ~1 decade run to run.
		ab := 0.3 + rng.Float64()
		if err := mix.AddPeptide(name, p, ab); err != nil {
			return nil, err
		}
	}
	cfg := gainConfig(instrument.ModeMultiplexedTrap, 8)
	cfg.TOF.Bins = 4096
	cfg.TOF.MaxMZ = 2500
	cfg.Frames = frames
	cfg.Detector.GainCounts = 2
	exp := &core.Experiment{Mixture: mix, SourceRate: 5e6, Config: cfg}
	res, err := exp.Run(rand.New(rand.NewSource(seed + 1)))
	if err != nil {
		return nil, err
	}
	cands, err := peaks.CandidatesFromPeptides(named, true)
	if err != nil {
		return nil, err
	}
	id, err := core.Identify(res.Decoded, cfg.TOF, cands, 5, 600, 2)
	if err != nil {
		return nil, err
	}
	t.AddRow("detectable tryptic peptides (6-30 aa)", len(digest))
	t.AddRow("features found", len(id.Features))
	t.AddRow("matches", len(id.Matches))
	t.AddRow("unique peptides identified", id.UniqueTargets)
	t.AddRow("FDR", id.FDR)
	t.AddRow("ion utilization", res.Stats.Utilization)
	return t, nil
}

// topFeatures is a reporting helper: the n most intense features as rows.
func topFeatures(feats []peaks.Feature, n int) [][]string {
	sorted := append([]peaks.Feature(nil), feats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Intensity > sorted[j].Intensity })
	if n > len(sorted) {
		n = len(sorted)
	}
	rows := make([][]string, 0, n)
	for _, f := range sorted[:n] {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", f.MZ),
			fmt.Sprintf("%d", f.DriftBin),
			fmt.Sprintf("%.1f", f.Intensity),
			fmt.Sprintf("%.1f", f.SNR),
		})
	}
	return rows
}
