// signal.go: the signal-quality experiments — multiplexing gain (E1),
// deconvolution fidelity (E2), ion utilization (E6), modified-PRS
// enhancement (E8).
package experiments

import (
	"math"
	"math/rand"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/hadamard"
	"repro/internal/instrument"
	"repro/internal/prs"
)

// E1MultiplexingGain reproduces the SNR-gain-versus-sequence-order table:
// conventional signal averaging vs. multiplexed vs. trapped multiplexed at
// equal acquisition time, with the detector-noise-limited theoretical gain
// (N+1)/(2√N) for reference.
func E1MultiplexingGain(seed int64, quick bool) (*Table, error) {
	orders := []int{6, 7, 8, 9}
	trials := 5
	if quick {
		orders = []int{6, 8}
		trials = 2
	}
	t := &Table{
		ID:      "E1",
		Title:   "SNR gain of multiplexed acquisition over signal averaging vs PRS order (equal time)",
		Columns: []string{"order", "N", "SA SNR", "MP SNR", "trap SNR", "MP gain", "trap gain", "theory (N+1)/2sqrtN"},
		Notes: []string{
			"companion papers report ~10x for the trapped multiplexed mode at order 8-9 in the detector-noise limit",
			"measured gains fall below theory as analyte shot noise grows relative to ADC noise",
		},
	}
	p, err := chem.NewPeptide("RPPGFSPFR") // bradykinin
	if err != nil {
		return nil, err
	}
	for _, order := range orders {
		n := 1<<order - 1
		var snr [3]float64
		for mi, mode := range []instrument.Mode{instrument.ModeSignalAveraging, instrument.ModeMultiplexed, instrument.ModeMultiplexedTrap} {
			var mix instrument.Mixture
			if err := mix.AddPeptide("bradykinin", p, 1); err != nil {
				return nil, err
			}
			exp := &core.Experiment{
				Mixture:    mix,
				SourceRate: 3e5,
				Config:     gainConfig(mode, order),
			}
			a := mix.Analytes[1] // 2+ dominant state
			s, err := meanAnalyteSNR(exp, a, seed, trials)
			if err != nil {
				return nil, err
			}
			snr[mi] = s
		}
		theory := float64(n+1) / (2 * math.Sqrt(float64(n)))
		t.AddRow(order, n, snr[0], snr[1], snr[2], snr[1]/snr[0], snr[2]/snr[0], theory)
	}
	return t, nil
}

// E2DeconvolutionFidelity reproduces the reconstruction-fidelity figure:
// normalized reconstruction error of the recovered arrival distribution as
// detector noise grows, for the naive simplex decode versus the enhanced
// modulation-aware decode, on the trapped multiplexed instrument.
func E2DeconvolutionFidelity(seed int64, quick bool) (*Table, error) {
	noises := []float64{0.5, 1, 2, 4, 8}
	trials := 3
	if quick {
		noises = []float64{1, 4}
		trials = 1
	}
	t := &Table{
		ID:      "E2",
		Title:   "Reconstruction error vs ADC noise: naive simplex decode vs enhanced (modulation-aware) decode",
		Columns: []string{"ADC noise (counts)", "naive err", "enhanced err", "improvement"},
		Notes: []string{
			"errors are relative RMS of the normalized drift profile against the noise-free truth",
			"the enhancement corresponds to the PNNL-developed deconvolution of the abstract",
		},
	}
	mix, err := standardMixture(4)
	if err != nil {
		return nil, err
	}
	for _, noise := range noises {
		var errNaive, errEnh float64
		for trial := int64(0); trial < int64(trials); trial++ {
			cfg := gainConfig(instrument.ModeMultiplexedTrap, 8)
			cfg.ADC.BaselineSigma = noise
			cfg.Detector.GainCounts = 2
			// Disable equalized release so the naive decoder faces the
			// full weighted-modulation mismatch it historically had.
			cfgNaive := cfg
			cfgNaive.Trap.EqualizeRelease = false
			for which, c := range map[string]instrument.Config{"naive": cfgNaive, "enhanced": cfg} {
				exp := &core.Experiment{Mixture: mix, SourceRate: 1e6, Config: c}
				if which == "naive" {
					exp.Decoder = core.DecoderStandard
				} else {
					exp.Decoder = core.DecoderAuto
				}
				res, err := exp.Run(rand.New(rand.NewSource(seed + trial)))
				if err != nil {
					return nil, err
				}
				truth, err := exp.Truth()
				if err != nil {
					return nil, err
				}
				a, err := dominantAnalyte(mix, c.TOF)
				if err != nil {
					return nil, err
				}
				col := c.TOF.BinOf(a.MZ)
				e, err := core.DenoisedColumnError(res.Decoded, truth, col)
				if err != nil {
					return nil, err
				}
				if which == "naive" {
					errNaive += e
				} else {
					errEnh += e
				}
			}
		}
		errNaive /= float64(trials)
		errEnh /= float64(trials)
		t.AddRow(noise, errNaive, errEnh, errNaive/errEnh)
	}
	return t, nil
}

// E6IonUtilization reproduces the duty-cycle figure: the fraction of
// source-generated ions injected into the drift tube per mode, with the
// trap raising utilization beyond the Hadamard 50 % bound (Clowers et al.
// 2008 reported >50 %; Belov et al. 2007 ~50 % for beam multiplexing;
// conventional SA is ~1/N).
func E6IonUtilization(seed int64, quick bool) (*Table, error) {
	orders := []int{6, 8, 10}
	if quick {
		orders = []int{6, 8}
	}
	t := &Table{
		ID:      "E6",
		Title:   "Ion utilization (injected/generated) by acquisition mode and PRS order",
		Columns: []string{"order", "N", "SA", "multiplexed", "multiplexed+trap"},
		Notes:   []string{"expected: SA ~ 1/N, MP ~ 0.5, trap+MP approaching the trapping efficiency (0.9)"},
	}
	mix, err := standardMixture(3)
	if err != nil {
		return nil, err
	}
	for _, order := range orders {
		var util [3]float64
		for mi, mode := range []instrument.Mode{instrument.ModeSignalAveraging, instrument.ModeMultiplexed, instrument.ModeMultiplexedTrap} {
			cfg := gainConfig(mode, order)
			src, err := instrument.NewESISource(mix, 1e6)
			if err != nil {
				return nil, err
			}
			inst, err := instrument.New(cfg, src)
			if err != nil {
				return nil, err
			}
			_, stats, err := inst.ExpectedDetections(0)
			if err != nil {
				return nil, err
			}
			util[mi] = stats.Utilization
		}
		t.AddRow(order, 1<<order-1, util[0], util[1], util[2])
	}
	return t, nil
}

// E8ModifiedPRS reproduces the modified-sequence table (Clowers et al.
// 2008): against a strongly non-ideal gate, compare (a) the naive simplex
// decode, (b) the sample-calibrated weighting-matrix decode, and (c) the
// oversampled defect-modified sequence with regularized decoding — the
// scheme that removes the need for sample-specific weights — plus the gate
// pulses per unit time each scheme achieves.
func E8ModifiedPRS(seed int64, quick bool) (*Table, error) {
	trials := 3
	if quick {
		trials = 1
	}
	t := &Table{
		ID:      "E8",
		Title:   "Gate non-ideality handling: naive vs weighting-matrix vs modified PRS (oversample 2, defect 1)",
		Columns: []string{"scheme", "pulses/cycle-ms", "recon err", "SNR"},
		Notes: []string{
			"companion paper reports up to 13x SNR enhancement and 2x gate pulses per unit time for modified sequences",
			"the weighting matrix is calibrated on the same sample (its historical weakness)",
		},
	}
	p, err := chem.NewPeptide("DRVYIHPFHL") // angiotensin I
	if err != nil {
		return nil, err
	}
	var mix instrument.Mixture
	if err := mix.AddPeptide("angiotensin I", p, 1); err != nil {
		return nil, err
	}
	// The gate's switching transient fully depletes the first bin of every
	// opening — the non-ideality the defect modification is designed to
	// absorb: driving an oversampled PRS through this gate produces exactly
	// the defect-modified sequence as the effective modulation, which is
	// known a priori (drive sequence + rise width), unlike a weighting
	// matrix that must be calibrated per sample.
	badGate := instrument.Gate{OpenTransmission: 0.9, ClosedLeakage: 0.002, RiseBins: 1, RiseDepth: 1.0}

	type scheme struct {
		name       string
		oversample int
		decoder    core.DecoderKind
		calibrate  bool
	}
	schemes := []scheme{
		{"naive simplex", 1, core.DecoderStandard, false},
		{"weighting matrix", 1, core.DecoderStandard, true},
		{"modified PRS + enhanced", 2, core.DecoderAuto, false},
	}
	for _, sc := range schemes {
		var sumErr, sumSNR float64
		var pulsesPerMS float64
		for trial := int64(0); trial < int64(trials); trial++ {
			cfg := gainConfig(instrument.ModeMultiplexed, 8)
			cfg.Gate = badGate
			cfg.Oversample = sc.oversample
			cfg.BinWidthS = 2e-4
			if sc.oversample > 1 {
				// Same cycle duration; the extraction rate follows the
				// finer gating bins.
				cfg.BinWidthS /= float64(sc.oversample)
				cfg.TOF.ExtractionPeriodS = cfg.BinWidthS
			}
			cfg.Detector.GainCounts = 2
			exp := &core.Experiment{Mixture: mix, SourceRate: 1e7, Config: cfg, Decoder: sc.decoder, WienerLambda: 0.5}
			res, err := exp.Run(rand.New(rand.NewSource(seed + trial)))
			if err != nil {
				return nil, err
			}
			seq, err := cfg.Sequence()
			if err != nil {
				return nil, err
			}
			// Effective open bins: run-start bins are consumed by the
			// gate transient.
			effective := seq.Modify(cfg.Gate.RiseBins)
			pulsesPerMS = float64(effective.Ones()) / (cfg.CycleDuration() * 1e3)
			truth, err := exp.Truth()
			if err != nil {
				return nil, err
			}
			a := mix.Analytes[1]
			col := cfg.TOF.BinOf(a.MZ)
			decoded := res.Decoded
			if sc.calibrate {
				decoded, err = applyWeightCalibration(res, truth, seq, col)
				if err != nil {
					return nil, err
				}
			}
			e, err := core.DenoisedColumnError(decoded, truth, col)
			if err != nil {
				return nil, err
			}
			rep, err := core.AnalyteSNR(decoded, cfg.TOF, cfg.Tube, cfg.BinWidthS, a)
			if err != nil {
				return nil, err
			}
			sumErr += e
			sumSNR += rep.SNR
		}
		t.AddRow(sc.name, pulsesPerMS, sumErr/float64(trials), sumSNR/float64(trials))
	}
	return t, nil
}

// applyWeightCalibration re-decodes one column of the raw frame through a
// WeightedDecoder calibrated against the known truth — the historical
// sample-specific weighting-matrix correction.
func applyWeightCalibration(res *core.Result, truth *instrument.Frame, seq prs.Sequence, col int) (*instrument.Frame, error) {
	base, err := hadamard.NewStandardDecoder(seq)
	if err != nil {
		return nil, err
	}
	wd := hadamard.NewWeightedDecoder(base)
	// Calibrate on the truth column: encode it with the ideal sequence to
	// obtain the calibrant observation, then decode the real data.
	truthCol := truth.DriftVector(col)
	// Scale truth to match the raw data amplitude before calibration.
	raw := res.Raw.DriftVector(col)
	var sumRaw, sumTruth float64
	for i := range raw {
		sumRaw += raw[i]
		sumTruth += truthCol[i]
	}
	scaled := make([]float64, len(truthCol))
	if sumTruth > 0 {
		for i := range scaled {
			scaled[i] = truthCol[i] * sumRaw / (sumTruth * float64(seq.Ones()))
		}
	}
	if err := wd.Calibrate(scaled, raw, 0.05); err != nil {
		return nil, err
	}
	x, err := wd.Decode(raw)
	if err != nil {
		return nil, err
	}
	out := instrument.NewFrame(res.Raw.DriftBins, res.Raw.TOFBins)
	copy(out.Data, res.Decoded.Data)
	out.SetDriftVector(col, x)
	return out, nil
}

// theoreticalGain is exported for documentation and tests: the ideal
// detector-noise-limited multiplexing gain (N+1)/(2√N).
func theoreticalGain(n int) float64 {
	return float64(n+1) / (2 * math.Sqrt(float64(n)))
}
