// storage.go: the data-format experiment (E17), reproducing the goals of
// the companion PNNL format work (an efficient binary representation for
// mass spectrometry data): size of one acquired frame across encodings.
package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/frameio"
	"repro/internal/instrument"
)

// E17FrameFormat compares storage encodings of an acquired multiplexed
// frame: naive CSV text, raw float64 binary, and the delta-varint binary of
// the frameio container.
func E17FrameFormat(seed int64, quick bool) (*Table, error) {
	tofBins := 2048
	frames := 4
	if quick {
		tofBins = 512
		frames = 2
	}
	t := &Table{
		ID:      "E17",
		Title:   "Frame storage size by encoding (one accumulated multiplexed frame)",
		Columns: []string{"encoding", "bytes", "vs raw", "vs csv"},
		Notes: []string{
			"delta-varint exploits the integral, column-correlated structure of accumulated ADC counts",
		},
	}
	mix, err := standardMixture(6)
	if err != nil {
		return nil, err
	}
	cfg := gainConfig(instrument.ModeMultiplexedTrap, 8)
	cfg.TOF.Bins = tofBins
	cfg.Frames = frames
	exp := &core.Experiment{Mixture: mix, SourceRate: 5e6, Config: cfg}
	res, err := exp.Run(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	rawSize, err := frameio.EncodedSize(res.Raw, frameio.Raw)
	if err != nil {
		return nil, err
	}
	deltaSize, err := frameio.EncodedSize(res.Raw, frameio.Delta)
	if err != nil {
		return nil, err
	}
	csvSize := frameio.CSVSize(res.Raw)
	add := func(name string, size int64) {
		t.AddRow(name, size, float64(size)/float64(rawSize), float64(size)/float64(csvSize))
	}
	add("csv", csvSize)
	add("raw float64", rawSize)
	add("delta varint", deltaSize)
	return t, nil
}
