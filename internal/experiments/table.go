// Package experiments implements the reproduction's evaluation: one
// function per table/figure (E1–E12 in DESIGN.md) plus the design-choice
// ablations.  Each experiment returns a Table that cmd/benchreport renders
// and bench_test.go exercises; every experiment takes an explicit seed and
// a quick flag (reduced sweep sizes for CI) and is fully deterministic.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced table or figure (figures are reported as their
// underlying data series).
type Table struct {
	ID      string   // experiment id, e.g. "E1"
	Title   string   // what the table shows
	Columns []string // column headers
	Rows    [][]string
	Notes   []string // caveats, expected values from the companion papers
}

// AddRow appends a formatted row; values are rendered with %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%-*s", widths[i], c))
		}
		return sb.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(line(t.Columns)))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Runner is the registry signature of an experiment.
type Runner func(seed int64, quick bool) (*Table, error)

// All returns the experiment registry in report order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"E1", E1MultiplexingGain},
		{"E2", E2DeconvolutionFidelity},
		{"E3", E3FPGAvsCPU},
		{"E4", E4CPUScaling},
		{"E5", E5DataPath},
		{"E6", E6IonUtilization},
		{"E7", E7DynamicRange},
		{"E8", E8ModifiedPRS},
		{"E9", E9PeptideIDs},
		{"E10", E10FixedPoint},
		{"E11", E11SpaceCharge},
		{"E12", E12AGC},
		{"E13", E13DetectionDynamicRange},
		{"E14", E14LCGradient},
		{"E15", E15StreamingDynamics},
		{"E16", E16MultiplexedCID},
		{"E17", E17FrameFormat},
		{"E18", E18ClusterScaling},
		{"E19", E19CCSCalibration},
		{"E20", E20IsotopeFidelity},
		{"A1", AblationDirectVsFHT},
		{"A2", AblationAccumulatePlacement},
	}
}
