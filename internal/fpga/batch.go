// batch.go is the communication-avoiding restructuring of the modeled
// FPGA deconvolution path: DeconvolveBatch moves a whole column-blocked
// tile through the fixed-point FHT core with the stage structure an
// actual accumulate-and-transform engine would use — the inbound DMA is
// fused with the quantize+scatter pass (each source word is read once and
// lands directly in its transform address), the butterfly network runs
// two radix-2 levels per pass over the tile (each work word is loaded and
// stored once per fused pass instead of once per butterfly level), and
// the gather, final rescale and result accumulation into the destination
// tile are one outbound pass.  The arithmetic — saturating adds and
// subtracts in the configured format, with the configured growth policy
// applied after every butterfly level — is operation-for-operation the
// sequence DeconvolveTo runs per column, so every lane's result is
// bit-identical to the scalar path (TestDeconvolveBatchMatchesScalar).
package fpga

import (
	"fmt"
	"math"

	"repro/internal/hadamard"
)

// DeconvolveBatch runs the fixed-point transform on every lane of src
// into the matching lane of dst — src and dst must both have Rows ==
// Len() and equal lane counts — and returns the modeled hardware cycles
// consumed (CyclesPerFrame per lane; the modeled engine processes columns
// through one physical butterfly network).  Per-core scratch is reused,
// so the steady state allocates nothing; like DeconvolveTo this makes the
// core single-threaded.
func (c *FHTCore) DeconvolveBatch(dst, src *hadamard.ColumnBlock) (int64, error) {
	n := c.Len()
	if src == nil || dst == nil {
		return 0, fmt.Errorf("fpga: nil column block")
	}
	if src.Rows != n || dst.Rows != n {
		return 0, fmt.Errorf("fpga: block rows %d/%d, want %d", src.Rows, dst.Rows, n)
	}
	if src.Lanes != dst.Lanes || src.Lanes < 1 {
		return 0, fmt.Errorf("fpga: block lanes %d/%d invalid", src.Lanes, dst.Lanes)
	}
	L := src.Lanes
	m := n + 1
	satBefore := c.saturation
	if cap(c.work) < m*L {
		c.work = make([]int64, m*L)
	}
	work := c.work[:m*L]
	// Fused DMA-in: quantize and scatter in one pass over the source tile.
	// The scatter ROM covers addresses 1..m−1, so only row 0 needs
	// clearing.
	for i := range work[:L] {
		work[i] = 0
	}
	for i, p := range c.scatter {
		srow := src.Data[i*L : i*L+L]
		wrow := work[p*L : p*L+L]
		for l, v := range srow {
			raw, sat := c.Format.FromFloat(v)
			if sat {
				c.saturation++
			}
			wrow[l] = raw
		}
	}
	shifts := c.fhtBlockFixed(work, m, L)
	// Fused gather + rescale + accumulate into the destination tile: one
	// outbound pass per result word.
	scale := c.dec.Scale()
	if c.Growth == GrowthScalePerStage {
		scale *= math.Ldexp(1, shifts)
	}
	for j, g := range c.gather {
		wrow := work[g*L : g*L+L]
		drow := dst.Data[j*L : j*L+L]
		for l, w := range wrow {
			drow[l] = c.Format.ToFloat(w) * scale
		}
	}
	cycles := c.CyclesPerFrame() * int64(L)
	c.columnsC.Add(int64(L))
	c.cyclesC.Add(cycles)
	c.saturationsC.Add(c.saturation - satBefore)
	return cycles, nil
}

// fhtBlockFixed runs the in-place fixed-point FWHT of `lanes` independent
// length-`rows` transforms packed row-major in work, fusing two butterfly
// levels per pass (with a single radix-2 pass first when the level count
// is odd).  The per-element operation sequence — Add, Sub, then the
// growth policy's shift after each level — is exactly DeconvolveTo's, so
// results are bit-identical; only the memory schedule differs.  It
// returns the number of levels shifted (for undoing GrowthScalePerStage).
func (c *FHTCore) fhtBlockFixed(work []int64, rows, lanes int) int {
	perStage := c.Growth == GrowthScalePerStage
	levels := 0
	for v := rows; v > 1; v >>= 1 {
		levels++
	}
	h := 1
	if levels&1 == 1 {
		c.fhtLevelFixed(work, rows, lanes, 1, perStage)
		h = 2
	}
	for ; h < rows; h <<= 2 {
		hl := h * lanes
		step := 4 * hl
		for i := 0; i < rows*lanes; i += step {
			for jo := i; jo < i+hl; jo += lanes {
				a := work[jo : jo+lanes : jo+lanes]
				b := work[jo+hl : jo+hl+lanes : jo+hl+lanes]
				d2 := work[jo+2*hl : jo+2*hl+lanes : jo+2*hl+lanes]
				d3 := work[jo+3*hl : jo+3*hl+lanes : jo+3*hl+lanes]
				for l, av := range a {
					bv, cv, dv := b[l], d2[l], d3[l]
					// Level h.
					s0, sat0 := c.Format.Add(av, bv)
					s1, sat1 := c.Format.Sub(av, bv)
					s2, sat2 := c.Format.Add(cv, dv)
					s3, sat3 := c.Format.Sub(cv, dv)
					if sat0 {
						c.saturation++
					}
					if sat1 {
						c.saturation++
					}
					if sat2 {
						c.saturation++
					}
					if sat3 {
						c.saturation++
					}
					if perStage {
						s0 = c.Format.Shr(s0, 1)
						s1 = c.Format.Shr(s1, 1)
						s2 = c.Format.Shr(s2, 1)
						s3 = c.Format.Shr(s3, 1)
					}
					// Level 2h.
					t0, satT0 := c.Format.Add(s0, s2)
					t2, satT2 := c.Format.Sub(s0, s2)
					t1, satT1 := c.Format.Add(s1, s3)
					t3, satT3 := c.Format.Sub(s1, s3)
					if satT0 {
						c.saturation++
					}
					if satT1 {
						c.saturation++
					}
					if satT2 {
						c.saturation++
					}
					if satT3 {
						c.saturation++
					}
					if perStage {
						t0 = c.Format.Shr(t0, 1)
						t1 = c.Format.Shr(t1, 1)
						t2 = c.Format.Shr(t2, 1)
						t3 = c.Format.Shr(t3, 1)
					}
					a[l], b[l] = t0, t1
					d2[l], d3[l] = t2, t3
				}
			}
		}
	}
	return levels
}

// fhtLevelFixed runs one radix-2 fixed-point butterfly level at stride h.
func (c *FHTCore) fhtLevelFixed(work []int64, rows, lanes, h int, perStage bool) {
	hl := h * lanes
	step := 2 * hl
	for i := 0; i < rows*lanes; i += step {
		for jo := i; jo < i+hl; jo += lanes {
			a := work[jo : jo+lanes : jo+lanes]
			b := work[jo+hl : jo+hl+lanes : jo+hl+lanes]
			for l, av := range a {
				bv := b[l]
				s1, sat1 := c.Format.Add(av, bv)
				s2, sat2 := c.Format.Sub(av, bv)
				if sat1 {
					c.saturation++
				}
				if sat2 {
					c.saturation++
				}
				if perStage {
					s1 = c.Format.Shr(s1, 1)
					s2 = c.Format.Shr(s2, 1)
				}
				a[l], b[l] = s1, s2
			}
		}
	}
}
