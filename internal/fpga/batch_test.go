// batch_test.go: property tests pinning the communication-avoiding batch
// path to the scalar per-column core — bit-identical results, identical
// saturation accounting and cycle charges — plus the allocation gate for
// the steady serving state.
package fpga

import (
	"math/rand"
	"testing"

	"repro/internal/hadamard"
)

// batchCorePair builds two identical cores so the batch path's mutable
// counters can be compared against the scalar path's without interference.
func batchCorePair(t *testing.T, order int, g GrowthPolicy) (*FHTCore, *FHTCore) {
	t.Helper()
	mk := func() *FHTCore {
		c, err := NewFHTCore(order, MustQ(23, 8), g, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	return mk(), mk()
}

// TestDeconvolveBatchMatchesScalar is the central property test: for both
// growth policies, every lane of DeconvolveBatch must equal DeconvolveTo
// on that lane's column bit for bit, with the same total saturation count
// and the same per-column cycle charge.  Inputs include a saturation-heavy
// block (values far beyond the Q23.8 range) so the overflow paths are
// exercised, not just the clean ones.
func TestDeconvolveBatchMatchesScalar(t *testing.T) {
	for _, g := range []GrowthPolicy{GrowthSaturate, GrowthScalePerStage} {
		for _, amp := range []float64{500, 5e6} { // clean and saturating
			batch, scalar := batchCorePair(t, 6, g)
			n := batch.Len()
			rng := rand.New(rand.NewSource(int64(amp) + int64(g)))
			for _, lanes := range []int{1, 3, 16} {
				src := hadamard.NewColumnBlock(n, lanes)
				dst := hadamard.NewColumnBlock(n, lanes)
				for i := range src.Data {
					src.Data[i] = rng.NormFloat64() * amp
				}
				cycles, err := batch.DeconvolveBatch(dst, src)
				if err != nil {
					t.Fatalf("growth %v lanes %d: %v", g, lanes, err)
				}
				if want := batch.CyclesPerFrame() * int64(lanes); cycles != want {
					t.Fatalf("growth %v lanes %d: %d cycles, want %d", g, lanes, cycles, want)
				}
				col := make([]float64, n)
				want := make([]float64, n)
				for l := 0; l < lanes; l++ {
					for r := 0; r < n; r++ {
						col[r] = src.At(r, l)
					}
					if _, err := scalar.DeconvolveTo(want, col); err != nil {
						t.Fatal(err)
					}
					for r := 0; r < n; r++ {
						if got := dst.At(r, l); got != want[r] {
							t.Fatalf("growth %v amp %g lanes %d lane %d row %d: batch %v != scalar %v",
								g, amp, lanes, l, r, got, want[r])
						}
					}
				}
				if batch.Saturations() != scalar.Saturations() {
					t.Fatalf("growth %v amp %g lanes %d: batch saturations %d != scalar %d",
						g, amp, lanes, batch.Saturations(), scalar.Saturations())
				}
			}
		}
	}
}

// TestDeconvolveBatchGeometryErrors exercises the tile guards.
func TestDeconvolveBatchGeometryErrors(t *testing.T) {
	c, _ := batchCorePair(t, 5, GrowthSaturate)
	n := c.Len()
	good := hadamard.NewColumnBlock(n, 2)
	if _, err := c.DeconvolveBatch(nil, good); err == nil {
		t.Error("nil dst accepted")
	}
	if _, err := c.DeconvolveBatch(good, nil); err == nil {
		t.Error("nil src accepted")
	}
	if _, err := c.DeconvolveBatch(hadamard.NewColumnBlock(n+1, 2), good); err == nil {
		t.Error("wrong dst rows accepted")
	}
	if _, err := c.DeconvolveBatch(hadamard.NewColumnBlock(n, 3), good); err == nil {
		t.Error("lane mismatch accepted")
	}
	bad := hadamard.NewColumnBlock(n, 1)
	bad.Lanes = 0
	if _, err := c.DeconvolveBatch(hadamard.NewColumnBlock(n, 0), bad); err == nil {
		t.Error("zero lanes accepted")
	}
}

// TestDeconvolveBatchAllocs gates the zero-steady-state-allocation
// contract of the batch path (the name keeps it inside make allocgate's
// -run filter).
func TestDeconvolveBatchAllocs(t *testing.T) {
	c, _ := batchCorePair(t, 9, GrowthSaturate)
	n := c.Len()
	src := hadamard.NewColumnBlock(n, 16)
	dst := hadamard.NewColumnBlock(n, 16)
	for i := range src.Data {
		src.Data[i] = float64(i % 211)
	}
	if _, err := c.DeconvolveBatch(dst, src); err != nil { // warm scratch
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(20, func() {
		if _, err := c.DeconvolveBatch(dst, src); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("DeconvolveBatch allocates %g/op", a)
	}
}

// BenchmarkFHTCoreDeconvolveBatch reports per-column cost of the fused
// tile path; compare with BenchmarkFHTCoreDeconvolve for the
// communication-avoiding win.
func BenchmarkFHTCoreDeconvolveBatch(b *testing.B) {
	c, err := NewFHTCore(9, MustQ(23, 8), GrowthSaturate, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	const lanes = 16
	src := hadamard.NewColumnBlock(c.Len(), lanes)
	dst := hadamard.NewColumnBlock(c.Len(), lanes)
	for i := range src.Data {
		src.Data[i] = float64(i % 211)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DeconvolveBatch(dst, src); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lanes), "ns/col")
}
