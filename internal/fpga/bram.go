// bram.go models on-chip block RAM: fixed word width, fixed depth,
// dual-port read-modify-write at one update per cycle per bank, and
// saturating accumulation — the storage substrate of the capture and
// accumulation cores.
package fpga

import "fmt"

// BRAM is one block-RAM bank holding unsigned accumulator words.
type BRAM struct {
	Name     string
	WordBits int // accumulator word width
	Depth    int // number of words

	data      []int64
	reads     int64
	writes    int64
	overflows int64
}

// NewBRAM constructs a bank.
func NewBRAM(name string, wordBits, depth int) (*BRAM, error) {
	if wordBits < 1 || wordBits > 62 {
		return nil, fmt.Errorf("fpga: BRAM %q word width %d out of range [1,62]", name, wordBits)
	}
	if depth <= 0 {
		return nil, fmt.Errorf("fpga: BRAM %q depth %d must be positive", name, depth)
	}
	return &BRAM{Name: name, WordBits: wordBits, Depth: depth, data: make([]int64, depth)}, nil
}

// Max returns the saturation value of one word.
func (b *BRAM) Max() int64 { return int64(1)<<b.WordBits - 1 }

// Read returns the word at addr.
func (b *BRAM) Read(addr int) (int64, error) {
	if addr < 0 || addr >= b.Depth {
		return 0, fmt.Errorf("fpga: BRAM %q read address %d out of range [0,%d)", b.Name, addr, b.Depth)
	}
	b.reads++
	return b.data[addr], nil
}

// Write stores v at addr, clipping to the word range.
func (b *BRAM) Write(addr int, v int64) error {
	if addr < 0 || addr >= b.Depth {
		return fmt.Errorf("fpga: BRAM %q write address %d out of range [0,%d)", b.Name, addr, b.Depth)
	}
	if v < 0 {
		v = 0
	}
	if v > b.Max() {
		v = b.Max()
		b.overflows++
	}
	b.writes++
	b.data[addr] = v
	return nil
}

// Accumulate performs the read-modify-write v[addr] += delta with
// saturation, the one-cycle operation of an accumulator bank.
func (b *BRAM) Accumulate(addr int, delta int64) error {
	v, err := b.Read(addr)
	if err != nil {
		return err
	}
	return b.Write(addr, v+delta)
}

// Clear zeroes the bank.
func (b *BRAM) Clear() {
	for i := range b.data {
		b.data[i] = 0
	}
}

// Snapshot copies the contents out.
func (b *BRAM) Snapshot() []int64 {
	out := make([]int64, b.Depth)
	copy(out, b.data)
	return out
}

// Stats reports access counters.
func (b *BRAM) Stats() (reads, writes, overflows int64) {
	return b.reads, b.writes, b.overflows
}

// Bits returns the total storage in bits, for resource reports.
func (b *BRAM) Bits() int { return b.WordBits * b.Depth }

// Occupancy returns the fraction of words holding a nonzero value — the
// bank's live data footprint, published as fpga_bram_occupancy_ratio.
func (b *BRAM) Occupancy() float64 {
	nz := 0
	for _, v := range b.data {
		if v != 0 {
			nz++
		}
	}
	return float64(nz) / float64(b.Depth)
}
