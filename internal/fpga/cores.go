// cores.go implements the three FPGA processing cores of the paper's
// hybrid application — data capture, accumulation, and the enhanced
// Hadamard-transform deconvolver — at a data-exact, cycle-approximate
// level: the arithmetic actually runs in the configured fixed-point
// precision, and every operation reports the hardware cycles it would
// consume.
package fpga

import (
	"fmt"
	"math"

	"repro/internal/hadamard"
	"repro/internal/telemetry"
)

// CaptureCore ingests raw ADC samples, applies the noise threshold, and
// groups samples into bins — the front of the FPGA data path.
type CaptureCore struct {
	// SamplesPerCycle is the ingest parallelism (ADC width ÷ bus width).
	SamplesPerCycle int
	// Threshold zeroes samples strictly below it (0 disables).
	Threshold int64

	kept, dropped int64

	keptC, droppedC, cyclesC *telemetry.Counter
}

// Instrument publishes the capture core's activity into reg as the
// fpga_capture_samples_total{result} and fpga_capture_cycles_total
// families.  A nil registry is a no-op.
func (c *CaptureCore) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.keptC = reg.Counter("fpga_capture_samples_total", "ADC samples processed by the capture core", telemetry.L("result", "kept"))
	c.droppedC = reg.Counter("fpga_capture_samples_total", "ADC samples processed by the capture core", telemetry.L("result", "dropped"))
	c.cyclesC = reg.Counter("fpga_capture_cycles_total", "capture core ingest cycles consumed")
}

// NewCaptureCore validates and constructs the core.
func NewCaptureCore(samplesPerCycle int, threshold int64) (*CaptureCore, error) {
	if samplesPerCycle < 1 {
		return nil, fmt.Errorf("fpga: capture parallelism %d must be >= 1", samplesPerCycle)
	}
	if threshold < 0 {
		return nil, fmt.Errorf("fpga: negative capture threshold")
	}
	return &CaptureCore{SamplesPerCycle: samplesPerCycle, Threshold: threshold}, nil
}

// Capture thresholds the samples in place and returns the cycles consumed.
func (c *CaptureCore) Capture(samples []int64) int64 {
	var kept, dropped int64
	for i, v := range samples {
		if c.Threshold > 0 && v < c.Threshold {
			samples[i] = 0
			dropped++
		} else {
			kept++
		}
	}
	c.kept += kept
	c.dropped += dropped
	cycles := c.CyclesFor(len(samples))
	c.keptC.Add(kept)
	c.droppedC.Add(dropped)
	c.cyclesC.Add(cycles)
	return cycles
}

// CyclesFor returns the ingest cycles for n samples.
func (c *CaptureCore) CyclesFor(n int) int64 {
	return int64((n + c.SamplesPerCycle - 1) / c.SamplesPerCycle)
}

// Stats reports kept/dropped sample counts.
func (c *CaptureCore) Stats() (kept, dropped int64) { return c.kept, c.dropped }

// AccumulatorCore sums successive capture blocks into block-RAM banks: the
// signal-averaging memory of the instrument.  Banks are interleaved by
// address, each sustaining one read-modify-write per cycle.
type AccumulatorCore struct {
	banks []*BRAM

	cyclesC    *telemetry.Counter
	overflowsC *telemetry.Counter
	occupancy  []*telemetry.Gauge
}

// Instrument publishes the accumulator's activity into reg: accumulation
// cycles (fpga_accum_cycles_total), saturation events
// (fpga_accum_overflows_total) and per-bank BRAM occupancy gauges
// (fpga_bram_occupancy_ratio{bank}, refreshed by PublishOccupancy).  A nil
// registry is a no-op.
func (a *AccumulatorCore) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	a.cyclesC = reg.Counter("fpga_accum_cycles_total", "accumulator read-modify-write cycles consumed")
	a.overflowsC = reg.Counter("fpga_accum_overflows_total", "accumulator word saturation events")
	a.occupancy = a.occupancy[:0]
	for _, b := range a.banks {
		a.occupancy = append(a.occupancy, reg.Gauge("fpga_bram_occupancy_ratio",
			"fraction of BRAM accumulator words holding nonzero data", telemetry.L("bank", b.Name)))
	}
}

// PublishOccupancy refreshes the per-bank occupancy gauges (a full scan of
// every bank, so it is meant for frame boundaries, not the per-sample hot
// path).  A no-op until Instrument is called.
func (a *AccumulatorCore) PublishOccupancy() {
	if a.occupancy == nil {
		return
	}
	for i, b := range a.banks {
		a.occupancy[i].Set(b.Occupancy())
	}
}

// NewAccumulatorCore builds nBanks interleaved banks covering `depth` total
// accumulator words of the given width.
func NewAccumulatorCore(nBanks, wordBits, depth int) (*AccumulatorCore, error) {
	if nBanks < 1 {
		return nil, fmt.Errorf("fpga: accumulator needs >= 1 bank")
	}
	if depth < nBanks {
		return nil, fmt.Errorf("fpga: depth %d below bank count %d", depth, nBanks)
	}
	per := (depth + nBanks - 1) / nBanks
	banks := make([]*BRAM, nBanks)
	for i := range banks {
		b, err := NewBRAM(fmt.Sprintf("acc%d", i), wordBits, per)
		if err != nil {
			return nil, err
		}
		banks[i] = b
	}
	return &AccumulatorCore{banks: banks}, nil
}

// Depth returns the total accumulator words.
func (a *AccumulatorCore) Depth() int {
	return len(a.banks) * a.banks[0].Depth
}

// Accumulate adds the block into the accumulator (block[i] → word i) and
// returns the cycles consumed: ceil(len/banks) with perfect interleaving.
func (a *AccumulatorCore) Accumulate(block []int64) (int64, error) {
	if len(block) > a.Depth() {
		return 0, fmt.Errorf("fpga: block of %d exceeds accumulator depth %d", len(block), a.Depth())
	}
	n := len(a.banks)
	before := a.Overflows()
	for i, v := range block {
		if err := a.banks[i%n].Accumulate(i/n, v); err != nil {
			return 0, err
		}
	}
	cycles := int64((len(block) + n - 1) / n)
	a.cyclesC.Add(cycles)
	a.overflowsC.Add(a.Overflows() - before)
	return cycles, nil
}

// Snapshot returns the accumulated words in address order.
func (a *AccumulatorCore) Snapshot() []int64 {
	out := make([]int64, 0, a.Depth())
	n := len(a.banks)
	snaps := make([][]int64, n)
	for i, b := range a.banks {
		snaps[i] = b.Snapshot()
	}
	for i := 0; i < a.Depth(); i++ {
		out = append(out, snaps[i%n][i/n])
	}
	return out
}

// Clear zeroes all banks.
func (a *AccumulatorCore) Clear() {
	for _, b := range a.banks {
		b.Clear()
	}
}

// Overflows sums saturation events across banks.
func (a *AccumulatorCore) Overflows() int64 {
	var t int64
	for _, b := range a.banks {
		_, _, o := b.Stats()
		t += o
	}
	return t
}

// StorageBits reports the BRAM bits consumed.
func (a *AccumulatorCore) StorageBits() int {
	t := 0
	for _, b := range a.banks {
		t += b.Bits()
	}
	return t
}

// GrowthPolicy selects how the FHT core handles bit growth through the
// butterfly stages.
type GrowthPolicy int

const (
	// GrowthSaturate keeps full-scale values and saturates on overflow.
	GrowthSaturate GrowthPolicy = iota
	// GrowthScalePerStage shifts right one bit per stage (normalized
	// transform, computes FWHT/N·2^stages... i.e. FWHT/N when all stages
	// shift), trading precision for guaranteed headroom.
	GrowthScalePerStage
)

// FHTCore is the deconvolution engine: the fast-Walsh–Hadamard simplex
// inverse with LFSR-derived scatter/gather address ROMs (the "memory
// addressing logic" of the abstract), computed in fixed point.
type FHTCore struct {
	Order          int
	Format         Format
	Growth         GrowthPolicy
	ButterflyUnits int // parallel butterfly ALUs
	MemPorts       int // words movable per cycle during scatter/gather

	dec        *hadamard.FHTDecoder
	scatter    []int
	gather     []int
	saturation int64
	work       []int64 // fixed-point scratch reused by DeconvolveTo

	columnsC, cyclesC, saturationsC *telemetry.Counter
}

// Instrument publishes the deconvolver's activity into reg as the
// fpga_fht_columns_total, fpga_fht_cycles_total and
// fpga_fht_saturations_total families.  A nil registry is a no-op.
func (c *FHTCore) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.columnsC = reg.Counter("fpga_fht_columns_total", "waveforms deconvolved by the FHT core")
	c.cyclesC = reg.Counter("fpga_fht_cycles_total", "FHT core cycles consumed")
	c.saturationsC = reg.Counter("fpga_fht_saturations_total", "fixed-point saturation events in the FHT core")
}

// NewFHTCore builds the core for the canonical m-sequence of the given
// order.
func NewFHTCore(order int, format Format, growth GrowthPolicy, butterflyUnits, memPorts int) (*FHTCore, error) {
	if butterflyUnits < 1 {
		return nil, fmt.Errorf("fpga: butterfly units %d must be >= 1", butterflyUnits)
	}
	if memPorts < 1 {
		return nil, fmt.Errorf("fpga: memory ports %d must be >= 1", memPorts)
	}
	dec, err := hadamard.NewFHTDecoder(order)
	if err != nil {
		return nil, err
	}
	s, g := dec.Permutations()
	return &FHTCore{
		Order:          order,
		Format:         format,
		Growth:         growth,
		ButterflyUnits: butterflyUnits,
		MemPorts:       memPorts,
		dec:            dec,
		scatter:        s,
		gather:         g,
	}, nil
}

// Len returns the waveform length 2^order − 1.
func (c *FHTCore) Len() int { return c.dec.Len() }

// CyclesPerFrame returns the hardware cycles to deconvolve one waveform:
// scatter + log2(M)·(M/2)/units butterflies + gather.
func (c *FHTCore) CyclesPerFrame() int64 {
	m := c.Len() + 1
	stages := int64(c.Order)
	perStage := int64((m/2 + c.ButterflyUnits - 1) / c.ButterflyUnits)
	move := int64((c.Len() + c.MemPorts - 1) / c.MemPorts)
	return move + stages*perStage + move
}

// Deconvolve runs the fixed-point transform on a waveform of expected ion
// counts and returns the recovered arrival distribution along with the
// cycles consumed.  It allocates the result; the serving path uses
// DeconvolveTo with a caller-owned destination instead.
func (c *FHTCore) Deconvolve(y []float64) ([]float64, int64, error) {
	x := make([]float64, c.Len())
	cycles, err := c.DeconvolveTo(x, y)
	if err != nil {
		return nil, 0, err
	}
	return x, cycles, nil
}

// DeconvolveTo runs the fixed-point transform on a waveform of expected
// ion counts into the caller-owned dst (length Len(), fully overwritten)
// and returns the cycles consumed, reusing per-core scratch so the steady
// state allocates nothing.  The arithmetic path is exactly the hardware's:
// quantize to the input format, scatter, staged butterflies with the
// configured growth policy, gather, and final scale.  The scratch makes an
// FHTCore single-threaded; create one per worker.
func (c *FHTCore) DeconvolveTo(dst, y []float64) (int64, error) {
	n := c.Len()
	if len(y) != n {
		return 0, fmt.Errorf("fpga: deconvolve length %d, want %d", len(y), n)
	}
	if len(dst) != n {
		return 0, fmt.Errorf("fpga: deconvolve dst length %d, want %d", len(dst), n)
	}
	m := n + 1
	satBefore := c.saturation
	if cap(c.work) < m {
		c.work = make([]int64, m)
	}
	work := c.work[:m]
	// The scatter ROM is a bijection onto addresses 1..m−1 (checked at
	// construction), so only the unused work row 0 needs re-zeroing.
	work[0] = 0
	for i, p := range c.scatter {
		raw, sat := c.Format.FromFloat(y[i])
		if sat {
			c.saturation++
		}
		work[p] = raw
	}
	shifts := 0
	for h := 1; h < m; h <<= 1 {
		for i := 0; i < m; i += h * 2 {
			for j := i; j < i+h; j++ {
				a, b := work[j], work[j+h]
				s1, sat1 := c.Format.Add(a, b)
				s2, sat2 := c.Format.Sub(a, b)
				if sat1 {
					c.saturation++
				}
				if sat2 {
					c.saturation++
				}
				if c.Growth == GrowthScalePerStage {
					s1 = c.Format.Shr(s1, 1)
					s2 = c.Format.Shr(s2, 1)
				}
				work[j], work[j+h] = s1, s2
			}
		}
		shifts++
	}
	// Undo the per-stage scaling in the final floating rescale so both
	// growth policies return the same nominal values.
	scale := c.dec.Scale()
	if c.Growth == GrowthScalePerStage {
		scale *= math.Ldexp(1, shifts)
	}
	for j := 0; j < n; j++ {
		dst[j] = c.Format.ToFloat(work[c.gather[j]]) * scale
	}
	cycles := c.CyclesPerFrame()
	c.columnsC.Inc()
	c.cyclesC.Add(cycles)
	c.saturationsC.Add(c.saturation - satBefore)
	return cycles, nil
}

// Saturations reports cumulative saturation events — nonzero values mean
// the format is too narrow for the data.
func (c *FHTCore) Saturations() int64 { return c.saturation }

// ResetStats clears the saturation counter.
func (c *FHTCore) ResetStats() { c.saturation = 0 }

// ReferenceDeconvolve runs the same transform in float64, the software
// reference against which fixed-point error is measured.
func (c *FHTCore) ReferenceDeconvolve(y []float64) ([]float64, error) {
	return c.dec.Decode(y)
}
