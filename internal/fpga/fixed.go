// Package fpga models the FPGA component of the paper's hybrid application
// at a cycle-approximate, data-exact level: Q-format fixed-point arithmetic
// (the word widths block RAM affords), block-RAM accumulator banks, a
// clocked pipeline with FIFO backpressure, and the three processing cores
// the abstract names — data capture, accumulation, and the enhanced
// Hadamard-transform deconvolution with its scatter/gather memory
// addressing logic.
package fpga

import (
	"fmt"
	"math"
)

// Format describes a signed Qm.n fixed-point representation: m integer bits
// (excluding sign) and n fractional bits, stored in an int64.
type Format struct {
	IntBits  int
	FracBits int
}

// Q returns a validated format.
func Q(intBits, fracBits int) (Format, error) {
	if intBits < 0 || fracBits < 0 {
		return Format{}, fmt.Errorf("fpga: negative field widths Q%d.%d", intBits, fracBits)
	}
	if intBits+fracBits == 0 || intBits+fracBits > 62 {
		return Format{}, fmt.Errorf("fpga: total width %d out of range [1,62]", intBits+fracBits)
	}
	return Format{IntBits: intBits, FracBits: fracBits}, nil
}

// MustQ is Q but panics on invalid widths; for static configurations.
func MustQ(intBits, fracBits int) Format {
	f, err := Q(intBits, fracBits)
	if err != nil {
		panic(err)
	}
	return f
}

// Width returns the total significant width excluding sign.
func (f Format) Width() int { return f.IntBits + f.FracBits }

// Max returns the largest representable raw value.
func (f Format) Max() int64 { return int64(1)<<f.Width() - 1 }

// Min returns the most negative representable raw value.
func (f Format) Min() int64 { return -(int64(1) << f.Width()) }

// scale returns 2^FracBits.
func (f Format) scale() float64 { return math.Ldexp(1, f.FracBits) }

// FromFloat converts a float to the nearest representable raw value,
// saturating at the format bounds.  The second result reports whether
// saturation occurred.
func (f Format) FromFloat(v float64) (int64, bool) {
	r := math.Round(v * f.scale())
	if r > float64(f.Max()) {
		return f.Max(), true
	}
	if r < float64(f.Min()) {
		return f.Min(), true
	}
	return int64(r), false
}

// ToFloat converts a raw value back to float.
func (f Format) ToFloat(raw int64) float64 {
	return float64(raw) / f.scale()
}

// Add returns the saturating sum of two raw values.
func (f Format) Add(a, b int64) (int64, bool) {
	s := a + b
	if s > f.Max() {
		return f.Max(), true
	}
	if s < f.Min() {
		return f.Min(), true
	}
	return s, false
}

// Sub returns the saturating difference of two raw values.
func (f Format) Sub(a, b int64) (int64, bool) {
	return f.Add(a, -b)
}

// Mul returns the saturating product of two raw values with
// round-to-nearest at the discarded fractional bits.
func (f Format) Mul(a, b int64) (int64, bool) {
	// Full product carries 2·FracBits fractional bits.
	p := a * b
	half := int64(0)
	if f.FracBits > 0 {
		half = int64(1) << (f.FracBits - 1)
	}
	if p >= 0 {
		p = (p + half) >> f.FracBits
	} else {
		p = -((-p + half) >> f.FracBits)
	}
	if p > f.Max() {
		return f.Max(), true
	}
	if p < f.Min() {
		return f.Min(), true
	}
	return p, false
}

// Shr returns the raw value arithmetically shifted right by k with
// round-to-nearest — the per-stage scaling of a normalized butterfly.
func (f Format) Shr(a int64, k int) int64 {
	if k <= 0 {
		return a
	}
	half := int64(1) << (k - 1)
	if a >= 0 {
		return (a + half) >> k
	}
	return -((-a + half) >> k)
}

// Quantize rounds a float through the format and back, reporting the
// representation error — handy for precision studies.
func (f Format) Quantize(v float64) (float64, float64) {
	raw, _ := f.FromFloat(v)
	q := f.ToFloat(raw)
	return q, q - v
}

// EpsilonLSB returns the value of one least-significant bit.
func (f Format) EpsilonLSB() float64 { return 1 / f.scale() }

// String renders the format as Qm.n.
func (f Format) String() string { return fmt.Sprintf("Q%d.%d", f.IntBits, f.FracBits) }

// Vector converts a float slice into raw fixed-point values, returning the
// count of saturated elements.
func (f Format) Vector(x []float64) ([]int64, int) {
	out := make([]int64, len(x))
	sat := 0
	for i, v := range x {
		r, s := f.FromFloat(v)
		out[i] = r
		if s {
			sat++
		}
	}
	return out, sat
}

// Floats converts raw values back to floats.
func (f Format) Floats(raw []int64) []float64 {
	out := make([]float64, len(raw))
	for i, r := range raw {
		out[i] = f.ToFloat(r)
	}
	return out
}
