package fpga

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hadamard"
	"repro/internal/prs"
)

func TestQFormatConstruction(t *testing.T) {
	if _, err := Q(-1, 4); err == nil {
		t.Error("negative int bits")
	}
	if _, err := Q(4, -1); err == nil {
		t.Error("negative frac bits")
	}
	if _, err := Q(0, 0); err == nil {
		t.Error("zero width")
	}
	if _, err := Q(40, 40); err == nil {
		t.Error("over-wide format")
	}
	f, err := Q(15, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Width() != 23 || f.String() != "Q15.8" {
		t.Errorf("format %v width %d", f, f.Width())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustQ should panic on invalid widths")
		}
	}()
	MustQ(0, 0)
}

func TestFixedRoundTrip(t *testing.T) {
	f := MustQ(15, 8)
	for _, v := range []float64{0, 1, -1, 3.14159, -2.71828, 100.125, -100.125} {
		raw, sat := f.FromFloat(v)
		if sat {
			t.Fatalf("%g saturated unexpectedly", v)
		}
		back := f.ToFloat(raw)
		if math.Abs(back-v) > f.EpsilonLSB()/2+1e-12 {
			t.Errorf("round trip %g -> %g", v, back)
		}
	}
}

func TestFixedSaturation(t *testing.T) {
	f := MustQ(3, 2) // range [-8, 7.75]
	raw, sat := f.FromFloat(100)
	if !sat || f.ToFloat(raw) != 7.75 {
		t.Errorf("positive saturation: %g, sat=%v", f.ToFloat(raw), sat)
	}
	raw, sat = f.FromFloat(-100)
	if !sat || f.ToFloat(raw) != -8 {
		t.Errorf("negative saturation: %g, sat=%v", f.ToFloat(raw), sat)
	}
	// Add saturates.
	a, _ := f.FromFloat(7)
	s, sat := f.Add(a, a)
	if !sat || f.ToFloat(s) != 7.75 {
		t.Error("add should saturate")
	}
	d, sat := f.Sub(f.Min(), a)
	if !sat || d != f.Min() {
		t.Error("sub should saturate at min")
	}
}

func TestFixedMul(t *testing.T) {
	f := MustQ(15, 8)
	a, _ := f.FromFloat(3.5)
	b, _ := f.FromFloat(-2.25)
	p, sat := f.Mul(a, b)
	if sat {
		t.Fatal("unexpected saturation")
	}
	if got := f.ToFloat(p); math.Abs(got-(-7.875)) > f.EpsilonLSB() {
		t.Errorf("3.5 * -2.25 = %g", got)
	}
	// Saturating product.
	big, _ := f.FromFloat(30000)
	_, sat = f.Mul(big, big)
	if !sat {
		t.Error("large product should saturate")
	}
}

func TestFixedShrRounding(t *testing.T) {
	f := MustQ(15, 0)
	if f.Shr(5, 1) != 3 { // 2.5 rounds to 3
		t.Errorf("Shr(5,1) = %d", f.Shr(5, 1))
	}
	if f.Shr(-5, 1) != -3 {
		t.Errorf("Shr(-5,1) = %d", f.Shr(-5, 1))
	}
	if f.Shr(4, 2) != 1 {
		t.Errorf("Shr(4,2) = %d", f.Shr(4, 2))
	}
	if f.Shr(7, 0) != 7 {
		t.Error("zero shift should be identity")
	}
}

// Property: quantization error is bounded by half an LSB inside the range.
func TestQuantizeErrorBound(t *testing.T) {
	f := MustQ(10, 6)
	check := func(v float64) bool {
		v = math.Mod(v, 1000) // keep in range
		_, e := f.Quantize(v)
		return math.Abs(e) <= f.EpsilonLSB()/2+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVectorHelpers(t *testing.T) {
	f := MustQ(7, 4)
	in := []float64{1.5, -2.25, 500} // 500 saturates Q7.4 (max ~127.9)
	raw, sat := f.Vector(in)
	if sat != 1 {
		t.Errorf("saturated count %d, want 1", sat)
	}
	out := f.Floats(raw)
	if math.Abs(out[0]-1.5) > 1e-9 || math.Abs(out[1]+2.25) > 1e-9 {
		t.Error("vector round trip failed")
	}
}

func TestBRAMBasics(t *testing.T) {
	b, err := NewBRAM("t", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if b.Max() != 255 || b.Bits() != 128 {
		t.Errorf("max %d bits %d", b.Max(), b.Bits())
	}
	if err := b.Write(3, 100); err != nil {
		t.Fatal(err)
	}
	v, err := b.Read(3)
	if err != nil || v != 100 {
		t.Errorf("read %d, %v", v, err)
	}
	// Saturation.
	if err := b.Write(3, 1000); err != nil {
		t.Fatal(err)
	}
	v, _ = b.Read(3)
	if v != 255 {
		t.Errorf("saturated write = %d", v)
	}
	_, _, ovf := b.Stats()
	if ovf != 1 {
		t.Errorf("overflows %d, want 1", ovf)
	}
	// Negative clips to zero without counting overflow.
	b.Write(4, -5)
	if v, _ := b.Read(4); v != 0 {
		t.Error("negative write should clip to 0")
	}
	// Accumulate.
	b.Clear()
	b.Accumulate(0, 200)
	b.Accumulate(0, 100)
	if v, _ := b.Read(0); v != 255 {
		t.Errorf("accumulate saturation = %d", v)
	}
	// Bounds.
	if _, err := b.Read(-1); err == nil {
		t.Error("negative read address")
	}
	if err := b.Write(16, 0); err == nil {
		t.Error("out-of-range write address")
	}
	if err := b.Accumulate(99, 1); err == nil {
		t.Error("out-of-range accumulate")
	}
	// Constructor errors.
	if _, err := NewBRAM("x", 0, 4); err == nil {
		t.Error("zero word bits")
	}
	if _, err := NewBRAM("x", 8, 0); err == nil {
		t.Error("zero depth")
	}
}

func TestFIFO(t *testing.T) {
	f, err := NewFIFO("q", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Push(Token{ID: 1}) || !f.Push(Token{ID: 2}) {
		t.Fatal("pushes should succeed")
	}
	if f.Push(Token{ID: 3}) {
		t.Fatal("third push should fail")
	}
	tok, ok := f.Pop()
	if !ok || tok.ID != 1 {
		t.Fatal("FIFO order broken")
	}
	pushes, pops, stalls, maxDepth := f.Stats()
	if pushes != 2 || pops != 1 || stalls != 1 || maxDepth != 2 {
		t.Errorf("stats %d %d %d %d", pushes, pops, stalls, maxDepth)
	}
	if _, err := NewFIFO("bad", 0); err == nil {
		t.Error("zero capacity should fail")
	}
	f.Pop()
	if _, ok := f.Pop(); ok {
		t.Error("pop from empty should fail")
	}
}

func TestPipelineFlow(t *testing.T) {
	q1, _ := NewFIFO("q1", 4)
	q2, _ := NewFIFO("q2", 4)
	double := func(tok Token) Token {
		tok.Payload = tok.Payload.(int) * 2
		return tok
	}
	src := &Stage{Name: "src", II: 1, Out: q1}
	mid := &Stage{Name: "mid", II: 1, Latency: 2, In: q1, Out: q2, Process: double}
	sink := &Stage{Name: "sink", II: 1, In: q2}
	p, err := NewPipeline(src, mid, sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for !p.Feed(src, Token{ID: i, Words: 1, Payload: i}) {
			p.Step(1)
		}
		p.Step(1)
	}
	cycles, ok := p.RunUntilDrained(1000)
	if !ok {
		t.Fatal("pipeline failed to drain")
	}
	if cycles <= 0 {
		t.Error("draining should consume cycles")
	}
	if s := sink.Stats(); s.Accepted != 5 {
		t.Errorf("sink accepted %d, want 5", s.Accepted)
	}
	if s := mid.Stats(); s.Emitted != 5 {
		t.Errorf("mid emitted %d, want 5", s.Emitted)
	}
}

// TestPipelineBackpressure: a slow downstream stage must stall the upstream
// producer, and the bottleneck report must name the producer that blocks.
func TestPipelineBackpressure(t *testing.T) {
	q1, _ := NewFIFO("q1", 1)
	q2, _ := NewFIFO("q2", 1)
	fast := &Stage{Name: "fast", II: 1, In: q1, Out: q2}
	slow := &Stage{Name: "slow", II: 10, In: q2}
	p, _ := NewPipeline(fast, slow)
	for i := 0; i < 8; i++ {
		q1.Push(Token{ID: i})
		p.Step(3)
	}
	p.RunUntilDrained(1000)
	if s := fast.Stats(); s.OutputStalls == 0 {
		t.Error("fast stage should have stalled on the slow consumer")
	}
	if b := p.Bottleneck(); b.Name != "fast" {
		t.Errorf("bottleneck = %s, want fast (it blocks on slow)", b.Name)
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(); err == nil {
		t.Error("empty pipeline")
	}
	if _, err := NewPipeline(&Stage{Name: "", II: 1}); err == nil {
		t.Error("unnamed stage")
	}
	if _, err := NewPipeline(&Stage{Name: "a", II: 1}, &Stage{Name: "a", II: 1}); err == nil {
		t.Error("duplicate names")
	}
	if _, err := NewPipeline(&Stage{Name: "a"}); err == nil {
		t.Error("missing II")
	}
	if _, err := NewPipeline(&Stage{Name: "a", II: 1, Latency: -1}); err == nil {
		t.Error("negative latency")
	}
}

func TestPipelineIIFor(t *testing.T) {
	q, _ := NewFIFO("q", 2)
	st := &Stage{
		Name:  "sized",
		IIFor: func(tok Token) int { return tok.Words },
		In:    q,
	}
	p, _ := NewPipeline(st)
	q.Push(Token{ID: 0, Words: 5})
	q.Push(Token{ID: 1, Words: 5})
	cycles, ok := p.RunUntilDrained(100)
	if !ok {
		t.Fatal("did not drain")
	}
	// Two 5-cycle tokens take >= 10 cycles.
	if cycles < 10 {
		t.Errorf("drained in %d cycles, want >= 10", cycles)
	}
}

func TestCaptureCore(t *testing.T) {
	c, err := NewCaptureCore(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	samples := []int64{0, 1, 2, 3, 4, 5, 0, 9}
	cycles := c.Capture(samples)
	if cycles != 2 { // 8 samples at 4/cycle
		t.Errorf("cycles %d, want 2", cycles)
	}
	want := []int64{0, 0, 0, 3, 4, 5, 0, 9}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("sample %d = %d, want %d", i, samples[i], want[i])
		}
	}
	kept, dropped := c.Stats()
	if kept != 4 || dropped != 4 {
		t.Errorf("kept %d dropped %d", kept, dropped)
	}
	if _, err := NewCaptureCore(0, 0); err == nil {
		t.Error("zero parallelism")
	}
	if _, err := NewCaptureCore(1, -1); err == nil {
		t.Error("negative threshold")
	}
	// Threshold 0 keeps everything.
	c0, _ := NewCaptureCore(1, 0)
	s := []int64{1, 0, 2}
	c0.Capture(s)
	if s[1] != 0 || s[0] != 1 {
		t.Error("threshold-0 capture should pass samples through")
	}
}

func TestAccumulatorCore(t *testing.T) {
	a, err := NewAccumulatorCore(4, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.Depth() != 64 {
		t.Errorf("depth %d", a.Depth())
	}
	block := make([]int64, 64)
	for i := range block {
		block[i] = int64(i)
	}
	cycles, err := a.Accumulate(block)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 16 { // 64 words over 4 banks
		t.Errorf("cycles %d, want 16", cycles)
	}
	if _, err := a.Accumulate(block); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	for i := range block {
		if snap[i] != 2*int64(i) {
			t.Fatalf("word %d = %d, want %d", i, snap[i], 2*i)
		}
	}
	a.Clear()
	for _, v := range a.Snapshot() {
		if v != 0 {
			t.Fatal("clear failed")
		}
	}
	// Overflow accounting.
	hot := make([]int64, 4)
	hot[0] = 1 << 20
	a.Accumulate(hot)
	if a.Overflows() != 1 {
		t.Errorf("overflows %d, want 1", a.Overflows())
	}
	if a.StorageBits() != 64*16 {
		t.Errorf("storage bits %d", a.StorageBits())
	}
	// Errors.
	if _, err := a.Accumulate(make([]int64, 100)); err == nil {
		t.Error("oversize block")
	}
	if _, err := NewAccumulatorCore(0, 8, 8); err == nil {
		t.Error("zero banks")
	}
	if _, err := NewAccumulatorCore(8, 8, 4); err == nil {
		t.Error("depth below banks")
	}
}

// TestFHTCoreMatchesReference: with a wide format the fixed-point transform
// matches the float64 decoder to quantization precision.
func TestFHTCoreMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	core, err := NewFHTCore(7, MustQ(40, 12), GrowthSaturate, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, core.Len())
	for i := range y {
		y[i] = rng.Float64() * 1000
	}
	got, cycles, err := core.Deconvolve(y)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != core.CyclesPerFrame() {
		t.Error("cycle accounting inconsistent")
	}
	want, err := core.ReferenceDeconvolve(y)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := hadamard.ReconstructionError(got, want)
	if e > 1e-4 {
		t.Errorf("wide-format error %g vs reference", e)
	}
	if core.Saturations() != 0 {
		t.Errorf("unexpected saturations: %d", core.Saturations())
	}
}

// TestFHTCoreRoundTripThroughEncoder: fixed-point decode of an encoded
// signal recovers the signal.
func TestFHTCoreRoundTripThroughEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	order := 8
	s := prs.MustMSequence(order)
	x := make([]float64, len(s))
	for i := 0; i < 5; i++ {
		x[rng.Intn(len(x))] = 100 + rng.Float64()*900
	}
	y, err := hadamard.Encode(s, x)
	if err != nil {
		t.Fatal(err)
	}
	core, _ := NewFHTCore(order, MustQ(44, 10), GrowthSaturate, 8, 4)
	got, _, err := core.Deconvolve(y)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := hadamard.ReconstructionError(got, x)
	if e > 1e-3 {
		t.Errorf("round-trip error %g", e)
	}
}

// TestFHTCoreNarrowFormatDegrades: an 8-bit-fraction narrow format must show
// larger reconstruction error than a wide one — the paper's precision trade.
func TestFHTCoreNarrowFormatDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	order := 7
	s := prs.MustMSequence(order)
	x := make([]float64, len(s))
	for i := range x {
		x[i] = rng.Float64() * 100
	}
	y, _ := hadamard.Encode(s, x)
	wide, _ := NewFHTCore(order, MustQ(40, 12), GrowthSaturate, 4, 2)
	narrow, _ := NewFHTCore(order, MustQ(12, 0), GrowthScalePerStage, 4, 2)
	gw, _, _ := wide.Deconvolve(y)
	gn, _, _ := narrow.Deconvolve(y)
	ew, _ := hadamard.ReconstructionError(gw, x)
	en, _ := hadamard.ReconstructionError(gn, x)
	if en <= ew {
		t.Errorf("narrow error %g should exceed wide error %g", en, ew)
	}
}

// TestFHTCoreScalePerStageAvoidsSaturation: with large accumulated inputs,
// the saturate policy overflows while per-stage scaling does not.
func TestFHTCoreScalePerStageAvoidsSaturation(t *testing.T) {
	order := 9
	s := prs.MustMSequence(order)
	x := make([]float64, len(s))
	for i := range x {
		x[i] = 1000 // hot everywhere: worst-case growth
	}
	y, _ := hadamard.Encode(s, x)
	sat, _ := NewFHTCore(order, MustQ(20, 0), GrowthSaturate, 4, 2)
	scaled, _ := NewFHTCore(order, MustQ(20, 0), GrowthScalePerStage, 4, 2)
	sat.Deconvolve(y)
	scaled.Deconvolve(y)
	if sat.Saturations() == 0 {
		t.Error("saturate policy should overflow on hot input")
	}
	if scaled.Saturations() != 0 {
		t.Errorf("scaled policy saturated %d times", scaled.Saturations())
	}
	scaled.ResetStats()
	if scaled.Saturations() != 0 {
		t.Error("reset failed")
	}
}

func TestFHTCoreCycleScaling(t *testing.T) {
	slow, _ := NewFHTCore(8, MustQ(30, 8), GrowthSaturate, 1, 1)
	fast, _ := NewFHTCore(8, MustQ(30, 8), GrowthSaturate, 8, 8)
	if fast.CyclesPerFrame() >= slow.CyclesPerFrame() {
		t.Error("more butterfly units should reduce cycles")
	}
	// Roughly 8x fewer butterfly cycles.
	ratio := float64(slow.CyclesPerFrame()) / float64(fast.CyclesPerFrame())
	if ratio < 4 {
		t.Errorf("parallel speedup %g too small", ratio)
	}
}

func TestFHTCoreErrors(t *testing.T) {
	if _, err := NewFHTCore(1, MustQ(20, 8), GrowthSaturate, 1, 1); err == nil {
		t.Error("bad order")
	}
	if _, err := NewFHTCore(6, MustQ(20, 8), GrowthSaturate, 0, 1); err == nil {
		t.Error("zero butterfly units")
	}
	if _, err := NewFHTCore(6, MustQ(20, 8), GrowthSaturate, 1, 0); err == nil {
		t.Error("zero mem ports")
	}
	core, _ := NewFHTCore(6, MustQ(20, 8), GrowthSaturate, 1, 1)
	if _, _, err := core.Deconvolve(make([]float64, 10)); err == nil {
		t.Error("length mismatch")
	}
}

func BenchmarkFHTCoreDeconvolve(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	core, _ := NewFHTCore(10, MustQ(40, 8), GrowthSaturate, 8, 4)
	y := make([]float64, core.Len())
	for i := range y {
		y[i] = rng.Float64() * 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Deconvolve(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccumulatorCore(b *testing.B) {
	a, _ := NewAccumulatorCore(8, 32, 2048)
	block := make([]int64, 2048)
	for i := range block {
		block[i] = int64(i % 255)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Accumulate(block); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDeconvolveToMatchesDeconvolve pins the scratch-reusing entry point
// to the allocating one bit for bit, and gates its steady-state
// allocation at zero.
func TestDeconvolveToMatchesDeconvolve(t *testing.T) {
	for _, growth := range []GrowthPolicy{GrowthSaturate, GrowthScalePerStage} {
		core, err := NewFHTCore(8, Format{IntBits: 24, FracBits: 8}, growth, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, core.Len())
		for i := range y {
			y[i] = float64((i*37)%251) / 3
		}
		want, wantCycles, err := core.Deconvolve(y)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, core.Len())
		cycles, err := core.DeconvolveTo(dst, y)
		if err != nil {
			t.Fatal(err)
		}
		if cycles != wantCycles {
			t.Errorf("growth %v: cycles %d != %d", growth, cycles, wantCycles)
		}
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("growth %v: bin %d: DeconvolveTo %v != Deconvolve %v", growth, i, dst[i], want[i])
			}
		}
		if _, err := core.DeconvolveTo(dst[:1], y); err == nil {
			t.Error("short dst accepted")
		}
		if a := testing.AllocsPerRun(20, func() {
			if _, err := core.DeconvolveTo(dst, y); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("growth %v: DeconvolveTo allocates %g/op", growth, a)
		}
	}
}
