// pipeline.go is the clocked dataflow model: tokens move through stages
// connected by bounded FIFOs, with per-stage initiation intervals and
// latencies, and stall accounting under backpressure.  It approximates FPGA
// behaviour at the granularity the paper's evaluation needs — sustained
// throughput, bottleneck location and buffer occupancy — without gate-level
// detail.
package fpga

import (
	"fmt"

	"repro/internal/telemetry"
)

// Token is a unit of work moving through the pipeline (e.g. one captured
// sample block or one frame).
type Token struct {
	ID      int
	Words   int // payload size in memory words, for bandwidth accounting
	Payload interface{}
}

// FIFO is a bounded queue between stages.
type FIFO struct {
	Name     string
	Capacity int

	q          []Token
	pushes     int64
	pops       int64
	fullStalls int64
	maxDepth   int

	// depthHist, when set by Pipeline.Instrument, receives one occupancy
	// observation per simulated cycle.
	depthHist *telemetry.Histogram
	// depthPeak, when set, tracks the high-water occupancy.
	depthPeak *telemetry.Gauge
}

// NewFIFO constructs a bounded FIFO.
func NewFIFO(name string, capacity int) (*FIFO, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("fpga: FIFO %q capacity %d must be positive", name, capacity)
	}
	return &FIFO{Name: name, Capacity: capacity}, nil
}

// Push appends a token; false (and a stall count) if full.
func (f *FIFO) Push(t Token) bool {
	if len(f.q) >= f.Capacity {
		f.fullStalls++
		return false
	}
	f.q = append(f.q, t)
	f.pushes++
	if len(f.q) > f.maxDepth {
		f.maxDepth = len(f.q)
	}
	return true
}

// Pop removes the head token; ok=false if empty.
func (f *FIFO) Pop() (Token, bool) {
	if len(f.q) == 0 {
		return Token{}, false
	}
	t := f.q[0]
	f.q = f.q[1:]
	f.pops++
	return t, true
}

// Len returns the current occupancy.
func (f *FIFO) Len() int { return len(f.q) }

// Stats reports lifetime counters.
func (f *FIFO) Stats() (pushes, pops, fullStalls int64, maxDepth int) {
	return f.pushes, f.pops, f.fullStalls, f.maxDepth
}

// Stage is a processing element: it accepts one token every II cycles (when
// input is available and output has room), applies Process, and emits the
// result Latency cycles later.
type Stage struct {
	Name string
	// II is the initiation interval: minimum cycles between accepted
	// tokens.  For data-dependent intervals set IIFor.
	II int
	// IIFor, if non-nil, returns the initiation interval for a specific
	// token (e.g. cycles proportional to token words).
	IIFor func(Token) int
	// Latency is the additional delay from acceptance to emission.
	Latency int
	// Process transforms the token (may be nil for pure movement).
	Process func(Token) Token
	// In is the input FIFO; nil makes the stage a source driven by Feed.
	In *FIFO
	// Out is the output FIFO; nil makes the stage a sink.
	Out *FIFO
	// OnAccept, if non-nil, observes every token the stage accepts along
	// with the cycle of acceptance — the hook higher layers use to measure
	// end-to-end token latency through the pipeline.
	OnAccept func(t Token, cycle int64)

	// busyUntil is the cycle at which the stage can accept again.
	busyUntil int64
	// pending holds a processed token awaiting emission.
	pending      *Token
	pendingAt    int64
	accepted     int64
	emitted      int64
	inputStalls  int64 // cycles idle for lack of input
	outputStalls int64 // cycles blocked on a full output FIFO

	// stallHist, when set by Pipeline.Instrument, receives the length of
	// each completed run of consecutive output-stall cycles.
	stallHist *telemetry.Histogram
	stallRun  int64
}

// StageStats is a snapshot of a stage's counters.
type StageStats struct {
	Name         string
	Accepted     int64
	Emitted      int64
	InputStalls  int64
	OutputStalls int64
}

// Stats returns the stage counters.
func (s *Stage) Stats() StageStats {
	return StageStats{Name: s.Name, Accepted: s.accepted, Emitted: s.emitted, InputStalls: s.inputStalls, OutputStalls: s.outputStalls}
}

// tick advances the stage one cycle.
func (s *Stage) tick(cycle int64) {
	// Emission first: a pending token whose latency elapsed moves to Out.
	if s.pending != nil && cycle >= s.pendingAt {
		if s.Out == nil {
			s.emitted++
			s.pending = nil
		} else if s.Out.Push(*s.pending) {
			s.emitted++
			s.pending = nil
		} else {
			s.outputStalls++
			s.stallRun++
			return // blocked; cannot accept either
		}
		if s.stallRun > 0 {
			if s.stallHist != nil {
				s.stallHist.Observe(float64(s.stallRun))
			}
			s.stallRun = 0
		}
	}
	if cycle < s.busyUntil || s.pending != nil {
		return // still processing or holding
	}
	if s.In == nil {
		return // source stages are fed externally
	}
	t, ok := s.In.Pop()
	if !ok {
		s.inputStalls++
		return
	}
	s.accept(t, cycle)
}

// accept starts processing a token at the given cycle.
func (s *Stage) accept(t Token, cycle int64) {
	ii := s.II
	if s.IIFor != nil {
		ii = s.IIFor(t)
	}
	if ii < 1 {
		ii = 1
	}
	if s.Process != nil {
		t = s.Process(t)
	}
	s.busyUntil = cycle + int64(ii)
	done := cycle + int64(ii) + int64(s.Latency)
	s.pending = &t
	s.pendingAt = done
	s.accepted++
	if s.OnAccept != nil {
		s.OnAccept(t, cycle)
	}
}

// Pipeline is an ordered set of stages sharing a clock.
type Pipeline struct {
	Stages []*Stage
	cycle  int64

	// fifos are the distinct FIFOs wired between stages, collected for
	// per-cycle occupancy sampling when instrumented.
	fifos   []*FIFO
	cyclesC *telemetry.Counter
}

// NewPipeline validates stage wiring (each non-source stage needs an input
// FIFO) and returns the pipeline.
func NewPipeline(stages ...*Stage) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("fpga: empty pipeline")
	}
	names := map[string]bool{}
	for _, st := range stages {
		if st.Name == "" {
			return nil, fmt.Errorf("fpga: unnamed stage")
		}
		if names[st.Name] {
			return nil, fmt.Errorf("fpga: duplicate stage %q", st.Name)
		}
		names[st.Name] = true
		if st.II < 1 && st.IIFor == nil {
			return nil, fmt.Errorf("fpga: stage %q needs II >= 1 or IIFor", st.Name)
		}
		if st.Latency < 0 {
			return nil, fmt.Errorf("fpga: stage %q negative latency", st.Name)
		}
	}
	return &Pipeline{Stages: stages}, nil
}

// Cycle returns the current clock cycle.
func (p *Pipeline) Cycle() int64 { return p.cycle }

// Instrument wires the pipeline's clocked hot path into a telemetry
// registry: per-FIFO occupancy histograms (fpga_fifo_depth, one sample per
// cycle) and peak gauges (fpga_fifo_depth_peak), per-stage output-stall
// run-length histograms (fpga_stage_stall_run_cycles), and the simulated
// cycle counter (fpga_pipeline_cycles_total).  A nil registry leaves the
// pipeline un-instrumented; calling before the first Step is recommended so
// samples cover the whole run.
func (p *Pipeline) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	p.cyclesC = reg.Counter("fpga_pipeline_cycles_total", "simulated FPGA clock cycles stepped")
	seen := map[*FIFO]bool{}
	p.fifos = nil
	for _, st := range p.Stages {
		st.stallHist = reg.Histogram("fpga_stage_stall_run_cycles",
			"length of each run of consecutive output-stall cycles, cycles", telemetry.L("stage", st.Name))
		for _, f := range []*FIFO{st.In, st.Out} {
			if f == nil || seen[f] {
				continue
			}
			seen[f] = true
			f.depthHist = reg.Histogram("fpga_fifo_depth", "FIFO occupancy sampled once per cycle, tokens",
				telemetry.L("fifo", f.Name))
			f.depthPeak = reg.Gauge("fpga_fifo_depth_peak", "high-water FIFO occupancy, tokens",
				telemetry.L("fifo", f.Name))
			p.fifos = append(p.fifos, f)
		}
	}
}

// Feed pushes a token into a source stage (one with In == nil) if it is
// free; returns false when the stage is busy.
func (p *Pipeline) Feed(stage *Stage, t Token) bool {
	if stage.pending != nil || p.cycle < stage.busyUntil {
		return false
	}
	stage.accept(t, p.cycle)
	return true
}

// Step advances the clock n cycles.  Stages tick in reverse order so
// downstream stages free FIFO space before upstream stages push — matching
// the simultaneous-update semantics of clocked hardware.
func (p *Pipeline) Step(n int) {
	for i := 0; i < n; i++ {
		for j := len(p.Stages) - 1; j >= 0; j-- {
			p.Stages[j].tick(p.cycle)
		}
		for _, f := range p.fifos {
			d := float64(len(f.q))
			f.depthHist.Observe(d)
			f.depthPeak.SetMax(d)
		}
		p.cycle++
	}
	p.cyclesC.Add(int64(n))
}

// RunUntilDrained steps until every FIFO is empty and no stage holds a
// pending token, or maxCycles elapse.  Returns the cycles consumed and
// whether draining completed.
func (p *Pipeline) RunUntilDrained(maxCycles int64) (int64, bool) {
	start := p.cycle
	for p.cycle-start < maxCycles {
		if p.drained() {
			return p.cycle - start, true
		}
		p.Step(1)
	}
	return p.cycle - start, p.drained()
}

func (p *Pipeline) drained() bool {
	for _, st := range p.Stages {
		if st.pending != nil {
			return false
		}
		if st.In != nil && st.In.Len() > 0 {
			return false
		}
		if st.Out != nil && st.Out.Len() > 0 {
			return false
		}
	}
	return true
}

// Bottleneck returns the stage with the highest output-stall count — the
// structural bottleneck under sustained load.
func (p *Pipeline) Bottleneck() StageStats {
	best := p.Stages[0].Stats()
	for _, st := range p.Stages[1:] {
		if s := st.Stats(); s.OutputStalls > best.OutputStalls {
			best = s
		}
	}
	return best
}
