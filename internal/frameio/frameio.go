// Package frameio is the storage substrate: a compact, self-describing
// binary container for accumulated IMS-TOF frames, following the design
// goals of the companion PNNL data-format work (Shah, Davidson et al.,
// J. Am. Soc. Mass Spectrom. 2010): smaller than text encodings, cheap to
// scan, and extensible through a typed metadata header.
//
// Layout (little endian):
//
//	magic "HTIMSFR1" | header length u32 | header bytes |
//	drift bins u32 | tof bins u32 | encoding u8 |
//	payload ...
//
// Two payload encodings are provided: Raw (IEEE-754 float64 per cell) and
// Delta (zig-zag varint of the integer delta between consecutive cells) —
// accumulated ADC counts are integers with strong column correlation, which
// delta-varint coding exploits for a typical 4-8× size reduction.
package frameio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/instrument"
)

// Encoding selects the payload representation.
type Encoding uint8

const (
	// Raw stores each cell as a float64.
	Raw Encoding = 0
	// Delta stores zig-zag varints of cell-to-cell integer differences.
	// Cells must hold integral values (accumulated counts); Write returns
	// an error otherwise.
	Delta Encoding = 1
)

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case Raw:
		return "raw"
	case Delta:
		return "delta"
	}
	return fmt.Sprintf("encoding(%d)", uint8(e))
}

var magic = [8]byte{'H', 'T', 'I', 'M', 'S', 'F', 'R', '1'}

// Metadata is the typed key/value header accompanying a frame.
type Metadata map[string]string

// Write serializes the frame.
func Write(w io.Writer, f *instrument.Frame, meta Metadata, enc Encoding) error {
	if f == nil {
		return fmt.Errorf("frameio: nil frame")
	}
	if enc != Raw && enc != Delta {
		return fmt.Errorf("frameio: unknown encoding %v", enc)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	header, err := encodeMeta(meta)
	if err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(header))); err != nil {
		return err
	}
	if _, err := bw.Write(header); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(f.DriftBins)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(f.TOFBins)); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(enc)); err != nil {
		return err
	}
	switch enc {
	case Raw:
		for _, v := range f.Data {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	case Delta:
		var prev int64
		buf := make([]byte, binary.MaxVarintLen64)
		for i, v := range f.Data {
			iv := int64(v)
			if float64(iv) != v {
				return fmt.Errorf("frameio: cell %d holds non-integral value %g (delta encoding needs counts)", i, v)
			}
			n := binary.PutVarint(buf, iv-prev)
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
			prev = iv
		}
	}
	return bw.Flush()
}

// Limits bounds what a frame header may declare before any payload-sized
// allocation happens.  Read enforces DefaultLimits; network servers should
// pass much tighter bounds to ReadLimited so a malicious or corrupt peer
// cannot force a huge allocation with a 17-byte header.
type Limits struct {
	// MaxHeaderBytes caps the metadata header length.
	MaxHeaderBytes uint32
	// MaxDriftBins and MaxTOFBins cap each frame axis.
	MaxDriftBins uint32
	MaxTOFBins   uint32
	// MaxCells caps DriftBins × TOFBins (the payload allocation, 8 bytes
	// per cell once decoded).
	MaxCells uint64
}

// DefaultLimits returns the historical bounds of Read: 1 MiB of metadata
// and 2³⁰ cells (8 GiB decoded) with no per-axis cap beyond the cell cap.
func DefaultLimits() Limits {
	return Limits{
		MaxHeaderBytes: 1 << 20,
		MaxDriftBins:   1 << 30,
		MaxTOFBins:     1 << 30,
		MaxCells:       1 << 30,
	}
}

// Validate reports the first unusable bound.
func (l Limits) Validate() error {
	if l.MaxHeaderBytes == 0 || l.MaxDriftBins == 0 || l.MaxTOFBins == 0 || l.MaxCells == 0 {
		return fmt.Errorf("frameio: limits must all be positive (%+v)", l)
	}
	return nil
}

// Read deserializes a frame written by Write, under DefaultLimits.
func Read(r io.Reader) (*instrument.Frame, Metadata, error) {
	return ReadLimited(r, DefaultLimits())
}

// ReadLimited deserializes a frame written by Write, rejecting any header
// that declares dimensions or sizes beyond lim before allocating for them.
// It reads exactly one frame, streaming the payload through a small buffer
// — r may be a net.Conn wrapped in an io.LimitReader; the whole encoded
// payload is never held in memory (only the decoded cells are).
func ReadLimited(r io.Reader, lim Limits) (*instrument.Frame, Metadata, error) {
	if err := lim.Validate(); err != nil {
		return nil, nil, err
	}
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, nil, fmt.Errorf("frameio: reading magic: %w", err)
	}
	if m != magic {
		return nil, nil, fmt.Errorf("frameio: bad magic %q", m[:])
	}
	var headerLen uint32
	if err := binary.Read(br, binary.LittleEndian, &headerLen); err != nil {
		return nil, nil, err
	}
	if headerLen > lim.MaxHeaderBytes {
		return nil, nil, fmt.Errorf("frameio: header of %d bytes exceeds %d-byte bound", headerLen, lim.MaxHeaderBytes)
	}
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, nil, err
	}
	meta, err := decodeMeta(header)
	if err != nil {
		return nil, nil, err
	}
	var driftBins, tofBins uint32
	if err := binary.Read(br, binary.LittleEndian, &driftBins); err != nil {
		return nil, nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &tofBins); err != nil {
		return nil, nil, err
	}
	if driftBins == 0 || tofBins == 0 || uint64(driftBins)*uint64(tofBins) > lim.MaxCells {
		return nil, nil, fmt.Errorf("frameio: implausible geometry %d x %d (cell bound %d)", driftBins, tofBins, lim.MaxCells)
	}
	if driftBins > lim.MaxDriftBins || tofBins > lim.MaxTOFBins {
		return nil, nil, fmt.Errorf("frameio: geometry %d x %d exceeds axis bounds %d x %d",
			driftBins, tofBins, lim.MaxDriftBins, lim.MaxTOFBins)
	}
	encByte, err := br.ReadByte()
	if err != nil {
		return nil, nil, err
	}
	f := instrument.NewFrame(int(driftBins), int(tofBins))
	switch Encoding(encByte) {
	case Raw:
		for i := range f.Data {
			if err := binary.Read(br, binary.LittleEndian, &f.Data[i]); err != nil {
				return nil, nil, fmt.Errorf("frameio: cell %d: %w", i, err)
			}
		}
	case Delta:
		var prev int64
		for i := range f.Data {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, nil, fmt.Errorf("frameio: cell %d: %w", i, err)
			}
			prev += d
			f.Data[i] = float64(prev)
		}
	default:
		return nil, nil, fmt.Errorf("frameio: unknown encoding %d", encByte)
	}
	return f, meta, nil
}

// encodeMeta serializes metadata deterministically (sorted keys) as
// length-prefixed strings.
func encodeMeta(meta Metadata) ([]byte, error) {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		if len(k) == 0 {
			return nil, fmt.Errorf("frameio: empty metadata key")
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	buf := make([]byte, binary.MaxVarintLen64)
	appendStr := func(s string) {
		n := binary.PutUvarint(buf, uint64(len(s)))
		out = append(out, buf[:n]...)
		out = append(out, s...)
	}
	n := binary.PutUvarint(buf, uint64(len(keys)))
	out = append(out, buf[:n]...)
	for _, k := range keys {
		appendStr(k)
		appendStr(meta[k])
	}
	return out, nil
}

func decodeMeta(b []byte) (Metadata, error) {
	meta := Metadata{}
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("frameio: truncated metadata")
		}
		pos += n
		return v, nil
	}
	readStr := func() (string, error) {
		l, err := readUvarint()
		if err != nil {
			return "", err
		}
		if pos+int(l) > len(b) {
			return "", fmt.Errorf("frameio: truncated metadata string")
		}
		s := string(b[pos : pos+int(l)])
		pos += int(l)
		return s, nil
	}
	count, err := readUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < count; i++ {
		k, err := readStr()
		if err != nil {
			return nil, err
		}
		v, err := readStr()
		if err != nil {
			return nil, err
		}
		meta[k] = v
	}
	return meta, nil
}

// EncodedSize returns the payload byte count a frame would occupy under the
// encoding, without writing (for format comparisons).
func EncodedSize(f *instrument.Frame, enc Encoding) (int64, error) {
	if f == nil {
		return 0, fmt.Errorf("frameio: nil frame")
	}
	switch enc {
	case Raw:
		return int64(len(f.Data)) * 8, nil
	case Delta:
		var total int64
		var prev int64
		buf := make([]byte, binary.MaxVarintLen64)
		for i, v := range f.Data {
			iv := int64(v)
			if float64(iv) != v {
				return 0, fmt.Errorf("frameio: cell %d holds non-integral value %g", i, v)
			}
			total += int64(binary.PutVarint(buf, iv-prev))
			prev = iv
		}
		return total, nil
	}
	return 0, fmt.Errorf("frameio: unknown encoding %v", enc)
}

// CSVSize estimates the size of the same frame as a naive CSV text export
// (the comparison baseline of the companion data-format paper).
func CSVSize(f *instrument.Frame) int64 {
	if f == nil {
		return 0
	}
	var total int64
	for _, v := range f.Data {
		total += int64(len(fmt.Sprintf("%g,", v)))
	}
	total += int64(f.DriftBins) // newlines
	return total
}
