package frameio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/instrument"
)

func countsFrame(rng *rand.Rand, drift, tof int) *instrument.Frame {
	f := instrument.NewFrame(drift, tof)
	for i := range f.Data {
		// Sparse integral counts, as an accumulated ADC frame holds.
		if rng.Intn(4) == 0 {
			f.Data[i] = float64(rng.Intn(5000))
		}
	}
	return f
}

func framesEqual(a, b *instrument.Frame) bool {
	if a.DriftBins != b.DriftBins || a.TOFBins != b.TOFBins || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

func TestRoundTripBothEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := countsFrame(rng, 63, 32)
	meta := Metadata{"mode": "multiplexed+trap", "order": "8", "seed": "42"}
	for _, enc := range []Encoding{Raw, Delta} {
		var buf bytes.Buffer
		if err := Write(&buf, f, meta, enc); err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		got, gotMeta, err := Read(&buf)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		if !framesEqual(got, f) {
			t.Fatalf("%v: round trip corrupted frame", enc)
		}
		if len(gotMeta) != len(meta) || gotMeta["mode"] != "multiplexed+trap" || gotMeta["order"] != "8" {
			t.Fatalf("%v: metadata %v", enc, gotMeta)
		}
	}
}

func TestRawHandlesNonIntegral(t *testing.T) {
	f := instrument.NewFrame(4, 4)
	f.Data[5] = 3.14159
	var buf bytes.Buffer
	if err := Write(&buf, f, nil, Raw); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[5] != 3.14159 {
		t.Error("raw round trip lost precision")
	}
	// Delta must reject it.
	if err := Write(&buf, f, nil, Delta); err == nil {
		t.Error("delta encoding should reject non-integral cells")
	}
}

// TestDeltaCompression: accumulated count frames shrink well below raw and
// CSV sizes.
func TestDeltaCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := countsFrame(rng, 255, 64)
	rawSize, err := EncodedSize(f, Raw)
	if err != nil {
		t.Fatal(err)
	}
	deltaSize, err := EncodedSize(f, Delta)
	if err != nil {
		t.Fatal(err)
	}
	if deltaSize >= rawSize/2 {
		t.Errorf("delta %d bytes should be well below raw %d", deltaSize, rawSize)
	}
	// And the estimate matches the actual written payload closely.
	var buf bytes.Buffer
	if err := Write(&buf, f, nil, Delta); err != nil {
		t.Fatal(err)
	}
	overhead := int64(8 + 4 + 4 + 4 + 1 + 1) // magic+lens+geometry+enc+meta count
	if got := int64(buf.Len()); got < deltaSize || got > deltaSize+overhead+16 {
		t.Errorf("written %d bytes vs estimated payload %d", got, deltaSize)
	}
	if CSVSize(f) <= deltaSize {
		t.Error("CSV should be larger than delta")
	}
	if CSVSize(nil) != 0 {
		t.Error("nil frame CSV size")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := countsFrame(rng, 15, 8)
	var buf bytes.Buffer
	if err := Write(&buf, f, Metadata{"k": "v"}, Delta); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated payload.
	if _, _, err := Read(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Error("truncated payload accepted")
	}
	// Empty input.
	if _, _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Unknown encoding byte: rebuild with a patched encoding.
	var buf2 bytes.Buffer
	if err := Write(&buf2, f, nil, Raw); err != nil {
		t.Fatal(err)
	}
	raw := buf2.Bytes()
	// encoding byte position: 8 magic + 4 hlen + hlen + 4 + 4.
	hlen := int(uint32(raw[8]) | uint32(raw[9])<<8 | uint32(raw[10])<<16 | uint32(raw[11])<<24)
	encPos := 8 + 4 + hlen + 8
	raw[encPos] = 99
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("unknown encoding accepted")
	}
}

func TestWriteErrors(t *testing.T) {
	if err := Write(&bytes.Buffer{}, nil, nil, Raw); err == nil {
		t.Error("nil frame accepted")
	}
	f := instrument.NewFrame(2, 2)
	if err := Write(&bytes.Buffer{}, f, nil, Encoding(7)); err == nil {
		t.Error("unknown encoding accepted")
	}
	if err := Write(&bytes.Buffer{}, f, Metadata{"": "v"}, Raw); err == nil {
		t.Error("empty metadata key accepted")
	}
	if _, err := EncodedSize(nil, Raw); err == nil {
		t.Error("nil frame size accepted")
	}
	if _, err := EncodedSize(f, Encoding(7)); err == nil {
		t.Error("unknown encoding size accepted")
	}
}

func TestEncodingString(t *testing.T) {
	if Raw.String() != "raw" || Delta.String() != "delta" {
		t.Error("encoding names wrong")
	}
	if !strings.Contains(Encoding(9).String(), "9") {
		t.Error("unknown encoding should render its value")
	}
}

// Property: any frame of integral counts survives a Delta round trip.
func TestDeltaRoundTripProperty(t *testing.T) {
	f := func(seed int64, drift, tof uint8) bool {
		d := int(drift%16) + 1
		to := int(tof%16) + 1
		rng := rand.New(rand.NewSource(seed))
		frame := countsFrame(rng, d, to)
		var buf bytes.Buffer
		if err := Write(&buf, frame, nil, Delta); err != nil {
			return false
		}
		got, _, err := Read(&buf)
		if err != nil {
			return false
		}
		return framesEqual(got, frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	f := countsFrame(rng, 511, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, f, nil, Delta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	f := countsFrame(rng, 511, 256)
	var buf bytes.Buffer
	if err := Write(&buf, f, nil, Delta); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// failWriter errors after allowing n bytes.
type failWriter struct {
	remaining int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.remaining {
		n := w.remaining
		w.remaining = 0
		return n, errShort
	}
	w.remaining -= len(p)
	return len(p), nil
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write" }

func TestWriteIOErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := countsFrame(rng, 8, 8)
	// Probe several truncation points: magic, header, geometry, payload.
	for _, allow := range []int{0, 4, 10, 14, 20, 30} {
		for _, enc := range []Encoding{Raw, Delta} {
			if err := Write(&failWriter{remaining: allow}, f, Metadata{"k": "v"}, enc); err == nil {
				t.Errorf("allow=%d enc=%v: expected write error", allow, enc)
			}
		}
	}
}

func TestReadBoundsRejection(t *testing.T) {
	// Oversized header length.
	var buf bytes.Buffer
	buf.Write([]byte("HTIMSFR1"))
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F}) // huge header length
	if _, _, err := Read(&buf); err == nil {
		t.Error("oversized header accepted")
	}
	// Zero geometry.
	rng := rand.New(rand.NewSource(7))
	f := countsFrame(rng, 4, 4)
	var good bytes.Buffer
	if err := Write(&good, f, nil, Raw); err != nil {
		t.Fatal(err)
	}
	raw := good.Bytes()
	// Patch drift bins (just after magic + 4-byte header len + 1-byte
	// header body [count=0]) to zero.
	hlen := int(uint32(raw[8]) | uint32(raw[9])<<8 | uint32(raw[10])<<16 | uint32(raw[11])<<24)
	geoPos := 8 + 4 + hlen
	for i := 0; i < 4; i++ {
		raw[geoPos+i] = 0
	}
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("zero drift bins accepted")
	}
}

func TestMetadataTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := countsFrame(rng, 4, 4)
	var buf bytes.Buffer
	if err := Write(&buf, f, Metadata{"key": "value"}, Raw); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Shrink the declared header length so metadata decoding truncates.
	raw[8] = 2
	raw[9], raw[10], raw[11] = 0, 0, 0
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("truncated metadata accepted")
	}
}

func TestReadLimitedRejectsBeforeAllocation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := countsFrame(rng, 63, 8)
	var buf bytes.Buffer
	if err := Write(&buf, f, Metadata{"k": "v"}, Delta); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()

	lim := Limits{MaxHeaderBytes: 64, MaxDriftBins: 63, MaxTOFBins: 8, MaxCells: 63 * 8}
	if got, _, err := ReadLimited(bytes.NewReader(encoded), lim); err != nil {
		t.Fatalf("in-bounds frame rejected: %v", err)
	} else if !framesEqual(got, f) {
		t.Fatal("in-bounds frame corrupted")
	}

	cases := []struct {
		name string
		lim  Limits
	}{
		{"header", Limits{MaxHeaderBytes: 1, MaxDriftBins: 63, MaxTOFBins: 8, MaxCells: 63 * 8}},
		{"drift", Limits{MaxHeaderBytes: 64, MaxDriftBins: 62, MaxTOFBins: 8, MaxCells: 63 * 8}},
		{"tof", Limits{MaxHeaderBytes: 64, MaxDriftBins: 63, MaxTOFBins: 7, MaxCells: 63 * 8}},
		{"cells", Limits{MaxHeaderBytes: 64, MaxDriftBins: 63, MaxTOFBins: 8, MaxCells: 63*8 - 1}},
	}
	for _, c := range cases {
		if _, _, err := ReadLimited(bytes.NewReader(encoded), c.lim); err == nil {
			t.Errorf("%s bound not enforced", c.name)
		}
	}
}

func TestReadLimitedRejectsMaliciousGeometry(t *testing.T) {
	// A 17-byte header declaring a 2^30-cell frame must be rejected by
	// tight limits without ever allocating the 8 GiB payload.
	var buf bytes.Buffer
	buf.Write([]byte("HTIMSFR1"))
	buf.Write([]byte{0, 0, 0, 0}) // empty metadata header... almost:
	buf.Bytes()[8] = 1            // header length 1
	buf.WriteByte(0)              // metadata count = 0
	buf.Write([]byte{0, 0, 2, 0}) // drift bins = 1<<17
	buf.Write([]byte{0, 0, 2, 0}) // tof bins = 1<<17  (product 2^34)
	buf.WriteByte(0)              // raw encoding
	lim := Limits{MaxHeaderBytes: 1 << 10, MaxDriftBins: 4096, MaxTOFBins: 4096, MaxCells: 1 << 22}
	if _, _, err := ReadLimited(bytes.NewReader(buf.Bytes()), lim); err == nil {
		t.Fatal("absurd geometry accepted")
	}
	if _, _, err := ReadLimited(bytes.NewReader(buf.Bytes()), DefaultLimits()); err == nil {
		t.Fatal("2^34-cell geometry accepted even by default limits")
	}
}

func TestReadLimitedValidatesLimits(t *testing.T) {
	if _, _, err := ReadLimited(bytes.NewReader(nil), Limits{}); err == nil {
		t.Fatal("zero limits accepted")
	}
}
