// fuzz_test.go: coverage-guided fuzzing of the frame decoder.  The decoder
// is the one place the repository parses attacker-controllable bytes (a
// frameio payload arriving over the acqserver wire), so it must never
// panic, never allocate unboundedly, and must round-trip whatever it
// accepts.  `make fuzz-short` runs a brief pass as part of `make check`.
package frameio

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"
)

// fuzzLimits keeps the fuzz decode cheap: a malicious header may still
// declare up to 64k cells (512 KiB decoded), so iterations stay fast.
var fuzzLimits = Limits{
	MaxHeaderBytes: 4096,
	MaxDriftBins:   1024,
	MaxTOFBins:     1024,
	MaxCells:       1 << 16,
}

// FuzzRead throws arbitrary bytes at ReadLimited.  Inputs it accepts must
// re-encode (Raw) and decode again to bit-identical cells and identical
// metadata — the decoder's round-trip invariant.
func FuzzRead(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for _, seed := range []struct {
		drift, tof int
		meta       Metadata
		enc        Encoding
	}{
		{3, 2, nil, Raw},
		{7, 4, Metadata{"mode": "multiplexed", "order": "3"}, Delta},
		{15, 8, Metadata{"seed": "42"}, Raw},
		{31, 3, nil, Delta},
	} {
		var buf bytes.Buffer
		if err := Write(&buf, countsFrame(rng, seed.drift, seed.tof), seed.meta, seed.enc); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Corrupt variants reach the error paths immediately.
	f.Add([]byte("HTIMSFR1"))
	f.Add([]byte("HTIMSFR1\x00\x00\x00\x00"))
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, meta, err := ReadLimited(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			return
		}
		if frame.DriftBins <= 0 || frame.TOFBins <= 0 ||
			len(frame.Data) != frame.DriftBins*frame.TOFBins {
			t.Fatalf("accepted inconsistent frame %dx%d with %d cells",
				frame.DriftBins, frame.TOFBins, len(frame.Data))
		}
		var buf bytes.Buffer
		if err := Write(&buf, frame, meta, Raw); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		again, meta2, err := ReadLimited(&buf, fuzzLimits)
		if err != nil {
			t.Fatalf("re-decoding re-encoded frame: %v", err)
		}
		if again.DriftBins != frame.DriftBins || again.TOFBins != frame.TOFBins {
			t.Fatalf("round trip changed geometry %dx%d -> %dx%d",
				frame.DriftBins, frame.TOFBins, again.DriftBins, again.TOFBins)
		}
		for i := range frame.Data {
			if math.Float64bits(frame.Data[i]) != math.Float64bits(again.Data[i]) {
				t.Fatalf("round trip changed cell %d: %x -> %x",
					i, math.Float64bits(frame.Data[i]), math.Float64bits(again.Data[i]))
			}
		}
		if len(meta2) != len(meta) {
			t.Fatalf("round trip changed metadata %v -> %v", meta, meta2)
		}
		for k, v := range meta {
			if meta2[k] != v {
				t.Fatalf("round trip changed metadata key %q: %q -> %q", k, v, meta2[k])
			}
		}
	})
}

// TestFuzzSeedsDecode keeps the seed corpus meaningful under plain `go
// test`: the well-formed seeds must decode, streaming from a reader that
// yields one byte at a time (the degenerate net.Conn case).
func TestFuzzSeedsDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := countsFrame(rng, 31, 3)
	var buf bytes.Buffer
	if err := Write(&buf, f, Metadata{"k": "v"}, Delta); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadLimited(&oneByteReader{data: buf.Bytes()}, fuzzLimits)
	if err != nil {
		t.Fatal(err)
	}
	if !framesEqual(got, f) {
		t.Fatal("byte-at-a-time decode corrupted frame")
	}
}

// oneByteReader is a one-byte-per-Read reader over a fixed buffer.
type oneByteReader struct {
	data []byte
	pos  int
}

func (r *oneByteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	if len(p) == 0 {
		return 0, nil
	}
	p[0] = r.data[r.pos]
	r.pos++
	return 1, nil
}
