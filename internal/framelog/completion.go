// completion.go: the sidecar completion log.  The frame log records what
// was *accepted*; the completion log records what was *fully processed* —
// a flat file of little-endian u64 seqs, appended as workers finish.  On
// startup the two are diffed: every seq in the frame log that is past the
// contiguous-completion watermark and absent from the completion set is
// re-enqueued.  Marks are buffered and flushed in small batches, so a
// crash can lose the most recent few — that only widens the replay set
// (at-least-once), never narrows it.  A torn 8-byte tail from a crash
// mid-write is ignored on load.  The file is compacted on open: seqs at
// or below the new watermark are dropped and the remainder rewritten via
// tmp+rename.
package framelog

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sort"
)

// completionFileName is the sidecar completion log inside the log dir.
const completionFileName = "completed.u64"

// completionFlushEvery bounds how many buffered marks accumulate before
// the completion writer flushes to the OS.
const completionFlushEvery = 128

// watermarkFileName persists the contiguous-completion watermark across
// completion-file compactions: seqs at or below it were completed even
// though their marks were dropped from the compacted file.
const watermarkFileName = "watermark.u64"

// loadWatermark reads the persisted watermark (0 when absent or torn).
func loadWatermark(dir string) (uint64, error) {
	b, err := os.ReadFile(filepath.Join(dir, watermarkFileName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	if len(b) < 8 {
		return 0, nil
	}
	return binary.LittleEndian.Uint64(b), nil
}

// saveWatermark atomically persists the watermark via tmp+rename.
func saveWatermark(dir string, w uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], w)
	path := filepath.Join(dir, watermarkFileName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b[:], 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// completionLog is the open, append-mode completion sidecar.
type completionLog struct {
	f   *os.File
	buf []byte // pending encoded marks, flushed in batches
}

// loadCompletionSet reads the completion file (if any) into a set,
// tolerating a torn trailing write.
func loadCompletionSet(dir string) (map[uint64]struct{}, error) {
	set := make(map[uint64]struct{})
	b, err := os.ReadFile(filepath.Join(dir, completionFileName))
	if err != nil {
		if os.IsNotExist(err) {
			return set, nil
		}
		return nil, err
	}
	for len(b) >= 8 {
		set[binary.LittleEndian.Uint64(b)] = struct{}{}
		b = b[8:]
	}
	return set, nil
}

// compactCompletionSet rewrites the completion file keeping only seqs
// above the watermark, then reopens it for appending.  The set itself is
// left untouched (recovery still consults all of it).
func compactCompletionSet(dir string, set map[uint64]struct{}, watermark uint64) (*completionLog, error) {
	keep := make([]uint64, 0, len(set))
	for seq := range set {
		if seq > watermark {
			keep = append(keep, seq)
		}
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	buf := make([]byte, 0, 8*len(keep))
	for _, seq := range keep {
		buf = binary.LittleEndian.AppendUint64(buf, seq)
	}
	path := filepath.Join(dir, completionFileName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &completionLog{f: f, buf: make([]byte, 0, 8*completionFlushEvery)}, nil
}

// mark buffers one completed seq, flushing when the batch fills.
func (c *completionLog) mark(seq uint64) error {
	c.buf = binary.LittleEndian.AppendUint64(c.buf, seq)
	if len(c.buf) >= 8*completionFlushEvery {
		return c.flush()
	}
	return nil
}

// flush writes any buffered marks through to the OS.
func (c *completionLog) flush() error {
	if len(c.buf) == 0 {
		return nil
	}
	_, err := c.f.Write(c.buf)
	c.buf = c.buf[:0]
	return err
}

// close flushes and closes the sidecar file.
func (c *completionLog) close() error {
	ferr := c.flush()
	cerr := c.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// completionWatermark computes the largest seq W such that every seq in
// (base, W] is present in set, starting from base (the seq just before
// the log's first record).
func completionWatermark(set map[uint64]struct{}, base uint64) uint64 {
	w := base
	for {
		if _, ok := set[w+1]; !ok {
			return w
		}
		w++
	}
}
