// Package framelog is a segmented, append-only, CRC-verified write-ahead
// log of accepted frames — Kafka-shaped but stdlib-only.  The acquisition
// daemon appends every accepted FRAME payload before enqueueing it for
// processing, so a crash loses no accepted work: on restart, recovery
// scans the newest segment, truncates at the first torn or corrupt
// record, resumes the sequence counter, and re-enqueues every record past
// the last-completed watermark (tracked in a sidecar completion log).
// Captured logs double as reproducible benchmark inputs: `imsload
// -replay` streams them back through IMSP at recorded or multiplied rate.
//
// All writes funnel through a single appender goroutine with group
// commit: concurrent Append calls batch into one buffered write and (per
// policy) one fsync, and the submission path is zero-allocation (pooled
// requests, reusable ack channels) so the serving hot path stays
// allocation-free.  Readers are independent cursors that tail the log at
// their own pace; retention keeps the last K segments and a janitor
// deletes the rest.  See docs/DURABILITY.md for the full format and the
// trade-offs between the fsync policies.
package framelog

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// FsyncPolicy selects when the appender syncs written records to stable
// storage, trading durability against append latency.
type FsyncPolicy int

const (
	// FsyncInterval (the default) syncs on a timer: appends are
	// acknowledged after the OS write but before the sync, so a host crash
	// can lose up to one interval of acknowledged records (a process crash
	// loses nothing).  Acknowledgements carry the not-durable flag.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs every batch before acknowledging it: an
	// acknowledged append survives even a host power loss.  Group commit
	// amortizes the sync across concurrent appenders.
	FsyncAlways
	// FsyncNone never syncs outside segment seals; durability is whatever
	// the OS page cache provides.  For benchmarks and tests.
	FsyncNone
)

// String renders the policy the way the -framelog-fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy parses a -framelog-fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("framelog: unknown fsync policy %q (want always, interval, or none)", s)
}

// ErrClosed is returned by Append once Close has begun.
var ErrClosed = errors.New("framelog: log closed")

// ErrRecordTooLarge is returned by Append when the payload exceeds
// Config.MaxRecordBytes.
var ErrRecordTooLarge = errors.New("framelog: record exceeds MaxRecordBytes")

// defaultIndexEvery is the sparse-index stride when Config.IndexEvery is
// unset, and the stride standalone scans rebuild with.
const defaultIndexEvery = 64

// Config parameterizes a Log.  The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Dir is the log directory (created if absent).
	Dir string
	// SegmentBytes rotates the active segment when it would exceed this
	// size.  Default 64 MiB.
	SegmentBytes int64
	// SegmentMaxAge additionally rotates a non-empty active segment older
	// than this.  0 disables age rotation.
	SegmentMaxAge time.Duration
	// Fsync is the durability policy (see FsyncPolicy).
	Fsync FsyncPolicy
	// FsyncInterval is the sync period under FsyncInterval.  Default 50ms.
	FsyncInterval time.Duration
	// IndexEvery is the sparse-index stride: one index point per N
	// records.  Default 64.
	IndexEvery int
	// RetainSegments keeps the newest K sealed segments and lets the
	// janitor delete older ones.  0 retains everything.
	RetainSegments int
	// JanitorInterval is the retention/completion-flush tick.  Default 10s.
	JanitorInterval time.Duration
	// QueueDepth bounds appends in flight to the appender goroutine.
	// Default 256.
	QueueDepth int
	// MaxRecordBytes bounds a single record payload.  Default 64 MiB.
	MaxRecordBytes uint32
	// Metrics receives the framelog_* families (nil = no metrics).
	Metrics *telemetry.Registry
	// Trace emits framelog_fsync spans (nil = no tracing).
	Trace *trace.Tracer
	// Logger receives recovery and janitor logs (nil = slog default).
	Logger *slog.Logger
}

// DefaultConfig returns the production defaults for a log rooted at dir.
func DefaultConfig(dir string) Config {
	return Config{
		Dir:             dir,
		SegmentBytes:    64 << 20,
		Fsync:           FsyncInterval,
		FsyncInterval:   50 * time.Millisecond,
		IndexEvery:      defaultIndexEvery,
		JanitorInterval: 10 * time.Second,
		QueueDepth:      256,
		MaxRecordBytes:  64 << 20,
	}
}

// validate fills defaults and rejects nonsense.
func (c *Config) validate() error {
	if c.Dir == "" {
		return errors.New("framelog: Config.Dir is required")
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.SegmentBytes < segHeaderSize+recordHeaderSize {
		return fmt.Errorf("framelog: SegmentBytes %d cannot hold a record", c.SegmentBytes)
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 50 * time.Millisecond
	}
	if c.IndexEvery <= 0 {
		c.IndexEvery = defaultIndexEvery
	}
	if c.JanitorInterval <= 0 {
		c.JanitorInterval = 10 * time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxRecordBytes == 0 {
		c.MaxRecordBytes = 64 << 20
	}
	if c.RetainSegments < 0 {
		return fmt.Errorf("framelog: RetainSegments %d is negative", c.RetainSegments)
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return nil
}

// Recovery summarizes what Open found on disk.
type Recovery struct {
	// FirstSeq and LastSeq bound the records present after truncation
	// (0/0 when the log is empty).
	FirstSeq, LastSeq uint64
	// Records is the total verified record count across segments.
	Records uint64
	// Watermark is the highest seq W such that every record at or below W
	// is known completed; replay starts after it.
	Watermark uint64
	// Pending counts records past the watermark with no completion mark —
	// the re-enqueue set.
	Pending int
	// TruncatedBytes is how much torn/corrupt tail data recovery cut off.
	TruncatedBytes int64
	// Segments is the on-disk segment count.
	Segments int
}

// appendReq is one in-flight append, pooled so the submission path does
// not allocate.
type appendReq struct {
	sid     uint64
	payload []byte
	seq     uint64
	err     error
	done    chan struct{} // buffered(1), reused across the pool
}

// logMetrics holds the resolved framelog_* handles (no-ops when the
// registry is nil).
type logMetrics struct {
	appendRecords  *telemetry.Counter
	appendBytes    *telemetry.Counter
	appendErrors   *telemetry.Counter
	appendNs       *telemetry.Histogram
	fsyncNs        *telemetry.Histogram
	fsyncTotal     *telemetry.Counter
	batchRecords   *telemetry.Histogram
	segments       *telemetry.Gauge
	rotations      *telemetry.Counter
	retentionDel   *telemetry.Counter
	completions    *telemetry.Counter
	recovRecords   *telemetry.Gauge
	recovPending   *telemetry.Gauge
	recovTruncated *telemetry.Gauge
}

func newLogMetrics(r *telemetry.Registry) *logMetrics {
	return &logMetrics{
		appendRecords:  r.Counter("framelog_append_records_total", "Records appended to the frame log."),
		appendBytes:    r.Counter("framelog_append_bytes_total", "Bytes appended to the frame log (headers + payloads)."),
		appendErrors:   r.Counter("framelog_append_errors_total", "Appends failed by I/O errors."),
		appendNs:       r.Histogram("framelog_append_ns", "Append call latency (submit to acknowledged), nanoseconds."),
		fsyncNs:        r.Histogram("framelog_fsync_ns", "fsync latency, nanoseconds."),
		fsyncTotal:     r.Counter("framelog_fsync_total", "fsync calls issued by the appender."),
		batchRecords:   r.Histogram("framelog_batch_records", "Records committed per group-commit batch."),
		segments:       r.Gauge("framelog_segments", "Segment files currently on disk."),
		rotations:      r.Counter("framelog_rotations_total", "Segment rotations (seals)."),
		retentionDel:   r.Counter("framelog_retention_deleted_total", "Segments deleted by retention."),
		completions:    r.Counter("framelog_completions_total", "Completion marks recorded."),
		recovRecords:   r.Gauge("framelog_recovery_records", "Records found on disk at the last open."),
		recovPending:   r.Gauge("framelog_recovery_pending", "Uncompleted records pending replay at the last open."),
		recovTruncated: r.Gauge("framelog_recovery_truncated_bytes", "Torn-tail bytes truncated at the last open."),
	}
}

// Log is an open frame log.  Append is safe for concurrent use; readers
// are created with NewReader and advance independently.
type Log struct {
	cfg     Config
	metrics *logMetrics

	// Submission plumbing.  submitMu (reader side) brackets the send into
	// reqc so Close can fence out in-flight submitters with one write
	// lock; closed short-circuits later Appends.
	reqc     chan *appendReq
	stopc    chan struct{}
	donec    chan struct{}
	submitMu sync.RWMutex
	closed   atomic.Bool
	closeErr error
	reqPool  sync.Pool

	// Reader-visible commit state: the active segment and how far into it
	// flushed (whole-record) bytes extend.
	stateMu     sync.Mutex
	activeFirst uint64
	activeEnd   int64
	lastSeqA    atomic.Uint64

	// Completion sidecar.  completed and watermark are frozen at Open;
	// comp accumulates marks made during this run.
	compMu    sync.Mutex
	comp      *completionLog
	completed map[uint64]struct{}
	watermark uint64

	recovery Recovery

	// Appender-goroutine-owned state.
	nextSeq    uint64
	ioErr      error
	f          *os.File
	bufw       *bufio.Writer
	hdr        [recordHeaderSize]byte
	segFirst   uint64
	segLastSeq uint64
	segRecords uint64
	segOffset  int64
	segFirstTs int64
	segLastTs  int64
	segCreated time.Time
	entries    []idxEntry
	ftBuf      []byte
	dirty      bool
	batch      []*appendReq
}

// Open opens (or creates) the log in cfg.Dir, runs crash recovery, and
// starts the appender and janitor.  Inspect RecoveryInfo for what was
// found; Close releases everything.
func Open(cfg Config) (*Log, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		cfg:     cfg,
		metrics: newLogMetrics(cfg.Metrics),
		reqc:    make(chan *appendReq, cfg.QueueDepth),
		stopc:   make(chan struct{}),
		donec:   make(chan struct{}),
		bufw:    bufio.NewWriterSize(nil, 256<<10),
		nextSeq: 1,
		entries: make([]idxEntry, 0, 1024),
		batch:   make([]*appendReq, 0, 128),
	}
	l.reqPool.New = func() any { return &appendReq{done: make(chan struct{}, 1)} }
	if err := l.recover(); err != nil {
		return nil, err
	}
	if err := l.loadCompletions(); err != nil {
		if l.f != nil {
			l.f.Close()
		}
		return nil, err
	}
	l.metrics.recovRecords.Set(float64(l.recovery.Records))
	l.metrics.recovPending.Set(float64(l.recovery.Pending))
	l.metrics.recovTruncated.Set(float64(l.recovery.TruncatedBytes))
	l.lastSeqA.Store(l.nextSeq - 1)
	go l.runAppender()
	return l, nil
}

// recover lists, verifies, heals, and truncates segments, leaving the
// appender positioned after the last durable record.
func (l *Log) recover() error {
	names, err := listSegmentFiles(l.cfg.Dir)
	if err != nil {
		return err
	}
	l.metrics.segments.Set(float64(len(names)))
	for i, name := range names {
		newest := i == len(names)-1
		if err := l.recoverSegment(filepath.Join(l.cfg.Dir, name), newest); err != nil {
			return err
		}
	}
	l.recovery.Segments = len(names)
	return nil
}

// recoverSegment verifies one segment.  Sealed segments are trusted via
// their footer; unsealed ones are scanned, their torn tail truncated, and
// — unless newest — healed with a fresh footer.  The newest unsealed
// segment is kept open so appends resume into it.
func (l *Log) recoverSegment(path string, newest bool) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	size := st.Size()
	var magic [segHeaderSize]byte
	if n, _ := f.ReadAt(magic[:], 0); n == segHeaderSize && magic == segMagic {
		if ft, err := probeFooter(f, size); err != nil {
			f.Close()
			return err
		} else if ft != nil {
			// Sealed and intact: trust the footer.
			l.noteSegment(ft.firstSeq, ft.lastSeq, ft.firstTs, ft.records)
			return f.Close()
		}
	} else if size >= segHeaderSize {
		f.Close()
		return fmt.Errorf("framelog: %s has a corrupt segment header", path)
	}
	// Unsealed (or empty-preamble) segment: scan and truncate the torn
	// tail.  The scan also rebuilds the sparse index in case we keep the
	// segment active.
	if _, err := f.Seek(segHeaderSize, 0); err != nil {
		f.Close()
		return err
	}
	res, err := scanRecords(bufio.NewReaderSize(f, 256<<10), -1, l.cfg.MaxRecordBytes, l.cfg.IndexEvery, nil)
	if err != nil {
		f.Close()
		return err
	}
	goodEnd := segHeaderSize + res.validBytes
	if size < segHeaderSize {
		goodEnd = segHeaderSize // rewrite a truncated preamble below
	}
	if torn := size - goodEnd; torn > 0 {
		l.recovery.TruncatedBytes += torn
		l.cfg.Logger.Warn("framelog: truncating torn segment tail",
			"segment", filepath.Base(path), "torn_bytes", torn, "kept_records", res.records)
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return err
		}
	}
	if size < segHeaderSize {
		if _, err := f.WriteAt(segMagic[:], 0); err != nil {
			f.Close()
			return err
		}
	}
	nameSeq, _ := parseSegmentName(filepath.Base(path))
	firstSeq, lastSeq := res.firstSeq, res.lastSeq
	if res.records == 0 {
		firstSeq, lastSeq = nameSeq, nameSeq-1
	}
	l.noteSegment(firstSeq, lastSeq, res.firstTs, res.records)
	if !newest {
		// Heal: reseal so readers and later recoveries can trust the
		// footer instead of rescanning.
		l.ftBuf = encodeFooter(l.ftBuf[:0], firstSeq, lastSeq, res.firstTs, res.lastTs, res.records, res.entries)
		if _, err := f.WriteAt(l.ftBuf, goodEnd); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	// Keep the newest segment active for appends.
	if _, err := f.Seek(goodEnd, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.bufw.Reset(f)
	l.segFirst = firstSeq
	l.segLastSeq = lastSeq
	l.segRecords = res.records
	l.segOffset = goodEnd
	l.segFirstTs = res.firstTs
	l.segLastTs = res.lastTs
	l.segCreated = time.Now()
	l.entries = append(l.entries[:0], res.entries...)
	l.activeFirst = firstSeq
	l.activeEnd = goodEnd
	return nil
}

// noteSegment folds one verified segment into the recovery summary and
// the resumed sequence counter.
func (l *Log) noteSegment(firstSeq, lastSeq uint64, firstTs int64, records uint64) {
	if records > 0 {
		if l.recovery.Records == 0 {
			l.recovery.FirstSeq = firstSeq
			_ = firstTs
		}
		l.recovery.LastSeq = lastSeq
		l.recovery.Records += records
	}
	if lastSeq+1 > l.nextSeq {
		l.nextSeq = lastSeq + 1
	}
	if records == 0 && firstSeq >= l.nextSeq {
		l.nextSeq = firstSeq
	}
}

// loadCompletions loads the sidecar completion log, computes the
// watermark, compacts the file, and counts the pending replay set.
func (l *Log) loadCompletions() error {
	set, err := loadCompletionSet(l.cfg.Dir)
	if err != nil {
		return err
	}
	base, err := loadWatermark(l.cfg.Dir)
	if err != nil {
		return err
	}
	if l.recovery.Records > 0 && l.recovery.FirstSeq > 0 && l.recovery.FirstSeq-1 > base {
		// Records below the oldest retained segment can never replay;
		// treat them as done.
		base = l.recovery.FirstSeq - 1
	}
	l.watermark = completionWatermark(set, base)
	if err := saveWatermark(l.cfg.Dir, l.watermark); err != nil {
		return err
	}
	l.comp, err = compactCompletionSet(l.cfg.Dir, set, l.watermark)
	if err != nil {
		return err
	}
	l.completed = set
	l.recovery.Watermark = l.watermark
	for seq := l.watermark + 1; seq <= l.recovery.LastSeq; seq++ {
		if _, ok := set[seq]; !ok {
			l.recovery.Pending++
		}
	}
	return nil
}

// RecoveryInfo reports what Open found on disk.
func (l *Log) RecoveryInfo() Recovery { return l.recovery }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.cfg.Dir }

// Durable reports whether an acknowledged append is guaranteed on stable
// storage (true only under FsyncAlways).
func (l *Log) Durable() bool { return l.cfg.Fsync == FsyncAlways }

// LastSeq returns the highest committed (reader-visible) seq, 0 when the
// log is empty.
func (l *Log) LastSeq() uint64 { return l.lastSeqA.Load() }

// Completed reports whether seq carried a completion mark at open time
// (or sits at/below the watermark).  It consults state frozen at Open and
// is safe for concurrent use; marks made after Open are not reflected.
func (l *Log) Completed(seq uint64) bool {
	if seq <= l.watermark {
		return true
	}
	_, ok := l.completed[seq]
	return ok
}

// MarkCompleted records that the frame at seq finished processing, so a
// later recovery will not replay it.  Marks are buffered; a crash can
// lose the latest few, which only widens the replay set.
func (l *Log) MarkCompleted(seq uint64) {
	if seq == 0 {
		return
	}
	l.compMu.Lock()
	err := l.comp.mark(seq)
	l.compMu.Unlock()
	if err != nil {
		l.cfg.Logger.Warn("framelog: completion mark failed", "seq", seq, "err", err)
		return
	}
	l.metrics.completions.Inc()
}

// Append writes one record carrying payload (and sid, an opaque source
// id) and returns its seq.  It blocks until the record is committed per
// the fsync policy; under FsyncAlways a returned seq is crash-durable.
// The payload is copied before Append returns.  Safe for concurrent use;
// the submission path does not allocate.
func (l *Log) Append(sid uint64, payload []byte) (uint64, error) {
	if uint64(len(payload)) > uint64(l.cfg.MaxRecordBytes) {
		return 0, ErrRecordTooLarge
	}
	t0 := time.Now()
	r := l.reqPool.Get().(*appendReq)
	r.sid, r.payload, r.seq, r.err = sid, payload, 0, nil
	l.submitMu.RLock()
	if l.closed.Load() {
		l.submitMu.RUnlock()
		r.payload = nil
		l.reqPool.Put(r)
		return 0, ErrClosed
	}
	l.reqc <- r
	l.submitMu.RUnlock()
	<-r.done
	seq, err := r.seq, r.err
	r.payload = nil
	l.reqPool.Put(r)
	l.metrics.appendNs.Observe(float64(time.Since(t0).Nanoseconds()))
	return seq, err
}

// Close drains in-flight appends, seals the active segment, flushes the
// completion sidecar, and stops the appender.  Idempotent.
func (l *Log) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		<-l.donec
		return l.closeErr
	}
	// Fence: wait out submitters that saw closed=false, so everything in
	// reqc is everything there will ever be.
	l.submitMu.Lock()
	l.submitMu.Unlock() //nolint:staticcheck // empty critical section is the fence
	close(l.stopc)
	<-l.donec
	l.compMu.Lock()
	cerr := l.comp.close()
	l.compMu.Unlock()
	if l.closeErr == nil {
		l.closeErr = cerr
	}
	return l.closeErr
}

// runAppender is the single writer goroutine: it group-commits batches
// off reqc, handles interval fsyncs and age rotation, and runs the
// retention janitor.
func (l *Log) runAppender() {
	defer close(l.donec)
	hk := time.NewTicker(l.cfg.FsyncInterval)
	jan := time.NewTicker(l.cfg.JanitorInterval)
	defer hk.Stop()
	defer jan.Stop()
	for {
		select {
		case r := <-l.reqc:
			l.collectBatch(r)
			l.runBatch()
		case <-hk.C:
			l.housekeep()
		case <-jan.C:
			l.janitor()
		case <-l.stopc:
			for {
				select {
				case r := <-l.reqc:
					l.collectBatch(r)
					l.runBatch()
					continue
				default:
				}
				break
			}
			l.shutdownAppender()
			return
		}
	}
}

// collectBatch seeds the batch with r and greedily drains whatever else
// is already queued, up to the batch cap.
func (l *Log) collectBatch(r *appendReq) {
	l.batch = append(l.batch[:0], r)
	for len(l.batch) < cap(l.batch) {
		select {
		case r := <-l.reqc:
			l.batch = append(l.batch, r)
		default:
			return
		}
	}
}

// runBatch writes, commits, and (per policy) syncs the collected batch,
// then acknowledges every request.
func (l *Log) runBatch() {
	batchErr := l.ioErr
	var bytes int64
	if batchErr == nil {
		now := time.Now().UnixNano()
		for _, r := range l.batch {
			r.seq = l.nextSeq
			if err := l.writeRecord(r.seq, now, r.sid, r.payload); err != nil {
				batchErr = err
				break
			}
			l.nextSeq++
			bytes += recordHeaderSize + int64(len(r.payload))
		}
		if batchErr == nil {
			batchErr = l.flushCommit()
		}
		if batchErr == nil && l.cfg.Fsync == FsyncAlways {
			batchErr = l.fsync()
		}
	}
	if batchErr != nil {
		if l.ioErr == nil {
			l.ioErr = batchErr
			l.cfg.Logger.Error("framelog: append failed; log is wedged until restart", "err", batchErr)
		}
		for _, r := range l.batch {
			r.err, r.seq = batchErr, 0
		}
		l.metrics.appendErrors.Add(int64(len(l.batch)))
	} else {
		l.metrics.appendRecords.Add(int64(len(l.batch)))
		l.metrics.appendBytes.Add(bytes)
		l.metrics.batchRecords.Observe(float64(len(l.batch)))
	}
	for _, r := range l.batch {
		r.done <- struct{}{}
	}
	l.batch = l.batch[:0]
}

// writeRecord appends one record to the active segment, rotating first if
// size or age demands it and creating the segment lazily.
func (l *Log) writeRecord(seq uint64, ts int64, sid uint64, payload []byte) error {
	need := int64(recordHeaderSize) + int64(len(payload))
	if l.f != nil && l.segRecords > 0 {
		if l.segOffset+need > l.cfg.SegmentBytes ||
			(l.cfg.SegmentMaxAge > 0 && time.Since(l.segCreated) > l.cfg.SegmentMaxAge) {
			if err := l.sealActive(); err != nil {
				return err
			}
		}
	}
	if l.f == nil {
		if err := l.createSegment(seq); err != nil {
			return err
		}
	}
	if l.segRecords%uint64(l.cfg.IndexEvery) == 0 {
		l.entries = append(l.entries, idxEntry{seq: seq, ts: ts, offset: l.segOffset})
	}
	encodeRecordHeader(&l.hdr, seq, ts, sid, payload)
	if _, err := l.bufw.Write(l.hdr[:]); err != nil {
		return err
	}
	if _, err := l.bufw.Write(payload); err != nil {
		return err
	}
	if l.segRecords == 0 {
		l.segFirstTs = ts
	}
	l.segLastTs = ts
	l.segLastSeq = seq
	l.segRecords++
	l.segOffset += need
	return nil
}

// flushCommit pushes buffered writes to the OS and publishes the new
// committed bound (and last seq) to readers.
func (l *Log) flushCommit() error {
	if l.f == nil {
		return nil
	}
	if err := l.bufw.Flush(); err != nil {
		return err
	}
	l.stateMu.Lock()
	l.activeEnd = l.segOffset
	l.stateMu.Unlock()
	l.lastSeqA.Store(l.nextSeq - 1)
	l.dirty = true
	return nil
}

// fsync syncs the active segment, recording latency and a trace span.
func (l *Log) fsync() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	span := l.cfg.Trace.StartTrace("framelog_fsync", 0)
	t0 := time.Now()
	err := l.f.Sync()
	d := time.Since(t0)
	span.SetInt("segment_first_seq", int64(l.segFirst))
	span.End()
	l.metrics.fsyncNs.Observe(float64(d.Nanoseconds()))
	l.metrics.fsyncTotal.Inc()
	if err == nil {
		l.dirty = false
	}
	return err
}

// housekeep runs on the fsync tick: interval-policy syncs and age
// rotation for idle segments.
func (l *Log) housekeep() {
	if l.ioErr != nil {
		return
	}
	if l.cfg.Fsync == FsyncInterval && l.dirty {
		if err := l.fsync(); err != nil {
			l.cfg.Logger.Warn("framelog: interval fsync failed", "err", err)
		}
	}
	if l.cfg.SegmentMaxAge > 0 && l.f != nil && l.segRecords > 0 &&
		time.Since(l.segCreated) > l.cfg.SegmentMaxAge {
		if err := l.sealActive(); err != nil {
			l.ioErr = err
			l.cfg.Logger.Error("framelog: age rotation failed", "err", err)
		}
	}
}

// sealActive flushes the active segment, writes its index footer, syncs,
// and closes it; the next record creates a fresh segment.
func (l *Log) sealActive() error {
	if l.f == nil {
		return nil
	}
	if err := l.bufw.Flush(); err != nil {
		return err
	}
	l.ftBuf = encodeFooter(l.ftBuf[:0], l.segFirst, l.segLastSeq, l.segFirstTs, l.segLastTs, l.segRecords, l.entries)
	if _, err := l.f.Write(l.ftBuf); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	err := l.f.Close()
	l.f = nil
	l.entries = l.entries[:0]
	l.stateMu.Lock()
	l.activeFirst = 0
	l.activeEnd = 0
	l.stateMu.Unlock()
	l.lastSeqA.Store(l.nextSeq - 1)
	l.metrics.rotations.Inc()
	return err
}

// createSegment opens a fresh segment file whose first record will be
// seq, writes the preamble, and syncs the directory entry.
func (l *Log) createSegment(seq uint64) error {
	path := filepath.Join(l.cfg.Dir, segmentFileName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.cfg.Dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.bufw.Reset(f)
	l.segFirst = seq
	l.segLastSeq = seq - 1
	l.segRecords = 0
	l.segOffset = segHeaderSize
	l.segFirstTs = 0
	l.segLastTs = 0
	l.segCreated = time.Now()
	l.entries = l.entries[:0]
	l.stateMu.Lock()
	l.activeFirst = seq
	l.activeEnd = segHeaderSize
	l.stateMu.Unlock()
	l.metrics.segments.Add(1)
	return nil
}

// janitor flushes buffered completion marks and applies segment
// retention.
func (l *Log) janitor() {
	l.compMu.Lock()
	if err := l.comp.flush(); err != nil {
		l.cfg.Logger.Warn("framelog: completion flush failed", "err", err)
	}
	l.compMu.Unlock()
	if l.cfg.RetainSegments <= 0 {
		return
	}
	names, err := listSegmentFiles(l.cfg.Dir)
	if err != nil {
		l.cfg.Logger.Warn("framelog: janitor list failed", "err", err)
		return
	}
	// Never delete the active segment; among sealed ones keep the newest K.
	sealed := names
	if l.f != nil && len(sealed) > 0 {
		sealed = sealed[:len(sealed)-1]
	}
	if len(sealed) <= l.cfg.RetainSegments {
		return
	}
	doomed := sealed[:len(sealed)-l.cfg.RetainSegments]
	for _, name := range doomed {
		if err := os.Remove(filepath.Join(l.cfg.Dir, name)); err != nil {
			l.cfg.Logger.Warn("framelog: retention delete failed", "segment", name, "err", err)
			continue
		}
		l.metrics.retentionDel.Inc()
		l.metrics.segments.Add(-1)
		l.cfg.Logger.Info("framelog: retention deleted segment", "segment", name)
	}
	if err := syncDir(l.cfg.Dir); err != nil {
		l.cfg.Logger.Warn("framelog: dir sync failed", "err", err)
	}
}

// shutdownAppender runs on Close after the queue drains: final flush,
// seal, and a last janitor pass for completions.
func (l *Log) shutdownAppender() {
	if err := l.flushCommit(); err != nil && l.closeErr == nil {
		l.closeErr = err
	}
	if err := l.sealActive(); err != nil && l.closeErr == nil {
		l.closeErr = err
	}
	if l.closeErr == nil && l.ioErr != nil {
		l.closeErr = l.ioErr
	}
}

// committedBound reports, for the segment starting at firstSeq, how far a
// reader may read: its committed end and whether it is the active
// segment.  (0, false) means the segment is not active — consult its
// footer instead.
func (l *Log) committedBound(firstSeq uint64) (int64, bool) {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	if l.activeFirst != firstSeq || l.activeFirst == 0 {
		return 0, false
	}
	return l.activeEnd, true
}

// syncDir fsyncs a directory so renames/creates/unlinks are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}
