// framelog_test.go: the durability contract under test — round trips,
// rotation, torn-write recovery, completion watermarks, retention, cursor
// positioning, fsync policies, concurrent append+tail under -race, the
// zero-allocation submission path, and the metric families.
package framelog

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// testConfig is a small, fast log for tests: no fsync, tiny segments
// optional via overrides.
func testConfig(dir string) Config {
	cfg := DefaultConfig(dir)
	cfg.Fsync = FsyncNone
	cfg.FsyncInterval = 5 * time.Millisecond
	cfg.JanitorInterval = 5 * time.Millisecond
	return cfg
}

// payloadFor derives a record payload from its source id, so readers can
// verify content without sharing state with appenders.
func payloadFor(sid uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(sid>>uint(8*(i%8))) ^ byte(i)
	}
	return b
}

// appendN appends n records with sids base+1..base+n and 48-byte payloads.
func appendN(t *testing.T, l *Log, base uint64, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		sid := base + uint64(i)
		if _, err := l.Append(sid, payloadFor(sid, 48)); err != nil {
			t.Fatalf("append %d: %v", sid, err)
		}
	}
}

// readAll drains a reader until io.EOF, verifying payload contents.
func readAll(t *testing.T, r *Reader) []Record {
	t.Helper()
	var out []Record
	var rec Record
	for {
		err := r.Next(&rec)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("read after %d records: %v", len(out), err)
		}
		if want := payloadFor(rec.SID, len(rec.Payload)); !bytes.Equal(rec.Payload, want) {
			t.Fatalf("seq %d payload mismatch", rec.Seq)
		}
		cp := rec
		cp.Payload = append([]byte(nil), rec.Payload...)
		out = append(out, cp)
	}
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 100, 20)
	if got := l.LastSeq(); got != 20 {
		t.Fatalf("LastSeq = %d, want 20", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	info := l.RecoveryInfo()
	if info.Records != 20 || info.FirstSeq != 1 || info.LastSeq != 20 {
		t.Fatalf("recovery = %+v, want 20 records seq 1..20", info)
	}
	if info.TruncatedBytes != 0 {
		t.Fatalf("clean reopen truncated %d bytes", info.TruncatedBytes)
	}
	r := l.NewReader(Start{From: FromBeginning})
	defer r.Close()
	recs := readAll(t, r)
	if len(recs) != 20 {
		t.Fatalf("read %d records, want 20", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || rec.SID != uint64(101+i) {
			t.Fatalf("record %d = seq %d sid %d", i, rec.Seq, rec.SID)
		}
	}
	// Appends resume the sequence counter.
	seq, err := l.Append(999, payloadFor(999, 48))
	if err != nil || seq != 21 {
		t.Fatalf("resumed append = (%d, %v), want seq 21", seq, err)
	}
}

func TestRotationSealsSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.SegmentBytes = 512 // a handful of 84-byte records per segment
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	infos, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) < 3 {
		t.Fatalf("expected several segments, got %d", len(infos))
	}
	for i, si := range infos[:len(infos)-1] {
		if !si.Sealed {
			t.Fatalf("segment %d not sealed", i)
		}
	}
	r := l.NewReader(Start{From: FromBeginning})
	recs := readAll(t, r)
	r.Close()
	if len(recs) != 40 {
		t.Fatalf("read %d records across segments, want 40", len(recs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close seals the active segment too.
	infos, err = ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, si := range infos {
		if !si.Sealed {
			t.Fatalf("segment %d unsealed after Close", i)
		}
	}
}

// newestSegment returns the path of the newest segment and strips its
// footer (as if the process crashed before sealing), returning the
// record-region end offset.
func unsealNewest(t *testing.T, dir string) (string, int64) {
	t.Helper()
	infos, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	si := infos[len(infos)-1]
	if !si.Sealed {
		return si.Path, si.Bytes
	}
	// Records end where the footer begins; recompute from record sizes.
	end := int64(segHeaderSize) + int64(si.Records)*(recordHeaderSize+48)
	if err := os.Truncate(si.Path, end); err != nil {
		t.Fatal(err)
	}
	return si.Path, end
}

func TestRecoveryTruncatesTornRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path, end := unsealNewest(t, dir)
	// Tear the last record in half.
	if err := os.Truncate(path, end-40); err != nil {
		t.Fatal(err)
	}
	l, err = Open(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	info := l.RecoveryInfo()
	if info.Records != 9 || info.LastSeq != 9 {
		t.Fatalf("recovery after torn write = %+v, want 9 records", info)
	}
	if info.TruncatedBytes != recordHeaderSize+48-40 {
		t.Fatalf("TruncatedBytes = %d, want %d", info.TruncatedBytes, recordHeaderSize+48-40)
	}
	// The torn seq is reassigned to the next append.
	seq, err := l.Append(7, payloadFor(7, 48))
	if err != nil || seq != 10 {
		t.Fatalf("append after truncation = (%d, %v), want seq 10", seq, err)
	}
}

func TestRecoveryTruncatesCorruptTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path, end := unsealNewest(t, dir)

	// Flip one payload byte in the last record: its CRC fails, so recovery
	// must drop it (and only it).
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, end-1); err != nil {
		t.Fatal(err)
	}
	// And stack garbage after it, as a torn rewrite would.
	if _, err := f.WriteAt([]byte("garbage-garbage-garbage"), end); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err = Open(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	info := l.RecoveryInfo()
	if info.Records != 9 || info.LastSeq != 9 {
		t.Fatalf("recovery after corruption = %+v, want 9 records", info)
	}
	if info.TruncatedBytes != (recordHeaderSize+48)+23 {
		t.Fatalf("TruncatedBytes = %d, want %d", info.TruncatedBytes, recordHeaderSize+48+23)
	}
	r := l.NewReader(Start{From: FromBeginning})
	defer r.Close()
	if got := len(readAll(t, r)); got != 9 {
		t.Fatalf("read %d records after recovery, want 9", got)
	}
}

func TestCompletionWatermark(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	for _, seq := range []uint64{1, 2, 3, 4, 5, 7} {
		l.MarkCompleted(seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	info := l.RecoveryInfo()
	if info.Watermark != 5 {
		t.Fatalf("watermark = %d, want 5 (contiguous prefix)", info.Watermark)
	}
	if info.Pending != 4 { // 6, 8, 9, 10
		t.Fatalf("pending = %d, want 4", info.Pending)
	}
	if !l.Completed(7) || !l.Completed(3) || l.Completed(6) {
		t.Fatal("Completed() disagrees with the marks")
	}
	for _, seq := range []uint64{6, 8, 9, 10} {
		l.MarkCompleted(seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything marked: the watermark reaches the end and the compacted
	// sidecar carries no stragglers.
	l, err = Open(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	info = l.RecoveryInfo()
	if info.Watermark != 10 || info.Pending != 0 {
		t.Fatalf("after full completion: %+v, want watermark 10, pending 0", info)
	}
	if st, err := os.Stat(filepath.Join(dir, completionFileName)); err != nil || st.Size() != 0 {
		t.Fatalf("completion sidecar not compacted: size %v err %v", st, err)
	}
}

func TestJanitorRetention(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.SegmentBytes = 512
	cfg.RetainSegments = 2
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 60) // ~12 segments
	deadline := time.Now().Add(5 * time.Second)
	for {
		names, err := listSegmentFiles(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) <= 3 { // 2 retained sealed + the active one
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("janitor kept %d segments, want <= 3", len(names))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A fresh cursor starts at the oldest *retained* record, not seq 1.
	r := l.NewReader(Start{From: FromBeginning})
	defer r.Close()
	var rec Record
	if err := r.Next(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seq == 1 {
		t.Fatal("reader delivered a retention-deleted record")
	}
}

func TestReaderFromSeqAndFromEnd(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.IndexEvery = 4 // several sparse points per segment
	cfg.SegmentBytes = 1024
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 50)

	r := l.NewReader(Start{From: FromSeq, Seq: 37})
	recs := readAll(t, r)
	r.Close()
	if len(recs) != 14 || recs[0].Seq != 37 {
		t.Fatalf("FromSeq 37: %d records starting at %d, want 14 from 37", len(recs), recs[0].Seq)
	}

	tail := l.NewReader(Start{From: FromEnd})
	var rec Record
	if err := tail.Next(&rec); err != io.EOF {
		t.Fatalf("FromEnd first Next = %v, want io.EOF", err)
	}
	appendN(t, l, 1000, 3)
	recs = readAll(t, tail)
	tail.Close()
	if len(recs) != 3 || recs[0].Seq != 51 {
		t.Fatalf("FromEnd after appends: %d records from %d, want 3 from 51", len(recs), recs[0].Seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderFromTime(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 10)
	time.Sleep(2 * time.Millisecond)
	cut := time.Now().UnixNano()
	time.Sleep(2 * time.Millisecond)
	appendN(t, l, 50, 5)

	r := l.NewReader(Start{From: FromTime, Time: cut})
	defer r.Close()
	recs := readAll(t, r)
	if len(recs) != 5 || recs[0].Seq != 11 {
		t.Fatalf("FromTime: %d records from seq %d, want 5 from 11", len(recs), recs[0].Seq)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncNone, FsyncInterval, FsyncAlways} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			reg := telemetry.NewRegistry()
			cfg := testConfig(dir)
			cfg.Fsync = policy
			cfg.Metrics = reg
			l, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 0, 8)
			if got, want := l.Durable(), policy == FsyncAlways; got != want {
				t.Fatalf("Durable() = %v under %v", got, policy)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			if policy == FsyncAlways && !strings.Contains(buf.String(), "framelog_fsync_total 8") {
				t.Fatalf("FsyncAlways: want one fsync per (serial) append batch, got:\n%s",
					grepLines(buf.String(), "framelog_fsync"))
			}
		})
	}
}

// grepLines filters s to lines containing sub, for failure messages.
func grepLines(s, sub string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func TestAppendErrors(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.MaxRecordBytes = 64
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, make([]byte, 65)); err != ErrRecordTooLarge {
		t.Fatalf("oversized append = %v, want ErrRecordTooLarge", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("x")); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

func TestConcurrentAppendAndTail(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.SegmentBytes = 2048 // force rotations mid-traffic
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers  = 4
		perGoro  = 200
		expected = writers * perGoro
	)

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				sid := uint64(g*1000 + i)
				seq, err := l.Append(sid, payloadFor(sid, 48))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				l.MarkCompleted(seq)
			}
		}(g)
	}

	collect := func() (map[uint64]uint64, error) {
		r := l.NewReader(Start{From: FromBeginning})
		defer r.Close()
		got := map[uint64]uint64{}
		var rec Record
		deadline := time.Now().Add(10 * time.Second)
		for len(got) < expected {
			switch err := r.Next(&rec); err {
			case nil:
				if want := payloadFor(rec.SID, len(rec.Payload)); !bytes.Equal(rec.Payload, want) {
					return nil, fmt.Errorf("seq %d payload mismatch", rec.Seq)
				}
				got[rec.Seq] = rec.SID
			case io.EOF:
				if time.Now().After(deadline) {
					return nil, fmt.Errorf("tail stalled at %d/%d records", len(got), expected)
				}
				time.Sleep(time.Millisecond)
			default:
				return nil, err
			}
		}
		return got, nil
	}

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			got, err := collect()
			if err == nil {
				for seq := uint64(1); seq <= expected; seq++ {
					if _, ok := got[seq]; !ok {
						err = fmt.Errorf("seq %d missing", seq)
						break
					}
				}
			}
			results <- err
		}()
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Every record was marked completed; a reopen owes no replay.
	l, err = Open(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	info := l.RecoveryInfo()
	if info.Watermark != expected || info.Pending != 0 {
		t.Fatalf("after marked run: %+v, want watermark %d, pending 0", info, expected)
	}
}

// TestAppendAllocs is the allocgate contract: the submission path of
// Append must not allocate in steady state (pooled requests, reusable
// buffers), so logging a frame never pressures the serving hot path's
// garbage collector.
func TestAppendAllocs(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Fsync = FsyncNone
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := payloadFor(42, 64)
	// One append up front absorbs lazy segment creation.
	if _, err := l.Append(42, payload); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(2000, func() {
		if _, err := l.Append(42, payload); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("Append allocates %g per record in steady state", a)
	}
}

func TestPrometheusExposition(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	cfg := testConfig(dir)
	cfg.Metrics = reg
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	l.MarkCompleted(1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, family := range []string{
		"framelog_append_records_total 5",
		"framelog_append_bytes_total",
		"framelog_segments 1",
		"framelog_rotations_total 1",
		"framelog_completions_total 1",
		"framelog_recovery_records 0",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("exposition missing %q", family)
		}
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"always", FsyncAlways}, {"interval", FsyncInterval}, {"none", FsyncNone}} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = (%v, %v)", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("String() round trip: %q -> %q", tc.in, got.String())
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted nonsense")
	}
}
