// fuzz_test.go: FuzzSegmentRead throws arbitrary bytes at the segment
// scanner — the same code path crash recovery and framedump -log trust —
// and demands it never panics, never over-reports, and keeps its
// invariants (seq ordering, byte accounting) on whatever survives the CRC
// gate.  The corpus is seeded with real captured segments, plus torn and
// bit-flipped variants of them, so coverage starts from the formats
// recovery actually sees.
package framelog

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// captureSegment builds a small real segment (several records, sealed or
// torn) and returns its bytes for the seed corpus.
func captureSegment(f *testing.F, records int, seal bool) []byte {
	f.Helper()
	dir := f.TempDir()
	cfg := DefaultConfig(dir)
	cfg.Fsync = FsyncNone
	cfg.FsyncInterval = time.Hour
	cfg.JanitorInterval = time.Hour
	l, err := Open(cfg)
	if err != nil {
		f.Fatal(err)
	}
	for i := 1; i <= records; i++ {
		if _, err := l.Append(uint64(i), payloadFor(uint64(i), 32)); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil { // Close seals
		f.Fatal(err)
	}
	names, err := listSegmentFiles(dir)
	if err != nil || len(names) != 1 {
		f.Fatalf("want one segment, got %d (%v)", len(names), err)
	}
	b, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		f.Fatal(err)
	}
	if !seal {
		// Strip the footer trailer so the segment reads as unsealed.
		b = b[:len(b)-footerTrailerSize]
	}
	return b
}

func FuzzSegmentRead(f *testing.F) {
	sealed := captureSegment(f, 5, true)
	torn := captureSegment(f, 3, false)
	f.Add(sealed)
	f.Add(torn)
	f.Add(sealed[:len(sealed)/2]) // torn mid-file
	flipped := append([]byte(nil), sealed...)
	flipped[len(flipped)/2] ^= 0x40 // corrupt a record body
	f.Add(flipped)
	f.Add(append([]byte(nil), segMagic[:]...)) // empty segment
	f.Add([]byte("not a segment at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), segmentFileName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var count uint64
		var lastSeq uint64
		var bytes int64
		info, err := ScanSegment(path, func(rec Record) error {
			if count > 0 && rec.Seq <= lastSeq {
				t.Fatalf("scan delivered non-increasing seq %d after %d", rec.Seq, lastSeq)
			}
			lastSeq = rec.Seq
			count++
			bytes += recordHeaderSize + int64(len(rec.Payload))
			return nil
		})
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		if info.Records != count {
			t.Fatalf("info.Records = %d but callback saw %d", info.Records, count)
		}
		if count > 0 {
			if info.FirstSeq > info.LastSeq || info.LastSeq != lastSeq {
				t.Fatalf("inconsistent seq bounds %d..%d (last delivered %d)", info.FirstSeq, info.LastSeq, lastSeq)
			}
		}
		if !info.Sealed && info.TornBytes > info.Bytes {
			t.Fatalf("torn bytes %d exceed file size %d", info.TornBytes, info.Bytes)
		}
	})
}
