// reader.go: independent tailing cursors over an open Log.  A Reader
// owns its file descriptors and position, so any number of consumers can
// walk the same log at their own pace.  Within the active segment a
// cursor only sees bytes the appender has committed (whole-record flush
// boundaries published under Log.stateMu), so a reader never observes a
// partial record; sealed segments are read through their footer.  Next
// returns io.EOF at the tail without losing position — call it again
// after more appends land.
package framelog

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// StartPos names where a new Reader begins.
type StartPos int

const (
	// FromBeginning starts at the oldest retained record.
	FromBeginning StartPos = iota
	// FromEnd starts after the newest committed record (tail only).
	FromEnd
	// FromSeq starts at the record with Start.Seq (or the first after it
	// if that record was retention-deleted).
	FromSeq
	// FromTime starts at the first record whose timestamp is at or after
	// Start.Time (unix nanoseconds).
	FromTime
)

// Start describes a Reader's initial position.
type Start struct {
	// From selects the positioning mode.
	From StartPos
	// Seq is the target sequence number for FromSeq.
	Seq uint64
	// Time is the target unix-nanosecond timestamp for FromTime.
	Time int64
}

// Reader is one independent cursor over the log.  Not safe for
// concurrent use by multiple goroutines (create one Reader each).
type Reader struct {
	l *Log
	// target is the next seq to deliver; records below it are skipped.
	target uint64
	// minTime, when nonzero, additionally skips records older than it
	// (pending FromTime resolution).
	minTime int64
	// exhausted is the first-seq of a sealed segment fully consumed, so
	// advancing never reopens it.
	exhausted uint64

	f        *os.File
	segFirst uint64
	sealed   bool
	// limit is the exclusive end of readable bytes in the open segment:
	// the footer start when sealed, else refreshed from the Log's
	// committed bound each Next.
	limit  int64
	offset int64

	hdr [recordHeaderSize]byte
	buf []byte
}

// NewReader creates a cursor positioned per start.  Readers remain valid
// across rotations and retention (deleted segments are skipped); they may
// also be used after Close, draining whatever is on disk.
func (l *Log) NewReader(start Start) *Reader {
	r := &Reader{l: l, target: 1}
	switch start.From {
	case FromSeq:
		r.target = start.Seq
		if r.target == 0 {
			r.target = 1
		}
	case FromEnd:
		r.target = l.LastSeq() + 1
	case FromTime:
		r.minTime = start.Time
		if r.minTime == 0 {
			r.minTime = -1 // 0 means "any", but keep skip logic uniform
		}
	}
	return r
}

// Close releases the cursor's file descriptor.  The Reader may not be
// used afterwards.
func (r *Reader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// Next advances the cursor and fills rec with the next record.  At the
// tail it returns io.EOF without losing position — call again after more
// appends.  rec.Payload aliases the Reader's internal buffer and is valid
// only until the following Next.
func (r *Reader) Next(rec *Record) error {
	for {
		if r.f == nil {
			if err := r.openNext(); err != nil {
				return err
			}
		}
		bound := r.limit
		if !r.sealed {
			if end, active := r.l.committedBound(r.segFirst); active {
				bound = end
			} else {
				// The segment stopped being active since we opened it:
				// it must have a footer by now.
				ft, err := probeFooter(r.f, fileSize(r.f))
				if err != nil {
					return err
				}
				if ft != nil {
					r.sealed = true
					r.limit = ft.start
					bound = ft.start
				} else {
					// Mid-rotation or healing race; try again later.
					return io.EOF
				}
			}
		}
		if r.offset+recordHeaderSize > bound {
			if !r.sealed {
				return io.EOF
			}
			// Sealed segment fully consumed: advance.
			r.exhausted = r.segFirst
			r.Close()
			continue
		}
		if _, err := r.f.ReadAt(r.hdr[:], r.offset); err != nil {
			return err
		}
		h, err := parseRecordHeader(r.hdr[:], maxScanPayload)
		if err != nil {
			return err
		}
		if r.offset+recordHeaderSize+int64(h.payloadLen) > bound {
			if !r.sealed {
				return io.EOF // racing the appender's flush; retry later
			}
			return errors.New("framelog: record crosses sealed segment bound")
		}
		if cap(r.buf) < int(h.payloadLen) {
			r.buf = make([]byte, h.payloadLen)
		}
		r.buf = r.buf[:h.payloadLen]
		if _, err := io.ReadFull(io.NewSectionReader(r.f, r.offset+recordHeaderSize, int64(h.payloadLen)), r.buf); err != nil {
			return err
		}
		if err := verifyRecord(r.hdr[:], h, r.buf); err != nil {
			return err
		}
		r.offset += recordHeaderSize + int64(h.payloadLen)
		if h.seq < r.target || (r.minTime > 0 && h.ts < r.minTime) {
			continue // still seeking
		}
		r.minTime = 0
		r.target = h.seq + 1
		rec.Seq, rec.Time, rec.SID, rec.Payload = h.seq, h.ts, h.sid, r.buf
		return nil
	}
}

// openNext locates and opens the segment that should contain the
// cursor's next record, positioning via the footer's sparse index when
// available.  io.EOF means nothing to read yet.
func (r *Reader) openNext() error {
	names, err := listSegmentFiles(r.l.cfg.Dir)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return io.EOF
	}
	idx := r.pickSegment(names)
	if idx < 0 {
		return io.EOF
	}
	name := names[idx]
	first, _ := parseSegmentName(name)
	f, err := os.Open(filepath.Join(r.l.cfg.Dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return io.EOF // retention race; retry later
		}
		return err
	}
	size := fileSize(f)
	ft, err := probeFooter(f, size)
	if err != nil {
		f.Close()
		return err
	}
	r.f = f
	r.segFirst = first
	r.offset = segHeaderSize
	if ft != nil {
		r.sealed = true
		r.limit = ft.start
		r.seekSparse(ft.entries)
	} else {
		r.sealed = false
		r.limit = 0
	}
	return nil
}

// pickSegment chooses which of names the cursor should open next, or -1
// when the position is past every segment on disk.
func (r *Reader) pickSegment(names []string) int {
	if r.minTime > 0 {
		// FromTime: segment choice is resolved by scanning from the first
		// candidate; sparse seek within it happens via timestamps.
		for i, name := range names {
			first, _ := parseSegmentName(name)
			if r.exhausted == 0 || first > r.exhausted {
				return i
			}
		}
		return -1
	}
	// Last segment whose first seq <= target; if the target's segment was
	// deleted by retention, fall forward to the oldest remaining.
	choice := 0
	for i, name := range names {
		first, _ := parseSegmentName(name)
		if first <= r.target {
			choice = i
		}
	}
	first, _ := parseSegmentName(names[choice])
	if r.exhausted != 0 && first <= r.exhausted {
		// We already drained that sealed segment; only something strictly
		// newer counts.
		for i := choice; i < len(names); i++ {
			f, _ := parseSegmentName(names[i])
			if f > r.exhausted {
				return i
			}
		}
		return -1
	}
	return choice
}

// seekSparse jumps the cursor to the closest preceding sparse-index
// point for its target (by seq, or by time during FromTime resolution).
func (r *Reader) seekSparse(entries []idxEntry) {
	if len(entries) == 0 {
		return
	}
	var i int
	if r.minTime > 0 {
		i = sort.Search(len(entries), func(j int) bool { return entries[j].ts >= r.minTime })
	} else {
		i = sort.Search(len(entries), func(j int) bool { return entries[j].seq > r.target })
	}
	// entries[i] is the first past the target; start from the one before.
	if i > 0 {
		i--
	}
	if entries[i].offset > r.offset {
		r.offset = entries[i].offset
	}
}

// fileSize returns f's current size (0 on error — callers treat that as
// an empty segment).
func fileSize(f *os.File) int64 {
	st, err := f.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}
