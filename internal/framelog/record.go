// record.go: the on-disk record format of the frame log.  Every appended
// entry is a fixed 36-byte little-endian header followed by the payload:
//
//	magic "FLR1" u32 | seq u64 | unix-nanos i64 | source id u64 |
//	payload len u32 | CRC32C u32
//
// The CRC (Castagnoli polynomial, the same one Kafka and ext4 use) covers
// the first 32 header bytes plus the payload, so a torn write — a partial
// header, a partial payload, or a header whose payload never made it to
// disk — fails verification and recovery truncates the log there.  Seqs
// are assigned contiguously by the appender starting at 1 and never reused,
// which is what lets recovery reason about completeness with nothing but a
// range and a set of completed seqs.
package framelog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// recordMagic opens every record header ("FLR1" little-endian).
const recordMagic = 0x31524C46

// recordHeaderSize is the fixed encoded header length in bytes.
const recordHeaderSize = 36

// castagnoli is the CRC32C table shared by records and segment footers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded log entry.  Payload aliases an internal buffer
// owned by the reader that produced it and is only valid until the next
// read; copy it to retain it.
type Record struct {
	// Seq is the record's log-wide sequence number (contiguous, from 1).
	Seq uint64
	// Time is the append wall-clock time, unix nanoseconds.
	Time int64
	// SID is the source identity the appender attached — the acquisition
	// daemon stores the frame's trace id (or 0 when untraced).
	SID uint64
	// Payload is the opaque record body.  The acquisition daemon stores
	// the verbatim IMSP FRAME payload (options prefix + frameio frame), so
	// a replayed record is bit-identical to what the client sent.
	Payload []byte
}

// encodeRecordHeader fills hdr with the header for (seq, ts, sid, payload),
// including the CRC over header-sans-CRC plus payload.
func encodeRecordHeader(hdr *[recordHeaderSize]byte, seq uint64, ts int64, sid uint64, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], recordMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], seq)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(ts))
	binary.LittleEndian.PutUint64(hdr[20:28], sid)
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[0:32])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[32:36], crc)
}

// recordHeader is a parsed header awaiting payload verification.
type recordHeader struct {
	seq        uint64
	ts         int64
	sid        uint64
	payloadLen uint32
	crc        uint32
}

// parseRecordHeader decodes and sanity-checks one header.  maxPayload
// bounds the declared payload length so a corrupt header cannot force a
// huge allocation or a multi-gigabyte read.
func parseRecordHeader(b []byte, maxPayload uint32) (recordHeader, error) {
	if len(b) < recordHeaderSize {
		return recordHeader{}, fmt.Errorf("framelog: truncated record header (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != recordMagic {
		return recordHeader{}, fmt.Errorf("framelog: bad record magic %#x", binary.LittleEndian.Uint32(b[0:4]))
	}
	h := recordHeader{
		seq:        binary.LittleEndian.Uint64(b[4:12]),
		ts:         int64(binary.LittleEndian.Uint64(b[12:20])),
		sid:        binary.LittleEndian.Uint64(b[20:28]),
		payloadLen: binary.LittleEndian.Uint32(b[28:32]),
		crc:        binary.LittleEndian.Uint32(b[32:36]),
	}
	if h.payloadLen > maxPayload {
		return recordHeader{}, fmt.Errorf("framelog: record declares %d-byte payload, bound is %d", h.payloadLen, maxPayload)
	}
	return h, nil
}

// verifyRecord recomputes the CRC of a parsed header and its payload.
func verifyRecord(hdrBytes []byte, h recordHeader, payload []byte) error {
	crc := crc32.Update(0, castagnoli, hdrBytes[:32])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != h.crc {
		return fmt.Errorf("framelog: record seq %d CRC mismatch (want %#x, got %#x)", h.seq, h.crc, crc)
	}
	return nil
}
