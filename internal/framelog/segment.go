// segment.go: segment files and their index footers.  A segment is named
// by the seq of its first record (`flog-%020d.seg`, so lexical order is
// seq order), opens with an 8-byte file magic, and carries back-to-back
// records.  A *sealed* segment — one the appender has rotated away from or
// closed cleanly — ends with an index footer:
//
//	entries: N x (seq u64, unix-nanos i64, file offset u64)   sparse, every
//	                                                          IndexEvery records
//	summary: first/last seq u64, first/last unix-nanos i64, records u64
//	trailer: payload len u32 | CRC32C u32 | magic "FLIX" u32
//
// The trailer sits at the very end of the file, so a reader locates the
// footer with one seek from EOF; the CRC makes a torn footer detectable, in
// which case the segment is treated as unsealed and scanned record by
// record.  The sparse entries let a cursor seeking to a seq or timestamp
// jump to the nearest indexed record instead of scanning from the front.
package framelog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// segMagic opens every segment file.
var segMagic = [8]byte{'F', 'L', 'S', 'G', '0', '0', '0', '1'}

// segHeaderSize is the segment file preamble length.
const segHeaderSize = 8

// footerMagic closes a sealed segment's trailer ("FLIX" little-endian).
const footerMagic = 0x58494C46

// footerTrailerSize is the fixed trailer at the end of a sealed segment:
// payload length u32, CRC32C u32, magic u32.
const footerTrailerSize = 12

// idxEntry is one sparse-index point: the seq and timestamp of a record
// and its byte offset from the start of the segment file.
type idxEntry struct {
	seq    uint64
	ts     int64
	offset int64
}

// footerSummarySize is the fixed summary block of a footer payload.
const footerSummarySize = 8*2 + 8*2 + 8

// segmentFileName renders the canonical file name for a segment whose
// first record is seq.
func segmentFileName(seq uint64) string {
	return fmt.Sprintf("flog-%020d.seg", seq)
}

// parseSegmentName extracts the first seq from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "flog-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "flog-"), ".seg")
	if len(digits) != 20 {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegmentFiles returns the segment file names in dir, seq-ascending.
func listSegmentFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSegmentName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// encodeFooter appends the footer (payload + trailer) for the given
// summary and index entries to dst and returns it.
func encodeFooter(dst []byte, first, last uint64, firstTs, lastTs int64, records uint64, entries []idxEntry) []byte {
	start := len(dst)
	for _, e := range entries {
		dst = binary.LittleEndian.AppendUint64(dst, e.seq)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.ts))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.offset))
	}
	dst = binary.LittleEndian.AppendUint64(dst, first)
	dst = binary.LittleEndian.AppendUint64(dst, last)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(firstTs))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(lastTs))
	dst = binary.LittleEndian.AppendUint64(dst, records)
	payload := dst[start:]
	crc := crc32Checksum(payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	dst = binary.LittleEndian.AppendUint32(dst, footerMagic)
	return dst
}

// crc32Checksum is CRC32C over b.
func crc32Checksum(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

// footer is a parsed segment footer.
type footer struct {
	firstSeq, lastSeq uint64
	firstTs, lastTs   int64
	records           uint64
	entries           []idxEntry
	// start is the file offset where the footer payload begins — i.e. the
	// exclusive end of the record region.
	start int64
}

// probeFooter attempts to parse a sealed segment's footer from the end of
// f (whose total size is given).  It returns (nil, nil) when the file
// simply has no valid footer — an unsealed or torn segment — and an error
// only on I/O failure.
func probeFooter(f io.ReaderAt, size int64) (*footer, error) {
	if size < segHeaderSize+footerSummarySize+footerTrailerSize {
		return nil, nil
	}
	var tr [footerTrailerSize]byte
	if _, err := f.ReadAt(tr[:], size-footerTrailerSize); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(tr[8:12]) != footerMagic {
		return nil, nil
	}
	plen := int64(binary.LittleEndian.Uint32(tr[0:4]))
	crc := binary.LittleEndian.Uint32(tr[4:8])
	if plen < footerSummarySize || (plen-footerSummarySize)%24 != 0 {
		return nil, nil
	}
	start := size - footerTrailerSize - plen
	if start < segHeaderSize {
		return nil, nil
	}
	payload := make([]byte, plen)
	if _, err := f.ReadAt(payload, start); err != nil {
		return nil, err
	}
	if crc32Checksum(payload) != crc {
		return nil, nil
	}
	n := int((plen - footerSummarySize) / 24)
	ft := &footer{start: start, entries: make([]idxEntry, n)}
	pos := 0
	for i := range ft.entries {
		ft.entries[i] = idxEntry{
			seq:    binary.LittleEndian.Uint64(payload[pos:]),
			ts:     int64(binary.LittleEndian.Uint64(payload[pos+8:])),
			offset: int64(binary.LittleEndian.Uint64(payload[pos+16:])),
		}
		pos += 24
	}
	ft.firstSeq = binary.LittleEndian.Uint64(payload[pos:])
	ft.lastSeq = binary.LittleEndian.Uint64(payload[pos+8:])
	ft.firstTs = int64(binary.LittleEndian.Uint64(payload[pos+16:]))
	ft.lastTs = int64(binary.LittleEndian.Uint64(payload[pos+24:]))
	ft.records = binary.LittleEndian.Uint64(payload[pos+32:])
	return ft, nil
}

// scanResult summarizes one pass over a segment's record region.
type scanResult struct {
	records           uint64
	firstSeq, lastSeq uint64
	firstTs, lastTs   int64
	// validBytes is the record-region byte count that parsed and verified;
	// the scan stops at the first torn or corrupt record.
	validBytes int64
	// entries is the sparse index rebuilt during the scan (every
	// indexEvery records).
	entries []idxEntry
}

// errStopScan lets a scan callback end the pass early without error.
var errStopScan = errors.New("framelog: stop scan")

// scanRecords walks records off r (positioned just past the segment
// header), stopping cleanly at the first byte run that is not a valid
// record — trailing garbage after a torn write, or a footer.  limit, when
// >= 0, bounds the record-region bytes to scan (a sealed segment's footer
// start).  fn, when non-nil, receives each verified record and its file
// offset; returning errStopScan ends the pass early, any other error
// propagates.
func scanRecords(r *bufio.Reader, limit int64, maxPayload uint32, indexEvery int, fn func(rec Record, offset int64) error) (scanResult, error) {
	var res scanResult
	var hdr [recordHeaderSize]byte
	var payload []byte
	offset := int64(segHeaderSize)
	for {
		if limit >= 0 && offset+recordHeaderSize > segHeaderSize+limit {
			return res, nil
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return res, nil // clean EOF or torn header: stop here
		}
		h, err := parseRecordHeader(hdr[:], maxPayload)
		if err != nil {
			return res, nil // bad magic or absurd length: garbage/footer
		}
		if limit >= 0 && offset+recordHeaderSize+int64(h.payloadLen) > segHeaderSize+limit {
			return res, nil
		}
		if cap(payload) < int(h.payloadLen) {
			payload = make([]byte, h.payloadLen)
		}
		payload = payload[:h.payloadLen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return res, nil // torn payload
		}
		if verifyRecord(hdr[:], h, payload) != nil {
			return res, nil // corrupt record
		}
		if res.records == 0 {
			res.firstSeq, res.firstTs = h.seq, h.ts
		}
		if indexEvery > 0 && res.records%uint64(indexEvery) == 0 {
			res.entries = append(res.entries, idxEntry{seq: h.seq, ts: h.ts, offset: offset})
		}
		res.lastSeq, res.lastTs = h.seq, h.ts
		res.records++
		if fn != nil {
			if err := fn(Record{Seq: h.seq, Time: h.ts, SID: h.sid, Payload: payload}, offset); err != nil {
				if errors.Is(err, errStopScan) {
					offset += recordHeaderSize + int64(h.payloadLen)
					res.validBytes = offset - segHeaderSize
					return res, nil
				}
				return res, err
			}
		}
		offset += recordHeaderSize + int64(h.payloadLen)
		res.validBytes = offset - segHeaderSize
	}
}

// SegmentInfo summarizes one on-disk segment for operators and replay
// tools (framedump -log, imsload -replay).
type SegmentInfo struct {
	// Path is the segment file path.
	Path string
	// FirstSeq and LastSeq bound the records the segment holds (0/0 when
	// empty).
	FirstSeq, LastSeq uint64
	// FirstTime and LastTime are the append times of those records, unix
	// nanoseconds.
	FirstTime, LastTime int64
	// Records is the verified record count.
	Records uint64
	// Bytes is the file size.
	Bytes int64
	// Sealed reports whether the segment carries a valid index footer.
	Sealed bool
	// IndexEntries is the sparse-index point count (footer or rebuilt).
	IndexEntries int
	// TornBytes is the trailing byte count that failed record parsing in
	// an unsealed segment — the residue of a torn write (0 on healthy
	// files).
	TornBytes int64
}

// openSegmentChecked opens a segment file and verifies its preamble.
func openSegmentChecked(path string) (*os.File, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	var magic [segHeaderSize]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != segMagic {
		f.Close()
		return nil, 0, fmt.Errorf("framelog: %s is not a frame-log segment", path)
	}
	return f, st.Size(), nil
}

// ScanSegment verifies every record of one segment file — CRCs included —
// calling fn (when non-nil) with each record in order, and returns the
// segment's summary.  Record payloads passed to fn alias a scratch buffer
// and are only valid during the call.  Sealed segments are cross-checked
// against their footer; unsealed ones report any trailing torn bytes.
func ScanSegment(path string, fn func(Record) error) (SegmentInfo, error) {
	f, size, err := openSegmentChecked(path)
	if err != nil {
		return SegmentInfo{}, err
	}
	defer f.Close()
	info := SegmentInfo{Path: path, Bytes: size}
	ft, err := probeFooter(f, size)
	if err != nil {
		return info, err
	}
	limit := int64(-1)
	if ft != nil {
		limit = ft.start - segHeaderSize
	}
	if _, err := f.Seek(segHeaderSize, io.SeekStart); err != nil {
		return info, err
	}
	var cbErr error
	res, err := scanRecords(bufio.NewReaderSize(f, 256<<10), limit, maxScanPayload, defaultIndexEvery, func(rec Record, _ int64) error {
		if fn == nil {
			return nil
		}
		if err := fn(rec); err != nil {
			cbErr = err
			return err
		}
		return nil
	})
	if cbErr != nil {
		return info, cbErr
	}
	if err != nil {
		return info, err
	}
	info.FirstSeq, info.LastSeq = res.firstSeq, res.lastSeq
	info.FirstTime, info.LastTime = res.firstTs, res.lastTs
	info.Records = res.records
	info.IndexEntries = len(res.entries)
	if ft != nil {
		info.Sealed = true
		info.IndexEntries = len(ft.entries)
		if res.records != ft.records || res.lastSeq != ft.lastSeq {
			return info, fmt.Errorf("framelog: %s footer claims %d records through seq %d, scan found %d through %d",
				path, ft.records, ft.lastSeq, res.records, res.lastSeq)
		}
	} else {
		info.TornBytes = size - segHeaderSize - res.validBytes
	}
	return info, nil
}

// ListSegments enumerates and summarizes the segments of a log directory,
// seq-ascending, verifying each one (ScanSegment semantics).
func ListSegments(dir string) ([]SegmentInfo, error) {
	names, err := listSegmentFiles(dir)
	if err != nil {
		return nil, err
	}
	infos := make([]SegmentInfo, 0, len(names))
	for _, name := range names {
		info, err := ScanSegment(filepath.Join(dir, name), nil)
		if err != nil {
			return infos, err
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// maxScanPayload bounds record payloads accepted by the standalone
// scanning entry points (ScanSegment, ListSegments); Log appenders enforce
// Config.MaxRecordBytes instead.
const maxScanPayload = 256 << 20
