// backend.go: one member of the imsd fleet as the gateway sees it — a
// pool of multiplexed upstream connections (acqserver.Client, so one TCP
// connection carries many concurrent proxied frames) plus a readiness
// flag driven two ways:
//
//   - Actively, by a prober goroutine polling the backend's /readyz every
//     ProbeInterval (or, with no health URL configured, attempting a bare
//     TCP dial).  A daemon that flips /readyz to 503 at SIGTERM — the
//     drain-grace pattern of cmd/imsd — leaves the ring before its
//     connections start dying, which is what makes rolling restarts
//     lossless.
//   - Passively, by the proxy path: a transport error against a backend
//     marks it not-ready immediately, because waiting out a probe period
//     against a dead peer sheds frames for no reason.  The prober brings
//     it back once /readyz answers 200 again.
//
// Either flip triggers a ring rebuild in the gateway.
package gateway

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/acqserver"
)

// BackendConfig names one imsd fleet member.
type BackendConfig struct {
	// Addr is the backend's IMSP listen address (host:port).
	Addr string
	// HealthURL, when set, is the backend's /readyz endpoint; the prober
	// treats HTTP 200 as ready, anything else (or a transport error) as
	// not ready.  When empty the prober falls back to a TCP dial check.
	HealthURL string
}

// backend is the runtime state of one fleet member.
type backend struct {
	id    int // index into Config.Backends; Result.Backend carries id+1
	cfg   BackendConfig
	ready atomic.Bool
	pool  *clientPool
}

// clientPool is a fixed-size, lazily-dialed set of multiplexed upstream
// connections to one backend.  get hands out clients round-robin; a
// client whose connection has died is redialed in place, and a caller
// that observed a transport failure mid-request discards the client so
// the next request redials instead of re-failing.
type clientPool struct {
	addr        string
	dialTimeout time.Duration

	mu      sync.Mutex
	clients []*acqserver.Client
	next    uint64
}

// newClientPool sizes the pool; connections are dialed on first use.
func newClientPool(addr string, size int, dialTimeout time.Duration) *clientPool {
	return &clientPool{
		addr:        addr,
		dialTimeout: dialTimeout,
		clients:     make([]*acqserver.Client, size),
	}
}

// get returns a live pooled client, dialing (or redialing a dead slot)
// when needed.
func (p *clientPool) get() (*acqserver.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	slot := int(p.next % uint64(len(p.clients)))
	p.next++
	c := p.clients[slot]
	if c != nil {
		select {
		case <-c.Done():
			c = nil // connection died; redial below
		default:
			return c, nil
		}
	}
	c, err := acqserver.Dial(p.addr, p.dialTimeout)
	if err != nil {
		return nil, err
	}
	p.clients[slot] = c
	return c, nil
}

// discard drops a client that failed mid-request so its slot redials.
func (p *clientPool) discard(c *acqserver.Client) {
	_ = c.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, pc := range p.clients {
		if pc == c {
			p.clients[i] = nil
		}
	}
}

// info returns the handshake summary of any live pooled connection.
func (p *clientPool) info() (acqserver.ServerInfo, error) {
	c, err := p.get()
	if err != nil {
		return acqserver.ServerInfo{}, err
	}
	return c.Info(), nil
}

// closeAll tears the pool down.
func (p *clientPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, c := range p.clients {
		if c != nil {
			_ = c.Close()
			p.clients[i] = nil
		}
	}
}

// probe performs one readiness check: HTTP GET against HealthURL when
// configured (200 = ready), a bare TCP dial otherwise.
func (b *backend) probe(client *http.Client, dialTimeout time.Duration) bool {
	if b.cfg.HealthURL == "" {
		conn, err := net.DialTimeout("tcp", b.cfg.Addr, dialTimeout)
		if err != nil {
			return false
		}
		_ = conn.Close()
		return true
	}
	ctx, cancel := context.WithTimeout(context.Background(), client.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.cfg.HealthURL, nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	_ = resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// proberLoop polls the backend until stop closes, reporting readiness
// flips through onFlip (which rebuilds the ring).
func (g *Gateway) proberLoop(b *backend) {
	defer g.proberWG.Done()
	httpc := &http.Client{Timeout: g.cfg.ProbeInterval}
	if httpc.Timeout <= 0 {
		httpc.Timeout = time.Second
	}
	ticker := time.NewTicker(g.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		ready := b.probe(httpc, g.cfg.DialTimeout)
		if b.ready.Swap(ready) != ready {
			g.log.Info("backend readiness flipped", "backend", b.cfg.Addr, "ready", ready)
			g.rebuildRing()
		}
		select {
		case <-g.stopc:
			return
		case <-ticker.C:
		}
	}
}

// markDown is the passive path: a transport failure against the backend
// takes it off the ring immediately; the prober restores it.
func (g *Gateway) markDown(b *backend, reason error) {
	if b.ready.Swap(false) {
		g.log.Warn("backend marked down", "backend", b.cfg.Addr, "err", fmt.Sprint(reason))
		g.rebuildRing()
	}
}
