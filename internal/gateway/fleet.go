// fleet.go: the gateway's fleet metrics rollup — /metrics/fleet.  The
// gateway is the only process that already knows every backend, so it is
// the natural place to answer "how is the whole cluster doing" in one
// scrape: a handler that polls each backend's /metrics.json (the URL is
// derived from the configured /readyz health URL), distills the families
// an operator triages by, and re-exposes them as gw_fleet_* gauges
// labeled by backend.  cmd/imstop's fleet mode renders exactly this
// endpoint as a one-screen cluster view (docs/OBSERVABILITY.md).
//
// Families served here (all gauges; the *_total names mirror the backend
// counters they sample): gw_fleet_up, gw_fleet_sessions,
// gw_fleet_frames_total, gw_fleet_shed_total, gw_fleet_queue_depth,
// gw_fleet_process_p99_ns, gw_fleet_health_status.
package gateway

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// fleetScrapeTimeout bounds one backend metrics scrape; a backend that
// cannot answer within it reports gw_fleet_up 0 rather than stalling the
// whole rollup.
const fleetScrapeTimeout = 2 * time.Second

// fleetBackendStats is the distilled per-backend view one scrape yields.
type fleetBackendStats struct {
	up           bool
	sessions     float64
	frames       float64
	shed         float64
	queueDepth   float64
	processP99Ns float64
	healthStatus float64
}

// MetricsURL derives a backend's metrics endpoint from its health URL:
// the daemon mounts /metrics and /readyz on the same mux, so trimming the
// readiness path and appending /metrics.json lands on the JSON scrape.
// Empty when no health URL is configured (the TCP-probe-only case).
func (b BackendConfig) MetricsURL() string {
	if b.HealthURL == "" {
		return ""
	}
	u := b.HealthURL
	if i := strings.LastIndexByte(u, '/'); i > len("https://") {
		u = u[:i]
	}
	return u + "/metrics.json"
}

// fleetFamilyFilter is the ?family= prefix list a fleet scrape requests:
// the rollup only distills acq_* and health_status, so the backend can
// skip serializing everything else (PR 10's per-sample scrape diet).
const fleetFamilyFilter = "acq_,health_"

// scrapeFleetBackend polls one backend's /metrics.json and distills it.
func scrapeFleetBackend(ctx context.Context, client *http.Client, url string) fleetBackendStats {
	var st fleetBackendStats
	if url == "" {
		return st
	}
	url += "?family=" + fleetFamilyFilter
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return st
	}
	resp, err := client.Do(req)
	if err != nil {
		return st
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return st
	}
	st.up = true
	for _, m := range snap.Metrics {
		v := 0.0
		if m.Value != nil {
			v = *m.Value
		}
		switch m.Name {
		case "acq_sessions_active":
			st.sessions += v
		case "acq_frames_total":
			st.frames += v
		case "acq_shed_total":
			st.shed += v
		case "acq_queue_depth":
			st.queueDepth += v
		case "acq_process_ns":
			// Prefer the rolling-window p99 (recent behaviour); fall back
			// to lifetime.  Across compute paths, report the worst.
			p := m.P99
			if m.WP99 > 0 {
				p = m.WP99
			}
			if p > st.processP99Ns {
				st.processP99Ns = p
			}
		case "health_status":
			st.healthStatus = v
		}
	}
	return st
}

// scrapeFleet polls every backend concurrently within the scrape timeout.
func (g *Gateway) scrapeFleet(ctx context.Context, client *http.Client) []fleetBackendStats {
	ctx, cancel := context.WithTimeout(ctx, fleetScrapeTimeout)
	defer cancel()
	stats := make([]fleetBackendStats, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			stats[i] = scrapeFleetBackend(ctx, client, url)
		}(i, b.cfg.MetricsURL())
	}
	wg.Wait()
	return stats
}

// publishFleet writes one scrape's distilled stats into reg as the
// gw_fleet_* gauge families, labeled by backend address.
func (g *Gateway) publishFleet(reg *telemetry.Registry, stats []fleetBackendStats) {
	for i, b := range g.backends {
		l := telemetry.L("backend", b.cfg.Addr)
		st := stats[i]
		reg.Gauge("gw_fleet_up", "backend metrics endpoint scrapeable (1) or not (0)", l).Set(boolGauge(st.up))
		if !st.up {
			continue
		}
		reg.Gauge("gw_fleet_sessions", "open client sessions on the backend", l).Set(st.sessions)
		reg.Gauge("gw_fleet_frames_total", "frames accepted by the backend (all compute paths)", l).Set(st.frames)
		reg.Gauge("gw_fleet_shed_total", "frames shed by the backend (all reasons)", l).Set(st.shed)
		reg.Gauge("gw_fleet_queue_depth", "queued frames on the backend (all shards)", l).Set(st.queueDepth)
		reg.Gauge("gw_fleet_process_p99_ns", "worst per-path p99 deconvolution latency on the backend, nanoseconds", l).Set(st.processP99Ns)
		reg.Gauge("gw_fleet_health_status", "backend overall health: 0 healthy, 1 degraded, 2 unhealthy", l).Set(st.healthStatus)
	}
}

// FleetHandler returns the /metrics/fleet endpoint: each request scrapes
// every configured backend concurrently (bounded by fleetScrapeTimeout),
// rolls the results into a scratch registry, and serves it in the same
// text/JSON exposition as every other metrics endpoint.
func (g *Gateway) FleetHandler() http.Handler {
	client := &http.Client{Timeout: fleetScrapeTimeout}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		reg := telemetry.NewRegistry()
		g.publishFleet(reg, g.scrapeFleet(req.Context(), client))
		reg.Handler().ServeHTTP(w, req)
	})
}

// RunFleetRecorder scrapes the fleet every interval and publishes the
// gw_fleet_* gauges into the gateway's own metrics registry (not a
// scratch one), so a history sampler on the gateway persists per-backend
// fleet series — cluster-wide history from one process.  No-op when the
// gateway has no metrics registry.  Runs until ctx is cancelled; call in
// a dedicated goroutine.
func (g *Gateway) RunFleetRecorder(ctx context.Context, interval time.Duration) {
	if g.cfg.Metrics == nil {
		return
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	client := &http.Client{Timeout: fleetScrapeTimeout}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.publishFleet(g.cfg.Metrics, g.scrapeFleet(ctx, client))
		}
	}
}
