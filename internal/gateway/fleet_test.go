package gateway

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestMetricsURLDerivation(t *testing.T) {
	cases := []struct {
		health, want string
	}{
		{"", ""},
		{"http://10.0.0.1:9090/readyz", "http://10.0.0.1:9090/metrics.json"},
		{"https://ims-3.prod:9090/readyz", "https://ims-3.prod:9090/metrics.json"},
		{"http://localhost:9090", "http://localhost:9090/metrics.json"},
	}
	for _, c := range cases {
		if got := (BackendConfig{HealthURL: c.health}).MetricsURL(); got != c.want {
			t.Errorf("MetricsURL(%q) = %q, want %q", c.health, got, c.want)
		}
	}
}

// fakeMetricsBackend serves a realistic imsd metrics surface: a registry
// with the families the fleet rollup distills, behind /metrics.json and a
// 200 /readyz for the gateway's probes.
func fakeMetricsBackend(t *testing.T) *httptest.Server {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Gauge("acq_sessions_active", "").Set(3)
	reg.Counter("acq_frames_total", "", telemetry.L("path", "hybrid")).Add(100)
	reg.Counter("acq_frames_total", "", telemetry.L("path", "cpu")).Add(20)
	reg.Counter("acq_shed_total", "", telemetry.L("reason", "queue_full")).Add(7)
	reg.Gauge("acq_queue_depth", "", telemetry.L("shard", "0")).Set(2)
	reg.Gauge("acq_queue_depth", "", telemetry.L("shard", "1")).Set(5)
	reg.Gauge("health_status", "").Set(1)
	h := reg.Histogram("acq_process_ns", "", telemetry.L("path", "hybrid"))
	for i := 0; i < 100; i++ {
		h.Observe(1e6)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics.json", reg.Handler())
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestFleetHandlerRollup(t *testing.T) {
	up := fakeMetricsBackend(t)
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusBadGateway)
	}))
	t.Cleanup(down.Close)

	cfg := testGwConfig("10.0.0.1:1", "10.0.0.2:1")
	cfg.Backends[0].HealthURL = up.URL + "/readyz"
	cfg.Backends[1].HealthURL = down.URL + "/readyz"
	gw, _ := startGateway(t, cfg)

	rec := httptest.NewRecorder()
	gw.FleetHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/fleet?format=json", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	got := map[string]map[string]float64{} // family -> backend -> value
	for _, m := range snap.Metrics {
		if m.Value == nil {
			continue
		}
		if got[m.Name] == nil {
			got[m.Name] = map[string]float64{}
		}
		got[m.Name][m.Labels["backend"]] = *m.Value
	}

	if got["gw_fleet_up"]["10.0.0.1:1"] != 1 || got["gw_fleet_up"]["10.0.0.2:1"] != 0 {
		t.Fatalf("gw_fleet_up = %v", got["gw_fleet_up"])
	}
	want := map[string]float64{
		"gw_fleet_sessions":      3,
		"gw_fleet_frames_total":  120, // summed across paths
		"gw_fleet_shed_total":    7,
		"gw_fleet_queue_depth":   7, // summed across shards
		"gw_fleet_health_status": 1,
	}
	for fam, v := range want {
		if got[fam]["10.0.0.1:1"] != v {
			t.Errorf("%s[up backend] = %v, want %v", fam, got[fam]["10.0.0.1:1"], v)
		}
		if _, present := got[fam]["10.0.0.2:1"]; present {
			t.Errorf("%s present for the down backend", fam)
		}
	}
	if got["gw_fleet_process_p99_ns"]["10.0.0.1:1"] <= 0 {
		t.Errorf("gw_fleet_process_p99_ns = %v, want > 0", got["gw_fleet_process_p99_ns"]["10.0.0.1:1"])
	}

	// The text exposition serves the same families for scrape tooling.
	rec = httptest.NewRecorder()
	gw.FleetHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/fleet", nil))
	if rec.Code != 200 {
		t.Fatalf("text exposition status %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "gw_fleet_up") {
		t.Fatalf("text exposition lacks gw_fleet_up:\n%s", body)
	}
}

func TestFleetRecorderPersistsIntoRegistry(t *testing.T) {
	// A backend that records which ?family= filter the scrape requested.
	var gotFamily atomic.Value
	reg := telemetry.NewRegistry()
	reg.Gauge("acq_sessions_active", "").Set(2)
	reg.Gauge("health_status", "").Set(0)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		gotFamily.Store(r.URL.Query().Get("family"))
		reg.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	cfg := testGwConfig("10.0.0.9:1")
	cfg.Backends[0].HealthURL = ts.URL + "/readyz"
	gw, _ := startGateway(t, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		gw.RunFleetRecorder(ctx, 5*time.Millisecond)
	}()

	// Within a few recorder ticks the gateway's OWN registry — the one a
	// history sampler diffs — carries the per-backend fleet gauges.
	deadline := time.Now().Add(3 * time.Second)
	for {
		snap := cfg.Metrics.Snapshot()
		up, sessions := -1.0, -1.0
		for _, m := range snap.Metrics {
			if m.Labels["backend"] != "10.0.0.9:1" || m.Value == nil {
				continue
			}
			switch m.Name {
			case "gw_fleet_up":
				up = *m.Value
			case "gw_fleet_sessions":
				sessions = *m.Value
			}
		}
		if up == 1 && sessions == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet gauges never landed in the gateway registry (up=%v sessions=%v)", up, sessions)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done

	// The scrape asked the backend for only the families the rollup reads.
	if f, _ := gotFamily.Load().(string); f != fleetFamilyFilter {
		t.Fatalf("scrape family filter = %q, want %q", f, fleetFamilyFilter)
	}

	// A registry-less gateway must treat the recorder as a no-op rather
	// than publish into nil.
	cfg2 := testGwConfig("10.0.0.9:1")
	cfg2.Metrics = nil
	gw2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = gw2.Shutdown(ctx)
	}()
	recDone := make(chan struct{})
	go func() { defer close(recDone); gw2.RunFleetRecorder(context.Background(), time.Millisecond) }()
	select {
	case <-recDone:
	case <-time.After(2 * time.Second):
		t.Fatal("RunFleetRecorder with nil registry did not return immediately")
	}
}
