// Package gateway is the cluster front tier: an IMSP/2-speaking proxy
// (cmd/imsgw) that fans client sessions out over a fleet of imsd
// backends.  Everything below it — acqserver, the hybrid/CPU compute
// paths, health and tracing — is single-process; this package is what
// turns N of those processes into one service (docs/CLUSTER.md).
//
// Routing is consistent hashing: each gateway session is hashed onto a
// ring of virtual nodes (ring.go), so a session sticks to one backend
// while it lives, and a backend leaving the ring remaps only its own
// arcs.  Ring membership follows readiness: a prober per backend polls
// /readyz (backend.go), so a draining daemon — SIGTERM flips its
// /readyz 503 before connections die — leaves the ring ahead of any
// request loss, and a transport failure takes a backend out passively
// the moment it is observed.
//
// Frames are proxied raw: the gateway reads the FRAME payload off the
// client socket and forwards the bytes verbatim over a pooled,
// multiplexed upstream connection (acqserver.Client.DoPayload) without
// ever decoding the frame.  The client's trace id rides the IMSP/2
// header end to end, so gateway spans (gw_request → gw_upstream) and the
// backend's span tree (frame → worker → …) share one trace identity.
//
// A shed or failed upstream request is retried once on a sibling backend
// — the next distinct backend clockwise on the ring — under an explicit
// per-session retry budget; retries are annotated on the trace and
// counted under gw_retries_total.  RESULT payloads are re-encoded with a
// routing trailer (backend id, attempts) so clients can attribute every
// response to a fleet member.  All gateway behaviour is observable under
// the gw_* metric families (docs/OBSERVABILITY.md).
package gateway

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/acqserver"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/trace"
)

// Config tunes the gateway.  The zero value is not usable; start from
// DefaultConfig and set Backends.
type Config struct {
	// Backends is the imsd fleet, in a stable order: Result.Backend
	// reported to clients is the 1-based index into this list.
	Backends []BackendConfig
	// Replicas is the virtual-node count per backend on the hash ring
	// (0 = DefaultReplicas).
	Replicas int
	// PoolSize is the multiplexed upstream connections kept per backend.
	PoolSize int
	// ProbeInterval is the readiness poll period per backend.
	ProbeInterval time.Duration
	// DialTimeout bounds one upstream dial (and the TCP fallback probe).
	DialTimeout time.Duration
	// UpstreamTimeout bounds one proxied request against one backend;
	// a request that retries can take up to twice this.
	UpstreamTimeout time.Duration
	// RetryBudget is the sibling retries one client session may consume
	// over its lifetime.  0 disables retries: shed and failed responses
	// pass through untouched.
	RetryBudget int
	// MaxInflight bounds the concurrently proxied frames per session;
	// the read loop blocks past it, pushing backpressure into the
	// client's socket instead of buffering without bound.
	MaxInflight int
	// MaxPayloadBytes caps one downstream message payload.
	MaxPayloadBytes uint32
	// ReadIdleTimeout bounds the wait for a client's next message.
	ReadIdleTimeout time.Duration
	// WriteTimeout bounds one downstream response write.
	WriteTimeout time.Duration
	// FallbackOrder is the m-sequence order advertised in HELLO_OK while
	// no backend is reachable to ask (a client that connects during a
	// full fleet outage still gets a well-formed handshake).
	FallbackOrder int
	// Metrics, when non-nil, receives the gw_* families.
	Metrics *telemetry.Registry
	// Trace, when non-nil, records a gateway span tree per proxied frame.
	Trace *trace.Tracer
	// FlightRecorder, when non-nil, receives one wide event per proxied
	// frame — recorded as the response goes downstream, carrying the
	// serving backend, attempt count and outcome — so an operator can ask
	// "which backend served the slow requests" from the gateway alone.
	FlightRecorder *flightrec.Recorder
	// Logger, when non-nil, receives structured session/routing events.
	Logger *slog.Logger
}

// DefaultConfig returns production-shaped defaults: 4 pooled upstream
// connections per backend, 1 s probes, one sibling retry per shed/failed
// request under a 64-retry session budget.
func DefaultConfig() Config {
	return Config{
		Replicas:        DefaultReplicas,
		PoolSize:        4,
		ProbeInterval:   time.Second,
		DialTimeout:     3 * time.Second,
		UpstreamTimeout: 30 * time.Second,
		RetryBudget:     64,
		MaxInflight:     32,
		MaxPayloadBytes: 16 << 20,
		ReadIdleTimeout: 30 * time.Second,
		WriteTimeout:    10 * time.Second,
		FallbackOrder:   9,
	}
}

// Validate reports the first unusable setting.
func (c Config) Validate() error {
	if len(c.Backends) == 0 {
		return errors.New("gateway: no backends configured")
	}
	for i, b := range c.Backends {
		if b.Addr == "" {
			return fmt.Errorf("gateway: backend %d has no address", i)
		}
	}
	if c.PoolSize < 1 {
		return fmt.Errorf("gateway: pool size %d must be positive", c.PoolSize)
	}
	if c.ProbeInterval <= 0 || c.DialTimeout <= 0 || c.UpstreamTimeout <= 0 {
		return errors.New("gateway: probe/dial/upstream timeouts must be positive")
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("gateway: retry budget %d must be >= 0", c.RetryBudget)
	}
	if c.MaxInflight < 1 {
		return fmt.Errorf("gateway: max inflight %d must be positive", c.MaxInflight)
	}
	if c.MaxPayloadBytes < 64 {
		return fmt.Errorf("gateway: max payload %d bytes is too small", c.MaxPayloadBytes)
	}
	if c.ReadIdleTimeout <= 0 || c.WriteTimeout <= 0 {
		return errors.New("gateway: read/write timeouts must be positive")
	}
	if c.FallbackOrder < 2 || c.FallbackOrder > 20 {
		return fmt.Errorf("gateway: fallback order %d out of [2,20]", c.FallbackOrder)
	}
	return nil
}

// gwMetrics bundles the gw_* telemetry handles, resolved once at
// construction (all nil on a nil registry — free to update).
type gwMetrics struct {
	sessionsTotal  *telemetry.Counter
	sessionsActive *telemetry.Gauge
	requests       []*telemetry.Counter // per backend
	upstreamNs     []*telemetry.Histogram
	backendReady   []*telemetry.Gauge
	responses      map[acqserver.Code]*telemetry.Counter
	retries        map[string]*telemetry.Counter
	shed           map[string]*telemetry.Counter
	ringRebuilds   *telemetry.Counter
	ringBackends   *telemetry.Gauge
	bytesIn        *telemetry.Counter
	bytesOut       *telemetry.Counter
	protocolErrs   *telemetry.Counter
}

// gwRetryOutcomes are the label values of gw_retries_total: a retry that
// recovered the request, one that did not, and a retry forgone because
// the session's budget was spent.
var gwRetryOutcomes = []string{"ok", "failed", "budget_exhausted"}

// gwShedReasons are the label values of gw_shed_total.
var gwShedReasons = []string{"no_backend", "draining"}

func newGwMetrics(reg *telemetry.Registry, backends []BackendConfig) gwMetrics {
	m := gwMetrics{
		sessionsTotal:  reg.Counter("gw_sessions_total", "client sessions accepted by the gateway"),
		sessionsActive: reg.Gauge("gw_sessions_active", "currently open gateway client sessions"),
		ringRebuilds:   reg.Counter("gw_ring_rebuilds_total", "consistent-hash ring rebuilds (readiness flips)"),
		ringBackends:   reg.Gauge("gw_ring_backends", "backends currently on the routing ring"),
		bytesIn:        reg.Counter("gw_bytes_in_total", "downstream wire bytes received (headers + payloads)"),
		bytesOut:       reg.Counter("gw_bytes_out_total", "downstream wire bytes sent (headers + payloads)"),
		protocolErrs:   reg.Counter("gw_protocol_errors_total", "malformed downstream messages and framing violations"),
		responses:      map[acqserver.Code]*telemetry.Counter{},
		retries:        map[string]*telemetry.Counter{},
		shed:           map[string]*telemetry.Counter{},
	}
	for _, b := range backends {
		l := telemetry.L("backend", b.Addr)
		m.requests = append(m.requests, reg.Counter("gw_requests_total", "frames proxied upstream per backend (attempts, including retries)", l))
		m.upstreamNs = append(m.upstreamNs, reg.Histogram("gw_upstream_ns", "upstream request latency per backend, nanoseconds", l).EnableExemplars())
		m.backendReady = append(m.backendReady, reg.Gauge("gw_backend_ready", "backend readiness as routed (1 on the ring, 0 off)", l))
	}
	for _, c := range []acqserver.Code{acqserver.CodeOK, acqserver.CodeInvalidArgument,
		acqserver.CodeResourceExhausted, acqserver.CodeDeadlineExceeded,
		acqserver.CodeUnavailable, acqserver.CodeInternal, acqserver.CodeTooLarge} {
		m.responses[c] = reg.Counter("gw_responses_total", "downstream responses sent per status code",
			telemetry.L("code", c.String()))
	}
	for _, o := range gwRetryOutcomes {
		m.retries[o] = reg.Counter("gw_retries_total", "sibling retry decisions per outcome",
			telemetry.L("outcome", o))
	}
	for _, r := range gwShedReasons {
		m.shed[r] = reg.Counter("gw_shed_total", "frames shed at the gateway, per reason",
			telemetry.L("reason", r))
	}
	return m
}

// Gateway is the cluster front tier: an accept loop, per-session read
// loops, and the shared routing ring.
type Gateway struct {
	cfg      Config
	backends []*backend
	m        gwMetrics
	tracer   *trace.Tracer
	flight   *flightrec.Recorder
	log      *slog.Logger

	ringMu  sync.RWMutex
	current *Ring

	ln       net.Listener
	lnMu     sync.Mutex
	draining atomic.Bool
	stopc    chan struct{}
	stopOnce func()

	proberWG sync.WaitGroup
	sessWG   sync.WaitGroup
	proxyWG  sync.WaitGroup
	nextSess atomic.Uint64

	sessMu   sync.Mutex
	sessions map[*gwSession]struct{}

	// upstreamInfo caches the first successful backend handshake for
	// HELLO_OK synthesis.
	upstreamInfo atomic.Pointer[acqserver.ServerInfo]
}

// New validates the config and builds the gateway: backend pools, the
// initial ring (all backends optimistically ready until the first probe
// says otherwise), telemetry handles, and one prober per backend.  Call
// Serve or ListenAndServe to start accepting.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	g := &Gateway{
		cfg:      cfg,
		m:        newGwMetrics(cfg.Metrics, cfg.Backends),
		tracer:   cfg.Trace,
		flight:   cfg.FlightRecorder,
		log:      log,
		stopc:    make(chan struct{}),
		sessions: map[*gwSession]struct{}{},
	}
	g.stopOnce = sync.OnceFunc(func() { close(g.stopc) })
	for i, bc := range cfg.Backends {
		b := &backend{
			id:   i,
			cfg:  bc,
			pool: newClientPool(bc.Addr, cfg.PoolSize, cfg.DialTimeout),
		}
		b.ready.Store(true)
		g.backends = append(g.backends, b)
	}
	g.rebuildRing()
	for _, b := range g.backends {
		g.proberWG.Add(1)
		go g.proberLoop(b)
	}
	return g, nil
}

// discardHandler is a no-op slog.Handler for a nil Config.Logger.
type discardHandler struct{}

// Enabled reports false for every level.
func (discardHandler) Enabled(context.Context, slog.Level) bool { return false }

// Handle drops the record.
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }

// WithAttrs returns the handler unchanged.
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler { return d }

// WithGroup returns the handler unchanged.
func (d discardHandler) WithGroup(string) slog.Handler { return d }

// rebuildRing swaps in a ring over the currently-ready backends and
// refreshes the readiness gauges.
func (g *Gateway) rebuildRing() {
	var ready []int
	for _, b := range g.backends {
		up := b.ready.Load()
		if up {
			ready = append(ready, b.id)
		}
		g.m.backendReady[b.id].Set(boolGauge(up))
	}
	ring := BuildRing(ready, func(i int) string { return g.backends[i].cfg.Addr }, g.cfg.Replicas)
	g.ringMu.Lock()
	g.current = ring
	g.ringMu.Unlock()
	g.m.ringRebuilds.Inc()
	g.m.ringBackends.Set(float64(len(ready)))
}

// boolGauge renders a readiness bit for a gauge.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ring returns the current routing ring.
func (g *Gateway) ring() *Ring {
	g.ringMu.RLock()
	defer g.ringMu.RUnlock()
	return g.current
}

// ReadyBackends reports how many backends are on the routing ring — the
// gateway's own readiness signal (a gateway with zero ready backends can
// only shed).
func (g *Gateway) ReadyBackends() int { return g.ring().Backends() }

// Draining reports whether Shutdown has begun.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Addr returns the bound listener address (nil before Serve).
func (g *Gateway) Addr() net.Addr {
	g.lnMu.Lock()
	defer g.lnMu.Unlock()
	if g.ln == nil {
		return nil
	}
	return g.ln.Addr()
}

// ListenAndServe binds addr and runs Serve.
func (g *Gateway) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return g.Serve(ln)
}

// Serve accepts client connections on ln until Shutdown closes it.  Like
// acqserver.Server.Serve it always returns a non-nil error; after a
// Shutdown-initiated close that error wraps net.ErrClosed.
func (g *Gateway) Serve(ln net.Listener) error {
	g.lnMu.Lock()
	g.ln = ln
	g.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if g.draining.Load() {
			_ = conn.Close()
			continue
		}
		sess := g.newSession(conn)
		g.sessWG.Add(1)
		go sess.readLoop()
	}
}

// Shutdown drains the gateway: stop accepting, answer new frames with
// UNAVAILABLE, wait for in-flight proxied requests to finish (their
// backends keep serving them), then close sessions, probers and upstream
// pools.  Returns nil on a complete drain or ctx.Err() after
// force-closing everything when the context expires first.
func (g *Gateway) Shutdown(ctx context.Context) error {
	if !g.draining.CompareAndSwap(false, true) {
		<-g.stopc
		return nil
	}
	g.lnMu.Lock()
	if g.ln != nil {
		_ = g.ln.Close()
	}
	g.lnMu.Unlock()

	err := func() error {
		done := make(chan struct{})
		go func() { g.proxyWG.Wait(); close(done) }()
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}()

	g.sessMu.Lock()
	open := make([]*gwSession, 0, len(g.sessions))
	for sess := range g.sessions {
		open = append(open, sess)
	}
	g.sessMu.Unlock()
	for _, sess := range open {
		sess.teardown() // deregisters under sessMu itself; don't hold it here
	}
	g.stopOnce()
	g.proberWG.Wait()
	g.sessWG.Wait()
	for _, b := range g.backends {
		b.pool.closeAll()
	}
	return err
}

// serverInfo synthesizes the HELLO_OK summary for a downstream client:
// the cached (or freshly fetched) upstream handshake with the negotiated
// version and the gateway's own payload bound applied, or fleet-outage
// fallbacks when no backend is reachable.
func (g *Gateway) serverInfo(ver uint8) acqserver.ServerInfo {
	info := g.upstreamInfo.Load()
	if info == nil {
		if b, ok := g.pickBackend(0, -1); ok {
			if si, err := b.pool.info(); err == nil {
				info = &si
				g.upstreamInfo.Store(info)
			}
		}
	}
	out := acqserver.ServerInfo{
		Version:         ver,
		Order:           uint8(g.cfg.FallbackOrder),
		MaxPayloadBytes: g.cfg.MaxPayloadBytes,
	}
	if info != nil {
		out.Shards = info.Shards
		out.Order = info.Order
		if info.MaxPayloadBytes < out.MaxPayloadBytes {
			out.MaxPayloadBytes = info.MaxPayloadBytes
		}
	}
	return out
}

// pickBackend routes a session key on the current ring, skipping avoid
// (pass -1 to skip nothing).
func (g *Gateway) pickBackend(key uint64, avoid int) (*backend, bool) {
	id, ok := g.ring().Pick(key, avoid)
	if !ok {
		return nil, false
	}
	return g.backends[id], true
}
