package gateway

// gateway_test.go: the cluster front tier end to end, driven through real
// sockets with the stock acqserver.Client as the downstream caller.  The
// fleet is faked at the wire level — fakeBackend speaks just enough IMSP
// to handshake and answer frames — except for the trace-continuity test,
// which runs a real daemon so the gateway's span tree and the backend's
// can be asserted to share one trace identity.  Run with -race: the churn
// test swaps rings under live traffic on purpose.

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/acqserver"
	"repro/internal/frameio"
	"repro/internal/instrument"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// fakeBehavior scripts one fake backend's answer to a FRAME.
type fakeBehavior int

const (
	// fakeOK answers every frame with a canned RESULT.
	fakeOK fakeBehavior = iota
	// fakeShed answers every frame with RESOURCE_EXHAUSTED.
	fakeShed
	// fakeDie closes the connection on the first FRAME without answering
	// — the backend-dies-mid-frame case.
	fakeDie
)

// fakeBackend is a minimal IMSP server: HELLO_OK on handshake, scripted
// behavior on FRAME.  It tolerates the gateway's TCP readiness probes
// (dial-and-close connections).
type fakeBackend struct {
	ln net.Listener

	mu       sync.Mutex
	behavior fakeBehavior
	frames   int
	traceIDs []uint64
}

func newFakeBackend(t *testing.T, b fakeBehavior) *fakeBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fb := &fakeBackend{ln: ln, behavior: b}
	go fb.acceptLoop()
	t.Cleanup(func() { _ = ln.Close() })
	return fb
}

func (fb *fakeBackend) addr() string { return fb.ln.Addr().String() }

func (fb *fakeBackend) setBehavior(b fakeBehavior) {
	fb.mu.Lock()
	fb.behavior = b
	fb.mu.Unlock()
}

func (fb *fakeBackend) frameCount() int {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.frames
}

func (fb *fakeBackend) seenTraceIDs() []uint64 {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return append([]uint64(nil), fb.traceIDs...)
}

func (fb *fakeBackend) acceptLoop() {
	for {
		conn, err := fb.ln.Accept()
		if err != nil {
			return
		}
		go fb.serveConn(conn)
	}
}

func (fb *fakeBackend) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		h, err := acqserver.ReadHeader(conn)
		if err != nil {
			return // probe dial-and-close lands here
		}
		payload := make([]byte, h.PayloadLen)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		switch h.Type {
		case acqserver.MsgHello:
			info := acqserver.ServerInfo{
				Version:         acqserver.ProtocolV2,
				Shards:          4,
				Order:           9,
				MaxPayloadBytes: 16 << 20,
			}
			if err := acqserver.WriteMessageV(conn, acqserver.ProtocolV2, acqserver.MsgHelloOK,
				h.ReqID, 0, acqserver.EncodeServerInfo(info)); err != nil {
				return
			}
		case acqserver.MsgFrame:
			fb.mu.Lock()
			fb.frames++
			fb.traceIDs = append(fb.traceIDs, h.TraceID)
			behavior := fb.behavior
			fb.mu.Unlock()
			switch behavior {
			case fakeDie:
				return
			case fakeShed:
				if err := acqserver.WriteMessageV(conn, acqserver.ProtocolV2, acqserver.MsgError,
					h.ReqID, h.TraceID, acqserver.EncodeError(acqserver.CodeResourceExhausted, "shard queue full")); err != nil {
					return
				}
			default:
				out, err := acqserver.EncodeResult(&acqserver.Result{Shard: 1, ProcessNs: 1000})
				if err != nil {
					return
				}
				if err := acqserver.WriteMessageV(conn, acqserver.ProtocolV2, acqserver.MsgResult,
					h.ReqID, h.TraceID, out); err != nil {
					return
				}
			}
		case acqserver.MsgGoodbye:
			return
		}
	}
}

// testGwConfig returns a fast-probing gateway config over the given
// backend addresses, with a live registry for metric assertions.
func testGwConfig(addrs ...string) Config {
	cfg := DefaultConfig()
	for _, a := range addrs {
		cfg.Backends = append(cfg.Backends, BackendConfig{Addr: a})
	}
	cfg.ProbeInterval = 20 * time.Millisecond
	cfg.DialTimeout = time.Second
	cfg.UpstreamTimeout = 2 * time.Second
	cfg.ReadIdleTimeout = 2 * time.Second
	cfg.WriteTimeout = 2 * time.Second
	cfg.RetryBudget = 4
	cfg.Metrics = telemetry.NewRegistry()
	return cfg
}

// startGateway serves the gateway on loopback and registers a
// drain-on-cleanup.
func startGateway(t *testing.T, cfg Config) (*Gateway, string) {
	t.Helper()
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = gw.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := gw.Shutdown(ctx); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
	})
	return gw, ln.Addr().String()
}

func dialGateway(t *testing.T, addr string) *acqserver.Client {
	t.Helper()
	c, err := acqserver.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// gwFrame builds a small frame matching the given m-sequence order.
func gwFrame(order, tofBins int) *instrument.Frame {
	f := instrument.NewFrame((1<<order)-1, tofBins)
	for i := range f.Data {
		f.Data[i] = float64(i%13) + 1
	}
	return f
}

func doFrame(t *testing.T, c *acqserver.Client, opts acqserver.FrameOptions) *acqserver.Response {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := c.Do(ctx, gwFrame(5, 16), frameio.Raw, opts)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	return resp
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// counter re-resolves a gw_* counter from the test registry (the registry
// dedups by family name + labels, so this reads the gateway's own
// instance).
func counter(reg *telemetry.Registry, name string, labels ...telemetry.Label) *telemetry.Counter {
	return reg.Counter(name, "", labels...)
}

func TestGatewayProxiesFrameWithRoutingTrailer(t *testing.T) {
	fb1 := newFakeBackend(t, fakeOK)
	fb2 := newFakeBackend(t, fakeOK)
	cfg := testGwConfig(fb1.addr(), fb2.addr())
	gw, addr := startGateway(t, cfg)

	c := dialGateway(t, addr)
	resp := doFrame(t, c, acqserver.FrameOptions{Path: acqserver.PathCPU})
	if resp.Code != acqserver.CodeOK {
		t.Fatalf("response code %v (%s), want OK", resp.Code, resp.Message)
	}
	if resp.Result.Backend != 1 && resp.Result.Backend != 2 {
		t.Errorf("routing trailer backend %d, want 1 or 2", resp.Result.Backend)
	}
	if resp.Result.Attempts != 1 {
		t.Errorf("routing trailer attempts %d, want 1", resp.Result.Attempts)
	}
	if got := fb1.frameCount() + fb2.frameCount(); got != 1 {
		t.Errorf("fleet served %d frames, want exactly 1", got)
	}
	if gw.ReadyBackends() != 2 {
		t.Errorf("ring has %d backends, want 2", gw.ReadyBackends())
	}
	// Session stickiness: further frames land on the same backend.
	first := resp.Result.Backend
	for i := 0; i < 5; i++ {
		r := doFrame(t, c, acqserver.FrameOptions{Path: acqserver.PathCPU})
		if r.Result.Backend != first {
			t.Fatalf("frame %d routed to backend %d; session was pinned to %d", i, r.Result.Backend, first)
		}
	}
}

func TestBackendDiesMidFrameRetriesOnSibling(t *testing.T) {
	fbs := []*fakeBackend{newFakeBackend(t, fakeOK), newFakeBackend(t, fakeOK), newFakeBackend(t, fakeOK)}
	cfg := testGwConfig(fbs[0].addr(), fbs[1].addr(), fbs[2].addr())
	gw, addr := startGateway(t, cfg)

	// The first session gets id 1; resolve its primary off the live ring
	// so the right fake can be scripted to die mid-frame.
	primary, ok := gw.ring().Pick(1, -1)
	if !ok {
		t.Fatal("ring lookup missed")
	}
	fbs[primary].setBehavior(fakeDie)
	rebuildsBefore := counter(cfg.Metrics, "gw_ring_rebuilds_total").Value()

	c := dialGateway(t, addr)
	resp := doFrame(t, c, acqserver.FrameOptions{Path: acqserver.PathCPU})
	if resp.Code != acqserver.CodeOK {
		t.Fatalf("response code %v (%s), want OK via sibling retry", resp.Code, resp.Message)
	}
	if resp.Result.Attempts != 2 {
		t.Errorf("attempts %d, want 2 (primary died, sibling answered)", resp.Result.Attempts)
	}
	if int(resp.Result.Backend) == primary+1 {
		t.Errorf("result attributed to the dead primary (backend %d)", resp.Result.Backend)
	}
	if got := counter(cfg.Metrics, "gw_retries_total", telemetry.L("outcome", "ok")).Value(); got != 1 {
		t.Errorf("gw_retries_total{outcome=ok} = %d, want 1", got)
	}
	// The transport failure must have marked the primary down passively,
	// rebuilding the ring while the retry was still in flight.
	if got := counter(cfg.Metrics, "gw_ring_rebuilds_total").Value(); got <= rebuildsBefore {
		t.Errorf("ring rebuilds %d, want > %d after passive mark-down", got, rebuildsBefore)
	}
	waitFor(t, "dead primary to leave the ring", func() bool {
		_, onRing := gw.ring().Pick(1, -1)
		return onRing && gw.ReadyBackends() == 2
	})
}

func TestRingRebuildChurnDuringLiveTraffic(t *testing.T) {
	fbs := []*fakeBackend{newFakeBackend(t, fakeOK), newFakeBackend(t, fakeOK), newFakeBackend(t, fakeOK)}
	cfg := testGwConfig(fbs[0].addr(), fbs[1].addr(), fbs[2].addr())
	gw, addr := startGateway(t, cfg)

	// Churn: flap one backend's ring membership as fast as possible while
	// clients proxy frames, so ring swaps overlap in-flight picks and
	// retries.  The backend process itself stays alive throughout, so
	// every frame must still come back OK from somewhere.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			gw.markDown(gw.backends[2], fmt.Errorf("test churn"))
			gw.backends[2].ready.Store(true)
			gw.rebuildRing()
		}
	}()

	var clients sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			c, err := acqserver.Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 25; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				resp, err := c.Do(ctx, gwFrame(5, 16), frameio.Raw, acqserver.FrameOptions{Path: acqserver.PathCPU})
				cancel()
				if err != nil {
					errs <- err
					return
				}
				if resp.Code != acqserver.CodeOK {
					errs <- fmt.Errorf("frame answered %v (%s) during ring churn", resp.Code, resp.Message)
					return
				}
			}
		}()
	}
	clients.Wait()
	close(stop)
	churn.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestAllBackendsNotReadySheds(t *testing.T) {
	// Reserve two ports, then close them: probes fail, both backends
	// leave the ring, and every frame is shed with UNAVAILABLE.
	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, ln.Addr().String())
		_ = ln.Close()
	}
	cfg := testGwConfig(addrs...)
	gw, addr := startGateway(t, cfg)
	waitFor(t, "all backends to leave the ring", func() bool { return gw.ReadyBackends() == 0 })

	// The handshake must still succeed on fleet-outage fallbacks.
	c := dialGateway(t, addr)
	if got := c.Info().Order; got != uint8(cfg.FallbackOrder) {
		t.Errorf("outage HELLO_OK advertised order %d, want fallback %d", got, cfg.FallbackOrder)
	}
	resp := doFrame(t, c, acqserver.FrameOptions{Path: acqserver.PathCPU})
	if resp.Code != acqserver.CodeUnavailable {
		t.Fatalf("response code %v, want UNAVAILABLE while no backend is ready", resp.Code)
	}
	if got := counter(cfg.Metrics, "gw_shed_total", telemetry.L("reason", "no_backend")).Value(); got != 1 {
		t.Errorf("gw_shed_total{reason=no_backend} = %d, want 1", got)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	fb1 := newFakeBackend(t, fakeShed)
	fb2 := newFakeBackend(t, fakeShed)
	cfg := testGwConfig(fb1.addr(), fb2.addr())
	cfg.RetryBudget = 1
	_, addr := startGateway(t, cfg)

	c := dialGateway(t, addr)
	// First frame spends the session's whole budget: primary sheds, the
	// one budgeted sibling retry runs and sheds too.
	resp := doFrame(t, c, acqserver.FrameOptions{Path: acqserver.PathCPU})
	if resp.Code != acqserver.CodeResourceExhausted {
		t.Fatalf("first frame answered %v, want RESOURCE_EXHAUSTED passthrough", resp.Code)
	}
	if got := fb1.frameCount() + fb2.frameCount(); got != 2 {
		t.Fatalf("fleet saw %d attempts for the first frame, want 2", got)
	}
	// Second frame: budget is spent, no retry — exactly one more attempt.
	resp = doFrame(t, c, acqserver.FrameOptions{Path: acqserver.PathCPU})
	if resp.Code != acqserver.CodeResourceExhausted {
		t.Fatalf("second frame answered %v, want RESOURCE_EXHAUSTED", resp.Code)
	}
	if got := fb1.frameCount() + fb2.frameCount(); got != 3 {
		t.Errorf("fleet saw %d attempts total, want 3 (budget exhausted, no second retry)", got)
	}
	if got := counter(cfg.Metrics, "gw_retries_total", telemetry.L("outcome", "failed")).Value(); got != 1 {
		t.Errorf("gw_retries_total{outcome=failed} = %d, want 1", got)
	}
	if got := counter(cfg.Metrics, "gw_retries_total", telemetry.L("outcome", "budget_exhausted")).Value(); got != 1 {
		t.Errorf("gw_retries_total{outcome=budget_exhausted} = %d, want 1", got)
	}
}

func TestTraceIDContinuityThroughGateway(t *testing.T) {
	// A real daemon this time: the assertion is that the gateway's span
	// tree and the backend's share the client-chosen trace identity.
	backendTracer := trace.New(trace.Config{SampleEvery: 1, RingSize: 16})
	bcfg := acqserver.DefaultConfig()
	bcfg.Order = 5
	bcfg.MaxTOFBins = 64
	bcfg.CPUWorkersPerFrame = 1
	bcfg.Trace = backendTracer
	srv, err := acqserver.NewServer(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(bln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	gwTracer := trace.New(trace.Config{SampleEvery: 1, RingSize: 16})
	cfg := testGwConfig(bln.Addr().String())
	cfg.Trace = gwTracer
	_, addr := startGateway(t, cfg)

	const traceID = 0xC0FFEE
	c := dialGateway(t, addr)
	resp := doFrame(t, c, acqserver.FrameOptions{Path: acqserver.PathCPU, TraceID: traceID})
	if resp.Code != acqserver.CodeOK {
		t.Fatalf("response code %v (%s), want OK", resp.Code, resp.Message)
	}
	if resp.TraceID != traceID {
		t.Errorf("response echoed trace id %#x, want %#x", resp.TraceID, traceID)
	}
	if resp.Result.Backend != 1 || resp.Result.Attempts != 1 {
		t.Errorf("routing trailer (backend=%d attempts=%d), want (1, 1)", resp.Result.Backend, resp.Result.Attempts)
	}

	find := func(tr *trace.Tracer) (trace.TraceSnapshot, bool) {
		slow, sampled := tr.Snapshot()
		for _, ts := range append(slow, sampled...) {
			if ts.ID == traceID {
				return ts, true
			}
		}
		return trace.TraceSnapshot{}, false
	}
	waitFor(t, "gateway trace retention", func() bool { _, ok := find(gwTracer); return ok })
	waitFor(t, "backend trace retention", func() bool { _, ok := find(backendTracer); return ok })

	gts, _ := find(gwTracer)
	if gts.Spans[0].Name != "gw_request" {
		t.Errorf("gateway root span %q, want gw_request", gts.Spans[0].Name)
	}
	foundUpstream := false
	for _, sp := range gts.Spans[1:] {
		if sp.Name == "gw_upstream" && sp.Parent == 0 {
			foundUpstream = true
			if sp.Attrs["backend"] != bln.Addr().String() {
				t.Errorf("gw_upstream backend attr %v, want %s", sp.Attrs["backend"], bln.Addr())
			}
		}
	}
	if !foundUpstream {
		t.Error("gateway trace has no gw_upstream child under gw_request")
	}

	bts, _ := find(backendTracer)
	if bts.Spans[0].Name != "frame" {
		t.Errorf("backend root span %q, want frame", bts.Spans[0].Name)
	}
}
