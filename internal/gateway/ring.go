// ring.go: the consistent-hash ring that pins sessions to backends.
// Each backend contributes Replicas virtual points — FNV-1a hashes of
// "addr#vnode" — sorted around a 64-bit circle; a session key is mixed
// through a 64-bit finalizer and routed to the first point clockwise.
// The properties that matter for the fleet:
//
//   - Stability: a session keeps hitting the same backend for its whole
//     life, so backend-side state (shard pinning, warmed offloader cores)
//     stays warm.
//   - Minimal disruption: removing one backend from the ring remaps only
//     the keys that were on its arcs; every other session stays put.
//     That is what makes a rolling restart cheap — the drained backend's
//     sessions slide to their clockwise successors and everyone else is
//     untouched.
//   - Sibling selection: the retry path walks clockwise past the failed
//     backend's points to the next distinct backend, so a retried frame
//     lands deterministically rather than on a random pick.
//
// Rings are immutable once built; the gateway swaps a new ring in (ring
// rebuild) whenever a backend's readiness flips.
package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per backend when
// Config.Replicas is unset: enough points that three backends split the
// circle within a few percent of evenly.
const DefaultReplicas = 128

// ringPoint is one virtual node: a position on the hash circle owned by a
// backend.
type ringPoint struct {
	hash    uint64
	backend int
}

// Ring is an immutable consistent-hash ring over backend indexes.
type Ring struct {
	points   []ringPoint
	backends int // distinct backends on the ring
}

// BuildRing places replicas virtual points per backend for every listed
// backend index, labeling points by the backend's address so the layout
// is stable across processes and restarts.  An empty backend list yields
// an empty ring (every lookup misses).
func BuildRing(backends []int, addr func(int) string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{backends: len(backends)}
	r.points = make([]ringPoint, 0, len(backends)*replicas)
	for _, b := range backends {
		for v := 0; v < replicas; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", addr(b), v)
			// Finalize through mix64: raw FNV over near-identical strings
			// ("addr#0", "addr#1", …) clusters on the circle badly enough
			// to skew a three-backend split past 50/20/30.
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), backend: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// Backends returns how many distinct backends the ring was built over.
func (r *Ring) Backends() int { return r.backends }

// mix64 is the SplitMix64 finalizer: small sequential session ids become
// uniformly spread circle positions.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Pick routes key to a backend: the owner of the first point clockwise
// from the key's circle position, skipping every point owned by avoid
// (pass avoid < 0 to skip nothing — the primary lookup).  It reports
// false when the ring is empty or holds only the avoided backend.
func (r *Ring) Pick(key uint64, avoid int) (int, bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := mix64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if p.backend != avoid {
			return p.backend, true
		}
	}
	return 0, false
}
