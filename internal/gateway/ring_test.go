package gateway

// ring_test.go: the consistent-hash ring's load balance, its minimal-
// disruption property under backend removal, and sibling selection.

import (
	"fmt"
	"testing"
)

// testAddr names backend i the way the gateway does in production: by a
// stable address string.
func testAddr(i int) string { return fmt.Sprintf("10.0.0.%d:6060", i+1) }

func TestRingBalance(t *testing.T) {
	r := BuildRing([]int{0, 1, 2}, testAddr, DefaultReplicas)
	if r.Backends() != 3 {
		t.Fatalf("ring has %d backends, want 3", r.Backends())
	}
	const keys = 10000
	counts := map[int]int{}
	for k := uint64(0); k < keys; k++ {
		b, ok := r.Pick(k, -1)
		if !ok {
			t.Fatalf("key %d missed a 3-backend ring", k)
		}
		counts[b]++
	}
	for b, n := range counts {
		share := float64(n) / keys
		if share < 0.20 || share > 0.47 {
			t.Errorf("backend %d got %.1f%% of keys; want a roughly even three-way split", b, 100*share)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	full := BuildRing([]int{0, 1, 2}, testAddr, DefaultReplicas)
	without1 := BuildRing([]int{0, 2}, testAddr, DefaultReplicas)
	const keys = 5000
	moved := 0
	for k := uint64(0); k < keys; k++ {
		before, _ := full.Pick(k, -1)
		after, ok := without1.Pick(k, -1)
		if !ok {
			t.Fatalf("key %d missed the 2-backend ring", k)
		}
		if before != 1 && after != before {
			// A key that was NOT on the removed backend must stay put —
			// this is the property that makes rolling restarts cheap.
			t.Fatalf("key %d moved %d -> %d though backend 1 was the one removed", k, before, after)
		}
		if before == 1 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys mapped to the removed backend; distribution test is vacuous")
	}
}

func TestRingSiblingSelection(t *testing.T) {
	r := BuildRing([]int{0, 1, 2}, testAddr, DefaultReplicas)
	for k := uint64(0); k < 1000; k++ {
		primary, _ := r.Pick(k, -1)
		sibling, ok := r.Pick(k, primary)
		if !ok {
			t.Fatalf("key %d found no sibling on a 3-backend ring", k)
		}
		if sibling == primary {
			t.Fatalf("key %d: sibling %d equals avoided primary", k, sibling)
		}
		// Sibling selection is deterministic: same key, same answer.
		again, _ := r.Pick(k, primary)
		if again != sibling {
			t.Fatalf("key %d: sibling pick not deterministic (%d then %d)", k, sibling, again)
		}
	}
}

func TestRingEmptyAndExhausted(t *testing.T) {
	empty := BuildRing(nil, testAddr, DefaultReplicas)
	if _, ok := empty.Pick(42, -1); ok {
		t.Error("empty ring answered a lookup")
	}
	solo := BuildRing([]int{0}, testAddr, DefaultReplicas)
	if b, ok := solo.Pick(42, -1); !ok || b != 0 {
		t.Errorf("solo ring answered (%d, %v), want (0, true)", b, ok)
	}
	if _, ok := solo.Pick(42, 0); ok {
		t.Error("solo ring found a sibling for its only backend")
	}
}
