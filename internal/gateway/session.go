// session.go: one connected downstream client of the gateway.  The read
// loop speaks the same IMSP framing as acqserver's sessions but never
// decodes a frame: each FRAME payload is read whole (bounded by the
// handshake payload cap) and handed to a proxy goroutine, so one slow
// backend does not serialize the session's other in-flight frames.  A
// per-session semaphore bounds the in-flight proxies — past it the read
// loop simply stops reading, pushing backpressure into the client's
// socket, the same explicit-overload stance the daemon takes with its
// bounded shard queues.  Responses are written under one mutex (each
// message is a single Write) with a write deadline per message.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/acqserver"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/trace"
)

// gwSession is the per-connection state of one downstream client.
type gwSession struct {
	id   uint64
	gw   *Gateway
	conn net.Conn

	// ver is the negotiated protocol version (v1 until HELLO proves
	// newer); atomic because proxy goroutines frame responses while the
	// read loop may still be negotiating.
	ver atomic.Uint32

	// retriesLeft is the session's remaining sibling-retry budget.
	retriesLeft atomic.Int64

	// inflight bounds concurrently proxied frames (see package comment).
	inflight chan struct{}

	wmu          sync.Mutex // serializes downstream writes
	done         chan struct{}
	teardownOnce func()
}

// newSession registers a downstream connection.
func (g *Gateway) newSession(conn net.Conn) *gwSession {
	sess := &gwSession{
		id:       g.nextSess.Add(1),
		gw:       g,
		conn:     conn,
		inflight: make(chan struct{}, g.cfg.MaxInflight),
		done:     make(chan struct{}),
	}
	sess.ver.Store(acqserver.ProtocolV1)
	sess.retriesLeft.Store(int64(g.cfg.RetryBudget))
	sess.teardownOnce = sync.OnceFunc(func() {
		close(sess.done)
		_ = conn.Close()
		g.m.sessionsActive.Add(-1)
		g.sessMu.Lock()
		delete(g.sessions, sess)
		g.sessMu.Unlock()
		g.log.Info("gw session closed", "session", sess.id, "remote", conn.RemoteAddr().String())
	})
	g.sessMu.Lock()
	g.sessions[sess] = struct{}{}
	g.sessMu.Unlock()
	g.m.sessionsTotal.Inc()
	g.m.sessionsActive.Add(1)
	g.log.Info("gw session opened", "session", sess.id, "remote", conn.RemoteAddr().String())
	return sess
}

// teardown closes the connection; safe to call repeatedly.
func (sess *gwSession) teardown() { sess.teardownOnce() }

// writeMsg writes one downstream message under the session's write
// deadline, framed in the negotiated version.  A write failure tears the
// session down.
func (sess *gwSession) writeMsg(typ acqserver.MsgType, reqID, traceID uint64, payload []byte) bool {
	g := sess.gw
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	select {
	case <-sess.done:
		return false
	default:
	}
	ver := uint8(sess.ver.Load())
	_ = sess.conn.SetWriteDeadline(time.Now().Add(g.cfg.WriteTimeout))
	if err := acqserver.WriteMessageV(sess.conn, ver, typ, reqID, traceID, payload); err != nil {
		sess.teardown()
		return false
	}
	g.m.bytesOut.Add(int64(len(payload)) + 18) // header ≥ 18 bytes; close enough for traffic accounting
	return true
}

// respondError counts and writes a typed ERROR downstream.
func (sess *gwSession) respondError(reqID, traceID uint64, code acqserver.Code, msg string) {
	sess.gw.m.responses[code].Inc()
	sess.writeMsg(acqserver.MsgError, reqID, traceID, acqserver.EncodeError(code, msg))
}

// recordEvent publishes one gateway wide event into the flight recorder:
// the proxied frame's trace identity, serving backend, attempt count and
// outcome, recorded as the response goes downstream.  No-op when no
// recorder is wired; b is nil for frames shed before routing.
func (g *Gateway) recordEvent(sess *gwSession, reqID, traceID uint64, start time.Time, b *backend, attempts uint8, code acqserver.Code, shedReason, detail string) {
	if g.flight == nil {
		return
	}
	ev := flightrec.Event{
		Source:     "gateway",
		TraceID:    flightrec.TraceIDHex(traceID),
		Session:    sess.id,
		ReqID:      reqID,
		Attempts:   attempts,
		Outcome:    code.String(),
		ShedReason: shedReason,
		Detail:     detail,
		Start:      start,
	}
	if b != nil {
		ev.Backend = uint16(b.id + 1) // matches the RESULT routing trailer
		ev.BackendAddr = b.cfg.Addr
	}
	g.flight.Record(ev)
}

// readLoop owns the inbound half: HELLO first, then FRAME/GOODBYE under
// the idle read deadline.
func (sess *gwSession) readLoop() {
	g := sess.gw
	defer g.sessWG.Done()
	defer sess.teardown()
	defer func() {
		if r := recover(); r != nil {
			g.log.Error("gw session panic recovered", "session", sess.id, "panic", fmt.Sprint(r))
			if _, err := g.flight.Dump("panic"); err != nil {
				g.log.Error("flight recorder dump failed", "err", err)
			}
		}
	}()

	sawHello := false
	for {
		_ = sess.conn.SetReadDeadline(time.Now().Add(g.cfg.ReadIdleTimeout))
		h, err := acqserver.ReadHeader(sess.conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				g.m.protocolErrs.Inc()
			}
			return
		}
		if h.PayloadLen > g.cfg.MaxPayloadBytes {
			g.m.protocolErrs.Inc()
			sess.respondError(h.ReqID, h.TraceID, acqserver.CodeTooLarge,
				fmt.Sprintf("payload %d bytes exceeds bound %d", h.PayloadLen, g.cfg.MaxPayloadBytes))
			return // cannot resync across an unbounded payload
		}
		g.m.bytesIn.Add(int64(h.PayloadLen) + 18)

		if !sawHello && h.Type != acqserver.MsgHello {
			g.m.protocolErrs.Inc()
			sess.respondError(h.ReqID, h.TraceID, acqserver.CodeInvalidArgument, "first message must be HELLO")
			return
		}
		switch h.Type {
		case acqserver.MsgHello:
			if !sess.handleHello(h) {
				return
			}
			sawHello = true
		case acqserver.MsgGoodbye:
			return
		case acqserver.MsgFrame:
			if !sess.handleFrame(h) {
				return
			}
		default:
			g.m.protocolErrs.Inc()
			if _, err := io.CopyN(io.Discard, sess.conn, int64(h.PayloadLen)); err != nil {
				return
			}
			sess.respondError(h.ReqID, h.TraceID, acqserver.CodeInvalidArgument,
				fmt.Sprintf("unexpected message type %v", h.Type))
		}
	}
}

// handleHello negotiates the protocol version exactly as the daemon does
// and answers HELLO_OK with the synthesized fleet summary.
func (sess *gwSession) handleHello(h acqserver.Header) bool {
	clientVer := uint8(acqserver.ProtocolV1)
	if h.PayloadLen > 0 {
		buf := make([]byte, h.PayloadLen)
		if _, err := io.ReadFull(sess.conn, buf); err != nil {
			return false
		}
		if buf[0] >= acqserver.ProtocolV1 {
			clientVer = buf[0]
		}
	}
	ver := clientVer
	if ver > acqserver.ProtocolVersion {
		ver = acqserver.ProtocolVersion
	}
	sess.ver.Store(uint32(ver))
	info := sess.gw.serverInfo(ver)
	sess.gw.m.responses[acqserver.CodeOK].Inc()
	return sess.writeMsg(acqserver.MsgHelloOK, h.ReqID, 0, acqserver.EncodeServerInfo(info))
}

// handleFrame reads one FRAME payload whole and hands it to a proxy
// goroutine, blocking first on the in-flight semaphore.  It reports
// whether the connection is still in a consistent state to keep reading.
func (sess *gwSession) handleFrame(h acqserver.Header) bool {
	g := sess.gw
	if h.PayloadLen < 5 { // options prefix
		g.m.protocolErrs.Inc()
		sess.respondError(h.ReqID, h.TraceID, acqserver.CodeInvalidArgument, "FRAME payload too short for options")
		return false
	}
	payload := make([]byte, h.PayloadLen)
	if _, err := io.ReadFull(sess.conn, payload); err != nil {
		return false
	}
	if g.draining.Load() {
		g.m.shed["draining"].Inc()
		g.recordEvent(sess, h.ReqID, h.TraceID, time.Now(), nil, 0,
			acqserver.CodeUnavailable, "draining", "gateway is draining")
		sess.respondError(h.ReqID, h.TraceID, acqserver.CodeUnavailable, "gateway is draining")
		return true
	}
	select {
	case sess.inflight <- struct{}{}:
	case <-sess.done:
		return false
	}
	g.proxyWG.Add(1)
	go func() {
		defer g.proxyWG.Done()
		defer func() { <-sess.inflight }()
		sess.proxy(h.ReqID, h.TraceID, payload)
	}()
	return true
}

// proxy routes one frame: primary backend by consistent hash of the
// session id, one budgeted sibling retry on a shed or failed attempt,
// trace annotation throughout, and the downstream response (with the
// routing trailer on results).
func (sess *gwSession) proxy(reqID, clientTraceID uint64, payload []byte) {
	g := sess.gw
	began := time.Now()
	root := g.tracer.StartTrace("gw_request", clientTraceID)
	traceID := clientTraceID
	if root.Active() {
		traceID = root.TraceID()
		root.SetInt("session", int64(sess.id))
		root.SetInt("req_id", int64(reqID))
		root.SetInt("frame_bytes", int64(len(payload)))
	}
	defer root.End()

	primary, ok := g.pickBackend(sess.id, -1)
	if !ok {
		g.m.shed["no_backend"].Inc()
		root.SetStr("error", "no_backend")
		g.log.Warn("frame shed", "reason", "no_backend", "session", sess.id, "req_id", reqID, "trace_id", traceID)
		g.recordEvent(sess, reqID, traceID, began, nil, 0,
			acqserver.CodeUnavailable, "no_backend", "no ready backend")
		sess.respondError(reqID, traceID, acqserver.CodeUnavailable, "no ready backend")
		return
	}
	resp, err := sess.attempt(root, primary, 1, payload, traceID)

	attempts := uint8(1)
	backendID := primary
	if retryable(resp, err) {
		if sess.retriesLeft.Add(-1) < 0 {
			sess.retriesLeft.Add(1) // budget floor: don't wind below zero
			g.m.retries["budget_exhausted"].Inc()
			root.SetStr("retry", "budget_exhausted")
		} else if sibling, ok := g.pickBackend(sess.id, primary.id); ok {
			root.SetStr("retry", "sibling")
			root.SetStr("retry_from", primary.cfg.Addr)
			root.SetStr("retry_to", sibling.cfg.Addr)
			root.SetStr("retry_reason", attemptOutcome(resp, err))
			resp, err = sess.attempt(root, sibling, 2, payload, traceID)
			attempts, backendID = 2, sibling
			if err == nil && resp.Code == acqserver.CodeOK {
				g.m.retries["ok"].Inc()
			} else {
				g.m.retries["failed"].Inc()
			}
		} else {
			g.m.retries["failed"].Inc()
			root.SetStr("retry", "no_sibling")
		}
	}

	if err != nil {
		root.SetStr("error", err.Error())
		g.log.Warn("upstream failed", "session", sess.id, "req_id", reqID, "trace_id", traceID,
			"backend", backendID.cfg.Addr, "err", err)
		g.recordEvent(sess, reqID, traceID, began, backendID, attempts,
			acqserver.CodeUnavailable, "", err.Error())
		sess.respondError(reqID, traceID, acqserver.CodeUnavailable,
			fmt.Sprintf("backend %s unreachable: %v", backendID.cfg.Addr, err))
		return
	}
	root.SetInt("attempts", int64(attempts))
	root.SetStr("backend", backendID.cfg.Addr)
	if resp.Code != acqserver.CodeOK {
		root.SetStr("error", resp.Code.String())
		g.recordEvent(sess, reqID, traceID, began, backendID, attempts, resp.Code, "", resp.Message)
		sess.respondError(reqID, traceID, resp.Code, resp.Message)
		return
	}
	res := resp.Result
	res.Backend = uint16(backendID.id + 1)
	res.Attempts = attempts
	out, encErr := acqserver.EncodeResult(res)
	if encErr != nil {
		g.recordEvent(sess, reqID, traceID, began, backendID, attempts,
			acqserver.CodeInternal, "", encErr.Error())
		sess.respondError(reqID, traceID, acqserver.CodeInternal, encErr.Error())
		return
	}
	g.recordEvent(sess, reqID, traceID, began, backendID, attempts, acqserver.CodeOK, "", "")
	g.m.responses[acqserver.CodeOK].Inc()
	sess.writeMsg(acqserver.MsgResult, reqID, traceID, out)
}

// attempt proxies the payload to one backend under the upstream timeout,
// recording a gw_upstream span and the per-backend latency histogram.  A
// transport failure discards the pooled connection and marks the backend
// down passively.
func (sess *gwSession) attempt(root trace.Span, b *backend, n int, payload []byte, traceID uint64) (*acqserver.Response, error) {
	g := sess.gw
	span := root.Child("gw_upstream")
	span.SetStr("backend", b.cfg.Addr)
	span.SetInt("attempt", int64(n))
	defer span.End()
	g.m.requests[b.id].Inc()

	c, err := b.pool.get()
	if err != nil {
		span.SetStr("error", "dial: "+err.Error())
		g.markDown(b, err)
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.UpstreamTimeout)
	defer cancel()
	start := time.Now()
	// The upstream wait runs under pprof labels (stage=gw_upstream,
	// backend=addr): continuous CPU profiles attribute proxy-path work to
	// the backend being awaited, the axis cmd/profiledump slices on.
	var resp *acqserver.Response
	pprof.Do(ctx, pprof.Labels("stage", "gw_upstream", "backend", b.cfg.Addr), func(ctx context.Context) {
		resp, err = c.DoPayload(ctx, payload, traceID)
	})
	g.m.upstreamNs[b.id].ObserveExemplar(float64(time.Since(start).Nanoseconds()), traceID)
	if err != nil {
		span.SetStr("error", err.Error())
		b.pool.discard(c)
		g.markDown(b, err)
		return nil, err
	}
	span.SetStr("code", resp.Code.String())
	return resp, nil
}

// retryable reports whether an attempt's outcome should be retried on a
// sibling: transport failures and the daemon's explicit shed codes
// (RESOURCE_EXHAUSTED, UNAVAILABLE).  Deterministic rejections
// (INVALID_ARGUMENT, TOO_LARGE, DEADLINE_EXCEEDED, INTERNAL) would fail
// identically elsewhere and pass through.
func retryable(resp *acqserver.Response, err error) bool {
	if err != nil {
		return true
	}
	return resp.Code == acqserver.CodeResourceExhausted || resp.Code == acqserver.CodeUnavailable
}

// attemptOutcome names a failed attempt for trace annotation.
func attemptOutcome(resp *acqserver.Response, err error) string {
	if err != nil {
		return "transport: " + err.Error()
	}
	return resp.Code.String()
}
