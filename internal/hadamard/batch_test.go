// batch_test.go: property tests pinning the batched decode path to the
// scalar and naive references (bit-identical, not merely close), plus the
// AllocsPerRun guards that gate the zero-steady-state-allocation contract.
package hadamard

import (
	"math/rand"
	"testing"

	"repro/internal/prs"
)

// batchDecoders builds one of each BatchDecoder implementation for the
// canonical order-n m-sequence.
func batchDecoders(t *testing.T, order int) map[string]BatchDecoder {
	t.Helper()
	seq := prs.MustMSequence(order)
	fht, err := NewFHTDecoder(order)
	if err != nil {
		t.Fatal(err)
	}
	std, err := NewStandardDecoder(seq)
	if err != nil {
		t.Fatal(err)
	}
	wiener, err := NewWienerDecoder(seq, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]BatchDecoder{"fht": fht, "standard": std, "wiener": wiener}
}

// randomBlock fills a rows×lanes tile with deterministic noise.
func randomBlock(rng *rand.Rand, rows, lanes int) *ColumnBlock {
	b := NewColumnBlock(rows, lanes)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64() * 500
	}
	return b
}

// column extracts lane l of a block as a contiguous vector.
func column(b *ColumnBlock, l int) []float64 {
	out := make([]float64, b.Rows)
	for r := 0; r < b.Rows; r++ {
		out[r] = b.At(r, l)
	}
	return out
}

// TestDecodeBatchMatchesScalarBitExact is the central property test: for
// every decoder type, every lane of DecodeBatch must equal the scalar
// Decode and DecodeTo outputs bit for bit, across several block widths
// including odd tails (lanes that do not divide the column count) and the
// degenerate single-lane tile.
func TestDecodeBatchMatchesScalarBitExact(t *testing.T) {
	for _, order := range []int{5, 8} {
		n := 1<<order - 1
		rng := rand.New(rand.NewSource(int64(order)))
		for name, dec := range batchDecoders(t, order) {
			for _, lanes := range []int{1, 3, 8, 16, 5} {
				src := randomBlock(rng, n, lanes)
				dst := NewColumnBlock(n, lanes)
				if err := dec.DecodeBatch(dst, src); err != nil {
					t.Fatalf("%s order %d lanes %d: %v", name, order, lanes, err)
				}
				for l := 0; l < lanes; l++ {
					y := column(src, l)
					want, err := dec.Decode(y)
					if err != nil {
						t.Fatal(err)
					}
					to := make([]float64, n)
					if err := dec.DecodeTo(to, y); err != nil {
						t.Fatal(err)
					}
					for r := 0; r < n; r++ {
						got := dst.At(r, l)
						if got != want[r] {
							t.Fatalf("%s order %d lanes %d lane %d row %d: batch %v != scalar %v",
								name, order, lanes, l, r, got, want[r])
						}
						if to[r] != want[r] {
							t.Fatalf("%s order %d lane %d row %d: DecodeTo %v != Decode %v",
								name, order, l, r, to[r], want[r])
						}
					}
				}
			}
		}
	}
}

// TestDecodeBatchMatchesNaive ties the batch path to the O(N²) references:
// the FHT batch output must match StandardDecoder.DecodeNaive (the direct
// simplex inverse) to within float tolerance, and the blocked FWHT kernel
// must be bit-identical to NaiveWHT-free scalar FWHT.
func TestDecodeBatchMatchesNaive(t *testing.T) {
	const order = 6
	n := 1<<order - 1
	seq := prs.MustMSequence(order)
	fht, err := NewFHTDecoder(order)
	if err != nil {
		t.Fatal(err)
	}
	std, err := NewStandardDecoder(seq)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const lanes = 4
	src := randomBlock(rng, n, lanes)
	dst := NewColumnBlock(n, lanes)
	if err := fht.DecodeBatch(dst, src); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < lanes; l++ {
		naive, err := std.DecodeNaive(column(src, l))
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < n; r++ {
			if d := dst.At(r, l) - naive[r]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("lane %d row %d: batch %v vs naive %v", l, r, dst.At(r, l), naive[r])
			}
		}
	}
}

// TestFWHTBlockMatchesScalar checks the blocked butterfly kernel against
// the scalar FWHT lane by lane, bit for bit.
func TestFWHTBlockMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, rows := range []int{2, 8, 64, 512} {
		for _, lanes := range []int{1, 2, 7, 16} {
			tile := make([]float64, rows*lanes)
			for i := range tile {
				tile[i] = rng.NormFloat64()
			}
			want := make([][]float64, lanes)
			for l := 0; l < lanes; l++ {
				col := make([]float64, rows)
				for r := 0; r < rows; r++ {
					col[r] = tile[r*lanes+l]
				}
				if err := FWHT(col); err != nil {
					t.Fatal(err)
				}
				want[l] = col
			}
			if err := fwhtBlock(tile, rows, lanes); err != nil {
				t.Fatal(err)
			}
			for l := 0; l < lanes; l++ {
				for r := 0; r < rows; r++ {
					if tile[r*lanes+l] != want[l][r] {
						t.Fatalf("rows %d lanes %d lane %d row %d mismatch", rows, lanes, l, r)
					}
				}
			}
		}
	}
}

// TestDecodeBatchDimensionErrors exercises the geometry guards.
func TestDecodeBatchDimensionErrors(t *testing.T) {
	fht, err := NewFHTDecoder(5)
	if err != nil {
		t.Fatal(err)
	}
	n := fht.Len()
	good := NewColumnBlock(n, 2)
	if err := fht.DecodeBatch(nil, good); err == nil {
		t.Error("nil dst accepted")
	}
	if err := fht.DecodeBatch(NewColumnBlock(n+1, 2), good); err == nil {
		t.Error("wrong rows accepted")
	}
	if err := fht.DecodeBatch(NewColumnBlock(n, 3), good); err == nil {
		t.Error("lane mismatch accepted")
	}
	if err := fht.DecodeTo(make([]float64, n-1), make([]float64, n)); err == nil {
		t.Error("short dst accepted")
	}
}

// TestBatchDecodeAllocs is the allocation-regression gate for the hot
// path: once warmed, DecodeTo and DecodeBatch must not allocate for any
// decoder type.
func TestBatchDecodeAllocs(t *testing.T) {
	const order = 8
	n := 1<<order - 1
	rng := rand.New(rand.NewSource(3))
	for name, dec := range batchDecoders(t, order) {
		const lanes = 8
		src := randomBlock(rng, n, lanes)
		dst := NewColumnBlock(n, lanes)
		y := column(src, 0)
		x := make([]float64, n)
		// Warm the per-decoder scratch.
		if err := dec.DecodeTo(x, y); err != nil {
			t.Fatal(err)
		}
		if err := dec.DecodeBatch(dst, src); err != nil {
			t.Fatal(err)
		}
		if a := testing.AllocsPerRun(20, func() {
			if err := dec.DecodeTo(x, y); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("%s DecodeTo allocates %g/op", name, a)
		}
		if a := testing.AllocsPerRun(20, func() {
			if err := dec.DecodeBatch(dst, src); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("%s DecodeBatch allocates %g/op", name, a)
		}
	}
}

// TestTilePoolReuse checks the pool recycles backing arrays and reshapes
// on Get.
func TestTilePoolReuse(t *testing.T) {
	var p TilePool
	b := p.Get(16, 4)
	if b.Rows != 16 || b.Lanes != 4 || len(b.Data) != 64 {
		t.Fatalf("bad geometry %d×%d len %d", b.Rows, b.Lanes, len(b.Data))
	}
	b.Data[0] = 42
	p.Put(b)
	c := p.Get(8, 4)
	if c.Rows != 8 || c.Lanes != 4 || len(c.Data) != 32 {
		t.Fatalf("bad reshaped geometry %d×%d len %d", c.Rows, c.Lanes, len(c.Data))
	}
	p.Put(c)
	p.Put(nil) // must not panic
}

func BenchmarkFHTDecodeTo(b *testing.B) {
	d, err := NewFHTDecoder(10)
	if err != nil {
		b.Fatal(err)
	}
	y := make([]float64, d.Len())
	x := make([]float64, d.Len())
	for i := range y {
		y[i] = float64(i % 97)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.DecodeTo(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFHTDecodeBatch reports per-column cost of the blocked kernel;
// compare with BenchmarkFHTDecodeTo for the batching win alone.
func BenchmarkFHTDecodeBatch(b *testing.B) {
	d, err := NewFHTDecoder(10)
	if err != nil {
		b.Fatal(err)
	}
	const lanes = 16
	src := NewColumnBlock(d.Len(), lanes)
	dst := NewColumnBlock(d.Len(), lanes)
	for i := range src.Data {
		src.Data[i] = float64(i % 97)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.DecodeBatch(dst, src); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lanes), "ns/col")
}

func BenchmarkWienerDecodeTo(b *testing.B) {
	seq := prs.MustMSequence(10)
	d, err := NewWienerDecoder(seq, 1e-6)
	if err != nil {
		b.Fatal(err)
	}
	y := make([]float64, d.Len())
	x := make([]float64, d.Len())
	for i := range y {
		y[i] = float64(i % 89)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.DecodeTo(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
