// block.go provides the column-blocked tile machinery behind the batched,
// zero-steady-state-allocation decode path.  A ColumnBlock packs B m/z
// columns ("lanes") of a frame into one row-major tile so the scatter, the
// FWHT butterflies and the gather all run with unit-stride inner loops over
// the lanes: one index computation is amortized over B columns and every
// memory access walks consecutive float64s.  The layout mirrors the
// communication-avoiding blocking of the Xcorr micro-architecture and
// SpecHD designs (PAPERS.md): the order-of-magnitude lives in moving the
// transform over many spectra at once, not in a faster scalar kernel.
package hadamard

import (
	"fmt"
	"sync"
)

// ColumnBlock is a column-blocked tile of frame data: Lanes m/z columns by
// Rows drift bins, stored row-major with lanes contiguous —
// Data[r*Lanes+l] holds row r of column l.  Operations applied row-by-row
// across the block therefore run at unit stride over the lanes.
type ColumnBlock struct {
	Rows  int
	Lanes int
	Data  []float64
}

// NewColumnBlock allocates a zero tile of the given geometry.
func NewColumnBlock(rows, lanes int) *ColumnBlock {
	return &ColumnBlock{Rows: rows, Lanes: lanes, Data: make([]float64, rows*lanes)}
}

// Reset re-shapes the tile for reuse, growing the backing array only when
// the new geometry exceeds its capacity.  The tile contents are
// unspecified afterwards; every consumer in this package fully overwrites
// the rows it reads or writes.
func (b *ColumnBlock) Reset(rows, lanes int) {
	n := rows * lanes
	if cap(b.Data) < n {
		b.Data = make([]float64, n)
	}
	b.Rows, b.Lanes, b.Data = rows, lanes, b.Data[:n]
}

// Row returns the lane-contiguous slice holding row r of every lane.
func (b *ColumnBlock) Row(r int) []float64 {
	return b.Data[r*b.Lanes : (r+1)*b.Lanes]
}

// At returns the value at row r of lane l.
func (b *ColumnBlock) At(r, l int) float64 { return b.Data[r*b.Lanes+l] }

// TilePool recycles ColumnBlocks through a sync.Pool so steady-state batch
// decoding allocates nothing.  Ownership rule: whoever Gets a tile must
// either Put it back exactly once or let it go to the garbage collector;
// a tile must not be used after Put.  Tiles come back with unspecified
// contents (see ColumnBlock.Reset).
type TilePool struct {
	pool sync.Pool
}

// Get returns a tile shaped rows×lanes, reusing a pooled backing array
// when one with enough capacity is available.
func (p *TilePool) Get(rows, lanes int) *ColumnBlock {
	if v := p.pool.Get(); v != nil {
		b := v.(*ColumnBlock)
		b.Reset(rows, lanes)
		return b
	}
	return NewColumnBlock(rows, lanes)
}

// Put returns a tile to the pool.  nil is ignored.
func (p *TilePool) Put(b *ColumnBlock) {
	if b != nil {
		p.pool.Put(b)
	}
}

// BatchDecoder is a Decoder with the allocation-free entry points of the
// batched decode path: DecodeTo reuses per-decoder scratch for one column,
// DecodeBatch runs a whole column-blocked tile.  Implementations carry
// mutable scratch, so a BatchDecoder must not be shared between goroutines
// without external synchronization — create one per worker (the
// pipeline.DecoderFactory contract).
type BatchDecoder interface {
	Decoder
	// DecodeTo decodes waveform y into dst without allocating.  Both
	// slices must have length Len(); dst is fully overwritten.
	DecodeTo(dst, y []float64) error
	// DecodeBatch decodes every lane of src into the matching lane of
	// dst without steady-state allocation.  Both tiles must have
	// Rows == Len() and equal Lanes; dst is fully overwritten.
	DecodeBatch(dst, src *ColumnBlock) error
}

// checkBlockDims validates the tile geometry shared by every DecodeBatch
// implementation.
func checkBlockDims(n int, dst, src *ColumnBlock) error {
	if src == nil || dst == nil {
		return fmt.Errorf("hadamard: nil column block")
	}
	if src.Rows != n || dst.Rows != n {
		return fmt.Errorf("hadamard: block rows %d/%d, want %d", src.Rows, dst.Rows, n)
	}
	if src.Lanes != dst.Lanes {
		return fmt.Errorf("hadamard: block lanes mismatch %d vs %d", src.Lanes, dst.Lanes)
	}
	if src.Lanes < 1 {
		return fmt.Errorf("hadamard: block needs >= 1 lane")
	}
	return nil
}

// columnScratch is the per-decoder lane staging used by the decoders whose
// kernel is inherently one-dimensional (the FFT-based Standard and Wiener
// decoders): each lane is transposed into a contiguous column, decoded
// with DecodeTo, and transposed back.
type columnScratch struct {
	y, x []float64
}

// ensure returns the two length-n staging columns, growing them on first
// use.
func (s *columnScratch) ensure(n int) (y, x []float64) {
	if cap(s.y) < n {
		s.y = make([]float64, n)
		s.x = make([]float64, n)
	}
	return s.y[:n], s.x[:n]
}

// decodeBatchByColumn implements DecodeBatch lane-by-lane through a
// decoder's DecodeTo, for decoders without a blocked kernel.  It performs
// no steady-state allocation.
func decodeBatchByColumn(d BatchDecoder, s *columnScratch, dst, src *ColumnBlock) error {
	n := d.Len()
	if err := checkBlockDims(n, dst, src); err != nil {
		return err
	}
	y, x := s.ensure(n)
	L := src.Lanes
	for l := 0; l < L; l++ {
		for r := 0; r < n; r++ {
			y[r] = src.Data[r*L+l]
		}
		if err := d.DecodeTo(x, y); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			dst.Data[r*L+l] = x[r]
		}
	}
	return nil
}
