// Package hadamard implements the encoding and deconvolution mathematics of
// Hadamard-transform ion mobility spectrometry.
//
// In an HT-IMS experiment the ion gate is driven by a binary pseudorandom
// sequence s of length N.  Ion packets injected at gate bin t arrive at the
// detector d bins later (d = drift time), so over one repeating cycle the
// detected waveform is the circular convolution of the gating sequence with
// the true arrival-time distribution x:
//
//	y[a] = Σ_t s[t] · x[(a−t) mod N] + noise.
//
// Recovering x from y is deconvolution.  Three decoders are provided:
//
//   - FHTDecoder: the exact simplex-matrix inverse evaluated through a fast
//     Walsh–Hadamard transform with LFSR-derived scatter/gather permutations
//     (O(N log N), integer-friendly — the algorithm implemented in the
//     paper's FPGA core).
//   - StandardDecoder: the same exact inverse evaluated through FFT circular
//     correlation, valid for any cyclic rotation of an m-sequence.
//   - WienerDecoder: regularized circulant inversion for arbitrary gating
//     waveforms, including oversampled and defect-modified PNNL sequences
//     whose simplex structure is intentionally broken.
//
// A WeightedDecoder models the historical sample-specific weighting-matrix
// correction that the PNNL modified-sequence scheme was designed to replace.
package hadamard

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/prs"
)

// Encode computes the multiplexed detector waveform for a true arrival
// distribution x gated by sequence s: the circular convolution s ⊛ x.
// len(x) must equal len(s).
func Encode(s prs.Sequence, x []float64) ([]float64, error) {
	if len(s) != len(x) {
		return nil, fmt.Errorf("hadamard: encode length mismatch: sequence %d, signal %d", len(s), len(x))
	}
	return CircularConvolve(s.Floats(), x)
}

// EncodeNaive is Encode by direct O(N^2) summation; reference and ablation
// baseline.
func EncodeNaive(s prs.Sequence, x []float64) ([]float64, error) {
	if len(s) != len(x) {
		return nil, fmt.Errorf("hadamard: encode length mismatch: sequence %d, signal %d", len(s), len(x))
	}
	n := len(s)
	y := make([]float64, n)
	for a := 0; a < n; a++ {
		var acc float64
		for t := 0; t < n; t++ {
			if s[t] != 0 {
				acc += x[(a-t+n)%n]
			}
		}
		y[a] = acc
	}
	return y, nil
}

// Decoder recovers an arrival-time distribution from a multiplexed waveform.
type Decoder interface {
	// Decode returns the deconvolved arrival distribution.  The input is
	// not modified.  Implementations return an error if len(y) does not
	// match the decoder's configured sequence length.
	Decode(y []float64) ([]float64, error)
	// Len returns the waveform length the decoder expects.
	Len() int
}

// StandardDecoder applies the exact simplex inverse
// S⁻¹ = 2/(N+1)·(2 Sᵀ − J) through FFT circular correlation.  It is exact
// for any cyclic rotation of a maximal-length sequence and degrades (becomes
// a biased estimator) for sequences that are not maximal-length.
// The decoder carries an FFT plan and scratch for its allocation-free
// entry points (DecodeTo, DecodeBatch), so it must not be shared between
// goroutines; create one per worker.
type StandardDecoder struct {
	seq   []float64
	n     int
	sumOK bool

	spec []complex128 // FFT of the gating sequence, precomputed
	plan *fftPlan
	cbuf []complex128 // per-decode complex staging
	cols columnScratch
}

// NewStandardDecoder builds a decoder for gating sequence s.  The sequence
// is validated structurally; callers who want the exactness guarantee should
// pass a true m-sequence (see prs.Sequence.IsMaximalLength).
func NewStandardDecoder(s prs.Sequence) (*StandardDecoder, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	seq := s.Floats()
	return &StandardDecoder{
		seq:  seq,
		n:    len(s),
		spec: FFT(realToComplex(seq)),
		plan: newFFTPlan(len(s)),
		cbuf: make([]complex128, len(s)),
	}, nil
}

// Len implements Decoder.
func (d *StandardDecoder) Len() int { return d.n }

// Decode implements Decoder.
//
// With the convolution model y = C·x, C[a][j] = s[(a−j) mod N], the exact
// inverse gives x = 2/(N+1)·(2 Cᵀ y − (Σy)·1), and (Cᵀ y)[j] is the circular
// correlation Σ_i s[i]·y[(i+j) mod N] evaluated via FFT.
func (d *StandardDecoder) Decode(y []float64) ([]float64, error) {
	x := make([]float64, d.n)
	if err := d.DecodeTo(x, y); err != nil {
		return nil, err
	}
	return x, nil
}

// DecodeTo implements BatchDecoder: the same FFT circular correlation as
// Decode evaluated through the decoder's cached FFT plan and complex
// staging buffer, so the steady state allocates nothing.  The result is
// bit-identical to Decode's.
func (d *StandardDecoder) DecodeTo(dst, y []float64) error {
	if len(y) != d.n {
		return fmt.Errorf("hadamard: decode length %d, want %d", len(y), d.n)
	}
	if len(dst) != d.n {
		return fmt.Errorf("hadamard: decode output length %d, want %d", len(dst), d.n)
	}
	buf := d.cbuf
	for i, v := range y {
		buf[i] = complex(v, 0)
	}
	d.plan.transform(buf, false)
	for i := range buf {
		buf[i] = cmplx.Conj(d.spec[i]) * buf[i]
	}
	d.plan.transform(buf, true)
	var sum float64
	for _, v := range y {
		sum += v
	}
	scale := 2 / float64(d.n+1)
	for j := range dst {
		dst[j] = scale * (2*real(buf[j]) - sum)
	}
	return nil
}

// DecodeBatch implements BatchDecoder lane-by-lane: the FFT kernel is
// inherently one-dimensional, so each lane is staged into a contiguous
// column, decoded with DecodeTo, and written back — still with zero
// steady-state allocation.
func (d *StandardDecoder) DecodeBatch(dst, src *ColumnBlock) error {
	return decodeBatchByColumn(d, &d.cols, dst, src)
}

// DecodeNaive evaluates the same inverse by direct O(N^2) matrix arithmetic.
// Reference implementation and ablation baseline (BenchmarkAblationDirectVsFHT).
func (d *StandardDecoder) DecodeNaive(y []float64) ([]float64, error) {
	if len(y) != d.n {
		return nil, fmt.Errorf("hadamard: decode length %d, want %d", len(y), d.n)
	}
	n := d.n
	var sum float64
	for _, v := range y {
		sum += v
	}
	scale := 2 / float64(n+1)
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		var corr float64
		for i := 0; i < n; i++ {
			corr += d.seq[i] * y[(i+j)%n]
		}
		x[j] = scale * (2*corr - sum)
	}
	return x, nil
}

// WienerDecoder inverts the circulant system y = s ⊛ x in the Fourier domain
// with Tikhonov regularization:
//
//	X(f) = conj(S(f))·Y(f) / (|S(f)|² + λ)
//
// It accepts arbitrary gating waveforms — in particular the oversampled and
// defect-modified PNNL sequences, whose Fourier spectra contain near-zero
// (oversampled) or small (modified) components that the exact simplex
// inverse cannot handle.  λ = 0 yields exact inversion when the spectrum has
// no zeros.
// The decoder carries an FFT plan and scratch for its allocation-free
// entry points (DecodeTo, DecodeBatch), so it must not be shared between
// goroutines; create one per worker.
type WienerDecoder struct {
	spec   []complex128 // FFT of the gating waveform
	n      int
	lambda float64

	plan *fftPlan
	cbuf []complex128 // per-decode complex staging
	cols columnScratch
}

// NewWienerDecoder builds a regularized circulant decoder for gating
// sequence s with regularization λ ≥ 0.
func NewWienerDecoder(s prs.Sequence, lambda float64) (*WienerDecoder, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return NewWienerDecoderWaveform(s.Floats(), lambda)
}

// NewWienerDecoderWaveform builds the decoder for an arbitrary real
// modulation waveform — the instrument's actual per-bin injection weights
// rather than the ideal binary sequence.  Decoding against the true
// modulation removes the systematic artifacts that gate imperfections and
// trap-accumulation weighting otherwise imprint on the recovered
// distribution (the enhancement at the heart of the PNNL scheme).
func NewWienerDecoderWaveform(w []float64, lambda float64) (*WienerDecoder, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("hadamard: empty modulation waveform")
	}
	var sum float64
	for _, v := range w {
		if v < 0 {
			return nil, fmt.Errorf("hadamard: negative modulation weight %g", v)
		}
		sum += v
	}
	if sum == 0 {
		return nil, fmt.Errorf("hadamard: all-zero modulation waveform")
	}
	if lambda < 0 {
		return nil, fmt.Errorf("hadamard: negative regularization %g", lambda)
	}
	return &WienerDecoder{
		spec:   FFT(realToComplex(w)),
		n:      len(w),
		lambda: lambda,
		plan:   newFFTPlan(len(w)),
		cbuf:   make([]complex128, len(w)),
	}, nil
}

// Len implements Decoder.
func (d *WienerDecoder) Len() int { return d.n }

// Decode implements Decoder.  It is a thin allocating wrapper over
// DecodeTo and shares the decoder's scratch.
func (d *WienerDecoder) Decode(y []float64) ([]float64, error) {
	x := make([]float64, d.n)
	if err := d.DecodeTo(x, y); err != nil {
		return nil, err
	}
	return x, nil
}

// DecodeTo implements BatchDecoder: the regularized spectral division of
// Decode evaluated through the decoder's cached FFT plan and complex
// staging buffer — the forward transform, the per-bin division and the
// inverse transform all reuse per-decoder scratch, eliminating the three
// complex slices the allocating path built per call.  The result is
// bit-identical to Decode's.
func (d *WienerDecoder) DecodeTo(dst, y []float64) error {
	if len(y) != d.n {
		return fmt.Errorf("hadamard: decode length %d, want %d", len(y), d.n)
	}
	if len(dst) != d.n {
		return fmt.Errorf("hadamard: decode output length %d, want %d", len(dst), d.n)
	}
	buf := d.cbuf
	for i, v := range y {
		buf[i] = complex(v, 0)
	}
	d.plan.transform(buf, false)
	for f := range buf {
		s := d.spec[f]
		denom := real(s)*real(s) + imag(s)*imag(s) + d.lambda
		buf[f] = cmplx.Conj(s) * buf[f] / complex(denom, 0)
	}
	d.plan.transform(buf, true)
	for i, v := range buf {
		dst[i] = real(v)
	}
	return nil
}

// DecodeBatch implements BatchDecoder lane-by-lane through DecodeTo (the
// FFT kernel is one-dimensional), with zero steady-state allocation.
func (d *WienerDecoder) DecodeBatch(dst, src *ColumnBlock) error {
	return decodeBatchByColumn(d, &d.cols, dst, src)
}

// MinModulation returns the smallest Fourier magnitude of the gating
// waveform (excluding DC).  It measures the conditioning of the circulant
// system: 0 means non-invertible (plain oversampled sequences), and larger
// is better.  The defect modification exists precisely to lift this value.
func (d *WienerDecoder) MinModulation() float64 {
	min := math.Inf(1)
	for f := 1; f < d.n; f++ {
		m := cmplx.Abs(d.spec[f])
		if m < min {
			min = m
		}
	}
	if d.n <= 1 {
		return 0
	}
	return min
}

// ConditionNumber returns max|S(f)| / min|S(f)| over non-DC bins, +Inf if
// the spectrum has a zero.
func (d *WienerDecoder) ConditionNumber() float64 {
	min, max := math.Inf(1), 0.0
	for f := 1; f < d.n; f++ {
		m := cmplx.Abs(d.spec[f])
		if m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	if min == 0 {
		return math.Inf(1)
	}
	return max / min
}

// WeightedDecoder wraps a base decoder with the sample-specific per-bin
// weighting-matrix correction used before the modified-sequence scheme: a
// calibration run with a known analyte distribution produces multiplicative
// weights that compensate systematic gate non-ideality.  Its weakness —
// faithfully reproduced here — is that the weights are only valid for
// arrival distributions resembling the calibrant.
type WeightedDecoder struct {
	base    Decoder
	weights []float64
}

// NewWeightedDecoder wraps base with initially unit weights.
func NewWeightedDecoder(base Decoder) *WeightedDecoder {
	w := make([]float64, base.Len())
	for i := range w {
		w[i] = 1
	}
	return &WeightedDecoder{base: base, weights: w}
}

// Calibrate derives weights from a calibration pair: a known true
// distribution xTrue and the observed multiplexed waveform yObs.  Bins where
// the base decoder output is ≤ floor (relative to the max) keep weight 1 to
// avoid amplifying noise.
func (w *WeightedDecoder) Calibrate(xTrue, yObs []float64, floor float64) error {
	if len(xTrue) != w.base.Len() || len(yObs) != w.base.Len() {
		return fmt.Errorf("hadamard: calibrate length mismatch")
	}
	dec, err := w.base.Decode(yObs)
	if err != nil {
		return err
	}
	peak := 0.0
	for _, v := range dec {
		if v > peak {
			peak = v
		}
	}
	thresh := peak * floor
	for i := range w.weights {
		if dec[i] > thresh && dec[i] != 0 {
			w.weights[i] = xTrue[i] / dec[i]
		} else {
			w.weights[i] = 1
		}
	}
	return nil
}

// Weights returns a copy of the current calibration weights.
func (w *WeightedDecoder) Weights() []float64 {
	out := make([]float64, len(w.weights))
	copy(out, w.weights)
	return out
}

// Len implements Decoder.
func (w *WeightedDecoder) Len() int { return w.base.Len() }

// Decode implements Decoder.
func (w *WeightedDecoder) Decode(y []float64) ([]float64, error) {
	x, err := w.base.Decode(y)
	if err != nil {
		return nil, err
	}
	for i := range x {
		x[i] *= w.weights[i]
	}
	return x, nil
}

// ReconstructionError returns the root-mean-square difference between a
// decoded distribution and the ground truth, normalized by the RMS of the
// truth (so 0 is perfect and 1 means errors as large as the signal).
func ReconstructionError(got, want []float64) (float64, error) {
	if len(got) != len(want) {
		return 0, fmt.Errorf("hadamard: reconstruction error length mismatch %d vs %d", len(got), len(want))
	}
	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		if num == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return math.Sqrt(num / den), nil
}
