package hadamard

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/prs"
)

func randSignal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 100
	}
	return x
}

func floatsClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestEncodeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, order := range []int{4, 6, 8} {
		s := prs.MustMSequence(order)
		x := randSignal(rng, len(s))
		fast, err := Encode(s, x)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := EncodeNaive(s, x)
		if err != nil {
			t.Fatal(err)
		}
		if !floatsClose(fast, slow, 1e-6) {
			t.Errorf("order %d: FFT encode does not match naive encode", order)
		}
	}
}

func TestEncodeLengthMismatch(t *testing.T) {
	s := prs.MustMSequence(4)
	if _, err := Encode(s, make([]float64, 3)); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := EncodeNaive(s, make([]float64, 3)); err == nil {
		t.Error("expected length mismatch error")
	}
}

// TestStandardDecoderRoundTrip: decode(encode(x)) == x exactly (to float
// precision) for m-sequences — the core guarantee of HT-IMS.
func TestStandardDecoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, order := range []int{3, 5, 7, 9} {
		s := prs.MustMSequence(order)
		d, err := NewStandardDecoder(s)
		if err != nil {
			t.Fatal(err)
		}
		x := randSignal(rng, len(s))
		y, _ := Encode(s, x)
		got, err := d.Decode(y)
		if err != nil {
			t.Fatal(err)
		}
		if !floatsClose(got, x, 1e-6) {
			t.Errorf("order %d: standard decode round trip failed", order)
		}
	}
}

// TestStandardDecoderRotatedSequence: the closed-form inverse is valid for
// any cyclic rotation of an m-sequence.
func TestStandardDecoderRotatedSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := prs.MustMSequence(6).Rotate(17)
	d, err := NewStandardDecoder(s)
	if err != nil {
		t.Fatal(err)
	}
	x := randSignal(rng, len(s))
	y, _ := Encode(s, x)
	got, _ := d.Decode(y)
	if !floatsClose(got, x, 1e-6) {
		t.Error("rotated m-sequence round trip failed")
	}
}

func TestStandardDecoderNaiveMatchesFast(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := prs.MustMSequence(6)
	d, _ := NewStandardDecoder(s)
	y := randSignal(rng, len(s))
	fast, _ := d.Decode(y)
	slow, _ := d.DecodeNaive(y)
	if !floatsClose(fast, slow, 1e-6) {
		t.Error("naive decode does not match FFT decode")
	}
}

func TestStandardDecoderRejectsBadInput(t *testing.T) {
	s := prs.MustMSequence(4)
	d, _ := NewStandardDecoder(s)
	if _, err := d.Decode(make([]float64, 3)); err == nil {
		t.Error("expected length error")
	}
	if _, err := d.DecodeNaive(make([]float64, 3)); err == nil {
		t.Error("expected length error")
	}
	if _, err := NewStandardDecoder(prs.Sequence{0, 0, 0}); err == nil {
		t.Error("expected invalid-sequence error")
	}
}

// TestFHTDecoderMatchesStandard: the FWHT-permutation decoder computes the
// identical exact inverse.
func TestFHTDecoderMatchesStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, order := range []int{3, 4, 5, 6, 7, 8, 9, 10, 11, 12} {
		s := prs.MustMSequence(order)
		std, _ := NewStandardDecoder(s)
		fht, err := NewFHTDecoder(order)
		if err != nil {
			t.Fatal(err)
		}
		if fht.Len() != len(s) || fht.Order() != order {
			t.Fatalf("order %d: decoder geometry wrong", order)
		}
		y := randSignal(rng, len(s))
		a, _ := std.Decode(y)
		b, err := fht.Decode(y)
		if err != nil {
			t.Fatal(err)
		}
		if !floatsClose(a, b, 1e-6) {
			t.Errorf("order %d: FHT decode disagrees with standard decode", order)
		}
	}
}

func TestFHTDecoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	order := 8
	s := prs.MustMSequence(order)
	d, _ := NewFHTDecoder(order)
	x := randSignal(rng, len(s))
	y, _ := Encode(s, x)
	got, _ := d.Decode(y)
	if !floatsClose(got, x, 1e-6) {
		t.Error("FHT decoder round trip failed")
	}
}

func TestFHTDecoderRejects(t *testing.T) {
	if _, err := NewFHTDecoder(1); err == nil {
		t.Error("order 1 should be rejected")
	}
	d, _ := NewFHTDecoder(5)
	if _, err := d.Decode(make([]float64, 30)); err == nil {
		t.Error("expected length error")
	}
}

func TestFHTDecoderPermutationsAreCopies(t *testing.T) {
	d, _ := NewFHTDecoder(5)
	s1, g1 := d.Permutations()
	s1[0] = -999
	g1[0] = -999
	s2, g2 := d.Permutations()
	if s2[0] == -999 || g2[0] == -999 {
		t.Error("Permutations must return copies")
	}
	if d.Scale() >= 0 {
		t.Error("scale must be negative (-2/(N+1))")
	}
}

// TestWienerDecoderExactForMSequence: with λ=0 and a true m-sequence the
// Wiener decoder is an exact inverse.
func TestWienerDecoderExactForMSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	s := prs.MustMSequence(7)
	d, err := NewWienerDecoder(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := randSignal(rng, len(s))
	y, _ := Encode(s, x)
	got, _ := d.Decode(y)
	if !floatsClose(got, x, 1e-6) {
		t.Error("Wiener λ=0 round trip failed for m-sequence")
	}
}

// TestWienerDecoderHandlesModifiedSequence: the defect-modified oversampled
// sequence is not an m-sequence, the simplex inverse is wrong for it, but
// the regularized circulant inverse still recovers the signal.
func TestWienerDecoderHandlesModifiedSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := prs.MustMSequence(6).Oversample(3).Modify(1)
	d, err := NewWienerDecoder(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.MinModulation() <= 0 {
		t.Fatal("modified sequence should have an invertible spectrum")
	}
	x := randSignal(rng, len(s))
	y, _ := Encode(s, x)
	got, _ := d.Decode(y)
	if !floatsClose(got, x, 1e-5) {
		t.Error("Wiener decode failed on modified sequence")
	}
}

// TestOversampledSequenceIsSingular: plain oversampling introduces exact
// Fourier zeros — the reason the PNNL defect modification exists.
func TestOversampledSequenceIsSingular(t *testing.T) {
	s := prs.MustMSequence(6).Oversample(2)
	d, err := NewWienerDecoder(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mm := d.MinModulation(); mm > 1e-9 {
		t.Errorf("oversampled sequence min modulation = %g, want ~0 (singular)", mm)
	}
	if d.ConditionNumber() < 1e9 {
		t.Errorf("oversampled sequence condition number %g, want effectively singular (>= 1e9)", d.ConditionNumber())
	}
	// The defect modification must repair the conditioning.
	mod := prs.MustMSequence(6).Oversample(2).Modify(1)
	dm, _ := NewWienerDecoder(mod, 0)
	if dm.MinModulation() <= 1e-9 {
		t.Error("defect modification failed to remove spectral zeros")
	}
}

func TestWienerDecoderRejects(t *testing.T) {
	if _, err := NewWienerDecoder(prs.Sequence{1, 1, 1}, 0); err == nil {
		t.Error("constant sequence should be rejected")
	}
	if _, err := NewWienerDecoder(prs.MustMSequence(4), -1); err == nil {
		t.Error("negative lambda should be rejected")
	}
	d, _ := NewWienerDecoder(prs.MustMSequence(4), 0)
	if _, err := d.Decode(make([]float64, 3)); err == nil {
		t.Error("expected length error")
	}
}

// TestWienerRegularizationShrinks: λ>0 attenuates output relative to exact
// inversion (bias-variance trade).
func TestWienerRegularizationShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	s := prs.MustMSequence(6)
	x := randSignal(rng, len(s))
	y, _ := Encode(s, x)
	exact, _ := NewWienerDecoder(s, 0)
	reg, _ := NewWienerDecoder(s, 100)
	xe, _ := exact.Decode(y)
	xr, _ := reg.Decode(y)
	var ee, er float64
	for i := range xe {
		ee += xe[i] * xe[i]
		er += xr[i] * xr[i]
	}
	if er >= ee {
		t.Errorf("regularized energy %g not below exact energy %g", er, ee)
	}
}

func TestWeightedDecoder(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	s := prs.MustMSequence(6)
	base, _ := NewStandardDecoder(s)
	w := NewWeightedDecoder(base)
	if w.Len() != len(s) {
		t.Fatal("weighted decoder length mismatch")
	}
	// Uncalibrated: identity weights.
	x := randSignal(rng, len(s))
	y, _ := Encode(s, x)
	got, err := w.Decode(y)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := base.Decode(y)
	if !floatsClose(got, ref, 1e-9) {
		t.Error("uncalibrated weighted decoder should match base")
	}
	// Simulate a systematic per-bin gain error the base decoder cannot see:
	// the "instrument" attenuates the decoded estimate by a smooth factor.
	distort := func(v []float64) []float64 {
		out := make([]float64, len(v))
		for i := range v {
			out[i] = v[i] * (0.5 + 0.4*math.Sin(float64(i)/7))
		}
		return out
	}
	yObs, _ := Encode(s, distort(x))
	if err := w.Calibrate(x, yObs, 0.01); err != nil {
		t.Fatal(err)
	}
	got, _ = w.Decode(yObs)
	if e, _ := ReconstructionError(got, x); e > 0.05 {
		t.Errorf("calibrated weighted decode error %g, want < 0.05", e)
	}
	ws := w.Weights()
	ws[0] = 1e9
	if w.Weights()[0] == 1e9 {
		t.Error("Weights must return a copy")
	}
}

func TestWeightedDecoderCalibrateErrors(t *testing.T) {
	s := prs.MustMSequence(4)
	base, _ := NewStandardDecoder(s)
	w := NewWeightedDecoder(base)
	if err := w.Calibrate(make([]float64, 3), make([]float64, 3), 0.1); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestReconstructionError(t *testing.T) {
	e, err := ReconstructionError([]float64{1, 2}, []float64{1, 2})
	if err != nil || e != 0 {
		t.Errorf("identical vectors: error %g, %v", e, err)
	}
	e, _ = ReconstructionError([]float64{2, 4}, []float64{1, 2})
	if math.Abs(e-1) > 1e-12 {
		t.Errorf("doubled vector: error %g, want 1", e)
	}
	if _, err := ReconstructionError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
	e, _ = ReconstructionError([]float64{0, 0}, []float64{0, 0})
	if e != 0 {
		t.Errorf("zero vs zero: error %g, want 0", e)
	}
	e, _ = ReconstructionError([]float64{1, 0}, []float64{0, 0})
	if !math.IsInf(e, 1) {
		t.Errorf("nonzero vs zero truth: error %g, want +Inf", e)
	}
}

// Property: decoding is linear — decode(a·y1 + y2) == a·decode(y1) + decode(y2).
func TestDecodeLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	s := prs.MustMSequence(6)
	d, _ := NewStandardDecoder(s)
	f := func(scale uint8) bool {
		a := float64(scale%16) + 1
		y1 := randSignal(rng, len(s))
		y2 := randSignal(rng, len(s))
		mix := make([]float64, len(s))
		for i := range mix {
			mix[i] = a*y1[i] + y2[i]
		}
		lhs, _ := d.Decode(mix)
		x1, _ := d.Decode(y1)
		x2, _ := d.Decode(y2)
		for i := range lhs {
			if math.Abs(lhs[i]-(a*x1[i]+x2[i])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: FWHT is an involution up to N.
func TestFWHTInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := randSignal(rng, n)
		orig := make([]float64, n)
		copy(orig, x)
		if err := FWHT(x); err != nil {
			t.Fatal(err)
		}
		if err := InverseFWHT(x); err != nil {
			t.Fatal(err)
		}
		if !floatsClose(x, orig, 1e-9) {
			t.Errorf("n=%d: InverseFWHT(FWHT(x)) != x", n)
		}
	}
}

func TestFWHTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randSignal(rng, 32)
	want, err := NaiveWHT(x)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(x))
	copy(got, x)
	if err := FWHT(got); err != nil {
		t.Fatal(err)
	}
	if !floatsClose(got, want, 1e-9) {
		t.Error("FWHT does not match naive WHT")
	}
}

func TestFWHTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FWHT(make([]float64, 31)); err == nil {
		t.Error("expected error for length 31")
	}
	if _, err := NaiveWHT(make([]float64, 31)); err == nil {
		t.Error("expected error for length 31")
	}
	if err := FWHT(nil); err != nil {
		t.Error("FWHT(nil) should be a no-op")
	}
}

// The multiplexing advantage in one test: with additive detector noise of
// fixed variance per bin, the multiplexed measurement yields a lower-error
// reconstruction than a single-pulse measurement of the same total duration.
func TestMultiplexingAdvantageUnderDetectorNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	order := 8
	s := prs.MustMSequence(order)
	n := len(s)
	x := make([]float64, n)
	x[40] = 1000 // single narrow arrival peak
	noiseSD := 5.0

	d, _ := NewStandardDecoder(s)
	trials := 50
	var errMP, errSA float64
	for trial := 0; trial < trials; trial++ {
		// Multiplexed: one cycle of N bins, (N+1)/2 pulses.
		y, _ := Encode(s, x)
		for i := range y {
			y[i] += rng.NormFloat64() * noiseSD
		}
		xm, _ := d.Decode(y)
		e1, _ := ReconstructionError(xm, x)
		errMP += e1
		// Signal averaging: one pulse per cycle, same per-bin noise, same
		// number of cycles (1): signal recorded directly.
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = x[i] + rng.NormFloat64()*noiseSD
		}
		e2, _ := ReconstructionError(ys, x)
		errSA += e2
	}
	if errMP >= errSA {
		t.Errorf("multiplexed error %g should beat single-pulse error %g under detector-limited noise", errMP/float64(trials), errSA/float64(trials))
	}
}

func BenchmarkStandardDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	s := prs.MustMSequence(10)
	d, _ := NewStandardDecoder(s)
	y := randSignal(rng, len(s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFHTDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	d, _ := NewFHTDecoder(10)
	y := randSignal(rng, d.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(26))
	s := prs.MustMSequence(10)
	d, _ := NewStandardDecoder(s)
	y := randSignal(rng, len(s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeNaive(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWienerDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(27))
	s := prs.MustMSequence(9).Oversample(2).Modify(1)
	d, _ := NewWienerDecoder(s, 1e-3)
	y := randSignal(rng, len(s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(y); err != nil {
			b.Fatal(err)
		}
	}
}
