// fft.go implements the discrete Fourier transform machinery that backs the
// fast circulant solvers in this package.  Sequence lengths in HT-IMS are
// 2^n − 1 (odd), so a power-of-two radix-2 transform alone is insufficient;
// arbitrary lengths are handled with Bluestein's chirp-z algorithm, which
// reduces a length-N DFT to a circular convolution of length ≥ 2N−1 that is
// evaluated with the radix-2 transform.
package hadamard

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// fftRadix2 computes the in-place DFT of x, whose length must be a power of
// two.  If inverse is true the inverse transform is computed, including the
// 1/N normalization.
func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("hadamard: fftRadix2 length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// FFT returns the length-N discrete Fourier transform of x for any N ≥ 1,
// using radix-2 when N is a power of two and Bluestein's algorithm otherwise.
// The input is not modified.
func FFT(x []complex128) []complex128 {
	return dft(x, false)
}

// IFFT returns the inverse DFT of x (normalized by 1/N).  The input is not
// modified.
func IFFT(x []complex128) []complex128 {
	return dft(x, true)
}

func dft(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n == 0 {
		return out
	}
	if n&(n-1) == 0 {
		fftRadix2(out, inverse)
		return out
	}
	bluestein(out, inverse)
	return out
}

// bluestein computes the in-place DFT of x of arbitrary length via the
// chirp-z transform.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n).  k^2 mod 2n keeps the argument
	// bounded and exact for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		k2 := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(k2)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	// b must be symmetric: b[m-k] = b[k] for the circular convolution to
	// realize the linear chirp correlation.
	for k := 1; k < n; k++ {
		b[m-k] = b[k]
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	for k := 0; k < n; k++ {
		x[k] = a[k] * chirp[k]
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for k := range x {
			x[k] *= inv
		}
	}
}

// fftPlan caches the chirp tables and scratch for repeated same-length
// DFTs so the steady state allocates nothing.  For power-of-two lengths
// the transform is the in-place radix-2 kernel directly; otherwise the
// plan holds the Bluestein machinery (forward and inverse chirps and the
// pre-transformed symmetric kernels).  The arithmetic sequence is
// identical to FFT/IFFT, so planned transforms are bit-identical to the
// allocating ones.  A plan carries mutable scratch and must not be shared
// between goroutines.
type fftPlan struct {
	n int
	// Bluestein state; m == 0 selects the pure radix-2 path.
	m      int
	chirpF []complex128 // exp(−iπk²/n)
	chirpI []complex128 // exp(+iπk²/n)
	fbF    []complex128 // FFT of the symmetric conj-chirp kernel, forward
	fbI    []complex128 // same for the inverse chirp
	a      []complex128 // length-m convolution scratch
}

// newFFTPlan builds the plan for length-n transforms.
func newFFTPlan(n int) *fftPlan {
	p := &fftPlan{n: n}
	if n == 0 || n&(n-1) == 0 {
		return p
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.m = m
	p.a = make([]complex128, m)
	p.chirpF, p.fbF = bluesteinTables(n, m, false)
	p.chirpI, p.fbI = bluesteinTables(n, m, true)
	return p
}

// bluesteinTables precomputes the chirp and the FFT of its symmetric
// conjugate kernel for one transform direction, exactly as bluestein
// builds them per call.
func bluesteinTables(n, m int, inverse bool) (chirp, fb []complex128) {
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		k2 := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(k2)/float64(n)))
	}
	fb = make([]complex128, m)
	for k := 0; k < n; k++ {
		fb[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		fb[m-k] = fb[k]
	}
	fftRadix2(fb, false)
	return chirp, fb
}

// transform runs the in-place length-n DFT of x through the plan's cached
// machinery, allocating nothing.
func (p *fftPlan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("hadamard: fftPlan length %d, want %d", len(x), p.n))
	}
	if p.m == 0 {
		fftRadix2(x, inverse)
		return
	}
	chirp, fb := p.chirpF, p.fbF
	if inverse {
		chirp, fb = p.chirpI, p.fbI
	}
	a := p.a
	for i := range a {
		a[i] = 0
	}
	for k := 0; k < p.n; k++ {
		a[k] = x[k] * chirp[k]
	}
	fftRadix2(a, false)
	for i := range a {
		a[i] *= fb[i]
	}
	fftRadix2(a, true)
	for k := 0; k < p.n; k++ {
		x[k] = a[k] * chirp[k]
	}
	if inverse {
		inv := complex(1/float64(p.n), 0)
		for k := range x {
			x[k] *= inv
		}
	}
}

// CircularConvolve returns the cyclic convolution of two equal-length real
// vectors: out[i] = sum_j a[j] * b[(i-j) mod N].
func CircularConvolve(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("hadamard: convolve length mismatch %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return nil, nil
	}
	fa := realToComplex(a)
	fb := realToComplex(b)
	Fa := FFT(fa)
	Fb := FFT(fb)
	for i := range Fa {
		Fa[i] *= Fb[i]
	}
	return complexToReal(IFFT(Fa)), nil
}

// CircularCorrelate returns the cyclic cross-correlation
// out[i] = sum_j a[j] * b[(j+i) mod N], the operation performed when a
// multiplexed arrival-time waveform is decoded against the gating sequence.
func CircularCorrelate(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("hadamard: correlate length mismatch %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return nil, nil
	}
	Fa := FFT(realToComplex(a))
	Fb := FFT(realToComplex(b))
	for i := range Fa {
		Fa[i] = cmplx.Conj(Fa[i]) * Fb[i]
	}
	return complexToReal(IFFT(Fa)), nil
}

func realToComplex(x []float64) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	return out
}

func complexToReal(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = real(v)
	}
	return out
}

// NaiveDFT computes the DFT by direct O(N^2) summation.  It exists as a
// reference implementation for tests and ablation benchmarks.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			acc += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = acc
	}
	return out
}
