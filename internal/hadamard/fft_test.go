package hadamard

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const fftTol = 1e-9

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(real(a[i])-real(b[i])) > tol || math.Abs(imag(a[i])-imag(b[i])) > tol {
			return false
		}
	}
	return true
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFTPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randComplex(rng, n)
		got := FFT(x)
		want := NaiveDFT(x)
		if !complexClose(got, want, 1e-7) {
			t.Errorf("n=%d: FFT does not match naive DFT", n)
		}
	}
}

// TestFFTMatchesNaiveDFTOddLengths exercises the Bluestein path with the
// 2^n−1 lengths used by HT-IMS, plus assorted awkward sizes.
func TestFFTMatchesNaiveDFTOddLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 7, 15, 31, 63, 127, 6, 12, 100, 255} {
		x := randComplex(rng, n)
		got := FFT(x)
		want := NaiveDFT(x)
		if !complexClose(got, want, 1e-6) {
			t.Errorf("n=%d: FFT does not match naive DFT (Bluestein path)", n)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 8, 31, 100, 127, 511} {
		x := randComplex(rng, n)
		back := IFFT(FFT(x))
		if !complexClose(back, x, fftTol*float64(n)) {
			t.Errorf("n=%d: IFFT(FFT(x)) != x", n)
		}
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randComplex(rng, 31)
	orig := make([]complex128, len(x))
	copy(orig, x)
	FFT(x)
	IFFT(x)
	if !complexClose(x, orig, 0) {
		t.Error("FFT or IFFT modified its input")
	}
}

func TestFFTEmpty(t *testing.T) {
	if out := FFT(nil); len(out) != 0 {
		t.Error("FFT(nil) should be empty")
	}
	if out := IFFT([]complex128{}); len(out) != 0 {
		t.Error("IFFT(empty) should be empty")
	}
}

// TestFFTLinearity is a property-based check: FFT(a·x + b·z) == a·FFT(x) + b·FFT(z).
func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(aRe, aIm, bRe, bIm float64) bool {
		// Constrain magnitudes so the tolerance stays meaningful.
		a := complex(math.Mod(aRe, 10), math.Mod(aIm, 10))
		b := complex(math.Mod(bRe, 10), math.Mod(bIm, 10))
		n := 31
		x := randComplex(rng, n)
		z := randComplex(rng, n)
		mix := make([]complex128, n)
		for i := range mix {
			mix[i] = a*x[i] + b*z[i]
		}
		lhs := FFT(mix)
		fx, fz := FFT(x), FFT(z)
		rhs := make([]complex128, n)
		for i := range rhs {
			rhs[i] = a*fx[i] + b*fz[i]
		}
		return complexClose(lhs, rhs, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestFFTParseval: energy is preserved up to the 1/N convention.
func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{8, 31, 127} {
		x := randComplex(rng, n)
		X := FFT(x)
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		if math.Abs(ef-float64(n)*et) > 1e-6*ef {
			t.Errorf("n=%d: Parseval violated: freq energy %g, want %g", n, ef, float64(n)*et)
		}
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	x := make([]complex128, 31)
	x[0] = 1
	X := FFT(x)
	for i, v := range X {
		if math.Abs(real(v)-1) > fftTol || math.Abs(imag(v)) > fftTol {
			t.Fatalf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}
}

func TestCircularConvolve(t *testing.T) {
	a := []float64{1, 2, 0, 1}
	b := []float64{3, 0, 1, 0}
	// out[i] = sum_j a[j] b[(i-j) mod 4]
	want := []float64{1*3 + 2*0 + 0*1 + 1*0, 2*3 + 1*0 + 1*1 + 0*0, 1*1 + 2*0 + 0*3 + 1*0, 1*3 + 0*0 + 2*1 + 1*0}
	got, err := CircularConvolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestCircularConvolveCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 31
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i], b[i] = rng.Float64(), rng.Float64()
	}
	ab, _ := CircularConvolve(a, b)
	ba, _ := CircularConvolve(b, a)
	for i := range ab {
		if math.Abs(ab[i]-ba[i]) > 1e-9 {
			t.Fatalf("convolution not commutative at %d", i)
		}
	}
}

func TestCircularCorrelate(t *testing.T) {
	a := []float64{1, 0, 2}
	b := []float64{4, 5, 6}
	// out[i] = sum_j a[j] b[(j+i) mod 3]
	want := []float64{1*4 + 0*5 + 2*6, 1*5 + 0*6 + 2*4, 1*6 + 0*4 + 2*5}
	got, err := CircularCorrelate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("corr[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestConvolveLengthMismatch(t *testing.T) {
	if _, err := CircularConvolve([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := CircularCorrelate([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestConvolveEmpty(t *testing.T) {
	out, err := CircularConvolve(nil, nil)
	if err != nil || out != nil {
		t.Errorf("empty convolve: got %v, %v", out, err)
	}
}

func BenchmarkFFTPow2(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randComplex(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randComplex(rng, 1023) // 2^10 - 1: the HT-IMS case
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
