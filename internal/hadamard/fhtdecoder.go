// fhtdecoder.go implements the exact simplex-matrix inverse through a fast
// Walsh–Hadamard transform with LFSR-derived permutations.  This is the
// deconvolution algorithm realized by the FPGA component of the paper's
// hybrid application: a scatter permutation, an in-place FWHT butterfly
// network, and a gather permutation — all integer-friendly and free of
// multiplications except the final scale.
//
// Derivation.  Let the m-sequence be s[t] = e·(Aᵗ·state₀) over GF(2)ⁿ, where
// A is the LFSR update matrix, state₀ the seed, and e the output-bit
// selector.  Then s[i+j] = uᵢ·vⱼ with uᵢ = (Aᵀ)ⁱe and vⱼ = Aʲ·state₀, so the
// simplex matrix S[i][j] = s[i+j] embeds into the natural-order Hadamard
// matrix H[2ⁿ]: (−1)^(uᵢ·vⱼ) = H[int(uᵢ)][int(vⱼ)].  Substituting into the
// closed-form inverse S⁻¹ = 2/(N+1)(2Sᵀ−J) collapses to
//
//	x[j] = −2/(N+1) · FWHT(Y)[int(vⱼ)],   Y[int(uᵢ)] = y[i], Y[0] = 0.
//
// For the physical convolution model y = s ⊛ x the column states are walked
// backwards: vⱼ = A^(N−j)·state₀.
package hadamard

import (
	"fmt"
	"math/bits"

	"repro/internal/prs"
)

// FHTDecoder is the fast-Hadamard-transform simplex decoder.  It is exact
// for the canonical m-sequence produced by prs.MSequence(order) (seed 1) and
// costs one scatter, one FWHT of size 2ⁿ, and one gather per frame.
//
// The decoder carries reusable scratch for its allocation-free entry
// points (DecodeTo, DecodeBatch), so it must not be shared between
// goroutines; create one per worker.
type FHTDecoder struct {
	order   int
	n       int   // sequence length 2^order − 1
	m       int   // transform size 2^order
	scatter []int // scatter[i] = int(u_i): position of y[i] in the FWHT input
	gather  []int // gather[j] = int(v_{-j}): FWHT output index for x[j]
	scale   float64
	work    []float64 // transform scratch, grown to m×lanes on demand
}

// NewFHTDecoder constructs the decoder for the canonical m-sequence of the
// given order (as produced by prs.MSequence, i.e. LFSR seed 1).
func NewFHTDecoder(order int) (*FHTDecoder, error) {
	taps, err := prs.Taps(order)
	if err != nil {
		return nil, err
	}
	n := 1<<order - 1
	m := n + 1
	mask := uint32(m - 1)
	// Effective feedback mask of the right-shift Fibonacci register (see
	// prs.feedbackMask): bit i = recurrence coefficient c_i.
	fb := ((taps << 1) | 1) & mask

	// Column states v_j = A^j · state0 : the Fibonacci LFSR state orbit.
	states := make([]uint32, n)
	st := uint32(1) // prs.MSequence seed
	for j := 0; j < n; j++ {
		states[j] = st
		bit := popcount32(st&fb) & 1
		st >>= 1
		st |= bit << (order - 1)
	}

	// Row functionals u_i = (Aᵀ)^i · e with e selecting bit 0.  The
	// transpose of a Fibonacci update is a Galois-configuration step:
	// u' = (u << 1) XOR (taps if the top bit of u is set), masked to n bits.
	scatter := make([]int, n)
	u := uint32(1)
	top := uint32(1) << (order - 1)
	for i := 0; i < n; i++ {
		scatter[i] = int(u)
		feedback := u & top
		u = (u << 1) & mask
		if feedback != 0 {
			u ^= fb
		}
	}

	// Convolution model: x[j] reads the FWHT output at int(v_{(N−j) mod N}).
	gather := make([]int, n)
	for j := 0; j < n; j++ {
		gather[j] = int(states[(n-j)%n])
	}

	d := &FHTDecoder{
		order:   order,
		n:       n,
		m:       m,
		scatter: scatter,
		gather:  gather,
		scale:   -2.0 / float64(n+1),
	}
	if err := d.selfCheck(); err != nil {
		return nil, err
	}
	return d, nil
}

// selfCheck verifies the permutations are bijections onto 1..2ⁿ−1; a failure
// indicates an inconsistent tap table and would silently corrupt decodes.
func (d *FHTDecoder) selfCheck() error {
	for name, perm := range map[string][]int{"scatter": d.scatter, "gather": d.gather} {
		seen := make([]bool, d.m)
		for _, p := range perm {
			if p <= 0 || p >= d.m {
				return fmt.Errorf("hadamard: %s index %d out of range (order %d)", name, p, d.order)
			}
			if seen[p] {
				return fmt.Errorf("hadamard: %s index %d repeated (order %d)", name, p, d.order)
			}
			seen[p] = true
		}
	}
	return nil
}

// Order returns the m-sequence order the decoder was built for.
func (d *FHTDecoder) Order() int { return d.order }

// Len implements Decoder.
func (d *FHTDecoder) Len() int { return d.n }

// Decode implements Decoder.  It is a thin allocating wrapper over
// DecodeTo and shares the decoder's scratch.
func (d *FHTDecoder) Decode(y []float64) ([]float64, error) {
	x := make([]float64, d.n)
	if err := d.DecodeTo(x, y); err != nil {
		return nil, err
	}
	return x, nil
}

// scratchBuf returns the decoder's scratch grown to at least n elements.
func (d *FHTDecoder) scratchBuf(n int) []float64 {
	if cap(d.work) < n {
		d.work = make([]float64, n)
	}
	return d.work[:n]
}

// DecodeTo implements BatchDecoder: scatter, FWHT and scaled gather into
// the caller's dst, reusing per-decoder scratch so the steady state
// allocates nothing.  dst and y must both have length Len().
func (d *FHTDecoder) DecodeTo(dst, y []float64) error {
	if len(y) != d.n {
		return fmt.Errorf("hadamard: decode length %d, want %d", len(y), d.n)
	}
	if len(dst) != d.n {
		return fmt.Errorf("hadamard: decode output length %d, want %d", len(dst), d.n)
	}
	work := d.scratchBuf(d.m)
	// The scatter permutation is a bijection onto 1..m−1 (selfCheck), so
	// only slot 0 survives from the previous use and needs clearing.
	work[0] = 0
	for i, p := range d.scatter {
		work[p] = y[i]
	}
	// Length is a power of two by construction; FWHT cannot fail.
	if err := FWHT(work); err != nil {
		panic(err)
	}
	for j, g := range d.gather {
		dst[j] = work[g] * d.scale
	}
	return nil
}

// DecodeBatch implements BatchDecoder with the column-blocked kernel: the
// scatter, the FWHT butterflies and the gather each run with unit-stride
// inner loops over the tile's lanes, and every lane's result is
// bit-identical to the scalar DecodeTo path (same butterfly order, same
// rounding).  The steady state allocates nothing.
func (d *FHTDecoder) DecodeBatch(dst, src *ColumnBlock) error {
	if err := checkBlockDims(d.n, dst, src); err != nil {
		return err
	}
	L := src.Lanes
	work := d.scratchBuf(d.m * L)
	// As in DecodeTo, the scatter covers rows 1..m−1; only row 0 needs
	// clearing.
	for i := range work[:L] {
		work[i] = 0
	}
	for i, p := range d.scatter {
		copy(work[p*L:(p+1)*L], src.Data[i*L:(i+1)*L])
	}
	if err := fwhtBlock(work, d.m, L); err != nil {
		return err
	}
	scale := d.scale
	for j, g := range d.gather {
		w := work[g*L : g*L+L]
		out := dst.Data[j*L : j*L+L]
		for l, v := range w {
			out[l] = v * scale
		}
	}
	return nil
}

// DecodeInto runs scatter + FWHT into the caller-provided work buffer of
// length 2ⁿ, leaving the un-gathered transform there.  It exists so the FPGA
// core model can reuse buffers and apply fixed-point arithmetic to the same
// dataflow; most callers want Decode.
func (d *FHTDecoder) DecodeInto(y []float64, work []float64) {
	for i := range work {
		work[i] = 0
	}
	for i, p := range d.scatter {
		work[p] = y[i]
	}
	// Length is a power of two by construction; FWHT cannot fail.
	if err := FWHT(work); err != nil {
		panic(err)
	}
}

// Permutations exposes copies of the scatter and gather index tables.  The
// FPGA model uses them as its address-generation ROMs, which is exactly the
// "memory addressing logic" the paper's abstract refers to.
func (d *FHTDecoder) Permutations() (scatter, gather []int) {
	s := make([]int, d.n)
	g := make([]int, d.n)
	copy(s, d.scatter)
	copy(g, d.gather)
	return s, g
}

// Scale returns the final multiplicative constant −2/(N+1).
func (d *FHTDecoder) Scale() float64 { return d.scale }

func popcount32(v uint32) uint32 {
	return uint32(bits.OnesCount32(v))
}
