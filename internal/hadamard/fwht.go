// fwht.go provides the fast Walsh–Hadamard transform and its direct (slow)
// reference, used both by the CPU decoding path and as the arithmetic model
// for the FPGA deconvolution core.
package hadamard

import (
	"fmt"
	"math/bits"
)

// FWHT performs the in-place fast Walsh–Hadamard transform (natural /
// Hadamard ordering) of x, whose length must be a power of two.  The
// transform is its own inverse up to a factor of N: FWHT(FWHT(x)) == N·x.
func FWHT(x []float64) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("hadamard: FWHT length %d is not a power of two", n)
	}
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h * 2 {
			for j := i; j < i+h; j++ {
				a, b := x[j], x[j+h]
				x[j], x[j+h] = a+b, a-b
			}
		}
	}
	return nil
}

// InverseFWHT performs the in-place inverse Walsh–Hadamard transform,
// i.e. FWHT followed by division by N.
func InverseFWHT(x []float64) error {
	if err := FWHT(x); err != nil {
		return err
	}
	inv := 1 / float64(len(x))
	for i := range x {
		x[i] *= inv
	}
	return nil
}

// NaiveWHT computes the Walsh–Hadamard transform by explicit O(N^2)
// summation using the (−1)^(popcount(i AND j)) kernel.  Reference for tests
// and the direct-vs-fast ablation benchmark.
func NaiveWHT(x []float64) ([]float64, error) {
	n := len(x)
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("hadamard: NaiveWHT length %d is not a power of two", n)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := 0; j < n; j++ {
			if popcountParity(i&j) == 0 {
				acc += x[j]
			} else {
				acc -= x[j]
			}
		}
		out[i] = acc
	}
	return out, nil
}

func popcountParity(v int) int {
	return bits.OnesCount64(uint64(v)) & 1
}
