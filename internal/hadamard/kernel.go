// kernel.go is the FWHT kernel-dispatch layer: a registry of blocked
// butterfly implementations ("kernels") selected once at init and
// swappable at runtime, so per-microarchitecture variants can be slotted
// in without touching the decode call sites.
//
// Every kernel computes exactly the same butterfly sequence as the scalar
// FWHT — the same pairwise adds and subtracts in the same association
// order — so each lane's result is bit-identical to FWHT regardless of
// which kernel ran (TestFWHTKernelsMatchScalar and
// FuzzFWHTKernelEquivalence pin this).  The kernels differ only in how
// the sequence is scheduled:
//
//   - radix2: one memory pass per butterfly level (log2 N passes) — the
//     portable baseline and the purego fallback.
//   - radix4: two levels fused per pass; each tile element is loaded and
//     stored once per fused pass instead of once per level, halving the
//     tile traffic, with four independent accumulation chains per lane
//     for instruction-level parallelism.
//   - radix8: three levels fused per pass (ceil(log2 N / 3) passes),
//     eight-way lane-striped accumulation.
//
// The default kernel is chosen by build configuration (see
// kernel_select.go and kernel_select_purego.go — the GOAMD64 /
// purego seam); SelectKernel overrides it at runtime, e.g. from a daemon
// flag.
package hadamard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// KernelFunc is a blocked FWHT implementation: an in-place transform of
// `lanes` independent length-`rows` transforms packed row-major in x
// (x[r*lanes+l] = element r of transform l).  rows is a power of two and
// lanes >= 1; both are validated by the dispatching fwhtBlock before the
// kernel runs.
type KernelFunc func(x []float64, rows, lanes int)

// Kernel is one registered FWHT implementation.
type Kernel struct {
	// Name identifies the kernel ("radix2", "radix4", "radix8", ...).
	Name string
	// Block is the blocked transform.
	Block KernelFunc
}

var (
	kernelMu  sync.Mutex
	kernels   = map[string]Kernel{}
	activeKnl atomic.Pointer[Kernel]
)

// RegisterKernel adds a kernel to the registry, replacing any previous
// kernel of the same name.  Registering a kernel does not select it.
func RegisterKernel(k Kernel) error {
	if k.Name == "" || k.Block == nil {
		return fmt.Errorf("hadamard: kernel needs a name and a block function")
	}
	kernelMu.Lock()
	defer kernelMu.Unlock()
	kernels[k.Name] = k
	return nil
}

// Kernels lists the registered kernel names, sorted.
func Kernels() []string {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	return kernelNamesLocked()
}

// ActiveKernel reports the name of the kernel the blocked decode path
// dispatches to.
func ActiveKernel() string { return activeKnl.Load().Name }

// SelectKernel makes the named kernel the dispatch target for every
// subsequent blocked decode.  Unknown names are an error and leave the
// selection unchanged.
func SelectKernel(name string) error {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	k, ok := kernels[name]
	if !ok {
		return fmt.Errorf("hadamard: unknown FWHT kernel %q (have %v)", name, kernelNamesLocked())
	}
	activeKnl.Store(&k)
	return nil
}

// kernelNamesLocked lists kernel names; the caller holds kernelMu.
func kernelNamesLocked() []string {
	out := make([]string, 0, len(kernels))
	for name := range kernels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	for _, k := range []Kernel{
		{Name: "radix2", Block: fwhtBlockRadix2},
		{Name: "radix4", Block: fwhtBlockRadix4},
		{Name: "radix8", Block: fwhtBlockRadix8},
	} {
		if err := RegisterKernel(k); err != nil {
			panic(err)
		}
	}
	if err := SelectKernel(defaultKernelName()); err != nil {
		panic(err)
	}
}

// fwhtBlock validates the tile geometry and dispatches the in-place FWHT
// of `lanes` independent length-`rows` transforms packed row-major in x
// to the active kernel.  Every kernel applies exactly the same butterfly
// sequence as FWHT, so each lane's result is bit-identical to the scalar
// transform.
func fwhtBlock(x []float64, rows, lanes int) error {
	if rows <= 0 || rows&(rows-1) != 0 {
		return fmt.Errorf("hadamard: fwhtBlock rows %d is not a power of two", rows)
	}
	if lanes < 1 {
		return fmt.Errorf("hadamard: fwhtBlock needs >= 1 lane, got %d", lanes)
	}
	if len(x) < rows*lanes {
		return fmt.Errorf("hadamard: fwhtBlock tile %d too small for %d×%d", len(x), rows, lanes)
	}
	if lanes == 1 {
		// Degenerate tile: the scalar loop avoids per-element slicing.
		// Geometry is already validated, so FWHT cannot fail.
		return FWHT(x[:rows])
	}
	activeKnl.Load().Block(x[:rows*lanes], rows, lanes)
	return nil
}

// fwhtBlockRadix2 is the portable baseline: the same butterfly order as
// FWHT, one pass over the tile per level, unit stride over the lanes.
func fwhtBlockRadix2(x []float64, rows, lanes int) {
	for h := 1; h < rows; h <<= 1 {
		step := 2 * h * lanes
		hl := h * lanes
		for i := 0; i < rows*lanes; i += step {
			for jo := i; jo < i+hl; jo += lanes {
				a := x[jo : jo+lanes : jo+lanes]
				b := x[jo+hl : jo+hl+lanes : jo+hl+lanes]
				for l, av := range a {
					bv := b[l]
					a[l], b[l] = av+bv, av-bv
				}
			}
		}
	}
}

// fwhtBlockRadix4 fuses two butterfly levels per pass.  For levels h and
// 2h the four tile rows j, j+h, j+2h, j+3h combine as
//
//	a' = (a+b)+(c+d)   b' = (a−b)+(c−d)
//	c' = (a+b)−(c+d)   d' = (a−b)−(c−d)
//
// which is exactly the sequential radix-2 result — each output is the
// same binary operation over the same already-computed intermediates, so
// the floating-point association (and therefore the bits) are unchanged.
// When log2(rows) is odd the leftover level runs as one radix-2 pass
// first (h=1, where the four rows are contiguous anyway).
func fwhtBlockRadix4(x []float64, rows, lanes int) {
	h := 1
	if log2OddStages(rows)&1 == 1 {
		fwhtLevelRadix2(x, rows, lanes, 1)
		h = 2
	}
	for ; h < rows; h <<= 2 {
		hl := h * lanes
		step := 4 * hl
		for i := 0; i < rows*lanes; i += step {
			for jo := i; jo < i+hl; jo += lanes {
				a := x[jo : jo+lanes : jo+lanes]
				b := x[jo+hl : jo+hl+lanes : jo+hl+lanes]
				c := x[jo+2*hl : jo+2*hl+lanes : jo+2*hl+lanes]
				d := x[jo+3*hl : jo+3*hl+lanes : jo+3*hl+lanes]
				for l, av := range a {
					bv, cv, dv := b[l], c[l], d[l]
					s0, s1 := av+bv, av-bv
					s2, s3 := cv+dv, cv-dv
					a[l], b[l] = s0+s2, s1+s3
					c[l], d[l] = s0-s2, s1-s3
				}
			}
		}
	}
}

// fwhtBlockRadix8 fuses three butterfly levels per pass: the eight tile
// rows j, j+h, ..., j+7h move through the radix-2 levels h, 2h and 4h
// entirely in registers, so each element is loaded and stored once per
// pass instead of three times.  The op tree per output is identical to
// the sequential radix-2 schedule, keeping every lane bit-identical to
// the scalar FWHT.  Leftover levels (log2(rows) mod 3) run first as one
// radix-2 or one fused radix-4 pass at the smallest strides.
func fwhtBlockRadix8(x []float64, rows, lanes int) {
	h := 1
	switch log2OddStages(rows) % 3 {
	case 1:
		fwhtLevelRadix2(x, rows, lanes, 1)
		h = 2
	case 2:
		fwhtLevelRadix4(x, rows, lanes, 1)
		h = 4
	}
	for ; h < rows; h <<= 3 {
		hl := h * lanes
		step := 8 * hl
		for i := 0; i < rows*lanes; i += step {
			for jo := i; jo < i+hl; jo += lanes {
				r0 := x[jo : jo+lanes : jo+lanes]
				r1 := x[jo+hl : jo+hl+lanes : jo+hl+lanes]
				r2 := x[jo+2*hl : jo+2*hl+lanes : jo+2*hl+lanes]
				r3 := x[jo+3*hl : jo+3*hl+lanes : jo+3*hl+lanes]
				r4 := x[jo+4*hl : jo+4*hl+lanes : jo+4*hl+lanes]
				r5 := x[jo+5*hl : jo+5*hl+lanes : jo+5*hl+lanes]
				r6 := x[jo+6*hl : jo+6*hl+lanes : jo+6*hl+lanes]
				r7 := x[jo+7*hl : jo+7*hl+lanes : jo+7*hl+lanes]
				for l, v0 := range r0 {
					v1, v2, v3 := r1[l], r2[l], r3[l]
					v4, v5, v6, v7 := r4[l], r5[l], r6[l], r7[l]
					// Level h.
					a0, a1 := v0+v1, v0-v1
					a2, a3 := v2+v3, v2-v3
					a4, a5 := v4+v5, v4-v5
					a6, a7 := v6+v7, v6-v7
					// Level 2h.
					b0, b2 := a0+a2, a0-a2
					b1, b3 := a1+a3, a1-a3
					b4, b6 := a4+a6, a4-a6
					b5, b7 := a5+a7, a5-a7
					// Level 4h.
					r0[l], r4[l] = b0+b4, b0-b4
					r1[l], r5[l] = b1+b5, b1-b5
					r2[l], r6[l] = b2+b6, b2-b6
					r3[l], r7[l] = b3+b7, b3-b7
				}
			}
		}
	}
}

// fwhtLevelRadix2 runs one radix-2 butterfly level at stride h.
func fwhtLevelRadix2(x []float64, rows, lanes, h int) {
	hl := h * lanes
	step := 2 * hl
	for i := 0; i < rows*lanes; i += step {
		for jo := i; jo < i+hl; jo += lanes {
			a := x[jo : jo+lanes : jo+lanes]
			b := x[jo+hl : jo+hl+lanes : jo+hl+lanes]
			for l, av := range a {
				bv := b[l]
				a[l], b[l] = av+bv, av-bv
			}
		}
	}
}

// fwhtLevelRadix4 runs the fused levels h and 2h (one radix-4 pass).
func fwhtLevelRadix4(x []float64, rows, lanes, h int) {
	hl := h * lanes
	step := 4 * hl
	for i := 0; i < rows*lanes; i += step {
		for jo := i; jo < i+hl; jo += lanes {
			a := x[jo : jo+lanes : jo+lanes]
			b := x[jo+hl : jo+hl+lanes : jo+hl+lanes]
			c := x[jo+2*hl : jo+2*hl+lanes : jo+2*hl+lanes]
			d := x[jo+3*hl : jo+3*hl+lanes : jo+3*hl+lanes]
			for l, av := range a {
				bv, cv, dv := b[l], c[l], d[l]
				s0, s1 := av+bv, av-bv
				s2, s3 := cv+dv, cv-dv
				a[l], b[l] = s0+s2, s1+s3
				c[l], d[l] = s0-s2, s1-s3
			}
		}
	}
}

// log2OddStages returns log2(rows) for a power-of-two rows.
func log2OddStages(rows int) int {
	n := 0
	for v := rows; v > 1; v >>= 1 {
		n++
	}
	return n
}
