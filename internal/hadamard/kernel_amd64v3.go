//go:build amd64.v3 && !purego

package hadamard

// tunedKernel is the GOAMD64>=v3 selection: FMA/AVX2-era cores with deep
// out-of-order windows take the eight-way fused schedule.  This file is
// the per-microarchitecture selection hook — a hand-tuned (or assembly)
// variant for v3+ registers itself and changes this one string.  Being a
// var initializer, the choice lands before any package init() consults
// defaultKernelName.
var tunedKernel = "radix8"
