//go:build !purego && !amd64.v3

package hadamard

// tunedKernel is the baseline tuned selection for builds without a
// per-microarchitecture override (GOAMD64 < v3, or non-amd64 targets):
// the three-level-fused radix8 schedule, which wins on every core this
// repository has been benchmarked on.  GOAMD64-level files
// (kernel_amd64v3.go) replace this choice at higher levels.
var tunedKernel = "radix8"
