// kernel_fuzz_test.go: coverage-guided equivalence fuzzing of the FWHT
// kernel registry — for any power-of-two size, lane count and input data,
// every registered kernel must be bit-identical to the scalar FWHT.
package hadamard

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzFWHTKernelEquivalence derives a tile geometry and contents from the
// fuzzer's bytes and checks every registered kernel against the scalar
// transform, bit for bit.  Values are decoded from raw bytes so the
// fuzzer can reach NaN/Inf payloads and denormals, not just round
// numbers.  NaN outputs compare as equivalent regardless of payload:
// which input NaN's payload propagates through an add depends on operand
// order in the generated code (the compiler may commute FP adds), so
// payload bits are the one thing the bit-exactness contract does not
// cover — real waveforms are finite and never reach that case.
func FuzzFWHTKernelEquivalence(f *testing.F) {
	f.Add(uint8(3), uint8(4), []byte("seed-corpus-entry-one"))
	f.Add(uint8(9), uint8(16), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add(uint8(0), uint8(1), []byte{0xff, 0x7f})
	f.Add(uint8(6), uint8(3), []byte{0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x7f})
	f.Fuzz(func(t *testing.T, logRows, lanesB uint8, data []byte) {
		rows := 1 << (int(logRows) % 11) // 1 .. 1024
		lanes := int(lanesB)%24 + 1      // 1 .. 24
		tile := make([]float64, rows*lanes)
		var word [8]byte
		for i := range tile {
			for b := 0; b < 8; b++ {
				if len(data) > 0 {
					word[b] = data[(i*8+b)%len(data)]
				}
			}
			tile[i] = math.Float64frombits(binary.LittleEndian.Uint64(word[:]) + uint64(i))
		}
		want := make([][]float64, lanes)
		for l := 0; l < lanes; l++ {
			col := make([]float64, rows)
			for r := 0; r < rows; r++ {
				col[r] = tile[r*lanes+l]
			}
			if err := FWHT(col); err != nil {
				t.Fatal(err)
			}
			want[l] = col
		}
		for _, name := range Kernels() {
			got := make([]float64, len(tile))
			copy(got, tile)
			runKernelNamed(t, name, got, rows, lanes)
			for l := 0; l < lanes; l++ {
				for r := 0; r < rows; r++ {
					g, w := got[r*lanes+l], want[l][r]
					if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
						t.Fatalf("kernel %s rows %d lanes %d lane %d row %d: %v (bits %x) != scalar %v (bits %x)",
							name, rows, lanes, l, r, g, math.Float64bits(g), w, math.Float64bits(w))
					}
				}
			}
		}
	})
}
