//go:build !purego

package hadamard

// defaultKernelName picks the init-time FWHT kernel for tuned builds:
// whatever the build-tag-selected tunedKernel names.  The purego build
// tag swaps this file for kernel_select_purego.go, exercising the
// portable fallback path of the dispatch seam.
func defaultKernelName() string { return tunedKernel }
