//go:build purego

package hadamard

// defaultKernelName picks the init-time FWHT kernel under the purego
// build tag: the portable radix2 baseline, proving the dispatch seam's
// fallback path stays correct when every tuned variant is compiled out of
// the default selection (the tuned pure-Go kernels remain registered and
// selectable at runtime).
func defaultKernelName() string { return "radix2" }
