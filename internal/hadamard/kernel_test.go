// kernel_test.go: the kernel-dispatch layer's property tests — every
// registered kernel must be bit-identical to the scalar FWHT on every
// lane, selection must be validated, and the dispatching fwhtBlock must
// reject bad geometry with errors rather than panics.
package hadamard

import (
	"math/rand"
	"strings"
	"testing"
)

// runKernelNamed runs one registered kernel through the dispatch path by
// selecting it, restoring the previous selection afterwards.
func runKernelNamed(t *testing.T, name string, x []float64, rows, lanes int) {
	t.Helper()
	prev := ActiveKernel()
	if err := SelectKernel(name); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SelectKernel(prev); err != nil {
			t.Fatal(err)
		}
	}()
	if err := fwhtBlock(x, rows, lanes); err != nil {
		t.Fatalf("kernel %s rows %d lanes %d: %v", name, rows, lanes, err)
	}
}

// TestFWHTKernelsMatchScalar pins every registered kernel to the scalar
// FWHT, lane by lane, bit for bit, across sizes covering every leftover-
// stage path (log2 rows ≡ 0,1,2 mod 3 and mod 2) and lane counts
// including the degenerate single lane.
func TestFWHTKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, rows := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		for _, lanes := range []int{1, 2, 3, 5, 8, 16, 17} {
			tile := make([]float64, rows*lanes)
			for i := range tile {
				tile[i] = rng.NormFloat64() * 1e3
			}
			want := make([][]float64, lanes)
			for l := 0; l < lanes; l++ {
				col := make([]float64, rows)
				for r := 0; r < rows; r++ {
					col[r] = tile[r*lanes+l]
				}
				if err := FWHT(col); err != nil {
					t.Fatal(err)
				}
				want[l] = col
			}
			for _, name := range Kernels() {
				got := make([]float64, len(tile))
				copy(got, tile)
				runKernelNamed(t, name, got, rows, lanes)
				for l := 0; l < lanes; l++ {
					for r := 0; r < rows; r++ {
						if got[r*lanes+l] != want[l][r] {
							t.Fatalf("kernel %s rows %d lanes %d lane %d row %d: %v != scalar %v",
								name, rows, lanes, l, r, got[r*lanes+l], want[l][r])
						}
					}
				}
			}
		}
	}
}

// TestKernelRegistry exercises registration, listing and selection.
func TestKernelRegistry(t *testing.T) {
	names := Kernels()
	for _, want := range []string{"radix2", "radix4", "radix8"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("kernel %q not registered (have %v)", want, names)
		}
	}
	if a := ActiveKernel(); a != defaultKernelName() {
		t.Fatalf("active kernel %q, want build default %q", a, defaultKernelName())
	}
	if err := SelectKernel("no-such-kernel"); err == nil {
		t.Fatal("unknown kernel selected without error")
	} else if !strings.Contains(err.Error(), "no-such-kernel") {
		t.Fatalf("unhelpful selection error: %v", err)
	}
	if err := RegisterKernel(Kernel{}); err == nil {
		t.Fatal("empty kernel registered without error")
	}
	prev := ActiveKernel()
	if err := SelectKernel("radix2"); err != nil {
		t.Fatal(err)
	}
	if ActiveKernel() != "radix2" {
		t.Fatalf("selection did not take: %q", ActiveKernel())
	}
	if err := SelectKernel(prev); err != nil {
		t.Fatal(err)
	}
}

// TestFWHTBlockGeometryErrors pins the validated error returns that
// replaced the old panic path: bad row counts, bad lane counts and short
// tiles must all surface as errors, including through the lanes==1
// degenerate path.
func TestFWHTBlockGeometryErrors(t *testing.T) {
	if err := fwhtBlock(make([]float64, 6), 3, 2); err == nil {
		t.Fatal("non-power-of-two rows accepted")
	}
	if err := fwhtBlock(make([]float64, 8), 8, 0); err == nil {
		t.Fatal("zero lanes accepted")
	}
	if err := fwhtBlock(make([]float64, 8), 8, -1); err == nil {
		t.Fatal("negative lanes accepted")
	}
	if err := fwhtBlock(make([]float64, 7), 8, 1); err == nil {
		t.Fatal("short single-lane tile accepted")
	}
	if err := fwhtBlock(make([]float64, 15), 8, 2); err == nil {
		t.Fatal("short tile accepted")
	}
	if err := fwhtBlock(make([]float64, 8), 0, 1); err == nil {
		t.Fatal("zero rows accepted")
	}
	// The valid degenerate cases still work.
	if err := fwhtBlock(make([]float64, 8), 8, 1); err != nil {
		t.Fatal(err)
	}
	if err := fwhtBlock(make([]float64, 1), 1, 1); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkFWHTKernels compares the registered kernels on the serving
// tile shape (order-9 transform, 16 lanes).
func BenchmarkFWHTKernels(b *testing.B) {
	const rows, lanes = 512, 16
	src := make([]float64, rows*lanes)
	rng := rand.New(rand.NewSource(5))
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	work := make([]float64, len(src))
	for _, name := range Kernels() {
		k := func() Kernel {
			kernelMu.Lock()
			defer kernelMu.Unlock()
			return kernels[name]
		}()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, src)
				k.Block(work, rows, lanes)
			}
		})
	}
}
