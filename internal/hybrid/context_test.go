// context_test.go: cancellation propagation through the executable hybrid
// paths — a cancelled context must abandon in-flight work promptly, both
// before the first column and in the middle of a frame or stream.
package hybrid

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/instrument"
)

// countdownCtx reports Canceled starting with the (after+1)-th Err call —
// a deterministic stand-in for "the deadline fires mid-run".
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func multiplexedFrame(tofBins int) *instrument.Frame {
	f := instrument.NewFrame(511, tofBins) // order-9 core length
	for i := range f.Data {
		f.Data[i] = float64(i % 97)
	}
	return f
}

func TestHybridDeconvolveFrameContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := HybridDeconvolveFrameContext(ctx, multiplexedFrame(4), DefaultOffloadConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestHybridDeconvolveFrameContextMidRun(t *testing.T) {
	// Entry check + column 0 check pass; the check at column 16 cancels.
	ctx := &countdownCtx{Context: context.Background(), after: 2}
	res, err := HybridDeconvolveFrameContext(ctx, multiplexedFrame(64), DefaultOffloadConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled mid-frame, got %v", err)
	}
	if res != nil {
		t.Fatal("cancelled deconvolution returned a result")
	}
}

func TestSimulateStreamContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateStreamContext(ctx, DefaultStreamConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSimulateStreamContextMidRun(t *testing.T) {
	ctx := &countdownCtx{Context: context.Background(), after: 2}
	_, err := SimulateStreamContext(ctx, DefaultStreamConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled mid-stream, got %v", err)
	}
}

func TestContextlessPathsUnchanged(t *testing.T) {
	// The historical entry points must still complete end to end.
	res, err := HybridDeconvolveFrame(multiplexedFrame(4), DefaultOffloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoded == nil || res.Decoded.TOFBins != 4 {
		t.Fatal("background-context path broke")
	}
}
