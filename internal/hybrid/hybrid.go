// Package hybrid is the paper's artifact: the Cray XD1 hybrid application
// that couples a CPU-resident software host with the FPGA data-processing
// component.  The FPGA side captures the digitizer stream, accumulates
// repeated IMS cycles in block RAM, and deconvolves the multiplexed
// waveforms with the enhanced Hadamard transform core; the software side
// streams data to the FPGA over the RapidArray fabric and collects results.
//
// The package provides both analytic capacity planning (AnalyzeDataPath,
// AnalyzeOffload — where do the bytes and cycles go, does the design keep
// up with the instrument in real time) and an executable path
// (HybridDeconvolveFrame — actually moving frame data through the modeled
// cores, with simulated wall-clock accounting).
package hybrid

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/fpga"
	"repro/internal/hadamard"
	"repro/internal/instrument"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
	"repro/internal/xd1"
)

// DataPathConfig describes the capture/accumulate front end.
type DataPathConfig struct {
	Node xd1.Node
	// NativeSampleRate is the digitizer's raw conversion rate, samples/s
	// (8-bit samples).  Streaming this rate to the host is the ablation
	// case; the capture core rebins it to SamplesPerSpectrum per
	// extraction on the fly.
	NativeSampleRate float64
	// SamplesPerSpectrum is the rebinned samples per TOF extraction
	// (= m/z bins).
	SamplesPerSpectrum int
	// SpectraPerSec is the TOF extraction rate (1/extraction period).
	SpectraPerSec float64
	// DriftBins is the multiplexed sequence length: the accumulator holds
	// DriftBins × SamplesPerSpectrum words.
	DriftBins int
	// CyclesAccumulated is how many IMS cycles are summed on-FPGA before a
	// frame is shipped to the host.
	CyclesAccumulated int
	// AccumWordBytes is the accumulated word width shipped to the host.
	AccumWordBytes int
	// CaptureSamplesPerCycle is the capture core ingest parallelism.
	CaptureSamplesPerCycle int
	// AccumBanks is the accumulation core bank count.
	AccumBanks int
}

// DefaultDataPathConfig mirrors the reference instrument: 2048-sample
// spectra at 10 kHz, an order-9 sequence, 32-bit accumulator words.
func DefaultDataPathConfig() DataPathConfig {
	return DataPathConfig{
		Node:                   xd1.DefaultNode(),
		NativeSampleRate:       2e9, // 2 GS/s, 8-bit
		SamplesPerSpectrum:     2048,
		SpectraPerSec:          1e4,
		DriftBins:              511,
		CyclesAccumulated:      10,
		AccumWordBytes:         4,
		CaptureSamplesPerCycle: 16, // 128-bit ingest bus
		AccumBanks:             8,
	}
}

// Validate reports the first problem.
func (c DataPathConfig) Validate() error {
	if err := c.Node.Validate(); err != nil {
		return err
	}
	if c.SamplesPerSpectrum < 1 || c.DriftBins < 1 || c.CyclesAccumulated < 1 {
		return fmt.Errorf("hybrid: geometry must be positive (samples %d, bins %d, cycles %d)",
			c.SamplesPerSpectrum, c.DriftBins, c.CyclesAccumulated)
	}
	if c.SpectraPerSec <= 0 {
		return fmt.Errorf("hybrid: spectra rate %g must be positive", c.SpectraPerSec)
	}
	if c.NativeSampleRate <= 0 {
		return fmt.Errorf("hybrid: native sample rate %g must be positive", c.NativeSampleRate)
	}
	if c.AccumWordBytes < 1 || c.AccumWordBytes > 8 {
		return fmt.Errorf("hybrid: accumulator word bytes %d out of [1,8]", c.AccumWordBytes)
	}
	if c.CaptureSamplesPerCycle < 1 || c.AccumBanks < 1 {
		return fmt.Errorf("hybrid: core parallelism must be positive")
	}
	return nil
}

// DataPathReport is the byte/cycle budget of the capture front end.
type DataPathReport struct {
	// RawByteRate is the digitizer's native output, bytes/s (one byte per
	// sample).
	RawByteRate float64
	// RawFabricUtilization is RawByteRate over fabric bandwidth — what
	// streaming raw samples to the host would cost (the ablation case).
	RawFabricUtilization float64
	// FrameBytes is one accumulated frame.
	FrameBytes float64
	// FramesPerSec is the accumulated frame output rate.
	FramesPerSec float64
	// AccumulatedByteRate is the post-accumulation stream, bytes/s.
	AccumulatedByteRate float64
	// AccumulatedFabricUtilization is the post-accumulation link load.
	AccumulatedFabricUtilization float64
	// ReductionFactor is raw rate over accumulated rate.
	ReductionFactor float64
	// CaptureCyclesPerSec and AccumCyclesPerSec are FPGA cycle demands.
	CaptureCyclesPerSec float64
	AccumCyclesPerSec   float64
	// FPGAUtilization is demanded cycles over available cycles.
	FPGAUtilization float64
	// BRAMBitsNeeded is the accumulator storage requirement.
	BRAMBitsNeeded int
	// BRAMOK reports whether the accumulator fits the device.
	BRAMOK bool
	// RealTime reports whether the front end keeps up with the digitizer.
	RealTime bool
}

// AnalyzeDataPath computes the capture/accumulation budget.
func AnalyzeDataPath(c DataPathConfig) (DataPathReport, error) {
	if err := c.Validate(); err != nil {
		return DataPathReport{}, err
	}
	var r DataPathReport
	binnedPerSec := float64(c.SamplesPerSpectrum) * c.SpectraPerSec
	r.RawByteRate = c.NativeSampleRate // 8-bit samples
	r.RawFabricUtilization = c.Node.Fabric.Utilization(r.RawByteRate)

	words := float64(c.DriftBins) * float64(c.SamplesPerSpectrum)
	r.FrameBytes = words * float64(c.AccumWordBytes)
	cycleDuration := float64(c.DriftBins) / c.SpectraPerSec // one extraction per drift bin
	frameDuration := cycleDuration * float64(c.CyclesAccumulated)
	r.FramesPerSec = 1 / frameDuration
	r.AccumulatedByteRate = r.FrameBytes * r.FramesPerSec
	r.AccumulatedFabricUtilization = c.Node.Fabric.Utilization(r.AccumulatedByteRate)
	if r.AccumulatedByteRate > 0 {
		r.ReductionFactor = r.RawByteRate / r.AccumulatedByteRate
	}

	r.CaptureCyclesPerSec = c.NativeSampleRate / float64(c.CaptureSamplesPerCycle)
	r.AccumCyclesPerSec = binnedPerSec / float64(c.AccumBanks)
	r.FPGAUtilization = (r.CaptureCyclesPerSec + r.AccumCyclesPerSec) / c.Node.FPGA.ClockHz

	r.BRAMBitsNeeded = int(words) * c.AccumWordBytes * 8
	r.BRAMOK = r.BRAMBitsNeeded <= c.Node.FPGA.BRAMBits
	r.RealTime = r.FPGAUtilization <= 1 && r.AccumulatedFabricUtilization <= 1
	return r, nil
}

// OffloadConfig describes the deconvolution offload.
type OffloadConfig struct {
	Node xd1.Node
	// Order is the m-sequence order of the FHT core.
	Order int
	// Format is the core's fixed-point precision.
	Format fpga.Format
	// Growth is the bit-growth policy.
	Growth fpga.GrowthPolicy
	// ButterflyUnits and MemPorts set core parallelism.
	ButterflyUnits int
	MemPorts       int
	// TOFColumns is how many m/z columns each frame carries (each column
	// is one deconvolution).
	TOFColumns int
	// WordBytes is the per-value transfer size across the fabric.
	WordBytes int
	// DMABurstBytes is the DMA descriptor size.
	DMABurstBytes float64
	// Metrics, when non-nil, receives the executable offload path's
	// telemetry: host↔FPGA transfer bytes and modeled latency (hybrid_*
	// and xd1_dma_* families), FHT core cycle/saturation counts (fpga_fht_*)
	// and fabric utilization (xd1_fabric_utilization_ratio).  Analytic
	// planning (AnalyzeOffload) stays metric-free.  Nil disables
	// instrumentation.
	Metrics *telemetry.Registry
}

// DefaultOffloadConfig mirrors the reference design: order 9, Q23.8
// arithmetic, 4 butterfly units.
func DefaultOffloadConfig() OffloadConfig {
	return OffloadConfig{
		Node:           xd1.DefaultNode(),
		Order:          9,
		Format:         fpga.MustQ(23, 8),
		Growth:         fpga.GrowthSaturate,
		ButterflyUnits: 4,
		MemPorts:       2,
		TOFColumns:     2048,
		WordBytes:      4,
		DMABurstBytes:  4096,
	}
}

// Validate reports the first problem.
func (c OffloadConfig) Validate() error {
	if err := c.Node.Validate(); err != nil {
		return err
	}
	if c.TOFColumns < 1 {
		return fmt.Errorf("hybrid: TOF columns %d must be positive", c.TOFColumns)
	}
	if c.WordBytes < 1 || c.WordBytes > 8 {
		return fmt.Errorf("hybrid: word bytes %d out of [1,8]", c.WordBytes)
	}
	if c.DMABurstBytes <= 0 {
		return fmt.Errorf("hybrid: DMA burst %g must be positive", c.DMABurstBytes)
	}
	return nil
}

// OffloadReport is the frame-rate budget of the deconvolution offload.
type OffloadReport struct {
	// ColumnCycles is FPGA cycles per column deconvolution.
	ColumnCycles int64
	// ComputeTimeS is FPGA time per frame (all columns).
	ComputeTimeS float64
	// TransferInS and TransferOutS are per-frame DMA times.
	TransferInS  float64
	TransferOutS float64
	// FrameTimeS is the steady-state per-frame time with double buffering
	// (max of compute and transfer stages).
	FrameTimeS float64
	// FramesPerSec is 1/FrameTimeS.
	FramesPerSec float64
	// Bottleneck names the limiting stage: "compute", "transfer-in" or
	// "transfer-out".
	Bottleneck string
}

// AnalyzeOffload computes the steady-state offload budget.
func AnalyzeOffload(c OffloadConfig) (OffloadReport, error) {
	if err := c.Validate(); err != nil {
		return OffloadReport{}, err
	}
	core, err := fpga.NewFHTCore(c.Order, c.Format, c.Growth, c.ButterflyUnits, c.MemPorts)
	if err != nil {
		return OffloadReport{}, err
	}
	return analyzeOffloadWithCore(c, core)
}

// analyzeOffloadWithCore is AnalyzeOffload against an already-built core,
// so per-frame re-analysis (the column count varies per frame) does not
// reconstruct the FHT core and its permutation ROMs each time.
func analyzeOffloadWithCore(c OffloadConfig, core *fpga.FHTCore) (OffloadReport, error) {
	dma, err := xd1.NewDMA(c.Node.Fabric, c.DMABurstBytes)
	if err != nil {
		return OffloadReport{}, err
	}
	var r OffloadReport
	r.ColumnCycles = core.CyclesPerFrame()
	r.ComputeTimeS = c.Node.FPGA.CyclesToSeconds(r.ColumnCycles * int64(c.TOFColumns))
	frameBytes := float64(core.Len()) * float64(c.TOFColumns) * float64(c.WordBytes)
	r.TransferInS = dma.TransferTime(frameBytes)
	r.TransferOutS = dma.TransferTime(frameBytes)
	r.FrameTimeS = math.Max(r.ComputeTimeS, math.Max(r.TransferInS, r.TransferOutS))
	r.FramesPerSec = 1 / r.FrameTimeS
	switch r.FrameTimeS {
	case r.ComputeTimeS:
		r.Bottleneck = "compute"
	case r.TransferInS:
		r.Bottleneck = "transfer-in"
	default:
		r.Bottleneck = "transfer-out"
	}
	return r, nil
}

// HybridResult is the outcome of pushing one frame through the modeled
// hybrid pipeline.
type HybridResult struct {
	Decoded *instrument.Frame
	// SimulatedTimeS is the modeled wall time on the XD1 (transfers +
	// FPGA compute, double buffered).
	SimulatedTimeS float64
	// Saturations counts fixed-point overflow events during the frame.
	Saturations int64
	Report      OffloadReport
}

// HybridDeconvolveFrame runs a frame through the modeled FPGA offload: each
// m/z column is deconvolved by the fixed-point FHT core (data-exact), and
// the simulated wall time is the steady-state double-buffered budget.  When
// c.Metrics is set, the host↔FPGA transfers, core activity and fabric load
// are recorded as telemetry.  It is HybridDeconvolveFrameContext with
// context.Background().
func HybridDeconvolveFrame(f *instrument.Frame, c OffloadConfig) (*HybridResult, error) {
	return HybridDeconvolveFrameContext(context.Background(), f, c)
}

// HybridDeconvolveFrameContext is HybridDeconvolveFrame under a context:
// when ctx is cancelled (a server deadline, a disconnected client) the
// tile loop stops within TileLanes columns and returns ctx.Err(),
// so in-flight work is actually abandoned rather than completed and thrown
// away.  It builds a fresh Offloader per call; steady-state serving paths
// hold one Offloader per worker and use DeconvolveFrameInto instead.
func HybridDeconvolveFrameContext(ctx context.Context, f *instrument.Frame, c OffloadConfig) (*HybridResult, error) {
	if f == nil {
		return nil, fmt.Errorf("hybrid: nil frame")
	}
	o, err := NewOffloader(c)
	if err != nil {
		return nil, err
	}
	out := instrument.NewFrame(f.DriftBins, f.TOFBins)
	res, err := o.DeconvolveFrameInto(ctx, out, f)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// TileLanes is the column-tile width of the modeled offload path: the
// number of m/z columns moved through the fixed-point core per
// DeconvolveBatch call.  It matches the CPU pipeline's block width so an
// order-9 work tile stays cache-resident on the host that models it.
const TileLanes = 16

// Offloader is a reusable executable offload engine: one validated config
// with its persistent fixed-point FHT core and the column-tile scratch
// the core decodes through, so repeated frames pay no core
// reconstruction and no per-column allocation.  The scratch makes an
// Offloader single-threaded; create one per worker.
type Offloader struct {
	cfg  OffloadConfig
	core *fpga.FHTCore
	src  *hadamard.ColumnBlock // staged input tile
	dst  *hadamard.ColumnBlock // decoded output tile
}

// NewOffloader validates the config and builds the persistent core,
// instrumented into c.Metrics when set.
func NewOffloader(c OffloadConfig) (*Offloader, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	core, err := fpga.NewFHTCore(c.Order, c.Format, c.Growth, c.ButterflyUnits, c.MemPorts)
	if err != nil {
		return nil, err
	}
	core.Instrument(c.Metrics)
	n := core.Len()
	return &Offloader{
		cfg:  c,
		core: core,
		src:  hadamard.NewColumnBlock(n, TileLanes),
		dst:  hadamard.NewColumnBlock(n, TileLanes),
	}, nil
}

// Len reports the core's waveform length (frame drift bins).
func (o *Offloader) Len() int { return o.core.Len() }

// DeconvolveFrameInto runs one frame through the modeled FPGA offload into
// the caller-owned dst frame (same geometry as f, typically from an
// instrument.FramePool).  Column data moves through the offloader's
// persistent scratch, so the steady state allocates nothing beyond the
// per-frame report bookkeeping.  The returned HybridResult's Decoded field
// is dst; Saturations counts this frame's events only.
func (o *Offloader) DeconvolveFrameInto(ctx context.Context, dst, f *instrument.Frame) (*HybridResult, error) {
	if f == nil || dst == nil {
		return nil, fmt.Errorf("hybrid: nil frame")
	}
	if dst.DriftBins != f.DriftBins || dst.TOFBins != f.TOFBins {
		return nil, fmt.Errorf("hybrid: dst frame %dx%d != src %dx%d", dst.DriftBins, dst.TOFBins, f.DriftBins, f.TOFBins)
	}
	if o.core.Len() != f.DriftBins {
		return nil, fmt.Errorf("hybrid: core length %d != frame drift bins %d", o.core.Len(), f.DriftBins)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	span := trace.SpanFromContext(ctx).Child("hybrid_offload")
	defer span.End()
	cfg := o.cfg
	cfg.TOFColumns = f.TOFBins
	rep, err := analyzeOffloadWithCore(cfg, o.core)
	if err != nil {
		return nil, err
	}
	satBefore := o.core.Saturations()
	cursor := emitModeledFrontEnd(span, cfg, f, rep)
	fht := span.Child("fpga_fht")
	fht.SetInt("columns", int64(f.TOFBins))
	fht.SetInt("modeled_ns", int64(rep.ComputeTimeS*1e9))
	// Communication-avoiding tile loop: gather TileLanes columns into one
	// row-major tile, push the whole tile through the fixed-point core
	// (each work word touched once per fused butterfly pass), scatter the
	// results back.  One ctx check per tile keeps the previous
	// every-16-columns cancellation cadence.
	for t0 := 0; t0 < f.TOFBins; t0 += TileLanes {
		if err := ctx.Err(); err != nil {
			fht.End()
			return nil, err
		}
		lanes := f.TOFBins - t0
		if lanes > TileLanes {
			lanes = TileLanes
		}
		o.src.Reset(o.core.Len(), lanes)
		o.dst.Reset(o.core.Len(), lanes)
		f.GatherColumns(t0, lanes, o.src.Data)
		if _, err := o.core.DeconvolveBatch(o.dst, o.src); err != nil {
			fht.End()
			return nil, err
		}
		dst.ScatterColumns(t0, lanes, o.dst.Data)
	}
	fht.SetInt("saturations", o.core.Saturations())
	fht.End()
	dmaOut := span.ChildAt("xd1_dma_out", cursor)
	dmaOut.SetInt("bytes", int64(float64(o.core.Len())*float64(cfg.TOFColumns)*float64(cfg.WordBytes)))
	dmaOut.EndAfter(time.Duration(rep.TransferOutS * 1e9))
	if reg := cfg.Metrics; reg != nil {
		recordOffloadTransfers(reg, cfg, o.core, rep)
	}
	return &HybridResult{
		Decoded:        dst,
		SimulatedTimeS: rep.FrameTimeS,
		Saturations:    o.core.Saturations() - satBefore,
		Report:         rep,
	}, nil
}

// emitModeledFrontEnd lays the modeled FPGA front-end and inbound-DMA
// stages of one frame as synthetic spans under parent — fpga_capture and
// fpga_accumulate busy time from the default core parallelism (ingest
// width, bank count) at the node's clock, then the XD1 DMA cost model's
// inbound transfer.  The spans sit on a timeline cursor starting at the
// offload span so the Perfetto view reads as one pipeline; the returned
// cursor marks where the outbound DMA would begin.  A zero parent makes
// the whole thing free.
func emitModeledFrontEnd(parent trace.Span, cfg OffloadConfig, f *instrument.Frame, rep OffloadReport) time.Time {
	cursor := time.Now()
	if !parent.Active() {
		return cursor
	}
	dp := DefaultDataPathConfig()
	cells := float64(f.DriftBins) * float64(f.TOFBins) * float64(dp.CyclesAccumulated)
	capD := time.Duration(cfg.Node.FPGA.CyclesToSeconds(int64(cells/float64(dp.CaptureSamplesPerCycle))) * 1e9)
	accD := time.Duration(cfg.Node.FPGA.CyclesToSeconds(int64(cells/float64(dp.AccumBanks))) * 1e9)
	capSpan := parent.ChildAt("fpga_capture", cursor)
	capSpan.SetInt("cycles_accumulated", int64(dp.CyclesAccumulated))
	capSpan.EndAfter(capD)
	cursor = cursor.Add(capD)
	accSpan := parent.ChildAt("fpga_accumulate", cursor)
	accSpan.SetInt("banks", int64(dp.AccumBanks))
	accSpan.EndAfter(accD)
	cursor = cursor.Add(accD)
	frameBytes := int64(float64(f.DriftBins) * float64(f.TOFBins) * float64(cfg.WordBytes))
	dmaIn := parent.ChildAt("xd1_dma_in", cursor)
	dmaIn.SetInt("bytes", frameBytes)
	dmaIn.SetInt("burst_bytes", int64(cfg.DMABurstBytes))
	dmaIn.EndAfter(time.Duration(rep.TransferInS * 1e9))
	return cursor.Add(time.Duration(rep.TransferInS * 1e9))
}

// recordOffloadTransfers replays the frame's modeled host↔FPGA movement
// through an instrumented DMA engine and publishes the hybrid-level
// transfer and fabric-utilization telemetry.
func recordOffloadTransfers(reg *telemetry.Registry, cfg OffloadConfig, core *fpga.FHTCore, rep OffloadReport) {
	frameBytes := float64(core.Len()) * float64(cfg.TOFColumns) * float64(cfg.WordBytes)
	dma, err := xd1.NewDMA(cfg.Node.Fabric, cfg.DMABurstBytes)
	if err != nil {
		return // cfg already validated by AnalyzeOffload; defensive only
	}
	dma.Instrument(reg)
	for _, dir := range []string{"in", "out"} {
		t := dma.TransferTime(frameBytes)
		l := telemetry.L("dir", dir)
		reg.Counter("hybrid_transfer_bytes_total", "bytes moved between host and FPGA per direction", l).Add(int64(frameBytes))
		reg.Histogram("hybrid_transfer_ns", "modeled per-frame host-FPGA transfer latency, nanoseconds", l).Observe(t * 1e9)
	}
	// Sustained link load at the steady-state frame rate, per direction.
	util := cfg.Node.Fabric.Utilization(frameBytes * rep.FramesPerSec)
	reg.Gauge("xd1_fabric_utilization_ratio", "fraction of RapidArray bandwidth consumed per transfer direction at the sustained frame rate").Set(util)
}

// SoftwareEstimate models the pure-CPU baseline on the same node: the
// measured per-frame CPU time on the simulation host is scaled to the XD1
// Opteron by clock ratio and divided across its cores (the embarrassingly
// parallel column loop).
type SoftwareEstimate struct {
	// MeasuredFrameS is the benchmarked per-frame time on the simulation
	// host with one thread.
	MeasuredFrameS float64
	// HostClockHz is the simulation host clock used for scaling.
	HostClockHz float64
}

// FrameTimeOn estimates per-frame wall time on the target CPU.
func (s SoftwareEstimate) FrameTimeOn(cpu xd1.CPU) (float64, error) {
	if s.MeasuredFrameS <= 0 || s.HostClockHz <= 0 {
		return 0, fmt.Errorf("hybrid: software estimate needs positive measurement and clock")
	}
	if err := cpu.Validate(); err != nil {
		return 0, err
	}
	scaled := s.MeasuredFrameS * s.HostClockHz / cpu.ClockHz
	return scaled / float64(cpu.Cores), nil
}

// ClusterReport describes multi-node scaling of the deconvolution offload:
// each XD1 node processes whole frames independently; a collection host
// gathers decoded frames over its own fabric link, which eventually caps
// the aggregate.
type ClusterReport struct {
	Nodes        int
	PerNodeFPS   float64
	AggregateFPS float64
	HostLimitFPS float64
	Efficiency   float64 // aggregate / (nodes × per-node)
	LimitedBy    string  // "compute" or "host-link"
}

// AnalyzeCluster evaluates the offload across nodes, with decoded frames
// collected over hostLink.
func AnalyzeCluster(c OffloadConfig, nodes int, hostLink xd1.Fabric) (ClusterReport, error) {
	if nodes < 1 {
		return ClusterReport{}, fmt.Errorf("hybrid: nodes %d must be >= 1", nodes)
	}
	if err := hostLink.Validate(); err != nil {
		return ClusterReport{}, err
	}
	node, err := AnalyzeOffload(c)
	if err != nil {
		return ClusterReport{}, err
	}
	core, err := fpga.NewFHTCore(c.Order, c.Format, c.Growth, c.ButterflyUnits, c.MemPorts)
	if err != nil {
		return ClusterReport{}, err
	}
	frameBytes := float64(core.Len()) * float64(c.TOFColumns) * float64(c.WordBytes)
	hostLimit := hostLink.BandwidthBytes / frameBytes
	agg := float64(nodes) * node.FramesPerSec
	limitedBy := "compute"
	if agg > hostLimit {
		agg = hostLimit
		limitedBy = "host-link"
	}
	return ClusterReport{
		Nodes:        nodes,
		PerNodeFPS:   node.FramesPerSec,
		AggregateFPS: agg,
		HostLimitFPS: hostLimit,
		Efficiency:   agg / (float64(nodes) * node.FramesPerSec),
		LimitedBy:    limitedBy,
	}, nil
}
