package hybrid

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fpga"
	"repro/internal/hadamard"
	"repro/internal/instrument"
	"repro/internal/prs"
	"repro/internal/xd1"
)

func TestAnalyzeDataPathReference(t *testing.T) {
	r, err := AnalyzeDataPath(DefaultDataPathConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The digitizer runs at its native 2 GS/s.
	if math.Abs(r.RawByteRate-2e9) > 1 {
		t.Errorf("raw byte rate %g", r.RawByteRate)
	}
	// On-FPGA rebinning plus accumulation collapses the stream by orders
	// of magnitude.
	if r.ReductionFactor < 50 {
		t.Errorf("reduction factor %g, want > 50", r.ReductionFactor)
	}
	if !r.RealTime {
		t.Error("reference front end must keep up in real time")
	}
	if r.RawFabricUtilization <= r.AccumulatedFabricUtilization {
		t.Error("accumulation must reduce fabric load")
	}
	if r.FPGAUtilization <= 0 || r.FPGAUtilization > 1 {
		t.Errorf("FPGA utilization %g out of (0,1]", r.FPGAUtilization)
	}
	if !r.BRAMOK {
		t.Log("accumulator exceeds on-chip BRAM: spills to attached QDR (as on the real XD1)")
	}
	if r.FramesPerSec <= 0 || r.FrameBytes <= 0 {
		t.Error("frame geometry not computed")
	}
}

// TestAnalyzeDataPathMoreAveragingMoreReduction: accumulating more cycles
// on-FPGA increases the data reduction factor proportionally.
func TestAnalyzeDataPathMoreAveragingMoreReduction(t *testing.T) {
	base := DefaultDataPathConfig()
	r1, _ := AnalyzeDataPath(base)
	base.CyclesAccumulated *= 4
	r4, _ := AnalyzeDataPath(base)
	if math.Abs(r4.ReductionFactor/r1.ReductionFactor-4) > 0.01 {
		t.Errorf("reduction ratio %g, want 4", r4.ReductionFactor/r1.ReductionFactor)
	}
}

func TestAnalyzeDataPathNativeRateValidation(t *testing.T) {
	bad := DefaultDataPathConfig()
	bad.NativeSampleRate = 0
	if _, err := AnalyzeDataPath(bad); err == nil {
		t.Error("zero native rate should fail")
	}
}

func TestAnalyzeDataPathValidation(t *testing.T) {
	bad := DefaultDataPathConfig()
	bad.SamplesPerSpectrum = 0
	if _, err := AnalyzeDataPath(bad); err == nil {
		t.Error("zero samples")
	}
	bad = DefaultDataPathConfig()
	bad.SpectraPerSec = 0
	if _, err := AnalyzeDataPath(bad); err == nil {
		t.Error("zero rate")
	}
	bad = DefaultDataPathConfig()
	bad.AccumWordBytes = 9
	if _, err := AnalyzeDataPath(bad); err == nil {
		t.Error("wide words")
	}
	bad = DefaultDataPathConfig()
	bad.AccumBanks = 0
	if _, err := AnalyzeDataPath(bad); err == nil {
		t.Error("zero banks")
	}
	bad = DefaultDataPathConfig()
	bad.Node.Fabric.BandwidthBytes = 0
	if _, err := AnalyzeDataPath(bad); err == nil {
		t.Error("invalid node")
	}
}

func TestAnalyzeOffloadReference(t *testing.T) {
	r, err := AnalyzeOffload(DefaultOffloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.ColumnCycles <= 0 || r.ComputeTimeS <= 0 {
		t.Fatal("compute budget not computed")
	}
	if r.FramesPerSec <= 0 {
		t.Fatal("frame rate not computed")
	}
	// The frame time is the max of the stages.
	max := math.Max(r.ComputeTimeS, math.Max(r.TransferInS, r.TransferOutS))
	if r.FrameTimeS != max {
		t.Error("frame time should be the slowest stage (double buffering)")
	}
	if r.Bottleneck == "" {
		t.Error("bottleneck not named")
	}
	// The reference instrument produces ~2 accumulated frames/s; the
	// offload must beat that with margin (real-time requirement).
	if r.FramesPerSec < 2 {
		t.Errorf("offload sustains %g frames/s, below instrument rate", r.FramesPerSec)
	}
}

// TestOffloadParallelismHelps: more butterfly units raise the frame rate
// until transfers dominate.
func TestOffloadParallelismHelps(t *testing.T) {
	slow := DefaultOffloadConfig()
	slow.ButterflyUnits = 1
	fast := DefaultOffloadConfig()
	fast.ButterflyUnits = 16
	fast.MemPorts = 8
	rs, _ := AnalyzeOffload(slow)
	rf, _ := AnalyzeOffload(fast)
	if rf.FramesPerSec <= rs.FramesPerSec {
		t.Errorf("16 butterflies (%g fps) should beat 1 (%g fps)", rf.FramesPerSec, rs.FramesPerSec)
	}
}

func TestAnalyzeOffloadValidation(t *testing.T) {
	bad := DefaultOffloadConfig()
	bad.TOFColumns = 0
	if _, err := AnalyzeOffload(bad); err == nil {
		t.Error("zero columns")
	}
	bad = DefaultOffloadConfig()
	bad.WordBytes = 0
	if _, err := AnalyzeOffload(bad); err == nil {
		t.Error("zero word bytes")
	}
	bad = DefaultOffloadConfig()
	bad.DMABurstBytes = 0
	if _, err := AnalyzeOffload(bad); err == nil {
		t.Error("zero burst")
	}
	bad = DefaultOffloadConfig()
	bad.Order = 1
	if _, err := AnalyzeOffload(bad); err == nil {
		t.Error("bad order")
	}
}

func TestHybridDeconvolveFrame(t *testing.T) {
	order := 7
	s := prs.MustMSequence(order)
	n := len(s)
	rng := rand.New(rand.NewSource(90))
	cols := 16
	truth := instrument.NewFrame(n, cols)
	enc := instrument.NewFrame(n, cols)
	for c := 0; c < cols; c++ {
		x := make([]float64, n)
		x[rng.Intn(n)] = 100 + rng.Float64()*900
		y, _ := hadamard.Encode(s, x)
		truth.SetDriftVector(c, x)
		enc.SetDriftVector(c, y)
	}
	cfg := DefaultOffloadConfig()
	cfg.Order = order
	cfg.Format = fpga.MustQ(40, 10)
	res, err := HybridDeconvolveFrame(enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTimeS <= 0 {
		t.Error("no simulated time")
	}
	if res.Saturations != 0 {
		t.Errorf("saturations %d with wide format", res.Saturations)
	}
	for c := 0; c < cols; c++ {
		e, _ := hadamard.ReconstructionError(res.Decoded.DriftVector(c), truth.DriftVector(c))
		if e > 1e-3 {
			t.Fatalf("column %d error %g", c, e)
		}
	}
}

func TestHybridDeconvolveFrameErrors(t *testing.T) {
	if _, err := HybridDeconvolveFrame(nil, DefaultOffloadConfig()); err == nil {
		t.Error("nil frame")
	}
	f := instrument.NewFrame(10, 4) // not 2^n-1 drift bins
	cfg := DefaultOffloadConfig()
	cfg.Order = 7
	if _, err := HybridDeconvolveFrame(f, cfg); err == nil {
		t.Error("geometry mismatch")
	}
	bad := DefaultOffloadConfig()
	bad.WordBytes = 0
	if _, err := HybridDeconvolveFrame(instrument.NewFrame(127, 4), bad); err == nil {
		t.Error("invalid config")
	}
}

func TestSoftwareEstimate(t *testing.T) {
	est := SoftwareEstimate{MeasuredFrameS: 0.1, HostClockHz: 3e9}
	// On a 1.5 GHz, 2-core target: 0.1 × 2 / 2 = 0.1 s.
	got, err := est.FrameTimeOn(xd1.CPU{Cores: 2, ClockHz: 1.5e9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("frame time %g, want 0.1", got)
	}
	// More cores help linearly.
	got4, _ := est.FrameTimeOn(xd1.CPU{Cores: 4, ClockHz: 1.5e9})
	if math.Abs(got4-0.05) > 1e-12 {
		t.Errorf("4-core frame time %g, want 0.05", got4)
	}
	if _, err := est.FrameTimeOn(xd1.CPU{}); err == nil {
		t.Error("invalid CPU")
	}
	if _, err := (SoftwareEstimate{}).FrameTimeOn(xd1.OpteronSMP()); err == nil {
		t.Error("empty estimate")
	}
}

func BenchmarkHybridDeconvolveFrame(b *testing.B) {
	order := 9
	s := prs.MustMSequence(order)
	n := len(s)
	rng := rand.New(rand.NewSource(91))
	cols := 64
	enc := instrument.NewFrame(n, cols)
	for c := 0; c < cols; c++ {
		x := make([]float64, n)
		x[rng.Intn(n)] = 500
		y, _ := hadamard.Encode(s, x)
		enc.SetDriftVector(c, y)
	}
	cfg := DefaultOffloadConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HybridDeconvolveFrame(enc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAnalyzeCluster(t *testing.T) {
	cfg := DefaultOffloadConfig()
	host := xd1.RapidArray()
	r1, err := AnalyzeCluster(cfg, 1, host)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Efficiency < 0.99 || r1.LimitedBy != "compute" {
		t.Errorf("single node should be compute-limited at full efficiency: %+v", r1)
	}
	// Scaling is linear until the host link saturates.
	prev := r1.AggregateFPS
	sawHostLimit := false
	for nodes := 2; nodes <= 64; nodes *= 2 {
		r, err := AnalyzeCluster(cfg, nodes, host)
		if err != nil {
			t.Fatal(err)
		}
		if r.AggregateFPS < prev {
			t.Errorf("%d nodes: aggregate decreased", nodes)
		}
		if r.LimitedBy == "host-link" {
			sawHostLimit = true
			if r.AggregateFPS > r.HostLimitFPS*1.0001 {
				t.Errorf("aggregate %g exceeds host limit %g", r.AggregateFPS, r.HostLimitFPS)
			}
			if r.Efficiency >= 1 {
				t.Errorf("host-limited efficiency %g should be below 1", r.Efficiency)
			}
		}
		prev = r.AggregateFPS
	}
	if !sawHostLimit {
		t.Error("host link never saturated up to 64 nodes — collection model inert")
	}
	if _, err := AnalyzeCluster(cfg, 0, host); err == nil {
		t.Error("zero nodes")
	}
	if _, err := AnalyzeCluster(cfg, 2, xd1.Fabric{}); err == nil {
		t.Error("invalid host link")
	}
	bad := cfg
	bad.Order = 1
	if _, err := AnalyzeCluster(bad, 2, host); err == nil {
		t.Error("invalid offload")
	}
}

// TestOffloaderMatchesHybridDeconvolve pins the reusable Offloader path to
// the one-shot entry point bit for bit across repeated frames, and checks
// the per-frame saturation accounting and geometry guards.
func TestOffloaderMatchesHybridDeconvolve(t *testing.T) {
	order := 7
	s := prs.MustMSequence(order)
	n := len(s)
	rng := rand.New(rand.NewSource(91))
	cols := 12
	cfg := DefaultOffloadConfig()
	cfg.Order = order
	cfg.Format = fpga.MustQ(40, 10)
	o, err := NewOffloader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != n {
		t.Fatalf("offloader length %d, want %d", o.Len(), n)
	}
	for frame := 0; frame < 3; frame++ {
		enc := instrument.NewFrame(n, cols)
		for c := 0; c < cols; c++ {
			x := make([]float64, n)
			x[rng.Intn(n)] = 100 + rng.Float64()*900
			y, _ := hadamard.Encode(s, x)
			enc.SetDriftVector(c, y)
		}
		want, err := HybridDeconvolveFrame(enc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		dst := instrument.NewFrame(n, cols)
		got, err := o.DeconvolveFrameInto(context.Background(), dst, enc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Decoded != dst {
			t.Error("result frame is not the caller's dst")
		}
		for i := range dst.Data {
			if dst.Data[i] != want.Decoded.Data[i] {
				t.Fatalf("frame %d cell %d: offloader %v != one-shot %v", frame, i, dst.Data[i], want.Decoded.Data[i])
			}
		}
		if got.Saturations != want.Saturations {
			t.Errorf("frame %d: saturations %d != %d", frame, got.Saturations, want.Saturations)
		}
	}
	if _, err := o.DeconvolveFrameInto(context.Background(), nil, instrument.NewFrame(n, cols)); err == nil {
		t.Error("nil dst accepted")
	}
	if _, err := o.DeconvolveFrameInto(context.Background(), instrument.NewFrame(n, cols+1), instrument.NewFrame(n, cols)); err == nil {
		t.Error("geometry mismatch accepted")
	}
	if _, err := o.DeconvolveFrameInto(context.Background(), instrument.NewFrame(10, cols), instrument.NewFrame(10, cols)); err == nil {
		t.Error("wrong drift bins accepted")
	}
	if _, err := NewOffloader(OffloadConfig{}); err == nil {
		t.Error("invalid config accepted")
	}
}
