// stream.go: the executable streaming simulation of the FPGA data path —
// the clocked pipeline (capture → accumulate → deconvolve → DMA-out) fed at
// the instrument's production rate, with FIFO backpressure and stall
// accounting.  Where AnalyzeOffload gives the steady-state budget, this
// model shows the dynamics: queue depths, the stage that actually stalls,
// and whether the design keeps up when fed in real time.
package hybrid

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fpga"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// StreamConfig describes the streaming simulation.
type StreamConfig struct {
	Offload OffloadConfig
	// Columns is the number of m/z columns (one token each) to stream.
	Columns int
	// ArrivalInterval is the FPGA cycles between column arrivals from the
	// instrument (0 = back-to-back, the saturation test).
	ArrivalInterval int64
	// FIFODepth bounds each inter-stage queue.
	FIFODepth int
	// CaptureSamplesPerCycle and AccumBanks parallelize the front stages.
	CaptureSamplesPerCycle int
	AccumBanks             int
	// Metrics, when non-nil, receives the run's telemetry: per-cycle FIFO
	// depths and stall runs (fpga_* families, via Pipeline.Instrument),
	// per-stage accept/stall counters, end-to-end column latency and
	// collector lag (hybrid_* families).  Nil disables instrumentation.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records the run as one simulate_stream trace:
	// a root span for the wall-clock simulation plus one modeled span per
	// pipeline stage (busy time = accepted tokens × initiation interval at
	// the FPGA clock).  Nil disables tracing.
	Tracer *trace.Tracer
}

// DefaultStreamConfig streams 2048 columns of the reference offload with
// 4-deep FIFOs.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		Offload:                DefaultOffloadConfig(),
		Columns:                2048,
		ArrivalInterval:        0,
		FIFODepth:              4,
		CaptureSamplesPerCycle: 4,
		AccumBanks:             4,
	}
}

// Validate reports the first problem.
func (c StreamConfig) Validate() error {
	if err := c.Offload.Validate(); err != nil {
		return err
	}
	if c.Columns < 1 {
		return fmt.Errorf("hybrid: stream needs >= 1 column")
	}
	if c.ArrivalInterval < 0 {
		return fmt.Errorf("hybrid: negative arrival interval")
	}
	if c.FIFODepth < 1 {
		return fmt.Errorf("hybrid: FIFO depth %d must be >= 1", c.FIFODepth)
	}
	if c.CaptureSamplesPerCycle < 1 || c.AccumBanks < 1 {
		return fmt.Errorf("hybrid: stage parallelism must be positive")
	}
	return nil
}

// StageReport summarizes one pipeline stage after the run.
type StageReport struct {
	Name         string
	Accepted     int64
	InputStalls  int64
	OutputStalls int64
}

// StreamReport is the outcome of a streaming simulation.
type StreamReport struct {
	Columns        int
	TotalCycles    int64
	CyclesPerCol   float64
	ThroughputCols float64 // columns/s at the FPGA clock
	Stages         []StageReport
	// Bottleneck is the stage with the most output stalls (the producer
	// blocked by its consumer), or the structurally slowest stage when
	// nothing stalled.
	Bottleneck string
	// RealTime reports whether the sustained rate meets the arrival rate.
	RealTime bool
}

// SimulateStream pushes `Columns` column tokens through the clocked
// capture→accumulate→deconvolve→DMA pipeline and reports the dynamics.  It
// is SimulateStreamContext with context.Background().
func SimulateStream(c StreamConfig) (StreamReport, error) {
	return SimulateStreamContext(context.Background(), c)
}

// SimulateStreamContext is SimulateStream under a context: cancellation is
// checked between feed iterations and between drain slices, so a server
// deadline abandons a long simulation mid-run instead of clocking every
// remaining cycle.
func SimulateStreamContext(ctx context.Context, c StreamConfig) (StreamReport, error) {
	if err := c.Validate(); err != nil {
		return StreamReport{}, err
	}
	if err := ctx.Err(); err != nil {
		return StreamReport{}, err
	}
	core, err := fpga.NewFHTCore(c.Offload.Order, c.Offload.Format, c.Offload.Growth,
		c.Offload.ButterflyUnits, c.Offload.MemPorts)
	if err != nil {
		return StreamReport{}, err
	}
	n := core.Len()

	q1, err := fpga.NewFIFO("capture→accum", c.FIFODepth)
	if err != nil {
		return StreamReport{}, err
	}
	q2, err := fpga.NewFIFO("accum→fht", c.FIFODepth)
	if err != nil {
		return StreamReport{}, err
	}
	q3, err := fpga.NewFIFO("fht→dma", c.FIFODepth)
	if err != nil {
		return StreamReport{}, err
	}

	captureII := int((int64(n) + int64(c.CaptureSamplesPerCycle) - 1) / int64(c.CaptureSamplesPerCycle))
	accumII := int((int64(n) + int64(c.AccumBanks) - 1) / int64(c.AccumBanks))
	fhtII := int(core.CyclesPerFrame())
	// DMA cycles per column: column bytes over the fabric, in FPGA cycles.
	colBytes := float64(n * c.Offload.WordBytes)
	dmaSeconds := c.Offload.Node.Fabric.TransferTime(colBytes)
	dmaII := int(c.Offload.Node.FPGA.SecondsToCycles(dmaSeconds))
	if dmaII < 1 {
		dmaII = 1
	}

	capture := &fpga.Stage{Name: "capture", II: captureII, Out: q1}
	accum := &fpga.Stage{Name: "accumulate", II: accumII, In: q1, Out: q2}
	fht := &fpga.Stage{Name: "deconvolve", II: fhtII, In: q2, Out: q3}
	dma := &fpga.Stage{Name: "dma-out", II: dmaII, In: q3}

	p, err := fpga.NewPipeline(capture, accum, fht, dma)
	if err != nil {
		return StreamReport{}, err
	}
	p.Instrument(c.Metrics)

	// End-to-end column latency: cycles from feeding the capture stage to
	// acceptance at the DMA stage, via the stage's accept hook.  The
	// collector lag gauge tracks how far the sink trails the feed.
	colLatency := c.Metrics.Histogram("hybrid_column_latency_cycles",
		"cycles from capture feed to dma-out acceptance, per column")
	collectorLag := c.Metrics.Gauge("hybrid_collector_lag_peak_cols",
		"peak count of columns in flight between feed and dma-out")
	fed := 0
	var feedCycle []int64
	if c.Metrics != nil {
		feedCycle = make([]int64, c.Columns)
		dma.OnAccept = func(t fpga.Token, cycle int64) {
			if t.ID >= 0 && t.ID < len(feedCycle) {
				colLatency.Observe(float64(cycle - feedCycle[t.ID]))
			}
			collectorLag.SetMax(float64(int64(fed) - dma.Stats().Accepted))
		}
	}

	var nextArrival int64
	// drainSlice bounds the cycles clocked between cancellation checks.
	const drainSlice = int64(4096)
	ctxCountdown := drainSlice
	maxCycles := int64(c.Columns+16) * int64(fhtII+captureII+accumII+dmaII+int(c.ArrivalInterval)+4)
	for p.Cycle() < maxCycles {
		if ctxCountdown <= 0 {
			if err := ctx.Err(); err != nil {
				return StreamReport{}, err
			}
			ctxCountdown = drainSlice
		}
		if fed < c.Columns && p.Cycle() >= nextArrival {
			if p.Feed(capture, fpga.Token{ID: fed, Words: n}) {
				if feedCycle != nil {
					feedCycle[fed] = p.Cycle()
				}
				fed++
				nextArrival = p.Cycle() + c.ArrivalInterval
			}
		}
		if fed == c.Columns {
			for p.Cycle() < maxCycles {
				if err := ctx.Err(); err != nil {
					return StreamReport{}, err
				}
				slice := maxCycles - p.Cycle()
				if slice > drainSlice {
					slice = drainSlice
				}
				if _, ok := p.RunUntilDrained(slice); ok {
					break
				}
			}
			break
		}
		p.Step(1)
		ctxCountdown--
	}

	var rep StreamReport
	rep.Columns = c.Columns
	rep.TotalCycles = p.Cycle()
	rep.CyclesPerCol = float64(p.Cycle()) / float64(c.Columns)
	rep.ThroughputCols = c.Offload.Node.FPGA.ClockHz / rep.CyclesPerCol
	emitStreamTrace(c, p.Cycle(), []*fpga.Stage{capture, accum, fht, dma})
	c.Metrics.Counter("hybrid_stream_columns_total", "columns streamed through the clocked pipeline").Add(int64(c.Columns))
	c.Metrics.Counter("hybrid_stream_cycles_total", "total simulated cycles of the streaming run").Add(p.Cycle())
	for _, st := range []*fpga.Stage{capture, accum, fht, dma} {
		s := st.Stats()
		rep.Stages = append(rep.Stages, StageReport{
			Name:         s.Name,
			Accepted:     s.Accepted,
			InputStalls:  s.InputStalls,
			OutputStalls: s.OutputStalls,
		})
		if c.Metrics != nil {
			l := telemetry.L("stage", s.Name)
			c.Metrics.Counter("hybrid_stage_accepted_total", "tokens accepted per pipeline stage", l).Add(s.Accepted)
			c.Metrics.Counter("hybrid_stage_input_stall_cycles_total", "cycles a stage idled for lack of input", l).Add(s.InputStalls)
			c.Metrics.Counter("hybrid_stage_output_stall_cycles_total", "cycles a stage blocked on a full output FIFO", l).Add(s.OutputStalls)
		}
		if s.Accepted != int64(c.Columns) {
			return StreamReport{}, fmt.Errorf("hybrid: stage %s accepted %d of %d columns (pipeline wedged)",
				s.Name, s.Accepted, c.Columns)
		}
	}
	if c.Metrics != nil {
		for _, q := range []*fpga.FIFO{q1, q2, q3} {
			_, _, fullStalls, maxDepth := q.Stats()
			l := telemetry.L("fifo", q.Name)
			c.Metrics.Gauge("hybrid_queue_depth_peak", "high-water occupancy of each inter-stage queue, tokens", l).Set(float64(maxDepth))
			c.Metrics.Counter("hybrid_queue_full_stalls_total", "pushes rejected by a full inter-stage queue", l).Add(fullStalls)
		}
	}
	// Bottleneck: the consumer downstream of the stage with the most
	// output stalls (a stalled producer is blocked BY its consumer); fall
	// back to the largest initiation interval when nothing stalled.
	best := -1
	var bestStalls int64 = -1
	for i, s := range rep.Stages {
		if s.OutputStalls > bestStalls {
			bestStalls = s.OutputStalls
			best = i
		}
	}
	if bestStalls > 0 && best+1 < len(rep.Stages) {
		rep.Bottleneck = rep.Stages[best+1].Name
	} else {
		iis := []struct {
			name string
			ii   int
		}{{"capture", captureII}, {"accumulate", accumII}, {"deconvolve", fhtII}, {"dma-out", dmaII}}
		worst := iis[0]
		for _, s := range iis[1:] {
			if s.ii > worst.ii {
				worst = s
			}
		}
		rep.Bottleneck = worst.name
	}
	if c.ArrivalInterval > 0 {
		rep.RealTime = rep.CyclesPerCol <= float64(c.ArrivalInterval)*1.05
	} else {
		rep.RealTime = true
	}
	return rep, nil
}

// streamSpanNames maps each clocked-pipeline stage to its span name in
// the shared taxonomy (docs/OBSERVABILITY.md).
var streamSpanNames = map[string]string{
	"capture":    "fpga_capture",
	"accumulate": "fpga_accumulate",
	"deconvolve": "fpga_fht",
	"dma-out":    "xd1_dma_out",
}

// emitStreamTrace records one finished streaming run as a simulate_stream
// trace: a root span covering the modeled run, with one synthetic child
// per stage whose duration is that stage's busy time (accepted tokens ×
// initiation interval) at the FPGA clock.  A nil tracer is free.
func emitStreamTrace(c StreamConfig, totalCycles int64, stages []*fpga.Stage) {
	root := c.Tracer.StartTrace("simulate_stream", 0)
	if !root.Active() {
		return
	}
	root.SetInt("columns", int64(c.Columns))
	root.SetInt("total_cycles", totalCycles)
	start := time.Now()
	for _, st := range stages {
		s := st.Stats()
		busy := time.Duration(c.Offload.Node.FPGA.CyclesToSeconds(s.Accepted*int64(st.II)) * 1e9)
		name := streamSpanNames[s.Name]
		if name == "" {
			name = s.Name
		}
		sp := root.ChildAt(name, start)
		sp.SetInt("accepted", s.Accepted)
		sp.SetInt("input_stalls", s.InputStalls)
		sp.SetInt("output_stalls", s.OutputStalls)
		sp.EndAfter(busy)
	}
	root.EndAfter(time.Duration(c.Offload.Node.FPGA.CyclesToSeconds(totalCycles) * 1e9))
}
