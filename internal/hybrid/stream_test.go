package hybrid

import (
	"testing"
)

func TestSimulateStreamSaturated(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.Columns = 64
	rep, err := SimulateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Columns != 64 || rep.TotalCycles <= 0 {
		t.Fatalf("report %+v", rep)
	}
	// Under saturation the steady-state cycles/column approaches the
	// slowest stage's initiation interval (the FHT core here).
	if rep.Bottleneck != "deconvolve" {
		t.Errorf("bottleneck %q, want deconvolve", rep.Bottleneck)
	}
	// Back-pressure must be visible upstream of the bottleneck.
	var upstreamStalled bool
	for _, s := range rep.Stages {
		if (s.Name == "capture" || s.Name == "accumulate") && s.OutputStalls > 0 {
			upstreamStalled = true
		}
		if s.Accepted != 64 {
			t.Errorf("stage %s accepted %d", s.Name, s.Accepted)
		}
	}
	if !upstreamStalled {
		t.Error("expected upstream stages to stall on the deconvolve core")
	}
	if rep.ThroughputCols <= 0 {
		t.Error("no throughput computed")
	}
}

// TestSimulateStreamMatchesBudget: the dynamic simulation's steady-state
// cycles/column agrees with the analytic compute budget within 20 %.
func TestSimulateStreamMatchesBudget(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.Columns = 128
	rep, err := SimulateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	off := cfg.Offload
	off.TOFColumns = 1
	budget, err := AnalyzeOffload(off)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rep.CyclesPerCol / float64(budget.ColumnCycles)
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("dynamic %.1f cycles/col vs budget %d (ratio %.2f)", rep.CyclesPerCol, budget.ColumnCycles, ratio)
	}
}

// TestSimulateStreamRealTime: fed at a slow arrival rate the pipeline keeps
// up; fed faster than the core it does not.
func TestSimulateStreamRealTime(t *testing.T) {
	slow := DefaultStreamConfig()
	slow.Columns = 32
	slow.ArrivalInterval = 10000 // far slower than the ~1-2k cycle core
	rep, err := SimulateStream(slow)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RealTime {
		t.Error("slow arrivals should be real-time")
	}
	// No stalls when the pipeline idles between arrivals.
	for _, s := range rep.Stages {
		if s.OutputStalls > 0 {
			t.Errorf("stage %s stalled %d times at slow arrivals", s.Name, s.OutputStalls)
		}
	}
	fast := DefaultStreamConfig()
	fast.Columns = 32
	fast.ArrivalInterval = 100 // faster than the core can drain
	rep2, err := SimulateStream(fast)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RealTime {
		t.Error("over-fast arrivals should not be real-time")
	}
}

func TestSimulateStreamValidation(t *testing.T) {
	bad := DefaultStreamConfig()
	bad.Columns = 0
	if _, err := SimulateStream(bad); err == nil {
		t.Error("zero columns")
	}
	bad = DefaultStreamConfig()
	bad.ArrivalInterval = -1
	if _, err := SimulateStream(bad); err == nil {
		t.Error("negative arrival interval")
	}
	bad = DefaultStreamConfig()
	bad.FIFODepth = 0
	if _, err := SimulateStream(bad); err == nil {
		t.Error("zero FIFO depth")
	}
	bad = DefaultStreamConfig()
	bad.CaptureSamplesPerCycle = 0
	if _, err := SimulateStream(bad); err == nil {
		t.Error("zero capture parallelism")
	}
	bad = DefaultStreamConfig()
	bad.Offload.Order = 1
	if _, err := SimulateStream(bad); err == nil {
		t.Error("bad offload")
	}
}

func BenchmarkSimulateStream(b *testing.B) {
	cfg := DefaultStreamConfig()
	cfg.Columns = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateStream(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
