package hybrid

import (
	"testing"

	"repro/internal/telemetry"
)

func TestSimulateStreamSaturated(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.Columns = 64
	rep, err := SimulateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Columns != 64 || rep.TotalCycles <= 0 {
		t.Fatalf("report %+v", rep)
	}
	// Under saturation the steady-state cycles/column approaches the
	// slowest stage's initiation interval (the FHT core here).
	if rep.Bottleneck != "deconvolve" {
		t.Errorf("bottleneck %q, want deconvolve", rep.Bottleneck)
	}
	// Back-pressure must be visible upstream of the bottleneck.
	var upstreamStalled bool
	for _, s := range rep.Stages {
		if (s.Name == "capture" || s.Name == "accumulate") && s.OutputStalls > 0 {
			upstreamStalled = true
		}
		if s.Accepted != 64 {
			t.Errorf("stage %s accepted %d", s.Name, s.Accepted)
		}
	}
	if !upstreamStalled {
		t.Error("expected upstream stages to stall on the deconvolve core")
	}
	if rep.ThroughputCols <= 0 {
		t.Error("no throughput computed")
	}
}

// TestSimulateStreamMatchesBudget: the dynamic simulation's steady-state
// cycles/column agrees with the analytic compute budget within 20 %.
func TestSimulateStreamMatchesBudget(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.Columns = 128
	rep, err := SimulateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	off := cfg.Offload
	off.TOFColumns = 1
	budget, err := AnalyzeOffload(off)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rep.CyclesPerCol / float64(budget.ColumnCycles)
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("dynamic %.1f cycles/col vs budget %d (ratio %.2f)", rep.CyclesPerCol, budget.ColumnCycles, ratio)
	}
}

// TestSimulateStreamRealTime: fed at a slow arrival rate the pipeline keeps
// up; fed faster than the core it does not.
func TestSimulateStreamRealTime(t *testing.T) {
	slow := DefaultStreamConfig()
	slow.Columns = 32
	slow.ArrivalInterval = 10000 // far slower than the ~1-2k cycle core
	rep, err := SimulateStream(slow)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RealTime {
		t.Error("slow arrivals should be real-time")
	}
	// No stalls when the pipeline idles between arrivals.
	for _, s := range rep.Stages {
		if s.OutputStalls > 0 {
			t.Errorf("stage %s stalled %d times at slow arrivals", s.Name, s.OutputStalls)
		}
	}
	fast := DefaultStreamConfig()
	fast.Columns = 32
	fast.ArrivalInterval = 100 // faster than the core can drain
	rep2, err := SimulateStream(fast)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RealTime {
		t.Error("over-fast arrivals should not be real-time")
	}
}

func TestSimulateStreamValidation(t *testing.T) {
	bad := DefaultStreamConfig()
	bad.Columns = 0
	if _, err := SimulateStream(bad); err == nil {
		t.Error("zero columns")
	}
	bad = DefaultStreamConfig()
	bad.ArrivalInterval = -1
	if _, err := SimulateStream(bad); err == nil {
		t.Error("negative arrival interval")
	}
	bad = DefaultStreamConfig()
	bad.FIFODepth = 0
	if _, err := SimulateStream(bad); err == nil {
		t.Error("zero FIFO depth")
	}
	bad = DefaultStreamConfig()
	bad.CaptureSamplesPerCycle = 0
	if _, err := SimulateStream(bad); err == nil {
		t.Error("zero capture parallelism")
	}
	bad = DefaultStreamConfig()
	bad.Offload.Order = 1
	if _, err := SimulateStream(bad); err == nil {
		t.Error("bad offload")
	}
}

func BenchmarkSimulateStream(b *testing.B) {
	cfg := DefaultStreamConfig()
	cfg.Columns = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateStream(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSimulateStreamTelemetry: an instrumented run must publish the queue,
// latency and stall families with values consistent with the report — the
// integration contract behind -metrics in the commands.
func TestSimulateStreamTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultStreamConfig()
	cfg.Columns = 64
	cfg.Metrics = reg
	rep, err := SimulateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lat := reg.Histogram("hybrid_column_latency_cycles",
		"cycles from capture feed to dma-out acceptance, per column")
	if got := lat.Count(); got != int64(cfg.Columns) {
		t.Errorf("latency observations = %d, want %d", got, cfg.Columns)
	}
	if lat.Quantile(0.5) <= 0 {
		t.Error("median column latency should be positive")
	}
	var anyDepth bool
	for _, fifo := range []string{"capture→accum", "accum→fht", "fht→dma"} {
		g := reg.Gauge("hybrid_queue_depth_peak",
			"high-water occupancy of each inter-stage queue, tokens", telemetry.L("fifo", fifo))
		if g.Value() > 0 {
			anyDepth = true
		}
	}
	if !anyDepth {
		t.Error("no inter-stage queue reported a non-zero peak depth")
	}
	if got := reg.Counter("hybrid_stream_columns_total", "").Value(); got != int64(cfg.Columns) {
		t.Errorf("hybrid_stream_columns_total = %d, want %d", got, cfg.Columns)
	}
	if got := reg.Counter("hybrid_stream_cycles_total", "").Value(); got != rep.TotalCycles {
		t.Errorf("hybrid_stream_cycles_total = %d, want %d", got, rep.TotalCycles)
	}
	// The clocked-pipeline families from fpga.Pipeline.Instrument must be
	// present with activity: per-cycle FIFO depth samples and total cycles.
	if got := reg.Counter("fpga_pipeline_cycles_total", "").Value(); got != rep.TotalCycles {
		t.Errorf("fpga_pipeline_cycles_total = %d, want %d", got, rep.TotalCycles)
	}
	depth := reg.Histogram("fpga_fifo_depth", "per-cycle FIFO occupancy, tokens",
		telemetry.L("fifo", "accum→fht"))
	if depth.Count() == 0 {
		t.Error("fpga_fifo_depth has no per-cycle samples")
	}
	for _, s := range rep.Stages {
		got := reg.Counter("hybrid_stage_accepted_total", "", telemetry.L("stage", s.Name)).Value()
		if got != s.Accepted {
			t.Errorf("stage %s accepted counter = %d, want %d", s.Name, got, s.Accepted)
		}
	}
}
