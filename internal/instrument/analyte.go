// Package instrument simulates the advanced ion mobility mass spectrometer
// end to end: an electrospray ion source with optional LC elution, an
// electrodynamic ion funnel trap with automated gain control, a
// pseudorandom-sequence-driven ion gate, an IMS drift tube with diffusion
// and space-charge physics, an orthogonal time-of-flight mass analyzer, and
// a multichannel-plate detector digitized by an 8-bit ADC.  Its output is
// the raw accumulated frame stream the paper's FPGA component captures.
package instrument

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/chem"
)

// Analyte is one ionic species delivered by the source: a specific peptide
// (or other molecule) at a specific charge state.
type Analyte struct {
	Name      string
	MassDa    float64 // neutral monoisotopic mass
	Z         int     // positive charge state
	MZ        float64 // mass-to-charge ratio, Th
	CCSM2     float64 // ion-neutral collision cross section, m²
	Abundance float64 // relative ion current contribution, arbitrary units
	// Isotopes optionally carries the isotopic envelope as (m/z offset
	// from MZ, fractional abundance) pairs; when nil the analyte is
	// treated as a single peak at MZ.  Populate with WithIsotopes.
	Isotopes []IsotopePeakMZ
}

// IsotopePeakMZ is one isotopologue peak of an analyte in m/z space.
type IsotopePeakMZ struct {
	OffsetMZ float64 // m/z offset from the monoisotopic peak
	Fraction float64 // fraction of the analyte's intensity
}

// WithIsotopes attaches the isotopic envelope of the given elemental
// formula to the analyte, pruning species below pruneBelow fractional
// abundance.  The envelope's mass spacing is divided by the charge so the
// offsets are in m/z.
func (a Analyte) WithIsotopes(f chem.Formula, pruneBelow float64) (Analyte, error) {
	if a.Z <= 0 {
		return Analyte{}, fmt.Errorf("instrument: analyte %q needs a positive charge for isotopes", a.Name)
	}
	env := f.IsotopicEnvelope(pruneBelow)
	if len(env) == 0 {
		return Analyte{}, fmt.Errorf("instrument: empty isotopic envelope for %q", a.Name)
	}
	mono := env[0].MassDa
	out := a
	out.Isotopes = make([]IsotopePeakMZ, len(env))
	for i, p := range env {
		out.Isotopes[i] = IsotopePeakMZ{
			OffsetMZ: (p.MassDa - mono) / float64(a.Z),
			Fraction: p.Abundance,
		}
	}
	return out, nil
}

// Validate reports a descriptive error for an unusable analyte.
func (a Analyte) Validate() error {
	if a.MassDa <= 0 {
		return fmt.Errorf("instrument: analyte %q mass %g must be positive", a.Name, a.MassDa)
	}
	if a.Z <= 0 {
		return fmt.Errorf("instrument: analyte %q charge %d must be positive", a.Name, a.Z)
	}
	if a.MZ <= 0 {
		return fmt.Errorf("instrument: analyte %q m/z %g must be positive", a.Name, a.MZ)
	}
	if a.CCSM2 <= 0 {
		return fmt.Errorf("instrument: analyte %q CCS %g must be positive", a.Name, a.CCSM2)
	}
	if a.Abundance < 0 {
		return fmt.Errorf("instrument: analyte %q abundance %g must be non-negative", a.Name, a.Abundance)
	}
	return nil
}

// AnalytesFromPeptide expands a peptide into one Analyte per plausible ESI
// charge state, splitting the given abundance across states by their
// electrospray populations.  Charge states below minFraction of the total
// are dropped to keep workloads compact.
func AnalytesFromPeptide(name string, p chem.Peptide, abundance, minFraction float64) ([]Analyte, error) {
	if abundance < 0 {
		return nil, fmt.Errorf("instrument: negative abundance for %q", name)
	}
	var out []Analyte
	for _, cs := range p.ChargeStates() {
		if cs.Fraction < minFraction {
			continue
		}
		mz, err := p.MZ(cs.Z)
		if err != nil {
			return nil, err
		}
		ccs, err := p.CCS(cs.Z)
		if err != nil {
			return nil, err
		}
		out = append(out, Analyte{
			Name:      fmt.Sprintf("%s/%d+", name, cs.Z),
			MassDa:    p.MonoisotopicMass(),
			Z:         cs.Z,
			MZ:        mz,
			CCSM2:     ccs,
			Abundance: abundance * cs.Fraction,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("instrument: peptide %q produced no charge states above %g", name, minFraction)
	}
	return out, nil
}

// Mixture is a set of analytes with convenience constructors and totals.
type Mixture struct {
	Analytes []Analyte
}

// AddPeptide expands the peptide into charge states and appends them.
func (m *Mixture) AddPeptide(name string, p chem.Peptide, abundance float64) error {
	as, err := AnalytesFromPeptide(name, p, abundance, 0.02)
	if err != nil {
		return err
	}
	m.Analytes = append(m.Analytes, as...)
	return nil
}

// AddAnalyte appends a raw analyte after validation.
func (m *Mixture) AddAnalyte(a Analyte) error {
	if err := a.Validate(); err != nil {
		return err
	}
	m.Analytes = append(m.Analytes, a)
	return nil
}

// TotalAbundance returns the sum of analyte abundances.
func (m *Mixture) TotalAbundance() float64 {
	var t float64
	for _, a := range m.Analytes {
		t += a.Abundance
	}
	return t
}

// SortByMZ orders the analytes by ascending m/z (stable), convenient for
// reporting.
func (m *Mixture) SortByMZ() {
	sort.SliceStable(m.Analytes, func(i, j int) bool { return m.Analytes[i].MZ < m.Analytes[j].MZ })
}

// Validate checks every analyte and that the mixture is non-empty.
func (m *Mixture) Validate() error {
	if len(m.Analytes) == 0 {
		return fmt.Errorf("instrument: empty mixture")
	}
	for _, a := range m.Analytes {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// SyntheticBackground generates n diffuse background species — unresolved
// solvent clusters and chemical noise spread across the recorded m/z range
// — sharing totalAbundance equally.  Their cross sections follow the
// peptide CCS trend with ±20 % scatter so they populate the whole drift
// range; real ESI spectra carry such a background at every m/z, and it is
// the dominant noise floor at low analyte levels.  Deterministic in rng.
func SyntheticBackground(rng *rand.Rand, n int, totalAbundance, minMZ, maxMZ float64) ([]Analyte, error) {
	if n < 1 {
		return nil, fmt.Errorf("instrument: background species count %d must be >= 1", n)
	}
	if totalAbundance <= 0 {
		return nil, fmt.Errorf("instrument: background abundance %g must be positive", totalAbundance)
	}
	if minMZ <= 0 || maxMZ <= minMZ {
		return nil, fmt.Errorf("instrument: background m/z range (%g, %g) invalid", minMZ, maxMZ)
	}
	out := make([]Analyte, n)
	for i := range out {
		mz := minMZ + rng.Float64()*(maxMZ-minMZ)
		z := 1
		mass := mz - 1.00728
		// Peptide-trend CCS with scatter.
		ccs := 2.3 * math.Pow(mass, 2.0/3.0) * (0.8 + 0.4*rng.Float64()) * 1e-20
		out[i] = Analyte{
			Name:      fmt.Sprintf("background-%03d", i),
			MassDa:    mass,
			Z:         z,
			MZ:        mz,
			CCSM2:     ccs,
			Abundance: totalAbundance / float64(n),
		}
		if err := out[i].Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
