// detector.go models the microchannel-plate detector and the 8-bit ADC
// digitizer whose accumulated output is the raw data stream of the
// instrument.  Ion arrivals are Poisson processes; each ion produces an
// electron avalanche with multiplicative gain spread; the ADC adds baseline
// offset and thermal noise, quantizes to its word width, and saturates.
package instrument

import (
	"fmt"
	"math"
	"math/rand"
)

// Detector is the MCP/electron-multiplier model.
type Detector struct {
	// GainCounts is the mean digitizer counts produced per ion arrival.
	GainCounts float64
	// GainSpread is the relative sigma of per-ion gain fluctuation
	// (exponential-ish avalanche statistics ≈ 1.0 for MCPs; we use a
	// truncated normal with this relative width).
	GainSpread float64
}

// DefaultDetector returns MCP-like behaviour: 8 counts per ion, wide gain
// spread.
func DefaultDetector() Detector {
	return Detector{GainCounts: 8, GainSpread: 0.7}
}

// Validate reports unusable detector parameters.
func (d Detector) Validate() error {
	if d.GainCounts <= 0 {
		return fmt.Errorf("instrument: detector gain %g must be positive", d.GainCounts)
	}
	if d.GainSpread < 0 {
		return fmt.Errorf("instrument: negative gain spread")
	}
	return nil
}

// Counts converts nIons simultaneous ion arrivals into digitizer counts,
// sampling per-ion gain fluctuations.  For large nIons a normal
// approximation keeps the cost constant.
func (d Detector) Counts(nIons int64, rng *rand.Rand) float64 {
	if nIons <= 0 {
		return 0
	}
	mean := float64(nIons) * d.GainCounts
	if d.GainSpread == 0 {
		return mean
	}
	sd := d.GainCounts * d.GainSpread * math.Sqrt(float64(nIons))
	v := mean + rng.NormFloat64()*sd
	if v < 0 {
		return 0
	}
	return v
}

// ADC is the 8-bit digitizer whose samples the FPGA accumulates.
type ADC struct {
	Bits          int     // word width (8 for the reproduced instrument)
	BaselineMean  float64 // mean baseline offset per sample, counts
	BaselineSigma float64 // RMS baseline noise per sample, counts
	ThresholdCnt  float64 // counts subtracted/thresholded per sample (0 = off)
}

// DefaultADC returns the 8-bit, ~1.2-count-noise digitizer used by the
// reference configuration.
func DefaultADC() ADC {
	return ADC{Bits: 8, BaselineMean: 1.0, BaselineSigma: 1.2, ThresholdCnt: 0}
}

// Validate reports unusable ADC parameters.
func (a ADC) Validate() error {
	if a.Bits < 1 || a.Bits > 24 {
		return fmt.Errorf("instrument: ADC bits %d out of range [1,24]", a.Bits)
	}
	if a.BaselineSigma < 0 {
		return fmt.Errorf("instrument: negative ADC noise")
	}
	if a.ThresholdCnt < 0 {
		return fmt.Errorf("instrument: negative ADC threshold")
	}
	return nil
}

// FullScale returns the saturation level of a single sample.
func (a ADC) FullScale() float64 { return float64(int64(1)<<a.Bits - 1) }

// Sample digitizes one analog level (detector counts for one extraction):
// baseline + noise added, quantized, clipped to [0, full scale], and
// optionally thresholded (sub-threshold samples record zero — the FPGA
// capture core's noise suppression).
func (a ADC) Sample(analog float64, rng *rand.Rand) float64 {
	v := analog + a.BaselineMean + rng.NormFloat64()*a.BaselineSigma
	v = math.Round(v)
	if v < 0 {
		v = 0
	}
	if fs := a.FullScale(); v > fs {
		v = fs
	}
	if a.ThresholdCnt > 0 && v < a.ThresholdCnt {
		return 0
	}
	return v
}

// AccumulateSamples digitizes n repeated extractions whose per-extraction
// expected ion count is lambda, accumulating the quantized samples — the
// operation the FPGA accumulation core performs in hardware.  Sampling is
// exact (per-extraction) below exactCutoff extractions and uses a
// moment-matched normal approximation above it, keeping frame synthesis
// tractable at realistic extraction rates.
func (a ADC) AccumulateSamples(lambda float64, n int64, det Detector, rng *rand.Rand, exactCutoff int64) float64 {
	if n <= 0 {
		return 0
	}
	if lambda < 0 {
		lambda = 0
	}
	if n <= exactCutoff {
		var acc float64
		for i := int64(0); i < n; i++ {
			ions := PoissonSample(lambda, rng)
			acc += a.Sample(det.Counts(ions, rng), rng)
		}
		return acc
	}
	// Normal approximation of the accumulated sum.  Per-extraction sample
	// mean ≈ λ·gain + baseline, variance ≈ λ·gain²·(1+spread²) + noise².
	perMean := lambda*det.GainCounts + a.BaselineMean
	perVar := lambda*det.GainCounts*det.GainCounts*(1+det.GainSpread*det.GainSpread) +
		a.BaselineSigma*a.BaselineSigma + 1.0/12 // quantization variance
	mean := perMean * float64(n)
	sd := math.Sqrt(perVar * float64(n))
	v := mean + rng.NormFloat64()*sd
	if v < 0 {
		v = 0
	}
	if max := a.FullScale() * float64(n); v > max {
		v = max
	}
	return math.Round(v)
}

// TDC models time-to-digital (event-counting) detection: per extraction and
// per bin, at most MaxEventsPerBin ion events are registered before the
// converter's dead time blanks the channel.  Counting is noiseless at low
// flux but saturates at high flux — the dynamic-range ceiling that motivated
// the move from TDC to ADC detection in the multiplexed instrument
// (Belov et al. 2008).
type TDC struct {
	// MaxEventsPerBin is the events registered per bin per extraction
	// before dead time truncates (1 for a classic single-stop TDC).
	MaxEventsPerBin int
}

// DefaultTDC returns a single-stop converter.
func DefaultTDC() TDC { return TDC{MaxEventsPerBin: 1} }

// Validate reports unusable TDC parameters.
func (t TDC) Validate() error {
	if t.MaxEventsPerBin < 1 {
		return fmt.Errorf("instrument: TDC max events %d must be >= 1", t.MaxEventsPerBin)
	}
	return nil
}

// ExpectedCounts returns the mean registered events per extraction for a
// true per-extraction ion rate lambda: saturating at MaxEventsPerBin, with
// the classic 1−exp(−λ) single-stop response.
func (t TDC) ExpectedCounts(lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if t.MaxEventsPerBin == 1 {
		return 1 - math.Exp(-lambda)
	}
	// Multi-stop: E[min(X,k)] = k − Σ_{j<k} (k−j)·P(X=j), an exact sum
	// over only the sub-threshold terms.
	k := float64(t.MaxEventsPerBin)
	mean := k
	p := math.Exp(-lambda)
	for j := 0; j < t.MaxEventsPerBin; j++ {
		mean -= (k - float64(j)) * p
		p *= lambda / float64(j+1)
	}
	return mean
}

// AccumulateSamples counts registered events over n extractions with
// per-extraction expected ion count lambda.  Below exactCutoff each
// extraction is sampled; above it a moment-matched normal approximation of
// the binomial/truncated-Poisson sum is used.
func (t TDC) AccumulateSamples(lambda float64, n int64, rng *rand.Rand, exactCutoff int64) float64 {
	if n <= 0 || lambda <= 0 {
		return 0
	}
	if n <= exactCutoff {
		var acc int64
		for i := int64(0); i < n; i++ {
			ions := PoissonSample(lambda, rng)
			if ions > int64(t.MaxEventsPerBin) {
				ions = int64(t.MaxEventsPerBin)
			}
			acc += ions
		}
		return float64(acc)
	}
	mean := t.ExpectedCounts(lambda)
	// Variance of min(Poisson, k) <= Poisson variance; for the single-stop
	// case it is Bernoulli: p(1-p).
	var variance float64
	if t.MaxEventsPerBin == 1 {
		p := mean
		variance = p * (1 - p)
	} else {
		variance = math.Min(lambda, float64(t.MaxEventsPerBin))
	}
	v := mean*float64(n) + rng.NormFloat64()*math.Sqrt(variance*float64(n))
	if v < 0 {
		v = 0
	}
	if max := float64(t.MaxEventsPerBin) * float64(n); v > max {
		v = max
	}
	return math.Round(v)
}

// PoissonSample draws a Poisson-distributed count with mean lambda.
// Knuth's product method is used for small lambda and a normal
// approximation for large lambda.
func PoissonSample(lambda float64, rng *rand.Rand) int64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := math.Round(lambda + rng.NormFloat64()*math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int64(v)
	}
	l := math.Exp(-lambda)
	var k int64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
