// drift.go models the IMS drift tube: converting analyte cross sections to
// drift times and arrival-time distributions under the configured gas
// conditions, including diffusion and space-charge broadening.
package instrument

import (
	"fmt"

	"repro/internal/physics"
)

// DriftTube is the mobility separation region.
type DriftTube struct {
	LengthM    float64 // drift length, m
	Conditions physics.Conditions
	// PacketRadiusM and PacketLengthM describe the injected packet
	// geometry for the space-charge model.
	PacketRadiusM float64
	PacketLengthM float64
}

// DefaultDriftTube returns the ~1 m, 4 Torr nitrogen tube with ~20 V/cm
// used as the reference geometry throughout the reproduction.
func DefaultDriftTube() DriftTube {
	return DriftTube{
		LengthM: 1.0,
		Conditions: physics.Conditions{
			Gas:          physics.Nitrogen,
			PressureTorr: 4,
			TempK:        300,
			FieldVPerM:   2000,
		},
		PacketRadiusM: 1e-3,
		PacketLengthM: 5e-3,
	}
}

// Validate reports unusable tube parameters.
func (d DriftTube) Validate() error {
	if d.LengthM <= 0 {
		return fmt.Errorf("instrument: drift length %g must be positive", d.LengthM)
	}
	if d.PacketRadiusM <= 0 || d.PacketLengthM <= 0 {
		return fmt.Errorf("instrument: packet geometry (%g, %g) must be positive", d.PacketRadiusM, d.PacketLengthM)
	}
	return d.Conditions.Validate()
}

// Arrival describes an analyte's arrival-time distribution at the tube exit
// for a packet injected at t=0.
type Arrival struct {
	MeanS  float64 // mean drift time, s
	SigmaS float64 // total temporal standard deviation, s
}

// Arrival computes the arrival distribution for an analyte injected as a
// packet of the given total charge through a gate opening of gateWidthS.
func (d DriftTube) Arrival(a Analyte, gateWidthS, packetCharges float64) (Arrival, error) {
	if err := d.Validate(); err != nil {
		return Arrival{}, err
	}
	if err := a.Validate(); err != nil {
		return Arrival{}, err
	}
	if gateWidthS < 0 || packetCharges < 0 {
		return Arrival{}, fmt.Errorf("instrument: negative gate width or packet charge")
	}
	k, err := physics.Mobility(a.MassDa, a.Z, a.CCSM2, d.Conditions)
	if err != nil {
		return Arrival{}, err
	}
	td, err := physics.DriftTime(k, d.LengthM, d.Conditions)
	if err != nil {
		return Arrival{}, err
	}
	v := physics.DriftVelocity(k, d.Conditions)
	diff := physics.DiffusionCoefficient(k, a.Z, d.Conditions.TempK)
	diffSigma := physics.DiffusionSigmaTime(diff, td, v)
	sc := physics.SpaceCharge{
		Charges:       packetCharges,
		InitialRadius: d.PacketRadiusM,
		InitialLength: d.PacketLengthM,
	}
	scSigma := sc.SigmaTime(k, td, v)
	total := physics.TotalSigmaTime(gateWidthS, diffSigma, scSigma)
	return Arrival{MeanS: td, SigmaS: total}, nil
}

// MaxDriftTime returns the drift time of the slowest analyte in the
// mixture, used to size the IMS frame so the full mobility range fits in
// one sequence cycle.
func (d DriftTube) MaxDriftTime(m Mixture) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	var max float64
	for _, a := range m.Analytes {
		arr, err := d.Arrival(a, 0, 0)
		if err != nil {
			return 0, err
		}
		if arr.MeanS > max {
			max = arr.MeanS
		}
	}
	return max, nil
}

// ResolvingPower returns the diffusion-limited resolving power of the tube
// for charge state z.
func (d DriftTube) ResolvingPower(z int) (float64, error) {
	voltage := d.Conditions.FieldVPerM * d.LengthM
	return physics.ResolvingPower(z, voltage, d.Conditions.TempK)
}
