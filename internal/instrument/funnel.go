// funnel.go models the electrodynamic ion funnel trap (IFT) interface: it
// accumulates the continuous ion beam between gate injections and releases
// it as a concentrated packet, raising ion utilization beyond the ~50 %
// Hadamard bound (Clowers et al. 2008; Ibrahim et al. 2007).  Automated gain
// control (AGC, Belov et al. 2008) adapts the accumulation time to the
// incoming current so the trap neither starves nor exceeds its space-charge
// capacity.
package instrument

import (
	"fmt"
	"math"
)

// FunnelTrap models charge accumulation in the ion funnel trap.
type FunnelTrap struct {
	// Capacity is the space-charge limit in elementary charges
	// (≈3×10⁷ for the PNNL trap, Ibrahim et al. 2007).
	Capacity float64
	// TrappingEfficiency is the fraction of incoming ions that are
	// captured while the trap accumulates (0..1].
	TrappingEfficiency float64
	// ReleaseFraction is the fraction of stored charge ejected per release
	// pulse (near 1 for a well-tuned trap).
	ReleaseFraction float64

	stored float64 // current stored charge
}

// NewFunnelTrap validates and constructs a trap.
func NewFunnelTrap(capacity, trapEff, releaseFrac float64) (*FunnelTrap, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("instrument: trap capacity %g must be positive", capacity)
	}
	if trapEff <= 0 || trapEff > 1 {
		return nil, fmt.Errorf("instrument: trapping efficiency %g must be in (0,1]", trapEff)
	}
	if releaseFrac <= 0 || releaseFrac > 1 {
		return nil, fmt.Errorf("instrument: release fraction %g must be in (0,1]", releaseFrac)
	}
	return &FunnelTrap{Capacity: capacity, TrappingEfficiency: trapEff, ReleaseFraction: releaseFrac}, nil
}

// Accumulate adds rate·dt incoming charges (scaled by trapping efficiency)
// and returns the number of charges lost to the space-charge limit during
// this interval.  Once the trap is full, additional ions are not retained.
func (ft *FunnelTrap) Accumulate(rate, dt float64) (lost float64) {
	if rate <= 0 || dt <= 0 {
		return 0
	}
	incoming := rate * dt * ft.TrappingEfficiency
	room := ft.Capacity - ft.stored
	if room <= 0 {
		return incoming
	}
	if incoming <= room {
		ft.stored += incoming
		return 0
	}
	ft.stored = ft.Capacity
	return incoming - room
}

// Release ejects the release fraction of the stored charge as a packet and
// returns its size in elementary charges.
func (ft *FunnelTrap) Release() float64 {
	packet := ft.stored * ft.ReleaseFraction
	ft.stored -= packet
	return packet
}

// ReleaseUpTo ejects at most max charges (release fraction applied first),
// leaving any excess stored for later pulses.  Equalized release is how the
// AGC-driven trap keeps multiplexed packets uniform despite the varying
// inter-pulse gaps of a pseudorandom sequence: uniform packets preserve the
// flat spectral conditioning of the m-sequence that exact deconvolution
// relies on.
func (ft *FunnelTrap) ReleaseUpTo(max float64) float64 {
	if max <= 0 {
		return 0
	}
	packet := ft.stored * ft.ReleaseFraction
	if packet > max {
		packet = max
	}
	ft.stored -= packet
	return packet
}

// Stored returns the currently trapped charge.
func (ft *FunnelTrap) Stored() float64 { return ft.stored }

// Fill reports the stored charge as a fraction of capacity.
func (ft *FunnelTrap) Fill() float64 { return ft.stored / ft.Capacity }

// Reset empties the trap.
func (ft *FunnelTrap) Reset() { ft.stored = 0 }

// MZBias returns the retention bias applied to an analyte of the given m/z
// when the trap is driven past fill fraction 1: overfilling preferentially
// ejects low-m/z ions (shallower effective pseudopotential well).  The
// returned factor is in (0,1]; at or below capacity it is exactly 1.
func (ft *FunnelTrap) MZBias(mz, attemptedFill float64) float64 {
	if attemptedFill <= 1 {
		return 1
	}
	// The pseudopotential well depth scales as 1/mz; heavier ions sit
	// deeper.  Loss pressure grows with overfill.
	over := attemptedFill - 1
	ref := 500.0 // m/z at which the bias is e-folded per unit overfill
	loss := over * ref / math.Max(mz, 1)
	return math.Exp(-loss)
}

// AGC is the automated gain control loop: it chooses the next accumulation
// time so the released packet hits TargetCharge, based on the charge
// actually accumulated in the previous cycle (the "previous scan" AGC of
// Belov et al. 2008).
type AGC struct {
	TargetCharge float64 // desired packet size, charges
	MinFill      float64 // shortest allowed accumulation, s
	MaxFill      float64 // longest allowed accumulation, s

	lastRate float64 // most recent estimated arrival rate, charges/s
}

// NewAGC validates and constructs a controller.
func NewAGC(target, minFill, maxFill float64) (*AGC, error) {
	if target <= 0 {
		return nil, fmt.Errorf("instrument: AGC target %g must be positive", target)
	}
	if minFill <= 0 || maxFill < minFill {
		return nil, fmt.Errorf("instrument: AGC fill bounds (%g, %g) invalid", minFill, maxFill)
	}
	return &AGC{TargetCharge: target, MinFill: minFill, MaxFill: maxFill}, nil
}

// NextFillTime returns the accumulation time to use for the upcoming cycle.
// Before any observation it returns the geometric middle of the bounds.
func (a *AGC) NextFillTime() float64 {
	if a.lastRate <= 0 {
		return math.Sqrt(a.MinFill * a.MaxFill)
	}
	t := a.TargetCharge / a.lastRate
	return math.Min(a.MaxFill, math.Max(a.MinFill, t))
}

// Observe records the outcome of a completed fill: accumulated charges over
// fill time.  An exponential moving average smooths shot-to-shot variation.
func (a *AGC) Observe(accumulated, fillTime float64) {
	if fillTime <= 0 {
		return
	}
	rate := accumulated / fillTime
	if a.lastRate <= 0 {
		a.lastRate = rate
		return
	}
	const alpha = 0.7 // weight of the newest observation
	a.lastRate = alpha*rate + (1-alpha)*a.lastRate
}

// EstimatedRate returns the controller's current rate estimate (charges/s).
func (a *AGC) EstimatedRate() float64 { return a.lastRate }
