// gate.go models the Bradbury–Nielsen-style ion gate that modulates the
// beam (or releases trap packets) according to the pseudorandom sequence.
// Real gates are imperfect: open bins transmit slightly less than unity,
// closed bins leak, and the first moments after opening deliver depleted
// flux while the beam re-establishes — the non-ideality that historically
// required sample-specific weighting matrices and that the PNNL modified
// sequences pre-compensate.
package instrument

import (
	"fmt"

	"repro/internal/prs"
)

// Gate describes the modulation element.
type Gate struct {
	// OpenTransmission is the flux fraction passed while open (0..1].
	OpenTransmission float64
	// ClosedLeakage is the flux fraction leaking through while closed.
	ClosedLeakage float64
	// RiseBins is how many bins after a 0→1 transition are depleted.
	RiseBins int
	// RiseDepth is the fractional depletion of those bins (0 = no
	// depletion, 1 = fully closed during rise).
	RiseDepth float64
}

// DefaultGate returns gate parameters typical of a BN gate driven at IMS
// bin widths of ~100 µs: the ~1 µs switching transient depletes a few
// percent of the first bin of each opening.
func DefaultGate() Gate {
	return Gate{OpenTransmission: 0.95, ClosedLeakage: 0.001, RiseBins: 1, RiseDepth: 0.05}
}

// Validate reports unusable gate parameters.
func (g Gate) Validate() error {
	if g.OpenTransmission <= 0 || g.OpenTransmission > 1 {
		return fmt.Errorf("instrument: gate open transmission %g must be in (0,1]", g.OpenTransmission)
	}
	if g.ClosedLeakage < 0 || g.ClosedLeakage >= g.OpenTransmission {
		return fmt.Errorf("instrument: gate leakage %g must be in [0, open transmission)", g.ClosedLeakage)
	}
	if g.RiseBins < 0 {
		return fmt.Errorf("instrument: negative rise bins")
	}
	if g.RiseDepth < 0 || g.RiseDepth > 1 {
		return fmt.Errorf("instrument: rise depth %g must be in [0,1]", g.RiseDepth)
	}
	return nil
}

// EffectiveWaveform converts the ideal binary gating sequence into the real
// per-bin transmission waveform, applying open/closed transmission and
// rise-time depletion at every 0→1 transition (cyclically).
func (g Gate) EffectiveWaveform(seq prs.Sequence) ([]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	n := len(seq)
	w := make([]float64, n)
	for i, b := range seq {
		if b != 0 {
			w[i] = g.OpenTransmission
		} else {
			w[i] = g.ClosedLeakage
		}
	}
	if g.RiseBins > 0 && g.RiseDepth > 0 {
		for i := 0; i < n; i++ {
			if seq[i] == 1 && seq[(i+n-1)%n] == 0 {
				for r := 0; r < g.RiseBins; r++ {
					j := (i + r) % n
					if seq[j] == 0 {
						break // run shorter than the rise window
					}
					w[j] *= 1 - g.RiseDepth
				}
			}
		}
	}
	return w, nil
}

// IdealWaveform returns the binary sequence as a transmission waveform with
// no imperfections — the reference used by decoders that assume an ideal
// gate.
func IdealWaveform(seq prs.Sequence) []float64 {
	return seq.Floats()
}
