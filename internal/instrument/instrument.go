// instrument.go composes source, trap, gate, drift tube, TOF and detector
// into the full simulated spectrometer.  Its product is the Frame: the
// accumulated two-dimensional (drift bin × m/z bin) raw data block that the
// paper's FPGA component captures, accumulates and deconvolves.
package instrument

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/prs"
)

// Mode selects the acquisition scheme.
type Mode int

const (
	// ModeSignalAveraging is the conventional single-pulse experiment: one
	// gate opening per IMS cycle (~duty cycle 1/N).
	ModeSignalAveraging Mode = iota
	// ModeMultiplexed gates the continuous beam with the pseudorandom
	// sequence (duty cycle ≈ 1/2).
	ModeMultiplexed
	// ModeMultiplexedTrap combines the ion funnel trap with multiplexed
	// gating: ions arriving while the gate is closed are stored and
	// released with the next open bin (utilization beyond 1/2).
	ModeMultiplexedTrap
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSignalAveraging:
		return "signal-averaging"
	case ModeMultiplexed:
		return "multiplexed"
	case ModeMultiplexedTrap:
		return "multiplexed+trap"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// DetectionKind selects the digitizer technology.
type DetectionKind int

const (
	// DetectionADC digitizes analog detector current (default; wide
	// dynamic range, baseline noise).
	DetectionADC DetectionKind = iota
	// DetectionTDC counts discrete ion events with converter dead time
	// (noiseless at low flux, saturates at high flux).
	DetectionTDC
)

// String implements fmt.Stringer.
func (d DetectionKind) String() string {
	switch d {
	case DetectionADC:
		return "adc"
	case DetectionTDC:
		return "tdc"
	}
	return fmt.Sprintf("detection(%d)", int(d))
}

// TrapConfig bundles funnel trap parameters for the instrument.
type TrapConfig struct {
	Capacity           float64
	TrappingEfficiency float64
	ReleaseFraction    float64
	// EqualizeRelease caps each multiplexed release at the AGC-estimated
	// per-pulse quantum (cycle input ÷ gate pulses), storing the excess.
	// Uniform packets keep the sequence's spectral conditioning intact;
	// without it, packet sizes track the inter-pulse gaps and the decoder
	// must invert an ill-conditioned weighted modulation.
	EqualizeRelease bool
}

// DefaultTrapConfig mirrors the PNNL ion funnel trap with AGC-equalized
// release.
func DefaultTrapConfig() TrapConfig {
	return TrapConfig{Capacity: 3e7, TrappingEfficiency: 0.9, ReleaseFraction: 1.0, EqualizeRelease: true}
}

// Config fully describes a simulated acquisition.
type Config struct {
	SequenceOrder int // m-sequence order n (length 2^n − 1)
	Oversample    int // ≥1; bins per sequence element
	Defect        int // defect bins per open run (modified PRS); 0 = off
	Mode          Mode
	Gate          Gate
	Tube          DriftTube
	TOF           TOF
	Detector      Detector
	ADC           ADC
	// Detection selects ADC (default) or TDC digitization; TDC holds the
	// counting parameters when DetectionTDC is selected.
	Detection DetectionKind
	TDC       TDC
	Trap      TrapConfig
	// BinWidthS is the drift-axis bin width (= gate pulse width), s.
	BinWidthS float64
	// Frames is how many IMS cycles are accumulated into one output frame.
	Frames int
	// ExactSamplingCutoff bounds per-extraction exact sampling; above it
	// the digitizer uses the moment-matched approximation (see
	// ADC.AccumulateSamples).
	ExactSamplingCutoff int64
}

// DefaultConfig returns the reference configuration: order-9 sequence,
// 100 µs bins, multiplexed with trap, 10 accumulated cycles.
func DefaultConfig() Config {
	return Config{
		SequenceOrder:       9,
		Oversample:          1,
		Defect:              0,
		Mode:                ModeMultiplexedTrap,
		Gate:                DefaultGate(),
		Tube:                DefaultDriftTube(),
		TOF:                 DefaultTOF(),
		Detector:            DefaultDetector(),
		ADC:                 DefaultADC(),
		Detection:           DetectionADC,
		TDC:                 DefaultTDC(),
		Trap:                DefaultTrapConfig(),
		BinWidthS:           1e-4,
		Frames:              10,
		ExactSamplingCutoff: 16,
	}
}

// Validate reports the first configuration problem.
func (c Config) Validate() error {
	if _, err := prs.Taps(c.SequenceOrder); err != nil {
		return err
	}
	if c.Oversample < 1 {
		return fmt.Errorf("instrument: oversample %d must be >= 1", c.Oversample)
	}
	if c.Defect < 0 {
		return fmt.Errorf("instrument: negative defect")
	}
	if c.Defect > 0 && c.Oversample < 2 {
		return fmt.Errorf("instrument: defect modification requires oversample >= 2")
	}
	if err := c.Gate.Validate(); err != nil {
		return err
	}
	if err := c.Tube.Validate(); err != nil {
		return err
	}
	if err := c.TOF.Validate(); err != nil {
		return err
	}
	if err := c.Detector.Validate(); err != nil {
		return err
	}
	if err := c.ADC.Validate(); err != nil {
		return err
	}
	if c.Detection == DetectionTDC {
		if err := c.TDC.Validate(); err != nil {
			return err
		}
	}
	if c.BinWidthS <= 0 {
		return fmt.Errorf("instrument: bin width %g must be positive", c.BinWidthS)
	}
	if c.BinWidthS < c.TOF.ExtractionPeriodS {
		return fmt.Errorf("instrument: bin width %g below TOF extraction period %g", c.BinWidthS, c.TOF.ExtractionPeriodS)
	}
	if c.Frames < 1 {
		return fmt.Errorf("instrument: frames %d must be >= 1", c.Frames)
	}
	if c.Mode == ModeMultiplexedTrap {
		if c.Trap.Capacity <= 0 || c.Trap.TrappingEfficiency <= 0 || c.Trap.ReleaseFraction <= 0 {
			return fmt.Errorf("instrument: trap mode requires valid trap config")
		}
	}
	return nil
}

// Sequence returns the gating sequence implied by the configuration
// (m-sequence, oversampled and defect-modified as configured).
func (c Config) Sequence() (prs.Sequence, error) {
	s, err := prs.MSequence(c.SequenceOrder)
	if err != nil {
		return nil, err
	}
	if c.Oversample > 1 {
		s = s.Oversample(c.Oversample)
	}
	if c.Defect > 0 {
		s = s.Modify(c.Defect)
	}
	return s, nil
}

// DriftBins returns the number of drift-axis bins per IMS cycle.
func (c Config) DriftBins() int {
	return (1<<c.SequenceOrder - 1) * c.Oversample
}

// CycleDuration returns the length of one IMS cycle, s.
func (c Config) CycleDuration() float64 {
	return float64(c.DriftBins()) * c.BinWidthS
}

// Frame is the accumulated raw data block: Data[d*TOFBins+t] holds the
// accumulated ADC counts at drift bin d and m/z bin t.
type Frame struct {
	DriftBins int
	TOFBins   int
	Data      []float64
}

// NewFrame allocates a zero frame.
func NewFrame(driftBins, tofBins int) *Frame {
	return &Frame{DriftBins: driftBins, TOFBins: tofBins, Data: make([]float64, driftBins*tofBins)}
}

// At returns the cell value.
func (f *Frame) At(d, t int) float64 { return f.Data[d*f.TOFBins+t] }

// Set assigns the cell value.
func (f *Frame) Set(d, t int, v float64) { f.Data[d*f.TOFBins+t] = v }

// Add increments the cell value.
func (f *Frame) Add(d, t int, v float64) { f.Data[d*f.TOFBins+t] += v }

// DriftProfile returns the drift-axis waveform summed over all m/z bins.
func (f *Frame) DriftProfile() []float64 {
	out := make([]float64, f.DriftBins)
	for d := 0; d < f.DriftBins; d++ {
		row := f.Data[d*f.TOFBins : (d+1)*f.TOFBins]
		var s float64
		for _, v := range row {
			s += v
		}
		out[d] = s
	}
	return out
}

// TOFSpectrum returns a copy of the m/z spectrum at one drift bin.
func (f *Frame) TOFSpectrum(d int) []float64 {
	out := make([]float64, f.TOFBins)
	copy(out, f.Data[d*f.TOFBins:(d+1)*f.TOFBins])
	return out
}

// DriftVector returns the drift-axis waveform at a single m/z bin — the
// vector that Hadamard deconvolution operates on.
func (f *Frame) DriftVector(t int) []float64 {
	out := make([]float64, f.DriftBins)
	for d := 0; d < f.DriftBins; d++ {
		out[d] = f.Data[d*f.TOFBins+t]
	}
	return out
}

// DriftVectorInto fills dst with the drift-axis waveform at m/z bin t,
// the allocation-free variant of DriftVector.  Extra dst capacity is left
// untouched.
func (f *Frame) DriftVectorInto(t int, dst []float64) {
	for d := 0; d < f.DriftBins && d < len(dst); d++ {
		dst[d] = f.Data[d*f.TOFBins+t]
	}
}

// SetDriftVector writes a drift-axis waveform into m/z column t.
func (f *Frame) SetDriftVector(t int, v []float64) {
	for d := 0; d < f.DriftBins && d < len(v); d++ {
		f.Data[d*f.TOFBins+t] = v[d]
	}
}

// GatherColumns transposes the lanes m/z columns [t0, t0+lanes) into a
// row-major column-blocked tile (tile[d*lanes+l] = cell (d, t0+l)) in one
// cache-friendly pass: both the read of each frame row segment and the
// write of each tile row are unit-stride copies, unlike the per-column
// DriftVector gather whose accesses stride by TOFBins.  tile must hold
// DriftBins×lanes values and is fully overwritten.
func (f *Frame) GatherColumns(t0, lanes int, tile []float64) {
	for d := 0; d < f.DriftBins; d++ {
		copy(tile[d*lanes:(d+1)*lanes], f.Data[d*f.TOFBins+t0:d*f.TOFBins+t0+lanes])
	}
}

// ScatterColumns writes a row-major column-blocked tile (the GatherColumns
// layout) back into m/z columns [t0, t0+lanes), again as unit-stride row
// segment copies.
func (f *Frame) ScatterColumns(t0, lanes int, tile []float64) {
	for d := 0; d < f.DriftBins; d++ {
		copy(f.Data[d*f.TOFBins+t0:d*f.TOFBins+t0+lanes], tile[d*lanes:(d+1)*lanes])
	}
}

// GatherColumnsAt is the offset-aware GatherColumns used when a tile spans
// several frames (the acqserver coalescer): columns [t0, t0+lanes) of the
// frame land in lane positions [l0, l0+lanes) of a row-major tile whose
// rows are tileLanes wide.  Rows beyond the frame's DriftBins are left
// untouched; lanes outside [l0, l0+lanes) belong to other frames.
func (f *Frame) GatherColumnsAt(t0, lanes int, tile []float64, tileLanes, l0 int) {
	for d := 0; d < f.DriftBins; d++ {
		copy(tile[d*tileLanes+l0:d*tileLanes+l0+lanes], f.Data[d*f.TOFBins+t0:d*f.TOFBins+t0+lanes])
	}
}

// ScatterColumnsAt writes lane positions [l0, l0+lanes) of a row-major
// tile with tileLanes-wide rows back into m/z columns [t0, t0+lanes), the
// inverse of GatherColumnsAt.
func (f *Frame) ScatterColumnsAt(t0, lanes int, tile []float64, tileLanes, l0 int) {
	for d := 0; d < f.DriftBins; d++ {
		copy(f.Data[d*f.TOFBins+t0:d*f.TOFBins+t0+lanes], tile[d*tileLanes+l0:d*tileLanes+l0+lanes])
	}
}

// TotalCounts sums the whole frame.
func (f *Frame) TotalCounts() float64 {
	var s float64
	for _, v := range f.Data {
		s += v
	}
	return s
}

// RunStats reports ion bookkeeping for an acquisition.
type RunStats struct {
	Mode           Mode
	Cycles         int
	DurationS      float64 // total acquisition time
	IonsGenerated  float64 // charges delivered by the source
	IonsInjected   float64 // charges injected into the drift tube
	IonsDetected   float64 // expected charges reaching the detector
	TrapLosses     float64 // charges lost to trap saturation
	Utilization    float64 // IonsInjected / IonsGenerated
	MeanPacketSize float64 // mean charges per gate injection
}

// Instrument is a configured, reusable simulator.
type Instrument struct {
	cfg      Config
	seq      prs.Sequence
	waveform []float64 // per-bin gate transmission
	source   *ESISource
}

// New builds an instrument for a configuration and source.
func New(cfg Config, source *ESISource) (*Instrument, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if source == nil {
		return nil, fmt.Errorf("instrument: nil source")
	}
	seq, err := cfg.Sequence()
	if err != nil {
		return nil, err
	}
	var waveform []float64
	switch cfg.Mode {
	case ModeSignalAveraging:
		waveform = make([]float64, cfg.DriftBins())
		waveform[0] = cfg.Gate.OpenTransmission
	case ModeMultiplexed, ModeMultiplexedTrap:
		waveform, err = cfg.Gate.EffectiveWaveform(seq)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("instrument: unknown mode %v", cfg.Mode)
	}
	return &Instrument{cfg: cfg, seq: seq, waveform: waveform, source: source}, nil
}

// Config returns the instrument configuration.
func (in *Instrument) Config() Config { return in.cfg }

// Sequence returns the gating sequence in use.
func (in *Instrument) Sequence() prs.Sequence { return in.seq }

// Modulation returns the instrument's effective per-bin injection weights
// for one IMS cycle with a steady unit-rate source: the waveform a decoder
// should deconvolve against.  For beam modes it is the gate transmission
// waveform; for trap mode each open bin is additionally weighted by the
// charge the trap accumulated since the previous release (the
// deterministic gap pattern of the sequence).  Weights are normalized so
// their sum equals the number of gate-open bins, making decoded amplitudes
// comparable with the ideal-sequence decoders.
func (in *Instrument) Modulation() []float64 {
	nBins := in.cfg.DriftBins()
	w := make([]float64, nBins)
	switch in.cfg.Mode {
	case ModeMultiplexedTrap:
		trap := in.newTrap()
		quantum := math.Inf(1)
		if in.cfg.Trap.EqualizeRelease {
			pulses := float64(in.seq.Ones())
			if pulses > 0 {
				quantum = in.cfg.BinWidthS * float64(nBins) / pulses * in.cfg.Trap.TrappingEfficiency
			}
		}
		// Two passes: the first warms the trap into its cyclic steady
		// state (the leftover charge entering bin 0), the second records.
		for pass := 0; pass < 2; pass++ {
			for b := 0; b < nBins; b++ {
				trap.Accumulate(1, in.cfg.BinWidthS)
				if in.waveform[b] > 0 && in.seq[b] != 0 {
					released := trap.Release()
					if !math.IsInf(quantum, 1) {
						trap.stored += released
						released = trap.ReleaseUpTo(quantum)
					}
					packet := released * in.waveform[b] / in.cfg.Gate.OpenTransmission
					if pass == 1 {
						w[b] = packet
					}
				}
			}
		}
	default:
		copy(w, in.waveform)
	}
	var sum float64
	open := 0
	for b := range w {
		sum += w[b]
		if in.cfg.Mode == ModeSignalAveraging {
			if b == 0 {
				open = 1
			}
		} else if in.seq[b] != 0 {
			open++
		}
	}
	if sum > 0 && open > 0 {
		scale := float64(open) / sum
		for b := range w {
			w[b] *= scale
		}
	}
	return w
}

// GatePulsesPerCycle counts gate openings per IMS cycle.
func (in *Instrument) GatePulsesPerCycle() int {
	if in.cfg.Mode == ModeSignalAveraging {
		return 1
	}
	return in.seq.Ones()
}

// newTrap builds a funnel trap from the configuration.
func (in *Instrument) newTrap() *FunnelTrap {
	return &FunnelTrap{
		Capacity:           in.cfg.Trap.Capacity,
		TrappingEfficiency: in.cfg.Trap.TrappingEfficiency,
		ReleaseFraction:    in.cfg.Trap.ReleaseFraction,
	}
}

// injectionProfile computes the per-bin injected charge (per analyte and
// total) for one IMS cycle starting at time t0, plus bookkeeping.  In trap
// mode the supplied trap carries stored charge across cycles, so successive
// cycles of an acquisition see the trap's cyclic steady state.
func (in *Instrument) injectionProfile(t0 float64, trap *FunnelTrap) (perAnalyte [][]float64, stats RunStats) {
	nBins := in.cfg.DriftBins()
	nA := len(in.source.Mixture.Analytes)
	perAnalyte = make([][]float64, nA)
	for i := range perAnalyte {
		perAnalyte[i] = make([]float64, nBins)
	}
	bw := in.cfg.BinWidthS

	switch in.cfg.Mode {
	case ModeSignalAveraging, ModeMultiplexed:
		// Continuous beam chopped by the gate: injected = rate·bw·w[bin].
		for b := 0; b < nBins; b++ {
			w := in.waveform[b]
			rates := in.source.Rates(t0 + float64(b)*bw)
			for i, r := range rates {
				stats.IonsGenerated += r * bw
				if w > 0 {
					perAnalyte[i][b] = r * bw * w
					stats.IonsInjected += perAnalyte[i][b]
				}
			}
		}
	case ModeMultiplexedTrap:
		// The funnel trap stores beam between open bins and releases a
		// packet at each opening, scaled by the gate transmission.
		// Composition of the trapped population follows the recent beam.
		quantum := math.Inf(1)
		if in.cfg.Trap.EqualizeRelease {
			// AGC: the per-pulse quantum drains exactly the expected
			// cycle input, estimated from the rate at cycle start.
			tot0 := in.source.TotalRateAt(t0)
			pulses := float64(in.seq.Ones())
			if pulses > 0 {
				quantum = tot0 * bw * float64(nBins) / pulses * in.cfg.Trap.TrappingEfficiency
			}
		}
		var lostSinceRelease float64
		for b := 0; b < nBins; b++ {
			rates := in.source.Rates(t0 + float64(b)*bw)
			var tot float64
			for _, r := range rates {
				tot += r
			}
			stats.IonsGenerated += tot * bw
			lost := trap.Accumulate(tot, bw)
			stats.TrapLosses += lost
			lostSinceRelease += lost
			if in.waveform[b] > 0 && in.seq[b] != 0 {
				released := trap.Release()
				if !math.IsInf(quantum, 1) {
					trap.stored += released
					released = trap.ReleaseUpTo(quantum)
				}
				packet := released * in.waveform[b] / in.cfg.Gate.OpenTransmission
				if tot > 0 {
					// Saturation discriminates by m/z: overfilled traps
					// preferentially eject low-m/z ions (shallower
					// pseudopotential well), biasing the packet.
					attempted := (released + lostSinceRelease) / trap.Capacity
					var weightSum float64
					weights := make([]float64, len(rates))
					for i, r := range rates {
						w := r * trap.MZBias(in.source.Mixture.Analytes[i].MZ, attempted)
						weights[i] = w
						weightSum += w
					}
					if weightSum > 0 {
						for i := range rates {
							perAnalyte[i][b] = packet * weights[i] / weightSum
						}
					}
				}
				stats.IonsInjected += packet
				lostSinceRelease = 0
			}
		}
	}
	pulses := in.GatePulsesPerCycle()
	if pulses > 0 {
		stats.MeanPacketSize = stats.IonsInjected / float64(pulses)
	}
	if stats.IonsGenerated > 0 {
		stats.Utilization = stats.IonsInjected / stats.IonsGenerated
	}
	return perAnalyte, stats
}

// arrivalKernel builds the cyclic arrival-time kernel (unit area) for an
// analyte given the mean packet size, in drift-bin units.
func (in *Instrument) arrivalKernel(a Analyte, meanPacket float64) ([]float64, error) {
	arr, err := in.cfg.Tube.Arrival(a, in.cfg.BinWidthS, meanPacket)
	if err != nil {
		return nil, err
	}
	nBins := in.cfg.DriftBins()
	bw := in.cfg.BinWidthS
	mean := arr.MeanS / bw
	sigma := arr.SigmaS / bw
	if sigma < 0.3 {
		sigma = 0.3 // sub-bin packets still occupy one bin
	}
	kernel := make([]float64, nBins)
	lo := int(mean - 5*sigma)
	hi := int(mean + 5*sigma)
	var sum float64
	for b := lo; b <= hi; b++ {
		d := (float64(b) - mean) / sigma
		w := math.Exp(-d * d / 2)
		idx := ((b % nBins) + nBins) % nBins
		kernel[idx] += w
		sum += w
	}
	if sum > 0 {
		for i := range kernel {
			kernel[i] /= sum
		}
	}
	return kernel, nil
}

// ExpectedDetections computes the noise-free expected ion arrivals per
// (drift, m/z) cell for one IMS cycle starting at t0, along with run
// bookkeeping.  This is the λ map that drives the stochastic digitizer, and
// doubles as ground truth for reconstruction metrics.
func (in *Instrument) ExpectedDetections(t0 float64) (*Frame, RunStats, error) {
	return in.expectedDetections(t0, in.newTrap())
}

func (in *Instrument) expectedDetections(t0 float64, trap *FunnelTrap) (*Frame, RunStats, error) {
	perAnalyte, stats := in.injectionProfile(t0, trap)
	nBins := in.cfg.DriftBins()
	expected := NewFrame(nBins, in.cfg.TOF.Bins)
	for i, a := range in.source.Mixture.Analytes {
		inj := perAnalyte[i]
		var injTotal float64
		for _, v := range inj {
			injTotal += v
		}
		if injTotal == 0 {
			continue
		}
		kernel, err := in.arrivalKernel(a, stats.MeanPacketSize)
		if err != nil {
			return nil, RunStats{}, err
		}
		// Drift-axis profile: cyclic convolution of injections with kernel.
		profile := make([]float64, nBins)
		for b, amt := range inj {
			if amt == 0 {
				continue
			}
			for k, w := range kernel {
				if w == 0 {
					continue
				}
				profile[(b+k)%nBins] += amt * w
			}
		}
		// m/z axis: spread each isotopologue over the analyzer's peak
		// shape with the orthogonal duty cycle applied.
		duty := in.cfg.TOF.DutyCycle(a.MZ)
		isotopes := a.Isotopes
		if len(isotopes) == 0 {
			isotopes = []IsotopePeakMZ{{OffsetMZ: 0, Fraction: 1}}
		}
		for _, iso := range isotopes {
			bins, weights := in.cfg.TOF.Spread(a.MZ + iso.OffsetMZ)
			if len(bins) == 0 {
				continue
			}
			for d := 0; d < nBins; d++ {
				p := profile[d] * duty * iso.Fraction
				if p == 0 {
					continue
				}
				for wi, tb := range bins {
					expected.Add(d, tb, p*weights[wi])
				}
			}
		}
	}
	for _, v := range expected.Data {
		stats.IonsDetected += v
	}
	stats.Cycles = 1
	stats.DurationS = in.cfg.CycleDuration()
	stats.Mode = in.cfg.Mode
	return expected, stats, nil
}

// Acquire runs cfg.Frames IMS cycles, digitizing with the stochastic
// detector/ADC model, and returns the accumulated frame and statistics.
// Acquisition is deterministic in rng.
func (in *Instrument) Acquire(rng *rand.Rand) (*Frame, RunStats, error) {
	if rng == nil {
		return nil, RunStats{}, fmt.Errorf("instrument: nil rng")
	}
	nBins := in.cfg.DriftBins()
	out := NewFrame(nBins, in.cfg.TOF.Bins)
	var total RunStats
	extrPerBin := int64(math.Round(in.cfg.BinWidthS / in.cfg.TOF.ExtractionPeriodS))
	if extrPerBin < 1 {
		extrPerBin = 1
	}
	trap := in.newTrap()
	for cycle := 0; cycle < in.cfg.Frames; cycle++ {
		t0 := float64(cycle) * in.cfg.CycleDuration()
		expected, stats, err := in.expectedDetections(t0, trap)
		if err != nil {
			return nil, RunStats{}, err
		}
		total.IonsGenerated += stats.IonsGenerated
		total.IonsInjected += stats.IonsInjected
		total.IonsDetected += stats.IonsDetected
		total.TrapLosses += stats.TrapLosses
		total.MeanPacketSize += stats.MeanPacketSize
		for d := 0; d < nBins; d++ {
			for t := 0; t < in.cfg.TOF.Bins; t++ {
				lambda := expected.At(d, t) / float64(extrPerBin)
				var acc float64
				if in.cfg.Detection == DetectionTDC {
					acc = in.cfg.TDC.AccumulateSamples(lambda, extrPerBin, rng, in.cfg.ExactSamplingCutoff)
				} else {
					acc = in.cfg.ADC.AccumulateSamples(lambda, extrPerBin, in.cfg.Detector, rng, in.cfg.ExactSamplingCutoff)
				}
				out.Add(d, t, acc)
			}
		}
	}
	total.Cycles = in.cfg.Frames
	total.DurationS = float64(in.cfg.Frames) * in.cfg.CycleDuration()
	total.Mode = in.cfg.Mode
	if total.IonsGenerated > 0 {
		total.Utilization = total.IonsInjected / total.IonsGenerated
	}
	total.MeanPacketSize /= float64(in.cfg.Frames)
	return out, total, nil
}

// RawSampleRate returns the digitizer output rate in samples/s: one sample
// per TOF bin per extraction.
func (in *Instrument) RawSampleRate() float64 {
	return float64(in.cfg.TOF.Bins) / in.cfg.TOF.ExtractionPeriodS
}

// RawByteRate returns the digitizer output in bytes/s (one byte per 8-bit
// sample, rounded up for wider ADCs).
func (in *Instrument) RawByteRate() float64 {
	bytesPerSample := float64((in.cfg.ADC.Bits + 7) / 8)
	return in.RawSampleRate() * bytesPerSample
}
