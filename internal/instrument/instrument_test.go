package instrument

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chem"
)

// testMixture returns a small three-peptide mixture.
func testMixture(t testing.TB) Mixture {
	t.Helper()
	var m Mixture
	for _, def := range []struct {
		name, seq string
		abundance float64
	}{
		{"bradykinin", "RPPGFSPFR", 1.0},
		{"angiotensin I", "DRVYIHPFHL", 0.5},
		{"fibrinopeptide A", "ADSGEGDFLAEGGGVR", 0.2},
	} {
		p, err := chem.NewPeptide(def.seq)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddPeptide(def.name, p, def.abundance); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// testConfig returns a fast configuration for unit tests: order 6, small
// TOF axis.
func testConfig(mode Mode) Config {
	cfg := DefaultConfig()
	cfg.SequenceOrder = 6
	cfg.Mode = mode
	cfg.Frames = 2
	cfg.TOF.Bins = 256
	cfg.TOF.MinMZ = 200
	cfg.TOF.MaxMZ = 1700
	cfg.BinWidthS = 4e-4 // keep the 63-bin cycle long enough for drift times
	return cfg
}

func testSource(t testing.TB, rate float64) *ESISource {
	t.Helper()
	src, err := NewESISource(testMixture(t), rate)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestAnalyteValidate(t *testing.T) {
	good := Analyte{Name: "x", MassDa: 1000, Z: 2, MZ: 501, CCSM2: 3e-18, Abundance: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Analyte{
		{MassDa: 0, Z: 2, MZ: 501, CCSM2: 3e-18},
		{MassDa: 1000, Z: 0, MZ: 501, CCSM2: 3e-18},
		{MassDa: 1000, Z: 2, MZ: 0, CCSM2: 3e-18},
		{MassDa: 1000, Z: 2, MZ: 501, CCSM2: 0},
		{MassDa: 1000, Z: 2, MZ: 501, CCSM2: 3e-18, Abundance: -1},
	}
	for i, a := range cases {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestAnalytesFromPeptide(t *testing.T) {
	p, _ := chem.NewPeptide("LVNELTEFAK")
	as, err := AnalytesFromPeptide("pep", p, 10, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) == 0 {
		t.Fatal("no analytes")
	}
	var total float64
	for _, a := range as {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		total += a.Abundance
	}
	// Total abundance approximately preserved (small states dropped).
	if total < 9 || total > 10 {
		t.Errorf("total abundance %g, want near 10", total)
	}
	if _, err := AnalytesFromPeptide("bad", p, -1, 0.02); err == nil {
		t.Error("negative abundance should fail")
	}
	if _, err := AnalytesFromPeptide("none", p, 1, 1.1); err == nil {
		t.Error("impossible min fraction should fail")
	}
}

func TestMixture(t *testing.T) {
	m := testMixture(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.TotalAbundance() <= 0 {
		t.Error("zero total abundance")
	}
	m.SortByMZ()
	for i := 1; i < len(m.Analytes); i++ {
		if m.Analytes[i].MZ < m.Analytes[i-1].MZ {
			t.Fatal("not sorted by m/z")
		}
	}
	var empty Mixture
	if err := empty.Validate(); err == nil {
		t.Error("empty mixture should fail")
	}
	if err := empty.AddAnalyte(Analyte{}); err == nil {
		t.Error("invalid analyte should fail")
	}
}

func TestLCPeak(t *testing.T) {
	pk := LCPeak{Retention: 100, Sigma: 2, Tau: 3}
	apex := pk.Amplitude(pk.Retention)
	if apex <= 0 {
		t.Fatal("apex must be positive")
	}
	// Tail is slower than front (EMG asymmetry).
	front := pk.Amplitude(95)
	tail := pk.Amplitude(105)
	if tail <= front {
		t.Errorf("EMG tail %g should exceed mirrored front %g", tail, front)
	}
	// Decays to ~0 far from the peak.
	if pk.Amplitude(0) > apex*1e-6 {
		t.Error("profile should vanish far before the peak")
	}
	if pk.Amplitude(1e4) > apex*1e-6 {
		t.Error("profile should vanish far after the peak")
	}
	// Pure Gaussian limit.
	g := LCPeak{Retention: 50, Sigma: 2, Tau: 0}
	want := 1 / (2 * math.Sqrt(2*math.Pi))
	if got := g.Amplitude(50); math.Abs(got-want) > 1e-9 {
		t.Errorf("gaussian apex = %g, want %g", got, want)
	}
	if (LCPeak{Sigma: 0}).Amplitude(0) != 0 {
		t.Error("zero-sigma peak should be zero")
	}
}

func TestESISourceRates(t *testing.T) {
	src := testSource(t, 1e8)
	rates := src.Rates(0)
	var sum float64
	for _, r := range rates {
		if r < 0 {
			t.Fatal("negative rate")
		}
		sum += r
	}
	if math.Abs(sum-1e8) > 1 {
		t.Errorf("rates sum to %g, want 1e8", sum)
	}
	if math.Abs(src.TotalRateAt(0)-1e8) > 1 {
		t.Error("TotalRateAt mismatch")
	}
	// With elution, rate at apex exceeds rate far away.
	src.Elution = map[int]LCPeak{0: {Retention: 60, Sigma: 3, Tau: 2}}
	atApex := src.Rates(60)[0]
	away := src.Rates(300)[0]
	if atApex <= away {
		t.Error("elution profile not applied")
	}
	if _, err := NewESISource(Mixture{}, 1e8); err == nil {
		t.Error("empty mixture should fail")
	}
	if _, err := NewESISource(testMixture(t), 0); err == nil {
		t.Error("zero rate should fail")
	}
}

func TestFunnelTrap(t *testing.T) {
	ft, err := NewFunnelTrap(1000, 0.9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	lost := ft.Accumulate(100, 1) // 90 stored
	if lost != 0 {
		t.Errorf("lost %g at low fill", lost)
	}
	if math.Abs(ft.Stored()-90) > 1e-9 {
		t.Errorf("stored %g, want 90", ft.Stored())
	}
	// Overfill: capacity 1000, incoming 9000*0.9 = 8100, room 910.
	lost = ft.Accumulate(9000, 1)
	if math.Abs(lost-(8100-910)) > 1e-9 {
		t.Errorf("lost %g, want %g", lost, 8100.0-910)
	}
	if ft.Fill() != 1 {
		t.Errorf("fill %g, want 1", ft.Fill())
	}
	// Fully saturated: everything lost.
	lost = ft.Accumulate(10, 1)
	if math.Abs(lost-9) > 1e-9 {
		t.Errorf("lost %g, want 9", lost)
	}
	packet := ft.Release()
	if math.Abs(packet-1000) > 1e-9 {
		t.Errorf("packet %g, want 1000", packet)
	}
	if ft.Stored() != 0 {
		t.Error("trap should be empty after full release")
	}
	ft.Accumulate(100, 1)
	ft.Reset()
	if ft.Stored() != 0 {
		t.Error("reset failed")
	}
	// Degenerate accumulate inputs.
	if ft.Accumulate(-5, 1) != 0 || ft.Accumulate(5, 0) != 0 {
		t.Error("degenerate accumulate should be a no-op")
	}
	// Partial release.
	ft2, _ := NewFunnelTrap(1000, 1, 0.5)
	ft2.Accumulate(100, 1)
	p := ft2.Release()
	if math.Abs(p-50) > 1e-9 || math.Abs(ft2.Stored()-50) > 1e-9 {
		t.Error("partial release wrong")
	}
}

func TestFunnelTrapConstructorErrors(t *testing.T) {
	if _, err := NewFunnelTrap(0, 1, 1); err == nil {
		t.Error("zero capacity")
	}
	if _, err := NewFunnelTrap(10, 0, 1); err == nil {
		t.Error("zero efficiency")
	}
	if _, err := NewFunnelTrap(10, 1.5, 1); err == nil {
		t.Error("efficiency > 1")
	}
	if _, err := NewFunnelTrap(10, 1, 0); err == nil {
		t.Error("zero release")
	}
}

func TestMZBias(t *testing.T) {
	ft, _ := NewFunnelTrap(1000, 1, 1)
	if ft.MZBias(500, 0.5) != 1 {
		t.Error("no bias below capacity")
	}
	lowMZ := ft.MZBias(200, 2)
	highMZ := ft.MZBias(1500, 2)
	if lowMZ >= highMZ {
		t.Errorf("overfill should bias against low m/z: low %g, high %g", lowMZ, highMZ)
	}
	if lowMZ <= 0 || highMZ > 1 {
		t.Error("bias out of range")
	}
}

func TestAGC(t *testing.T) {
	agc, err := NewAGC(1e6, 1e-3, 1e-1)
	if err != nil {
		t.Fatal(err)
	}
	// Initial guess is inside the bounds.
	ft := agc.NextFillTime()
	if ft < 1e-3 || ft > 1e-1 {
		t.Errorf("initial fill %g outside bounds", ft)
	}
	// After observing a strong beam, fill time adapts downward toward
	// target/rate.
	agc.Observe(1e6, 1e-3) // rate 1e9 charges/s
	got := agc.NextFillTime()
	if got > 2e-3 {
		t.Errorf("fill time %g should approach %g", got, 1e6/1e9)
	}
	// A weak beam pushes the fill time to the maximum.
	agc2, _ := NewAGC(1e6, 1e-3, 1e-1)
	agc2.Observe(100, 1e-1) // rate 1e3
	if agc2.NextFillTime() != 1e-1 {
		t.Error("weak beam should clamp to max fill")
	}
	// EMA smooths: a single outlier does not fully reset the estimate.
	agc3, _ := NewAGC(1e6, 1e-3, 1e-1)
	agc3.Observe(1e6, 1e-3)
	r1 := agc3.EstimatedRate()
	agc3.Observe(1, 1e-1) // near-zero outlier
	r2 := agc3.EstimatedRate()
	if r2 >= r1 {
		t.Error("estimate should decrease")
	}
	if r2 < r1*0.2 {
		t.Error("EMA should damp single outliers")
	}
	agc3.Observe(0, 0) // ignored
	if agc3.EstimatedRate() != r2 {
		t.Error("zero fill time must be ignored")
	}
}

func TestAGCConstructorErrors(t *testing.T) {
	if _, err := NewAGC(0, 1e-3, 1e-1); err == nil {
		t.Error("zero target")
	}
	if _, err := NewAGC(1, 0, 1); err == nil {
		t.Error("zero min fill")
	}
	if _, err := NewAGC(1, 1e-1, 1e-3); err == nil {
		t.Error("max below min")
	}
}

func TestGateEffectiveWaveform(t *testing.T) {
	g := Gate{OpenTransmission: 0.9, ClosedLeakage: 0.01, RiseBins: 1, RiseDepth: 0.5}
	seq := []uint8{0, 1, 1, 0, 1}
	w, err := g.EffectiveWaveform(seq)
	if err != nil {
		t.Fatal(err)
	}
	// Bin 1 opens after a 0: depleted.  Bin 2 continues open: full.
	// Bin 4 opens after a 0: depleted (cyclic wrap ignored: bin 0 is 0).
	want := []float64{0.01, 0.45, 0.9, 0.01, 0.45}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Errorf("waveform[%d] = %g, want %g", i, w[i], want[i])
		}
	}
	// Ideal gate: no depletion anywhere.
	ideal := Gate{OpenTransmission: 1, ClosedLeakage: 0, RiseBins: 0}
	w2, _ := ideal.EffectiveWaveform(seq)
	for i, b := range seq {
		if w2[i] != float64(b) {
			t.Fatal("ideal gate should reproduce the sequence")
		}
	}
	if _, err := g.EffectiveWaveform([]uint8{0, 0}); err == nil {
		t.Error("never-open sequence should fail")
	}
}

func TestGateValidate(t *testing.T) {
	bad := []Gate{
		{OpenTransmission: 0},
		{OpenTransmission: 1.5},
		{OpenTransmission: 0.5, ClosedLeakage: 0.6},
		{OpenTransmission: 0.9, RiseBins: -1},
		{OpenTransmission: 0.9, RiseDepth: 1.5},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("gate case %d should fail", i)
		}
	}
	if err := DefaultGate().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDriftTubeArrival(t *testing.T) {
	tube := DefaultDriftTube()
	p, _ := chem.NewPeptide("RPPGFSPFR")
	as, _ := AnalytesFromPeptide("bk", p, 1, 0.05)
	a := as[0]
	arr, err := tube.Arrival(a, 1e-4, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if arr.MeanS < 5e-3 || arr.MeanS > 0.2 {
		t.Errorf("drift time %g s implausible", arr.MeanS)
	}
	if arr.SigmaS <= 0 || arr.SigmaS > arr.MeanS {
		t.Errorf("sigma %g implausible vs mean %g", arr.SigmaS, arr.MeanS)
	}
	// Space charge increases sigma.
	arrBig, _ := tube.Arrival(a, 1e-4, 1e8)
	if arrBig.SigmaS <= arr.SigmaS {
		t.Error("larger packet should broaden arrival")
	}
	// Errors.
	if _, err := tube.Arrival(Analyte{}, 1e-4, 0); err == nil {
		t.Error("invalid analyte should fail")
	}
	if _, err := tube.Arrival(a, -1, 0); err == nil {
		t.Error("negative gate width should fail")
	}
	bad := tube
	bad.LengthM = 0
	if _, err := bad.Arrival(a, 1e-4, 0); err == nil {
		t.Error("invalid tube should fail")
	}
}

func TestDriftTubeMaxDriftTime(t *testing.T) {
	tube := DefaultDriftTube()
	m := testMixture(t)
	max, err := tube.MaxDriftTime(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range m.Analytes {
		arr, _ := tube.Arrival(a, 0, 0)
		if arr.MeanS > max {
			t.Fatal("MaxDriftTime missed a slower analyte")
		}
	}
	if _, err := tube.MaxDriftTime(Mixture{}); err == nil {
		t.Error("empty mixture should fail")
	}
}

func TestDriftTubeResolvingPower(t *testing.T) {
	r, err := DefaultDriftTube().ResolvingPower(2)
	if err != nil {
		t.Fatal(err)
	}
	if r < 50 || r > 300 {
		t.Errorf("resolving power %g implausible", r)
	}
}

func TestTOFFlightTime(t *testing.T) {
	tof := DefaultTOF()
	t1, err := tof.FlightTime(500)
	if err != nil {
		t.Fatal(err)
	}
	// Flight times are tens of microseconds.
	if t1 < 5e-6 || t1 > 1e-4 {
		t.Errorf("flight time %g implausible", t1)
	}
	t2, _ := tof.FlightTime(2000)
	if math.Abs(t2/t1-2) > 1e-9 {
		t.Errorf("flight time should scale as sqrt(m/z): ratio %g", t2/t1)
	}
	if _, err := tof.FlightTime(0); err == nil {
		t.Error("zero m/z should fail")
	}
}

func TestTOFDutyCycle(t *testing.T) {
	tof := DefaultTOF()
	dMax := tof.DutyCycle(tof.MaxMZ)
	if math.Abs(dMax-0.25) > 1e-9 {
		t.Errorf("max duty %g, want 0.25", dMax)
	}
	dLow := tof.DutyCycle(tof.MinMZ)
	if dLow >= dMax {
		t.Error("duty cycle should grow with m/z")
	}
	// Clamping.
	if tof.DutyCycle(1) != dLow {
		t.Error("below-range m/z should clamp")
	}
	if tof.DutyCycle(1e6) != dMax {
		t.Error("above-range m/z should clamp")
	}
}

func TestTOFBinning(t *testing.T) {
	tof := DefaultTOF()
	if tof.BinOf(tof.MinMZ-1) != -1 || tof.BinOf(tof.MaxMZ) != -1 {
		t.Error("out-of-range m/z should map to -1")
	}
	for _, mz := range []float64{200, 500.5, 1234.5, 2499.9} {
		b := tof.BinOf(mz)
		if b < 0 || b >= tof.Bins {
			t.Fatalf("bin %d out of range for m/z %g", b, mz)
		}
		c := tof.BinCenter(b)
		if math.Abs(c-mz) > tof.BinWidth() {
			t.Fatalf("bin center %g too far from %g", c, mz)
		}
	}
}

func TestTOFSpread(t *testing.T) {
	tof := DefaultTOF()
	bins, weights := tof.Spread(1000)
	if len(bins) == 0 {
		t.Fatal("no spread bins")
	}
	var sum float64
	maxW := 0.0
	maxI := 0
	for i, w := range weights {
		sum += w
		if w > maxW {
			maxW, maxI = w, i
		}
	}
	if sum < 0.9 || sum > 1.1 {
		t.Errorf("spread weights sum to %g, want ~1", sum)
	}
	centre := tof.BinCenter(bins[maxI])
	if math.Abs(centre-1000) > 2*tof.BinWidth() {
		t.Errorf("spread apex at %g, want near 1000", centre)
	}
	// Out-of-range peaks vanish.
	if b, _ := tof.Spread(10); b != nil {
		t.Error("far out-of-range peak should spread nowhere")
	}
}

func TestTOFValidate(t *testing.T) {
	if err := DefaultTOF().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultTOF()
	bad.MinMZ = 3000
	if err := bad.Validate(); err == nil {
		t.Error("inverted m/z range should fail")
	}
}

func TestPoissonSample(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	if PoissonSample(0, rng) != 0 || PoissonSample(-1, rng) != 0 {
		t.Error("non-positive lambda should give 0")
	}
	// Small-lambda regime: empirical mean near lambda.
	for _, lambda := range []float64{0.5, 3, 20} {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += float64(PoissonSample(lambda, rng))
		}
		mean := sum / float64(n)
		if math.Abs(mean-lambda) > 4*math.Sqrt(lambda/float64(n)) {
			t.Errorf("lambda %g: empirical mean %g", lambda, mean)
		}
	}
	// Large-lambda (normal approx) regime.
	var sum float64
	n := 5000
	for i := 0; i < n; i++ {
		sum += float64(PoissonSample(1000, rng))
	}
	if mean := sum / float64(n); math.Abs(mean-1000) > 5 {
		t.Errorf("lambda 1000: empirical mean %g", mean)
	}
}

func TestDetectorCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	det := Detector{GainCounts: 8, GainSpread: 0}
	if det.Counts(0, rng) != 0 {
		t.Error("zero ions give zero counts")
	}
	if got := det.Counts(5, rng); got != 40 {
		t.Errorf("deterministic gain: %g, want 40", got)
	}
	det2 := DefaultDetector()
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += det2.Counts(10, rng)
	}
	mean := sum / float64(n)
	want := 10 * det2.GainCounts
	if math.Abs(mean-want) > want*0.05 {
		t.Errorf("mean counts %g, want ~%g", mean, want)
	}
}

func TestADCSample(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	adc := ADC{Bits: 8, BaselineMean: 0, BaselineSigma: 0}
	if got := adc.Sample(100.4, rng); got != 100 {
		t.Errorf("quantization: %g, want 100", got)
	}
	if got := adc.Sample(5000, rng); got != 255 {
		t.Errorf("saturation: %g, want 255", got)
	}
	if got := adc.Sample(-20, rng); got != 0 {
		t.Errorf("clipping: %g, want 0", got)
	}
	thr := ADC{Bits: 8, ThresholdCnt: 10}
	if got := thr.Sample(3, rng); got != 0 {
		t.Errorf("threshold: %g, want 0", got)
	}
	if err := (ADC{Bits: 0}).Validate(); err == nil {
		t.Error("zero bits should fail")
	}
	if err := (ADC{Bits: 8, BaselineSigma: -1}).Validate(); err == nil {
		t.Error("negative noise should fail")
	}
}

func TestADCAccumulateSamplesConsistency(t *testing.T) {
	// The exact and approximate accumulation paths must agree in mean.
	det := Detector{GainCounts: 5, GainSpread: 0.5}
	adc := ADC{Bits: 8, BaselineMean: 1, BaselineSigma: 1}
	lambda := 2.0
	var n int64 = 400
	trials := 200
	rng := rand.New(rand.NewSource(44))
	var exact, approx float64
	for i := 0; i < trials; i++ {
		exact += adc.AccumulateSamples(lambda, n, det, rng, n+1) // force exact
		approx += adc.AccumulateSamples(lambda, n, det, rng, 0)  // force approx
	}
	exact /= float64(trials)
	approx /= float64(trials)
	if math.Abs(exact-approx)/exact > 0.05 {
		t.Errorf("exact mean %g vs approx mean %g differ by >5%%", exact, approx)
	}
	if adc.AccumulateSamples(1, 0, det, rng, 10) != 0 {
		t.Error("zero samples give zero")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.SequenceOrder = 1 }),
		mut(func(c *Config) { c.Oversample = 0 }),
		mut(func(c *Config) { c.Defect = -1 }),
		mut(func(c *Config) { c.Defect = 1; c.Oversample = 1 }),
		mut(func(c *Config) { c.BinWidthS = 0 }),
		mut(func(c *Config) { c.BinWidthS = 1e-6 }), // below extraction period
		mut(func(c *Config) { c.Frames = 0 }),
		mut(func(c *Config) { c.Trap = TrapConfig{} }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config case %d should fail", i)
		}
	}
}

func TestConfigSequence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SequenceOrder = 5
	cfg.Oversample = 3
	cfg.Defect = 1
	s, err := cfg.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 31*3 {
		t.Errorf("sequence length %d, want 93", len(s))
	}
	if cfg.DriftBins() != 93 {
		t.Errorf("drift bins %d, want 93", cfg.DriftBins())
	}
	if math.Abs(cfg.CycleDuration()-93*cfg.BinWidthS) > 1e-12 {
		t.Error("cycle duration wrong")
	}
}

func TestFrameAccessors(t *testing.T) {
	f := NewFrame(4, 3)
	f.Set(2, 1, 5)
	f.Add(2, 1, 2)
	if f.At(2, 1) != 7 {
		t.Errorf("At = %g, want 7", f.At(2, 1))
	}
	f.Set(0, 0, 1)
	f.Set(3, 2, 10)
	if got := f.TotalCounts(); got != 18 {
		t.Errorf("total %g, want 18", got)
	}
	dp := f.DriftProfile()
	if dp[2] != 7 || dp[0] != 1 || dp[3] != 10 || dp[1] != 0 {
		t.Errorf("drift profile %v", dp)
	}
	ts := f.TOFSpectrum(2)
	if ts[1] != 7 || ts[0] != 0 {
		t.Errorf("tof spectrum %v", ts)
	}
	dv := f.DriftVector(1)
	if dv[2] != 7 || dv[0] != 0 {
		t.Errorf("drift vector %v", dv)
	}
	f.SetDriftVector(2, []float64{9, 9, 9, 9})
	if f.At(0, 2) != 9 || f.At(3, 2) != 9 {
		t.Error("SetDriftVector failed")
	}
}

func TestInstrumentModeString(t *testing.T) {
	if ModeSignalAveraging.String() != "signal-averaging" ||
		ModeMultiplexed.String() != "multiplexed" ||
		ModeMultiplexedTrap.String() != "multiplexed+trap" {
		t.Error("mode strings wrong")
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestInstrumentGatePulses(t *testing.T) {
	src := testSource(t, 1e8)
	sa, err := New(testConfig(ModeSignalAveraging), src)
	if err != nil {
		t.Fatal(err)
	}
	if sa.GatePulsesPerCycle() != 1 {
		t.Error("SA mode should pulse once per cycle")
	}
	mp, _ := New(testConfig(ModeMultiplexed), src)
	if got := mp.GatePulsesPerCycle(); got != 32 {
		t.Errorf("order-6 MP pulses = %d, want 32", got)
	}
}

// TestUtilizationOrdering is the duty-cycle story of the paper series:
// SA ≈ 1/N, MP ≈ 1/2, trap+MP above MP.
func TestUtilizationOrdering(t *testing.T) {
	src := testSource(t, 1e7)
	var utils [3]float64
	for i, mode := range []Mode{ModeSignalAveraging, ModeMultiplexed, ModeMultiplexedTrap} {
		inst, err := New(testConfig(mode), src)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := inst.ExpectedDetections(0)
		if err != nil {
			t.Fatal(err)
		}
		utils[i] = stats.Utilization
	}
	if utils[0] > 0.05 {
		t.Errorf("SA utilization %g should be ~1/63", utils[0])
	}
	if utils[1] < 0.4 || utils[1] > 0.55 {
		t.Errorf("MP utilization %g should be ~0.5", utils[1])
	}
	if utils[2] <= utils[1] {
		t.Errorf("trap+MP utilization %g should exceed MP %g", utils[2], utils[1])
	}
	if utils[2] > 1 {
		t.Errorf("utilization %g cannot exceed 1", utils[2])
	}
}

func TestExpectedDetectionsConservation(t *testing.T) {
	src := testSource(t, 1e7)
	inst, _ := New(testConfig(ModeMultiplexed), src)
	frame, stats, err := inst.ExpectedDetections(0)
	if err != nil {
		t.Fatal(err)
	}
	if frame.DriftBins != 63 || frame.TOFBins != 256 {
		t.Fatalf("frame geometry %dx%d", frame.DriftBins, frame.TOFBins)
	}
	// Detected ions are injected ions times duty cycle (<= max 25 %) and
	// spectral truncation; they cannot exceed injections.
	if stats.IonsDetected >= stats.IonsInjected {
		t.Errorf("detected %g should be below injected %g (duty cycle)", stats.IonsDetected, stats.IonsInjected)
	}
	if stats.IonsDetected <= 0 {
		t.Error("nothing detected")
	}
	// All frame mass is non-negative.
	for _, v := range frame.Data {
		if v < 0 {
			t.Fatal("negative expectation")
		}
	}
}

// TestTrapModeBeatsBeamModeSignal: at the same source current the funnel
// trap injects more ions per cycle.
func TestTrapModeBeatsBeamModeSignal(t *testing.T) {
	src := testSource(t, 1e7)
	beam, _ := New(testConfig(ModeMultiplexed), src)
	trap, _ := New(testConfig(ModeMultiplexedTrap), src)
	_, sBeam, _ := beam.ExpectedDetections(0)
	_, sTrap, _ := trap.ExpectedDetections(0)
	if sTrap.IonsInjected <= sBeam.IonsInjected {
		t.Errorf("trap injected %g should exceed beam %g", sTrap.IonsInjected, sBeam.IonsInjected)
	}
}

// TestTrapSaturation: a huge source current saturates the trap and records
// losses.
func TestTrapSaturation(t *testing.T) {
	src := testSource(t, 1e13)
	cfg := testConfig(ModeMultiplexedTrap)
	inst, _ := New(cfg, src)
	_, stats, _ := inst.ExpectedDetections(0)
	if stats.TrapLosses <= 0 {
		t.Error("expected trap losses at saturating current")
	}
	if stats.Utilization >= 0.9 {
		t.Errorf("utilization %g should collapse under saturation", stats.Utilization)
	}
}

func TestAcquireDeterminism(t *testing.T) {
	src := testSource(t, 1e7)
	inst, _ := New(testConfig(ModeMultiplexed), src)
	f1, s1, err := inst.Acquire(rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	f2, s2, err := inst.Acquire(rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	if s1.IonsInjected != s2.IonsInjected {
		t.Error("stats not deterministic")
	}
	for i := range f1.Data {
		if f1.Data[i] != f2.Data[i] {
			t.Fatal("frames not deterministic under equal seeds")
		}
	}
	// Different seeds give different noise.
	f3, _, _ := inst.Acquire(rand.New(rand.NewSource(78)))
	same := true
	for i := range f1.Data {
		if f1.Data[i] != f3.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical frames")
	}
	if _, _, err := inst.Acquire(nil); err == nil {
		t.Error("nil rng should fail")
	}
}

// TestAcquireSignalPresent: the acquired frame contains clearly more counts
// in the analyte's m/z column than in an empty column.
func TestAcquireSignalPresent(t *testing.T) {
	src := testSource(t, 1e7)
	cfg := testConfig(ModeMultiplexed)
	inst, _ := New(cfg, src)
	frame, _, err := inst.Acquire(rand.New(rand.NewSource(79)))
	if err != nil {
		t.Fatal(err)
	}
	// Locate bradykinin 2+ column.
	p, _ := chem.NewPeptide("RPPGFSPFR")
	mz, _ := p.MZ(2)
	col := cfg.TOF.BinOf(mz)
	if col < 0 {
		t.Fatal("bradykinin 2+ out of recorded range")
	}
	sig := 0.0
	for _, v := range frame.DriftVector(col) {
		sig += v
	}
	// An empty column far from any analyte.
	empty := 0.0
	for _, v := range frame.DriftVector(5) {
		empty += v
	}
	if sig < empty*1.5 {
		t.Errorf("analyte column (%g) not above background (%g)", sig, empty)
	}
}

func TestTDCExpectedCounts(t *testing.T) {
	tdc := DefaultTDC()
	if err := tdc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tdc.ExpectedCounts(0); got != 0 {
		t.Errorf("zero flux counts %g", got)
	}
	// Low flux: linear (1-exp(-λ) ≈ λ).
	if got := tdc.ExpectedCounts(0.01); math.Abs(got-0.00995) > 1e-4 {
		t.Errorf("low flux counts %g", got)
	}
	// High flux: saturates at 1 event per extraction.
	if got := tdc.ExpectedCounts(100); got < 0.999 || got > 1 {
		t.Errorf("saturated counts %g", got)
	}
	// Multi-stop raises the ceiling.
	multi := TDC{MaxEventsPerBin: 4}
	if got := multi.ExpectedCounts(100); got < 3.9 || got > 4 {
		t.Errorf("multi-stop saturated counts %g", got)
	}
	if got := multi.ExpectedCounts(1); got <= tdc.ExpectedCounts(1) {
		t.Errorf("multi-stop should register more at moderate flux: %g", got)
	}
	if err := (TDC{}).Validate(); err == nil {
		t.Error("zero max events should fail")
	}
}

func TestTDCAccumulateSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	tdc := DefaultTDC()
	if tdc.AccumulateSamples(1, 0, rng, 10) != 0 || tdc.AccumulateSamples(0, 10, rng, 10) != 0 {
		t.Error("degenerate inputs should give zero")
	}
	// Exact and approximate paths agree in mean.
	lambda := 0.5
	var n int64 = 500
	trials := 200
	var exact, approx float64
	for i := 0; i < trials; i++ {
		exact += tdc.AccumulateSamples(lambda, n, rng, n+1)
		approx += tdc.AccumulateSamples(lambda, n, rng, 0)
	}
	exact /= float64(trials)
	approx /= float64(trials)
	if math.Abs(exact-approx)/exact > 0.05 {
		t.Errorf("exact %g vs approx %g", exact, approx)
	}
	// Never exceeds the event ceiling.
	if got := tdc.AccumulateSamples(1e6, 100, rng, 0); got > 100 {
		t.Errorf("TDC returned %g counts for 100 extractions", got)
	}
}

// TestTDCSaturationCompressesDynamicRange: the end-to-end contrast that
// motivated ADC detection — at high flux a strong and a 100x weaker analyte
// look much closer in a TDC run than in an ADC run.
func TestTDCSaturationCompressesDynamicRange(t *testing.T) {
	build := func(kind DetectionKind) (*Frame, Config) {
		var m Mixture
		p1, _ := chem.NewPeptide("RPPGFSPFR")
		p2, _ := chem.NewPeptide("DRVYIHPF")
		if err := m.AddPeptide("strong", p1, 100); err != nil {
			t.Fatal(err)
		}
		if err := m.AddPeptide("weak", p2, 1); err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(ModeSignalAveraging)
		cfg.Detection = kind
		cfg.TDC = DefaultTDC()
		cfg.Detector.GainCounts = 2      // keep the ADC linear at this flux
		src, err := NewESISource(m, 1e7) // saturates the TDC, not the ADC
		if err != nil {
			t.Fatal(err)
		}
		inst, err := New(cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		frame, _, err := inst.Acquire(rand.New(rand.NewSource(46)))
		if err != nil {
			t.Fatal(err)
		}
		return frame, cfg
	}
	ratio := func(frame *Frame, cfg Config) float64 {
		p1, _ := chem.NewPeptide("RPPGFSPFR")
		p2, _ := chem.NewPeptide(`DRVYIHPF`)
		mz1, _ := p1.MZ(2)
		mz2, _ := p2.MZ(2)
		c1, c2 := cfg.TOF.BinOf(mz1), cfg.TOF.BinOf(mz2)
		max1, max2 := 0.0, 0.0
		for _, v := range frame.DriftVector(c1) {
			if v > max1 {
				max1 = v
			}
		}
		for _, v := range frame.DriftVector(c2) {
			if v > max2 {
				max2 = v
			}
		}
		if max2 == 0 {
			return math.Inf(1)
		}
		return max1 / max2
	}
	adcFrame, adcCfg := build(DetectionADC)
	tdcFrame, tdcCfg := build(DetectionTDC)
	adcRatio := ratio(adcFrame, adcCfg)
	tdcRatio := ratio(tdcFrame, tdcCfg)
	if tdcRatio >= adcRatio/2 {
		t.Errorf("TDC ratio %g should be well below ADC ratio %g (saturation compression)", tdcRatio, adcRatio)
	}
}

// TestTrapSaturationBiasesMZ: when the trap saturates, the packet
// composition shifts toward high m/z relative to the beam composition.
func TestTrapSaturationBiasesMZ(t *testing.T) {
	var m Mixture
	if err := m.AddAnalyte(Analyte{Name: "light", MassDa: 400, Z: 2, MZ: 201, CCSM2: 1.5e-18, Abundance: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddAnalyte(Analyte{Name: "heavy", MassDa: 3000, Z: 2, MZ: 1501, CCSM2: 5e-18, Abundance: 1}); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(ModeMultiplexedTrap)
	cfg.Trap.EqualizeRelease = false
	composition := func(rate float64) float64 {
		src, err := NewESISource(m, rate)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := New(cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		frame, stats, err := inst.ExpectedDetections(0)
		if err != nil {
			t.Fatal(err)
		}
		_ = stats
		// Fraction of detected ions in the heavy analyte's column region.
		heavyCol := cfg.TOF.BinOf(1501)
		lightCol := cfg.TOF.BinOf(201)
		var heavy, light float64
		for _, v := range frame.DriftVector(heavyCol) {
			heavy += v
		}
		for _, v := range frame.DriftVector(lightCol) {
			light += v
		}
		if light == 0 {
			t.Fatal("no light signal")
		}
		return heavy / light
	}
	gentle := composition(1e7)     // far below capacity
	saturated := composition(1e13) // trap overfilled every gap
	if saturated <= gentle*1.05 {
		t.Errorf("saturation should enrich high m/z: gentle ratio %g, saturated %g", gentle, saturated)
	}
}

func TestConfigValidateTDC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Detection = DetectionTDC
	cfg.TDC = TDC{}
	if err := cfg.Validate(); err == nil {
		t.Error("invalid TDC config should fail validation")
	}
	if DetectionADC.String() != "adc" || DetectionTDC.String() != "tdc" {
		t.Error("detection kind strings wrong")
	}
	if DetectionKind(9).String() == "" {
		t.Error("unknown detection kind should render")
	}
}

func TestRawRates(t *testing.T) {
	src := testSource(t, 1e7)
	inst, _ := New(testConfig(ModeMultiplexed), src)
	// 256 bins per 100 µs extraction = 2.56 Msamples/s.
	if got := inst.RawSampleRate(); math.Abs(got-2.56e6) > 1 {
		t.Errorf("sample rate %g", got)
	}
	if got := inst.RawByteRate(); math.Abs(got-2.56e6) > 1 {
		t.Errorf("byte rate %g", got)
	}
}

func TestNewInstrumentErrors(t *testing.T) {
	src := testSource(t, 1e7)
	bad := testConfig(ModeMultiplexed)
	bad.Frames = 0
	if _, err := New(bad, src); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := New(testConfig(ModeMultiplexed), nil); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := New(Config{SequenceOrder: 6, Oversample: 1, Mode: Mode(9), Gate: DefaultGate(), Tube: DefaultDriftTube(), TOF: DefaultTOF(), Detector: DefaultDetector(), ADC: DefaultADC(), Trap: DefaultTrapConfig(), BinWidthS: 4e-4, Frames: 1}, src); err == nil {
		t.Error("unknown mode should fail")
	}
}

func BenchmarkExpectedDetections(b *testing.B) {
	src := testSource(b, 1e7)
	inst, err := New(testConfig(ModeMultiplexedTrap), src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := inst.ExpectedDetections(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAcquire(b *testing.B) {
	src := testSource(b, 1e7)
	cfg := testConfig(ModeMultiplexed)
	cfg.Frames = 1
	inst, _ := New(cfg, src)
	rng := rand.New(rand.NewSource(80))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := inst.Acquire(rng); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSyntheticBackground(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	bg, err := SyntheticBackground(rng, 50, 10, 200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(bg) != 50 {
		t.Fatalf("species %d", len(bg))
	}
	var total float64
	for _, a := range bg {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		if a.MZ < 200 || a.MZ > 2000 {
			t.Errorf("background m/z %g out of range", a.MZ)
		}
		total += a.Abundance
	}
	if math.Abs(total-10) > 1e-9 {
		t.Errorf("total abundance %g, want 10", total)
	}
	// Determinism.
	rng2 := rand.New(rand.NewSource(91))
	bg2, _ := SyntheticBackground(rng2, 50, 10, 200, 2000)
	for i := range bg {
		if bg[i].MZ != bg2[i].MZ {
			t.Fatal("background not deterministic")
		}
	}
	// Errors.
	if _, err := SyntheticBackground(rng, 0, 1, 200, 2000); err == nil {
		t.Error("zero species")
	}
	if _, err := SyntheticBackground(rng, 5, 0, 200, 2000); err == nil {
		t.Error("zero abundance")
	}
	if _, err := SyntheticBackground(rng, 5, 1, 2000, 200); err == nil {
		t.Error("inverted range")
	}
}

// TestBackgroundRaisesNoiseFloor: adding chemical background raises the
// measured noise in an otherwise clean column.
func TestBackgroundRaisesNoiseFloor(t *testing.T) {
	run := func(withBG bool) float64 {
		m := testMixture(t)
		if withBG {
			rng := rand.New(rand.NewSource(92))
			bg, err := SyntheticBackground(rng, 100, 5, 200, 1700)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range bg {
				if err := m.AddAnalyte(a); err != nil {
					t.Fatal(err)
				}
			}
		}
		cfg := testConfig(ModeMultiplexed)
		src, err := NewESISource(m, 1e7)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := New(cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		frame, _, err := inst.Acquire(rand.New(rand.NewSource(93)))
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, v := range frame.Data {
			total += v
		}
		return total
	}
	clean := run(false)
	noisy := run(true)
	if noisy <= clean*1.02 {
		t.Errorf("background should add counts: clean %g, with background %g", clean, noisy)
	}
}

func TestWithIsotopes(t *testing.T) {
	p, _ := chem.NewPeptide("RPPGFSPFR")
	mz, _ := p.MZ(2)
	ccs, _ := p.CCS(2)
	a := Analyte{Name: "bk", MassDa: p.MonoisotopicMass(), Z: 2, MZ: mz, CCSM2: ccs, Abundance: 1}
	iso, err := a.WithIsotopes(p.Formula(), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(iso.Isotopes) < 3 {
		t.Fatalf("isotope peaks %d", len(iso.Isotopes))
	}
	if iso.Isotopes[0].OffsetMZ != 0 {
		t.Error("first isotope should sit at the monoisotopic m/z")
	}
	// Spacing ~1.003/z.
	spacing := iso.Isotopes[1].OffsetMZ - iso.Isotopes[0].OffsetMZ
	if math.Abs(spacing-1.003/2) > 0.01 {
		t.Errorf("isotope m/z spacing %g, want ~0.5015", spacing)
	}
	var sum float64
	for _, ip := range iso.Isotopes {
		sum += ip.Fraction
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("fractions sum %g", sum)
	}
	bad := a
	bad.Z = 0
	if _, err := bad.WithIsotopes(p.Formula(), 1e-4); err == nil {
		t.Error("zero charge should fail")
	}
}

// TestFrameCarriesIsotopeEnvelope: with a fine m/z axis and a 1+ analyte,
// the acquired frame shows the M+1 peak at the theoretical ratio.
func TestFrameCarriesIsotopeEnvelope(t *testing.T) {
	p, _ := chem.NewPeptide("RPPGFSPFR")
	mz, _ := p.MZ(1)
	ccs, _ := p.CCS(1)
	base := Analyte{Name: "bk", MassDa: p.MonoisotopicMass(), Z: 1, MZ: mz, CCSM2: ccs, Abundance: 1}
	a, err := base.WithIsotopes(p.Formula(), 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	var m Mixture
	if err := m.AddAnalyte(a); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(ModeSignalAveraging)
	cfg.TOF.Bins = 4096 // ~0.37 Th per bin: isotopes resolved at 1+
	src, _ := NewESISource(m, 1e8)
	inst, err := New(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	frame, _, err := inst.ExpectedDetections(0)
	if err != nil {
		t.Fatal(err)
	}
	colSum := func(mzv float64) float64 {
		col := cfg.TOF.BinOf(mzv)
		var s float64
		for _, v := range frame.DriftVector(col) {
			s += v
		}
		return s
	}
	mono := colSum(mz)
	mPlus1 := colSum(mz + 1.0033)
	if mono <= 0 || mPlus1 <= 0 {
		t.Fatalf("isotope columns empty: %g %g", mono, mPlus1)
	}
	ratio := mPlus1 / mono
	// ~1060 Da peptide: M+1/M ≈ 0.58 theoretical; allow binning slop.
	if ratio < 0.35 || ratio > 0.85 {
		t.Errorf("M+1/M ratio %g, want ~0.58", ratio)
	}
}

func TestInstrumentAccessors(t *testing.T) {
	src := testSource(t, 1e6)
	cfg := testConfig(ModeMultiplexed)
	inst, err := New(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Config().SequenceOrder != cfg.SequenceOrder {
		t.Error("Config accessor wrong")
	}
	if len(inst.Sequence()) != cfg.DriftBins() {
		t.Error("Sequence accessor wrong")
	}
	if w := IdealWaveform(inst.Sequence()); len(w) != cfg.DriftBins() || w[0] != float64(inst.Sequence()[0]) {
		t.Error("IdealWaveform wrong")
	}
}

// TestModulationByMode: SA = impulse; beam MP = gate waveform; equalized
// trap ≈ uniform weights on the open bins.
func TestModulationByMode(t *testing.T) {
	src := testSource(t, 1e6)

	sa, _ := New(testConfig(ModeSignalAveraging), src)
	w := sa.Modulation()
	if w[0] <= 0 {
		t.Error("SA modulation should open at bin 0")
	}
	for b := 1; b < len(w); b++ {
		if w[b] != 0 {
			t.Fatalf("SA modulation open at bin %d", b)
		}
	}

	mp, _ := New(testConfig(ModeMultiplexed), src)
	wm := mp.Modulation()
	seq := mp.Sequence()
	for b := range wm {
		if (seq[b] == 1) != (wm[b] > 0.01) {
			t.Fatalf("beam modulation disagrees with sequence at bin %d", b)
		}
	}

	tr, _ := New(testConfig(ModeMultiplexedTrap), src)
	wt := tr.Modulation()
	seqT := tr.Sequence()
	// Equalized release: the open-bin weights should be nearly uniform
	// (ignoring the rise-depleted first bin of each run).
	var min, max float64 = 1e18, 0
	for b := range wt {
		if seqT[b] == 1 && seqT[(b+len(seqT)-1)%len(seqT)] == 1 { // not a run head
			if wt[b] < min {
				min = wt[b]
			}
			if wt[b] > max {
				max = wt[b]
			}
		}
	}
	if max/min > 1.3 {
		t.Errorf("equalized trap weights spread %g-%g (ratio %.2f), want near-uniform", min, max, max/min)
	}
	// Without equalization the spread follows the gap pattern: run-head
	// bins carry the whole preceding gap while interior bins carry one
	// bin's worth, so the all-open-bin spread is large.
	cfgU := testConfig(ModeMultiplexedTrap)
	cfgU.Trap.EqualizeRelease = false
	un, _ := New(cfgU, src)
	wu := un.Modulation()
	min, max = 1e18, 0
	for b := range wu {
		if seqT[b] == 1 {
			if wu[b] < min {
				min = wu[b]
			}
			if wu[b] > max {
				max = wu[b]
			}
		}
	}
	if max/min < 1.5 {
		t.Errorf("free-running trap weights ratio %.2f, want gap-structured spread", max/min)
	}
}

func TestTOFSpreadBroadPeak(t *testing.T) {
	tof := DefaultTOF()
	tof.ResolvingPower = 100 // force multi-bin peaks
	bins, weights := tof.Spread(1000)
	if len(bins) < 3 {
		t.Fatalf("broad peak covers %d bins", len(bins))
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum < 0.9 || sum > 1.1 {
		t.Errorf("broad spread weights sum %g", sum)
	}
	// Near the spectrum edge the spread truncates without panicking.
	edgeBins, _ := tof.Spread(tof.MaxMZ - 1)
	if len(edgeBins) == 0 {
		t.Error("edge peak should still land in range")
	}
	if got := tof.ExtractionsPer(1e-3); math.Abs(got-10) > 1e-9 {
		t.Errorf("extractions per ms %g, want 10", got)
	}
}

func TestValidateBranches(t *testing.T) {
	if err := (Detector{GainCounts: 0}).Validate(); err == nil {
		t.Error("zero gain")
	}
	if err := (Detector{GainCounts: 1, GainSpread: -1}).Validate(); err == nil {
		t.Error("negative spread")
	}
	tofCases := []func(*TOF){
		func(t *TOF) { t.FlightLengthM = 0 },
		func(t *TOF) { t.AccelVoltage = 0 },
		func(t *TOF) { t.ResolvingPower = 0 },
		func(t *TOF) { t.ExtractionPeriodS = 0 },
		func(t *TOF) { t.Bins = 0 },
	}
	for i, mut := range tofCases {
		tof := DefaultTOF()
		mut(&tof)
		if err := tof.Validate(); err == nil {
			t.Errorf("TOF case %d should fail", i)
		}
	}
	if err := (ADC{Bits: 30}).Validate(); err == nil {
		t.Error("over-wide ADC")
	}
	if err := (ADC{Bits: 8, ThresholdCnt: -1}).Validate(); err == nil {
		t.Error("negative threshold")
	}
}
