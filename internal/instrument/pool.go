// pool.go: a sync.Pool-backed Frame recycler for steady-state serving
// paths that decode one frame per request and would otherwise allocate
// (and zero) a multi-megabyte Data slice each time.
//
// Ownership rules (see docs/PERFORMANCE.md): whoever Gets a frame owns it
// until it is Put back exactly once; a frame must not be touched after
// Put, and a frame must never be Put while another goroutine can still
// reach it.  Frames obtained elsewhere (NewFrame, frameio) may also be
// Put — the pool only cares about Data capacity.
package instrument

import "sync"

// FramePool recycles Frames through a sync.Pool.  The zero value is ready
// to use.  Get returns a zeroed frame, so pooled frames behave exactly
// like NewFrame output.
type FramePool struct {
	pool sync.Pool
}

// Get returns a zeroed driftBins×tofBins frame, reusing a pooled backing
// array when one with enough capacity is available.
func (p *FramePool) Get(driftBins, tofBins int) *Frame {
	n := driftBins * tofBins
	if v := p.pool.Get(); v != nil {
		f := v.(*Frame)
		if cap(f.Data) >= n {
			f.DriftBins, f.TOFBins = driftBins, tofBins
			f.Data = f.Data[:n]
			for i := range f.Data {
				f.Data[i] = 0
			}
			return f
		}
		// Too small to reuse; drop it and fall through to a fresh frame.
	}
	return NewFrame(driftBins, tofBins)
}

// Put returns a frame to the pool.  nil is ignored.
func (p *FramePool) Put(f *Frame) {
	if f != nil {
		p.pool.Put(f)
	}
}
