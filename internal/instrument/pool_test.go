// pool_test.go: FramePool recycling semantics and the block accessors
// that feed the batched decode path.
package instrument

import (
	"math/rand"
	"testing"
)

func TestFramePoolGetZeroesReusedFrames(t *testing.T) {
	var p FramePool
	f := p.Get(4, 8)
	if f.DriftBins != 4 || f.TOFBins != 8 || len(f.Data) != 32 {
		t.Fatalf("bad geometry %d×%d len %d", f.DriftBins, f.TOFBins, len(f.Data))
	}
	for i := range f.Data {
		f.Data[i] = float64(i + 1)
	}
	p.Put(f)
	g := p.Get(2, 8) // smaller: must reuse capacity and come back zeroed
	if g.DriftBins != 2 || g.TOFBins != 8 || len(g.Data) != 16 {
		t.Fatalf("bad reshaped geometry %d×%d len %d", g.DriftBins, g.TOFBins, len(g.Data))
	}
	for i, v := range g.Data {
		if v != 0 {
			t.Fatalf("reused frame not zeroed at %d: %v", i, v)
		}
	}
	p.Put(g)
	h := p.Get(100, 100) // larger than pooled capacity: fresh allocation
	if len(h.Data) != 10000 {
		t.Fatalf("bad fresh frame len %d", len(h.Data))
	}
	p.Put(nil) // must not panic
}

func TestGatherScatterColumnsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := NewFrame(7, 13)
	for i := range f.Data {
		f.Data[i] = rng.Float64()
	}
	for _, tc := range []struct{ t0, lanes int }{{0, 1}, {0, 13}, {3, 4}, {11, 2}} {
		tile := make([]float64, f.DriftBins*tc.lanes)
		f.GatherColumns(tc.t0, tc.lanes, tile)
		for l := 0; l < tc.lanes; l++ {
			want := f.DriftVector(tc.t0 + l)
			for d := 0; d < f.DriftBins; d++ {
				if tile[d*tc.lanes+l] != want[d] {
					t.Fatalf("gather t0=%d lanes=%d lane %d row %d mismatch", tc.t0, tc.lanes, l, d)
				}
			}
		}
		// Scatter into a fresh frame and compare the column range.
		g := NewFrame(f.DriftBins, f.TOFBins)
		g.ScatterColumns(tc.t0, tc.lanes, tile)
		for l := 0; l < tc.lanes; l++ {
			got := g.DriftVector(tc.t0 + l)
			want := f.DriftVector(tc.t0 + l)
			for d := range got {
				if got[d] != want[d] {
					t.Fatalf("scatter t0=%d lanes=%d lane %d row %d mismatch", tc.t0, tc.lanes, l, d)
				}
			}
		}
	}
}

func TestDriftVectorInto(t *testing.T) {
	f := NewFrame(5, 3)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	dst := make([]float64, 5)
	f.DriftVectorInto(1, dst)
	want := f.DriftVector(1)
	for d := range want {
		if dst[d] != want[d] {
			t.Fatalf("row %d: %v != %v", d, dst[d], want[d])
		}
	}
}
