// source.go models the electrospray ionization source and optional liquid
// chromatography elution: each analyte contributes an ion current that may
// vary in time as an exponentially modified Gaussian (EMG) elution peak.
package instrument

import (
	"fmt"
	"math"
)

// ESISource converts a mixture into time-dependent ion currents.  The source
// emits TotalRate charges/s at full output, shared across analytes in
// proportion to abundance; an optional LC program modulates each analyte's
// share over time.
type ESISource struct {
	Mixture   Mixture
	TotalRate float64 // total ion current delivered to the funnel, charges/s
	// Elution optionally assigns an LC elution profile per analyte index.
	// A nil map (or missing entry) means constant infusion.
	Elution map[int]LCPeak
}

// NewESISource validates and constructs a source.
func NewESISource(m Mixture, totalRate float64) (*ESISource, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if totalRate <= 0 {
		return nil, fmt.Errorf("instrument: source total rate %g must be positive", totalRate)
	}
	return &ESISource{Mixture: m, TotalRate: totalRate}, nil
}

// LCPeak is an exponentially modified Gaussian elution profile, the standard
// chromatographic peak shape: a Gaussian of width Sigma centred at
// Retention, convolved with an exponential tail of time constant Tau.
type LCPeak struct {
	Retention float64 // retention time, s
	Sigma     float64 // Gaussian width, s
	Tau       float64 // exponential tail constant, s
}

// Amplitude evaluates the unit-area EMG profile at time t.
func (p LCPeak) Amplitude(t float64) float64 {
	if p.Sigma <= 0 {
		return 0
	}
	if p.Tau <= 1e-12 {
		// Pure Gaussian limit.
		d := (t - p.Retention) / p.Sigma
		return math.Exp(-d*d/2) / (p.Sigma * math.Sqrt(2*math.Pi))
	}
	// EMG via the exponentially scaled complementary error function form,
	// numerically stable for small tau.
	z := (p.Sigma/p.Tau - (t-p.Retention)/p.Sigma) / math.Sqrt2
	pre := 1 / (2 * p.Tau)
	expArg := (p.Sigma*p.Sigma)/(2*p.Tau*p.Tau) - (t-p.Retention)/p.Tau
	// erfc via math.Erfc; guard the exp overflow by combining logs.
	logVal := math.Log(pre) + expArg + logErfc(z)
	if logVal > 700 {
		return math.Inf(1)
	}
	return math.Exp(logVal)
}

// logErfc returns log(erfc(z)) stably for large positive z using the
// asymptotic expansion erfc(z) ≈ exp(−z²)/(z√π).
func logErfc(z float64) float64 {
	if z < 10 {
		v := math.Erfc(z)
		if v <= 0 {
			return math.Inf(-1)
		}
		return math.Log(v)
	}
	return -z*z - math.Log(z*math.Sqrt(math.Pi))
}

// Rates returns the per-analyte ion currents (charges/s) at time t.  With no
// elution programmed, rates are constant shares of TotalRate.  With elution,
// each analyte's share is scaled by its own EMG amplitude normalized to its
// peak apex, so an analyte at its apex delivers its full share.
func (s *ESISource) Rates(t float64) []float64 {
	total := s.Mixture.TotalAbundance()
	rates := make([]float64, len(s.Mixture.Analytes))
	if total == 0 {
		return rates
	}
	for i, a := range s.Mixture.Analytes {
		share := s.TotalRate * a.Abundance / total
		if s.Elution != nil {
			if pk, ok := s.Elution[i]; ok {
				apex := pk.Amplitude(pk.Retention)
				if apex > 0 {
					share *= pk.Amplitude(t) / apex
				} else {
					share = 0
				}
			}
		}
		rates[i] = share
	}
	return rates
}

// TotalRateAt sums the per-analyte currents at time t.
func (s *ESISource) TotalRateAt(t float64) float64 {
	var sum float64
	for _, r := range s.Rates(t) {
		sum += r
	}
	return sum
}
