// tof.go models the orthogonal-acceleration time-of-flight mass analyzer:
// m/z to flight-time conversion, the m/z-dependent duty cycle of orthogonal
// extraction, finite resolving power, and the mapping of spectra onto the
// digitizer's m/z-binned axis.
package instrument

import (
	"fmt"
	"math"
)

// TOF is the orthogonal-acceleration time-of-flight analyzer.
type TOF struct {
	// FlightLengthM is the effective (reflectron-folded) flight path.
	FlightLengthM float64
	// AccelVoltage is the extraction acceleration potential, V.
	AccelVoltage float64
	// ResolvingPower is m/Δm (FWHM) of the analyzer.
	ResolvingPower float64
	// ExtractionPeriodS is the time between orthogonal extraction pulses;
	// its inverse is the TOF spectral rate (~10 kHz typical).
	ExtractionPeriodS float64
	// MinMZ and MaxMZ bound the recorded spectrum.
	MinMZ, MaxMZ float64
	// Bins is the number of m/z bins in the recorded spectrum.
	Bins int
}

// DefaultTOF returns the reference analyzer: 1.2 m effective path, 7 kV,
// resolving power 4000, 10 kHz extraction, m/z 200–2500 in 2048 bins.
func DefaultTOF() TOF {
	return TOF{
		FlightLengthM:     1.2,
		AccelVoltage:      7000,
		ResolvingPower:    4000,
		ExtractionPeriodS: 1e-4,
		MinMZ:             200,
		MaxMZ:             2500,
		Bins:              2048,
	}
}

// Validate reports unusable analyzer parameters.
func (t TOF) Validate() error {
	if t.FlightLengthM <= 0 {
		return fmt.Errorf("instrument: TOF flight length %g must be positive", t.FlightLengthM)
	}
	if t.AccelVoltage <= 0 {
		return fmt.Errorf("instrument: TOF acceleration %g must be positive", t.AccelVoltage)
	}
	if t.ResolvingPower <= 0 {
		return fmt.Errorf("instrument: TOF resolving power %g must be positive", t.ResolvingPower)
	}
	if t.ExtractionPeriodS <= 0 {
		return fmt.Errorf("instrument: TOF extraction period %g must be positive", t.ExtractionPeriodS)
	}
	if t.MinMZ <= 0 || t.MaxMZ <= t.MinMZ {
		return fmt.Errorf("instrument: TOF m/z range (%g, %g) invalid", t.MinMZ, t.MaxMZ)
	}
	if t.Bins <= 0 {
		return fmt.Errorf("instrument: TOF bins %d must be positive", t.Bins)
	}
	return nil
}

// FlightTime returns the flight time (s) for an ion of the given m/z:
// t = L·sqrt(m/(2·z·e·V)), evaluated in SI from m/z in Th.
func (t TOF) FlightTime(mz float64) (float64, error) {
	if mz <= 0 {
		return 0, fmt.Errorf("instrument: m/z %g must be positive", mz)
	}
	const daPerCharge = 1.66053906660e-27 / 1.602176634e-19 // kg/C per Th
	return t.FlightLengthM * math.Sqrt(mz*daPerCharge/(2*t.AccelVoltage)), nil
}

// DutyCycle returns the orthogonal-extraction duty cycle for the given m/z:
// the fraction of the continuous beam sampled per extraction, ∝ sqrt(m/z),
// normalized so the heaviest recorded ion is sampled at the geometric
// maximum (~25 % typical for oa-TOF).
func (t TOF) DutyCycle(mz float64) float64 {
	if mz <= t.MinMZ {
		mz = t.MinMZ
	}
	if mz > t.MaxMZ {
		mz = t.MaxMZ
	}
	const maxDuty = 0.25
	return maxDuty * math.Sqrt(mz/t.MaxMZ)
}

// MZSigma returns the Gaussian σ of a peak at the given m/z implied by the
// analyzer's resolving power (R = m/Δm_FWHM).
func (t TOF) MZSigma(mz float64) float64 {
	fwhm := mz / t.ResolvingPower
	return fwhm / (2 * math.Sqrt(2*math.Ln2))
}

// BinWidth returns the m/z width of one spectral bin.
func (t TOF) BinWidth() float64 {
	return (t.MaxMZ - t.MinMZ) / float64(t.Bins)
}

// BinOf returns the spectral bin index containing m/z, or -1 if out of
// range.
func (t TOF) BinOf(mz float64) int {
	if mz < t.MinMZ || mz >= t.MaxMZ {
		return -1
	}
	b := int((mz - t.MinMZ) / t.BinWidth())
	if b >= t.Bins {
		b = t.Bins - 1
	}
	return b
}

// BinCenter returns the m/z at the centre of bin b.
func (t TOF) BinCenter(b int) float64 {
	return t.MinMZ + (float64(b)+0.5)*t.BinWidth()
}

// Spread distributes unit intensity of a peak centred at mz across spectral
// bins as a Gaussian with the analyzer's σ, returning bin indices and
// weights (weights sum to the in-range fraction of the peak).  Peaks
// narrower than a bin collapse onto a single bin.
func (t TOF) Spread(mz float64) (bins []int, weights []float64) {
	sigma := t.MZSigma(mz)
	bw := t.BinWidth()
	if sigma < bw/2 {
		if b := t.BinOf(mz); b >= 0 {
			return []int{b}, []float64{1}
		}
		return nil, nil
	}
	lo := t.BinOf(mz - 4*sigma)
	hi := t.BinOf(mz + 4*sigma)
	if lo < 0 {
		lo = 0
	}
	if hi < 0 {
		if mz+4*sigma >= t.MaxMZ {
			hi = t.Bins - 1
		} else {
			return nil, nil
		}
	}
	for b := lo; b <= hi; b++ {
		c := t.BinCenter(b)
		d := (c - mz) / sigma
		w := math.Exp(-d*d/2) * bw / (sigma * math.Sqrt(2*math.Pi))
		if w > 1e-12 {
			bins = append(bins, b)
			weights = append(weights, w)
		}
	}
	return bins, weights
}

// ExtractionsPer returns how many TOF extractions occur in an interval.
func (t TOF) ExtractionsPer(interval float64) float64 {
	return interval / t.ExtractionPeriodS
}
