// correlate.go: precursor–fragment assignment by drift-profile correlation.
// In multiplexed CID (Clowers et al., IJMS 2010) precursors dissociate
// after the mobility separation, so every fragment inherits its precursor's
// drift-time profile; correlating deconvolved drift profiles assigns
// fragments to precursors without any additional isolation step.
package peaks

import (
	"fmt"
	"math"

	"repro/internal/instrument"
)

// Pearson returns the Pearson correlation coefficient of two equal-length
// profiles, in [−1, 1]; 0 when either profile is constant.
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("peaks: correlate length mismatch %d vs %d", len(a), len(b))
	}
	n := float64(len(a))
	if n == 0 {
		return 0, fmt.Errorf("peaks: empty profiles")
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(va*vb), nil
}

// FragmentQuery is one theoretical fragment to test against a precursor.
type FragmentQuery struct {
	Name string
	MZ   float64
}

// FragmentMatch is a fragment whose drift profile tracks the precursor's.
type FragmentMatch struct {
	Name        string
	MZ          float64
	Correlation float64
	SNR         float64
}

// AssignFragments tests each query fragment of a precursor against a
// deconvolved frame: the fragment matches when its m/z column's drift
// profile correlates with the precursor's above minCorr and carries a peak
// of SNR ≥ minSNR.  Returns matches sorted as queried.
func AssignFragments(f *instrument.Frame, tof instrument.TOF, precursorMZ float64, queries []FragmentQuery, minCorr, minSNR float64) ([]FragmentMatch, error) {
	if f == nil {
		return nil, fmt.Errorf("peaks: nil frame")
	}
	if minCorr < -1 || minCorr > 1 {
		return nil, fmt.Errorf("peaks: correlation threshold %g out of [-1,1]", minCorr)
	}
	if tof.Bins != f.TOFBins {
		return nil, fmt.Errorf("peaks: TOF bins %d != frame %d", tof.Bins, f.TOFBins)
	}
	pCol := tof.BinOf(precursorMZ)
	if pCol < 0 {
		return nil, fmt.Errorf("peaks: precursor m/z %g outside recorded range", precursorMZ)
	}
	pProfile := f.DriftVector(pCol)
	var out []FragmentMatch
	for _, q := range queries {
		col := tof.BinOf(q.MZ)
		if col < 0 || col == pCol {
			continue
		}
		prof := f.DriftVector(col)
		corr, err := Pearson(pProfile, prof)
		if err != nil {
			return nil, err
		}
		if corr < minCorr {
			continue
		}
		noise := NoiseMAD(prof)
		if noise <= 0 {
			noise = 1e-12
		}
		max := 0.0
		for _, v := range prof {
			if v > max {
				max = v
			}
		}
		snr := max / noise
		if snr < minSNR {
			continue
		}
		out = append(out, FragmentMatch{Name: q.Name, MZ: q.MZ, Correlation: corr, SNR: snr})
	}
	return out, nil
}
