package peaks

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/instrument"
)

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if r, _ := Pearson(a, a); math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation %g", r)
	}
	neg := []float64{4, 3, 2, 1}
	if r, _ := Pearson(a, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("anticorrelation %g", r)
	}
	flat := []float64{5, 5, 5, 5}
	if r, _ := Pearson(a, flat); r != 0 {
		t.Errorf("constant profile correlation %g", r)
	}
	if _, err := Pearson(a, a[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("empty profiles accepted")
	}
	// Scale and offset invariance.
	scaled := make([]float64, len(a))
	for i, v := range a {
		scaled[i] = 3*v + 7
	}
	if r, _ := Pearson(a, scaled); math.Abs(r-1) > 1e-12 {
		t.Errorf("affine-transformed correlation %g", r)
	}
}

// buildCIDFrame: a precursor peak at drift 20 with two true fragments
// sharing its profile, plus an unrelated species at drift 45.
func buildCIDFrame(t *testing.T, tof instrument.TOF) (*instrument.Frame, float64, []FragmentQuery) {
	t.Helper()
	f := instrument.NewFrame(64, tof.Bins)
	rng := rand.New(rand.NewSource(81))
	gauss := func(col int, centre float64, height float64) {
		for d := 0; d < 64; d++ {
			x := (float64(d) - centre) / 1.5
			f.Add(d, col, height*math.Exp(-x*x/2))
		}
	}
	precMZ := tof.BinCenter(100)
	frag1MZ := tof.BinCenter(40)
	frag2MZ := tof.BinCenter(60)
	otherMZ := tof.BinCenter(140)
	gauss(100, 20, 300)
	gauss(40, 20, 150)
	gauss(60, 20, 90)
	gauss(140, 45, 250)
	for i := range f.Data {
		f.Data[i] += math.Abs(rng.NormFloat64()) * 0.5
	}
	queries := []FragmentQuery{
		{Name: "y4", MZ: frag1MZ},
		{Name: "b3", MZ: frag2MZ},
		{Name: "decoy", MZ: otherMZ},                // wrong drift profile
		{Name: "absent", MZ: tof.BinCenter(200)},    // nothing there
		{Name: "out-of-range", MZ: tof.MaxMZ + 100}, // skipped
	}
	return f, precMZ, queries
}

func TestAssignFragments(t *testing.T) {
	tof := instrument.DefaultTOF()
	tof.Bins = 256
	f, precMZ, queries := buildCIDFrame(t, tof)
	matches, err := AssignFragments(f, tof, precMZ, queries, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]FragmentMatch{}
	for _, m := range matches {
		got[m.Name] = m
	}
	if _, ok := got["y4"]; !ok {
		t.Error("true fragment y4 not assigned")
	}
	if _, ok := got["b3"]; !ok {
		t.Error("true fragment b3 not assigned")
	}
	if _, ok := got["decoy"]; ok {
		t.Error("wrong-drift species assigned as fragment")
	}
	if _, ok := got["absent"]; ok {
		t.Error("empty column assigned as fragment")
	}
	for _, m := range matches {
		if m.Correlation < 0.7 || m.SNR < 5 {
			t.Errorf("match %s below thresholds: %+v", m.Name, m)
		}
	}
}

func TestAssignFragmentsErrors(t *testing.T) {
	tof := instrument.DefaultTOF()
	tof.Bins = 256
	f, precMZ, queries := buildCIDFrame(t, tof)
	if _, err := AssignFragments(nil, tof, precMZ, queries, 0.7, 5); err == nil {
		t.Error("nil frame accepted")
	}
	if _, err := AssignFragments(f, tof, precMZ, queries, 2, 5); err == nil {
		t.Error("bad correlation threshold accepted")
	}
	if _, err := AssignFragments(f, tof, tof.MaxMZ+1, queries, 0.7, 5); err == nil {
		t.Error("out-of-range precursor accepted")
	}
	small := instrument.DefaultTOF()
	if _, err := AssignFragments(f, small, precMZ, queries, 0.7, 5); err == nil {
		t.Error("geometry mismatch accepted")
	}
}
