// features.go finds two-dimensional features in deconvolved frames (peaks
// coincident in drift time and m/z) and matches them against theoretical
// peptide ions with decoy-based FDR control.
package peaks

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/chem"
	"repro/internal/instrument"
)

// Feature is a 2-D detection: an ion species at a drift time and m/z.
type Feature struct {
	DriftBin      int     // apex drift bin
	DriftCentroid float64 // sub-bin drift apex
	MZBin         int     // apex m/z bin
	MZ            float64 // m/z of the apex bin centre
	Intensity     float64 // summed intensity of the member peaks
	SNR           float64 // best member SNR
	Columns       int     // number of m/z columns contributing
}

// FindFeatures scans every m/z column of a deconvolved frame for drift
// peaks with SNR ≥ minSNR and merges detections in adjacent m/z columns
// whose drift apexes agree within driftTol bins.
func FindFeatures(f *instrument.Frame, tof instrument.TOF, minSNR float64, driftTol int) ([]Feature, error) {
	if f == nil {
		return nil, fmt.Errorf("peaks: nil frame")
	}
	if driftTol < 0 {
		return nil, fmt.Errorf("peaks: negative drift tolerance")
	}
	if tof.Bins != f.TOFBins {
		return nil, fmt.Errorf("peaks: TOF bins %d != frame %d", tof.Bins, f.TOFBins)
	}
	type colPeak struct {
		col int
		p   Peak
	}
	var all []colPeak
	for c := 0; c < f.TOFBins; c++ {
		ps, err := Detect(f.DriftVector(c), minSNR)
		if err != nil {
			return nil, err
		}
		for _, p := range ps {
			all = append(all, colPeak{col: c, p: p})
		}
	}
	// Merge: sort by column then apex and greedily cluster contiguous
	// columns with close drift apexes.
	sort.Slice(all, func(i, j int) bool {
		if all[i].col != all[j].col {
			return all[i].col < all[j].col
		}
		return all[i].p.Index < all[j].p.Index
	})
	used := make([]bool, len(all))
	var feats []Feature
	for i := range all {
		if used[i] {
			continue
		}
		used[i] = true
		members := []colPeak{all[i]}
		lastCol := all[i].col
		apex := all[i].p.Index
		for j := i + 1; j < len(all); j++ {
			if used[j] {
				continue
			}
			if all[j].col > lastCol+1 {
				break
			}
			if all[j].col == lastCol {
				continue
			}
			if absInt(all[j].p.Index-apex) <= driftTol {
				used[j] = true
				members = append(members, all[j])
				lastCol = all[j].col
				apex = all[j].p.Index
			}
		}
		// Apex member: the most intense one.
		best := members[0]
		var intensity float64
		for _, m := range members {
			intensity += m.p.Area
			if m.p.Height > best.p.Height {
				best = m
			}
		}
		feats = append(feats, Feature{
			DriftBin:      best.p.Index,
			DriftCentroid: best.p.Centroid,
			MZBin:         best.col,
			MZ:            tof.BinCenter(best.col),
			Intensity:     intensity,
			SNR:           best.p.SNR,
			Columns:       len(members),
		})
	}
	sort.Slice(feats, func(i, j int) bool { return feats[i].Intensity > feats[j].Intensity })
	return feats, nil
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Candidate is one theoretical ion to match against.
type Candidate struct {
	Name    string
	Peptide chem.Peptide
	Z       int
	MZ      float64
	IsDecoy bool
}

// DecoyMassShiftDa is the neutral-mass offset applied to decoy candidates.
// Reversed-sequence decoys keep the target's exact composition and mass, so
// mass-only matching cannot see them; the standard remedy for accurate-mass
// identification is a mass-shifted decoy database.  The offset avoids
// integer multiples of the 1.00335 Da isotope spacing.
const DecoyMassShiftDa = 7.5

// CandidatesFromPeptides expands peptides into charge-state candidates and,
// when withDecoys is set, adds a mass-shifted decoy for each (reversed
// sequence, neutral mass offset by DecoyMassShiftDa).
func CandidatesFromPeptides(named map[string]chem.Peptide, withDecoys bool) ([]Candidate, error) {
	var out []Candidate
	for name, p := range named {
		for _, cs := range p.ChargeStates() {
			if cs.Fraction < 0.02 {
				continue
			}
			mz, err := p.MZ(cs.Z)
			if err != nil {
				return nil, err
			}
			out = append(out, Candidate{Name: name, Peptide: p, Z: cs.Z, MZ: mz})
			if withDecoys {
				d := p.Decoy()
				dmz, err := d.MZ(cs.Z)
				if err != nil {
					return nil, err
				}
				dmz += DecoyMassShiftDa / float64(cs.Z)
				out = append(out, Candidate{Name: "decoy-" + name, Peptide: d, Z: cs.Z, MZ: dmz, IsDecoy: true})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MZ < out[j].MZ })
	return out, nil
}

// Match is a feature assigned to a candidate.
type Match struct {
	Feature   Feature
	Candidate Candidate
	PPMError  float64
}

// MatchFeatures assigns each feature to the closest candidate within
// tolPPM.  A feature matching nothing is dropped; each candidate is matched
// at most once (most intense feature wins).
func MatchFeatures(feats []Feature, cands []Candidate, tolPPM float64) ([]Match, error) {
	if tolPPM <= 0 {
		return nil, fmt.Errorf("peaks: tolerance %g ppm must be positive", tolPPM)
	}
	taken := make([]bool, len(cands))
	var out []Match
	for _, ft := range feats { // features pre-sorted by intensity
		bestIdx := -1
		bestPPM := tolPPM
		for ci, c := range cands {
			if taken[ci] {
				continue
			}
			ppm := math.Abs(ft.MZ-c.MZ) / c.MZ * 1e6
			if ppm <= bestPPM {
				bestPPM = ppm
				bestIdx = ci
			}
		}
		if bestIdx >= 0 {
			taken[bestIdx] = true
			out = append(out, Match{Feature: ft, Candidate: cands[bestIdx], PPMError: bestPPM})
		}
	}
	return out, nil
}

// FDR estimates the false-discovery rate of a match set from its decoy
// content: FDR ≈ decoys / targets.
func FDR(matches []Match) float64 {
	var decoys, targets int
	for _, m := range matches {
		if m.Candidate.IsDecoy {
			decoys++
		} else {
			targets++
		}
	}
	if targets == 0 {
		if decoys == 0 {
			return 0
		}
		return 1
	}
	return float64(decoys) / float64(targets)
}

// UniqueTargets counts distinct non-decoy peptide sequences in a match set.
func UniqueTargets(matches []Match) int {
	seen := map[string]bool{}
	for _, m := range matches {
		if !m.Candidate.IsDecoy {
			seen[m.Candidate.Peptide.Sequence] = true
		}
	}
	return len(seen)
}
