// Package peaks post-processes deconvolved frames: baseline estimation,
// Savitzky–Golay smoothing, noise estimation, peak picking with centroiding,
// two-dimensional (drift time × m/z) feature finding, and peptide
// identification with decoy-based false-discovery-rate estimation.
package peaks

import (
	"fmt"
	"math"
	"sort"
)

// Baseline estimates a slowly varying baseline as a running lower percentile
// over a window of the given half-width.  percentile is in (0, 1), e.g. 0.2.
func Baseline(x []float64, halfWindow int, percentile float64) ([]float64, error) {
	if halfWindow < 1 {
		return nil, fmt.Errorf("peaks: half window %d must be >= 1", halfWindow)
	}
	if percentile <= 0 || percentile >= 1 {
		return nil, fmt.Errorf("peaks: percentile %g must be in (0,1)", percentile)
	}
	n := len(x)
	out := make([]float64, n)
	buf := make([]float64, 0, 2*halfWindow+1)
	for i := 0; i < n; i++ {
		lo, hi := i-halfWindow, i+halfWindow
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		buf = append(buf[:0], x[lo:hi+1]...)
		sort.Float64s(buf)
		idx := int(percentile * float64(len(buf)-1))
		out[i] = buf[idx]
	}
	return out, nil
}

// Subtract returns x − b clipped at zero.
func Subtract(x, b []float64) ([]float64, error) {
	if len(x) != len(b) {
		return nil, fmt.Errorf("peaks: subtract length mismatch %d vs %d", len(x), len(b))
	}
	out := make([]float64, len(x))
	for i := range x {
		v := x[i] - b[i]
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out, nil
}

// SavitzkyGolay returns the smoothing coefficients for a window of
// 2·halfWindow+1 points and the given polynomial degree, computed by
// solving the least-squares normal equations.  Convolving a signal with the
// coefficients evaluates the fitted polynomial at the window centre.
func SavitzkyGolay(halfWindow, degree int) ([]float64, error) {
	if halfWindow < 1 {
		return nil, fmt.Errorf("peaks: half window %d must be >= 1", halfWindow)
	}
	w := 2*halfWindow + 1
	if degree < 0 || degree >= w {
		return nil, fmt.Errorf("peaks: degree %d must be in [0, %d)", degree, w)
	}
	// Build the Vandermonde normal matrix A^T A (size (d+1)^2) and solve
	// A^T A c = A^T e_center per output coefficient.  Equivalently, the
	// smoothing kernel is row 0 of (A^T A)^-1 A^T.
	d := degree + 1
	ata := make([][]float64, d)
	for i := range ata {
		ata[i] = make([]float64, d)
	}
	for t := -halfWindow; t <= halfWindow; t++ {
		pow := make([]float64, d)
		pow[0] = 1
		for p := 1; p < d; p++ {
			pow[p] = pow[p-1] * float64(t)
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				ata[i][j] += pow[i] * pow[j]
			}
		}
	}
	inv, err := invertMatrix(ata)
	if err != nil {
		return nil, fmt.Errorf("peaks: singular Savitzky-Golay system: %w", err)
	}
	coeff := make([]float64, w)
	for k := -halfWindow; k <= halfWindow; k++ {
		pow := 1.0
		var c float64
		for j := 0; j < d; j++ {
			c += inv[0][j] * pow
			pow *= float64(k)
		}
		coeff[k+halfWindow] = c
	}
	return coeff, nil
}

// invertMatrix inverts a small dense symmetric matrix by Gauss-Jordan with
// partial pivoting.
func invertMatrix(a [][]float64) ([][]float64, error) {
	n := len(a)
	aug := make([][]float64, n)
	for i := range aug {
		aug[i] = make([]float64, 2*n)
		copy(aug[i], a[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[piv][col]) {
				piv = r
			}
		}
		if math.Abs(aug[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("pivot %d vanishes", col)
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		p := aug[col][col]
		for j := range aug[col] {
			aug[col][j] /= p
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for j := range aug[r] {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = aug[i][n:]
	}
	return inv, nil
}

// Smooth convolves x with the kernel, reflecting at the edges.
func Smooth(x, kernel []float64) ([]float64, error) {
	if len(kernel) == 0 || len(kernel)%2 == 0 {
		return nil, fmt.Errorf("peaks: kernel length %d must be odd", len(kernel))
	}
	h := len(kernel) / 2
	n := len(x)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for k := -h; k <= h; k++ {
			j := i + k
			if j < 0 {
				j = -j
			}
			if j >= n {
				j = 2*(n-1) - j
			}
			if j < 0 {
				j = 0
			}
			acc += x[j] * kernel[k+h]
		}
		out[i] = acc
	}
	return out, nil
}

// NoiseMAD estimates the noise standard deviation of a signal as
// 1.4826 × the median absolute deviation from the median — robust against
// the sparse peaks sitting on top of the noise.
func NoiseMAD(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	tmp := make([]float64, n)
	copy(tmp, x)
	sort.Float64s(tmp)
	med := tmp[n/2]
	for i, v := range x {
		tmp[i] = math.Abs(v - med)
	}
	sort.Float64s(tmp)
	return 1.4826 * tmp[n/2]
}

// Peak is one detected peak in a 1-D signal.
type Peak struct {
	Index    int     // bin of the apex
	Centroid float64 // sub-bin apex position (parabolic interpolation)
	Height   float64 // apex height above baseline
	Area     float64 // integrated intensity between the flanking minima
	SNR      float64 // height over the MAD noise estimate
	LeftBin  int     // left integration bound
	RightBin int     // right integration bound
}

// Detect finds local maxima with SNR ≥ minSNR in the signal.  Peak bounds
// extend to the flanking local minima; the centroid refines the apex by
// three-point parabolic interpolation.  To suppress noise ripples riding on
// the shoulders of real peaks, an apex must also be prominent: it must rise
// at least 3× the noise above the higher of its two flanking minima.
func Detect(x []float64, minSNR float64) ([]Peak, error) {
	if minSNR <= 0 {
		return nil, fmt.Errorf("peaks: min SNR %g must be positive", minSNR)
	}
	n := len(x)
	if n < 3 {
		return nil, nil
	}
	noise := NoiseMAD(x)
	if noise <= 0 {
		noise = 1e-12
	}
	var out []Peak
	for i := 1; i < n-1; i++ {
		if !(x[i] > x[i-1] && x[i] >= x[i+1]) {
			continue
		}
		snr := x[i] / noise
		if snr < minSNR {
			continue
		}
		// Bounds: walk downhill to local minima.
		l := i
		for l > 0 && x[l-1] < x[l] {
			l--
		}
		r := i
		for r < n-1 && x[r+1] < x[r] {
			r++
		}
		valley := x[l]
		if x[r] > valley {
			valley = x[r]
		}
		if x[i]-valley < 3*noise {
			continue // shoulder ripple, not a distinct peak
		}
		var area float64
		for j := l; j <= r; j++ {
			area += x[j]
		}
		out = append(out, Peak{
			Index:    i,
			Centroid: parabolicApex(x, i),
			Height:   x[i],
			Area:     area,
			SNR:      snr,
			LeftBin:  l,
			RightBin: r,
		})
	}
	return out, nil
}

// parabolicApex refines an apex position with a 3-point parabola fit.
func parabolicApex(x []float64, i int) float64 {
	if i <= 0 || i >= len(x)-1 {
		return float64(i)
	}
	a, b, c := x[i-1], x[i], x[i+1]
	den := a - 2*b + c
	if den == 0 {
		return float64(i)
	}
	d := 0.5 * (a - c) / den
	if d > 0.5 {
		d = 0.5
	}
	if d < -0.5 {
		d = -0.5
	}
	return float64(i) + d
}
