package peaks

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chem"
	"repro/internal/instrument"
)

func gaussianSignal(n int, centre, sigma, height, noise float64, rng *rand.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		d := (float64(i) - centre) / sigma
		x[i] = height * math.Exp(-d*d/2)
		if noise > 0 {
			x[i] += rng.NormFloat64() * noise
		}
	}
	return x
}

func TestBaseline(t *testing.T) {
	// Flat offset plus one sharp peak: baseline should track the offset.
	x := make([]float64, 100)
	for i := range x {
		x[i] = 10
	}
	x[50] = 1000
	b, err := Baseline(x, 10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if math.Abs(v-10) > 1e-9 {
			t.Fatalf("baseline[%d] = %g, want 10", i, v)
		}
	}
	sub, err := Subtract(x, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sub[50]-990) > 1e-9 || sub[0] != 0 {
		t.Error("subtract wrong")
	}
	if _, err := Baseline(x, 0, 0.2); err == nil {
		t.Error("zero window")
	}
	if _, err := Baseline(x, 5, 0); err == nil {
		t.Error("bad percentile")
	}
	if _, err := Subtract(x, x[:10]); err == nil {
		t.Error("length mismatch")
	}
}

func TestSavitzkyGolayProperties(t *testing.T) {
	coeff, err := SavitzkyGolay(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(coeff) != 7 {
		t.Fatalf("kernel length %d", len(coeff))
	}
	// Coefficients sum to 1 (preserve constants).
	var sum float64
	for _, c := range coeff {
		sum += c
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("kernel sums to %g", sum)
	}
	// Symmetric.
	for i := 0; i < len(coeff)/2; i++ {
		if math.Abs(coeff[i]-coeff[len(coeff)-1-i]) > 1e-9 {
			t.Error("kernel not symmetric")
		}
	}
	// A degree-2 SG filter reproduces quadratics exactly.
	quad := make([]float64, 30)
	for i := range quad {
		v := float64(i) - 15
		quad[i] = 3 + 2*v + 0.5*v*v
	}
	sm, err := Smooth(quad, coeff)
	if err != nil {
		t.Fatal(err)
	}
	for i := 7; i < len(quad)-7; i++ { // interior (edges reflect)
		if math.Abs(sm[i]-quad[i]) > 1e-6 {
			t.Fatalf("SG filter distorted a quadratic at %d: %g vs %g", i, sm[i], quad[i])
		}
	}
	// Known classic kernel: window 5, degree 2 → (-3, 12, 17, 12, -3)/35.
	c5, _ := SavitzkyGolay(2, 2)
	want := []float64{-3.0 / 35, 12.0 / 35, 17.0 / 35, 12.0 / 35, -3.0 / 35}
	for i := range want {
		if math.Abs(c5[i]-want[i]) > 1e-9 {
			t.Errorf("classic kernel[%d] = %g, want %g", i, c5[i], want[i])
		}
	}
}

func TestSavitzkyGolayErrors(t *testing.T) {
	if _, err := SavitzkyGolay(0, 2); err == nil {
		t.Error("zero window")
	}
	if _, err := SavitzkyGolay(2, -1); err == nil {
		t.Error("negative degree")
	}
	if _, err := SavitzkyGolay(1, 3); err == nil {
		t.Error("degree >= window")
	}
	if _, err := Smooth([]float64{1, 2}, []float64{1, 1}); err == nil {
		t.Error("even kernel")
	}
	if _, err := Smooth([]float64{1, 2}, nil); err == nil {
		t.Error("empty kernel")
	}
}

func TestSmoothReducesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	x := gaussianSignal(200, 100, 8, 100, 5, rng)
	coeff, _ := SavitzkyGolay(4, 2)
	sm, _ := Smooth(x, coeff)
	// Residual noise after smoothing should drop.
	rawNoise := NoiseMAD(x)
	smNoise := NoiseMAD(sm)
	if smNoise >= rawNoise {
		t.Errorf("smoothing did not reduce noise: %g -> %g", rawNoise, smNoise)
	}
}

func TestNoiseMAD(t *testing.T) {
	if NoiseMAD(nil) != 0 {
		t.Error("empty signal noise should be 0")
	}
	rng := rand.New(rand.NewSource(71))
	x := make([]float64, 10000)
	for i := range x {
		x[i] = rng.NormFloat64() * 3
	}
	got := NoiseMAD(x)
	if math.Abs(got-3) > 0.15 {
		t.Errorf("MAD noise %g, want ~3", got)
	}
	// Robust to sparse large peaks.
	for i := 0; i < 100; i++ {
		x[i*100] = 1e6
	}
	got = NoiseMAD(x)
	if math.Abs(got-3) > 0.3 {
		t.Errorf("MAD noise with outliers %g, want ~3", got)
	}
}

func TestDetectSinglePeak(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	x := gaussianSignal(300, 150.3, 5, 500, 2, rng)
	ps, err := Detect(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 {
		t.Fatalf("detected %d peaks, want 1", len(ps))
	}
	p := ps[0]
	if absInt(p.Index-150) > 1 {
		t.Errorf("apex at %d, want ~150", p.Index)
	}
	if math.Abs(p.Centroid-150.3) > 0.5 {
		t.Errorf("centroid %g, want ~150.3", p.Centroid)
	}
	if p.SNR < 5 {
		t.Errorf("SNR %g below threshold", p.SNR)
	}
	if p.Area <= p.Height {
		t.Error("area should integrate multiple bins")
	}
	if p.LeftBin >= p.Index || p.RightBin <= p.Index {
		t.Error("peak bounds wrong")
	}
}

func TestDetectMultiplePeaks(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	x := gaussianSignal(400, 100, 4, 300, 1, rng)
	y := gaussianSignal(400, 250, 4, 600, 0, nil)
	for i := range x {
		x[i] += y[i]
	}
	ps, _ := Detect(x, 8)
	if len(ps) != 2 {
		t.Fatalf("detected %d peaks, want 2", len(ps))
	}
	if absInt(ps[0].Index-100) > 1 || absInt(ps[1].Index-250) > 1 {
		t.Errorf("apexes %d, %d", ps[0].Index, ps[1].Index)
	}
}

func TestDetectRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ps, _ := Detect(x, 8)
	if len(ps) != 0 {
		t.Errorf("detected %d peaks in pure noise at SNR 8", len(ps))
	}
	if _, err := Detect(x, 0); err == nil {
		t.Error("zero SNR threshold should fail")
	}
	short, _ := Detect([]float64{1, 2}, 3)
	if short != nil {
		t.Error("too-short signal should yield nil")
	}
}

func buildFeatureFrame(t *testing.T, tof instrument.TOF) (*instrument.Frame, int, int) {
	t.Helper()
	f := instrument.NewFrame(64, tof.Bins)
	// A feature: gaussian in drift at bin 30, spread over 3 m/z columns
	// around column 20.
	for dc := -2; dc <= 2; dc++ {
		for c := 19; c <= 21; c++ {
			w := math.Exp(-float64(dc*dc) / 2)
			colW := 1.0
			if c != 20 {
				colW = 0.5
			}
			f.Add(30+dc, c, 200*w*colW)
		}
	}
	// Mild uniform noise floor.
	rng := rand.New(rand.NewSource(75))
	for i := range f.Data {
		f.Data[i] += math.Abs(rng.NormFloat64())
	}
	return f, 30, 20
}

func TestFindFeatures(t *testing.T) {
	tof := instrument.DefaultTOF()
	tof.Bins = 64
	f, wantDrift, wantCol := buildFeatureFrame(t, tof)
	feats, err := FindFeatures(f, tof, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) == 0 {
		t.Fatal("no features found")
	}
	top := feats[0]
	if absInt(top.DriftBin-wantDrift) > 1 {
		t.Errorf("feature drift bin %d, want ~%d", top.DriftBin, wantDrift)
	}
	if absInt(top.MZBin-wantCol) > 1 {
		t.Errorf("feature m/z bin %d, want ~%d", top.MZBin, wantCol)
	}
	if top.Columns < 2 {
		t.Errorf("feature spans %d columns, want >= 2 (merged)", top.Columns)
	}
	if math.Abs(top.MZ-tof.BinCenter(top.MZBin)) > 1e-9 {
		t.Error("feature m/z should be the bin centre")
	}
}

func TestFindFeaturesErrors(t *testing.T) {
	tof := instrument.DefaultTOF()
	if _, err := FindFeatures(nil, tof, 5, 1); err == nil {
		t.Error("nil frame")
	}
	f := instrument.NewFrame(8, 8)
	if _, err := FindFeatures(f, tof, 5, -1); err == nil {
		t.Error("negative tolerance")
	}
	if _, err := FindFeatures(f, tof, 5, 1); err == nil {
		t.Error("geometry mismatch should fail")
	}
}

func TestCandidatesAndMatching(t *testing.T) {
	p1, _ := chem.NewPeptide("LVNELTEFAK")
	p2, _ := chem.NewPeptide("HLVDEPQNLIK")
	cands, err := CandidatesFromPeptides(map[string]chem.Peptide{"a": p1, "b": p2}, true)
	if err != nil {
		t.Fatal(err)
	}
	var targets, decoys int
	for _, c := range cands {
		if c.IsDecoy {
			decoys++
		} else {
			targets++
		}
	}
	if targets == 0 || decoys == 0 {
		t.Fatalf("targets %d decoys %d", targets, decoys)
	}
	// Sorted by m/z.
	for i := 1; i < len(cands); i++ {
		if cands[i].MZ < cands[i-1].MZ {
			t.Fatal("candidates not sorted")
		}
	}
	// Build a feature exactly at p1 2+ m/z.
	mz, _ := p1.MZ(2)
	feats := []Feature{{MZ: mz, Intensity: 100, SNR: 20}}
	matches, err := MatchFeatures(feats, cands, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches %d, want 1", len(matches))
	}
	if matches[0].Candidate.Peptide.Sequence != "LVNELTEFAK" || matches[0].Candidate.Z != 2 {
		t.Errorf("matched %s/%d+", matches[0].Candidate.Peptide.Sequence, matches[0].Candidate.Z)
	}
	if matches[0].PPMError > 1 {
		t.Errorf("ppm error %g for exact mass", matches[0].PPMError)
	}
	// A far-off feature matches nothing.
	none, _ := MatchFeatures([]Feature{{MZ: 99999}}, cands, 20)
	if len(none) != 0 {
		t.Error("distant feature should not match")
	}
	if _, err := MatchFeatures(feats, cands, 0); err == nil {
		t.Error("zero tolerance should fail")
	}
}

func TestMatchFeaturesOneCandidatePerFeature(t *testing.T) {
	p1, _ := chem.NewPeptide("LVNELTEFAK")
	mz, _ := p1.MZ(2)
	cands := []Candidate{{Name: "a", Peptide: p1, Z: 2, MZ: mz}}
	feats := []Feature{
		{MZ: mz, Intensity: 100},
		{MZ: mz, Intensity: 50}, // same mass, lower intensity: loses
	}
	matches, _ := MatchFeatures(feats, cands, 20)
	if len(matches) != 1 {
		t.Errorf("candidate matched %d times, want 1", len(matches))
	}
	if matches[0].Feature.Intensity != 100 {
		t.Error("most intense feature should win the candidate")
	}
}

func TestFDR(t *testing.T) {
	p, _ := chem.NewPeptide("LVNELTEFAK")
	mk := func(decoy bool) Match {
		return Match{Candidate: Candidate{Peptide: p, IsDecoy: decoy}}
	}
	if got := FDR(nil); got != 0 {
		t.Errorf("empty FDR %g", got)
	}
	ms := []Match{mk(false), mk(false), mk(false), mk(true)}
	if got := FDR(ms); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("FDR %g, want 1/3", got)
	}
	if got := FDR([]Match{mk(true)}); got != 1 {
		t.Errorf("all-decoy FDR %g, want 1", got)
	}
	if got := UniqueTargets(ms); got != 1 {
		t.Errorf("unique targets %d, want 1", got)
	}
}

func BenchmarkDetect(b *testing.B) {
	rng := rand.New(rand.NewSource(76))
	x := gaussianSignal(2048, 1000, 10, 500, 3, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(x, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: the baseline never exceeds the signal at the chosen percentile's
// guarantee — specifically, subtracting it never yields negative values, and
// the baseline tracks a constant offset exactly.
func TestBaselineProperties(t *testing.T) {
	f := func(seed int64, offsetQ uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		offset := float64(offsetQ)
		x := make([]float64, 120)
		for i := range x {
			x[i] = offset
			if rng.Intn(10) == 0 {
				x[i] += rng.Float64() * 500
			}
		}
		b, err := Baseline(x, 8, 0.2)
		if err != nil {
			return false
		}
		sub, err := Subtract(x, b)
		if err != nil {
			return false
		}
		for i := range sub {
			if sub[i] < 0 {
				return false
			}
		}
		// Where the window saw mostly offset, the baseline equals it.
		matches := 0
		for _, v := range b {
			if math.Abs(v-offset) < 1e-9 {
				matches++
			}
		}
		return matches > len(b)/2
	}
	if err := quickCheck(f, 30); err != nil {
		t.Error(err)
	}
}

// Property: Savitzky-Golay smoothing of any straight line reproduces the
// line exactly in the interior, for every valid window/degree >= 1.
func TestSavitzkyGolayLinearInvariance(t *testing.T) {
	for half := 1; half <= 5; half++ {
		for degree := 1; degree < 2*half+1 && degree <= 4; degree++ {
			coeff, err := SavitzkyGolay(half, degree)
			if err != nil {
				t.Fatal(err)
			}
			line := make([]float64, 40)
			for i := range line {
				line[i] = 2.5*float64(i) - 7
			}
			sm, err := Smooth(line, coeff)
			if err != nil {
				t.Fatal(err)
			}
			for i := half; i < len(line)-half; i++ {
				if math.Abs(sm[i]-line[i]) > 1e-6 {
					t.Fatalf("half=%d degree=%d: line distorted at %d (%g vs %g)",
						half, degree, i, sm[i], line[i])
				}
			}
		}
	}
}

// Property: every detected peak's apex is a true local maximum of the
// signal, and peaks are reported in index order.
func TestDetectInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 200)
		for k := 0; k < 4; k++ {
			c := 20 + rng.Float64()*160
			h := 50 + rng.Float64()*400
			w := 2 + rng.Float64()*4
			for i := range x {
				d := (float64(i) - c) / w
				x[i] += h * math.Exp(-d*d/2)
			}
		}
		for i := range x {
			x[i] += rng.NormFloat64()
		}
		ps, err := Detect(x, 5)
		if err != nil {
			return false
		}
		prev := -1
		for _, p := range ps {
			if p.Index <= prev {
				return false
			}
			prev = p.Index
			if !(x[p.Index] >= x[p.Index-1] && x[p.Index] >= x[p.Index+1]) {
				return false
			}
			if p.LeftBin > p.Index || p.RightBin < p.Index {
				return false
			}
			if p.Centroid < float64(p.Index)-1 || p.Centroid > float64(p.Index)+1 {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f, 40); err != nil {
		t.Error(err)
	}
}

// quickCheck adapts a func(seed) bool (plus optional extra args) to
// testing/quick with a bounded count.
func quickCheck(f interface{}, count int) error {
	return quick.Check(f, &quick.Config{MaxCount: count})
}
