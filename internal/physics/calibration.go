// calibration.go: single-field drift-time calibration.  Measured drift
// times relate linearly to Ω·√μ/z (Mason–Schamp), so a least-squares fit
// through calibrant ions of known cross section converts arrival times of
// unknowns into collision cross sections — the standard post-processing
// step that turns a drift spectrum into structural information.
package physics

import (
	"fmt"
	"math"
)

// CalPoint is one calibrant measurement.
type CalPoint struct {
	DriftTimeS float64 // measured drift time, s
	CCSM2      float64 // known collision cross section, m²
	MassDa     float64 // ion mass, Da
	Z          int     // charge state
}

// Calibration is the fitted linear relation t_d = Slope·X + InterceptS with
// X = Ω·√μ/z the reduced mobility parameter (μ in kg), under fixed gas
// conditions.  InterceptS absorbs mobility-independent transit time (ion
// transfer optics, TOF extraction delay).
type Calibration struct {
	Slope      float64
	InterceptS float64
	GasMassDa  float64
	// RMSRel is the relative RMS residual of the fit over the calibrants.
	RMSRel float64
}

// reducedParam returns X = Ω·√μ/z for an ion in the given gas.
func reducedParam(ccsM2, massDa float64, z int, gasMassDa float64) float64 {
	mIon := massDa * AtomicMassKg
	mGas := gasMassDa * AtomicMassKg
	mu := mIon * mGas / (mIon + mGas)
	return ccsM2 * math.Sqrt(mu) / float64(z)
}

// FitCalibration fits the single-field calibration through ≥2 calibrant
// points measured in the given gas.
func FitCalibration(points []CalPoint, gas Gas) (Calibration, error) {
	if len(points) < 2 {
		return Calibration{}, fmt.Errorf("physics: calibration needs >= 2 points, got %d", len(points))
	}
	var sx, sy, sxx, sxy float64
	for _, p := range points {
		if p.DriftTimeS <= 0 || p.CCSM2 <= 0 || p.MassDa <= 0 || p.Z <= 0 {
			return Calibration{}, fmt.Errorf("physics: invalid calibrant %+v", p)
		}
		x := reducedParam(p.CCSM2, p.MassDa, p.Z, gas.MassDa)
		sx += x
		sy += p.DriftTimeS
		sxx += x * x
		sxy += x * p.DriftTimeS
	}
	n := float64(len(points))
	den := n*sxx - sx*sx
	if den == 0 {
		return Calibration{}, fmt.Errorf("physics: degenerate calibrants (identical reduced parameters)")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	if slope <= 0 {
		return Calibration{}, fmt.Errorf("physics: non-physical calibration slope %g", slope)
	}
	cal := Calibration{Slope: slope, InterceptS: intercept, GasMassDa: gas.MassDa}
	var ss float64
	for _, p := range points {
		pred := cal.DriftTime(p.CCSM2, p.MassDa, p.Z)
		r := (pred - p.DriftTimeS) / p.DriftTimeS
		ss += r * r
	}
	cal.RMSRel = math.Sqrt(ss / n)
	return cal, nil
}

// DriftTime predicts the drift time of an ion with the given cross section.
func (c Calibration) DriftTime(ccsM2, massDa float64, z int) float64 {
	return c.Slope*reducedParam(ccsM2, massDa, z, c.GasMassDa) + c.InterceptS
}

// CCS inverts the calibration: measured drift time → cross section (m²).
func (c Calibration) CCS(driftTimeS, massDa float64, z int) (float64, error) {
	if c.Slope <= 0 {
		return 0, fmt.Errorf("physics: calibration not fitted")
	}
	x := (driftTimeS - c.InterceptS) / c.Slope
	if x <= 0 {
		return 0, fmt.Errorf("physics: drift time %g s below calibration intercept", driftTimeS)
	}
	unit := reducedParam(1, massDa, z, c.GasMassDa)
	return x / unit, nil
}
