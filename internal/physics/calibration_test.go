package physics

import (
	"math"
	"testing"
)

// synthCalPoints generates calibrant drift times from the forward physics
// with an optional fixed transit-time offset.
func synthCalPoints(t *testing.T, c Conditions, length, offset float64) []CalPoint {
	t.Helper()
	defs := []struct {
		ccs  float64
		mass float64
		z    int
	}{
		{250e-20, 800, 1},
		{300e-20, 1100, 2},
		{380e-20, 1500, 2},
		{450e-20, 2000, 3},
		{520e-20, 2600, 3},
	}
	pts := make([]CalPoint, len(defs))
	for i, d := range defs {
		k, err := Mobility(d.mass, d.z, d.ccs, c)
		if err != nil {
			t.Fatal(err)
		}
		td, err := DriftTime(k, length, c)
		if err != nil {
			t.Fatal(err)
		}
		pts[i] = CalPoint{DriftTimeS: td + offset, CCSM2: d.ccs, MassDa: d.mass, Z: d.z}
	}
	return pts
}

func calConditions() Conditions {
	return Conditions{Gas: Nitrogen, PressureTorr: 4, TempK: 300, FieldVPerM: 2000}
}

func TestCalibrationRoundTrip(t *testing.T) {
	c := calConditions()
	pts := synthCalPoints(t, c, 1.0, 0)
	cal, err := FitCalibration(pts, c.Gas)
	if err != nil {
		t.Fatal(err)
	}
	if cal.RMSRel > 1e-6 {
		t.Errorf("fit residual %g on exact synthetic data", cal.RMSRel)
	}
	// An unknown ion: generate its true drift time and recover its CCS.
	trueCCS := 340e-20
	k, _ := Mobility(1300, 2, trueCCS, c)
	td, _ := DriftTime(k, 1.0, c)
	got, err := cal.CCS(td, 1300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-trueCCS)/trueCCS > 1e-6 {
		t.Errorf("recovered CCS %g, want %g", got, trueCCS)
	}
	// Forward prediction agrees too.
	if pred := cal.DriftTime(trueCCS, 1300, 2); math.Abs(pred-td)/td > 1e-6 {
		t.Errorf("predicted drift %g, want %g", pred, td)
	}
}

// TestCalibrationRecoversOffset: a fixed transit-time offset in every
// calibrant appears in the intercept, not in the recovered CCS.
func TestCalibrationRecoversOffset(t *testing.T) {
	c := calConditions()
	const offset = 0.8e-3 // 0.8 ms of transfer optics
	pts := synthCalPoints(t, c, 1.0, offset)
	cal, err := FitCalibration(pts, c.Gas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.InterceptS-offset) > 1e-6 {
		t.Errorf("intercept %g, want %g", cal.InterceptS, offset)
	}
	trueCCS := 400e-20
	k, _ := Mobility(1800, 2, trueCCS, c)
	td, _ := DriftTime(k, 1.0, c)
	got, err := cal.CCS(td+offset, 1800, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-trueCCS)/trueCCS > 1e-6 {
		t.Errorf("offset-corrected CCS %g, want %g", got, trueCCS)
	}
}

func TestCalibrationErrors(t *testing.T) {
	c := calConditions()
	if _, err := FitCalibration(nil, c.Gas); err == nil {
		t.Error("no points")
	}
	if _, err := FitCalibration([]CalPoint{{1, 1, 1, 1}}, c.Gas); err == nil {
		t.Error("single point")
	}
	bad := []CalPoint{{DriftTimeS: -1, CCSM2: 1e-18, MassDa: 100, Z: 1}, {DriftTimeS: 1, CCSM2: 1e-18, MassDa: 100, Z: 1}}
	if _, err := FitCalibration(bad, c.Gas); err == nil {
		t.Error("invalid point")
	}
	// Identical reduced parameters are degenerate.
	same := []CalPoint{
		{DriftTimeS: 0.01, CCSM2: 3e-18, MassDa: 1000, Z: 2},
		{DriftTimeS: 0.02, CCSM2: 3e-18, MassDa: 1000, Z: 2},
	}
	if _, err := FitCalibration(same, c.Gas); err == nil {
		t.Error("degenerate calibrants")
	}
	// A larger cross section arriving earlier gives a negative slope.
	neg := []CalPoint{
		{DriftTimeS: 0.02, CCSM2: 2e-18, MassDa: 1000, Z: 1},
		{DriftTimeS: 0.01, CCSM2: 6e-18, MassDa: 1000, Z: 1},
	}
	if _, err := FitCalibration(neg, c.Gas); err == nil {
		t.Error("negative slope should fail")
	}
	// CCS below the intercept.
	good, _ := FitCalibration(synthCalPoints(t, c, 1.0, 1e-3), c.Gas)
	if _, err := good.CCS(1e-6, 1000, 2); err == nil {
		t.Error("drift below intercept should fail")
	}
	var unfit Calibration
	if _, err := unfit.CCS(0.01, 1000, 2); err == nil {
		t.Error("unfitted calibration should fail")
	}
}

// TestCalibrationNoiseTolerance: 1 % timing noise on the calibrants yields
// ~1 % CCS accuracy.
func TestCalibrationNoiseTolerance(t *testing.T) {
	c := calConditions()
	pts := synthCalPoints(t, c, 1.0, 0)
	// Deterministic alternating perturbation of ±1 %.
	for i := range pts {
		f := 1.0 + 0.01*float64(1-2*(i%2))
		pts[i].DriftTimeS *= f
	}
	cal, err := FitCalibration(pts, c.Gas)
	if err != nil {
		t.Fatal(err)
	}
	if cal.RMSRel > 0.02 {
		t.Errorf("fit residual %g too large", cal.RMSRel)
	}
	trueCCS := 340e-20
	k, _ := Mobility(1300, 2, trueCCS, c)
	td, _ := DriftTime(k, 1.0, c)
	got, _ := cal.CCS(td, 1300, 2)
	if math.Abs(got-trueCCS)/trueCCS > 0.03 {
		t.Errorf("CCS error %g%% exceeds 3%%", 100*math.Abs(got-trueCCS)/trueCCS)
	}
}
